// External tables: query sharded CSV files in place — the paper's external
// table framework (Section III), which distributes scans of an external
// source's partitions across worker nodes without ingesting the data.
//
//	go run ./examples/external_csv
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/external"
	"repro/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "hrdbms-external-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Write four CSV shards, as a Hadoop job would leave behind.
	shardDir := filepath.Join(dir, "shards")
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for shard := 0; shard < 4; shard++ {
		f, err := os.Create(filepath.Join(shardDir, fmt.Sprintf("part-%04d.csv", shard)))
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 250; i++ {
			id := shard*250 + i
			fmt.Fprintf(f, "%d|sensor-%02d|%0.2f|%s\n",
				id, id%16, float64(id%700)/7, []string{"ok", "ok", "ok", "alert"}[id%4])
		}
		f.Close()
	}

	db, err := core.Open(core.Config{Workers: 4, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Register the UET: schema + partition discovery.
	schema := types.NewSchema(
		types.Column{Name: "reading_id", Kind: types.KindInt},
		types.Column{Name: "sensor", Kind: types.KindString},
		types.Column{Name: "value", Kind: types.KindFloat},
		types.Column{Name: "status", Kind: types.KindString},
	)
	tbl, err := external.NewCSVTable("readings", schema, shardDir, "part-*.csv", '|')
	if err != nil {
		log.Fatal(err)
	}
	if err := db.RegisterExternal(tbl); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered external table %q with %d partitions\n", tbl.Name(), tbl.Partitions())

	// Distributed scan with a pushed-down predicate: partitions spread
	// round-robin over the 4 workers.
	rows, err := db.QueryExternal("readings", "status = 'alert' AND value > 90")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("high-value alerts: %d rows\n", len(rows))
	for i, r := range rows {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(rows)-i)
			break
		}
		fmt.Println("  ", r)
	}

	// Ingest the external data into a managed, partitioned table when the
	// workload justifies it (the "combine the best of both worlds" path).
	if _, err := db.Exec(`CREATE TABLE readings_managed
		(reading_id INT, sensor VARCHAR(16), value FLOAT, status VARCHAR(8))
		PARTITION BY HASH(reading_id)`); err != nil {
		log.Fatal(err)
	}
	all, err := db.QueryExternal("readings", "")
	if err != nil {
		log.Fatal(err)
	}
	n, err := db.Load("readings_managed", all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d rows into the managed table\n", n)
	res, err := db.Exec(`SELECT sensor, count(*) AS readings, avg(value) AS mean
		FROM readings_managed GROUP BY sensor ORDER BY sensor LIMIT 4`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-sensor summary (first 4):")
	for _, r := range res.Rows {
		fmt.Println("  ", r)
	}
}
