// Transactions: HRDBMS's serializable side (Section VI) — DML under
// hierarchical two-phase commit, SS2PL page locks, and ARIES recovery
// bringing a crashed worker back to a consistent state.
//
//	go run ./examples/transactions
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/page"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wal"
)

func main() {
	dir, err := os.MkdirTemp("", "hrdbms-txn-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.Config{Workers: 3, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must := func(sql string) *core.Result {
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	// Accounts spread over 3 workers by hash; every multi-row statement is
	// one distributed transaction committed with tree-topology 2PC.
	must(`CREATE TABLE account (id INT, owner VARCHAR(20), balance FLOAT)
	      PARTITION BY HASH(id)`)
	must(`INSERT INTO account VALUES
	      (1, 'amara', 1000), (2, 'bjorn', 500), (3, 'chen', 250),
	      (4, 'divya', 800), (5, 'emeka', 90)`)
	fmt.Println(must(`SELECT count(*), sum(balance) FROM account`).Rows[0])

	// A cross-worker "transfer": two updates in independent statements
	// (each is its own 2PC transaction; atomicity within each statement).
	must(`UPDATE account SET balance = balance - 100 WHERE id = 1`)
	must(`UPDATE account SET balance = balance + 100 WHERE id = 5`)
	res := must(`SELECT owner, balance FROM account ORDER BY id`)
	fmt.Println("after transfer:")
	for _, r := range res.Rows {
		fmt.Println("  ", r)
	}
	total := must(`SELECT sum(balance) FROM account`).Rows[0][0]
	fmt.Printf("invariant: total balance still %v\n", total)

	// Crash recovery demo on a standalone transaction manager: a committed
	// transaction survives a crash; an in-flight one is rolled back by
	// ARIES analysis/redo/undo.
	fmt.Println("\ncrash-recovery demo (standalone worker):")
	crashDir := filepath.Join(dir, "crash")
	os.MkdirAll(crashDir, 0o755)
	logPath := filepath.Join(crashDir, "wal.log")
	store := newMemPages(4096)

	walLog, err := wal.Open(logPath)
	if err != nil {
		log.Fatal(err)
	}
	buf := buffer.New(store, 16, 2, buffer.WithFlushHook(walLog.FlushUpTo))
	mgr := txn.NewManager(walLog, txn.NewLockManager(0), buf)
	k := page.Key{File: 1, Page: 0}

	committed := mgr.Begin()
	writeRow(buf, committed, k, "durable")
	if err := mgr.Commit(committed); err != nil {
		log.Fatal(err)
	}
	loser := mgr.Begin()
	writeRow(buf, loser, k, "in-flight")
	// The dirty page may hit disk before the crash (steal).
	if err := buf.FlushAll(); err != nil {
		log.Fatal(err)
	}
	// CRASH: the loser never commits.
	if err := walLog.Close(); err != nil {
		log.Fatal(err)
	}

	walLog2, err := wal.Open(logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer walLog2.Close()
	buf2 := buffer.New(store, 16, 2, buffer.WithFlushHook(walLog2.FlushUpTo))
	result, err := wal.Recover(walLog2, buf2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovery: redone=%d undone=%d losers=%v\n",
		result.RedoneRecords, result.UndoneRecords, result.LoserTxns)
	f, err := buf2.Fetch(k)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := page.AsRowPage(f.Buf)
	if err != nil {
		log.Fatal(err)
	}
	rp.Scan(func(slot int, r types.Row) bool {
		fmt.Printf("  surviving row: %v\n", r)
		return true
	})
	buf2.Unpin(f, false)
}

func writeRow(buf *buffer.Manager, tx *txn.Tx, k page.Key, val string) {
	if err := tx.LockPage(k, true); err != nil {
		log.Fatal(err)
	}
	f, err := buf.Fetch(k)
	if err != nil {
		log.Fatal(err)
	}
	if page.TypeOf(f.Buf) == page.TypeFree {
		page.InitRowPage(f.Buf)
	}
	rp, _ := page.AsRowPage(f.Buf)
	enc := types.AppendRow(nil, types.Row{types.NewString(val)})
	slot, ok := rp.InsertEncoded(enc)
	if !ok {
		log.Fatal("page full")
	}
	lsn := tx.LogInsert(k, uint16(slot), enc)
	page.SetLSN(f.Buf, lsn)
	buf.Unpin(f, true)
}

// memPages is a minimal in-memory page store for the recovery demo.
type memPages struct {
	pages    map[page.Key][]byte
	pageSize int
}

func newMemPages(size int) *memPages {
	return &memPages{pages: map[page.Key][]byte{}, pageSize: size}
}

func (s *memPages) ReadPage(f page.FileID, n uint32) ([]byte, error) {
	if b, ok := s.pages[page.Key{File: f, Page: n}]; ok {
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	}
	return make([]byte, s.pageSize), nil
}

func (s *memPages) WritePage(f page.FileID, n uint32, buf []byte) error {
	b := make([]byte, len(buf))
	copy(b, buf)
	s.pages[page.Key{File: f, Page: n}] = b
	return nil
}

func (s *memPages) PageSize() int { return s.pageSize }
