// Quickstart: open an embedded HRDBMS cluster, create a partitioned table,
// insert rows through a distributed transaction, and run queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	dir, err := os.MkdirTemp("", "hrdbms-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A 4-worker shared-nothing cluster in this process.
	db, err := core.Open(core.Config{Workers: 4, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must := func(sql string) *core.Result {
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	// DDL: a hash-partitioned fact table and a replicated dimension.
	must(`CREATE TABLE city (city_id INT, name VARCHAR(30), country VARCHAR(20))
	      PARTITION BY REPLICATED`)
	must(`CREATE TABLE sale (sale_id INT, city_id INT, amount FLOAT, d DATE)
	      PARTITION BY HASH(sale_id)`)

	// DML: inserts route to workers by partitioning and commit with
	// hierarchical 2PC.
	must(`INSERT INTO city VALUES
	      (1, 'Toronto', 'CANADA'), (2, 'Lyon', 'FRANCE'), (3, 'Nairobi', 'KENYA')`)
	must(`INSERT INTO sale VALUES
	      (100, 1, 25.0, DATE '2026-07-01'),
	      (101, 1, 75.5, DATE '2026-07-02'),
	      (102, 2, 12.0, DATE '2026-07-02'),
	      (103, 3, 50.0, DATE '2026-07-03'),
	      (104, 2, 88.8, DATE '2026-07-04')`)

	// A distributed join + aggregation: the replicated dimension joins
	// locally on every worker; partial aggregates merge over the tree
	// topology.
	rows, schema, err := db.Query(`
		SELECT country, sum(amount) AS total, count(*) AS sales
		FROM city, sale
		WHERE city.city_id = sale.city_id
		GROUP BY country
		ORDER BY total DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue by country:")
	fmt.Println(" ", schema)
	for _, r := range rows {
		fmt.Println("  ", r)
	}

	// EXPLAIN shows the optimized logical plan.
	planText, err := db.Explain(`SELECT name FROM city WHERE country = 'CANADA'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan for the Canadian cities query:")
	fmt.Print(planText)

	// Updates are out-of-place and may re-partition the row.
	must(`UPDATE sale SET amount = amount * 1.1 WHERE city_id = 2`)
	rows, _, _ = db.Query(`SELECT sum(amount) FROM sale`)
	fmt.Printf("\ntotal after 10%% uplift on Lyon: %s\n", rows[0])
}
