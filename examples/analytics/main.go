// Analytics: the paper's OLAP scenario end to end — load TPC-H, run
// decision-support queries across a cluster, and watch predicate-based
// data skipping accelerate repeated selective scans.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/tpch"
)

func main() {
	dir, err := os.MkdirTemp("", "hrdbms-analytics-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.Config{Workers: 6, Dir: dir, PageSize: 8 * 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Schema + data: TPC-H at a laptop scale factor.
	for _, ddl := range tpch.DDL() {
		if _, err := db.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}
	const sf = 0.002
	data := tpch.Generate(sf, 7)
	fmt.Printf("loading TPC-H SF%g (%d rows)...\n", sf, data.TotalRows())
	for tbl, rows := range data.Tables() {
		if _, err := db.Load(tbl, rows); err != nil {
			log.Fatal(err)
		}
	}

	// The paper's running example (Section V): revenue from Canadian
	// customers — a 4-way join with a replicated dimension, co-located
	// customer⋈orders, and one shuffle for lineitem.
	run := func(label, sql string) {
		start := time.Now()
		rows, _, err := db.Query(sql)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s %6d rows  %8.3fs\n", label, len(rows), time.Since(start).Seconds())
	}
	run("running example (Canada)", `
		SELECT sum(l_extendedprice)
		FROM lineitem, orders, customer, nation
		WHERE o_orderkey = l_orderkey AND o_custkey = c_custkey
		  AND c_nationkey = n_nationkey AND n_name = 'CANADA'`)

	// A few of the paper's TPC-H queries.
	for _, qid := range []string{"q1", "q3", "q6", "q18"} {
		run("TPC-H "+qid, tpch.Queries()[qid])
	}

	// Predicate-based data skipping: the second run of a selective scan
	// skips the pages the first run proved empty.
	selective := `SELECT count(*) FROM lineitem
		WHERE l_shipdate >= DATE '1998-11-01' AND l_quantity > 45`
	run("selective scan (cold)", selective)
	run("selective scan (cached)", selective)

	// Inspect the plan the optimizer chose for a top-k query.
	sel, err := sqlparse.ParseSelect(tpch.Queries()["q3"])
	if err != nil {
		log.Fatal(err)
	}
	_ = sel
	planText, err := db.Explain(tpch.Queries()["q3"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nq3 optimized plan:")
	fmt.Print(planText)
}
