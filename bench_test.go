// Package repro's benchmark harness: one benchmark per paper table/figure
// (real engine wall time per cell; the simulated-seconds tables come from
// cmd/hrdbms-bench which runs the same code paths through the performance
// model), plus component micro-benchmarks for the ablations DESIGN.md
// calls out.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig7 -benchtime=1x   # one pass per cell
package repro_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/network"
	"repro/internal/page"
	"repro/internal/perfmodel"
	"repro/internal/skipcache"
	"repro/internal/sqlparse"
	"repro/internal/tpch"
	"repro/internal/types"
)

const benchSF = 0.0005

var (
	benchData     *tpch.Data
	benchDataOnce sync.Once
)

func dataset() *tpch.Data {
	benchDataOnce.Do(func() { benchData = tpch.Generate(benchSF, 1) })
	return benchData
}

// newBenchCluster builds a loaded TPC-H cluster for one profile.
func newBenchCluster(b *testing.B, workers int, prof cluster.ExecProfile) *cluster.Cluster {
	b.Helper()
	dir, err := os.MkdirTemp("", "hrdbms-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	c, err := cluster.New(cluster.Config{
		NumWorkers: workers, BaseDir: dir, PageSize: 16 * 1024, Nmax: 4, Profile: prof,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	for _, ddl := range tpch.DDL() {
		if _, err := c.ExecSQL(ddl); err != nil {
			b.Fatal(err)
		}
	}
	for tbl, rows := range dataset().Tables() {
		if _, err := c.Load(tbl, rows); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func runQuery(b *testing.B, c *cluster.Cluster, sql string) {
	b.Helper()
	if _, err := c.ExecSQL(sql); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig7Suite measures the full 21-query TPC-H suite per system
// profile per cluster size — the real-execution cells behind Figure 7
// (runtime and the two speedup panels).
func BenchmarkFig7Suite(b *testing.B) {
	for _, sys := range []string{"hrdbms", "greenplum", "sparksql", "hive"} {
		for _, workers := range []int{4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", sys, workers), func(b *testing.B) {
				c := newBenchCluster(b, workers, perfmodel.ClusterProfile(sys))
				queries := tpch.Queries()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, qid := range tpch.QueryIDs() {
						runQuery(b, c, queries[qid])
					}
				}
			})
		}
	}
}

// BenchmarkFig8PerQuery measures each TPC-H query for HRDBMS and the
// Greenplum-like profile — the per-query comparison of Figure 8.
func BenchmarkFig8PerQuery(b *testing.B) {
	for _, sys := range []string{"hrdbms", "greenplum"} {
		c := newBenchCluster(b, 4, perfmodel.ClusterProfile(sys))
		queries := tpch.Queries()
		for _, qid := range tpch.QueryIDs() {
			b.Run(fmt.Sprintf("%s/%s", sys, qid), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runQuery(b, c, queries[qid])
				}
			})
		}
	}
}

// BenchmarkFig9Q18 measures Q18 (the 1.5-billion-group aggregation in the
// paper) for both systems across cluster sizes — Figure 9.
func BenchmarkFig9Q18(b *testing.B) {
	for _, sys := range []string{"hrdbms", "greenplum"} {
		for _, workers := range []int{4, 8, 12} {
			b.Run(fmt.Sprintf("%s/workers=%d", sys, workers), func(b *testing.B) {
				c := newBenchCluster(b, workers, perfmodel.ClusterProfile(sys))
				q18 := tpch.Queries()["q18"]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runQuery(b, c, q18)
				}
			})
		}
	}
}

// Benchmark3TBMemoryPressure runs the suite's heaviest queries with a tiny
// per-operator memory budget, forcing the spill paths that let HRDBMS
// finish the paper's 3 TB experiment where others OOM.
func Benchmark3TBMemoryPressure(b *testing.B) {
	dir, err := os.MkdirTemp("", "hrdbms-3tb-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	c, err := cluster.New(cluster.Config{
		NumWorkers: 4, BaseDir: dir, PageSize: 16 * 1024, Nmax: 4,
		MemRows: 256, // force spilling in joins/sorts/aggregations
		Profile: cluster.HRDBMSProfile(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	for _, ddl := range tpch.DDL() {
		if _, err := c.ExecSQL(ddl); err != nil {
			b.Fatal(err)
		}
	}
	for tbl, rows := range dataset().Tables() {
		if _, err := c.Load(tbl, rows); err != nil {
			b.Fatal(err)
		}
	}
	queries := tpch.Queries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qid := range []string{"q9", "q18", "q21"} {
			runQuery(b, c, queries[qid])
		}
	}
}

// BenchmarkCurrentVersions is the real-execution cell behind the paper's
// current-versions table (8 nodes, full memory): HRDBMS vs the Tez-like
// profile.
func BenchmarkCurrentVersions(b *testing.B) {
	for _, sys := range []string{"hrdbms", "hive-tez", "spark2"} {
		b.Run(sys, func(b *testing.B) {
			c := newBenchCluster(b, 8, perfmodel.ClusterProfile(sys))
			queries := tpch.Queries()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, qid := range []string{"q1", "q3", "q6", "q12", "q18"} {
					runQuery(b, c, queries[qid])
				}
			}
		})
	}
}

// BenchmarkShuffleTopology is the ablation behind the paper's Nmax claim:
// hierarchical (binomial-graph) vs direct shuffle at the same data volume.
func BenchmarkShuffleTopology(b *testing.B) {
	for _, hier := range []bool{true, false} {
		name := "direct"
		if hier {
			name = "hierarchical"
		}
		b.Run(name, func(b *testing.B) {
			const n = 12
			ids := make([]int, n)
			for i := range ids {
				ids[i] = i
			}
			var rows []types.Row
			for i := int64(0); i < 2000; i++ {
				rows = append(rows, types.Row{types.NewInt(i), types.NewInt(i * 3)})
			}
			sch := types.NewSchema(
				types.Column{Name: "k", Kind: types.KindInt},
				types.Column{Name: "v", Kind: types.KindInt},
			)
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				fabric := network.NewFabric(ids, 256)
				spec := exec.ShuffleSpec{
					Channel: "bench", Nodes: ids, Nmax: 3, Hierarchical: hier,
				}
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						ep, _ := fabric.Endpoint(i)
						src := exec.NewSource(sch, rows)
						sh, err := exec.NewShuffle(nil, ep, spec, src, exec.ColRefs(0), types.Schema{})
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := exec.Collect(sh); err != nil {
							b.Error(err)
						}
					}(i)
				}
				wg.Wait()
				fabric.CloseAll()
			}
		})
	}
}

// BenchmarkDataSkipping is the predicate-cache ablation: a selective scan
// repeated with skipping on vs off.
func BenchmarkDataSkipping(b *testing.B) {
	for _, skip := range []bool{true, false} {
		name := "off"
		if skip {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			prof := cluster.HRDBMSProfile()
			prof.UseSkipCache = skip
			prof.UseMinMax = skip
			c := newBenchCluster(b, 2, prof)
			sql := `SELECT count(*) FROM lineitem WHERE l_quantity > 9999`
			runQuery(b, c, sql) // warm the cache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, c, sql)
			}
		})
	}
}

// BenchmarkBlockingShuffle quantifies the materialization cost the paper
// attributes to MapReduce-style shuffles.
func BenchmarkBlockingShuffle(b *testing.B) {
	for _, blocking := range []bool{false, true} {
		name := "pipelined"
		if blocking {
			name = "blocking+disk"
		}
		b.Run(name, func(b *testing.B) {
			prof := cluster.HRDBMSProfile()
			prof.BlockingShuffle = blocking
			prof.MaterializeShuffle = blocking
			c := newBenchCluster(b, 4, prof)
			sql := tpch.Queries()["q12"] // shuffle-heavy join
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, c, sql)
			}
		})
	}
}

// BenchmarkPreAggVsShuffleGroupBy is the aggregation-strategy ablation: Q1
// (4 groups — pre-aggregation should win) with the tree path toggled.
func BenchmarkPreAggVsShuffleGroupBy(b *testing.B) {
	for _, tree := range []bool{true, false} {
		name := "shuffle-groupby"
		if tree {
			name = "preagg-tree"
		}
		b.Run(name, func(b *testing.B) {
			prof := cluster.HRDBMSProfile()
			prof.PreAggTree = tree
			c := newBenchCluster(b, 4, prof)
			sql := tpch.Queries()["q1"]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, c, sql)
			}
		})
	}
}

// BenchmarkParse measures the SQL front-end.
func BenchmarkParse(b *testing.B) {
	q := tpch.Queries()["q21"]
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredCacheFootprint exercises the predicate cache at the scale
// of the Section III footprint claim (recording and skip-checking across
// thousands of pages).
func BenchmarkPredCacheFootprint(b *testing.B) {
	cache := skipcache.NewCache(0)
	conj := skipcache.Conj{{Col: "l_shipdate", Op: skipcache.OpLt, Val: types.NewInt(9000)}}
	for p := uint32(0); p < 16384; p++ {
		cache.Record(page.Key{File: 1, Page: p}, conj)
	}
	probe := skipcache.Conj{{Col: "l_shipdate", Op: skipcache.OpLt, Val: types.NewInt(8000)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cache.CanSkip(page.Key{File: 1, Page: uint32(i) % 16384}, probe) {
			b.Fatal("implication skip failed")
		}
	}
}
