package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestServeProtocol drives the line protocol over an in-memory pipe.
func TestServeProtocol(t *testing.T) {
	db, err := core.Open(core.Config{Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	server, client := net.Pipe()
	go serve(db, server)
	defer client.Close()

	rd := bufio.NewReader(client)
	send := func(sql string) []string {
		if _, err := fmt.Fprintln(client, sql); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			line = strings.TrimRight(line, "\n")
			lines = append(lines, line)
			if strings.HasPrefix(line, "OK") || strings.HasPrefix(line, "ERR") {
				return lines
			}
		}
	}

	out := send("CREATE TABLE t (a INT, b VARCHAR(10)) PARTITION BY HASH(a);")
	if !strings.HasPrefix(out[len(out)-1], "OK") {
		t.Fatalf("create: %v", out)
	}
	out = send("INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'z');")
	if !strings.Contains(out[len(out)-1], "3 rows inserted") {
		t.Fatalf("insert: %v", out)
	}
	out = send("SELECT a, b FROM t ORDER BY a;")
	if len(out) != 4 || out[0] != "1\tx" || out[2] != "3\tz" || out[3] != "OK 3 rows" {
		t.Fatalf("select: %v", out)
	}
	out = send("SELEC syntax error;")
	if !strings.HasPrefix(out[len(out)-1], "ERR") {
		t.Fatalf("bad sql: %v", out)
	}
	// The connection must survive an error and keep serving.
	out = send("SELECT count(*) FROM t;")
	if out[0] != "3" {
		t.Fatalf("after error: %v", out)
	}
}
