package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestServeProtocol drives the line protocol over an in-memory pipe.
func TestServeProtocol(t *testing.T) {
	db, err := core.Open(core.Config{Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	server, client := net.Pipe()
	go serve(db, server)
	defer client.Close()

	rd := bufio.NewReader(client)
	send := func(sql string) []string {
		if _, err := fmt.Fprintln(client, sql); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			line = strings.TrimRight(line, "\n")
			lines = append(lines, line)
			if strings.HasPrefix(line, "OK") || strings.HasPrefix(line, "ERR") {
				return lines
			}
		}
	}

	out := send("CREATE TABLE t (a INT, b VARCHAR(10)) PARTITION BY HASH(a);")
	if !strings.HasPrefix(out[len(out)-1], "OK") {
		t.Fatalf("create: %v", out)
	}
	out = send("INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'z');")
	if !strings.Contains(out[len(out)-1], "3 rows inserted") {
		t.Fatalf("insert: %v", out)
	}
	out = send("SELECT a, b FROM t ORDER BY a;")
	if len(out) != 4 || out[0] != "1\tx" || out[2] != "3\tz" || out[3] != "OK 3 rows" {
		t.Fatalf("select: %v", out)
	}
	out = send("SELEC syntax error;")
	if !strings.HasPrefix(out[len(out)-1], "ERR") {
		t.Fatalf("bad sql: %v", out)
	}
	// The connection must survive an error and keep serving.
	out = send("SELECT count(*) FROM t;")
	if out[0] != "3" {
		t.Fatalf("after error: %v", out)
	}
}

// TestObservabilityEndpoints exercises the -http surface: /metrics renders
// the registry, /debug/queries returns traced queries as JSON.
func TestObservabilityEndpoints(t *testing.T) {
	db, err := core.Open(core.Config{Workers: 2, Dir: t.TempDir(), TraceQueries: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE obs_t (a INT, b FLOAT) PARTITION BY HASH(a)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO obs_t VALUES (1, 1.5), (2, 2.5), (3, 3.5)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT SUM(b) FROM obs_t"); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.Handler(db.Registry(), db.Traces()))
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{"buffer.hits", "network.bytes_total", "wal.appends_total",
		"twopc.commits_total", "query.seconds_count"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s:\n%s", want, metrics)
		}
	}
	// The trace store flushes asynchronously; poll for the traced SELECT.
	deadline := time.Now().Add(2 * time.Second)
	for {
		body := get("/debug/queries")
		if strings.Contains(body, "obs_t") && strings.Contains(body, `"spans"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/queries never showed the traced query:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
