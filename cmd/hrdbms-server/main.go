// Command hrdbms-server runs an HRDBMS node set reachable over TCP: it
// embeds a cluster (coordinators + workers in this process, as the
// in-process substitution DESIGN.md documents) and serves a line protocol
// on a real socket so external clients can submit SQL.
//
// Protocol: one SQL statement per line; the server answers with
// tab-separated rows, then a line "OK <n> rows" or "ERR <message>".
//
// With -http set, a second listener serves observability endpoints:
// GET /metrics (plain-text registry) and GET /debug/queries (recent query
// traces as JSON). -trace records a per-operator trace of every query into
// the /debug/queries ring.
//
// Usage:
//
//	hrdbms-server -listen :7432 -workers 8 -dir /var/lib/hrdbms -http :7433
//	echo "SELECT 1 FROM nation LIMIT 1;" | nc localhost 7432
//	curl localhost:7433/metrics
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tpch"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7432", "listen address")
	httpAddr := flag.String("http", "", "serve /metrics and /debug/queries on this address")
	trace := flag.Bool("trace", false, "record a per-operator trace of every query")
	workers := flag.Int("workers", 4, "number of worker nodes")
	dir := flag.String("dir", "", "data directory (default: temp)")
	tpchSF := flag.Float64("tpch", 0, "preload TPC-H at this scale factor")
	flag.Parse()

	baseDir := *dir
	if baseDir == "" {
		var err error
		baseDir, err = os.MkdirTemp("", "hrdbms-server-*")
		if err != nil {
			fatal(err)
		}
	}
	db, err := core.Open(core.Config{Workers: *workers, Dir: baseDir, TraceQueries: *trace})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability on http://%s/metrics and /debug/queries\n", hl.Addr())
		go func() {
			if err := http.Serve(hl, obs.Handler(db.Registry(), db.Traces())); err != nil {
				fmt.Fprintln(os.Stderr, "hrdbms-server: http:", err)
			}
		}()
	}

	if *tpchSF > 0 {
		for _, ddl := range tpch.DDL() {
			if _, err := db.Exec(ddl); err != nil {
				fatal(err)
			}
		}
		data := tpch.Generate(*tpchSF, 1)
		for tbl, rows := range data.Tables() {
			if _, err := db.Load(tbl, rows); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("loaded TPC-H SF%g\n", *tpchSF)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hrdbms-server listening on %s (%d workers, data in %s)\n",
		l.Addr(), *workers, baseDir)
	for {
		conn, err := l.Accept()
		if err != nil {
			fatal(err)
		}
		go serve(db, conn)
	}
}

func serve(db *core.DB, conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sc.Text()), ";"))
		if sql == "" {
			continue
		}
		res, err := db.Exec(sql)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			w.Flush()
			continue
		}
		for _, r := range res.Rows {
			fmt.Fprintln(w, r.String())
		}
		if res.Message != "" {
			fmt.Fprintf(w, "OK %s\n", res.Message)
		} else {
			fmt.Fprintf(w, "OK %d rows\n", len(res.Rows))
		}
		w.Flush()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hrdbms-server:", err)
	os.Exit(1)
}
