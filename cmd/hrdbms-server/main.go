// Command hrdbms-server runs an HRDBMS node set reachable over TCP: it
// embeds a cluster (coordinators + workers in this process, as the
// in-process substitution DESIGN.md documents) and serves a line protocol
// on a real socket through the serving layer (internal/srv): per-connection
// sessions, admission control with a bounded queue, KILL, and graceful
// drain on SIGTERM.
//
// Protocol: one statement per line; the server answers with tab-separated
// rows, then a line "OK <n> rows" or "ERR <message>". Besides SQL the
// server understands PREPARE <name> AS <sql>, EXECUTE <name>, KILL <qid>,
// SET <batchrows|parallel> <value>, SHOW SESSIONS, and SHOW QUERIES.
//
// With -http set, a second listener serves observability endpoints:
// GET /metrics (plain-text registry, including the srv.* serving metrics)
// and GET /debug/queries (recent query traces as JSON). -trace records a
// per-operator trace of every query into the /debug/queries ring.
//
// Usage:
//
//	hrdbms-server -listen :7432 -workers 8 -dir /var/lib/hrdbms -http :7433
//	echo "SELECT 1 FROM nation LIMIT 1;" | nc localhost 7432
//	curl localhost:7433/metrics
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/srv"
	"repro/internal/tpch"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7432", "listen address")
	httpAddr := flag.String("http", "", "serve /metrics and /debug/queries on this address")
	trace := flag.Bool("trace", false, "record a per-operator trace of every query")
	workers := flag.Int("workers", 4, "number of worker nodes")
	dir := flag.String("dir", "", "data directory (default: temp)")
	tpchSF := flag.Float64("tpch", 0, "preload TPC-H at this scale factor")
	maxConns := flag.Int("max-conns", 256, "maximum concurrent client sessions")
	maxActive := flag.Int("max-active", 0, "maximum concurrently running queries (0 = default)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue depth (0 = default)")
	idle := flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain wait for in-flight queries")
	flag.Parse()

	baseDir := *dir
	if baseDir == "" {
		var err error
		baseDir, err = os.MkdirTemp("", "hrdbms-server-*")
		if err != nil {
			fatal(err)
		}
	}
	db, err := core.Open(core.Config{Workers: *workers, Dir: baseDir, TraceQueries: *trace})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability on http://%s/metrics and /debug/queries\n", hl.Addr())
		go func() {
			if err := http.Serve(hl, obs.Handler(db.Registry(), db.Traces())); err != nil {
				fmt.Fprintln(os.Stderr, "hrdbms-server: http:", err)
			}
		}()
	}

	if *tpchSF > 0 {
		for _, ddl := range tpch.DDL() {
			if _, err := db.Exec(ddl); err != nil {
				fatal(err)
			}
		}
		data := tpch.Generate(*tpchSF, 1)
		for tbl, rows := range data.Tables() {
			if _, err := db.Load(tbl, rows); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("loaded TPC-H SF%g\n", *tpchSF)
	}

	server := newServer(db, srv.Config{
		MaxConns:     *maxConns,
		IdleTimeout:  *idle,
		DrainTimeout: *drain,
		Admission:    srv.AdmissionConfig{MaxActive: *maxActive, QueueDepth: *queueDepth},
	})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hrdbms-server listening on %s (%d workers, data in %s)\n",
		l.Addr(), *workers, baseDir)

	// SIGTERM/SIGINT trigger a graceful drain: stop accepting, fail queued
	// queries, let running ones finish (or kill them after drain-timeout),
	// then close every connection and exit cleanly.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		fmt.Printf("hrdbms-server: %v, draining\n", s)
		if err := server.Shutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "hrdbms-server: drain:", err)
		}
	}()

	if err := server.Serve(l); err != nil {
		fatal(err)
	}
	fmt.Println("hrdbms-server: drained, bye")
}

// newServer wires the serving layer over an open database.
func newServer(db *core.DB, cfg srv.Config) *srv.Server {
	return srv.New(db.Cluster(), cfg, db.Registry())
}

// serve handles one connection with a default-configured serving layer
// (kept for tests that drive the protocol over a pipe).
func serve(db *core.DB, conn net.Conn) {
	newServer(db, srv.Config{}).ServeConn(conn)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hrdbms-server:", err)
	os.Exit(1)
}
