// Command hrdbms-cli is an interactive SQL shell over an embedded HRDBMS
// cluster. Statements end with ';'. Meta commands: \q quits, \tables lists
// tables, \load <table> <sf> loads TPC-H data into a table.
//
// Usage:
//
//	hrdbms-cli -workers 4 -dir /tmp/hrdbms
//	hrdbms-cli -tpch 0.001            # preload TPC-H at SF 0.001
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/tpch"
)

func main() {
	workers := flag.Int("workers", 4, "number of worker nodes")
	dir := flag.String("dir", "", "data directory (default: temp)")
	tpchSF := flag.Float64("tpch", 0, "preload TPC-H at this scale factor")
	flag.Parse()

	baseDir := *dir
	if baseDir == "" {
		var err error
		baseDir, err = os.MkdirTemp("", "hrdbms-cli-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(baseDir)
	}
	db, err := core.Open(core.Config{Workers: *workers, Dir: baseDir})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *tpchSF > 0 {
		fmt.Printf("loading TPC-H SF%g...\n", *tpchSF)
		for _, ddl := range tpch.DDL() {
			if _, err := db.Exec(ddl); err != nil {
				fatal(err)
			}
		}
		data := tpch.Generate(*tpchSF, 1)
		for tbl, rows := range data.Tables() {
			n, err := db.Load(tbl, rows)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %s: %d rows\n", tbl, n)
		}
	}

	fmt.Printf("HRDBMS shell — %d workers, data in %s. End statements with ';', \\q to quit.\n",
		*workers, baseDir)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var pending strings.Builder
	fmt.Print("hrdbms> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == `\q`:
			return
		case trimmed == `\tables`:
			for _, t := range db.Catalog().Tables() {
				fmt.Println(" ", t)
			}
			fmt.Print("hrdbms> ")
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("   ...> ")
			continue
		}
		sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(pending.String()), ";"))
		pending.Reset()
		if sql != "" {
			runStatement(db, sql)
		}
		fmt.Print("hrdbms> ")
	}
}

func runStatement(db *core.DB, sql string) {
	start := time.Now()
	res, err := db.Exec(sql)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Message != "" {
		fmt.Printf("%s (%.3fs)\n", res.Message, elapsed.Seconds())
		return
	}
	// EXPLAIN / EXPLAIN ANALYZE return one "plan" column of preformatted
	// lines; print them raw instead of as a tab table.
	if res.Schema.Len() == 1 && res.Schema.Cols[0].Name == "plan" {
		for _, r := range res.Rows {
			fmt.Println(r[0].Str())
		}
		fmt.Printf("(%.3fs)\n", elapsed.Seconds())
		return
	}
	if res.Schema.Len() > 0 {
		names := make([]string, res.Schema.Len())
		for i, c := range res.Schema.Cols {
			names[i] = c.Name
		}
		fmt.Println(strings.Join(names, "\t"))
		fmt.Println(strings.Repeat("-", 8*len(names)))
	}
	for i, r := range res.Rows {
		if i >= 200 {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-i)
			break
		}
		fmt.Println(r.String())
	}
	fmt.Printf("(%d rows, %.3fs)\n", len(res.Rows), elapsed.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hrdbms-cli:", err)
	os.Exit(1)
}
