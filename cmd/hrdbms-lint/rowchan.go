package main

import (
	"go/ast"
	"path/filepath"
)

// rowchanPkgs are the packages whose channels sit on the query hot path:
// a `chan types.Row` there reintroduces the per-row channel select the
// vectorized execution path exists to amortize away.
var rowchanPkgs = map[string]bool{
	"repro/internal/exec":    true,
	"repro/internal/cluster": true,
	"repro/internal/srv":     true,
}

// rowchanAllowFiles are the adapter seams where row-granular plumbing is
// the point (batch↔row adapters); channels there are exempt.
var rowchanAllowFiles = map[string]bool{
	"batch.go": true,
}

// rowchanAnalyzer flags `chan types.Row` (any direction) in exec/cluster
// hot paths: rows must cross goroutine boundaries in slabs
// (`chan []types.Row`), one select per batch instead of per row.
var rowchanAnalyzer = &Analyzer{
	Name: "rowchan",
	Doc:  "flags per-row channels (chan types.Row) on execution hot paths; move rows in slabs",
	Run:  runRowchan,
}

func runRowchan(p *Pass) {
	if !rowchanPkgs[p.Pkg.Path] {
		return
	}
	for _, f := range p.Pkg.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		if rowchanAllowFiles[filepath.Base(p.Pkg.Fset.Position(f.Pos()).Filename)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ct, ok := n.(*ast.ChanType)
			if !ok {
				return true
			}
			tv, ok := p.Pkg.Info.Types[ct.Value]
			if !ok {
				return true
			}
			if isNamedPtr(tv.Type, "internal/types", "Row") {
				p.Report("rowchan", ct.Pos(),
					"chan types.Row on a hot path pays one channel select per row; "+
						"move rows in slabs (chan []types.Row / BatchOperator)")
			}
			return true
		})
	}
}
