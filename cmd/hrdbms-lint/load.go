package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File // parsed GoFiles (plus test files when requested)
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath  string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	TestImports []string
	Standard    bool
	Module      *struct{ Path string }
}

// goList runs `go list -deps -export -json` over the patterns and decodes
// the package stream. -deps -export makes the go tool write export data for
// every dependency into the build cache and report the file paths, which is
// what lets a stdlib-only linter type-check against precompiled imports.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errBuf.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files reported by
// `go list -export`.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.gc.Import(path)
}

// loadPackages loads the non-test (plus optionally in-package test) sources
// of every module-local package matched by patterns, type-checked against
// export data for all dependencies.
func loadPackages(dir string, patterns []string, includeTests bool) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	if includeTests {
		// In-package test files import packages (testing, testing/quick, …)
		// that the non-test dependency closure does not cover; list those too
		// so the type-checker finds their export data.
		extra := map[string]bool{}
		for _, p := range listed {
			if p.Standard || p.Module == nil {
				continue
			}
			for _, imp := range p.TestImports {
				if _, have := exports[imp]; !have && imp != "C" && !extra[imp] {
					extra[imp] = true
				}
			}
		}
		if len(extra) > 0 {
			paths := make([]string, 0, len(extra))
			for imp := range extra {
				paths = append(paths, imp)
			}
			more, err := goList(dir, paths)
			if err != nil {
				return nil, err
			}
			for _, p := range more {
				if _, have := exports[p.ImportPath]; !have && p.Export != "" {
					exports[p.ImportPath] = p.Export
				}
			}
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var out []*Package
	for _, p := range listed {
		// -deps lists the whole transitive closure; analyze only this
		// module's packages (everything else is context for type-checking).
		if p.Standard || p.Module == nil {
			continue
		}
		names := append([]string{}, p.GoFiles...)
		if includeTests {
			names = append(names, p.TestGoFiles...)
		}
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		pkg, info, err := checkFiles(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return out, nil
}

// checkFiles type-checks one package's parsed files, returning full type
// information for the analyzers.
func checkFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
