package main

// slabown enforces the BatchOperator ownership contract documented in
// internal/exec/batch.go: the slab returned by NextBatch is valid only
// until the next NextBatch or Close call. Storing the slab — or a
// sub-slice of it — into a struct field, a package variable, or a closure
// that outlives the statement retains memory the producer is about to
// reuse or truncate. The row VALUES inside a batch are immutable and may
// be retained (r := b[i] is fine); the slice header is what must not
// outlive the iteration.
//
// The analysis is intra-procedural: it tracks the variables bound to a
// NextBatch result (and their aliases and sub-slices) through the function
// and flags
//
//   - assignment of a slab expression to a struct field or package-level
//     variable, and
//   - any use of a slab variable inside a function literal that is not
//     invoked on the spot (a goroutine body, a stored callback): by the
//     time it runs, the slab may be gone.
//
// Copies are the sanctioned escape hatch: `copy(cp, b)` and
// `append(dst, b...)` produce independent storage and are not stores of
// the tracked slice, so they never trip the rule.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

var slabownAnalyzer = &Analyzer{
	Name: "slabown",
	Doc:  "flags NextBatch slabs (or sub-slices) stored into fields, package vars, or escaping closures without a copy",
	Run:  runSlabown,
}

func runSlabown(p *Pass) {
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkSlabBody(p, body)
			for _, lit := range nestedFuncLits(body) {
				checkSlabFuncLits(p, lit.Body)
			}
		})
	}
}

// checkSlabFuncLits recurses the per-literal analysis: each literal body is
// its own scope for slabs acquired inside it.
func checkSlabFuncLits(p *Pass, body *ast.BlockStmt) {
	checkSlabBody(p, body)
	for _, lit := range nestedFuncLits(body) {
		checkSlabFuncLits(p, lit.Body)
	}
}

// isRowSlice reports whether t is []types.Row.
func isRowSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Row" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/types")
}

// isNextBatchCall reports whether call is a NextBatch returning a row slab.
func isNextBatchCall(p *Pass, call *ast.CallExpr) bool {
	if calleeName(call) != "NextBatch" {
		return false
	}
	results := resultTuple(p.Pkg.Info, call)
	return len(results) > 0 && isRowSlice(results[0])
}

// slabRoot resolves an expression to the slab variable it aliases: the
// ident itself, or the root of a slice expression chain (b[i:j], b[:n]).
// Index expressions are NOT slabs — b[i] is a row value, retainable by
// contract.
func slabRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkSlabBody analyzes one function body (not descending into nested
// literals except to look for escaping uses of this body's slabs).
func checkSlabBody(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info

	// Pass 1: collect slab objects — NextBatch results and, to fixpoint,
	// their aliases and sub-slices.
	slabs := map[types.Object]bool{}
	ownLit := map[ast.Node]bool{} // nested literal subtrees, skipped in pass 1
	for _, lit := range nestedFuncLits(body) {
		ownLit[lit] = true
	}
	scan := func() bool {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			if ownLit[n] {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				if obj := defOrUse(info, id); obj != nil && !slabs[obj] {
					slabs[obj] = true
					changed = true
				}
			}
			if len(as.Rhs) == 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isNextBatchCall(p, call) {
					mark(as.Lhs[0])
					return true
				}
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					if root := slabRoot(rhs); root != nil {
						if obj := info.Uses[root]; obj != nil && slabs[obj] {
							mark(as.Lhs[i])
						}
					}
				}
			}
			return true
		})
		return changed
	}
	for scan() {
	}
	if len(slabs) == 0 {
		return
	}

	isSlabExpr := func(e ast.Expr) bool {
		root := slabRoot(e)
		if root == nil {
			return false
		}
		obj := info.Uses[root]
		return obj != nil && slabs[obj]
	}

	// Pass 2: flag stores into fields and package variables.
	ast.Inspect(body, func(n ast.Node) bool {
		if ownLit[n] {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isSlabExpr(rhs) {
				continue
			}
			switch lhs := as.Lhs[i].(type) {
			case *ast.SelectorExpr:
				p.Report("slabown", rhs.Pos(), fmt.Sprintf(
					"NextBatch slab stored into field %s outlives the batch: the slab is only valid until the next NextBatch/Close (copy the slice; row values are retainable, the slice is not)",
					lhs.Sel.Name))
			case *ast.Ident:
				if obj := defOrUse(info, lhs); obj != nil && isPackageLevel(obj) {
					p.Report("slabown", rhs.Pos(), fmt.Sprintf(
						"NextBatch slab stored into package variable %s outlives the batch: the slab is only valid until the next NextBatch/Close (copy the slice)",
						lhs.Name))
				}
			}
		}
		return true
	})

	// Pass 3: flag slab uses inside closures that are not invoked on the
	// spot — by the time a goroutine or stored callback runs, the producer
	// may have reclaimed the slab.
	parents := parentMap(body)
	for _, lit := range nestedFuncLits(body) {
		if call, ok := parents[lit].(*ast.CallExpr); ok && call.Fun == lit {
			continue // immediately invoked: runs before the next NextBatch
		}
		ast.Inspect(lit, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := info.Uses[id]; obj != nil && slabs[obj] {
				p.Report("slabown", id.Pos(), fmt.Sprintf(
					"NextBatch slab %s captured by an escaping closure: the closure may run after the slab is reclaimed (copy the rows before capture)", id.Name))
				return false
			}
			return true
		})
	}
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
