package main

// Control-flow graph construction over the typed AST, plus the generic
// worklist dataflow driver and the leak-path search the path-sensitive
// rules (pinpair, txnpair, workerpair, spanpair, lockorder, sendstop)
// run on.
//
// Design notes:
//
//   - Blocks hold *simple* nodes: plain statements, and the condition /
//     tag / comm sub-parts of compound statements. Compound statements
//     (if/for/range/switch/select) are decomposed by the builder, so a
//     rule scanning a block node's subtree never accidentally sees a
//     nested body.
//   - Edges out of an if-condition are labeled with the condition and its
//     truth value on that edge. The pairing rules use the labels to prune
//     paths on which the acquire's own error check failed (no resource
//     was acquired, so an early `return err` there is not a leak).
//   - defer is modeled as a regular DeferStmt node at its registration
//     point. Pairing rules treat "the path passed a DeferStmt whose call
//     satisfies the protocol" as satisfying every later exit on that
//     path — LIFO order does not matter for release properties.
//   - panic(...), os.Exit, log.Fatal*, runtime.Goexit terminate the block
//     with no successors: a path ending in a crash is not a leak path.
//   - select with no default blocks until a case is ready; edges go to
//     every clause. A select with a default never blocks.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Edge is one control-flow edge. When Cond is non-nil, the edge is taken
// exactly when Cond evaluates to !Neg.
type Edge struct {
	To   *Block
	Cond ast.Expr
	Neg  bool // edge taken when Cond is false
}

// Block is one basic block: a maximal sequence of simple nodes with a
// single entry, plus its successor edges.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.body", ... (debugging)
	Nodes []ast.Node
	Succs []Edge

	// SelectCase links a clause block back to the select that guards it
	// (set on blocks holding a select clause's body).
	SelectCase *ast.SelectStmt
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// loopFrame tracks break/continue targets while building loop and
// switch/select bodies.
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil inside switch/select frames
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *Block // nil while the current point is unreachable
	exit    *Block
	frames  []loopFrame
	labels  map[string]*Block   // label -> block the labeled statement starts
	gotos   map[string][]*Block // pending forward gotos by label
	pending string              // label for an immediately following loop statement
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*Block{},
		gotos:  map[string][]*Block{},
	}
	entry := b.newBlock("entry")
	b.exit = b.newBlock("exit")
	b.cfg.Entry = entry
	b.cfg.Exit = b.exit
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end of the body reaches the exit.
	b.edgeTo(b.exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edgeTo adds an unlabeled edge from the current block to dst (no-op when
// the current point is unreachable).
func (b *cfgBuilder) edgeTo(dst *Block) {
	b.edge(Edge{To: dst})
}

// edgeCond adds a labeled edge: taken when cond == !neg.
func (b *cfgBuilder) edgeCond(dst *Block, cond ast.Expr, neg bool) {
	b.edge(Edge{To: dst, Cond: cond, Neg: neg})
}

func (b *cfgBuilder) edge(e Edge) {
	if b.cur == nil || e.To == nil {
		return
	}
	for _, s := range b.cur.Succs {
		if s.To == e.To {
			return
		}
	}
	b.cur.Succs = append(b.cur.Succs, e)
}

// add appends a simple node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil || n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findFrame returns the innermost frame matching label ("" = innermost
// usable frame; continue skips switch/select frames).
func (b *cfgBuilder) findFrame(label string, forContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if forContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// pendingLabel consumes the pending label for a loop statement.
func (b *cfgBuilder) pendingLabel() string {
	l := b.pending
	b.pending = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		then := b.newBlock("if.then")
		after := b.newBlock("if.after")
		b.edgeCond(then, s.Cond, false)
		b.cur = then
		b.stmt(s.Body)
		b.edgeTo(after)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.cur = condBlk
			b.edgeCond(els, s.Cond, true)
			b.cur = els
			b.stmt(s.Else)
			b.edgeTo(after)
		} else {
			b.cur = condBlk
			b.edgeCond(after, s.Cond, true)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.pendingLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.edgeTo(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edgeCond(after, s.Cond, true)
			b.edgeCond(body, s.Cond, false)
		} else {
			b.edgeTo(body)
		}
		b.cur = body
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: post})
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edgeTo(post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edgeTo(head) // back edge
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.pendingLabel()
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.edgeTo(head)
		b.cur = head
		b.add(s.X)
		b.edgeTo(body)
		b.edgeTo(after) // exhausted (or empty) range skips the body
		b.cur = body
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: head})
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edgeTo(head) // back edge
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitchBody(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.buildSwitchBody(s.Body, nil)

	case *ast.SelectStmt:
		b.buildSwitchBody(s.Body, s)

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.exit)
		b.cur = nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(label, false); f != nil {
				b.edgeTo(f.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.findFrame(label, true); f != nil {
				b.edgeTo(f.continueTo)
			}
			b.cur = nil
		case token.GOTO:
			if dst, ok := b.labels[label]; ok {
				b.edgeTo(dst)
			} else if b.cur != nil {
				b.gotos[label] = append(b.gotos[label], b.cur)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Recorded as a node; buildSwitchBody wires the edge to the
			// next clause.
			b.add(s)
		}

	case *ast.LabeledStmt:
		dst := b.newBlock("label." + s.Label.Name)
		b.labels[s.Label.Name] = dst
		for _, src := range b.gotos[s.Label.Name] {
			src.Succs = append(src.Succs, Edge{To: dst})
		}
		delete(b.gotos, s.Label.Name)
		b.edgeTo(dst)
		b.cur = dst
		b.pending = s.Label.Name
		b.stmt(s.Stmt)
		b.pending = ""

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Defer, Go, Send, IncDec: simple nodes.
		b.add(s)
	}
}

// buildSwitchBody wires the clause blocks of a switch, type switch, or
// select. sel is non-nil for selects (clause blocks get SelectCase set).
func (b *cfgBuilder) buildSwitchBody(body *ast.BlockStmt, sel *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock("switch.after")
	hasDefault := false
	var clauseBlocks []*Block
	var clauseBodies [][]ast.Stmt

	for _, raw := range body.List {
		var comm ast.Node
		var clauseStmts []ast.Stmt
		var isDefault bool
		kind := "case"
		switch c := raw.(type) {
		case *ast.CaseClause:
			clauseStmts = c.Body
			isDefault = c.List == nil
			if len(c.List) > 0 {
				comm = c.List[0]
			}
		case *ast.CommClause:
			clauseStmts = c.Body
			isDefault = c.Comm == nil
			comm = c.Comm
		default:
			continue
		}
		if isDefault {
			hasDefault = true
			kind = "default"
		}
		blk := b.newBlock("switch." + kind)
		if sel != nil {
			blk.SelectCase = sel
		}
		if comm != nil {
			blk.Nodes = append(blk.Nodes, comm)
		}
		if head != nil {
			head.Succs = append(head.Succs, Edge{To: blk})
		}
		clauseBlocks = append(clauseBlocks, blk)
		clauseBodies = append(clauseBodies, clauseStmts)
	}

	// A switch with no matching case (and no default) falls through to
	// after. A select with no default blocks: no such edge.
	if head != nil && sel == nil && !hasDefault {
		head.Succs = append(head.Succs, Edge{To: after})
	}

	for i, blk := range clauseBlocks {
		b.cur = blk
		b.frames = append(b.frames, loopFrame{breakTo: after})
		b.stmtList(clauseBodies[i])
		b.frames = b.frames[:len(b.frames)-1]
		if fellThrough(clauseBodies[i]) && i+1 < len(clauseBlocks) {
			b.edgeTo(clauseBlocks[i+1])
			b.cur = nil
		}
		b.edgeTo(after)
	}
	b.cur = after
}

// fellThrough reports whether a clause body ends in a fallthrough.
func fellThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminatingCall reports whether a call never returns (panic, os.Exit,
// log.Fatal*, runtime.Goexit): the path ends rather than reaching exit.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			if x.Name == "os" && fn.Sel.Name == "Exit" {
				return true
			}
			if x.Name == "log" && strings.HasPrefix(fn.Sel.Name, "Fatal") {
				return true
			}
			if x.Name == "runtime" && fn.Sel.Name == "Goexit" {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Worklist dataflow driver

// Dataflow runs a forward may-analysis to fixpoint. Facts are sets encoded
// as map[K]bool; join is union. transfer consumes the block's in-set and
// returns its out-set (it must not mutate in). The returned map holds each
// block's in-set at fixpoint.
func Dataflow[K comparable](c *CFG, transfer func(b *Block, in map[K]bool) map[K]bool) map[*Block]map[K]bool {
	in := map[*Block]map[K]bool{}
	for _, b := range c.Blocks {
		in[b] = map[K]bool{}
	}
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := transfer(b, in[b])
		for _, e := range b.Succs {
			s := e.To
			changed := false
			for k := range out {
				if !in[s][k] {
					in[s][k] = true
					changed = true
				}
			}
			if changed && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------------
// Leak-path search

// PathStep is one node on a concrete CFG path, used to render leak reports.
type PathStep struct {
	Node  ast.Node
	Block *Block
}

// nodeClass is LeakSearch's classification of one block node.
type nodeClass int

const (
	classNone     nodeClass = iota
	classSatisfy            // releases the resource or lets it escape
	classDefer              // a defer that will satisfy every later exit
	classExitLeak           // a return that does not satisfy: leak if reached unarmed
	classStop               // stop searching through this node (e.g. re-acquire)
)

// LeakSearch configures FindLeakPath for one acquire site.
type LeakSearch struct {
	// Classify maps a block node to its role for this resource.
	Classify func(n ast.Node) nodeClass
	// ErrPrune reports whether taking e implies the acquire's error result
	// was non-nil (no resource exists on that path). Optional.
	ErrPrune func(e Edge) bool
	// KillsErr reports whether the node reassigns the acquire's error
	// variable, after which ErrPrune no longer applies. Optional.
	KillsErr func(n ast.Node) bool
}

// pathState is the DFS key: position, whether a satisfying defer has been
// armed, and whether the acquire's error variable is still live.
type pathState struct {
	block   *Block
	idx     int
	armed   bool
	errLive bool
}

// FindLeakPath searches for a path from just after the node at (start,
// startIdx) to function exit on which no satisfying node is passed. It
// returns the path (ending at the offending return, or empty for a
// fall-off-the-end leak) and whether a leak path was found.
func FindLeakPath(c *CFG, start *Block, startIdx int, ls LeakSearch) ([]PathStep, bool) {
	visited := map[pathState]bool{}
	var dfs func(st pathState, path []PathStep) ([]PathStep, bool)
	dfs = func(st pathState, path []PathStep) ([]PathStep, bool) {
		if visited[st] {
			return nil, false
		}
		visited[st] = true
		for i := st.idx; i < len(st.block.Nodes); i++ {
			n := st.block.Nodes[i]
			switch ls.Classify(n) {
			case classSatisfy:
				return nil, false // this path is balanced
			case classDefer:
				st.armed = true
			case classStop:
				return nil, false
			case classExitLeak:
				if st.armed {
					return nil, false
				}
				return append(path, PathStep{Node: n, Block: st.block}), true
			}
			if st.errLive && ls.KillsErr != nil && ls.KillsErr(n) {
				st.errLive = false
			}
		}
		if st.block == c.Exit {
			if st.armed {
				return nil, false
			}
			return path, true
		}
		for _, e := range st.block.Succs {
			if st.errLive && ls.ErrPrune != nil && ls.ErrPrune(e) {
				continue // the acquire failed on this path; nothing to leak
			}
			next := pathState{block: e.To, idx: 0, armed: st.armed, errLive: st.errLive}
			step := path
			if len(e.To.Nodes) > 0 {
				step = append(path, PathStep{Node: e.To.Nodes[0], Block: e.To})
			}
			if leak, found := dfs(next, step); found {
				return leak, true
			}
		}
		return nil, false
	}
	return dfs(pathState{block: start, idx: startIdx, errLive: true}, nil)
}

// Reachable returns the set of blocks reachable from `from`.
func (c *CFG) Reachable(from *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(from)
	return seen
}

// RenderPath formats a leak path as a compact chain of source lines,
// deduplicating consecutive identical lines.
func RenderPath(fset *token.FileSet, path []PathStep) string {
	var parts []string
	last := -1
	for _, st := range path {
		line := fset.Position(st.Node.Pos()).Line
		if line == last {
			continue
		}
		last = line
		parts = append(parts, fmt.Sprintf("line %d", line))
	}
	if len(parts) == 0 {
		return "the path falling off the end of the function"
	}
	return "the path " + strings.Join(parts, " -> ")
}
