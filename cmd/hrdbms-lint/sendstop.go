package main

// sendstop is the CFG-backed successor of the old goleak-hint heuristic.
// Instead of pattern-matching for "some sign of cancellation", it proves a
// termination property per channel send: every send in a `go func` literal
// in the exchange packages must be one of
//
//   - a comm clause of a select that also has a stop clause (a receive from
//     a done/stop/ctx channel, or a default) from which the goroutine's
//     exit is reachable in the CFG, or
//   - a send on a channel that is provably buffered (made with a non-zero
//     capacity in the same enclosing function) and that the goroutine sends
//     on at most once per execution (the send does not sit on a CFG cycle),
//     i.e. the errgroup pattern `errs := make(chan error, n)` + one
//     goroutine sending once.
//
// Anything else can block forever when the consumer abandons the stream —
// the classic exchange-operator goroutine leak — and is reported.

import (
	"fmt"
	"go/ast"
	"regexp"
)

// sendstopPkgs are the packages whose goroutines move query data between
// operators and nodes.
var sendstopPkgs = map[string]bool{
	"repro/internal/exec":    true,
	"repro/internal/cluster": true,
	"repro/internal/srv":     true,
}

var sendstopAnalyzer = &Analyzer{
	Name: "sendstop",
	Doc:  "proves every channel send in an exec/cluster goroutine can terminate: select with a reachable stop case, or a bounded single-shot buffered send",
	Run:  runSendstop,
}

// stopNameRe matches identifiers that by convention carry a cancellation or
// completion signal (stop, done, quit, ctx.Done(), cancel, closed).
var stopNameRe = regexp.MustCompile(`(?i)^(stop|done|quit|ctx|cancel|closed)`)

func runSendstop(p *Pass) {
	if !sendstopPkgs[p.Pkg.Path] {
		return
	}
	for _, f := range p.Pkg.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			buffered := bufferedChans(body)
			ast.Inspect(body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineSends(p, lit, buffered)
				}
				return true
			})
		})
	}
}

// bufferedChans collects the channels the function visibly creates with a
// non-zero capacity, keyed by their rendered expression path ("errs",
// "d.errs"). The capacity expression is the programmer's declaration that
// sends are bounded; this pass only checks the declaration exists.
func bufferedChans(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isBufferedMake(rhs) {
				continue
			}
			if path := exprPath(as.Lhs[i]); path != "" {
				out[path] = true
			}
		}
		return true
	})
	return out
}

// isBufferedMake reports whether e is make(chan T, n) with n not the
// literal 0.
func isBufferedMake(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
		return false
	}
	if _, ok := call.Args[0].(*ast.ChanType); !ok {
		return false
	}
	if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
		return false
	}
	return true
}

// exprPath renders an ident/selector chain ("x", "x.f.g"); "" for anything
// else.
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// checkGoroutineSends verifies every send statement in one goroutine body
// (excluding nested function literals, which have their own scope and —
// when launched with go — their own check).
func checkGoroutineSends(p *Pass, lit *ast.FuncLit, buffered map[string]bool) {
	cfg := BuildCFG(lit.Body)
	parents := parentMap(lit.Body)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl != lit {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		checkSend(p, cfg, parents, send, buffered)
		return true
	})
}

func checkSend(p *Pass, cfg *CFG, parents map[ast.Node]ast.Node, send *ast.SendStmt, buffered map[string]bool) {
	chName := exprPath(send.Chan)
	if chName == "" {
		chName = "channel"
	}

	// Send as a select comm clause: the select must carry a stop clause
	// from which the goroutine's exit is reachable.
	if cc, ok := parents[send].(*ast.CommClause); ok && cc.Comm == send {
		sel := enclosingSelect(parents, cc)
		if sel == nil {
			return
		}
		stop := stopClause(sel, cc)
		if stop == nil {
			p.Report("sendstop", send.Pos(), fmt.Sprintf(
				"select sending on %s has no stop/done/default case; the goroutine blocks forever if the consumer departs", chName))
			return
		}
		if stop.Comm == nil {
			return // default clause: the select (and so the send) never blocks
		}
		if blk := clauseBlock(cfg, sel, stop); blk != nil && !cfg.Reachable(blk)[cfg.Exit] {
			p.Report("sendstop", send.Pos(), fmt.Sprintf(
				"the stop case guarding the send on %s cannot reach the goroutine's exit", chName))
		}
		return
	}

	// Bare send: allowed only under the bounded single-shot buffered-channel
	// proof.
	if buffered[exprPath(send.Chan)] && !onCycle(cfg, send) {
		return
	}
	p.Report("sendstop", send.Pos(), fmt.Sprintf(
		"send on %s outside select: the goroutine blocks forever if the receiver is gone; "+
			"wrap it in a select with a stop/done case, or make the channel buffered in this function and send at most once", chName))
}

// enclosingSelect walks up from a comm clause to its select statement.
func enclosingSelect(parents map[ast.Node]ast.Node, cc *ast.CommClause) *ast.SelectStmt {
	for n := parents[cc]; n != nil; n = parents[n] {
		if sel, ok := n.(*ast.SelectStmt); ok {
			return sel
		}
	}
	return nil
}

// stopClause returns a clause of sel (other than sendClause) that stops the
// goroutine from blocking: a default, or a receive from a stop-like channel.
func stopClause(sel *ast.SelectStmt, sendClause *ast.CommClause) *ast.CommClause {
	for _, raw := range sel.Body.List {
		cc, ok := raw.(*ast.CommClause)
		if !ok || cc == sendClause {
			continue
		}
		if cc.Comm == nil {
			return cc // default: the select never blocks
		}
		if ch := recvChan(cc.Comm); ch != nil && isStopExpr(ch) {
			return cc
		}
	}
	return nil
}

// recvChan extracts the channel of a receive comm statement (`<-ch`,
// `v := <-ch`, `v, ok := <-ch`), or nil for sends.
func recvChan(comm ast.Stmt) ast.Expr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op.String() == "<-" {
		return ue.X
	}
	return nil
}

// isStopExpr reports whether the received-from expression names a stop
// signal: `stop`, `p.done`, `ctx.Done()`.
func isStopExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return stopNameRe.MatchString(x.Name)
	case *ast.SelectorExpr:
		return stopNameRe.MatchString(x.Sel.Name)
	case *ast.CallExpr:
		return stopNameRe.MatchString(calleeName(x))
	}
	return false
}

// clauseBlock finds the CFG block holding the given (non-default) clause's
// comm node.
func clauseBlock(cfg *CFG, sel *ast.SelectStmt, cc *ast.CommClause) *Block {
	for _, b := range cfg.Blocks {
		if b.SelectCase != sel {
			continue
		}
		for _, n := range b.Nodes {
			if n == cc.Comm {
				return b
			}
		}
	}
	return nil
}

// onCycle reports whether the send statement sits on a CFG cycle (i.e. one
// goroutine execution may reach it more than once).
func onCycle(cfg *CFG, send *ast.SendStmt) bool {
	var home *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if n == send {
				home = b
			}
		}
	}
	if home == nil {
		return true // not located: be conservative
	}
	for _, e := range home.Succs {
		if cfg.Reachable(e.To)[home] {
			return true
		}
	}
	return false
}
