package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a file containing one function and returns its body and
// fileset.
func parseBody(t *testing.T, src string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// blocksByKind indexes a CFG's blocks by kind.
func blocksByKind(c *CFG) map[string][]*Block {
	m := map[string][]*Block{}
	for _, b := range c.Blocks {
		m[b.Kind] = append(m[b.Kind], b)
	}
	return m
}

// hasEdge reports whether from has an edge to to.
func hasEdge(from, to *Block) bool {
	for _, e := range from.Succs {
		if e.To == to {
			return true
		}
	}
	return false
}

// classifyByText builds a Classify func from source-text markers: nodes
// whose rendered source line contains the given substrings map to the
// class. Good enough for structural tests that have no type info.
func classifyContains(fset *token.FileSet, src string, satisfy, deferSat, exitLeak string) func(ast.Node) nodeClass {
	lines := strings.Split(src, "\n")
	lineOf := func(n ast.Node) string {
		l := fset.Position(n.Pos()).Line - 2 // minus the injected "package p" line, 1-indexed
		if l < 0 || l >= len(lines) {
			return ""
		}
		return lines[l]
	}
	return func(n ast.Node) nodeClass {
		text := lineOf(n)
		switch n.(type) {
		case *ast.ReturnStmt:
			if satisfy != "" && strings.Contains(text, satisfy) {
				return classSatisfy
			}
			return classExitLeak
		case *ast.DeferStmt:
			if deferSat != "" && strings.Contains(text, deferSat) {
				return classDefer
			}
			return classNone
		}
		if satisfy != "" && strings.Contains(text, satisfy) {
			return classSatisfy
		}
		return classNone
	}
}

// TestCFGDeferReturn: a defer that satisfies the protocol arms every later
// exit, so an early return between acquire and release is not a leak; the
// same function without the defer leaks through the early return.
func TestCFGDeferReturn(t *testing.T) {
	src := `func f(err error) {
	acquire()
	defer release()
	if err != nil {
		return
	}
	use()
}`
	fset, body := parseBody(t, src)
	c := BuildCFG(body)
	if _, found := FindLeakPath(c, c.Entry, 1, LeakSearch{
		Classify: classifyContains(fset, src, "release", "release", ""),
	}); found {
		t.Fatalf("defer release() should satisfy the early return")
	}

	srcLeak := `func f(err error) {
	acquire()
	if err != nil {
		return
	}
	release()
}`
	fset, body = parseBody(t, srcLeak)
	c = BuildCFG(body)
	path, found := FindLeakPath(c, c.Entry, 1, LeakSearch{
		Classify: classifyContains(fset, srcLeak, "release", "", ""),
	})
	if !found {
		t.Fatalf("early return before release() must leak")
	}
	if got := RenderPath(fset, path); !strings.Contains(got, "line") {
		t.Fatalf("leak path should name source lines, got %q", got)
	}
}

// TestCFGSelectDefault: a select with a default never blocks — the default
// clause is an ordinary successor of the select head — while a select
// without one has edges only to its comm clauses. Clause blocks carry
// their select for the sendstop rule.
func TestCFGSelectDefault(t *testing.T) {
	src := `func f(ch chan int) {
	select {
	case v := <-ch:
		use(v)
	default:
		idle()
	}
	done()
}`
	_, body := parseBody(t, src)
	c := BuildCFG(body)
	kinds := blocksByKind(c)
	if len(kinds["switch.case"]) != 1 || len(kinds["switch.default"]) != 1 {
		t.Fatalf("want 1 case + 1 default clause, got %v", kinds)
	}
	for _, blk := range append(kinds["switch.case"], kinds["switch.default"]...) {
		if blk.SelectCase == nil {
			t.Errorf("clause block %d lost its SelectCase backlink", blk.Index)
		}
	}
	// Entry reaches both clauses and the join continues to done()/exit.
	reach := c.Reachable(c.Entry)
	if !reach[c.Exit] {
		t.Fatalf("exit unreachable through select")
	}

	srcNoDefault := `func f(ch chan int, stop chan struct{}) {
	select {
	case v := <-ch:
		use(v)
	case <-stop:
		return
	}
}`
	_, body = parseBody(t, srcNoDefault)
	c = BuildCFG(body)
	kinds = blocksByKind(c)
	if len(kinds["switch.case"]) != 2 {
		t.Fatalf("want 2 comm clauses, got %d", len(kinds["switch.case"]))
	}
	// The select head (entry here) must not skip past the clauses: every
	// successor of the head is a clause.
	for _, e := range c.Entry.Succs {
		if e.To.SelectCase == nil {
			t.Errorf("blocking select has a non-clause successor %q", e.To.Kind)
		}
	}
}

// TestCFGGoto: forward and backward gotos produce the declared edges,
// including the loop a backward goto forms.
func TestCFGGoto(t *testing.T) {
	src := `func f(n int) {
retry:
	n--
	if n > 0 {
		goto retry
	}
	if n < -10 {
		goto out
	}
	use(n)
out:
	done()
}`
	_, body := parseBody(t, src)
	c := BuildCFG(body)
	kinds := blocksByKind(c)
	retry := kinds["label.retry"][0]
	out := kinds["label.out"][0]
	foundBack, foundFwd := false, false
	// The gotos live in the if.then blocks after the label.
	for _, b := range kinds["if.then"] {
		if hasEdge(b, retry) {
			foundBack = true
		}
		if hasEdge(b, out) {
			foundFwd = true
		}
	}
	if !foundBack {
		t.Errorf("backward goto edge to label.retry missing")
	}
	if !foundFwd {
		t.Errorf("forward goto edge to label.out missing")
	}
	if !c.Reachable(c.Entry)[c.Exit] {
		t.Errorf("exit unreachable")
	}
}

// TestCFGLoopBackEdges: for and range loops close back edges, and a leak
// search does not diverge on them; a resource acquired each iteration and
// released only on break leaks through the loop exit.
func TestCFGLoopBackEdges(t *testing.T) {
	src := `func f(n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
	for _, v := range list {
		work(v)
	}
}`
	_, body := parseBody(t, src)
	c := BuildCFG(body)
	kinds := blocksByKind(c)
	forHead, forPost := kinds["for.head"][0], kinds["for.post"][0]
	if !hasEdge(forPost, forHead) {
		t.Errorf("for loop missing post->head back edge")
	}
	rangeHead, rangeBody := kinds["range.head"][0], kinds["range.body"][0]
	if !hasEdge(rangeBody, rangeHead) {
		t.Errorf("range loop missing body->head back edge")
	}

	// Leak search across a back edge terminates and finds the loop-exit
	// leak: acquire in the body, release only under the conditional break.
	srcLeak := `func f(items []int) {
	for _, v := range items {
		acquire(v)
		if v > 10 {
			release(v)
			break
		}
	}
	done()
}`
	fset, body := parseBody(t, srcLeak)
	c = BuildCFG(body)
	var acq *Block
	acqIdx := -1
	for _, b := range c.Blocks {
		for i, n := range b.Nodes {
			if fset.Position(n.Pos()).Line == 3 { // acquire(v)
				acq, acqIdx = b, i
			}
		}
	}
	if acq == nil {
		t.Fatal("acquire statement not located")
	}
	if _, found := FindLeakPath(c, acq, acqIdx+1, LeakSearch{
		Classify: classifyContains(fset, srcLeak, "release", "", ""),
	}); !found {
		t.Errorf("loop-iteration leak (no release on back edge) not found")
	}
}
