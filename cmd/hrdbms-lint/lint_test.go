package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"go/ast"
)

// exportMap builds the import-path → export-data map for the repo's
// internal packages and their transitive (stdlib) dependencies, shared by
// every fixture case.
func exportMap(t *testing.T) map[string]string {
	t.Helper()
	listed, err := goList(".", []string{"repro/internal/..."})
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// loadFixture parses and type-checks one testdata directory under the given
// package path, returning the package and the expected diagnostics as
// "line" → substring.
func loadFixture(t *testing.T, exports map[string]string, dir, pkgPath string) (*Package, map[int]string) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	wants := map[int]string{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants[i+1] = m[1]
			}
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	imp := newExportImporter(fset, exports)
	typesPkg, info, err := checkFiles(fset, pkgPath, files, imp)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: typesPkg, Info: info}, wants
}

// TestAnalyzersOnFixtures checks, per analyzer, that every marked violation
// is caught, that clean and suppressed code produces no findings, and that
// at least one true positive exists per rule.
func TestAnalyzersOnFixtures(t *testing.T) {
	exports := exportMap(t)
	cases := []struct {
		dir     string
		pkgPath string // goleak fixtures masquerade as internal/cluster
		rule    string
	}{
		{"pinpair", "fixtures/pinpair", "pinpair"},
		{"txnpair", "fixtures/txnpair", "txnpair"},
		{"workerpair", "repro/internal/cluster", "workerpair"},
		{"walerr", "fixtures/walerr", "walerr"},
		{"goleak", "repro/internal/cluster", "goleak-hint"},
		{"rowchan", "repro/internal/exec", "rowchan"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, wants := loadFixture(t, exports, filepath.Join("testdata", tc.dir), tc.pkgPath)
			diags := RunAnalyzers(pkg)

			matched := map[int]bool{}
			caught := 0
			for _, d := range diags {
				want, ok := wants[d.Pos.Line]
				if !ok {
					t.Errorf("unexpected diagnostic (suppression or clean code misfired): %s", d)
					continue
				}
				if !strings.Contains(d.Msg, want) {
					t.Errorf("line %d: diagnostic %q does not contain %q", d.Pos.Line, d.Msg, want)
				}
				if d.Rule == tc.rule {
					caught++
				}
				matched[d.Pos.Line] = true
			}
			for line, want := range wants {
				if !matched[line] {
					t.Errorf("line %d: expected diagnostic containing %q, got none", line, want)
				}
			}
			if caught == 0 {
				t.Errorf("analyzer %s caught no violations in its fixture", tc.rule)
			}
		})
	}
}

// TestSuppressionRequiresRuleMatch: a lint:ignore for one rule must not
// silence another rule on the same line.
func TestSuppressionRequiresRuleMatch(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "x.go", Line: 10}, Rule: "pinpair", Msg: "m"},
		{Pos: token.Position{Filename: "x.go", Line: 20}, Rule: "walerr", Msg: "m"},
	}
	sup := map[string]map[int]map[string]bool{
		"x.go": {10: {"walerr": true}, 20: {"walerr": true}},
	}
	out := filterSuppressed(diags, sup)
	if len(out) != 1 || out[0].Rule != "pinpair" {
		t.Fatalf("filterSuppressed = %v, want only the pinpair finding", out)
	}
}

// TestLintCleanOnRepo runs the full linter over the repository, pinning the
// invariant that production code stays lint-clean (CI gate parity).
func TestLintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list over the whole module")
	}
	pkgs, err := loadPackages("../..", []string{"./..."}, false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	var all []string
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzers(pkg) {
			all = append(all, d.String())
		}
	}
	if len(all) > 0 {
		t.Errorf("repo is not lint-clean:\n%s", strings.Join(all, "\n"))
	}
	if len(pkgs) < 20 {
		t.Errorf("loaded only %d packages; loader lost coverage", len(pkgs))
	}
	_ = fmt.Sprintf // keep fmt referenced if assertions change
}
