package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"go/ast"
)

// exportMap builds the import-path → export-data map for the repo's
// internal packages and their transitive (stdlib) dependencies, shared by
// every fixture case.
func exportMap(t *testing.T) map[string]string {
	t.Helper()
	listed, err := goList(".", []string{"repro/internal/..."})
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// loadFixture parses and type-checks one testdata directory under the given
// package path, returning the package and the expected diagnostics as
// "line" → substring.
func loadFixture(t *testing.T, exports map[string]string, dir, pkgPath string) (*Package, map[int]string) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	wants := map[int]string{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants[i+1] = m[1]
			}
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	imp := newExportImporter(fset, exports)
	typesPkg, info, err := checkFiles(fset, pkgPath, files, imp)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: typesPkg, Info: info}, wants
}

// TestAnalyzersOnFixtures checks, per analyzer, that every marked violation
// is caught, that clean and suppressed code produces no findings, and that
// at least one true positive exists per rule.
func TestAnalyzersOnFixtures(t *testing.T) {
	exports := exportMap(t)
	cases := []struct {
		dir     string
		pkgPath string // package-gated rules load under the gated path
		rule    string
	}{
		{"pinpair", "fixtures/pinpair", "pinpair"},
		{"txnpair", "fixtures/txnpair", "txnpair"},
		{"workerpair", "repro/internal/cluster", "workerpair"},
		{"spanpair", "fixtures/spanpair", "spanpair"},
		{"slabown", "fixtures/slabown", "slabown"},
		{"vecown", "fixtures/vecown", "vecown"},
		{"lockorder", "fixtures/lockorder", "lockorder"},
		{"walerr", "fixtures/walerr", "walerr"},
		{"sendstop", "repro/internal/cluster", "sendstop"},
		{"rowchan", "repro/internal/exec", "rowchan"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, wants := loadFixture(t, exports, filepath.Join("testdata", tc.dir), tc.pkgPath)
			diags := RunAnalyzers(pkg)

			matched := map[int]bool{}
			caught := 0
			for _, d := range diags {
				want, ok := wants[d.Pos.Line]
				if !ok {
					t.Errorf("unexpected diagnostic (suppression or clean code misfired): %s", d)
					continue
				}
				if !strings.Contains(d.Msg, want) {
					t.Errorf("line %d: diagnostic %q does not contain %q", d.Pos.Line, d.Msg, want)
				}
				if d.Rule == tc.rule {
					caught++
				}
				matched[d.Pos.Line] = true
			}
			for line, want := range wants {
				if !matched[line] {
					t.Errorf("line %d: expected diagnostic containing %q, got none", line, want)
				}
			}
			if caught == 0 {
				t.Errorf("analyzer %s caught no violations in its fixture", tc.rule)
			}
		})
	}
}

// TestLeakPathReported pins the path-sensitive half of the pairing rules:
// a branch leak's diagnostic names the concrete line sequence it was
// proven on.
func TestLeakPathReported(t *testing.T) {
	exports := exportMap(t)
	pkg, _ := loadFixture(t, exports, filepath.Join("testdata", "pinpair"), "fixtures/pinpair")
	found := false
	for _, d := range RunAnalyzers(pkg) {
		if d.Rule != "pinpair" || !strings.Contains(d.Msg, "reported path") {
			continue
		}
		found = true
		if !strings.Contains(d.Path, "line ") {
			t.Errorf("leak diagnostic %s carries no concrete path (Path=%q)", d, d.Path)
		}
		if !strings.Contains(d.String(), "["+d.Path+"]") {
			t.Errorf("String() does not render the path: %s", d)
		}
	}
	if !found {
		t.Fatal("no path-sensitive pinpair leak found in the fixture")
	}
}

// TestSuppressionRequiresRuleMatch: a lint:ignore for one rule must not
// silence another rule on the same line, and exercised suppressions are
// reported back for staleness accounting.
func TestSuppressionRequiresRuleMatch(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "x.go", Line: 10}, Rule: "pinpair", Msg: "m"},
		{Pos: token.Position{Filename: "x.go", Line: 20}, Rule: "walerr", Msg: "m"},
	}
	sup := &suppressionSet{byLine: map[string]map[int]map[string]bool{
		"x.go": {10: {"walerr": true}, 20: {"walerr": true}},
	}}
	out, used := filterSuppressed(diags, sup)
	if len(out) != 1 || out[0].Rule != "pinpair" {
		t.Fatalf("filterSuppressed = %v, want only the pinpair finding", out)
	}
	if !used["x.go:20:walerr"] {
		t.Fatalf("used = %v, want the exercised walerr suppression recorded", used)
	}
	if used["x.go:10:walerr"] {
		t.Fatalf("used = %v, the rule-mismatched directive must not count as exercised", used)
	}
}

// TestStaleSuppressionReported: a //lint:ignore that silences nothing is
// itself a finding.
func TestStaleSuppressionReported(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

func f() {
	//lint:ignore pinpair this excuses nothing
	_ = 1
}
`
	f, err := parser.ParseFile(fset, "stale.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := suppressions(fset, []*ast.File{f})
	if len(sup.directives) != 1 {
		t.Fatalf("parsed %d directives, want 1", len(sup.directives))
	}
	out, used := filterSuppressed(nil, sup)
	if len(out) != 0 {
		t.Fatalf("no diagnostics in, got %v out", out)
	}
	stale := staleSuppressions(&Package{Fset: fset}, sup, used)
	if len(stale) != 1 || stale[0].Rule != "staleignore" {
		t.Fatalf("staleSuppressions = %v, want one staleignore finding", stale)
	}
	if !strings.Contains(stale[0].Msg, "pinpair") {
		t.Fatalf("stale finding does not name the dead rule: %s", stale[0].Msg)
	}
}

// TestLintCleanOnRepo runs the full linter over the repository — with the
// module-level lock index, exactly as main does — pinning the invariant
// that production code stays lint-clean (CI gate parity).
func TestLintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list over the whole module")
	}
	pkgs, err := loadPackages("../..", []string{"./..."}, false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	locks := BuildLockIndex(pkgs)
	var all []string
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzersWithIndex(pkg, locks) {
			all = append(all, d.String())
		}
	}
	if len(all) > 0 {
		t.Errorf("repo is not lint-clean:\n%s", strings.Join(all, "\n"))
	}
	if len(pkgs) < 20 {
		t.Errorf("loaded only %d packages; loader lost coverage", len(pkgs))
	}
}
