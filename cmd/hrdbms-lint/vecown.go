package main

// vecown enforces the VecOperator ownership contract documented in
// internal/exec/vector.go and internal/vec: the *vec.Batch returned by
// NextVec — and every slab reachable from it (Sel, a column's I/F/Codes/
// Nulls slices, a Col header copy) — is valid only until the producer's
// next NextVec or Close call. Storing the batch pointer or a slab into a
// struct field, a package variable, or a closure that outlives the
// statement retains memory the producer is about to reset and refill.
// Boxed values (Col.Value(i)) and materialized rows (Batch.Materialize,
// Batch.ReadRow) are independent storage and may be retained.
//
// The analysis is the vector sibling of slabown and intra-procedural in
// the same way: it tracks variables bound to a NextVec result (and their
// aliases and derived slabs) through the function and flags
//
//   - assignment of a batch/slab expression to a struct field or
//     package-level variable, and
//   - any use of a tracked variable inside a function literal that is not
//     invoked on the spot.
//
// Writes INTO the tracked batch are sanctioned — the contract explicitly
// lets the consumer rewrite b.Sel in place — so stores whose destination
// is itself rooted at a tracked batch never trip the rule. Function-call
// results (Value, Materialize, ReadRow) resolve to no root and are the
// sanctioned escape hatch, as are scalar reads like b.N.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

var vecownAnalyzer = &Analyzer{
	Name: "vecown",
	Doc:  "flags NextVec batches (or their column slabs) stored into fields, package vars, or escaping closures",
	Run:  runVecown,
}

func runVecown(p *Pass) {
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkVecBody(p, body)
			for _, lit := range nestedFuncLits(body) {
				checkVecFuncLits(p, lit.Body)
			}
		})
	}
}

// checkVecFuncLits recurses the per-literal analysis: each literal body is
// its own scope for batches acquired inside it.
func checkVecFuncLits(p *Pass, body *ast.BlockStmt) {
	checkVecBody(p, body)
	for _, lit := range nestedFuncLits(body) {
		checkVecFuncLits(p, lit.Body)
	}
}

// isVecNamed reports whether t is the named type internal/vec.<name>.
func isVecNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/vec")
}

// isVecBatchPtr reports whether t is *vec.Batch.
func isVecBatchPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isVecNamed(ptr.Elem(), "Batch")
}

// isNextVecCall reports whether call is a NextVec returning a vector batch.
func isNextVecCall(p *Pass, call *ast.CallExpr) bool {
	if calleeName(call) != "NextVec" {
		return false
	}
	results := resultTuple(p.Pkg.Info, call)
	return len(results) > 0 && isVecBatchPtr(results[0])
}

// vecHazardType reports whether retaining a value of type t can retain
// producer-owned slab memory: the batch pointer itself, any slice (Sel,
// I/F/Codes/Nulls, Cols), any pointer derived from the batch, or a Col
// header copy (a struct of slice headers). Scalars and boxed values are
// safe.
func vecHazardType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch x := t.(type) {
	case *types.Slice, *types.Pointer:
		return true
	case *types.Named:
		return isVecNamed(x, "Col") || isVecNamed(x, "Batch")
	}
	return false
}

// vecRoot resolves an expression to the batch variable it is derived from:
// the ident itself, or the root of a selector/index/slice chain (b.Sel,
// b.Cols[i].I, b.Sel[:n], &b.Cols[i]). Call results are NOT derived —
// Value/Materialize/ReadRow produce independent storage by contract.
func vecRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkVecBody analyzes one function body (not descending into nested
// literals except to look for escaping uses of this body's batches).
func checkVecBody(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info

	// Pass 1: collect tracked objects — NextVec results and, to fixpoint,
	// their aliases and derived slabs. Only hazard-typed bindings are
	// tracked: n := b.N copies a scalar and retains nothing.
	tracked := map[types.Object]bool{}
	ownLit := map[ast.Node]bool{} // nested literal subtrees, skipped in pass 1
	for _, lit := range nestedFuncLits(body) {
		ownLit[lit] = true
	}
	scan := func() bool {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			if ownLit[n] {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				if obj := defOrUse(info, id); obj != nil && !tracked[obj] {
					tracked[obj] = true
					changed = true
				}
			}
			if len(as.Rhs) == 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isNextVecCall(p, call) {
					mark(as.Lhs[0])
					return true
				}
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					if !vecHazardType(info.TypeOf(rhs)) {
						continue
					}
					if root := vecRoot(rhs); root != nil {
						if obj := info.Uses[root]; obj != nil && tracked[obj] {
							mark(as.Lhs[i])
						}
					}
				}
			}
			return true
		})
		return changed
	}
	for scan() {
	}
	if len(tracked) == 0 {
		return
	}

	isTrackedExpr := func(e ast.Expr) bool {
		root := vecRoot(e)
		if root == nil {
			return false
		}
		obj := info.Uses[root]
		return obj != nil && tracked[obj]
	}

	// Pass 2: flag stores into fields and package variables. A destination
	// rooted at a tracked batch is a write INTO the batch (b.Sel = ...),
	// sanctioned by the contract.
	ast.Inspect(body, func(n ast.Node) bool {
		if ownLit[n] {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !vecHazardType(info.TypeOf(rhs)) || !isTrackedExpr(rhs) {
				continue
			}
			switch lhs := as.Lhs[i].(type) {
			case *ast.SelectorExpr:
				if isTrackedExpr(lhs) {
					continue // write into the batch itself (e.g. b.Sel = sel)
				}
				p.Report("vecown", rhs.Pos(), fmt.Sprintf(
					"NextVec batch slab stored into field %s outlives the batch: it is only valid until the producer's next NextVec/Close (materialize or copy; boxed values are retainable, slabs are not)",
					lhs.Sel.Name))
			case *ast.Ident:
				if obj := defOrUse(info, lhs); obj != nil && isPackageLevel(obj) {
					p.Report("vecown", rhs.Pos(), fmt.Sprintf(
						"NextVec batch slab stored into package variable %s outlives the batch: it is only valid until the producer's next NextVec/Close (materialize or copy)",
						lhs.Name))
				}
			}
		}
		return true
	})

	// Pass 3: flag tracked uses inside closures that are not invoked on the
	// spot — by the time a goroutine or stored callback runs, the producer
	// may have reset and refilled the batch.
	parents := parentMap(body)
	for _, lit := range nestedFuncLits(body) {
		if call, ok := parents[lit].(*ast.CallExpr); ok && call.Fun == lit {
			continue // immediately invoked: runs before the next NextVec
		}
		ast.Inspect(lit, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := info.Uses[id]; obj != nil && tracked[obj] {
				p.Report("vecown", id.Pos(), fmt.Sprintf(
					"NextVec batch %s captured by an escaping closure: the closure may run after the producer reclaims the batch (materialize the rows before capture)", id.Name))
				return false
			}
			return true
		})
	}
}
