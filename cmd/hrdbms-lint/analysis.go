package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding. Path, when set, is the concrete
// control-flow path the finding is about (path-sensitive rules).
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
	Path string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
	if d.Path != "" {
		s += " [" + d.Path + "]"
	}
	return s
}

// Pass carries one package through every analyzer and collects findings.
type Pass struct {
	Pkg   *Package
	Locks *LockIndex // module-level lock model (lockorder)
	diags []Diagnostic
}

// Analyzer is one lint rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Analyzers is the full rule set, in reporting order.
var Analyzers = []*Analyzer{
	pinpairAnalyzer,
	txnpairAnalyzer,
	workerpairAnalyzer,
	spanpairAnalyzer,
	slabownAnalyzer,
	vecownAnalyzer,
	lockorderAnalyzer,
	walerrAnalyzer,
	sendstopAnalyzer,
	rowchanAnalyzer,
}

// Report records a finding unless a lint:ignore comment suppresses it.
func (p *Pass) Report(rule string, pos token.Pos, msg string) {
	p.ReportPath(rule, pos, msg, "")
}

// ReportPath records a finding carrying the concrete control-flow path it
// was proven on.
func (p *Pass) ReportPath(rule string, pos token.Pos, msg, path string) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{Pos: position, Rule: rule, Msg: msg, Path: path})
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+(.+)`)

// suppressionSet indexes the package's `//lint:ignore <rule> <reason>`
// comments: a directive suppresses the rule on its own line (trailing
// comment) and on the following line. The directive list is kept so unused
// directives can themselves be reported (staleignore).
type suppressionSet struct {
	byLine     map[string]map[int]map[string]bool // filename -> line -> rules
	directives []ignoreDirective
}

// ignoreDirective is one //lint:ignore comment.
type ignoreDirective struct {
	file string
	line int
	pos  token.Pos
	rule string
}

func suppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	sup := &suppressionSet{byLine: map[string]map[int]map[string]bool{}}
	add := func(file string, line int, rule string) {
		if sup.byLine[file] == nil {
			sup.byLine[file] = map[int]map[string]bool{}
		}
		if sup.byLine[file][line] == nil {
			sup.byLine[file][line] = map[string]bool{}
		}
		sup.byLine[file][line][rule] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				sup.directives = append(sup.directives, ignoreDirective{
					file: pos.Filename, line: pos.Line, pos: c.Pos(), rule: m[1]})
				add(pos.Filename, pos.Line, m[1])
				add(pos.Filename, pos.Line+1, m[1])
			}
		}
	}
	return sup
}

// filterSuppressed drops diagnostics covered by lint:ignore comments,
// returning the survivors and the set of (file, line, rule) suppression
// hits that were actually exercised.
func filterSuppressed(diags []Diagnostic, sup *suppressionSet) ([]Diagnostic, map[string]bool) {
	used := map[string]bool{}
	var out []Diagnostic
	for _, d := range diags {
		if lines, ok := sup.byLine[d.Pos.Filename]; ok {
			if rules, ok := lines[d.Pos.Line]; ok && rules[d.Rule] {
				used[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Rule)] = true
				continue
			}
		}
		out = append(out, d)
	}
	return out, used
}

// staleSuppressions reports every //lint:ignore directive that silenced
// nothing this run: suppressions must not outlive the code they excused.
func staleSuppressions(pkg *Package, sup *suppressionSet, used map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range sup.directives {
		if used[fmt.Sprintf("%s:%d:%s", d.file, d.line, d.rule)] ||
			used[fmt.Sprintf("%s:%d:%s", d.file, d.line+1, d.rule)] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:  pkg.Fset.Position(d.pos),
			Rule: "staleignore",
			Msg:  fmt.Sprintf("//lint:ignore %s suppresses nothing here; remove it (or fix the rule name)", d.rule),
		})
	}
	return out
}

// sortDiags orders diagnostics by position for stable output.
func sortDiags(out []Diagnostic) []Diagnostic {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// RunAnalyzersWithIndex applies every analyzer to the package, using a
// shared module-level lock index, and returns the unsuppressed findings
// plus the rule names that were actually suppressed per file/line (for
// stale-suppression detection).
func RunAnalyzersWithIndex(pkg *Package, locks *LockIndex) []Diagnostic {
	pass := &Pass{Pkg: pkg, Locks: locks}
	for _, a := range Analyzers {
		a.Run(pass)
	}
	sup := suppressions(pkg.Fset, pkg.Files)
	out, used := filterSuppressed(pass.diags, sup)
	out = append(out, staleSuppressions(pkg, sup, used)...)
	return sortDiags(out)
}

// RunAnalyzers is RunAnalyzersWithIndex with a lock index built from the
// single package (fixture tests; self-contained packages).
func RunAnalyzers(pkg *Package) []Diagnostic {
	return RunAnalyzersWithIndex(pkg, BuildLockIndex([]*Package{pkg}))
}

// isTestFile reports whether the position is inside a _test.go file.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// parentMap records the enclosing node of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// calleeName returns the bare name of a call's function: the method name
// for selector calls, the identifier for direct calls, "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}

// calleeFunc resolves a call's static callee to its types.Func, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	case *ast.Ident:
		obj = info.Uses[fn]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// resultTuple returns the call's result types (handling single and tuple
// results uniformly), or nil when unknown.
func resultTuple(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{t}
	}
}

// isNamedPtr reports whether t is a pointer to (or directly) the named type
// pkgSuffix.name, e.g. ("internal/buffer", "Frame").
func isNamedPtr(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// funcBodies yields every function body in the file with its descriptive
// name: declared functions/methods and (nested) function literals.
func funcBodies(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd.Name.Name, fd.Body)
	}
}
