package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Pass carries one package through every analyzer and collects findings.
type Pass struct {
	Pkg   *Package
	diags []Diagnostic
}

// Analyzer is one lint rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Analyzers is the full rule set, in reporting order.
var Analyzers = []*Analyzer{
	pinpairAnalyzer,
	txnpairAnalyzer,
	workerpairAnalyzer,
	walerrAnalyzer,
	goleakHintAnalyzer,
	rowchanAnalyzer,
}

// Report records a finding unless a lint:ignore comment suppresses it.
func (p *Pass) Report(rule string, pos token.Pos, msg string) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{Pos: position, Rule: rule, Msg: msg})
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+(.+)`)

// suppressions maps filename -> line -> set of suppressed rule names. A
// `//lint:ignore <rule> <reason>` comment suppresses the rule on its own
// line (trailing comment) and on the following line.
func suppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	sup := map[string]map[int]map[string]bool{}
	add := func(file string, line int, rule string) {
		if sup[file] == nil {
			sup[file] = map[int]map[string]bool{}
		}
		if sup[file][line] == nil {
			sup[file][line] = map[string]bool{}
		}
		sup[file][line][rule] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, m[1])
				add(pos.Filename, pos.Line+1, m[1])
			}
		}
	}
	return sup
}

// filterSuppressed drops diagnostics covered by lint:ignore comments and
// returns the survivors sorted by position.
func filterSuppressed(diags []Diagnostic, sup map[string]map[int]map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if lines, ok := sup[d.Pos.Filename]; ok {
			if rules, ok := lines[d.Pos.Line]; ok && rules[d.Rule] {
				continue
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// RunAnalyzers applies every analyzer to the package and returns the
// unsuppressed findings.
func RunAnalyzers(pkg *Package) []Diagnostic {
	pass := &Pass{Pkg: pkg}
	for _, a := range Analyzers {
		a.Run(pass)
	}
	return filterSuppressed(pass.diags, suppressions(pkg.Fset, pkg.Files))
}

// isTestFile reports whether the position is inside a _test.go file.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// parentMap records the enclosing node of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// calleeName returns the bare name of a call's function: the method name
// for selector calls, the identifier for direct calls, "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}

// calleeFunc resolves a call's static callee to its types.Func, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	case *ast.Ident:
		obj = info.Uses[fn]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// resultTuple returns the call's result types (handling single and tuple
// results uniformly), or nil when unknown.
func resultTuple(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{t}
	}
}

// isNamedPtr reports whether t is a pointer to (or directly) the named type
// pkgSuffix.name, e.g. ("internal/buffer", "Frame").
func isNamedPtr(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// funcBodies yields every function body in the file with its descriptive
// name: declared functions/methods and (nested) function literals.
func funcBodies(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd.Name.Name, fd.Body)
	}
}
