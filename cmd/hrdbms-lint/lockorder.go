package main

// lockorder builds a partial order over the repo's annotated mutexes and
// flags nested acquisitions the order does not permit.
//
// Annotation syntax (docs/STATIC_ANALYSIS.md):
//
//	type Log struct {
//		mu sync.Mutex //lint:lockorder wal.log
//	}
//
// names the lock class of a mutex field. Appending `leaf` declares a
// leaf-only class: no other annotated mutex may be acquired while it is
// held. File-level directives declare the permitted nestings:
//
//	//lint:lockorder-before txn.lockmgr wal.log
//
// means "txn.lockmgr may be held while acquiring wal.log". The relation is
// transitive; any nested acquisition of two annotated classes NOT covered
// by the (closed) relation is reported — the partial order is an explicit
// allowlist, so new nestings must be declared where they are introduced.
//
// The analysis is module-aware: BuildLockIndex computes, for every
// function in the analyzed package set, the set of classes it may acquire
// (a fixpoint over the static call graph; function literals are excluded
// from summaries because they run at an unknown time). The per-function
// check then runs a held-set dataflow over the CFG: direct Lock/RLock
// calls add a class, Unlock/RUnlock remove it, and every call site is
// checked against its callee's may-acquire summary — so holding tx.mu
// across a call chain that eventually locks the WAL is caught without
// whole-program path explosion. Self-nesting (one class while holding the
// same class) is permitted: distinct instances of a class are ordered by
// the code, not by this rule.

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

var lockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "flags nested mutex acquisitions that violate the annotated lock order",
	Run:  runLockorder,
}

var (
	lockClassRe  = regexp.MustCompile(`//\s*lint:lockorder\s+([\w.-]+)(\s+leaf)?\s*$`)
	lockBeforeRe = regexp.MustCompile(`//\s*lint:lockorder-before\s+([\w.-]+)\s+([\w.-]+)`)
)

// LockIndex is the module-level lock model shared by every package's
// lockorder pass.
type LockIndex struct {
	classes map[string]string          // "pkg.Type.field" -> class name
	leaf    map[string]bool            // class -> leaf-only
	before  map[string]map[string]bool // transitive closure: outer -> inner allowed
	may     map[string]map[string]bool // funcKey -> classes the function may acquire
}

// BuildLockIndex scans every package for lock annotations and computes
// each function's may-acquire summary to fixpoint over the static call
// graph.
func BuildLockIndex(pkgs []*Package) *LockIndex {
	idx := &LockIndex{
		classes: map[string]string{},
		leaf:    map[string]bool{},
		before:  map[string]map[string]bool{},
		may:     map[string]map[string]bool{},
	}
	for _, pkg := range pkgs {
		idx.collectAnnotations(pkg)
	}
	idx.closeBefore()

	// Direct acquisitions and call edges per function.
	direct := map[string]map[string]bool{}
	calls := map[string]map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				key := funcKey(fn)
				if key == "" {
					continue
				}
				d, c := map[string]bool{}, map[string]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false // runs at an unknown time; not part of this summary
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if class, op := idx.lockOp(pkg.Info, call); class != "" {
						if op == "lock" {
							d[class] = true
						}
						return true
					}
					if ck := funcKey(calleeFunc(pkg.Info, call)); ck != "" {
						c[ck] = true
					}
					return true
				})
				direct[key] = d
				calls[key] = c
			}
		}
	}

	// Fixpoint: may[f] = direct[f] ∪ may[callees(f)].
	for k, d := range direct {
		m := map[string]bool{}
		for c := range d {
			m[c] = true
		}
		idx.may[k] = m
	}
	for changed := true; changed; {
		changed = false
		for k, cs := range calls {
			for c := range cs {
				for class := range idx.may[c] {
					if !idx.may[k][class] {
						idx.may[k][class] = true
						changed = true
					}
				}
			}
		}
	}
	return idx
}

// collectAnnotations reads the class and before directives of one package.
func (idx *LockIndex) collectAnnotations(pkg *Package) {
	pkgPath := pkg.Path
	for _, f := range pkg.Files {
		// Before-edges can appear in any comment group.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := lockBeforeRe.FindStringSubmatch(c.Text); m != nil {
					if idx.before[m[1]] == nil {
						idx.before[m[1]] = map[string]bool{}
					}
					idx.before[m[1]][m[2]] = true
				}
			}
		}
		// Class annotations live on struct fields.
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				m := fieldLockAnnotation(field)
				if m == nil {
					continue
				}
				class, isLeaf := m[1], strings.TrimSpace(m[2]) == "leaf"
				for _, name := range field.Names {
					key := pkgPath + "." + ts.Name.Name + "." + name.Name
					idx.classes[key] = class
					if isLeaf {
						idx.leaf[class] = true
					}
				}
			}
			return true
		})
	}
}

// fieldLockAnnotation extracts a lockorder class directive from a struct
// field's doc or trailing comment.
func fieldLockAnnotation(field *ast.Field) []string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := lockClassRe.FindStringSubmatch(c.Text); m != nil {
				return m
			}
		}
	}
	return nil
}

// closeBefore takes the transitive closure of the before relation.
func (idx *LockIndex) closeBefore() {
	for changed := true; changed; {
		changed = false
		for a, bs := range idx.before {
			for b := range bs {
				for c := range idx.before[b] {
					if !idx.before[a][c] {
						idx.before[a][c] = true
						changed = true
					}
				}
			}
		}
	}
}

// allows reports whether acquiring inner while holding outer is permitted.
func (idx *LockIndex) allows(outer, inner string) bool {
	if outer == inner {
		return true
	}
	if idx.leaf[outer] {
		return false
	}
	return idx.before[outer][inner]
}

// lockOp classifies a call as an acquisition ("lock") or release
// ("unlock") of an annotated mutex class, or ("", "") otherwise.
func (idx *LockIndex) lockOp(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	var op string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	key := lockFieldKey(info, field)
	if key == "" {
		return "", ""
	}
	class, ok := idx.classes[key]
	if !ok {
		return "", ""
	}
	return class, op
}

// lockFieldKey renders <owner>.<field> as "pkgpath.Type.field" from the
// selector's type information.
func lockFieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + sel.Sel.Name
}

// funcKey is the module-stable identity of a function: "pkgpath.Name" or
// "pkgpath.Recv.Name" for methods. "" for nil or non-module functions.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name() + "."
		}
	}
	return fn.Pkg().Path() + "." + recv + fn.Name()
}

func runLockorder(p *Pass) {
	idx := p.Locks
	if idx == nil || len(idx.classes) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkLockBody(p, idx, body)
			for _, lit := range nestedFuncLits(body) {
				checkLockLits(p, idx, lit.Body)
			}
		})
	}
}

func checkLockLits(p *Pass, idx *LockIndex, body *ast.BlockStmt) {
	checkLockBody(p, idx, body)
	for _, lit := range nestedFuncLits(body) {
		checkLockLits(p, idx, lit.Body)
	}
}

// checkLockBody runs the held-set dataflow over one function body and
// reports order violations at acquisition sites and call sites.
func checkLockBody(p *Pass, idx *LockIndex, body *ast.BlockStmt) {
	// Violations require this function to hold something: a direct Lock.
	anyLock := false
	ast.Inspect(body, func(n ast.Node) bool {
		if anyLock {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if class, op := idx.lockOp(p.Pkg.Info, call); class != "" && op == "lock" {
				anyLock = true
			}
		}
		return true
	})
	if !anyLock {
		return
	}

	cfg := BuildCFG(body)
	transfer := func(b *Block, in map[string]bool) map[string]bool {
		held := map[string]bool{}
		for k := range in {
			held[k] = true
		}
		for _, n := range b.Nodes {
			applyLockNode(p, idx, n, held, false)
		}
		return held
	}
	fixpoint := Dataflow(cfg, transfer)
	for _, b := range cfg.Blocks {
		held := map[string]bool{}
		for k := range fixpoint[b] {
			held[k] = true
		}
		for _, n := range b.Nodes {
			applyLockNode(p, idx, n, held, true)
		}
	}
}

// applyLockNode updates the held set across one block node, reporting
// violations when report is set. Defer bodies are skipped (a deferred
// Unlock releases at exit, so the lock is treated as held for the rest of
// the function — the conservative direction). Function literals are
// skipped (analyzed as their own functions).
func applyLockNode(p *Pass, idx *LockIndex, node ast.Node, held map[string]bool, report bool) {
	if _, ok := node.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, op := idx.lockOp(p.Pkg.Info, call); class != "" {
			switch op {
			case "lock":
				if report {
					for h := range held {
						if !idx.allows(h, class) {
							p.Report("lockorder", call.Pos(), lockViolationMsg(idx, h, class, ""))
						}
					}
				}
				held[class] = true
			case "unlock":
				delete(held, class)
			}
			return true
		}
		if !report || len(held) == 0 {
			return true
		}
		ck := funcKey(calleeFunc(p.Pkg.Info, call))
		for class := range idx.may[ck] {
			for h := range held {
				if !idx.allows(h, class) {
					p.Report("lockorder", call.Pos(), lockViolationMsg(idx, h, class, calleeName(call)))
				}
			}
		}
		return true
	})
}

func lockViolationMsg(idx *LockIndex, outer, inner, via string) string {
	how := fmt.Sprintf("acquiring %s", inner)
	if via != "" {
		how = fmt.Sprintf("calling %s (which may acquire %s)", via, inner)
	}
	if idx.leaf[outer] {
		return fmt.Sprintf("%s while holding leaf-only %s: leaf mutexes must not nest over anything", how, outer)
	}
	return fmt.Sprintf("%s while holding %s is not covered by the declared lock order; declare `//lint:lockorder-before %s %s` where this nesting is introduced, or restructure",
		how, outer, outer, inner)
}
