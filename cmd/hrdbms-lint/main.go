// Command hrdbms-lint is HRDBMS's repo-specific static analyzer. It encodes
// the correctness conventions the compiler cannot see, proving the
// path-sensitive ones on a per-function control-flow graph:
//
//	pinpair     every buffer.Fetch/NewPage pin must reach an Unpin
//	txnpair     every txn.Begin must reach Commit/Rollback (SS2PL release)
//	workerpair  every exec.Ctx.AcquireWorkers grant must reach ReleaseWorkers
//	spanpair    every obs.QueryTrace.StartSpan must reach Finish on all paths
//	slabown     NextBatch slabs must not be stored beyond the batch lifetime
//	vecown      NextVec batches and their column slabs must not be retained
//	lockorder   nested mutex acquisitions must respect the declared partial order
//	walerr      errors on WAL/storage write paths must not be discarded
//	sendstop    exec/cluster goroutine sends need a proven non-blocking exit
//	rowchan     no per-row channels (chan types.Row) on execution hot paths
//	staleignore a //lint:ignore that suppresses nothing is itself a finding
//
// Findings are suppressed with `//lint:ignore <rule> <reason>` on the same
// or preceding line. Exit status is 1 when any finding survives.
//
// With -json, each finding is printed as one JSON object per line with
// file/line/col/rule/message/path fields. When GITHUB_ACTIONS=1, findings
// are additionally emitted as ::error workflow annotations.
//
// Usage: go run ./cmd/hrdbms-lint [-tests] [-json] [packages ...]   (default ./...)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// jsonDiagnostic is the -json wire format, one object per line.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Path    string `json:"path,omitempty"`
}

func emit(d Diagnostic, asJSON bool, ghActions bool) {
	if asJSON {
		b, err := json.Marshal(jsonDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Msg, Path: d.Path,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hrdbms-lint:", err)
			os.Exit(2)
		}
		fmt.Println(string(b))
	} else {
		fmt.Println(d)
	}
	if ghActions {
		msg := d.Rule + ": " + d.Msg
		if d.Path != "" {
			msg += " [" + d.Path + "]"
		}
		fmt.Printf("::error file=%s,line=%d,col=%d::%s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, msg)
	}
}

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	asJSON := flag.Bool("json", false, "emit findings as JSON, one object per line")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loadPackages(".", patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hrdbms-lint:", err)
		os.Exit(2)
	}
	ghActions := os.Getenv("GITHUB_ACTIONS") == "1" || os.Getenv("GITHUB_ACTIONS") == "true"
	locks := BuildLockIndex(pkgs)
	bad := false
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzersWithIndex(pkg, locks) {
			emit(d, *asJSON, ghActions)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
