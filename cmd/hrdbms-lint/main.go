// Command hrdbms-lint is HRDBMS's repo-specific static analyzer. It encodes
// the correctness conventions the compiler cannot see:
//
//	pinpair     every buffer.Fetch/NewPage pin must reach an Unpin
//	txnpair     every txn.Begin must reach Commit/Rollback (SS2PL release)
//	workerpair  every exec.Ctx.AcquireWorkers grant must reach ReleaseWorkers
//	walerr      errors on WAL/storage write paths must not be discarded
//	goleak-hint exec/cluster goroutines need a cancellation/completion signal
//	rowchan     no per-row channels (chan types.Row) on execution hot paths
//
// Findings are suppressed with `//lint:ignore <rule> <reason>` on the same
// or preceding line. Exit status is 1 when any finding survives.
//
// Usage: go run ./cmd/hrdbms-lint [-tests] [packages ...]   (default ./...)
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loadPackages(".", patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hrdbms-lint:", err)
		os.Exit(2)
	}
	bad := false
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzers(pkg) {
			fmt.Println(d)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
