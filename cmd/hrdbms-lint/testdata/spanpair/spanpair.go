// Package fixtures exercises the spanpair analyzer: every span opened with
// StartSpan must reach Finish on all paths, or escape to an owner.
package fixtures

import "repro/internal/obs"

func leakDiscarded(tr *obs.QueryTrace) {
	tr.StartSpan("scan", 0) // want "discarded"
}

func leakBlank(tr *obs.QueryTrace) {
	_ = tr.StartSpan("scan", 0) // want "assigned to _"
}

// leakEarlyReturn finishes the span on the happy path but not on the
// early return: the path-sensitive search reports that concrete path.
func leakEarlyReturn(tr *obs.QueryTrace, rows int) {
	sp := tr.StartSpan("agg", 1) // want "never"
	if rows == 0 {
		return
	}
	sp.AddRowsOut(int64(rows))
	sp.Finish()
}

func okDeferFinish(tr *obs.QueryTrace) {
	sp := tr.StartSpan("sort", 0)
	defer sp.Finish()
	sp.AddRowsOut(1)
}

func okDirectFinish(tr *obs.QueryTrace) {
	sp := tr.StartSpan("join", 2)
	sp.Finish()
}

func okEscapesViaReturn(tr *obs.QueryTrace) *obs.Span {
	return tr.StartSpan("join", 2)
}

type traced struct{ sp *obs.Span }

// okEscapesViaField mirrors exec.Traced: the struct owns the span and
// finishes it at Close.
func okEscapesViaField(tr *obs.QueryTrace, t *traced) {
	t.sp = tr.StartSpan("exchange", 0)
}

func okSuppressed(tr *obs.QueryTrace) {
	//lint:ignore spanpair fixture: root span intentionally spans the whole query
	tr.StartSpan("root", 0)
}
