// Package fixtures exercises the sendstop analyzer. The test loads it
// under the package path repro/internal/cluster, one of the two packages
// the rule applies to.
package fixtures

func bareSendLeak(out chan int) {
	go func() {
		out <- 1 // want "outside select"
	}()
}

func selectNoStop(out chan int, other chan int) {
	go func() {
		select {
		case out <- 1: // want "no stop/done/default"
		case other <- 2: // want "no stop/done/default"
		}
	}()
}

// stopCannotExit has a stop case, but it only drains: the goroutine loops
// forever, so the stop case proves nothing about termination.
func stopCannotExit(out chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case out <- 1: // want "cannot reach"
			case <-done:
			}
		}
	}()
}

// loopedBufferedLeak: the channel is buffered, but the send sits on a CFG
// cycle, so one execution may send more times than the buffer holds.
func loopedBufferedLeak(n int) chan int {
	out := make(chan int, 4)
	go func() {
		for i := 0; i < n; i++ {
			out <- i // want "outside select"
		}
	}()
	return out
}

func okSelectStop(out chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case out <- 1:
			case <-stop:
				return
			}
		}
	}()
}

func okDefault(out chan int) {
	go func() {
		select {
		case out <- 1:
		default:
		}
	}()
}

// okBoundedErrgroup is the sanctioned bare-send shape: buffered in this
// function, sent at most once per goroutine.
func okBoundedErrgroup(work func() error) chan error {
	errs := make(chan error, 1)
	go func() {
		errs <- work()
	}()
	return errs
}

func okSuppressed(out chan int) {
	go func() {
		//lint:ignore sendstop fixture: the consumer contract guarantees a drain
		out <- 1
	}()
}
