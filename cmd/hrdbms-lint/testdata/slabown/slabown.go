// Package fixtures exercises the slabown analyzer: the slab returned by
// NextBatch (and any alias or sub-slice of it) must not be stored beyond
// the batch lifetime. Row values are immutable and retainable.
package fixtures

import "repro/internal/types"

type batchSrc struct{ rows []types.Row }

func (b *batchSrc) NextBatch() ([]types.Row, error) { return b.rows, nil }

type sink struct {
	last []types.Row
	rows []types.Row
}

type rowSink struct{ row types.Row }

var lastBatch []types.Row

func leakField(src *batchSrc, s *sink) {
	b, _ := src.NextBatch()
	s.last = b // want "stored into field"
}

func leakSubslice(src *batchSrc, s *sink) {
	b, _ := src.NextBatch()
	s.rows = b[:1] // want "stored into field"
}

func leakAlias(src *batchSrc, s *sink) {
	b, _ := src.NextBatch()
	alias := b
	s.last = alias // want "stored into field"
}

func leakPackageVar(src *batchSrc) {
	b, _ := src.NextBatch()
	lastBatch = b // want "package variable"
}

func leakClosure(src *batchSrc) func() types.Row {
	b, _ := src.NextBatch()
	return func() types.Row {
		return b[0] // want "escaping closure"
	}
}

// okRowRetained: b[i] is a row VALUE, immutable by contract.
func okRowRetained(src *batchSrc, rs *rowSink) {
	b, _ := src.NextBatch()
	rs.row = b[0]
}

// okCopied: copy produces independent storage.
func okCopied(src *batchSrc, s *sink) {
	b, _ := src.NextBatch()
	cp := make([]types.Row, len(b))
	copy(cp, b)
	s.rows = cp
}

// okAppended: append into a destination the sink owns is a copy, not a
// store of the slab's slice header.
func okAppended(src *batchSrc, s *sink) {
	b, _ := src.NextBatch()
	s.rows = append(s.rows[:0], b...)
}

// okImmediateClosure runs before the next NextBatch can be issued.
func okImmediateClosure(src *batchSrc) int {
	b, _ := src.NextBatch()
	return func() int { return len(b) }()
}

func okSuppressed(src *batchSrc, s *sink) {
	b, _ := src.NextBatch()
	//lint:ignore slabown fixture: sink is drained before the next NextBatch
	s.last = b
}
