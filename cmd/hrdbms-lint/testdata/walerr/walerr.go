// Package fixtures exercises the walerr analyzer.
package fixtures

import (
	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/wal"
)

func bareFlush(l *wal.Log) {
	l.Flush() // want "silently discarded"
}

func blankFlush(l *wal.Log) {
	_ = l.Flush() // want "discarded with _"
}

func blankFetch(m *buffer.Manager, k page.Key) *buffer.Frame {
	f, _ := m.Fetch(k) // want "discarded with _"
	defer m.Unpin(f, false)
	return f
}

func bareFlushAll(m *buffer.Manager) {
	m.FlushAll() // want "silently discarded"
}

func deferredFlush(l *wal.Log) {
	defer l.Flush() // want "deferred"
}

func okDeferredClose(l *wal.Log) {
	defer l.Close()
}

func okChecked(l *wal.Log) error {
	return l.Flush()
}

func okHandled(l *wal.Log) {
	if err := l.Flush(); err != nil {
		panic(err)
	}
}

func okSuppressed(l *wal.Log) {
	//lint:ignore walerr fixture: best-effort flush on a shutdown path
	l.Flush()
}
