// Package fixtures exercises the vecown analyzer: the *vec.Batch returned
// by NextVec — and every slab reachable from it — must not be stored
// beyond the batch lifetime. Boxed values and materialized rows are
// independent storage and retainable.
package fixtures

import (
	"repro/internal/types"
	"repro/internal/vec"
)

type vecSrc struct{ b *vec.Batch }

func (v *vecSrc) NextVec() (*vec.Batch, bool, error) { return v.b, true, nil }

type sink struct {
	last *vec.Batch
	sel  []int32
	ints []int64
	col  vec.Col
	n    int
	v    types.Value
	rows []types.Row
}

var lastVec *vec.Batch

func leakBatchField(src *vecSrc, s *sink) {
	b, _, _ := src.NextVec()
	s.last = b // want "stored into field"
}

func leakSelSlab(src *vecSrc, s *sink) {
	b, _, _ := src.NextVec()
	s.sel = b.Sel // want "stored into field"
}

func leakColSlab(src *vecSrc, s *sink) {
	b, _, _ := src.NextVec()
	s.ints = b.Cols[0].I // want "stored into field"
}

func leakColHeader(src *vecSrc, s *sink) {
	b, _, _ := src.NextVec()
	s.col = b.Cols[0] // want "stored into field"
}

func leakAlias(src *vecSrc, s *sink) {
	b, _, _ := src.NextVec()
	sel := b.Sel[:0]
	s.sel = sel // want "stored into field"
}

func leakPackageVar(src *vecSrc) {
	b, _, _ := src.NextVec()
	lastVec = b // want "package variable"
}

func leakClosure(src *vecSrc) func() int {
	b, _, _ := src.NextVec()
	return func() int {
		return b.N // want "escaping closure"
	}
}

// okScalar: b.N copies a scalar, nothing producer-owned is retained.
func okScalar(src *vecSrc, s *sink) {
	b, _, _ := src.NextVec()
	s.n = b.N
}

// okBoxedValue: Col.Value boxes into independent storage, retainable by
// contract.
func okBoxedValue(src *vecSrc, s *sink) {
	b, _, _ := src.NextVec()
	s.v = b.Cols[0].Value(0)
}

// okMaterialize: Materialize flattens the batch into rows the caller owns.
func okMaterialize(src *vecSrc, s *sink) {
	b, _, _ := src.NextVec()
	s.rows = b.Materialize(nil)
}

// okSelRewrite: the contract lets the consumer rewrite Sel in place —
// writes INTO the batch are sanctioned.
func okSelRewrite(src *vecSrc) {
	b, _, _ := src.NextVec()
	b.Sel = b.Sel[:0]
}

// okImmediateClosure runs before the next NextVec can be issued.
func okImmediateClosure(src *vecSrc) int {
	b, _, _ := src.NextVec()
	return func() int { return b.N }()
}

func okSuppressed(src *vecSrc, s *sink) {
	b, _, _ := src.NextVec()
	//lint:ignore vecown fixture: cursor is consumed before the next NextVec
	s.last = b
}
