// Package fixtures exercises the workerpair analyzer: every worker grant
// from exec.Ctx.AcquireWorkers must reach ReleaseWorkers (or be handed off
// to code that owns the release).
package fixtures

import "repro/internal/exec"

func bareDiscard(ctx *exec.Ctx) {
	ctx.AcquireWorkers(4) // want "discarded"
}

func blankAssign(ctx *exec.Ctx) {
	_ = ctx.AcquireWorkers(4) // want "assigned to _"
}

func neverReleased(ctx *exec.Ctx) int {
	granted := ctx.AcquireWorkers(4) // want "never released"
	total := 0
	if granted > 1 {
		total++
	}
	return total
}

func okDeferRelease(ctx *exec.Ctx) {
	granted := ctx.AcquireWorkers(4)
	defer ctx.ReleaseWorkers(granted)
}

// okConditionalAcquire mirrors the engine's pattern: the degree starts
// serial and is raised by the grant under a parallelism check.
func okConditionalAcquire(ctx *exec.Ctx, parallel int) int {
	degree := 1
	if parallel > 1 {
		degree = ctx.AcquireWorkers(parallel)
		defer ctx.ReleaseWorkers(degree)
	}
	return degree
}

// okHandOff transfers ownership of the grant to the callee.
func okHandOff(ctx *exec.Ctx) {
	granted := ctx.AcquireWorkers(2)
	runAndRelease(ctx, granted)
}

func runAndRelease(ctx *exec.Ctx, granted int) {
	defer ctx.ReleaseWorkers(granted)
}

// okReturned hands the grant to the caller.
func okReturned(ctx *exec.Ctx) int {
	return ctx.AcquireWorkers(2)
}

func okSuppressed(ctx *exec.Ctx) {
	//lint:ignore workerpair fixture: grant is held until process exit
	ctx.AcquireWorkers(4)
}
