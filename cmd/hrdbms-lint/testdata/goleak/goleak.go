// Package fixtures exercises the goleak-hint analyzer. The test loads it
// under the package path repro/internal/cluster, one of the two packages
// the rule applies to.
package fixtures

import "sync"

func leakyProducer(out chan int) {
	go func() { // want "no select"
		for i := 0; i < 10; i++ {
			out <- i
		}
		close(out)
	}()
}

func okSelect(out chan int, stop chan struct{}) {
	go func() {
		select {
		case out <- 1:
		case <-stop:
		}
	}()
}

func okWaitGroup(wg *sync.WaitGroup, out chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		out <- 1
	}()
}

func okStopChanHandoff(rows chan int, stop chan struct{}, run func(chan int, chan struct{})) {
	go func() {
		run(rows, stop)
	}()
}

func okSuppressed(out chan int) {
	//lint:ignore goleak-hint fixture: out is buffered by the caller
	go func() {
		out <- 1
	}()
}
