// Package fixtures exercises the rowchan analyzer. The test loads it
// under the package path repro/internal/exec, one of the two hot-path
// packages the rule applies to.
package fixtures

import "repro/internal/types"

type rowPipe struct {
	rows chan types.Row // want "slabs"
}

func makesRowChan() {
	ch := make(chan types.Row, 256) // want "slabs"
	_ = ch
	_ = rowPipe{}
}

func sendOnlyParam(out chan<- types.Row) { // want "slabs"
	_ = out
}

func okBatchChan(out chan []types.Row) {
	cp := make(chan []types.Row, 16)
	_ = cp
	_ = out
}

func okValueChan(vals chan types.Value) {
	_ = vals
}

func okSuppressed() {
	//lint:ignore rowchan fixture: adapter boundary needs a row channel
	ch := make(chan types.Row)
	_ = ch
}
