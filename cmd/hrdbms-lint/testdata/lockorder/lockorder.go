// Package fixtures exercises the lockorder analyzer with a self-contained
// lock hierarchy: a coarse table latch ordered above a fine row latch, and
// a leaf-only stats latch nothing may nest under.
//
//lint:lockorder-before fix.table fix.row
package fixtures

import "sync"

type table struct {
	mu sync.Mutex //lint:lockorder fix.table
}

type row struct {
	mu sync.Mutex //lint:lockorder fix.row
}

type stats struct {
	mu sync.Mutex //lint:lockorder fix.stats leaf
}

func okDeclaredOrder(t *table, r *row) {
	t.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	t.mu.Unlock()
}

func invertedOrder(t *table, r *row) {
	r.mu.Lock()
	t.mu.Lock() // want "not covered"
	t.mu.Unlock()
	r.mu.Unlock()
}

func underLeaf(s *stats, r *row) {
	s.mu.Lock()
	r.mu.Lock() // want "leaf-only"
	r.mu.Unlock()
	s.mu.Unlock()
}

func lockRow(r *row) {
	r.mu.Lock()
	r.mu.Unlock()
}

// transitiveViaCall: the violation is one call away — caught through the
// callee's may-acquire summary, not a syntactic Lock call.
func transitiveViaCall(s *stats, r *row) {
	s.mu.Lock()
	lockRow(r) // want "may acquire"
	s.mu.Unlock()
}

// okSequential: release before acquiring the other class; no nesting.
func okSequential(t *table, r *row) {
	r.mu.Lock()
	r.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}

func okSuppressed(t *table, r *row) {
	r.mu.Lock()
	//lint:ignore lockorder fixture: single-threaded bootstrap, ordering moot
	t.mu.Lock()
	t.mu.Unlock()
	r.mu.Unlock()
}
