// Package fixtures exercises the pinpair analyzer: true positives carry a
// want-marker comment; everything else must stay diagnostic-free.
package fixtures

import (
	"repro/internal/buffer"
	"repro/internal/page"
)

func leakNoUnpin(m *buffer.Manager, k page.Key) {
	f, err := m.Fetch(k) // want "never"
	if err != nil {
		return
	}
	_ = f.Buf[0]
}

func leakDiscarded(m *buffer.Manager, k page.Key) {
	m.NewPage(k) // want "discarded"
}

func leakBlank(m *buffer.Manager, k page.Key) {
	_, err := m.Fetch(k) // want "assigned to _"
	if err != nil {
		return
	}
}

// leakOnEarlyReturn unpins on the happy path but not on the skip branch;
// the diagnostic names that concrete path.
func leakOnEarlyReturn(m *buffer.Manager, k page.Key, skip bool) {
	f, err := m.Fetch(k) // want "never"
	if err != nil {
		return
	}
	if skip {
		return
	}
	m.Unpin(f, false)
}

// okErrPathPruned: the only Unpin-free return is the failed-fetch path,
// which carries no pin — the err-check pruning must not report it.
func okErrPathPruned(m *buffer.Manager, k page.Key) {
	f, err := m.Fetch(k)
	if err != nil {
		return
	}
	m.Unpin(f, false)
}

func okDeferredUnpin(m *buffer.Manager, k page.Key) error {
	f, err := m.Fetch(k)
	if err != nil {
		return err
	}
	defer m.Unpin(f, false)
	_ = f.Buf[0]
	return nil
}

func okDirectUnpin(m *buffer.Manager, k page.Key) error {
	f, err := m.NewPage(k)
	if err != nil {
		return err
	}
	f.Buf[0] = 1
	m.Unpin(f, true)
	return nil
}

func okEscapesViaReturn(m *buffer.Manager, k page.Key) (*buffer.Frame, error) {
	return m.Fetch(k)
}

func okEscapesViaAssign(m *buffer.Manager, k page.Key, frames []*buffer.Frame) error {
	f, err := m.Fetch(k)
	if err != nil {
		return err
	}
	frames[0] = f
	return nil
}

func okSuppressed(m *buffer.Manager, k page.Key) {
	//lint:ignore pinpair fixture: leak is intentional to test suppression
	f, err := m.Fetch(k)
	if err != nil {
		return
	}
	_ = f.Buf[0]
}
