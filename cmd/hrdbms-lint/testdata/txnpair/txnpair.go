// Package fixtures exercises the txnpair analyzer.
package fixtures

import "repro/internal/txn"

func leakNoFinish(m *txn.Manager) uint64 {
	tx := m.Begin() // want "never"
	return tx.TxID()
}

func leakDiscarded(m *txn.Manager) {
	m.BeginWithID(42) // want "discarded"
}

// leakOnBranch commits on the slow path only; the fast-return branch
// abandons the transaction with its SS2PL locks held.
func leakOnBranch(m *txn.Manager, fast bool) error {
	tx := m.Begin() // want "never"
	if fast {
		return nil
	}
	return m.Commit(tx)
}

func okCommit(m *txn.Manager) error {
	tx := m.Begin()
	return m.Commit(tx)
}

func okRollback(m *txn.Manager) error {
	tx := m.BeginWithID(7)
	return m.Rollback(tx)
}

func okHandoff(m *txn.Manager, use func(*txn.Tx) error) error {
	tx := m.Begin()
	return use(tx)
}

func okEscapesViaReturn(m *txn.Manager) *txn.Tx {
	return m.Begin()
}

func okSuppressed(m *txn.Manager) uint64 {
	//lint:ignore txnpair fixture: resolved by a later 2PC decision
	tx := m.BeginWithID(99)
	return tx.TxID()
}
