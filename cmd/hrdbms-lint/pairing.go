package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// pairingRule describes an acquire/release discipline: calls to a method in
// acquireNames producing a resource of resultType must reach a release (a
// call named in releaseNames taking the resource as argument or receiver)
// on every control-flow path, or the resource must escape (returned,
// stored, or handed to another function, in which case the receiver owns
// the release).
//
// The check is path-sensitive: each acquire site's CFG is searched for a
// concrete path from the acquire to function exit that passes no release
// or escape, and the diagnostic prints that path. Paths on which the
// acquire's own error result was non-nil are pruned — `return err` right
// after a failed Fetch is not a leak.
type pairingRule struct {
	rule         string
	acquireNames map[string]bool
	releaseNames map[string]bool
	resultPkg    string // package path suffix of the resource's named type
	resultName   string
	what         string // human name of the resource, e.g. "pinned frame"
	mustRelease  string // human name of the release, e.g. "Unpinned"
	skipPkg      string // the package implementing the resource is exempt
	// isAcquireFn overrides the default result-type test for rules whose
	// resource is not a named pointer (a worker grant is a plain int, so the
	// acquire is recognized by its receiver type instead).
	isAcquireFn func(p *Pass, call *ast.CallExpr) bool
}

// run applies the rule to every function (and function literal) in the
// package.
func (r *pairingRule) run(p *Pass) {
	if r.skipPkg != "" && p.Pkg.Path == r.skipPkg {
		return
	}
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			r.checkFunc(p, body)
		})
	}
}

// checkFunc analyzes one function body, then each nested function literal
// as its own function (a literal's body is a separate CFG).
func (r *pairingRule) checkFunc(p *Pass, body *ast.BlockStmt) {
	r.checkBody(p, body)
	for _, lit := range nestedFuncLits(body) {
		r.checkFunc(p, lit.Body)
	}
}

// isAcquire reports whether the call acquires this rule's resource.
func (r *pairingRule) isAcquire(p *Pass, call *ast.CallExpr) bool {
	if !r.acquireNames[calleeName(call)] {
		return false
	}
	if r.isAcquireFn != nil {
		return r.isAcquireFn(p, call)
	}
	results := resultTuple(p.Pkg.Info, call)
	if len(results) == 0 {
		return false
	}
	return isNamedPtr(results[0], r.resultPkg, r.resultName)
}

// acquireIn finds an acquire call in the subtree of one block node,
// without descending into nested function literals (those are analyzed as
// their own functions).
func (r *pairingRule) acquireIn(p *Pass, n ast.Node) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(n, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && r.isAcquire(p, call) {
			found = call
			return false
		}
		return true
	})
	return found
}

// checkBody builds the CFG once and verifies every acquire site in it.
func (r *pairingRule) checkBody(p *Pass, body *ast.BlockStmt) {
	// Fast pre-scan: most functions contain no acquire at all.
	any := false
	ast.Inspect(body, func(x ast.Node) bool {
		if any {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && r.isAcquire(p, call) {
			any = true
		}
		return true
	})
	if !any {
		return
	}
	parents := parentMap(body)
	cfg := BuildCFG(body)
	for _, blk := range cfg.Blocks {
		for i, n := range blk.Nodes {
			if call := r.acquireIn(p, n); call != nil {
				r.checkAcquire(p, cfg, blk, i, n, call, parents)
			}
		}
	}
}

// defOrUse resolves an identifier to its object.
func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// checkAcquire verifies one acquire site: the resource must be released or
// escape on every path from the acquire to function exit.
func (r *pairingRule) checkAcquire(p *Pass, cfg *CFG, blk *Block, idx int, node ast.Node, call *ast.CallExpr, parents map[ast.Node]ast.Node) {
	switch parent := parents[call].(type) {
	case *ast.ExprStmt:
		// Bare call: the resource is dropped on the floor.
		p.Report(r.rule, call.Pos(), fmt.Sprintf(
			"result of %s is discarded; the %s is never %s", calleeName(call), r.what, r.mustRelease))

	case *ast.AssignStmt:
		if len(parent.Rhs) != 1 || parent.Rhs[0] != call {
			return // multi-value tricks; out of scope
		}
		id, ok := parent.Lhs[0].(*ast.Ident)
		if !ok {
			return // stored straight into a field/index: escapes
		}
		if id.Name == "_" {
			p.Report(r.rule, call.Pos(), fmt.Sprintf(
				"%s from %s assigned to _; it is never %s", r.what, calleeName(call), r.mustRelease))
			return
		}
		obj := defOrUse(p.Pkg.Info, id)
		if obj == nil {
			return
		}
		// The acquire's error result, if any: paths where it is non-nil
		// carry no resource.
		var errObj types.Object
		if len(parent.Lhs) > 1 {
			if eid, ok := parent.Lhs[len(parent.Lhs)-1].(*ast.Ident); ok && eid.Name != "_" {
				if o := defOrUse(p.Pkg.Info, eid); o != nil && isErrorType(o.Type()) {
					errObj = o
				}
			}
		}
		ls := LeakSearch{
			Classify: func(n ast.Node) nodeClass {
				if n == node || n == parent {
					return classStop // back at the acquire: a fresh iteration
				}
				switch s := n.(type) {
				case *ast.ReturnStmt:
					if r.satisfiesIn(p, parents, s, obj) {
						return classSatisfy
					}
					return classExitLeak
				case *ast.DeferStmt:
					if r.satisfiesIn(p, parents, s, obj) {
						return classDefer
					}
					return classNone
				}
				if r.satisfiesIn(p, parents, n, obj) {
					return classSatisfy
				}
				return classNone
			},
		}
		if errObj != nil {
			info := p.Pkg.Info
			ls.ErrPrune = func(e Edge) bool { return edgeImpliesNonNil(info, e, errObj) }
			ls.KillsErr = func(n ast.Node) bool { return assignsObj(info, n, errObj) }
		}
		if path, found := FindLeakPath(cfg, blk, idx+1, ls); found {
			p.ReportPath(r.rule, call.Pos(), fmt.Sprintf(
				"%s from %s is never %s (no release, return, or hand-off on the reported path)",
				r.what, calleeName(call), r.mustRelease),
				RenderPath(p.Pkg.Fset, path))
		}
	}
	// Other contexts (return value, call argument) hand the resource to
	// the caller/callee, which owns the release.
}

// satisfiesIn reports whether the subtree of n contains a use of obj that
// releases the resource or lets it escape.
func (r *pairingRule) satisfiesIn(p *Pass, parents map[ast.Node]ast.Node, n ast.Node, obj types.Object) bool {
	ok := false
	ast.Inspect(n, func(x ast.Node) bool {
		if ok {
			return false
		}
		id, isIdent := x.(*ast.Ident)
		if !isIdent || p.Pkg.Info.Uses[id] != obj {
			return true
		}
		if r.useSatisfies(p, parents, id) {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// useSatisfies classifies one use of the resource variable: a release call
// (resource as argument or receiver), or any escape (return, hand-off,
// aliasing, storage) counts as balanced.
func (r *pairingRule) useSatisfies(p *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	switch parent := parents[id].(type) {
	case *ast.CallExpr:
		if isBuiltinCall(p, parent) {
			// append aliases the resource into a collection (an escape);
			// len/cap/make/... merely read a value (a worker-grant int used
			// as a size is not a hand-off).
			fun, _ := parent.Fun.(*ast.Ident)
			return fun != nil && fun.Name == "append"
		}
		for _, arg := range parent.Args {
			if arg == id {
				return true // release call, or hand-off that transfers ownership
			}
		}
		return false // id is part of the callee expression
	case *ast.SelectorExpr:
		// A release method invoked on the resource itself: sp.Finish().
		if parent.X != id {
			return false
		}
		if call, ok := parents[parent].(*ast.CallExpr); ok && call.Fun == parent {
			return r.releaseNames[parent.Sel.Name]
		}
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for _, rhs := range parent.Rhs {
			if rhs == id {
				return true // aliased or stored
			}
		}
		return false
	case *ast.KeyValueExpr:
		return parent.Value == id
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return parent.Op.String() == "&"
	case *ast.IndexExpr:
		return parent.Index == id
	}
	return false
}

// isBuiltinCall reports whether the call's callee is a universe builtin
// (make, len, append, ...): passing the resource there is a read, not a
// hand-off.
func isBuiltinCall(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// edgeImpliesNonNil reports whether taking e implies `errObj != nil`: the
// true edge of `err != nil` or the false edge of `err == nil`.
func edgeImpliesNonNil(info *types.Info, e Edge, errObj types.Object) bool {
	be, ok := e.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	if x, okx := be.X.(*ast.Ident); okx && isNilIdent(be.Y) {
		id = x
	} else if y, oky := be.Y.(*ast.Ident); oky && isNilIdent(be.X) {
		id = y
	}
	if id == nil || info.Uses[id] != errObj {
		return false
	}
	switch be.Op.String() {
	case "!=":
		return !e.Neg
	case "==":
		return e.Neg
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// assignsObj reports whether the node reassigns obj (after which the
// acquire's error check no longer guards the resource).
func assignsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if o := info.Defs[id]; o == obj {
					found = true
				}
				if o := info.Uses[id]; o == obj {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// nestedFuncLits returns the function literals directly nested in body
// (literals inside those literals are found by the recursive caller).
func nestedFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}

// pinpairAnalyzer: every buffer.Fetch/NewPage pin must reach an Unpin (a
// leaked pin permanently blocks clock eviction in that stripe).
var pinpairAnalyzer = &Analyzer{
	Name: "pinpair",
	Doc:  "flags Fetch/NewPage call sites whose pinned frame is not Unpinned on some path",
	Run: (&pairingRule{
		rule:         "pinpair",
		acquireNames: map[string]bool{"Fetch": true, "NewPage": true},
		releaseNames: map[string]bool{"Unpin": true},
		resultPkg:    "internal/buffer",
		resultName:   "Frame",
		what:         "pinned frame",
		mustRelease:  "Unpinned",
		skipPkg:      "repro/internal/buffer",
	}).run,
}

// workerpairAnalyzer: every Ctx.AcquireWorkers grant must be returned to
// the node budget with ReleaseWorkers on all paths (or handed off to code
// that releases it); a leaked grant permanently shrinks the worker pool
// every later query on that node draws from.
var workerpairAnalyzer = &Analyzer{
	Name: "workerpair",
	Doc:  "flags Ctx.AcquireWorkers call sites whose worker grant does not reach ReleaseWorkers on some path",
	Run: (&pairingRule{
		rule:         "workerpair",
		acquireNames: map[string]bool{"AcquireWorkers": true},
		releaseNames: map[string]bool{"ReleaseWorkers": true},
		what:         "worker grant",
		mustRelease:  "released",
		isAcquireFn:  isWorkerAcquire,
	}).run,
}

// isWorkerAcquire matches calls to (*exec.Ctx).AcquireWorkers by receiver
// type: the grant is a plain int, so the default named-pointer result test
// cannot identify the acquire.
func isWorkerAcquire(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Pkg.Info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedPtr(sig.Recv().Type(), "internal/exec", "Ctx")
}

// txnpairAnalyzer: every Begin/BeginWithID must reach Commit/Rollback (or
// hand the Tx off); an abandoned Tx holds its SS2PL locks forever.
var txnpairAnalyzer = &Analyzer{
	Name: "txnpair",
	Doc:  "flags Begin/BeginWithID call sites whose transaction is not finished on some path",
	Run: (&pairingRule{
		rule:         "txnpair",
		acquireNames: map[string]bool{"Begin": true, "BeginWithID": true},
		releaseNames: map[string]bool{"Commit": true, "Rollback": true, "Abort": true, "Prepare": true},
		resultPkg:    "internal/txn",
		resultName:   "Tx",
		what:         "transaction",
		mustRelease:  "committed or rolled back",
		skipPkg:      "repro/internal/txn",
	}).run,
}

// spanpairAnalyzer: every obs span opened with StartSpan must reach
// Finish on all paths or escape to an owner (exec.Traced finishes its span
// at Close). An unfinished span renders as a dangling operator in
// EXPLAIN ANALYZE and hides where an errored query actually stopped.
var spanpairAnalyzer = &Analyzer{
	Name: "spanpair",
	Doc:  "flags StartSpan call sites whose span does not reach Finish on some path",
	Run: (&pairingRule{
		rule:         "spanpair",
		acquireNames: map[string]bool{"StartSpan": true, "startSpan": true},
		releaseNames: map[string]bool{"Finish": true},
		resultPkg:    "internal/obs",
		resultName:   "Span",
		what:         "span",
		mustRelease:  "finished",
		skipPkg:      "repro/internal/obs",
	}).run,
}
