package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// pairingRule describes an acquire/release discipline: calls to a method in
// acquireNames producing a resource of resultType must be balanced by
// passing the resource to a call named in releaseNames (or letting it
// escape: returned, stored, or handed to another function, in which case
// the receiver owns the release).
type pairingRule struct {
	rule         string
	acquireNames map[string]bool
	releaseNames map[string]bool
	resultPkg    string // package path suffix of the resource's named type
	resultName   string
	what         string // human name of the resource, e.g. "pinned frame"
	mustRelease  string // human name of the release, e.g. "Unpin"
	skipPkg      string // the package implementing the resource is exempt
	// isAcquireFn overrides the default result-type test for rules whose
	// resource is not a named pointer (a worker grant is a plain int, so the
	// acquire is recognized by its receiver type instead).
	isAcquireFn func(p *Pass, call *ast.CallExpr) bool
}

// run applies the rule to every function in the package.
func (r *pairingRule) run(p *Pass) {
	if r.skipPkg != "" && p.Pkg.Path == r.skipPkg {
		return
	}
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			r.checkBody(p, body)
		})
	}
}

// isAcquire reports whether the call acquires this rule's resource.
func (r *pairingRule) isAcquire(p *Pass, call *ast.CallExpr) bool {
	if !r.acquireNames[calleeName(call)] {
		return false
	}
	if r.isAcquireFn != nil {
		return r.isAcquireFn(p, call)
	}
	results := resultTuple(p.Pkg.Info, call)
	if len(results) == 0 {
		return false
	}
	return isNamedPtr(results[0], r.resultPkg, r.resultName)
}

// checkBody finds acquire sites in one function body and verifies each is
// balanced within that body.
func (r *pairingRule) checkBody(p *Pass, body *ast.BlockStmt) {
	parents := parentMap(body)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !r.isAcquire(p, call) {
			return true
		}
		switch parent := parents[call].(type) {
		case *ast.ExprStmt:
			// Bare call: the resource is dropped on the floor.
			p.Report(r.rule, call.Pos(), fmt.Sprintf(
				"result of %s is discarded; the %s is never %s", calleeName(call), r.what, r.mustRelease))
		case *ast.AssignStmt:
			if len(parent.Rhs) != 1 || parent.Rhs[0] != call {
				return true // multi-value tricks; out of scope
			}
			id, ok := parent.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored into a field/index: escapes
			}
			if id.Name == "_" {
				p.Report(r.rule, call.Pos(), fmt.Sprintf(
					"%s from %s assigned to _; it is never %s", r.what, calleeName(call), r.mustRelease))
				return true
			}
			obj := p.Pkg.Info.Defs[id]
			if obj == nil {
				obj = p.Pkg.Info.Uses[id] // plain `=` to an existing var
			}
			if obj == nil {
				return true
			}
			if !r.balanced(p, body, parents, id, obj) {
				p.Report(r.rule, call.Pos(), fmt.Sprintf(
					"%s from %s is never %s on some path (no release, return, or hand-off found)",
					r.what, calleeName(call), r.mustRelease))
			}
		}
		// Other contexts (return value, call argument) hand the resource to
		// the caller/callee, which owns the release.
		return true
	})
}

// balanced reports whether the resource object is released or escapes
// somewhere in the function body.
func (r *pairingRule) balanced(p *Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, def *ast.Ident, obj types.Object) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || id == def || p.Pkg.Info.Uses[id] != obj {
			return true
		}
		if r.useSatisfies(p, parents, id) {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// useSatisfies classifies one use of the resource variable: a release call,
// or any escape (return, hand-off, aliasing, storage) counts as balanced.
func (r *pairingRule) useSatisfies(p *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	switch parent := parents[id].(type) {
	case *ast.CallExpr:
		for _, arg := range parent.Args {
			if arg == id {
				return true // release call, or hand-off that transfers ownership
			}
		}
		return false // id is part of the callee expression
	case *ast.SelectorExpr:
		return false // field/method access, not a release
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for _, rhs := range parent.Rhs {
			if rhs == id {
				return true // aliased or stored
			}
		}
		return false
	case *ast.KeyValueExpr:
		return parent.Value == id
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return parent.Op.String() == "&"
	case *ast.IndexExpr:
		return parent.Index == id
	}
	return false
}

// pinpairAnalyzer: every buffer.Fetch/NewPage pin must reach an Unpin (a
// leaked pin permanently blocks clock eviction in that stripe).
var pinpairAnalyzer = &Analyzer{
	Name: "pinpair",
	Doc:  "flags Fetch/NewPage call sites whose pinned frame is never Unpinned",
	Run: (&pairingRule{
		rule:         "pinpair",
		acquireNames: map[string]bool{"Fetch": true, "NewPage": true},
		releaseNames: map[string]bool{"Unpin": true},
		resultPkg:    "internal/buffer",
		resultName:   "Frame",
		what:         "pinned frame",
		mustRelease:  "Unpinned",
		skipPkg:      "repro/internal/buffer",
	}).run,
}

// workerpairAnalyzer: every Ctx.AcquireWorkers grant must be returned to
// the node budget with ReleaseWorkers on all paths (or handed off to code
// that releases it); a leaked grant permanently shrinks the worker pool
// every later query on that node draws from.
var workerpairAnalyzer = &Analyzer{
	Name: "workerpair",
	Doc:  "flags Ctx.AcquireWorkers call sites whose worker grant never reaches ReleaseWorkers",
	Run: (&pairingRule{
		rule:         "workerpair",
		acquireNames: map[string]bool{"AcquireWorkers": true},
		releaseNames: map[string]bool{"ReleaseWorkers": true},
		what:         "worker grant",
		mustRelease:  "released",
		isAcquireFn:  isWorkerAcquire,
	}).run,
}

// isWorkerAcquire matches calls to (*exec.Ctx).AcquireWorkers by receiver
// type: the grant is a plain int, so the default named-pointer result test
// cannot identify the acquire.
func isWorkerAcquire(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Pkg.Info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedPtr(sig.Recv().Type(), "internal/exec", "Ctx")
}

// txnpairAnalyzer: every Begin/BeginWithID must reach Commit/Rollback (or
// hand the Tx off); an abandoned Tx holds its SS2PL locks forever.
var txnpairAnalyzer = &Analyzer{
	Name: "txnpair",
	Doc:  "flags Begin/BeginWithID call sites whose transaction is never finished",
	Run: (&pairingRule{
		rule:         "txnpair",
		acquireNames: map[string]bool{"Begin": true, "BeginWithID": true},
		releaseNames: map[string]bool{"Commit": true, "Rollback": true, "Abort": true, "Prepare": true},
		resultPkg:    "internal/txn",
		resultName:   "Tx",
		what:         "transaction",
		mustRelease:  "committed or rolled back",
		skipPkg:      "repro/internal/txn",
	}).run,
}
