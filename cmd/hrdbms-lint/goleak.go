package main

import (
	"go/ast"
	"regexp"
)

// goleakPkgs are the packages whose goroutines move query data between
// operators and nodes; an unbounded goroutine there is the exchange-leak
// pattern (a producer blocked forever on a channel its consumer abandoned).
var goleakPkgs = map[string]bool{
	"repro/internal/exec":    true,
	"repro/internal/cluster": true,
	"repro/internal/obs":     true,
}

// goleakHintAnalyzer flags `go func` literals in exec/cluster that show no
// sign of cancellation or completion signalling: no select, no
// WaitGroup.Done/Wait, and no stop/done/ctx channel in sight.
var goleakHintAnalyzer = &Analyzer{
	Name: "goleak-hint",
	Doc:  "flags goroutines with no visible cancellation or completion signal",
	Run:  runGoleakHint,
}

// stopNameRe matches identifiers that by convention carry a cancellation or
// completion signal.
// Note: the builtin close() deliberately does not match — `defer close(out)`
// is part of the classic leaking-producer shape, not a fix for it.
var stopNameRe = regexp.MustCompile(`(?i)^(stop|done|quit|ctx|cancel|closed)`)

func runGoleakHint(p *Pass) {
	if !goleakPkgs[p.Pkg.Path] {
		return
	}
	for _, f := range p.Pkg.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !hasTerminationSignal(lit.Body) {
				p.Report("goleak-hint", g.Pos(),
					"goroutine has no select, WaitGroup signal, or stop/done/ctx channel; "+
						"it can outlive its operator if the consumer abandons the stream")
			}
			return true
		})
	}
}

// hasTerminationSignal scans a goroutine body (including nested literals)
// for evidence it can terminate when the consumer goes away: a select
// statement, a WaitGroup Done/Wait, or any mention of a stop-like channel.
func hasTerminationSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if name := calleeName(x); name == "Done" || name == "Wait" {
				found = true
			}
		case *ast.Ident:
			if stopNameRe.MatchString(x.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}
