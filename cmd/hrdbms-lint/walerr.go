package main

import (
	"fmt"
	"go/ast"
	"strings"
)

// walerrPkgs are the durability-critical packages: discarding an error from
// any of their functions can silently lose the write-ahead guarantee.
var walerrPkgs = []string{
	"repro/internal/wal",
	"repro/internal/storage",
	"repro/internal/buffer",
	"repro/internal/txn",
}

// walerrAnalyzer flags discarded error results from WAL/storage/buffer/txn
// write paths in non-test code: bare expression statements, explicit `_ =`
// discards, and deferred calls. Only deferred Close-shaped calls are exempt
// (the idiomatic best-effort cleanup `defer f.Close()`); deferring Flush,
// Append, or any other durability call throws its error away at the exact
// moment it matters.
var walerrAnalyzer = &Analyzer{
	Name: "walerr",
	Doc:  "flags discarded errors from WAL/storage write paths, including non-Close deferred calls",
	Run:  runWalerr,
}

// isCloseShaped reports whether the call is the sanctioned best-effort
// cleanup shape: a method or function named Close taking no arguments.
func isCloseShaped(call *ast.CallExpr) bool {
	return calleeName(call) == "Close" && len(call.Args) == 0
}

func isWalerrTarget(p *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkgPath := fn.Pkg().Path()
	if pkgPath == p.Pkg.Path {
		// A durability package calling itself may discard where an internal
		// invariant makes it safe; its own correctness is the tests' job.
		return "", false
	}
	match := false
	for _, wp := range walerrPkgs {
		if pkgPath == wp {
			match = true
			break
		}
	}
	if !match {
		return "", false
	}
	results := resultTuple(p.Pkg.Info, call)
	if len(results) == 0 || !isErrorType(results[len(results)-1]) {
		return "", false
	}
	short := pkgPath[strings.LastIndex(pkgPath, "/")+1:]
	return fmt.Sprintf("%s.%s", short, fn.Name()), true
}

func runWalerr(p *Pass) {
	for _, f := range p.Pkg.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.DeferStmt:
				if name, ok := isWalerrTarget(p, stmt.Call); ok && !isCloseShaped(stmt.Call) {
					p.Report("walerr", stmt.Call.Pos(), fmt.Sprintf(
						"error from deferred %s is silently discarded (only deferred Close is exempt; check the error inline or in a named-return wrapper)", name))
				}
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := isWalerrTarget(p, call); ok {
					p.Report("walerr", call.Pos(), fmt.Sprintf(
						"error from %s is silently discarded (bare call on a durability path)", name))
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := isWalerrTarget(p, call)
				if !ok {
					return true
				}
				// The error is the last result; flag when its slot is _.
				last, isIdent := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident)
				if isIdent && last.Name == "_" {
					p.Report("walerr", call.Pos(), fmt.Sprintf(
						"error from %s is discarded with _ on a durability path", name))
				}
			}
			return true
		})
	}
}
