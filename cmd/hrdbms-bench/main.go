// Command hrdbms-bench regenerates the paper's evaluation tables and
// figures (Section VII). Each experiment runs the TPC-H workload for real
// on an in-process cluster per system profile and cluster size, then maps
// measured quantities to simulated cluster-scale seconds.
//
// Usage:
//
//	hrdbms-bench -exp all                 # every experiment, paper order
//	hrdbms-bench -exp fig7                # scalability sweep
//	hrdbms-bench -exp fig8                # per-query vs Greenplum
//	hrdbms-bench -exp fig9                # Q18 scaling
//	hrdbms-bench -exp 3tb                 # the 3 TB memory-pressure run
//	hrdbms-bench -exp current             # current-versions table
//	hrdbms-bench -exp predcache           # predicate-cache footprint
//	hrdbms-bench -exp ablations           # design-choice ablations
//	hrdbms-bench -exp fig7 -sizes 8,16    # restrict the size sweep
//	hrdbms-bench -sf 0.002                # larger measured dataset
//	hrdbms-bench -exp exec -json BENCH_EXEC.json   # raw executed per-query stats
//	hrdbms-bench -exp exec -trace         # + per-operator span tree per query
//	hrdbms-bench -exp exec -sweep 1,2,4   # intra-node parallelism sweep
//	hrdbms-bench -exp serve -sf 0.01 -levels 1,4,16,64 -json BENCH_SERVE.json
//	                                      # serving-layer concurrency sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig7|fig8|fig9|3tb|current|predcache|ablations|exec|serve")
	sf := flag.Float64("sf", 0.001, "measured scale factor")
	target := flag.Float64("target", 1000, "modeled scale factor (1000 = 1TB)")
	sizesFlag := flag.String("sizes", "", "comma-separated cluster sizes for fig7/fig9 (default paper sizes)")
	dir := flag.String("dir", "", "working directory (default: temp)")
	jsonOut := flag.String("json", "", "with -exp exec/serve: write stats JSON to this file")
	trace := flag.Bool("trace", false, "with -exp exec: print the per-operator span tree of every query")
	baseline := flag.String("baseline", "", "with -exp exec: fail if work_rows/net_bytes of the -assert queries regress vs this JSON baseline")
	assert := flag.String("assert", "q7,q9,q17,q21", "with -baseline: comma-separated queries to gate")
	tol := flag.Float64("tol", 0.10, "with -baseline: allowed fractional growth before failing")
	sweep := flag.String("sweep", "", "with -exp exec: comma-separated intra-node parallelism degrees to sweep (e.g. 1,2,4)")
	levels := flag.String("levels", "", "with -exp serve: comma-separated client concurrency levels (default 1,4,16,64)")
	perClient := flag.Int("per-client", 0, "with -exp serve: queries per client (default: the full TPC-H mix once)")
	flag.Parse()

	baseDir := *dir
	if baseDir == "" {
		var err error
		baseDir, err = os.MkdirTemp("", "hrdbms-bench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(baseDir)
	}
	r := experiments.NewRunner(os.Stdout, baseDir)
	r.SF = *sf
	r.TargetSF = *target

	var sizes []int
	if *sizesFlag != "" {
		for _, s := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad -sizes: %w", err))
			}
			sizes = append(sizes, n)
		}
	}

	var err error
	switch *exp {
	case "all":
		err = r.All()
	case "fig7":
		_, err = r.Fig7(nil, sizes)
	case "fig8":
		small, large := 8, 96
		if len(sizes) == 2 {
			small, large = sizes[0], sizes[1]
		}
		err = r.Fig8(small, large)
	case "fig9":
		err = r.Fig9(sizes)
	case "3tb":
		err = r.ThreeTB()
	case "current":
		err = r.CurrentVersions()
	case "predcache":
		err = r.PredCacheFootprint()
	case "ablations":
		n := 16
		if len(sizes) == 1 {
			n = sizes[0]
		}
		err = r.Ablations(n)
	case "exec":
		n := 4
		if len(sizes) == 1 {
			n = sizes[0]
		}
		if *sweep != "" {
			var degrees []int
			for _, s := range strings.Split(*sweep, ",") {
				d, perr := strconv.Atoi(strings.TrimSpace(s))
				if perr != nil {
					fatal(fmt.Errorf("bad -sweep: %w", perr))
				}
				degrees = append(degrees, d)
			}
			_, err = r.ParallelismSweep(n, degrees)
			break
		}
		var stats []experiments.QueryExecStat
		stats, err = r.ExecStats(n, *trace)
		if err == nil && *baseline != "" {
			var queries []string
			for _, q := range strings.Split(*assert, ",") {
				if q = strings.TrimSpace(q); q != "" {
					queries = append(queries, q)
				}
			}
			err = experiments.CheckExecRegression(stats, *baseline, queries, *tol)
		}
		if err == nil && *jsonOut != "" {
			var buf []byte
			buf, err = json.MarshalIndent(stats, "", "  ")
			if err == nil {
				err = os.WriteFile(*jsonOut, append(buf, '\n'), 0o644)
			}
			if err == nil {
				fmt.Printf("wrote %s\n", *jsonOut)
			}
		}
	case "serve":
		n := 4
		if len(sizes) == 1 {
			n = sizes[0]
		}
		var lv []int
		if *levels != "" {
			for _, s := range strings.Split(*levels, ",") {
				l, perr := strconv.Atoi(strings.TrimSpace(s))
				if perr != nil {
					fatal(fmt.Errorf("bad -levels: %w", perr))
				}
				lv = append(lv, l)
			}
		}
		var stats []experiments.ServeLevelStat
		stats, err = r.ServeBench(n, lv, *perClient)
		if err == nil && *jsonOut != "" {
			var buf []byte
			buf, err = json.MarshalIndent(stats, "", "  ")
			if err == nil {
				err = os.WriteFile(*jsonOut, append(buf, '\n'), 0o644)
			}
			if err == nil {
				fmt.Printf("wrote %s\n", *jsonOut)
			}
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hrdbms-bench:", err)
	os.Exit(1)
}
