// Package plan defines HRDBMS's logical query plans and the builder that
// turns parsed SELECT statements into plans: FROM-clause joins, aggregate
// extraction, and the Kim-style decorrelation of nested subqueries the
// paper's optimizer performs in its global optimization phase (Section V).
package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
)

// Node is a logical plan operator.
type Node interface {
	// Schema describes the node's output rows (qualified column names).
	Schema() types.Schema
	// Children returns input plans.
	Children() []Node
	// Describe renders one line for EXPLAIN output.
	Describe() string
}

// Scan reads one base table. Pred (bound to the table schema) is pushed
// into the storage scan where its atoms feed predicate-based skipping.
type Scan struct {
	Table *catalog.TableDef
	Alias string
	Pred  expr.Expr
	sch   types.Schema
}

// NewScan builds a scan node.
func NewScan(def *catalog.TableDef, alias string) *Scan {
	sch := def.Schema
	name := alias
	if name == "" {
		name = def.Name
	}
	sch = sch.Qualify(strings.ToLower(name))
	return &Scan{Table: def, Alias: strings.ToLower(name), sch: sch}
}

// Schema implements Node.
func (s *Scan) Schema() types.Schema { return s.sch }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string {
	out := fmt.Sprintf("Scan %s", s.Table.Name)
	if s.Alias != "" && s.Alias != strings.ToLower(s.Table.Name) {
		out += " AS " + s.Alias
	}
	if s.Pred != nil {
		out += fmt.Sprintf(" [pred: %s]", s.Pred)
	}
	return out
}

// Filter keeps rows matching Pred.
type Filter struct {
	Child Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema() types.Schema { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// Describe implements Node.
func (f *Filter) Describe() string { return fmt.Sprintf("Filter [%s]", f.Pred) }

// Project computes output expressions.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Names []string
	sch   types.Schema
}

// NewProject builds a projection, inferring output kinds.
func NewProject(child Node, exprs []expr.Expr, names []string) *Project {
	cols := make([]types.Column, len(exprs))
	for i, e := range exprs {
		cols[i] = types.Column{Name: strings.ToLower(names[i]), Kind: expr.KindOf(e, child.Schema())}
	}
	return &Project{Child: child, Exprs: exprs, Names: names, sch: types.Schema{Cols: cols}}
}

// Schema implements Node.
func (p *Project) Schema() types.Schema { return p.sch }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project [" + strings.Join(parts, ", ") + "]"
}

// Join combines two inputs. EquiLeft/EquiRight are the equality key
// expressions (empty → nested loop over Residual only). Residual holds
// remaining conditions over the concatenated schema.
type Join struct {
	Left, Right Node
	Type        exec.JoinType
	EquiLeft    []expr.Expr // bound to Left schema
	EquiRight   []expr.Expr // bound to Right schema
	Residual    expr.Expr   // bound to Left ++ Right schema
	// Dist is the optimizer's modeled data-movement strategy for this
	// join (shuffle vs broadcast vs co-located), rendered in EXPLAIN so
	// plan changes are visible in golden-plan diffs. The cluster layer
	// re-costs the choice at the exchange boundary with live distribution
	// info before acting, so this is an annotation, not a command.
	Dist JoinDist
}

// JoinDist is the annotated distribution strategy for a distributed join.
type JoinDist uint8

// Join distribution strategies.
const (
	JoinDistAuto      JoinDist = iota // not annotated / gathered to coordinator
	JoinDistColocated                 // both sides already correctly placed
	JoinDistShuffle                   // hash-repartition misplaced side(s)
	JoinDistBroadcast                 // replicate the build side to all workers
)

// String names the strategy as rendered in EXPLAIN.
func (d JoinDist) String() string {
	switch d {
	case JoinDistColocated:
		return "colocated"
	case JoinDistShuffle:
		return "shuffle"
	case JoinDistBroadcast:
		return "broadcast"
	default:
		return "auto"
	}
}

// Schema implements Node.
func (j *Join) Schema() types.Schema {
	if j.Type == exec.JoinInner {
		return j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.Left.Schema()
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Describe implements Node.
func (j *Join) Describe() string {
	var conds []string
	for i := range j.EquiLeft {
		conds = append(conds, fmt.Sprintf("%s = %s", j.EquiLeft[i], j.EquiRight[i]))
	}
	if j.Residual != nil {
		conds = append(conds, j.Residual.String())
	}
	s := fmt.Sprintf("%s Join [%s]", j.Type, strings.Join(conds, " AND "))
	if j.Dist != JoinDistAuto {
		s += " dist=" + j.Dist.String()
	}
	return s
}

// AggItem is one aggregate output.
type AggItem struct {
	Kind     exec.AggKind
	Arg      expr.Expr // bound to child schema; nil for COUNT(*)
	Distinct bool
	Name     string
}

// Agg groups by the GroupBy expressions and computes aggregates. Output
// schema: group columns then aggregate columns.
type Agg struct {
	Child   Node
	GroupBy []expr.Expr
	Aggs    []AggItem
	sch     types.Schema
}

// NewAgg builds an aggregate node.
func NewAgg(child Node, groupBy []expr.Expr, aggs []AggItem, groupNames []string) *Agg {
	var cols []types.Column
	for i, g := range groupBy {
		name := ""
		if i < len(groupNames) {
			name = groupNames[i]
		}
		if name == "" {
			name = g.String()
		}
		cols = append(cols, types.Column{Name: strings.ToLower(name), Kind: expr.KindOf(g, child.Schema())})
	}
	for _, a := range aggs {
		kind := types.KindFloat
		switch a.Kind {
		case exec.AggCount:
			kind = types.KindInt
		case exec.AggSum:
			if a.Arg != nil && expr.KindOf(a.Arg, child.Schema()) == types.KindInt {
				kind = types.KindInt
			}
		case exec.AggMin, exec.AggMax:
			if a.Arg != nil {
				kind = expr.KindOf(a.Arg, child.Schema())
			}
		}
		cols = append(cols, types.Column{Name: strings.ToLower(a.Name), Kind: kind})
	}
	return &Agg{Child: child, GroupBy: groupBy, Aggs: aggs, sch: types.Schema{Cols: cols}}
}

// Schema implements Node.
func (a *Agg) Schema() types.Schema { return a.sch }

// Children implements Node.
func (a *Agg) Children() []Node { return []Node{a.Child} }

// Describe implements Node.
func (a *Agg) Describe() string {
	var gb []string
	for _, g := range a.GroupBy {
		gb = append(gb, g.String())
	}
	var ag []string
	for _, x := range a.Aggs {
		arg := "*"
		if x.Arg != nil {
			arg = x.Arg.String()
		}
		ag = append(ag, fmt.Sprintf("%s(%s)", x.Kind, arg))
	}
	return fmt.Sprintf("Aggregate [group: %s] [aggs: %s]", strings.Join(gb, ", "), strings.Join(ag, ", "))
}

// SortItem is one ORDER BY key resolved to an output column offset.
type SortItem struct {
	Col  int
	Desc bool
}

// Sort orders the child output.
type Sort struct {
	Child Node
	Keys  []SortItem
}

// Schema implements Node.
func (s *Sort) Schema() types.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Describe implements Node.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("$%d %s", k.Col, dir)
	}
	return "Sort [" + strings.Join(parts, ", ") + "]"
}

// Limit truncates output; a Limit directly above a Sort is executed as the
// paper's heap-based top-k.
type Limit struct {
	Child  Node
	N      int64
	Offset int64
}

// Schema implements Node.
func (l *Limit) Schema() types.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// Describe implements Node.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d offset %d", l.N, l.Offset) }

// Distinct removes duplicates.
type Distinct struct {
	Child Node
}

// Schema implements Node.
func (d *Distinct) Schema() types.Schema { return d.Child.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Child} }

// Describe implements Node.
func (d *Distinct) Describe() string { return "Distinct" }

// Rename gives a derived table's output new qualified column names.
type Rename struct {
	Child Node
	sch   types.Schema
}

// NewRename re-qualifies a subquery's schema under its FROM alias.
func NewRename(child Node, alias string) *Rename {
	return &Rename{Child: child, sch: child.Schema().Qualify(strings.ToLower(alias))}
}

// Schema implements Node.
func (r *Rename) Schema() types.Schema { return r.sch }

// Children implements Node.
func (r *Rename) Children() []Node { return []Node{r.Child} }

// Describe implements Node.
func (r *Rename) Describe() string { return "Rename " + r.sch.String() }

// ScalarSubquery wraps an uncorrelated scalar subquery inside an
// expression; the executor materializes the subplan to a single value
// before the outer plan runs (the paper notes Greenplum additionally caches
// these — see Q22 discussion).
type ScalarSubquery struct {
	Plan Node
	// Resolved is set by the executor after materialization.
	Resolved *types.Value
}

// Eval returns the materialized value.
func (s *ScalarSubquery) Eval(types.Row) (types.Value, error) {
	if s.Resolved == nil {
		return types.Null, fmt.Errorf("plan: scalar subquery not materialized")
	}
	return *s.Resolved, nil
}

// String renders the placeholder.
func (s *ScalarSubquery) String() string { return "(scalar subquery)" }

// Explain renders a plan tree as indented text.
func Explain(n Node) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Describe())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// Walk visits the plan tree preorder.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// Rebind re-resolves every expression's column indices by name against the
// current child schemas. Required after transformations (join reordering)
// that change the column order of intermediate schemas.
func Rebind(n Node) error {
	for _, c := range n.Children() {
		if err := Rebind(c); err != nil {
			return err
		}
	}
	switch x := n.(type) {
	case *Scan:
		if x.Pred != nil {
			return expr.Bind(x.Pred, x.Schema())
		}
	case *Filter:
		return expr.Bind(x.Pred, x.Child.Schema())
	case *Project:
		for _, e := range x.Exprs {
			if err := expr.Bind(e, x.Child.Schema()); err != nil {
				return err
			}
		}
	case *Join:
		for i := range x.EquiLeft {
			if err := expr.Bind(x.EquiLeft[i], x.Left.Schema()); err != nil {
				return err
			}
			if err := expr.Bind(x.EquiRight[i], x.Right.Schema()); err != nil {
				return err
			}
		}
		if x.Residual != nil {
			return expr.Bind(x.Residual, x.Left.Schema().Concat(x.Right.Schema()))
		}
	case *Agg:
		for _, g := range x.GroupBy {
			if err := expr.Bind(g, x.Child.Schema()); err != nil {
				return err
			}
		}
		for _, a := range x.Aggs {
			if a.Arg != nil {
				if err := expr.Bind(a.Arg, x.Child.Schema()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
