package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

// Build converts a parsed SELECT into a logical plan over the catalog,
// performing aggregate extraction and subquery decorrelation (the Kim [24]
// rewrites the paper implements: scalar-aggregate subqueries become
// grouped joins; EXISTS/IN become semi joins; NOT EXISTS/NOT IN become
// anti joins). The result is a single-node logical plan; distribution
// happens in the dataflow phases.
func Build(sel *sqlparse.Select, cat *catalog.Catalog) (Node, error) {
	b := &builder{cat: cat}
	node, _, err := b.buildSelect(sel, types.Schema{})
	return node, err
}

type builder struct {
	cat    *catalog.Catalog
	nextID int
}

func (b *builder) genName(prefix string) string {
	b.nextID++
	return fmt.Sprintf("%s$%d", prefix, b.nextID)
}

// bindsTo reports whether every column of e resolves in sch.
func bindsTo(e expr.Expr, sch types.Schema) bool {
	ok := true
	for _, c := range expr.Columns(e) {
		if sch.Find(c) < 0 {
			ok = false
		}
	}
	return ok
}

// referencesAny reports whether e references at least one column of sch.
func referencesAny(e expr.Expr, sch types.Schema) bool {
	for _, c := range expr.Columns(e) {
		if sch.Find(c) >= 0 {
			return true
		}
	}
	return false
}

// hasSubquery reports whether e contains any subquery node.
func hasSubquery(e expr.Expr) bool {
	found := false
	expr.Walk(e, func(x expr.Expr) {
		switch x.(type) {
		case *sqlparse.SubqueryExpr, *sqlparse.ExistsExpr, *sqlparse.InSubqueryExpr:
			found = true
		}
	})
	return found
}

// buildSelect builds the plan for sel. outer is the schema of the
// enclosing query for correlation detection; conjuncts of sel's WHERE that
// reference outer columns are returned as corrConds instead of being
// applied (the caller turns them into join conditions).
func (b *builder) buildSelect(sel *sqlparse.Select, outer types.Schema) (Node, []expr.Expr, error) {
	if len(sel.From) == 0 {
		return nil, nil, fmt.Errorf("plan: SELECT without FROM is not supported")
	}
	// 1. FROM relations.
	var rels []Node
	for _, ref := range sel.From {
		rel, err := b.buildTableRef(ref)
		if err != nil {
			return nil, nil, err
		}
		rels = append(rels, rel)
	}
	fromSchema := rels[0].Schema()
	for _, r := range rels[1:] {
		fromSchema = fromSchema.Concat(r.Schema())
	}

	// 2. Classify WHERE conjuncts. OR conjuncts first have their common
	// factors pulled out (e.g. TPC-H Q19 repeats p_partkey = l_partkey in
	// every OR branch; extracting it turns a nested-loop cross into a hash
	// join with the OR as a residual).
	var conjuncts []expr.Expr
	for _, c := range expr.Conjuncts(sel.Where) {
		conjuncts = append(conjuncts, extractCommonFactors(c)...)
	}
	var plain, subq, corr []expr.Expr
	for _, c := range conjuncts {
		switch {
		case hasSubquery(c):
			subq = append(subq, c)
		case bindsTo(c, fromSchema):
			plain = append(plain, c)
		case outer.Len() > 0 && bindsTo(c, fromSchema.Concat(outer)):
			corr = append(corr, c)
		default:
			return nil, nil, fmt.Errorf("plan: cannot resolve columns of %s", c)
		}
	}

	// 3. Join tree from plain conjuncts, left-deep in FROM order.
	tree, err := b.joinRelations(rels, plain)
	if err != nil {
		return nil, nil, err
	}

	// 4. Apply subquery conjuncts (decorrelation).
	for _, c := range subq {
		tree, err = b.applySubqueryConjunct(tree, c)
		if err != nil {
			return nil, nil, err
		}
	}

	// 5. Aggregation + projection.
	tree, err = b.buildProjection(tree, sel)
	if err != nil {
		return nil, nil, err
	}
	return tree, corr, nil
}

func (b *builder) buildTableRef(ref sqlparse.TableRef) (Node, error) {
	if ref.Subquery != nil {
		sub, corr, err := b.buildSelect(ref.Subquery, types.Schema{})
		if err != nil {
			return nil, err
		}
		if len(corr) > 0 {
			return nil, fmt.Errorf("plan: correlated derived tables are not supported")
		}
		alias := ref.Alias
		if alias == "" {
			alias = b.genName("subq")
		}
		return NewRename(sub, alias), nil
	}
	def, err := b.cat.Table(ref.Table)
	if err != nil {
		return nil, err
	}
	alias := ref.Alias
	if alias == "" {
		alias = ref.Table
	}
	return NewScan(def, alias), nil
}

// AssembleJoins builds a left-deep inner-join tree over rels in the given
// order, attaching the conjuncts as join keys, residuals, or filters. The
// optimizer uses this to reassemble a reordered join cluster.
func AssembleJoins(rels []Node, conjs []expr.Expr) (Node, error) {
	b := &builder{}
	return b.joinRelations(rels, conjs)
}

// joinRelations builds a left-deep join tree applying conjuncts as early
// as possible: single-relation conjuncts become filters, two-side
// equalities become hash join keys, the rest residuals or late filters.
func (b *builder) joinRelations(rels []Node, conjs []expr.Expr) (Node, error) {
	used := make([]bool, len(conjs))
	// Push single-relation conjuncts down to their relation.
	for i := range rels {
		var preds []expr.Expr
		for ci, c := range conjs {
			if used[ci] {
				continue
			}
			if bindsTo(c, rels[i].Schema()) && referencesAny(c, rels[i].Schema()) {
				preds = append(preds, c)
				used[ci] = true
			}
		}
		if len(preds) > 0 {
			combined := expr.AndAll(preds)
			if err := expr.Bind(combined, rels[i].Schema()); err != nil {
				return nil, err
			}
			if sc, ok := rels[i].(*Scan); ok {
				if sc.Pred != nil {
					combined = &expr.Bin{Op: expr.OpAnd, L: sc.Pred, R: combined}
				}
				sc.Pred = combined
			} else {
				rels[i] = &Filter{Child: rels[i], Pred: combined}
			}
		}
	}
	tree := rels[0]
	for i := 1; i < len(rels); i++ {
		right := rels[i]
		joined := tree.Schema().Concat(right.Schema())
		var equiL, equiR []expr.Expr
		var residual []expr.Expr
		for ci, c := range conjs {
			if used[ci] {
				continue
			}
			if !bindsTo(c, joined) || !referencesAny(c, right.Schema()) {
				continue
			}
			used[ci] = true
			if l, r, ok := splitEquiCond(c, tree.Schema(), right.Schema()); ok {
				equiL = append(equiL, l)
				equiR = append(equiR, r)
			} else {
				residual = append(residual, c)
			}
		}
		j := &Join{Left: tree, Right: right, Type: exec.JoinInner}
		for k := range equiL {
			if err := expr.Bind(equiL[k], tree.Schema()); err != nil {
				return nil, err
			}
			if err := expr.Bind(equiR[k], right.Schema()); err != nil {
				return nil, err
			}
		}
		j.EquiLeft, j.EquiRight = equiL, equiR
		if len(residual) > 0 {
			resid := expr.AndAll(residual)
			if err := expr.Bind(resid, joined); err != nil {
				return nil, err
			}
			j.Residual = resid
		}
		tree = j
	}
	// Leftover conjuncts (e.g. referencing 3+ relations resolved only now).
	var late []expr.Expr
	for ci, c := range conjs {
		if !used[ci] {
			late = append(late, c)
		}
	}
	if len(late) > 0 {
		pred := expr.AndAll(late)
		if err := expr.Bind(pred, tree.Schema()); err != nil {
			return nil, err
		}
		tree = &Filter{Child: tree, Pred: pred}
	}
	return tree, nil
}

// extractCommonFactors rewrites an OR conjunct `(A AND X) OR (A AND Y)`
// into the conjuncts [A, (X OR Y)]. Non-OR conjuncts pass through.
func extractCommonFactors(c expr.Expr) []expr.Expr {
	or, ok := c.(*expr.Bin)
	if !ok || or.Op != expr.OpOr {
		return []expr.Expr{c}
	}
	branches := disjuncts(or)
	if len(branches) < 2 {
		return []expr.Expr{c}
	}
	// Common = conjuncts (by text) present in every branch.
	first := expr.Conjuncts(branches[0])
	var common []expr.Expr
	for _, cand := range first {
		key := cand.String()
		inAll := true
		for _, b := range branches[1:] {
			found := false
			for _, bc := range expr.Conjuncts(b) {
				if bc.String() == key {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, cand)
		}
	}
	if len(common) == 0 {
		return []expr.Expr{c}
	}
	isCommon := map[string]bool{}
	for _, cc := range common {
		isCommon[cc.String()] = true
	}
	// Rebuild each branch without the common parts.
	var reduced []expr.Expr
	allCovered := true
	for _, b := range branches {
		var rest []expr.Expr
		for _, bc := range expr.Conjuncts(b) {
			if !isCommon[bc.String()] {
				rest = append(rest, bc)
			}
		}
		if len(rest) == 0 {
			// A branch that is ENTIRELY common: the OR is implied by the
			// commons; drop the residual.
			allCovered = false
			break
		}
		reduced = append(reduced, expr.AndAll(rest))
	}
	out := append([]expr.Expr{}, common...)
	if allCovered {
		residual := reduced[0]
		for _, r := range reduced[1:] {
			residual = &expr.Bin{Op: expr.OpOr, L: residual, R: r}
		}
		out = append(out, residual)
	}
	return out
}

// disjuncts flattens nested ORs.
func disjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Bin); ok && b.Op == expr.OpOr {
		return append(disjuncts(b.L), disjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

// splitEquiCond decomposes `a = b` with a over left and b over right (or
// swapped) into the per-side key expressions.
func splitEquiCond(c expr.Expr, left, right types.Schema) (expr.Expr, expr.Expr, bool) {
	bin, ok := c.(*expr.Bin)
	if !ok || bin.Op != expr.OpEq {
		return nil, nil, false
	}
	if bindsTo(bin.L, left) && bindsTo(bin.R, right) && referencesAny(bin.L, left) && referencesAny(bin.R, right) {
		return bin.L, bin.R, true
	}
	if bindsTo(bin.R, left) && bindsTo(bin.L, right) && referencesAny(bin.R, left) && referencesAny(bin.L, right) {
		return bin.R, bin.L, true
	}
	return nil, nil, false
}

// applySubqueryConjunct rewrites one WHERE conjunct containing a subquery
// into joins/filters on top of tree.
func (b *builder) applySubqueryConjunct(tree Node, c expr.Expr) (Node, error) {
	switch x := c.(type) {
	case *sqlparse.ExistsExpr:
		return b.applyExists(tree, x.Query, false)
	case *expr.Not:
		if ex, ok := x.E.(*sqlparse.ExistsExpr); ok {
			return b.applyExists(tree, ex.Query, true)
		}
	case *sqlparse.InSubqueryExpr:
		return b.applyInSubquery(tree, x)
	case *expr.Bin:
		if x.Op.IsComparison() {
			if sub, ok := x.R.(*sqlparse.SubqueryExpr); ok {
				return b.applyScalarComparison(tree, x.L, x.Op, sub.Query, false)
			}
			if sub, ok := x.L.(*sqlparse.SubqueryExpr); ok {
				return b.applyScalarComparison(tree, x.R, x.Op, sub.Query, true)
			}
		}
	}
	return nil, fmt.Errorf("plan: unsupported subquery placement in %s", c)
}

// applyExists rewrites [NOT] EXISTS into a semi/anti join.
func (b *builder) applyExists(tree Node, sub *sqlparse.Select, negate bool) (Node, error) {
	subPlan, corr, err := b.buildFromWhere(sub, tree.Schema())
	if err != nil {
		return nil, err
	}
	return b.correlatedJoin(tree, subPlan, corr, nil, nil, negate)
}

// applyInSubquery rewrites expr [NOT] IN (SELECT x ...) into a semi/anti
// join with the extra key expr = x.
func (b *builder) applyInSubquery(tree Node, in *sqlparse.InSubqueryExpr) (Node, error) {
	if len(in.Query.Items) != 1 || in.Query.Items[0].Star {
		return nil, fmt.Errorf("plan: IN subquery must select exactly one expression")
	}
	// Aggregated IN subqueries (e.g. Q18's HAVING-filtered grouping) build
	// the full subquery plan; plain ones keep the raw FROM/WHERE plan so
	// correlation conditions can reference inner columns.
	if hasAggregates(in.Query) {
		subPlan, corr, err := b.buildSelect(in.Query, tree.Schema())
		if err != nil {
			return nil, err
		}
		if len(corr) > 0 {
			return nil, fmt.Errorf("plan: correlated aggregated IN subquery not supported")
		}
		keyR := &expr.Col{Index: 0, Name: subPlan.Schema().Cols[0].Name}
		keyL := expr.Clone(in.E)
		if err := expr.Bind(keyL, tree.Schema()); err != nil {
			return nil, err
		}
		return b.correlatedJoin(tree, subPlan, nil, []expr.Expr{keyL}, []expr.Expr{keyR}, in.Negate)
	}
	subPlan, corr, err := b.buildFromWhere(in.Query, tree.Schema())
	if err != nil {
		return nil, err
	}
	item := in.Query.Items[0].Expr
	keyR := expr.Clone(item)
	if err := expr.Bind(keyR, subPlan.Schema()); err != nil {
		return nil, err
	}
	keyL := expr.Clone(in.E)
	if err := expr.Bind(keyL, tree.Schema()); err != nil {
		return nil, err
	}
	return b.correlatedJoin(tree, subPlan, corr, []expr.Expr{keyL}, []expr.Expr{keyR}, in.Negate)
}

// hasAggregates reports whether the select has aggregation.
func hasAggregates(sel *sqlparse.Select) bool {
	if len(sel.GroupBy) > 0 || sel.Having != nil {
		return true
	}
	for _, it := range sel.Items {
		if it.Expr != nil && len(collectAggCalls(it.Expr)) > 0 {
			return true
		}
	}
	return false
}

// buildFromWhere builds a subquery's FROM + WHERE (no projection), so
// correlation predicates can reference any inner column.
func (b *builder) buildFromWhere(sel *sqlparse.Select, outer types.Schema) (Node, []expr.Expr, error) {
	inner := &sqlparse.Select{From: sel.From, Where: sel.Where, Limit: -1,
		Items: []sqlparse.SelectItem{{Star: true}}}
	return b.buildSelect(inner, outer)
}

// correlatedJoin joins tree (left) with subPlan (right) as a semi/anti
// join: correlation equalities plus explicit keys become hash keys,
// non-equality correlations become residuals.
func (b *builder) correlatedJoin(tree, subPlan Node, corr []expr.Expr, extraL, extraR []expr.Expr, negate bool) (Node, error) {
	j := &Join{Left: tree, Right: subPlan, Type: exec.JoinSemi}
	if negate {
		j.Type = exec.JoinAnti
	}
	j.EquiLeft = append(j.EquiLeft, extraL...)
	j.EquiRight = append(j.EquiRight, extraR...)
	var residual []expr.Expr
	for _, c := range corr {
		if l, r, ok := splitEquiCond(c, tree.Schema(), subPlan.Schema()); ok {
			lc, rc := expr.Clone(l), expr.Clone(r)
			if err := expr.Bind(lc, tree.Schema()); err != nil {
				return nil, err
			}
			if err := expr.Bind(rc, subPlan.Schema()); err != nil {
				return nil, err
			}
			j.EquiLeft = append(j.EquiLeft, lc)
			j.EquiRight = append(j.EquiRight, rc)
		} else {
			residual = append(residual, c)
		}
	}
	if len(residual) > 0 {
		resid := expr.AndAll(residual)
		if err := expr.Bind(resid, tree.Schema().Concat(subPlan.Schema())); err != nil {
			return nil, err
		}
		j.Residual = resid
	}
	if len(j.EquiLeft) == 0 && j.Residual == nil {
		// Uncorrelated EXISTS: keep everything iff subquery non-empty.
		// Model as a nested-loop semi/anti join with no condition.
		j.Residual = &expr.Const{V: types.NewBool(true)}
	}
	return j, nil
}

// applyScalarComparison rewrites `lhs op (SELECT agg ...)`. flipped means
// the subquery was on the left.
func (b *builder) applyScalarComparison(tree Node, lhs expr.Expr, op expr.BinOp, sub *sqlparse.Select, flipped bool) (Node, error) {
	if len(sub.Items) != 1 || sub.Items[0].Star {
		return nil, fmt.Errorf("plan: scalar subquery must select one expression")
	}
	// Determine correlation by building the subquery FROM/WHERE.
	subFW, corr, err := b.buildFromWhere(sub, tree.Schema())
	if err != nil {
		return nil, err
	}
	if len(corr) == 0 {
		// Uncorrelated: plan the whole subquery; the executor materializes
		// it into a constant.
		subPlan, _, err := b.buildSelect(sub, types.Schema{})
		if err != nil {
			return nil, err
		}
		scalar := &ScalarSubquery{Plan: subPlan}
		lhsB := expr.Clone(lhs)
		if err := expr.Bind(lhsB, tree.Schema()); err != nil {
			return nil, err
		}
		var pred expr.Expr
		if flipped {
			pred = &expr.Bin{Op: op, L: scalar, R: lhsB}
		} else {
			pred = &expr.Bin{Op: op, L: lhsB, R: scalar}
		}
		return &Filter{Child: tree, Pred: pred}, nil
	}
	// Correlated: the Kim rewrite. Extract correlation equalities; group
	// the subquery by its side of each equality; join back.
	var outerKeys, innerKeys []expr.Expr
	for _, c := range corr {
		l, r, ok := splitEquiCond(c, tree.Schema(), subFW.Schema())
		if !ok {
			return nil, fmt.Errorf("plan: scalar subquery correlation must be equality, got %s", c)
		}
		lc, rc := expr.Clone(l), expr.Clone(r)
		if err := expr.Bind(lc, tree.Schema()); err != nil {
			return nil, err
		}
		if err := expr.Bind(rc, subFW.Schema()); err != nil {
			return nil, err
		}
		outerKeys = append(outerKeys, lc)
		innerKeys = append(innerKeys, rc)
	}
	// Aggregate the subquery grouped by the inner correlation keys.
	item := expr.Clone(sub.Items[0].Expr)
	calls := collectAggCalls(item)
	if len(calls) == 0 {
		return nil, fmt.Errorf("plan: correlated scalar subquery must aggregate")
	}
	aggs, replaced, err := buildAggItems(b, item, calls, subFW.Schema(), len(innerKeys))
	if err != nil {
		return nil, err
	}
	groupNames := make([]string, len(innerKeys))
	for i := range innerKeys {
		groupNames[i] = b.genName("corr")
	}
	aggNode := NewAgg(subFW, innerKeys, aggs, groupNames)
	// Post-project: correlation keys + the (rewritten) item expression.
	outName := b.genName("scalar")
	projExprs := make([]expr.Expr, 0, len(innerKeys)+1)
	projNames := make([]string, 0, len(innerKeys)+1)
	for i, gn := range groupNames {
		projExprs = append(projExprs, &expr.Col{Index: i, Name: gn})
		projNames = append(projNames, gn)
	}
	if err := expr.Bind(replaced, aggNode.Schema()); err != nil {
		return nil, err
	}
	projExprs = append(projExprs, replaced)
	projNames = append(projNames, outName)
	subAgg := NewProject(aggNode, projExprs, projNames)

	// Join outer with the aggregated subquery on the correlation keys.
	rightKeys := make([]expr.Expr, len(groupNames))
	for i, gn := range groupNames {
		rightKeys[i] = &expr.Col{Index: i, Name: gn}
	}
	j := &Join{Left: tree, Right: subAgg, Type: exec.JoinInner,
		EquiLeft: outerKeys, EquiRight: rightKeys}
	// Filter lhs op scalar over the joined schema.
	joined := j.Schema()
	lhsB := expr.Clone(lhs)
	scalarCol := &expr.Col{Index: -1, Name: outName}
	var pred expr.Expr
	if flipped {
		pred = &expr.Bin{Op: op, L: scalarCol, R: lhsB}
	} else {
		pred = &expr.Bin{Op: op, L: lhsB, R: scalarCol}
	}
	if err := expr.Bind(pred, joined); err != nil {
		return nil, err
	}
	// Project away the subquery's columns to restore the outer schema.
	keep := make([]expr.Expr, tree.Schema().Len())
	names := make([]string, tree.Schema().Len())
	for i, c := range tree.Schema().Cols {
		keep[i] = &expr.Col{Index: i, Name: c.Name}
		names[i] = c.Name
	}
	return NewProject(&Filter{Child: j, Pred: pred}, keep, names), nil
}

// replaceScalarSubqueries converts uncorrelated SubqueryExpr nodes inside
// an expression into ScalarSubquery plan nodes. Other subquery forms in
// this position are unsupported.
func (b *builder) replaceScalarSubqueries(e expr.Expr) (expr.Expr, error) {
	var buildErr error
	out := rewriteExpr(e, func(x expr.Expr) (expr.Expr, bool) {
		switch s := x.(type) {
		case *sqlparse.SubqueryExpr:
			sub, corr, err := b.buildSelect(s.Query, types.Schema{})
			if err != nil {
				buildErr = err
				return &expr.Const{V: types.Null}, true
			}
			if len(corr) > 0 {
				buildErr = fmt.Errorf("plan: correlated subquery not supported in this position")
				return &expr.Const{V: types.Null}, true
			}
			return &ScalarSubquery{Plan: sub}, true
		case *sqlparse.ExistsExpr, *sqlparse.InSubqueryExpr:
			buildErr = fmt.Errorf("plan: EXISTS/IN subquery not supported in this position")
			return &expr.Const{V: types.Null}, true
		}
		return nil, false
	})
	return out, buildErr
}

var aggFuncNames = map[string]struct {
	kind     exec.AggKind
	distinct bool
	star     bool
}{
	"SUM":            {exec.AggSum, false, false},
	"AVG":            {exec.AggAvg, false, false},
	"MIN":            {exec.AggMin, false, false},
	"MAX":            {exec.AggMax, false, false},
	"COUNT":          {exec.AggCount, false, false},
	"COUNT_STAR":     {exec.AggCount, false, true},
	"COUNT_DISTINCT": {exec.AggCount, true, false},
	"SUM_DISTINCT":   {exec.AggSum, true, false},
	"AVG_DISTINCT":   {exec.AggAvg, true, false},
}

// collectAggCalls finds aggregate function calls in an expression.
func collectAggCalls(e expr.Expr) []*expr.Func {
	var out []*expr.Func
	expr.Walk(e, func(x expr.Expr) {
		if f, ok := x.(*expr.Func); ok {
			if _, isAgg := aggFuncNames[strings.ToUpper(f.Name)]; isAgg {
				out = append(out, f)
			}
		}
	})
	return out
}

// buildAggItems creates AggItems for the distinct agg calls inside e and
// returns e with each call replaced by a column reference (offset by
// groupCount, the number of group columns preceding the aggs).
func buildAggItems(b *builder, e expr.Expr, calls []*expr.Func, childSchema types.Schema, groupCount int) ([]AggItem, expr.Expr, error) {
	var items []AggItem
	keyToIdx := map[string]int{}
	for _, call := range calls {
		key := call.String()
		if _, dup := keyToIdx[key]; dup {
			continue
		}
		info := aggFuncNames[strings.ToUpper(call.Name)]
		item := AggItem{Kind: info.kind, Distinct: info.distinct, Name: b.genName("agg")}
		if !info.star {
			if len(call.Args) != 1 {
				return nil, nil, fmt.Errorf("plan: aggregate %s takes one argument", call.Name)
			}
			arg := expr.Clone(call.Args[0])
			if err := expr.Bind(arg, childSchema); err != nil {
				return nil, nil, err
			}
			item.Arg = arg
		}
		keyToIdx[key] = len(items)
		items = append(items, item)
	}
	replaced := rewriteExpr(e, func(x expr.Expr) (expr.Expr, bool) {
		if f, ok := x.(*expr.Func); ok {
			if idx, isAgg := keyToIdx[f.String()]; isAgg {
				return &expr.Col{Index: groupCount + idx, Name: items[idx].Name}, true
			}
		}
		return nil, false
	})
	return items, replaced, nil
}

// rewriteExpr rebuilds an expression, replacing nodes where fn returns
// (replacement, true); children of replaced nodes are not visited.
func rewriteExpr(e expr.Expr, fn func(expr.Expr) (expr.Expr, bool)) expr.Expr {
	if e == nil {
		return nil
	}
	if repl, ok := fn(e); ok {
		return repl
	}
	switch x := e.(type) {
	case *expr.Bin:
		return &expr.Bin{Op: x.Op, L: rewriteExpr(x.L, fn), R: rewriteExpr(x.R, fn)}
	case *expr.Not:
		return &expr.Not{E: rewriteExpr(x.E, fn)}
	case *expr.Neg:
		return &expr.Neg{E: rewriteExpr(x.E, fn)}
	case *expr.IsNull:
		return &expr.IsNull{E: rewriteExpr(x.E, fn), Negate: x.Negate}
	case *expr.Like:
		return &expr.Like{E: rewriteExpr(x.E, fn), Pattern: rewriteExpr(x.Pattern, fn), Negate: x.Negate}
	case *expr.Between:
		return &expr.Between{E: rewriteExpr(x.E, fn), Lo: rewriteExpr(x.Lo, fn), Hi: rewriteExpr(x.Hi, fn), Negate: x.Negate}
	case *expr.InList:
		vals := make([]expr.Expr, len(x.Vals))
		for i, v := range x.Vals {
			vals[i] = rewriteExpr(v, fn)
		}
		return &expr.InList{E: rewriteExpr(x.E, fn), Vals: vals, Negate: x.Negate}
	case *expr.Case:
		whens := make([]expr.When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = expr.When{Cond: rewriteExpr(w.Cond, fn), Then: rewriteExpr(w.Then, fn)}
		}
		return &expr.Case{Whens: whens, Else: rewriteExpr(x.Else, fn)}
	case *expr.Func:
		args := make([]expr.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteExpr(a, fn)
		}
		return &expr.Func{Name: x.Name, Args: args}
	default:
		return e
	}
}

// buildProjection handles aggregation, HAVING, SELECT items, DISTINCT,
// ORDER BY, and LIMIT on top of the FROM/WHERE tree.
func (b *builder) buildProjection(tree Node, sel *sqlparse.Select) (Node, error) {
	// Expand stars.
	var items []sqlparse.SelectItem
	for _, it := range sel.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		for _, col := range tree.Schema().Cols {
			if it.Qualifier != "" && !strings.HasPrefix(strings.ToLower(col.Name), strings.ToLower(it.Qualifier)+".") {
				continue
			}
			items = append(items, sqlparse.SelectItem{
				Expr:  &expr.Col{Index: -1, Name: col.Name},
				Alias: col.Name,
			})
		}
	}

	// Collect aggregate calls across items and HAVING.
	var allCalls []*expr.Func
	for _, it := range items {
		allCalls = append(allCalls, collectAggCalls(it.Expr)...)
	}
	if sel.Having != nil {
		allCalls = append(allCalls, collectAggCalls(sel.Having)...)
	}
	aggregated := len(allCalls) > 0 || len(sel.GroupBy) > 0

	var out Node = tree
	itemExprs := make([]expr.Expr, len(items))
	itemNames := make([]string, len(items))
	for i, it := range items {
		itemExprs[i] = expr.Clone(it.Expr)
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		itemNames[i] = strings.ToLower(name)
	}

	if aggregated {
		// Bind group-by expressions to the tree schema. Group-by items may
		// reference select aliases (GROUP BY l_returnflag works either way).
		groupExprs := make([]expr.Expr, len(sel.GroupBy))
		groupNames := make([]string, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			ge := expr.Clone(g)
			if err := expr.Bind(ge, tree.Schema()); err != nil {
				return nil, err
			}
			groupExprs[i] = ge
			groupNames[i] = b.genName("grp")
			// Prefer a stable name when the group expr is a plain column.
			if c, ok := ge.(*expr.Col); ok {
				groupNames[i] = c.Name
			}
		}
		// Build agg items over all calls, then rewrite item/having exprs.
		var aggItems []AggItem
		keyToIdx := map[string]int{}
		for _, call := range allCalls {
			key := call.String()
			if _, dup := keyToIdx[key]; dup {
				continue
			}
			info := aggFuncNames[strings.ToUpper(call.Name)]
			item := AggItem{Kind: info.kind, Distinct: info.distinct, Name: b.genName("agg")}
			if !info.star {
				if len(call.Args) != 1 {
					return nil, fmt.Errorf("plan: aggregate %s takes one argument", call.Name)
				}
				arg := expr.Clone(call.Args[0])
				if err := expr.Bind(arg, tree.Schema()); err != nil {
					return nil, err
				}
				item.Arg = arg
			}
			keyToIdx[key] = len(aggItems)
			aggItems = append(aggItems, item)
		}
		aggNode := NewAgg(tree, groupExprs, aggItems, groupNames)
		out = aggNode

		// Rewriter: agg calls → agg columns; group exprs → group columns.
		groupKey := map[string]int{}
		for i, g := range groupExprs {
			groupKey[g.String()] = i
		}
		rewrite := func(e expr.Expr) expr.Expr {
			return rewriteExpr(e, func(x expr.Expr) (expr.Expr, bool) {
				if f, ok := x.(*expr.Func); ok {
					if idx, isAgg := keyToIdx[f.String()]; isAgg {
						return &expr.Col{Index: len(groupExprs) + idx, Name: aggItems[idx].Name}, true
					}
				}
				if gi, ok := groupKey[x.String()]; ok {
					return &expr.Col{Index: gi, Name: groupNames[gi]}, true
				}
				return nil, false
			})
		}
		if sel.Having != nil {
			h := rewrite(expr.Clone(sel.Having))
			// Uncorrelated scalar subqueries may appear in HAVING (TPC-H
			// Q11's global threshold); plan them for later materialization.
			h, err := b.replaceScalarSubqueries(h)
			if err != nil {
				return nil, err
			}
			if err := expr.Bind(h, out.Schema()); err != nil {
				return nil, err
			}
			out = &Filter{Child: out, Pred: h}
		}
		for i := range itemExprs {
			itemExprs[i] = rewrite(itemExprs[i])
		}
	}

	// Scalar subqueries inside item expressions are not supported (WHERE
	// placement is). Bind items against the (possibly aggregated) child.
	for i := range itemExprs {
		if hasSubquery(itemExprs[i]) {
			return nil, fmt.Errorf("plan: subqueries in the SELECT list are not supported")
		}
		if err := expr.Bind(itemExprs[i], out.Schema()); err != nil {
			return nil, err
		}
	}
	// ORDER BY may reference columns that are not selected; carry them as
	// hidden projection columns and trim them after sorting.
	preProject := out
	var hiddenExprs []expr.Expr
	var hiddenNames []string
	var keys []SortItem
	if len(sel.OrderBy) > 0 {
		var err error
		keys, hiddenExprs, hiddenNames, err = resolveOrderByWithHidden(
			b, sel.OrderBy, items, itemNames, preProject.Schema(), aggregated)
		if err != nil {
			return nil, err
		}
		if len(hiddenExprs) > 0 && sel.Distinct {
			return nil, fmt.Errorf("plan: SELECT DISTINCT cannot ORDER BY unselected columns")
		}
	}
	allExprs := append(append([]expr.Expr{}, itemExprs...), hiddenExprs...)
	allNames := append(append([]string{}, itemNames...), hiddenNames...)
	out = NewProject(out, allExprs, allNames)

	if sel.Distinct {
		out = &Distinct{Child: out}
	}
	if len(keys) > 0 {
		out = &Sort{Child: out, Keys: keys}
	}
	if sel.Limit >= 0 {
		out = &Limit{Child: out, N: sel.Limit, Offset: sel.Offset}
	}
	if len(hiddenExprs) > 0 {
		trim := make([]expr.Expr, len(itemExprs))
		names := make([]string, len(itemExprs))
		for i := range itemExprs {
			trim[i] = &expr.Col{Index: i, Name: out.Schema().Cols[i].Name}
			names[i] = itemNames[i]
		}
		out = NewProject(out, trim, names)
	}
	return out, nil
}

// resolveOrderByWithHidden resolves ORDER BY terms against the select list
// and, when a term is absent, appends it as a hidden projection column
// (non-aggregated queries only).
func resolveOrderByWithHidden(b *builder, orders []sqlparse.OrderItem, items []sqlparse.SelectItem,
	itemNames []string, childSchema types.Schema, aggregated bool) ([]SortItem, []expr.Expr, []string, error) {
	keys := make([]SortItem, len(orders))
	var hiddenExprs []expr.Expr
	var hiddenNames []string
	for i, o := range orders {
		keys[i].Desc = o.Desc
		if o.Position > 0 {
			if o.Position > len(items) {
				return nil, nil, nil, fmt.Errorf("plan: ORDER BY position %d out of range", o.Position)
			}
			keys[i].Col = o.Position - 1
			continue
		}
		text := o.Expr.String()
		found := -1
		for j, it := range items {
			if it.Alias != "" && strings.EqualFold(it.Alias, text) {
				found = j
				break
			}
			if it.Expr != nil && it.Expr.String() == text {
				found = j
				break
			}
		}
		if found < 0 {
			if c, ok := o.Expr.(*expr.Col); ok {
				for j, name := range itemNames {
					if strings.EqualFold(name, c.Name) {
						found = j
						break
					}
				}
			}
		}
		if found >= 0 {
			keys[i].Col = found
			continue
		}
		// Hidden sort column: only valid when the term binds to the
		// pre-projection schema (and the query is not aggregated, where
		// unselected columns are not well-defined).
		if aggregated {
			return nil, nil, nil, fmt.Errorf("plan: ORDER BY %s is not in the select list", text)
		}
		he := expr.Clone(o.Expr)
		if err := expr.Bind(he, childSchema); err != nil {
			return nil, nil, nil, fmt.Errorf("plan: ORDER BY %s is not in the select list", text)
		}
		keys[i].Col = len(items) + len(hiddenExprs)
		hiddenExprs = append(hiddenExprs, he)
		hiddenNames = append(hiddenNames, b.genName("sortkey"))
	}
	return keys, hiddenExprs, hiddenNames, nil
}
