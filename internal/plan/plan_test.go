package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

// testEnv builds a mini TPC-H-ish catalog and in-memory data.
func testEnv(t *testing.T) (*catalog.Catalog, *MemProvider) {
	t.Helper()
	cat := catalog.New()
	mustCreate := func(def *catalog.TableDef) {
		if err := cat.CreateTable(def); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(&catalog.TableDef{
		Name: "nation",
		Schema: types.NewSchema(
			types.Column{Name: "n_nationkey", Kind: types.KindInt},
			types.Column{Name: "n_name", Kind: types.KindString},
		),
		Part: catalog.Partitioning{Kind: catalog.PartReplicated},
	})
	mustCreate(&catalog.TableDef{
		Name: "customer",
		Schema: types.NewSchema(
			types.Column{Name: "c_custkey", Kind: types.KindInt},
			types.Column{Name: "c_name", Kind: types.KindString},
			types.Column{Name: "c_nationkey", Kind: types.KindInt},
			types.Column{Name: "c_acctbal", Kind: types.KindFloat},
		),
		Part: catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{"c_custkey"}},
	})
	mustCreate(&catalog.TableDef{
		Name: "orders",
		Schema: types.NewSchema(
			types.Column{Name: "o_orderkey", Kind: types.KindInt},
			types.Column{Name: "o_custkey", Kind: types.KindInt},
			types.Column{Name: "o_totalprice", Kind: types.KindFloat},
			types.Column{Name: "o_orderdate", Kind: types.KindDate},
		),
		Part: catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{"o_custkey"}},
	})
	mustCreate(&catalog.TableDef{
		Name: "lineitem",
		Schema: types.NewSchema(
			types.Column{Name: "l_orderkey", Kind: types.KindInt},
			types.Column{Name: "l_partkey", Kind: types.KindInt},
			types.Column{Name: "l_quantity", Kind: types.KindFloat},
			types.Column{Name: "l_extendedprice", Kind: types.KindFloat},
			types.Column{Name: "l_discount", Kind: types.KindFloat},
			types.Column{Name: "l_shipdate", Kind: types.KindDate},
		),
		Part: catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{"l_orderkey"}},
	})

	prov := &MemProvider{Cat: cat, Rows: map[string][]types.Row{
		"nation": {
			{types.NewInt(1), types.NewString("CANADA")},
			{types.NewInt(2), types.NewString("FRANCE")},
		},
		"customer": {
			{types.NewInt(10), types.NewString("alice"), types.NewInt(1), types.NewFloat(100)},
			{types.NewInt(20), types.NewString("bob"), types.NewInt(1), types.NewFloat(-5)},
			{types.NewInt(30), types.NewString("chloe"), types.NewInt(2), types.NewFloat(700)},
		},
		"orders": {
			{types.NewInt(100), types.NewInt(10), types.NewFloat(50), types.MustDate("1995-01-15")},
			{types.NewInt(101), types.NewInt(10), types.NewFloat(75), types.MustDate("1995-06-10")},
			{types.NewInt(102), types.NewInt(20), types.NewFloat(20), types.MustDate("1996-03-04")},
			{types.NewInt(103), types.NewInt(30), types.NewFloat(90), types.MustDate("1996-08-21")},
		},
		"lineitem": {
			{types.NewInt(100), types.NewInt(7), types.NewFloat(5), types.NewFloat(100), types.NewFloat(0.1), types.MustDate("1995-01-20")},
			{types.NewInt(100), types.NewInt(8), types.NewFloat(2), types.NewFloat(50), types.NewFloat(0.0), types.MustDate("1995-01-25")},
			{types.NewInt(101), types.NewInt(7), types.NewFloat(10), types.NewFloat(200), types.NewFloat(0.05), types.MustDate("1995-06-15")},
			{types.NewInt(102), types.NewInt(9), types.NewFloat(1), types.NewFloat(30), types.NewFloat(0.0), types.MustDate("1996-03-09")},
			{types.NewInt(103), types.NewInt(7), types.NewFloat(8), types.NewFloat(120), types.NewFloat(0.2), types.MustDate("1996-09-01")},
		},
	}}
	return cat, prov
}

func runSQL(t *testing.T, sql string) []types.Row {
	t.Helper()
	cat, prov := testEnv(t)
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	node, err := Build(sel, cat)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	op, err := Execute(node, prov, exec.NewCtx(t.TempDir(), 0))
	if err != nil {
		t.Fatalf("execute: %v\nplan:\n%s", err, Explain(node))
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatalf("collect: %v\nplan:\n%s", err, Explain(node))
	}
	return rows
}

func TestSimpleProjectionFilter(t *testing.T) {
	rows := runSQL(t, "SELECT c_name, c_acctbal * 2 AS dbl FROM customer WHERE c_acctbal > 0 ORDER BY c_name")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "alice" || rows[0][1].Float() != 200 {
		t.Errorf("row0 = %v", rows[0])
	}
	if rows[1][0].Str() != "chloe" {
		t.Errorf("row1 = %v", rows[1])
	}
}

func TestJoinThreeTables(t *testing.T) {
	rows := runSQL(t, `SELECT sum(o_totalprice)
		FROM nation, customer, orders
		WHERE n_nationkey = c_nationkey AND c_custkey = o_custkey AND n_name = 'CANADA'`)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// CANADA customers: 10, 20 → orders 100+101+102 = 50+75+20 = 145.
	if rows[0][0].Float() != 145 {
		t.Errorf("sum = %v", rows[0])
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	rows := runSQL(t, `SELECT o_custkey, count(*) AS cnt, sum(o_totalprice) AS total
		FROM orders GROUP BY o_custkey HAVING count(*) >= 1 ORDER BY total DESC`)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Int() != 10 || rows[0][1].Int() != 2 || rows[0][2].Float() != 125 {
		t.Errorf("top group = %v", rows[0])
	}
	// Descending by total: 125, 90, 20.
	if rows[1][2].Float() != 90 || rows[2][2].Float() != 20 {
		t.Errorf("order = %v", rows)
	}
}

func TestAggExpressionOfAggregates(t *testing.T) {
	rows := runSQL(t, `SELECT sum(l_extendedprice * (1 - l_discount)) / count(*) AS avg_rev FROM lineitem`)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	want := (100*0.9 + 50 + 200*0.95 + 30 + 120*0.8) / 5
	if got := rows[0][0].Float(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("avg_rev = %v, want %v", got, want)
	}
}

func TestScalarSubqueryUncorrelated(t *testing.T) {
	rows := runSQL(t, `SELECT c_name FROM customer
		WHERE c_acctbal > (SELECT avg(c_acctbal) FROM customer) ORDER BY c_name`)
	// avg = (100 - 5 + 700)/3 = 265; only chloe (700) exceeds it.
	if len(rows) != 1 || rows[0][0].Str() != "chloe" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExistsDecorrelation(t *testing.T) {
	rows := runSQL(t, `SELECT c_name FROM customer c
		WHERE EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_totalprice > 70)
		ORDER BY c_name`)
	// orders > 70: 101 (cust 10, 75), 103 (cust 30, 90) → alice, chloe.
	if len(rows) != 2 || rows[0][0].Str() != "alice" || rows[1][0].Str() != "chloe" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestNotExistsDecorrelation(t *testing.T) {
	rows := runSQL(t, `SELECT c_name FROM customer c
		WHERE NOT EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_totalprice > 70)`)
	if len(rows) != 1 || rows[0][0].Str() != "bob" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInSubquery(t *testing.T) {
	rows := runSQL(t, `SELECT o_orderkey FROM orders
		WHERE o_custkey IN (SELECT c_custkey FROM customer WHERE c_acctbal > 0) ORDER BY o_orderkey`)
	// customers with positive balance: 10, 30 → orders 100, 101, 103.
	if len(rows) != 3 || rows[0][0].Int() != 100 || rows[2][0].Int() != 103 {
		t.Fatalf("rows = %v", rows)
	}
	rows = runSQL(t, `SELECT o_orderkey FROM orders
		WHERE o_custkey NOT IN (SELECT c_custkey FROM customer WHERE c_acctbal > 0)`)
	if len(rows) != 1 || rows[0][0].Int() != 102 {
		t.Fatalf("not in rows = %v", rows)
	}
}

func TestCorrelatedScalarAgg(t *testing.T) {
	// Q17-shaped: quantity below the average for that part.
	rows := runSQL(t, `SELECT l_orderkey FROM lineitem l1
		WHERE l1.l_partkey = 7
		  AND l1.l_quantity < (SELECT avg(l2.l_quantity) FROM lineitem l2 WHERE l2.l_partkey = l1.l_partkey)
		ORDER BY l_orderkey`)
	// part 7 quantities: 5, 10, 8 → avg 7.667; below: 5 (order 100).
	if len(rows) != 1 || rows[0][0].Int() != 100 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggregatedInSubquery(t *testing.T) {
	// Q18-shaped: orders whose total lineitem quantity exceeds a threshold.
	rows := runSQL(t, `SELECT o_orderkey FROM orders
		WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING sum(l_quantity) > 6)
		ORDER BY o_orderkey`)
	// per-order qty: 100→7, 101→10, 102→1, 103→8 → 100, 101, 103.
	if len(rows) != 3 || rows[0][0].Int() != 100 || rows[1][0].Int() != 101 || rows[2][0].Int() != 103 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestDerivedTable(t *testing.T) {
	rows := runSQL(t, `SELECT d.total FROM
		(SELECT o_custkey, sum(o_totalprice) AS total FROM orders GROUP BY o_custkey) AS d
		WHERE d.total > 50 ORDER BY d.total`)
	if len(rows) != 2 || rows[0][0].Float() != 90 || rows[1][0].Float() != 125 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestTopKViaLimitOrder(t *testing.T) {
	rows := runSQL(t, `SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 2`)
	if len(rows) != 2 || rows[0][1].Float() != 90 || rows[1][1].Float() != 75 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestDistinctAndCase(t *testing.T) {
	rows := runSQL(t, `SELECT DISTINCT CASE WHEN o_totalprice > 60 THEN 'big' ELSE 'small' END AS sz
		FROM orders ORDER BY sz`)
	if len(rows) != 2 || rows[0][0].Str() != "big" || rows[1][0].Str() != "small" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestStarExpansion(t *testing.T) {
	rows := runSQL(t, "SELECT * FROM nation ORDER BY n_nationkey")
	if len(rows) != 2 || len(rows[0]) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	rows = runSQL(t, "SELECT n.* FROM nation n, customer c WHERE n.n_nationkey = c.c_nationkey AND c.c_custkey = 30")
	if len(rows) != 1 || len(rows[0]) != 2 || rows[0][1].Str() != "FRANCE" {
		t.Fatalf("qualified star = %v", rows)
	}
}

func TestSemiJoinWithResidualCorrelation(t *testing.T) {
	// Q21-shaped: inequality correlation becomes a residual on the semi join.
	rows := runSQL(t, `SELECT l1.l_orderkey FROM lineitem l1
		WHERE l1.l_partkey = 7
		  AND EXISTS (SELECT 1 FROM lineitem l2 WHERE l2.l_orderkey = l1.l_orderkey AND l2.l_partkey <> l1.l_partkey)`)
	// Only order 100 has two lineitems with different parts (7 and 8).
	if len(rows) != 1 || rows[0][0].Int() != 100 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExplainOutput(t *testing.T) {
	cat, _ := testEnv(t)
	sel, _ := sqlparse.ParseSelect(`SELECT n_name, count(*) FROM nation, customer
		WHERE n_nationkey = c_nationkey GROUP BY n_name`)
	node, err := Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(node)
	for _, want := range []string{"Scan nation", "Scan customer", "Join", "Aggregate", "Project"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cat, _ := testEnv(t)
	for _, sql := range []string{
		"SELECT missing_col FROM nation",
		"SELECT n_name FROM missing_table",
		"SELECT n_name FROM nation ORDER BY not_selected_col",
	} {
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := Build(sel, cat); err == nil {
			t.Errorf("expected build error for %q", sql)
		}
	}
}
