package plan

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
)

// TableProvider supplies scan operators for base tables; the cluster layer
// provides per-fragment scans, tests provide in-memory rows.
type TableProvider interface {
	ScanTable(def *catalog.TableDef, alias string, pred expr.Expr) (exec.Operator, error)
}

// MemProvider serves tables from memory (tests and the query-planning unit
// of the coordinator).
type MemProvider struct {
	Cat  *catalog.Catalog
	Rows map[string][]types.Row
}

// ScanTable implements TableProvider with a filtered memory source.
func (m *MemProvider) ScanTable(def *catalog.TableDef, alias string, pred expr.Expr) (exec.Operator, error) {
	sch := def.Schema.Qualify(alias)
	var op exec.Operator = exec.NewSource(sch, m.Rows[def.Name])
	if pred != nil {
		op = exec.NewFilter(nil, op, pred)
	}
	return op, nil
}

// Execute compiles a logical plan into a local operator tree. Scalar
// subqueries are materialized first (depth-first), exactly once per query.
func Execute(n Node, prov TableProvider, ctx *exec.Ctx) (exec.Operator, error) {
	if err := materializeScalars(n, prov, ctx); err != nil {
		return nil, err
	}
	return compile(n, prov, ctx)
}

// materializeScalars runs every uncorrelated scalar subquery plan embedded
// in filter/scan predicates and freezes its value.
func materializeScalars(n Node, prov TableProvider, ctx *exec.Ctx) error {
	var scalars []*ScalarSubquery
	collect := func(e expr.Expr) {
		expr.Walk(e, func(x expr.Expr) {
			if s, ok := x.(*ScalarSubquery); ok && s.Resolved == nil {
				scalars = append(scalars, s)
			}
		})
	}
	Walk(n, func(m Node) {
		switch x := m.(type) {
		case *Filter:
			collect(x.Pred)
		case *Scan:
			if x.Pred != nil {
				collect(x.Pred)
			}
		case *Project:
			for _, e := range x.Exprs {
				collect(e)
			}
		case *Join:
			if x.Residual != nil {
				collect(x.Residual)
			}
		}
	})
	for _, s := range scalars {
		op, err := Execute(s.Plan, prov, ctx)
		if err != nil {
			return err
		}
		rows, err := exec.Collect(op)
		if err != nil {
			return err
		}
		v := types.Null
		switch {
		case len(rows) == 0:
		case len(rows) == 1 && len(rows[0]) >= 1:
			v = rows[0][0]
		default:
			return fmt.Errorf("plan: scalar subquery returned %d rows", len(rows))
		}
		s.Resolved = &v
	}
	return nil
}

func compile(n Node, prov TableProvider, ctx *exec.Ctx) (exec.Operator, error) {
	switch x := n.(type) {
	case *Scan:
		return prov.ScanTable(x.Table, x.Alias, x.Pred)
	case *Filter:
		child, err := compile(x.Child, prov, ctx)
		if err != nil {
			return nil, err
		}
		return exec.NewFilter(ctx, child, x.Pred), nil
	case *Project:
		child, err := compile(x.Child, prov, ctx)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(x.Names))
		for i, nm := range x.Names {
			names[i] = nm
		}
		return exec.NewProject(ctx, child, x.Exprs, names), nil
	case *Rename:
		child, err := compile(x.Child, prov, ctx)
		if err != nil {
			return nil, err
		}
		return &renameOp{Operator: child, sch: x.Schema()}, nil
	case *Join:
		left, err := compile(x.Left, prov, ctx)
		if err != nil {
			return nil, err
		}
		right, err := compile(x.Right, prov, ctx)
		if err != nil {
			return nil, err
		}
		if len(x.EquiLeft) == 0 {
			return exec.NewNestedLoopJoin(ctx, left, right, x.Residual, x.Type), nil
		}
		return exec.NewHashJoin(ctx, left, right, x.EquiLeft, x.EquiRight, x.Type, x.Residual, 1), nil
	case *Agg:
		child, err := compile(x.Child, prov, ctx)
		if err != nil {
			return nil, err
		}
		specs := make([]exec.AggSpec, len(x.Aggs))
		for i, a := range x.Aggs {
			specs[i] = exec.AggSpec{Kind: a.Kind, Arg: a.Arg, Distinct: a.Distinct, Name: a.Name}
		}
		return exec.NewHashAggregate(ctx, child, x.GroupBy, specs, exec.AggComplete), nil
	case *Sort:
		child, err := compile(x.Child, prov, ctx)
		if err != nil {
			return nil, err
		}
		return exec.NewSort(ctx, child, sortKeys(x.Keys)), nil
	case *Limit:
		// Sort+Limit collapses into the heap-based top-k.
		if s, ok := x.Child.(*Sort); ok && x.Offset == 0 {
			child, err := compile(s.Child, prov, ctx)
			if err != nil {
				return nil, err
			}
			return exec.NewTopK(ctx, child, sortKeys(s.Keys), int(x.N)), nil
		}
		child, err := compile(x.Child, prov, ctx)
		if err != nil {
			return nil, err
		}
		return exec.NewLimit(child, x.N, x.Offset), nil
	case *Distinct:
		child, err := compile(x.Child, prov, ctx)
		if err != nil {
			return nil, err
		}
		return exec.NewDistinct(child), nil
	default:
		return nil, fmt.Errorf("plan: cannot compile %T", n)
	}
}

func sortKeys(keys []SortItem) []exec.SortKey {
	out := make([]exec.SortKey, len(keys))
	for i, k := range keys {
		out[i] = exec.SortKey{Col: k.Col, Desc: k.Desc}
	}
	return out
}

// renameOp adjusts only the reported schema.
type renameOp struct {
	exec.Operator
	sch types.Schema
}

// Schema overrides the embedded operator's schema.
func (r *renameOp) Schema() types.Schema { return r.sch }
