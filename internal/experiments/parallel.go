package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sqlparse"
	"repro/internal/tpch"
)

// ParallelSweepStat is one degree of the intra-node parallelism sweep: the
// TPC-H suite executed with every parallel operator (morsel scans,
// aggregate builds, sort-run generation, join probes) requesting `degree`
// workers from a budget sized to grant them. Wall time is machine-dependent
// (speedup needs >= degree idle cores); the executed-work columns must stay
// constant across degrees — parallelism may never change what is computed.
type ParallelSweepStat struct {
	Degree   int     `json:"degree"`
	WallNS   int64   `json:"wall_ns"`
	WorkRows int64   `json:"work_rows"`
	ScanRows int64   `json:"scan_rows"`
	NetBytes int64   `json:"net_bytes"`
	SpeedupX float64 `json:"speedup_x"` // degree-1 wall / this wall
}

// ParallelismSweep reruns the TPC-H suite on the hrdbms profile at each
// intra-node parallelism degree, pinning the worker budget so the requested
// degree is actually granted regardless of host CPU count. It checks that
// result row counts and executed work are identical across degrees (the
// morsel engine's correctness contract) and reports per-degree wall time.
func (r *Runner) ParallelismSweep(workers int, degrees []int) ([]ParallelSweepStat, error) {
	if workers == 0 {
		workers = 4
	}
	if len(degrees) == 0 {
		degrees = []int{1, 2, 4}
	}
	queries := tpch.Queries()
	type cell struct {
		wall    int64
		rows    map[string]int
		metrics cluster.RunMetrics
	}
	cells := make([]cell, 0, len(degrees))
	for _, degree := range degrees {
		prof := cluster.HRDBMSProfile()
		prof.ScanParallelism = degree
		prof.AggParallelism = degree
		prof.SortParallelism = degree
		prof.ProbeParallelism = degree
		// Two concurrently-parallel operators per worker (a scan feeding an
		// aggregate, say) can both be granted their full degree.
		budget := 2 * degree
		if degree <= 1 {
			budget = -1 // pin to zero extra threads: the true serial baseline
		}
		c, err := r.newClusterCfg(fmt.Sprintf("parsweep%d", degree), workers, prof, budget)
		if err != nil {
			return nil, err
		}
		cl := cell{rows: map[string]int{}}
		for _, qid := range tpch.QueryIDs() {
			sel, err := sqlparse.ParseSelect(queries[qid])
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("%s parse: %w", qid, err)
			}
			node, err := c.Plan(sel)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("%s plan: %w", qid, err)
			}
			rows, m, err := c.RunMetered(node)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("%s run (degree %d): %w", qid, degree, err)
			}
			cl.rows[qid] = len(rows)
			cl.wall += int64(m.Wall)
			cl.metrics.WorkRows += m.WorkRows
			cl.metrics.ScanRows += m.ScanRows
			cl.metrics.NetBytes += m.NetBytes
		}
		c.Close()
		cells = append(cells, cl)
	}

	// Parity gate: every degree must produce the same result row counts.
	for i, cl := range cells[1:] {
		for qid, n := range cells[0].rows {
			if cl.rows[qid] != n {
				return nil, fmt.Errorf("parallelism changed results: %s has %d rows at degree %d, %d at degree %d",
					qid, cl.rows[qid], degrees[i+1], n, degrees[0])
			}
		}
	}

	r.printf("\n=== Intra-node parallelism sweep (%d workers, SF%g, budget pinned per degree) ===\n", workers, r.SF)
	r.printf("%-7s %10s %9s %9s %10s %8s\n", "degree", "wall(ms)", "scanrows", "workrows", "net(B)", "speedup")
	out := make([]ParallelSweepStat, 0, len(cells))
	base := cells[0].wall
	for i, cl := range cells {
		st := ParallelSweepStat{
			Degree:   degrees[i],
			WallNS:   cl.wall,
			WorkRows: cl.metrics.WorkRows,
			ScanRows: cl.metrics.ScanRows,
			NetBytes: cl.metrics.NetBytes,
			SpeedupX: float64(base) / float64(cl.wall),
		}
		out = append(out, st)
		r.printf("%-7d %10.2f %9d %9d %10d %7.2fx\n",
			st.Degree, float64(st.WallNS)/1e6, st.ScanRows, st.WorkRows, st.NetBytes, st.SpeedupX)
	}
	r.printf("(wall speedup requires idle cores; executed work must not vary with degree)\n")
	return out, nil
}
