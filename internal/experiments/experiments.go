// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII). Each experiment executes the TPC-H workload
// for real on an in-process cluster — per system profile and per cluster
// size, so topology, materialization, skipping, and co-location effects
// are measured, not assumed — then maps the measured quantities to
// simulated cluster-scale seconds with the performance model.
//
// Absolute numbers are not expected to match the paper (its substrate was
// a 96-node Infiniband cluster); the reproduced quantity is the SHAPE:
// which system wins, by roughly what factor, and where the crossovers are.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/network"
	"repro/internal/page"
	"repro/internal/perfmodel"
	"repro/internal/skipcache"
	"repro/internal/sqlparse"
	"repro/internal/tpch"
	"repro/internal/types"
)

// Runner configures the experiment suite.
type Runner struct {
	SF       float64 // measured scale factor (tiny; default 0.001)
	TargetSF float64 // modeled scale factor (the paper's 1000 = 1 TB)
	Seed     int64
	BaseDir  string
	Out      io.Writer

	data  *tpch.Data
	cache map[string]map[string]cluster.RunMetrics // system/nodes → query → metrics
}

// NewRunner builds a runner with paper-equivalent defaults.
func NewRunner(out io.Writer, baseDir string) *Runner {
	if out == nil {
		out = os.Stdout
	}
	return &Runner{
		SF: 0.001, TargetSF: 1000, Seed: 20260706,
		BaseDir: baseDir, Out: out,
		cache: map[string]map[string]cluster.RunMetrics{},
	}
}

func (r *Runner) printf(format string, args ...interface{}) {
	fmt.Fprintf(r.Out, format, args...)
}

// dataset generates (once) the measured dataset.
func (r *Runner) dataset() *tpch.Data {
	if r.data == nil {
		r.data = tpch.Generate(r.SF, r.Seed)
	}
	return r.data
}

// newCluster builds a loaded cluster for one (system, workers) cell.
func (r *Runner) newCluster(system string, workers int) (*cluster.Cluster, error) {
	return r.newClusterCfg(system, workers, perfmodel.ClusterProfile(system), 0)
}

// newClusterCfg builds a loaded cluster with an explicit execution profile
// and parallel budget (0 = host-derived), for sweeps that vary execution
// knobs within one system.
func (r *Runner) newClusterCfg(label string, workers int, prof cluster.ExecProfile, budget int) (*cluster.Cluster, error) {
	dir, err := os.MkdirTemp(r.BaseDir, fmt.Sprintf("%s-%d-*", label, workers))
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(cluster.Config{
		NumWorkers:     workers,
		BaseDir:        dir,
		PageSize:       16 * 1024,
		Nmax:           4, // the paper's constant neighbor limit
		Profile:        prof,
		ParallelBudget: budget,
	})
	if err != nil {
		return nil, err
	}
	for _, ddl := range tpch.DDL() {
		if _, err := c.ExecSQL(ddl); err != nil {
			c.Close()
			return nil, err
		}
	}
	for tbl, rows := range r.dataset().Tables() {
		if _, err := c.Load(tbl, rows); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// measure runs all 21 queries metered on a (system, workers) cluster,
// caching the result.
func (r *Runner) measure(system string, workers int) (map[string]cluster.RunMetrics, error) {
	key := fmt.Sprintf("%s/%d", system, workers)
	if m, ok := r.cache[key]; ok {
		return m, nil
	}
	c, err := r.newCluster(system, workers)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	out := map[string]cluster.RunMetrics{}
	queries := tpch.Queries()
	for _, qid := range tpch.QueryIDs() {
		sel, err := sqlparse.ParseSelect(queries[qid])
		if err != nil {
			return nil, fmt.Errorf("%s parse: %w", qid, err)
		}
		node, err := c.Plan(sel)
		if err != nil {
			return nil, fmt.Errorf("%s plan: %w", qid, err)
		}
		_, m, err := c.RunMetered(node)
		if err != nil {
			return nil, fmt.Errorf("%s run: %w", qid, err)
		}
		out[qid] = m
	}
	r.cache[key] = out
	return out, nil
}

// estimate runs the model for one query cell.
func (r *Runner) estimate(system string, workers int, m cluster.RunMetrics, memBytes float64) perfmodel.Estimate {
	prof := perfmodel.Systems(memBytes)[system]
	mo := perfmodel.Model{Prof: prof}
	return mo.Estimate(m, perfmodel.Scale{
		DataFactor:      r.TargetSF / r.SF,
		Nodes:           workers,
		MeasuredWorkers: workers,
	})
}

// SuiteResult is one (system, nodes) cell of Figure 7.
type SuiteResult struct {
	System  string
	Nodes   int
	Seconds float64 // sum over completed queries
	OOM     []string
	PerQ    map[string]float64
}

// RunSuite measures and models the full 21-query suite for one cell.
func (r *Runner) RunSuite(system string, workers int, memBytes float64) (*SuiteResult, error) {
	metrics, err := r.measure(system, workers)
	if err != nil {
		return nil, err
	}
	res := &SuiteResult{System: system, Nodes: workers, PerQ: map[string]float64{}}
	for _, qid := range tpch.QueryIDs() {
		est := r.estimate(system, workers, metrics[qid], memBytes)
		if est.OOM {
			res.OOM = append(res.OOM, qid)
			continue
		}
		res.PerQ[qid] = est.Seconds
		res.Seconds += est.Seconds
	}
	sort.Strings(res.OOM)
	return res, nil
}

// Fig7Sizes is the paper's cluster-size sweep.
var Fig7Sizes = []int{8, 16, 32, 64, 96}

// Fig7 regenerates Figure 7: total TPC-H runtime per system per cluster
// size, speedup relative to 8 nodes, and step-wise speedup.
func (r *Runner) Fig7(systems []string, sizes []int) (map[string][]*SuiteResult, error) {
	if systems == nil {
		systems = []string{"hive", "sparksql", "greenplum", "hrdbms"}
	}
	if sizes == nil {
		sizes = Fig7Sizes
	}
	results := map[string][]*SuiteResult{}
	for _, sys := range systems {
		for _, n := range sizes {
			res, err := r.RunSuite(sys, n, 24<<30)
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", sys, n, err)
			}
			results[sys] = append(results[sys], res)
		}
	}
	r.printf("\n=== Figure 7(a): total TPC-H runtime (sec, SF%.0f modeled) ===\n", r.TargetSF)
	r.printf("%-12s", "system")
	for _, n := range sizes {
		r.printf("%12d", n)
	}
	r.printf("\n")
	for _, sys := range systems {
		r.printf("%-12s", perfmodel.Systems(0)[sys].Name)
		for _, res := range results[sys] {
			if len(res.OOM) > 0 {
				r.printf("%8.0f(%dF)", res.Seconds, len(res.OOM))
			} else {
				r.printf("%12.0f", res.Seconds)
			}
		}
		r.printf("\n")
	}
	r.printf("\n=== Figure 7(b): speedup relative to smallest size ===\n")
	r.printf("%-12s", "system")
	for _, n := range sizes {
		r.printf("%12d", n)
	}
	r.printf("\n")
	for _, sys := range systems {
		base := results[sys][0].Seconds
		r.printf("%-12s", perfmodel.Systems(0)[sys].Name)
		for _, res := range results[sys] {
			r.printf("%12.2f", base/res.Seconds)
		}
		r.printf("\n")
	}
	r.printf("\n=== Figure 7(c): step-wise speedup (vs previous size) ===\n")
	for _, sys := range systems {
		r.printf("%-12s", perfmodel.Systems(0)[sys].Name)
		prev := 0.0
		for i, res := range results[sys] {
			if i == 0 {
				r.printf("%12s", "-")
			} else {
				r.printf("%12.2f", prev/res.Seconds)
			}
			prev = res.Seconds
		}
		r.printf("\n")
	}
	return results, nil
}

// Fig8 regenerates the per-query comparison of HRDBMS vs Greenplum at the
// smallest and largest cluster sizes, flagging the paper's call-outs.
func (r *Runner) Fig8(small, large int) error {
	type cell struct{ hr, gp perfmodel.Estimate }
	get := func(n int) (map[string]cell, error) {
		hr, err := r.measure("hrdbms", n)
		if err != nil {
			return nil, err
		}
		gp, err := r.measure("greenplum", n)
		if err != nil {
			return nil, err
		}
		out := map[string]cell{}
		for _, qid := range tpch.QueryIDs() {
			out[qid] = cell{
				hr: r.estimate("hrdbms", n, hr[qid], 24<<30),
				gp: r.estimate("greenplum", n, gp[qid], 24<<30),
			}
		}
		return out, nil
	}
	at8, err := get(small)
	if err != nil {
		return err
	}
	atN, err := get(large)
	if err != nil {
		return err
	}
	r.printf("\n=== Figure 8: per-query runtime (sec), HRDBMS vs Greenplum ===\n")
	r.printf("%-5s %10s %10s %8s   %10s %10s %8s\n",
		"query", fmt.Sprintf("HR@%d", small), fmt.Sprintf("GP@%d", small), "ratio",
		fmt.Sprintf("HR@%d", large), fmt.Sprintf("GP@%d", large), "ratio")
	for _, qid := range tpch.QueryIDs() {
		c8, cN := at8[qid], atN[qid]
		ratio := func(c cell) string {
			if c.gp.OOM {
				return "GP-OOM"
			}
			return fmt.Sprintf("%8.2f", c.gp.Seconds/c.hr.Seconds)
		}
		gp8 := fmt.Sprintf("%10.1f", c8.gp.Seconds)
		if c8.gp.OOM {
			gp8 = "       OOM"
		}
		r.printf("%-5s %10.1f %s %s   %10.1f %10.1f %s\n",
			qid, c8.hr.Seconds, gp8, ratio(c8),
			cN.hr.Seconds, cN.gp.Seconds, ratio(cN))
	}
	return nil
}

// Fig9 regenerates the Q18 scaling table (runtime and speedup relative to
// the 16-node run) for Greenplum and HRDBMS.
func (r *Runner) Fig9(sizes []int) error {
	if sizes == nil {
		sizes = []int{16, 32, 64, 96}
	}
	r.printf("\n=== Figure 9: TPC-H Q18 runtime (sec) and speedup vs %d nodes ===\n", sizes[0])
	r.printf("%-8s %18s %18s\n", "nodes", "Greenplum", "HRDBMS")
	var gpBase, hrBase float64
	for i, n := range sizes {
		gpM, err := r.measure("greenplum", n)
		if err != nil {
			return err
		}
		hrM, err := r.measure("hrdbms", n)
		if err != nil {
			return err
		}
		gp := r.estimate("greenplum", n, gpM["q18"], 24<<30)
		hr := r.estimate("hrdbms", n, hrM["q18"], 24<<30)
		if i == 0 {
			gpBase, hrBase = gp.Seconds, hr.Seconds
		}
		gpTxt := fmt.Sprintf("%8.0f (%5.2f)", gp.Seconds, gpBase/gp.Seconds)
		if gp.OOM {
			gpTxt = "       OOM       "
		}
		r.printf("%-8d %18s %8.0f (%5.2f)\n", n, gpTxt, hr.Seconds, hrBase/hr.Seconds)
	}
	return nil
}

// ThreeTB regenerates the 3 TB experiment: SF3000 on 8 nodes with 24 GB
// memory per node; Greenplum and Spark fail with OOM on their
// largest-intermediate queries, HRDBMS completes all 21.
func (r *Runner) ThreeTB() error {
	save := r.TargetSF
	defer func() { r.TargetSF = save }()
	r.printf("\n=== 3TB experiment: SF3000 on 8 nodes, 24 GB memory/node ===\n")
	r.printf("%-12s %10s %8s %s\n", "system", "total(s)", "done", "failed queries")
	var hr1, hr3 float64
	for _, sys := range []string{"greenplum", "sparksql", "hive", "hrdbms"} {
		r.TargetSF = 3000
		res, err := r.RunSuite(sys, 8, 24<<30)
		if err != nil {
			return err
		}
		done := len(tpch.QueryIDs()) - len(res.OOM)
		r.printf("%-12s %10.0f %5d/21 %s\n",
			perfmodel.Systems(0)[sys].Name, res.Seconds, done, strings.Join(res.OOM, " "))
		if sys == "hrdbms" {
			hr3 = res.Seconds
			r.TargetSF = 1000
			res1, err := r.RunSuite(sys, 8, 24<<30)
			if err != nil {
				return err
			}
			hr1 = res1.Seconds
		}
	}
	if hr1 > 0 {
		r.printf("HRDBMS 3TB/1TB runtime ratio: %.2fx (paper: 2.85x)\n", hr3/hr1)
	}
	return nil
}

// CurrentVersions regenerates the final table: 8 nodes with full 384 GB
// memory, newer engine versions (Hive on Tez, Spark 2.0).
func (r *Runner) CurrentVersions() error {
	r.printf("\n=== Current system versions: 8 nodes, 384 GB memory/node ===\n")
	r.printf("%-14s %12s\n", "system", "runtime (s)")
	for _, sys := range []string{"hive-tez", "spark2", "greenplum", "hrdbms"} {
		res, err := r.RunSuite(sys, 8, 384<<30)
		if err != nil {
			return err
		}
		r.printf("%-14s %12.0f\n", perfmodel.Systems(0)[sys].Name, res.Seconds)
	}
	return nil
}

// PredCacheFootprint reproduces the Section III estimate: a 10 TB database
// with 1000 executed queries on 10 nodes carries ~250 MB of predicate
// cache per node. We build the cache the same way the system would and
// measure it.
func (r *Runner) PredCacheFootprint() error {
	const (
		dbBytes   = 10 << 40 // 10 TB
		nodes     = 10
		pageBytes = 64 << 20 // the paper's largest page size
		queries   = 1000
	)
	pagesPerNode := int64(dbBytes / nodes / pageBytes) // 16384
	c := skipcache.NewCache(0)
	// Each query leaves absence facts on the ~30% of pages its predicate
	// excludes (the 80-20 rule: most queries touch little data).
	for q := 0; q < queries; q++ {
		conj := skipcache.Conj{
			{Col: fmt.Sprintf("col_%d", q%16), Op: skipcache.OpLt, Val: types.NewInt(int64(q * 37))},
			{Col: "l_shipdate", Op: skipcache.OpGe, Val: types.NewInt(int64(8000 + q))},
		}
		for p := int64(0); p < pagesPerNode; p++ {
			if (p+int64(q))%10 < 3 { // 30% of pages record the fact
				c.Record(page.Key{File: 1, Page: uint32(p)}, conj)
			}
		}
	}
	perNode := c.SizeBytes()
	r.printf("\n=== Predicate cache footprint (10 TB, 1000 queries, 10 nodes) ===\n")
	r.printf("pages/node: %d, entries: %d, bytes/node: %.0f MB (paper: ~250 MB)\n",
		pagesPerNode, c.Entries(), float64(perNode)/(1<<20))
	return nil
}

// Ablations quantifies the design choices DESIGN.md calls out, with real
// measured counters rather than modeled time.
func (r *Runner) Ablations(workers int) error {
	if workers == 0 {
		workers = 16
	}
	r.printf("\n=== Ablations (measured counters, %d workers, SF%g) ===\n", workers, r.SF)

	// (a) Shuffle topology: a raw worker-to-worker shuffle (no coordinator
	// gather in the way) with the same volume under both topologies.
	hier, err := measureRawShuffle(workers, 4, true)
	if err != nil {
		return err
	}
	direct, err := measureRawShuffle(workers, 4, false)
	if err != nil {
		return err
	}
	r.printf("(a) %d-node shuffle topology (Nmax=4):\n", workers)
	r.printf("      hierarchical: max degree=%d  connections=%d  bytes=%d (hub forwarding)\n",
		hier.degree, hier.conns, hier.bytes)
	r.printf("      direct:       max degree=%d  connections=%d  bytes=%d\n",
		direct.degree, direct.conns, direct.bytes)

	// (b) Data skipping on vs off: the same selective scan with the
	// predicate cache + min-max enabled (second run warm) and disabled.
	runQ6 := func(system string) (first, second cluster.RunMetrics, err error) {
		c, err := r.newCluster(system, 4)
		if err != nil {
			return
		}
		defer c.Close()
		sel, _ := sqlparse.ParseSelect(tpch.Queries()["q6"])
		node, err := c.Plan(sel)
		if err != nil {
			return
		}
		if _, first, err = c.RunMetered(node); err != nil {
			return
		}
		node2, _ := c.Plan(sel)
		_, second, err = c.RunMetered(node2)
		return
	}
	onFirst, onSecond, err := runQ6("hrdbms")
	if err != nil {
		return err
	}
	offFirst, _, err := runQ6("greenplum") // no skipping in this profile
	if err != nil {
		return err
	}
	r.printf("(b) Q6 data skipping:       on:  cold pages=%d skipped=%d; warm pages=%d skipped=%d\n",
		onFirst.PagesRead, onFirst.PagesSkipped, onSecond.PagesRead, onSecond.PagesSkipped)
	r.printf("                            off: pages=%d skipped=%d\n",
		offFirst.PagesRead, offFirst.PagesSkipped)

	// (c) Blocking/materializing shuffle cost (Hive-like) vs non-blocking.
	hrM, err := r.measure("hrdbms", workers)
	if err != nil {
		return err
	}
	hiveM, err := r.measure("hive", workers)
	if err != nil {
		return err
	}
	var hrSpill, hiveSpill int64
	for _, qid := range tpch.QueryIDs() {
		hrSpill += hrM[qid].SpillBytes
		hiveSpill += hiveM[qid].SpillBytes
	}
	r.printf("(c) Suite materialization:  non-blocking shuffle spill=%d bytes; blocking+materialized spill=%d bytes\n",
		hrSpill, hiveSpill)
	return nil
}

// shufMeasure holds one raw-shuffle topology measurement.
type shufMeasure struct {
	degree, conns int
	bytes         int64
}

// measureRawShuffle runs a pure worker-to-worker shuffle over n in-process
// nodes and meters the topology quantities the paper's Nmax claim is about.
func measureRawShuffle(n, nmax int, hierarchical bool) (shufMeasure, error) {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	fabric := network.NewFabric(ids, 256)
	defer fabric.CloseAll()
	spec := exec.ShuffleSpec{Channel: "abl", Nodes: ids, Nmax: nmax, Hierarchical: hierarchical}
	sch := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindInt},
	)
	var rows []types.Row
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, types.Row{types.NewInt(i), types.NewInt(i * 7)})
	}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			ep, err := fabric.Endpoint(i)
			if err != nil {
				errs <- err
				return
			}
			sh, err := exec.NewShuffle(nil, ep, spec, exec.NewSource(sch, rows), exec.ColRefs(0), types.Schema{})
			if err != nil {
				errs <- err
				return
			}
			_, err = exec.Collect(sh)
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			return shufMeasure{}, err
		}
	}
	m := fabric.Meter()
	return shufMeasure{degree: m.MaxNodeDegree(), conns: m.Connections(), bytes: m.TotalBytes()}, nil
}

// All runs every experiment in paper order.
func (r *Runner) All() error {
	if _, err := r.Fig7(nil, nil); err != nil {
		return err
	}
	if err := r.Fig8(8, 96); err != nil {
		return err
	}
	if err := r.Fig9(nil); err != nil {
		return err
	}
	if err := r.ThreeTB(); err != nil {
		return err
	}
	if err := r.CurrentVersions(); err != nil {
		return err
	}
	if err := r.PredCacheFootprint(); err != nil {
		return err
	}
	return r.Ablations(16)
}
