package experiments

import (
	"os"
	"testing"

	"repro/internal/tpch"
)

// TestCalibrationDump is a diagnostic (run explicitly with -run Calibration
// -v) that prints measured metrics and modeled components per query so the
// model coefficients can be tuned against the paper's shapes.
func TestCalibrationDump(t *testing.T) {
	if os.Getenv("CALIBRATE") == "" {
		t.Skip("set CALIBRATE=1 to dump calibration data")
	}
	r, _ := tinyRunner(t)
	for _, sys := range []string{"hrdbms", "greenplum"} {
		m, err := r.measure(sys, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, qid := range tpch.QueryIDs() {
			mm := m[qid]
			est := r.estimate(sys, 8, mm, 24<<30)
			t.Logf("%-10s %-4s work=%-8d state=%-8d net=%-8d spill=%-8d xch=%-2d deg=%-2d | cpu=%-7.0f disk=%-7.0f net=%-7.0f conn=%-5.1f start=%-5.1f oom=%v ws/node=%.1fGB",
				sys, qid, mm.WorkRows, mm.StateBytes, mm.NetBytes, mm.SpillBytes,
				mm.Exchanges, mm.MaxDegree,
				est.CPUSec, est.DiskSec, est.NetSec, est.ConnSec, est.StartupSec, est.OOM,
				float64(mm.StateBytes)*r.TargetSF/r.SF/8/float64(1<<30))
		}
	}
}
