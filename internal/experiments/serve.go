package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/srv"
	"repro/internal/tpch"
)

// ServeLevelStat is one concurrency level of the serving-layer sweep: N
// clients each running the TPC-H mix through sessions and admission
// control. Latency includes queue wait (it is what a client observes);
// queue wait is also reported separately so saturation is attributable.
type ServeLevelStat struct {
	Clients      int     `json:"clients"`
	Queries      int     `json:"queries"`
	Failed       int     `json:"failed"`
	Rejected     int64   `json:"rejected"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	QueueP50MS   float64 `json:"queue_wait_p50_ms"`
	QueueP99MS   float64 `json:"queue_wait_p99_ms"`
	WallMS       float64 `json:"wall_ms"`
	QPS          float64 `json:"qps"`
	HeapMB       float64 `json:"heap_mb"`
	MaxActive    int     `json:"max_active"`
	QueueDepth   int     `json:"queue_depth"`
	SlowAdmits   int64   `json:"slow_admits"`
	KilledCount  int64   `json:"killed"`
	AdmittedOnce int64   `json:"admitted"`
}

// ServeBench sweeps the serving layer over concurrency levels: for each
// level it starts a fresh server (sessions + admission) over one shared
// TPC-H cluster, runs N concurrent clients each submitting the query mix,
// and reports client-observed latency percentiles, queue wait, and
// rejection counts. The admission queue is sized so no level sheds load —
// the sweep measures scheduling, not rejection.
func (r *Runner) ServeBench(workers int, levels []int, perClient int) ([]ServeLevelStat, error) {
	if workers == 0 {
		workers = 4
	}
	if len(levels) == 0 {
		levels = []int{1, 4, 16, 64}
	}
	c, err := r.newCluster("hrdbms", workers)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	queries := tpch.Queries()
	ids := tpch.QueryIDs()
	if perClient <= 0 {
		perClient = len(ids)
	}

	maxLevel := 0
	for _, n := range levels {
		if n > maxLevel {
			maxLevel = n
		}
	}

	var out []ServeLevelStat
	r.printf("\n=== Serving-layer concurrency sweep (%d workers, SF%g, %d queries/client) ===\n",
		workers, r.SF, perClient)
	r.printf("%8s %8s %7s %9s %9s %10s %10s %9s %8s %8s\n",
		"clients", "queries", "failed", "p50(ms)", "p99(ms)", "qwait50", "qwait99", "wall(ms)", "qps", "heap(MB)")
	for _, n := range levels {
		reg := obs.NewRegistry()
		maxActive := workers
		queueDepth := 2 * maxLevel // every client can queue; the sweep never sheds
		s := srv.New(c, srv.Config{
			MaxConns: maxLevel + 8,
			Admission: srv.AdmissionConfig{
				MaxActive:       maxActive,
				QueueDepth:      queueDepth,
				QueuePerSession: queueDepth,
			},
		}, reg)

		type sample struct{ lat, wait time.Duration }
		samples := make([][]sample, n)
		failures := make([]error, n)
		start := time.Now()
		var wg sync.WaitGroup
		for ci := 0; ci < n; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				sess, err := s.Sessions().Open()
				if err != nil {
					failures[ci] = err
					return
				}
				defer s.Sessions().Close(sess)
				for qi := 0; qi < perClient; qi++ {
					// Stagger the mix so clients do not run in lockstep.
					sql := queries[ids[(ci+qi)%len(ids)]]
					qStart := time.Now()
					_, wait, err := s.RunQuery(sess, func(opts *cluster.QueryOptions) (*cluster.Result, error) {
						return c.ExecSQLOpts(sql, opts)
					})
					if err != nil {
						failures[ci] = fmt.Errorf("client %d query %d: %w", ci, qi, err)
						return
					}
					samples[ci] = append(samples[ci], sample{lat: time.Since(qStart), wait: wait})
				}
			}(ci)
		}
		wg.Wait()
		wall := time.Since(start)

		st := ServeLevelStat{
			Clients:    n,
			MaxActive:  maxActive,
			QueueDepth: queueDepth,
			WallMS:     float64(wall.Nanoseconds()) / 1e6,
		}
		var lats, waits []float64
		for ci := range samples {
			if failures[ci] != nil {
				st.Failed++
				r.printf("  FAILED: %v\n", failures[ci])
			}
			for _, sm := range samples[ci] {
				lats = append(lats, float64(sm.lat.Nanoseconds())/1e6)
				waits = append(waits, float64(sm.wait.Nanoseconds())/1e6)
			}
		}
		st.Queries = len(lats)
		st.P50MS, st.P99MS = percentile(lats, 50), percentile(lats, 99)
		st.QueueP50MS, st.QueueP99MS = percentile(waits, 50), percentile(waits, 99)
		if wall > 0 {
			st.QPS = float64(st.Queries) / wall.Seconds()
		}
		for _, m := range reg.Snapshot() {
			switch m.Name {
			case "srv.rejected.queue_full", "srv.rejected.draining", "srv.rejected.conn_limit":
				st.Rejected += int64(m.Value)
			case "srv.admission.slow":
				st.SlowAdmits = int64(m.Value)
			case "srv.killed.running", "srv.killed.queued":
				st.KilledCount += int64(m.Value)
			case "srv.admitted":
				st.AdmittedOnce = int64(m.Value)
			}
		}
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		st.HeapMB = float64(ms.HeapAlloc) / (1 << 20)

		out = append(out, st)
		r.printf("%8d %8d %7d %9.2f %9.2f %10.2f %10.2f %9.0f %8.1f %8.1f\n",
			st.Clients, st.Queries, st.Failed, st.P50MS, st.P99MS,
			st.QueueP50MS, st.QueueP99MS, st.WallMS, st.QPS, st.HeapMB)
		if err := s.Shutdown(); err != nil {
			return nil, fmt.Errorf("level %d shutdown: %w", n, err)
		}
	}
	return out, nil
}

// percentile returns the p-th percentile (nearest-rank) of unsorted values.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := int(float64(len(s))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
