package experiments

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
)

var (
	sharedRunner *Runner
	sharedBuf    bytes.Buffer
	sharedOnce   sync.Once
)

// tinyRunner keeps test runtime sane: one shared runner (its measurement
// cache is reused across tests) at a tiny scale factor.
func tinyRunner(t *testing.T) (*Runner, *bytes.Buffer) {
	t.Helper()
	sharedOnce.Do(func() {
		dir, err := os.MkdirTemp("", "experiments-test-*")
		if err != nil {
			t.Fatal(err)
		}
		sharedRunner = NewRunner(&sharedBuf, dir)
		sharedRunner.SF = 0.0005
	})
	return sharedRunner, &sharedBuf
}

func TestSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("suite measurement skipped in -short mode")
	}
	r, _ := tinyRunner(t)
	hr, err := r.RunSuite("hrdbms", 8, 24<<30)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := r.RunSuite("greenplum", 8, 24<<30)
	if err != nil {
		t.Fatal(err)
	}
	spark, err := r.RunSuite("sparksql", 8, 24<<30)
	if err != nil {
		t.Fatal(err)
	}
	hive, err := r.RunSuite("hive", 8, 24<<30)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hrdbms=%.0f greenplum=%.0f spark=%.0f hive=%.0f (OOM: gp=%v spark=%v)",
		hr.Seconds, gp.Seconds, spark.Seconds, hive.Seconds, gp.OOM, spark.OOM)
	// Paper shape at the smallest cluster: Hive slowest by far, Spark
	// several times slower than HRDBMS, Greenplum competitive with HRDBMS
	// on the queries it completes, but OOM on a few heavy queries (the
	// paper shows no Greenplum result at 8 nodes for this reason).
	if !(hive.Seconds > spark.Seconds) {
		t.Errorf("Hive (%.0f) should be slower than Spark (%.0f)", hive.Seconds, spark.Seconds)
	}
	if !(spark.Seconds > hr.Seconds) {
		t.Errorf("Spark (%.0f) should be slower than HRDBMS (%.0f)", spark.Seconds, hr.Seconds)
	}
	if len(gp.OOM) == 0 {
		t.Error("Greenplum should fail some heavy queries at 8 nodes/24GB (the paper's OOM)")
	}
	if len(gp.OOM) > 5 {
		t.Errorf("Greenplum OOMs %d queries — model too aggressive: %v", len(gp.OOM), gp.OOM)
	}
	if len(hr.OOM) != 0 {
		t.Errorf("HRDBMS must complete all queries (spilling): OOM=%v", hr.OOM)
	}
	if len(hive.OOM) != 0 {
		t.Errorf("Hive must complete all queries: OOM=%v", hive.OOM)
	}
	// Compare per-query where both completed: Greenplum should be in
	// HRDBMS's ballpark (the paper: GP 15-30%% faster per node).
	var hrSum, gpSum float64
	for qid, gpSec := range gp.PerQ {
		if hrSec, ok := hr.PerQ[qid]; ok {
			hrSum += hrSec
			gpSum += gpSec
		}
	}
	if gpSum > hrSum*1.6 {
		t.Errorf("Greenplum (%.0f) should be competitive with HRDBMS (%.0f) on completed queries",
			gpSum, hrSum)
	}
}

func TestScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite measurement skipped in -short mode")
	}
	r, _ := tinyRunner(t)
	// HRDBMS should get faster with more workers; Greenplum's advantage
	// should erode as its O(n) connection cost grows.
	hr4, err := r.RunSuite("hrdbms", 8, 24<<30)
	if err != nil {
		t.Fatal(err)
	}
	hr12, err := r.RunSuite("hrdbms", 32, 24<<30)
	if err != nil {
		t.Fatal(err)
	}
	if hr12.Seconds >= hr4.Seconds {
		t.Errorf("HRDBMS did not speed up: %0.f @8 vs %.0f @32", hr4.Seconds, hr12.Seconds)
	}
	gp4, err := r.RunSuite("greenplum", 8, 24<<30)
	if err != nil {
		t.Fatal(err)
	}
	gp12, err := r.RunSuite("greenplum", 32, 24<<30)
	if err != nil {
		t.Fatal(err)
	}
	common := func(a, b *SuiteResult) (x, y float64) {
		for qid, s1 := range a.PerQ {
			if s2, ok := b.PerQ[qid]; ok {
				x += s1
				y += s2
			}
		}
		return
	}
	hrA, hrB := common(hr4, hr12)
	gpA, gpB := common(gp4, gp12)
	hrSpeedup := hrA / hrB
	gpSpeedup := gpA / gpB
	t.Logf("speedup 8→32: hrdbms=%.2f greenplum=%.2f", hrSpeedup, gpSpeedup)
	if hrSpeedup <= gpSpeedup {
		t.Errorf("HRDBMS speedup (%.2f) should exceed Greenplum's (%.2f): bounded-degree shuffle", hrSpeedup, gpSpeedup)
	}
}

func TestPredCacheFootprintOutput(t *testing.T) {
	r, buf := tinyRunner(t)
	if err := r.PredCacheFootprint(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MB") {
		t.Fatalf("footprint output: %s", out)
	}
}

func TestAblationsRun(t *testing.T) {
	r, buf := tinyRunner(t)
	if err := r.Ablations(6); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"shuffle topology", "data skipping", "materialization"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q:\n%s", want, out)
		}
	}
}
