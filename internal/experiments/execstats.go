package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/tpch"
	"repro/internal/types"
)

// QueryExecStat is one query's measured execution — the raw counted
// quantities before any performance modeling. hrdbms-bench -exp exec prints
// these and -json writes them to a machine-readable baseline
// (BENCH_EXEC.json) so regressions in executed work (rows, pages, network
// volume, exchanges) are diffable across changes; wall_ns is recorded for
// orientation but is machine-dependent.
type QueryExecStat struct {
	Query        string `json:"query"`
	ResultRows   int    `json:"result_rows"`
	WorkRows     int64  `json:"work_rows"`
	ScanRows     int64  `json:"scan_rows"`
	PagesRead    int64  `json:"pages_read"`
	PagesSkipped int64  `json:"pages_skipped"`
	// Vector-scan page decode outcomes: typed batch decoders vs the boxed
	// DecodeInto fallback. Boxed should be 0 on the TPC-H schema; nonzero
	// means some scan silently pays the per-cell boxing tax.
	DecodeTypedPages int64 `json:"decode_typed_pages"`
	DecodeBoxedPages int64 `json:"decode_boxed_pages"`
	SpillBytes       int64 `json:"spill_bytes"`
	StateBytes       int64 `json:"state_bytes"`
	NetBytes         int64 `json:"net_bytes"`
	NetMessages      int64 `json:"net_messages"`
	Exchanges        int   `json:"exchanges"`
	WallNS           int64 `json:"wall_ns"`
	// VecVsBatchRowsPerSec is set only on the synthetic
	// "bench:vector_vs_batch" row: the typed vector pipeline's throughput
	// as a multiple of the boxed batch engine's on the same data.
	VecVsBatchRowsPerSec float64 `json:"vec_vs_batch_rows_per_sec,omitempty"`
}

// ExecStats runs the TPC-H suite once on a real hrdbms-profile cluster and
// returns the executed per-query metrics. With trace set, every query runs
// under the per-operator tracer and its stitched span tree is printed after
// the query's stats row.
func (r *Runner) ExecStats(workers int, trace bool) ([]QueryExecStat, error) {
	if workers == 0 {
		workers = 4
	}
	c, err := r.newCluster("hrdbms", workers)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	queries := tpch.Queries()
	var out []QueryExecStat
	r.printf("\n=== Executed per-query stats (%d workers, SF%g, measured not modeled) ===\n", workers, r.SF)
	r.printf("%-5s %8s %9s %9s %7s %7s %10s %6s %5s %9s\n",
		"query", "rows", "scanrows", "workrows", "pages", "skip", "net(B)", "msgs", "exch", "wall(ms)")
	for _, qid := range tpch.QueryIDs() {
		sql := queries[qid]
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			return nil, fmt.Errorf("%s parse: %w", qid, err)
		}
		node, err := c.Plan(sel)
		if err != nil {
			return nil, fmt.Errorf("%s plan: %w", qid, err)
		}
		var rows []types.Row
		var m cluster.RunMetrics
		var tr *obs.QueryTrace
		if trace {
			rows, m, tr, err = c.RunTraced(node, sql)
		} else {
			rows, m, err = c.RunMetered(node)
		}
		if err != nil {
			return nil, fmt.Errorf("%s run: %w", qid, err)
		}
		st := QueryExecStat{
			Query:            qid,
			ResultRows:       len(rows),
			WorkRows:         m.WorkRows,
			ScanRows:         m.ScanRows,
			PagesRead:        m.PagesRead,
			PagesSkipped:     m.PagesSkipped,
			DecodeTypedPages: m.DecodeTypedPages,
			DecodeBoxedPages: m.DecodeBoxedPages,
			SpillBytes:       m.SpillBytes,
			StateBytes:       m.StateBytes,
			NetBytes:         m.NetBytes,
			NetMessages:      m.NetMessages,
			Exchanges:        m.Exchanges,
			WallNS:           int64(m.Wall),
		}
		out = append(out, st)
		r.printf("%-5s %8d %9d %9d %7d %7d %10d %6d %5d %9.2f\n",
			qid, st.ResultRows, st.ScanRows, st.WorkRows, st.PagesRead, st.PagesSkipped,
			st.NetBytes, st.NetMessages, st.Exchanges, float64(st.WallNS)/1e6)
		if tr != nil {
			r.printf("--- %s operator trace ---\n%s", qid, tr.Render())
		}
	}
	vb, err := r.VectorVsBatch()
	if err != nil {
		return nil, fmt.Errorf("vector_vs_batch: %w", err)
	}
	out = append(out, vb)
	return out, nil
}

// CheckExecRegression compares freshly measured per-query stats against a
// committed JSON baseline (BENCH_EXEC.json) and fails if any named query's
// executed work grew beyond the tolerance. WorkRows and NetBytes are the
// gated quantities: they are what the cost-based optimizer's join ordering
// and shuffle-vs-broadcast decisions directly control, and they are
// deterministic for a fixed scale factor, seed, and worker count (unlike
// wall time or message counts, which depend on flush timing). tol is a
// fraction: 0.10 allows 10% growth before failing.
func CheckExecRegression(stats []QueryExecStat, baselinePath string, queries []string, tol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base []QueryExecStat
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	baseBy := make(map[string]QueryExecStat, len(base))
	for _, b := range base {
		baseBy[b.Query] = b
	}
	curBy := make(map[string]QueryExecStat, len(stats))
	for _, s := range stats {
		curBy[s.Query] = s
	}
	var failures []string
	for _, q := range queries {
		b, ok := baseBy[q]
		if !ok {
			return fmt.Errorf("query %s not in baseline %s", q, baselinePath)
		}
		c, ok := curBy[q]
		if !ok {
			return fmt.Errorf("query %s not in measured stats", q)
		}
		if float64(c.WorkRows) > float64(b.WorkRows)*(1+tol) {
			failures = append(failures, fmt.Sprintf(
				"%s work_rows %d > baseline %d (+%.0f%% allowed)",
				q, c.WorkRows, b.WorkRows, tol*100))
		}
		if float64(c.NetBytes) > float64(b.NetBytes)*(1+tol) {
			failures = append(failures, fmt.Sprintf(
				"%s net_bytes %d > baseline %d (+%.0f%% allowed)",
				q, c.NetBytes, b.NetBytes, tol*100))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("executed-work regression vs %s:\n  %s",
			baselinePath, joinLines(failures))
	}
	return nil
}

func joinLines(ss []string) string {
	out := ss[0]
	for _, s := range ss[1:] {
		out += "\n  " + s
	}
	return out
}
