package experiments

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vec"
)

// vecBatchSource replays pre-built typed batches — the vector engine's
// resident input representation, mirroring how the boxed engines read a
// resident []types.Row slice. Sel is cleared before each serve because a
// downstream VecFilter rewrites it in place.
type vecBatchSource struct {
	sch     types.Schema
	batches []*vec.Batch
	pos     int
}

func (s *vecBatchSource) Schema() types.Schema { return s.sch }
func (s *vecBatchSource) Open() error          { s.pos = 0; return nil }
func (s *vecBatchSource) Close() error         { return nil }
func (s *vecBatchSource) Next() (types.Row, bool, error) {
	return nil, false, fmt.Errorf("experiments: vecBatchSource is vector-only")
}
func (s *vecBatchSource) NextVec() (*vec.Batch, bool, error) {
	if s.pos >= len(s.batches) {
		return nil, false, nil
	}
	b := s.batches[s.pos]
	s.pos++
	b.Sel = nil
	return b, true, nil
}

// VectorVsBatch measures the typed vector kernels against the boxed batch
// engine on the scan→filter→project→aggregate pipeline of TPC-H Q1's hot
// loop over this runner's lineitem, and returns a synthetic stat row whose
// VecVsBatchRowsPerSec field records the throughput ratio. Both pipelines
// are golden-checked against each other before timing.
func (r *Runner) VectorVsBatch() (QueryExecStat, error) {
	rows := r.dataset().Lineitem
	cols := make([]types.Column, len(rows[0]))
	for i, v := range rows[0] {
		cols[i] = types.Column{Name: fmt.Sprintf("l%d", i), Kind: v.K}
	}
	sch := types.Schema{Cols: cols}
	const batchSize = 1024
	src := &vecBatchSource{sch: sch}
	for off := 0; off < len(rows); off += batchSize {
		end := off + batchSize
		if end > len(rows) {
			end = len(rows)
		}
		src.batches = append(src.batches, vec.FromRows(sch, rows[off:end], nil))
	}
	colRef := func(i int) expr.Expr { return &expr.Col{Index: i, Name: fmt.Sprintf("l%d", i)} }
	pred := func() expr.Expr {
		return &expr.Bin{Op: expr.OpLt, L: colRef(4), R: &expr.Const{V: types.NewFloat(25)}}
	}
	revenue := func() expr.Expr {
		return &expr.Bin{Op: expr.OpMul, L: colRef(5),
			R: &expr.Bin{Op: expr.OpSub, L: &expr.Const{V: types.NewFloat(1)}, R: colRef(6)}}
	}
	specs := func() []exec.AggSpec {
		return []exec.AggSpec{
			{Kind: exec.AggSum, Arg: colRef(1), Name: "s"},
			{Kind: exec.AggCount, Name: "c"},
		}
	}
	batchPipe := func() exec.Operator {
		ctx := exec.NewCtx("", 0)
		ctx.BatchRows = batchSize
		f := exec.NewFilter(ctx, exec.NewSource(sch, rows), pred())
		p := exec.NewProject(ctx, f, []expr.Expr{colRef(8), revenue()}, []string{"flag", "rev"})
		return exec.NewHashAggregate(ctx, p, exec.ColRefs(0), specs(), exec.AggComplete)
	}
	vecPipe := func() exec.Operator {
		ctx := exec.NewCtx("", 0)
		ctx.BatchRows = batchSize
		f := exec.NewVecFilter(ctx, src, pred())
		p := exec.NewVecProject(ctx, f, []expr.Expr{colRef(8), revenue()}, []string{"flag", "rev"})
		return exec.FromVec(exec.NewVecHashAggregate(ctx, p, exec.ColRefs(0), specs(), exec.AggComplete))
	}
	want, err := exec.Collect(batchPipe())
	if err != nil {
		return QueryExecStat{}, err
	}
	got, err := exec.Collect(vecPipe())
	if err != nil {
		return QueryExecStat{}, err
	}
	if err := sameMultiset(got, want); err != nil {
		return QueryExecStat{}, fmt.Errorf("vector/batch parity: %w", err)
	}
	const reps = 3
	timePipe := func(build func() exec.Operator) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := exec.Collect(build()); err != nil {
				return 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	batchWall, err := timePipe(batchPipe)
	if err != nil {
		return QueryExecStat{}, err
	}
	vecWall, err := timePipe(vecPipe)
	if err != nil {
		return QueryExecStat{}, err
	}
	ratio := float64(batchWall) / float64(vecWall)
	st := QueryExecStat{
		Query:                "bench:vector_vs_batch",
		ResultRows:           len(want),
		WorkRows:             int64(len(rows)),
		WallNS:               int64(vecWall),
		VecVsBatchRowsPerSec: ratio,
	}
	r.printf("vector vs boxed-batch (lineitem SF%g, %d rows): batch %.1fms, vec %.1fms, ratio %.2fx\n",
		r.SF, len(rows), float64(batchWall)/1e6, float64(vecWall)/1e6, ratio)
	return st, nil
}

// sameMultiset compares two row sets order-insensitively.
func sameMultiset(got, want []types.Row) error {
	if len(got) != len(want) {
		return fmt.Errorf("row count %d vs %d", len(got), len(want))
	}
	counts := make(map[string]int, len(want))
	for _, r := range want {
		counts[r.String()]++
	}
	for _, r := range got {
		counts[r.String()]--
	}
	for k, c := range counts {
		if c != 0 {
			return fmt.Errorf("row %q: multiset difference %+d", k, -c)
		}
	}
	return nil
}
