package srv

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Backend is the execution seam the server drives: the cluster session
// layer, or a stub in tests.
type Backend interface {
	ExecSQLOpts(sql string, opts *cluster.QueryOptions) (*cluster.Result, error)
	Prepare(sql string) (*cluster.Prepared, error)
	ExecPrepared(p *cluster.Prepared, opts *cluster.QueryOptions) (*cluster.Result, error)
}

// Config sizes the serving layer. Zero values select defaults.
type Config struct {
	// MaxConns caps concurrent client sessions (default 256).
	MaxConns int
	// IdleTimeout closes a connection idle between statements for this
	// long (default none).
	IdleTimeout time.Duration
	// MaxQueryBytes bounds one statement line; longer lines answer
	// "ERR query too large" and the connection stays usable (default 4 MiB).
	MaxQueryBytes int
	// DrainTimeout is how long Shutdown waits for in-flight queries before
	// killing them (default 10s).
	DrainTimeout time.Duration
	// Admission sizes the query scheduler.
	Admission AdmissionConfig
}

func (c Config) withDefaults() Config {
	if c.MaxQueryBytes <= 0 {
		c.MaxQueryBytes = 4 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Server owns the serving layer: the accept loop, per-connection sessions,
// and the admission scheduler. It replaces the bare accept-and-spawn loop a
// database prototype starts with.
type Server struct {
	be  Backend
	cfg Config
	reg *obs.Registry

	adm      *Admission
	sessions *Sessions

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	draining  bool
	handlers  sync.WaitGroup
}

// New builds a server over a backend. reg may be nil.
func New(be Backend, cfg Config, reg *obs.Registry) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		be:        be,
		cfg:       cfg,
		reg:       reg,
		adm:       NewAdmission(cfg.Admission, reg),
		sessions:  NewSessions(cfg.MaxConns, reg),
		conns:     map[net.Conn]struct{}{},
		listeners: map[net.Listener]struct{}{},
	}
}

// Admission exposes the scheduler (KILL, drain, tests).
func (s *Server) Admission() *Admission { return s.adm }

// Sessions exposes the session manager.
func (s *Server) Sessions() *Sessions { return s.sessions }

// Serve accepts connections until the listener fails permanently or the
// server drains. Per-connection errors never terminate the loop: a failed
// accept is retried with backoff, and a connection beyond the session cap
// is answered with an ERR line and closed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()

	var backoff time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.isDraining() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			// Transient accept failure (EMFILE, ECONNABORTED): back off and
			// keep serving the connections we already have.
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff < time.Second {
				backoff *= 2
			}
			if s.reg != nil {
				s.reg.Counter("srv.accept.errors").Inc()
			}
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = writeErrLine(conn, ErrDraining)
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go func(conn net.Conn) {
			defer s.handlers.Done()
			s.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}(conn)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: stop accepting, fail queued queries, let
// running ones finish within DrainTimeout (then kill them), and close every
// connection. Safe to call once; returns nil on a clean drain.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for l := range s.listeners {
		_ = l.Close()
	}
	s.mu.Unlock()

	s.sessions.DrainAll()
	s.adm.Drain()
	clean := s.adm.Quiesce(s.cfg.DrainTimeout)
	if !clean {
		s.adm.KillAll(fmt.Errorf("%w: drain timeout", ErrDraining))
		s.adm.Quiesce(s.cfg.DrainTimeout)
	}

	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
	if !clean {
		return fmt.Errorf("srv: drain timed out after %v; in-flight queries killed", s.cfg.DrainTimeout)
	}
	return nil
}
