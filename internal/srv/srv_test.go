package srv_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/srv"
	"repro/internal/testutil"
	"repro/internal/types"
)

// stubBackend is a controllable Backend: queries optionally announce
// themselves on started and block until release fires (or their kill
// switch does).
type stubBackend struct {
	started chan struct{} // buffered; receives one token per query start
	release chan struct{} // close to let blocked queries finish
}

func (b *stubBackend) run(opts *cluster.QueryOptions) (*cluster.Result, error) {
	if b.started != nil {
		b.started <- struct{}{}
	}
	if b.release != nil {
		var done <-chan struct{}
		if opts != nil {
			done = opts.Cancel.Done()
		}
		select {
		case <-b.release:
		case <-done:
			return nil, opts.Cancel.Err()
		}
	}
	return &cluster.Result{Message: "done"}, nil
}

func (b *stubBackend) ExecSQLOpts(sql string, opts *cluster.QueryOptions) (*cluster.Result, error) {
	return b.run(opts)
}

func (b *stubBackend) Prepare(sql string) (*cluster.Prepared, error) {
	return nil, fmt.Errorf("stub: no prepare")
}

func (b *stubBackend) ExecPrepared(p *cluster.Prepared, opts *cluster.QueryOptions) (*cluster.Result, error) {
	return b.run(opts)
}

// lineClient drives the wire protocol over one connection.
type lineClient struct {
	t    *testing.T
	conn net.Conn
	rd   *bufio.Reader
}

func newLineClient(t *testing.T, conn net.Conn) *lineClient {
	return &lineClient{t: t, conn: conn, rd: bufio.NewReader(conn)}
}

// send submits one statement and reads lines until OK/ERR.
func (c *lineClient) send(stmt string) []string {
	c.t.Helper()
	if _, err := fmt.Fprintln(c.conn, stmt); err != nil {
		c.t.Fatalf("send %q: %v", stmt, err)
	}
	return c.readReply()
}

func (c *lineClient) readReply() []string {
	c.t.Helper()
	var lines []string
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			c.t.Fatalf("read reply: %v (so far %v)", err, lines)
		}
		line = strings.TrimRight(line, "\n")
		lines = append(lines, line)
		if strings.HasPrefix(line, "OK") || strings.HasPrefix(line, "ERR") {
			return lines
		}
	}
}

// TestOversizedQueryKeepsConnection exercises the bounded line reader: a
// statement over MaxQueryBytes answers "query too large" and the
// connection keeps serving.
func TestOversizedQueryKeepsConnection(t *testing.T) {
	reg := obs.NewRegistry()
	s := srv.New(&stubBackend{}, srv.Config{MaxQueryBytes: 4096}, reg)
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() { s.ServeConn(server); close(done) }()
	defer func() { client.Close(); <-done }()

	c := newLineClient(t, client)
	// An 8 KiB statement: double the configured cap.
	go func() {
		// net.Pipe is synchronous; write concurrently with the reply read.
		fmt.Fprintln(client, strings.Repeat("x", 8192))
	}()
	out := c.readReply()
	if len(out) != 1 || !strings.Contains(out[0], "query too large") {
		t.Fatalf("oversized reply: %v", out)
	}
	if got := reg.Counter("srv.rejected.oversized").Value(); got != 1 {
		t.Fatalf("srv.rejected.oversized = %d, want 1", got)
	}
	// The connection must survive and execute the next statement.
	out = c.send("SELECT 1")
	if len(out) != 1 || out[0] != "OK done" {
		t.Fatalf("after oversized: %v", out)
	}
}

// TestQueueFullRejection fills the one-deep admission queue and asserts the
// third query is rejected with the typed error and counted.
func TestQueueFullRejection(t *testing.T) {
	reg := obs.NewRegistry()
	adm := srv.NewAdmission(srv.AdmissionConfig{MaxActive: 1, QueueDepth: 1}, reg)

	g1, err := adm.Admit(1)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		g, err := adm.Admit(2)
		if g != nil {
			adm.Release(g)
		}
		queued <- err
	}()
	waitGauge(t, reg, "srv.queue.depth", 1)

	if _, err := adm.Admit(3); !errors.Is(err, srv.ErrQueueFull) {
		t.Fatalf("third query: got %v, want ErrQueueFull", err)
	}
	if got := reg.Counter("srv.rejected.queue_full").Value(); got != 1 {
		t.Fatalf("srv.rejected.queue_full = %d, want 1", got)
	}

	adm.Release(g1)
	if err := <-queued; err != nil {
		t.Fatalf("queued query should admit after release: %v", err)
	}
}

// TestPerSessionQueueFairness: one session cannot occupy the whole queue —
// its entries cap at QueuePerSession while another session still queues.
func TestPerSessionQueueFairness(t *testing.T) {
	reg := obs.NewRegistry()
	adm := srv.NewAdmission(srv.AdmissionConfig{MaxActive: 1, QueueDepth: 8, QueuePerSession: 1}, reg)
	g1, err := adm.Admit(1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, sess := range []uint64{2, 3} {
		wg.Add(1)
		go func(sess uint64) {
			defer wg.Done()
			g, err := adm.Admit(sess)
			if g != nil {
				adm.Release(g)
			}
			errs <- err
		}(sess)
	}
	waitGauge(t, reg, "srv.queue.depth", 2)
	// Session 2 already holds its fair share: a second entry is rejected
	// even though the queue has room.
	if _, err := adm.Admit(2); !errors.Is(err, srv.ErrQueueFull) {
		t.Fatalf("over-share queue: got %v, want ErrQueueFull", err)
	}
	adm.Release(g1)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("fair-share waiter failed: %v", err)
		}
	}
}

// TestKillQueuedQuery kills a query that was queued but never admitted: its
// Admit call returns the typed kill error, the slot math stays intact, and
// the kill is counted.
func TestKillQueuedQuery(t *testing.T) {
	reg := obs.NewRegistry()
	adm := srv.NewAdmission(srv.AdmissionConfig{MaxActive: 1, QueueDepth: 4}, reg)

	g1, err := adm.Admit(1) // qid 1, running
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := adm.Admit(2) // qid 2, queued behind g1
		queued <- err
	}()
	waitGauge(t, reg, "srv.queue.depth", 1)

	if err := adm.Kill(2); err != nil {
		t.Fatalf("kill queued: %v", err)
	}
	select {
	case err := <-queued:
		if !errors.Is(err, srv.ErrKilled) {
			t.Fatalf("queued admit: got %v, want ErrKilled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("killed queued query never unblocked")
	}
	if got := reg.Counter("srv.killed.queued").Value(); got != 1 {
		t.Fatalf("srv.killed.queued = %d, want 1", got)
	}
	if err := adm.Kill(99); !errors.Is(err, srv.ErrNoSuchQuery) {
		t.Fatalf("kill unknown: got %v, want ErrNoSuchQuery", err)
	}
	// The killed entry must not leak its queue slot: releasing the runner
	// leaves the scheduler idle.
	adm.Release(g1)
	if !adm.Quiesce(2 * time.Second) {
		t.Fatal("scheduler did not quiesce after kill + release")
	}
}

// TestGracefulDrainWithInFlight drains a server with one query running and
// one queued: the queued one fails with ErrDraining (and is counted), the
// running one finishes cleanly, and Shutdown returns a clean drain.
func TestGracefulDrainWithInFlight(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	reg := obs.NewRegistry()
	be := &stubBackend{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := srv.New(be, srv.Config{
		DrainTimeout: 5 * time.Second,
		Admission:    srv.AdmissionConfig{MaxActive: 1, QueueDepth: 4},
	}, reg)

	sessA, err := s.Sessions().Open()
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := s.Sessions().Open()
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() {
		_, _, err := s.RunQuery(sessA, func(opts *cluster.QueryOptions) (*cluster.Result, error) {
			return be.ExecSQLOpts("SELECT 1", opts)
		})
		runErr <- err
	}()
	<-be.started // the query is admitted and executing

	queuedErr := make(chan error, 1)
	go func() {
		_, _, err := s.RunQuery(sessB, func(opts *cluster.QueryOptions) (*cluster.Result, error) {
			return be.ExecSQLOpts("SELECT 2", opts)
		})
		queuedErr <- err
	}()
	waitGauge(t, reg, "srv.queue.depth", 1)

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown() }()

	select {
	case err := <-queuedErr:
		if !errors.Is(err, srv.ErrDraining) {
			t.Fatalf("queued during drain: got %v, want ErrDraining", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued query not failed by drain")
	}
	if reg.Counter("srv.rejected.draining").Value() == 0 {
		t.Fatal("srv.rejected.draining not counted")
	}

	// The in-flight query finishes; the drain is clean.
	close(be.release)
	if err := <-runErr; err != nil {
		t.Fatalf("in-flight query during drain: %v", err)
	}
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown never returned")
	}
	// New queries after drain reject immediately.
	if _, _, err := s.RunQuery(sessA, func(opts *cluster.QueryOptions) (*cluster.Result, error) {
		return be.ExecSQLOpts("SELECT 3", opts)
	}); !errors.Is(err, srv.ErrDraining) {
		t.Fatalf("post-drain query: got %v, want ErrDraining", err)
	}
}

// TestSessionConcurrencyIsolation runs two wire sessions concurrently
// against a real cluster — one doing DML, one reading — and asserts
// result sanity, prepared-statement isolation, and no goroutine leaks.
func TestSessionConcurrencyIsolation(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	db, err := core.Open(core.Config{Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec("CREATE TABLE st (a INT, tag VARCHAR(4)) PARTITION BY HASH(a)"); err != nil {
		t.Fatal(err)
	}

	s := srv.New(db.Cluster(), srv.Config{Admission: srv.AdmissionConfig{MaxActive: 4}}, db.Registry())
	dial := func() (*lineClient, func()) {
		server, client := net.Pipe()
		done := make(chan struct{})
		go func() { s.ServeConn(server); close(done) }()
		return newLineClient(t, client), func() { client.Close(); <-done }
	}
	ca, closeA := dial()
	defer closeA()
	cb, closeB := dial()
	defer closeB()

	// Prepared statements are per-session: the same name binds different
	// SQL in each session.
	if out := ca.send("PREPARE q AS SELECT count(*) FROM st WHERE tag = 'a'"); !strings.HasPrefix(out[0], "OK") {
		t.Fatalf("prepare A: %v", out)
	}
	if out := cb.send("PREPARE q AS SELECT count(*) FROM st WHERE tag = 'b'"); !strings.HasPrefix(out[0], "OK") {
		t.Fatalf("prepare B: %v", out)
	}

	const rounds = 8
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	wg.Add(2)
	go func() { // session A: DML + its prepared count
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			out := ca.send(fmt.Sprintf("INSERT INTO st VALUES (%d,'a'), (%d,'a')", 2*i, 2*i+1))
			if !strings.Contains(out[len(out)-1], "2 rows inserted") {
				errCh <- fmt.Errorf("insert round %d: %v", i, out)
				return
			}
			if out := ca.send("EXECUTE q"); !strings.HasPrefix(out[len(out)-1], "OK 1 rows") {
				errCh <- fmt.Errorf("execute A round %d: %v", i, out)
				return
			}
		}
	}()
	go func() { // session B: concurrent reads, always consistent
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			out := cb.send("SELECT count(*) FROM st")
			if len(out) != 2 || !strings.HasPrefix(out[1], "OK") {
				errCh <- fmt.Errorf("select round %d: %v", i, out)
				return
			}
			var n int
			if _, err := fmt.Sscanf(out[0], "%d", &n); err != nil || n < 0 || n > 2*rounds {
				// A concurrent reader may observe a partially applied
				// multi-row INSERT (scans are read-uncommitted), but never
				// rows that were never written.
				errCh <- fmt.Errorf("select round %d: inconsistent count %q", i, out[0])
				return
			}
			if out := cb.send("EXECUTE q"); out[0] != "0" {
				// Session B's prepared q counts tag 'b' rows: always zero.
				errCh <- fmt.Errorf("execute B round %d: %v", i, out)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	out := ca.send("SELECT count(*) FROM st")
	if out[0] != fmt.Sprintf("%d", 2*rounds) {
		t.Fatalf("final count: %v", out)
	}
	// Per-session accounting is visible and attributed.
	if out := ca.send("SHOW SESSIONS"); len(out) != 3 {
		t.Fatalf("show sessions: %v", out)
	}
}

// TestKillInFlightQuery kills a long-running real query mid-execution and
// asserts it unwinds promptly (one batch boundary, not end-of-query) with
// the typed kill error.
func TestKillInFlightQuery(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	db, err := core.Open(core.Config{Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec("CREATE TABLE big (k INT, v INT) PARTITION BY HASH(v)"); err != nil {
		t.Fatal(err)
	}
	// One hot key: the self-join explodes to rows^2 intermediate rows, so
	// the query runs long enough to be killed mid-stream.
	rows := make([]types.Row, 4000)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(1), types.NewInt(int64(i))}
	}
	if _, err := db.Load("big", rows); err != nil {
		t.Fatal(err)
	}

	reg := db.Registry()
	s := srv.New(db.Cluster(), srv.Config{Admission: srv.AdmissionConfig{MaxActive: 2}}, reg)
	sess, err := s.Sessions().Open()
	if err != nil {
		t.Fatal(err)
	}
	if out := sess.Set("batchrows", 256); out != nil {
		t.Fatal(out)
	}

	runErr := make(chan error, 1)
	go func() {
		_, _, err := s.RunQuery(sess, func(opts *cluster.QueryOptions) (*cluster.Result, error) {
			return db.Cluster().ExecSQLOpts(
				"SELECT count(*) FROM big x, big y WHERE x.k = y.k", opts)
		})
		runErr <- err
	}()

	// Wait for the query to be admitted and running, then kill it.
	var qid uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ids := s.Admission().Running(); len(ids) > 0 {
			qid = ids[0]
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("query finished before kill: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("query never started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let execution enter the dataflow
	killedAt := time.Now()
	if err := s.Admission().Kill(qid); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-runErr:
		if !errors.Is(err, srv.ErrKilled) {
			t.Fatalf("killed query returned %v, want ErrKilled", err)
		}
		if d := time.Since(killedAt); d > 3*time.Second {
			t.Fatalf("kill took %v; want within one batch boundary", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("killed query never returned")
	}
	if got := reg.Counter("srv.killed.running").Value(); got != 1 {
		t.Fatalf("srv.killed.running = %d, want 1", got)
	}
}

// waitGauge polls a registered gauge func until it reaches want.
func waitGauge(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, m := range reg.Snapshot() {
			if m.Name == name && m.Value == float64(want) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauge %s never reached %d", name, want)
		}
		time.Sleep(time.Millisecond)
	}
}
