package srv

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
)

// ErrQueryTooLarge rejects a statement line longer than MaxQueryBytes. The
// oversized line is consumed and discarded, so the connection keeps
// working.
var ErrQueryTooLarge = errors.New("srv: query too large")

// writeErrLine best-effort writes one protocol error line.
func writeErrLine(w io.Writer, err error) error {
	_, werr := fmt.Fprintf(w, "ERR %v\n", err)
	return werr
}

// readLine reads one '\n'-terminated line of at most max bytes. A longer
// line is consumed to its end and reported as too long rather than a
// connection-fatal error.
func readLine(r *bufio.Reader, max int) (line string, tooLong bool, err error) {
	var buf []byte
	for {
		chunk, err := r.ReadSlice('\n')
		buf = append(buf, chunk...)
		switch {
		case err == nil:
			if len(buf) > max {
				return "", true, nil
			}
			return strings.TrimRight(string(buf), "\r\n"), false, nil
		case errors.Is(err, bufio.ErrBufferFull):
			if len(buf) > max {
				// Over budget already: discard the rest of the line, then
				// report oversized with the connection intact.
				for {
					_, derr := r.ReadSlice('\n')
					if derr == nil {
						return "", true, nil
					}
					if !errors.Is(derr, bufio.ErrBufferFull) {
						return "", false, derr
					}
				}
			}
		default:
			if len(buf) > 0 && errors.Is(err, io.EOF) {
				// Final unterminated line.
				if len(buf) > max {
					return "", true, io.EOF
				}
				return strings.TrimRight(string(buf), "\r\n"), false, nil
			}
			return "", false, err
		}
	}
}

// ServeConn runs the line protocol on one connection: one statement per
// line in, result rows then an "OK ..." or "ERR ..." line out. It owns the
// connection's session and closes both when the client goes away, the idle
// timeout fires, or the server drains.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	sess, err := s.sessions.Open()
	if err != nil {
		_ = writeErrLine(conn, err)
		return
	}
	defer s.sessions.Close(sess)

	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriter(conn)
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		line, tooLong, err := readLine(r, s.cfg.MaxQueryBytes)
		if err != nil {
			return // EOF, idle timeout, or closed during drain
		}
		if tooLong {
			if s.reg != nil {
				s.reg.Counter("srv.rejected.oversized").Inc()
			}
			_ = writeErrLine(w, fmt.Errorf("%w (max %d bytes)", ErrQueryTooLarge, s.cfg.MaxQueryBytes))
			_ = w.Flush()
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
		if stmt == "" {
			continue
		}
		s.dispatch(sess, w, stmt)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one protocol statement and writes its response.
func (s *Server) dispatch(sess *Session, w *bufio.Writer, stmt string) {
	upper := strings.ToUpper(stmt)
	switch {
	case strings.HasPrefix(upper, "KILL "):
		s.cmdKill(w, stmt)
	case strings.HasPrefix(upper, "PREPARE "):
		s.cmdPrepare(sess, w, stmt)
	case strings.HasPrefix(upper, "EXECUTE "):
		name := strings.TrimSpace(stmt[len("EXECUTE "):])
		p, ok := sess.Lookup(name)
		if !ok {
			_ = writeErrLine(w, fmt.Errorf("srv: no prepared statement %q", name))
			return
		}
		s.runAndReply(sess, w, func(opts *cluster.QueryOptions) (*cluster.Result, error) {
			return s.be.ExecPrepared(p, opts)
		})
	case strings.HasPrefix(upper, "SET "):
		s.cmdSet(sess, w, stmt)
	case upper == "SHOW SESSIONS":
		s.cmdShowSessions(w)
	case upper == "SHOW QUERIES":
		s.cmdShowQueries(w)
	default:
		s.runAndReply(sess, w, func(opts *cluster.QueryOptions) (*cluster.Result, error) {
			return s.be.ExecSQLOpts(stmt, opts)
		})
	}
}

// runAndReply is the admission-controlled query path shared by plain SQL
// and EXECUTE: mark the session active, wait for a slot, run with the
// grant's kill switch and the session's settings threaded through, release
// the slot, account, reply.
func (s *Server) runAndReply(sess *Session, w *bufio.Writer, run func(*cluster.QueryOptions) (*cluster.Result, error)) {
	res, wait, err := s.RunQuery(sess, run)
	if err != nil {
		if s.reg != nil {
			s.reg.Counter("srv.queries.failed").Inc()
		}
		_ = writeErrLine(w, err)
		return
	}
	for _, r := range res.Rows {
		fmt.Fprintln(w, r.String())
	}
	if res.Message != "" {
		fmt.Fprintf(w, "OK %s\n", res.Message)
	} else {
		fmt.Fprintf(w, "OK %d rows\n", len(res.Rows))
	}
	_ = wait
}

// RunQuery executes one statement for a session through admission control.
// It is the programmatic equivalent of sending SQL on the wire (the bench
// harness and tests drive it directly).
func (s *Server) RunQuery(sess *Session, run func(*cluster.QueryOptions) (*cluster.Result, error)) (*cluster.Result, time.Duration, error) {
	if sess.State() == SessionDraining {
		if s.reg != nil {
			s.reg.Counter("srv.rejected.draining").Inc()
		}
		return nil, 0, ErrDraining
	}
	sess.setState(SessionActive)
	defer sess.setState(SessionIdle)
	g, err := s.adm.Admit(sess.ID)
	if err != nil {
		return nil, 0, err
	}
	defer s.adm.Release(g)
	opts := sess.Options()
	opts.Cancel = g.Cancel
	opts.QueueWait = g.QueueWait
	res, err := run(&opts)
	if err != nil {
		// A fired kill switch wins over whatever error it surfaced as.
		if kerr := g.Cancel.Err(); kerr != nil {
			err = kerr
		}
		return nil, g.QueueWait, err
	}
	sess.account(len(res.Rows), g.QueueWait)
	if s.reg != nil {
		s.reg.Counter("srv.queries").Inc()
	}
	return res, g.QueueWait, nil
}

func (s *Server) cmdKill(w *bufio.Writer, stmt string) {
	qid, err := strconv.ParseUint(strings.TrimSpace(stmt[len("KILL "):]), 10, 64)
	if err != nil {
		_ = writeErrLine(w, fmt.Errorf("srv: KILL wants a query id: %v", err))
		return
	}
	if err := s.adm.Kill(qid); err != nil {
		_ = writeErrLine(w, err)
		return
	}
	fmt.Fprintf(w, "OK killed %d\n", qid)
}

func (s *Server) cmdPrepare(sess *Session, w *bufio.Writer, stmt string) {
	rest := stmt[len("PREPARE "):]
	idx := strings.Index(strings.ToUpper(rest), " AS ")
	if idx < 0 {
		_ = writeErrLine(w, fmt.Errorf("srv: PREPARE wants: PREPARE <name> AS <sql>"))
		return
	}
	name := strings.TrimSpace(rest[:idx])
	sql := strings.TrimSpace(rest[idx+len(" AS "):])
	if name == "" || sql == "" {
		_ = writeErrLine(w, fmt.Errorf("srv: PREPARE wants: PREPARE <name> AS <sql>"))
		return
	}
	p, err := s.be.Prepare(sql)
	if err != nil {
		_ = writeErrLine(w, err)
		return
	}
	sess.Prepare(name, p)
	fmt.Fprintf(w, "OK prepared %s\n", name)
}

func (s *Server) cmdSet(sess *Session, w *bufio.Writer, stmt string) {
	rest := strings.TrimSpace(stmt[len("SET "):])
	rest = strings.ReplaceAll(rest, "=", " ")
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		_ = writeErrLine(w, fmt.Errorf("srv: SET wants: SET <batchrows|parallel> <value>"))
		return
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil {
		_ = writeErrLine(w, fmt.Errorf("srv: SET %s: %v", fields[0], err))
		return
	}
	if err := sess.Set(strings.ToLower(fields[0]), v); err != nil {
		_ = writeErrLine(w, err)
		return
	}
	fmt.Fprintf(w, "OK set %s %d\n", strings.ToLower(fields[0]), v)
}

func (s *Server) cmdShowSessions(w *bufio.Writer) {
	list := s.sessions.List()
	for _, sess := range list {
		q, rows, wait := sess.Stats()
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%.3fms\n",
			sess.ID, sess.State(), q, rows, float64(wait.Nanoseconds())/1e6)
	}
	fmt.Fprintf(w, "OK %d sessions\n", len(list))
}

func (s *Server) cmdShowQueries(w *bufio.Writer) {
	ids := s.adm.Running()
	for _, id := range ids {
		fmt.Fprintf(w, "%d\n", id)
	}
	fmt.Fprintf(w, "OK %d queries\n", len(ids))
}
