// Package srv is HRDBMS's multi-query serving layer: it sits between the
// network front door (cmd/hrdbms-server) and the embedded cluster
// (internal/core), and owns everything about running MANY queries at once
// that the per-query execution engine deliberately does not — sessions,
// admission control, a bounded scheduler queue, kill, and graceful drain.
//
// The paper's system serves concurrent OLAP clients through coordinators
// that admit, schedule, and monitor queries; this package reproduces that
// control plane over the in-process cluster. Queries compete for two
// metered resources: the workers' shared parallelism budget (already
// enforced by exec.Ctx.AcquireWorkers) and a global memory budget modeled
// here as a per-query working-set charge against a fixed pool.
package srv

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Typed admission outcomes. The wire layer maps these onto ERR lines; tests
// assert on them with errors.Is.
var (
	// ErrQueueFull rejects a query when the bounded admission queue (or the
	// submitting session's fair share of it) is full.
	ErrQueueFull = errors.New("srv: admission queue full")
	// ErrDraining rejects new queries while the server is shutting down.
	ErrDraining = errors.New("srv: server draining")
	// ErrKilled is the cause recorded when KILL fires a query's cancel
	// switch or evicts it from the admission queue.
	ErrKilled = errors.New("srv: query killed")
	// ErrNoSuchQuery is returned by Kill for an unknown query id.
	ErrNoSuchQuery = errors.New("srv: no such query")
)

// AdmissionConfig sizes the scheduler. Zero values select defaults.
type AdmissionConfig struct {
	// MaxActive is the number of queries running concurrently (default 4).
	MaxActive int
	// MemBudget is the global memory pool in bytes (default 1 GiB).
	MemBudget int64
	// MemPerQuery is the working-set charge per admitted query (default
	// MemBudget/MaxActive, so memory never rejects what slots admit unless
	// configured tighter).
	MemPerQuery int64
	// QueueDepth bounds the admission FIFO (default 64).
	QueueDepth int
	// QueuePerSession caps one session's queued entries — the fairness
	// floor that stops one hot session from occupying the whole queue
	// (default max(1, QueueDepth/4)).
	QueuePerSession int
	// SlowAdmit is the queue-wait threshold above which an admission counts
	// as slow in metrics (default 100ms).
	SlowAdmit time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxActive <= 0 {
		c.MaxActive = 4
	}
	if c.MemBudget <= 0 {
		c.MemBudget = 1 << 30
	}
	if c.MemPerQuery <= 0 {
		c.MemPerQuery = c.MemBudget / int64(c.MaxActive)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueuePerSession <= 0 {
		c.QueuePerSession = c.QueueDepth / 4
		if c.QueuePerSession < 1 {
			c.QueuePerSession = 1
		}
	}
	if c.SlowAdmit <= 0 {
		c.SlowAdmit = 100 * time.Millisecond
	}
	return c
}

// Grant is one admitted query's claim on the scheduler: its query id (the
// KILL handle), its kill switch (threaded into execution via
// cluster.QueryOptions.Cancel), and how long admission queued it.
type Grant struct {
	QID       uint64
	Cancel    *exec.Cancel
	QueueWait time.Duration

	session uint64
	mem     int64
}

// waiter is one queued admission request. admit signals at most once
// (buffered, single-shot) with either a grant or a terminal error.
type waiter struct {
	grant   *Grant
	err     error
	ready   chan struct{}
	done    bool // signalled (admitted, killed, or drained)
	session uint64
}

// Admission is the concurrency-safe query scheduler: queries are admitted
// immediately when a slot and memory are free, queued FIFO (with a
// per-session cap) when not, and rejected when the queue is full or the
// server is draining.
type Admission struct {
	cfg AdmissionConfig
	reg *obs.Registry

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when active drops to zero
	active   int
	memUsed  int64
	queue    []*waiter
	queued   map[uint64]int    // session → queued entries
	running  map[uint64]*Grant // qid → running grant (kill targets)
	waiting  map[uint64]*waiter
	qidSeq   uint64
	draining bool
}

// NewAdmission builds a scheduler publishing metrics into reg (which may be
// nil for tests that only care about behavior).
func NewAdmission(cfg AdmissionConfig, reg *obs.Registry) *Admission {
	a := &Admission{
		cfg:     cfg.withDefaults(),
		reg:     reg,
		queued:  map[uint64]int{},
		running: map[uint64]*Grant{},
		waiting: map[uint64]*waiter{},
	}
	a.cond = sync.NewCond(&a.mu)
	if reg != nil {
		reg.RegisterGaugeFunc("srv.active", func() int64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return int64(a.active)
		})
		reg.RegisterGaugeFunc("srv.queue.depth", func() int64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return int64(len(a.queue))
		})
		reg.RegisterGaugeFunc("srv.mem.used", func() int64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return a.memUsed
		})
	}
	return a
}

func (a *Admission) count(name string) {
	if a.reg != nil {
		a.reg.Counter(name).Inc()
	}
}

// queueWaitBounds buckets admission queue wait (seconds).
var queueWaitBounds = []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1, 5}

// Admit blocks until the query is granted a slot, the queue rejects it, or
// it is killed while queued. The returned grant must be Released exactly
// once when the query finishes (success or failure).
func (a *Admission) Admit(session uint64) (*Grant, error) {
	start := time.Now()
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		a.count("srv.rejected.draining")
		return nil, ErrDraining
	}
	if a.active < a.cfg.MaxActive && a.memUsed+a.cfg.MemPerQuery <= a.cfg.MemBudget && len(a.queue) == 0 {
		g := a.grantLocked(session)
		a.mu.Unlock()
		a.observeWait(0)
		return g, nil
	}
	if len(a.queue) >= a.cfg.QueueDepth {
		a.mu.Unlock()
		a.count("srv.rejected.queue_full")
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, a.cfg.QueueDepth)
	}
	if a.queued[session] >= a.cfg.QueuePerSession {
		a.mu.Unlock()
		a.count("srv.rejected.queue_full")
		return nil, fmt.Errorf("%w (session %d holds %d queued)", ErrQueueFull, session, a.cfg.QueuePerSession)
	}
	// Queue it. The waiter is registered under a fresh qid immediately so
	// KILL can target a query that has never been admitted.
	a.qidSeq++
	qid := a.qidSeq
	w := &waiter{ready: make(chan struct{}, 1), session: session}
	a.queue = append(a.queue, w)
	a.queued[session]++
	a.waiting[qid] = w
	a.count("srv.queued")
	a.mu.Unlock()

	<-w.ready
	a.mu.Lock()
	g, err := w.grant, w.err
	delete(a.waiting, qid)
	a.mu.Unlock()
	if err != nil {
		return nil, err
	}
	g.QueueWait = time.Since(start)
	a.observeWait(g.QueueWait)
	return g, nil
}

// grantLocked claims a slot and registers the running grant. Caller holds mu.
func (a *Admission) grantLocked(session uint64) *Grant {
	a.qidSeq++
	g := &Grant{
		QID:     a.qidSeq,
		Cancel:  exec.NewCancel(),
		session: session,
		mem:     a.cfg.MemPerQuery,
	}
	a.active++
	a.memUsed += g.mem
	a.running[g.QID] = g
	a.count("srv.admitted")
	return g
}

func (a *Admission) observeWait(d time.Duration) {
	if a.reg == nil {
		return
	}
	a.reg.Histogram("srv.queue.wait.seconds", queueWaitBounds).Observe(d.Seconds())
	if d > a.cfg.SlowAdmit {
		a.count("srv.admission.slow")
	}
}

// Release returns a grant's slot and memory and admits the next queued
// query, if any. Safe to call once per grant; extra calls are no-ops.
func (a *Admission) Release(g *Grant) {
	if g == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.running[g.QID]; !ok {
		return
	}
	delete(a.running, g.QID)
	a.active--
	a.memUsed -= g.mem
	a.promoteLocked()
	if a.active == 0 {
		a.cond.Broadcast()
	}
}

// promoteLocked hands freed capacity to queued waiters, FIFO. Caller holds
// mu. Waiter signals are single-shot sends into buffered channels, so they
// never block under the lock.
func (a *Admission) promoteLocked() {
	for len(a.queue) > 0 && a.active < a.cfg.MaxActive && a.memUsed+a.cfg.MemPerQuery <= a.cfg.MemBudget {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.queued[w.session]--
		if a.queued[w.session] == 0 {
			delete(a.queued, w.session)
		}
		if w.done {
			continue // killed while queued; slot stays free for the next
		}
		// Reuse the qid KILL already knows: find it in waiting. The map is
		// small (bounded by QueueDepth) and scanned only on promotion.
		var qid uint64
		for id, cand := range a.waiting {
			if cand == w {
				qid = id
				break
			}
		}
		g := &Grant{
			QID:     qid,
			Cancel:  exec.NewCancel(),
			session: w.session,
			mem:     a.cfg.MemPerQuery,
		}
		a.active++
		a.memUsed += g.mem
		a.running[g.QID] = g
		a.count("srv.admitted")
		w.grant = g
		w.done = true
		w.ready <- struct{}{}
	}
}

// Kill terminates a query by id: a running query's cancel switch fires (it
// unwinds at the next batch boundary and its Release frees the slot); a
// queued query is evicted and its Admit call returns ErrKilled without ever
// running.
func (a *Admission) Kill(qid uint64) error {
	a.mu.Lock()
	if g, ok := a.running[qid]; ok {
		a.mu.Unlock()
		g.Cancel.Kill(fmt.Errorf("%w (qid %d)", ErrKilled, qid))
		a.count("srv.killed.running")
		return nil
	}
	if w, ok := a.waiting[qid]; ok && !w.done {
		w.err = fmt.Errorf("%w (qid %d, queued)", ErrKilled, qid)
		w.done = true
		w.ready <- struct{}{}
		a.mu.Unlock()
		a.count("srv.killed.queued")
		return nil
	}
	a.mu.Unlock()
	return fmt.Errorf("%w (qid %d)", ErrNoSuchQuery, qid)
}

// Running snapshots the running query ids (SHOW QUERIES).
func (a *Admission) Running() []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]uint64, 0, len(a.running))
	for id := range a.running {
		ids = append(ids, id)
	}
	return ids
}

// Drain stops admission: every queued waiter fails with ErrDraining and
// subsequent Admit calls reject immediately. Running queries are left to
// finish; use Quiesce to wait for them (and Kill to hurry them).
func (a *Admission) Drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return
	}
	a.draining = true
	for _, w := range a.queue {
		if w.done {
			continue
		}
		w.err = ErrDraining
		w.done = true
		w.ready <- struct{}{}
		a.count("srv.rejected.draining")
	}
	a.queue = nil
	a.queued = map[uint64]int{}
}

// Quiesce blocks until no queries are running or the timeout passes,
// reporting whether the scheduler went quiet.
func (a *Admission) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	// Wake the cond waiter periodically so the timeout is honored even if
	// no Release ever broadcasts.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				a.cond.Broadcast()
			}
		}
	}()
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.active > 0 {
		if time.Now().After(deadline) {
			return false
		}
		a.cond.Wait()
	}
	return true
}

// KillAll fires every running query's cancel switch (forced drain).
func (a *Admission) KillAll(cause error) {
	a.mu.Lock()
	grants := make([]*Grant, 0, len(a.running))
	for _, g := range a.running {
		grants = append(grants, g)
	}
	a.mu.Unlock()
	for _, g := range grants {
		g.Cancel.Kill(cause)
	}
}
