package srv

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// ErrConnLimit rejects a new connection when the server is at MaxConns.
var ErrConnLimit = errors.New("srv: connection limit reached")

// SessionState is a session's lifecycle position.
type SessionState int32

const (
	// SessionIdle: connected, no query in flight.
	SessionIdle SessionState = iota
	// SessionActive: a query is queued or running on this session.
	SessionActive
	// SessionDraining: the server is shutting down; the session finishes
	// its in-flight work but accepts no new queries.
	SessionDraining
)

func (s SessionState) String() string {
	switch s {
	case SessionIdle:
		return "idle"
	case SessionActive:
		return "active"
	case SessionDraining:
		return "draining"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Session is one client's server-side state: identity, lifecycle, prepared
// statements (parse-once/execute-many through cluster.Prepare), per-session
// settings, and accounting.
type Session struct {
	ID uint64

	mu         sync.Mutex
	state      SessionState
	prepared   map[string]*cluster.Prepared
	batchRows  int           // SET batchrows — 0 keeps the cluster default
	maxPar     int           // SET parallel — 0 keeps the profile's degrees
	queries    int64         // statements executed
	rowsOut    int64         // result rows returned
	queueWait  time.Duration // cumulative admission wait
	lastActive time.Time
}

// State reports the session's current lifecycle state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// setState transitions idle<->active; draining is sticky.
func (s *Session) setState(st SessionState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == SessionDraining && st != SessionDraining {
		return
	}
	s.state = st
	s.lastActive = time.Now()
}

// Options snapshots the session's per-query controls for one execution.
func (s *Session) Options() cluster.QueryOptions {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cluster.QueryOptions{BatchRows: s.batchRows, MaxParallel: s.maxPar}
}

// Set applies a per-session setting (the wire layer's SET command).
func (s *Session) Set(name string, value int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch name {
	case "batchrows":
		if value < 0 {
			return fmt.Errorf("srv: batchrows must be >= 0")
		}
		s.batchRows = value
	case "parallel":
		if value < 0 {
			return fmt.Errorf("srv: parallel must be >= 0")
		}
		s.maxPar = value
	default:
		return fmt.Errorf("srv: unknown setting %q (have batchrows, parallel)", name)
	}
	return nil
}

// Prepare stores a parsed statement under name, replacing any previous one.
func (s *Session) Prepare(name string, p *cluster.Prepared) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prepared == nil {
		s.prepared = map[string]*cluster.Prepared{}
	}
	s.prepared[name] = p
}

// Lookup fetches a prepared statement by name.
func (s *Session) Lookup(name string) (*cluster.Prepared, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.prepared[name]
	return p, ok
}

// account records one finished statement.
func (s *Session) account(rows int, wait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	s.rowsOut += int64(rows)
	s.queueWait += wait
	s.lastActive = time.Now()
}

// Stats reports the session's accounting (SHOW SESSIONS).
func (s *Session) Stats() (queries, rows int64, wait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries, s.rowsOut, s.queueWait
}

// Sessions is the session manager: it mints IDs, enforces the connection
// cap, and tracks live sessions for SHOW SESSIONS and drain.
type Sessions struct {
	max int
	reg *obs.Registry

	mu  sync.Mutex
	m   map[uint64]*Session
	seq uint64
}

// NewSessions builds a manager capped at max concurrent sessions
// (0 = 256). reg may be nil.
func NewSessions(max int, reg *obs.Registry) *Sessions {
	if max <= 0 {
		max = 256
	}
	s := &Sessions{max: max, reg: reg, m: map[uint64]*Session{}}
	if reg != nil {
		reg.RegisterGaugeFunc("srv.sessions", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.m))
		})
	}
	return s
}

// Open admits a new session or rejects with ErrConnLimit.
func (s *Sessions) Open() (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.m) >= s.max {
		if s.reg != nil {
			s.reg.Counter("srv.rejected.conn_limit").Inc()
		}
		return nil, fmt.Errorf("%w (max %d)", ErrConnLimit, s.max)
	}
	s.seq++
	sess := &Session{ID: s.seq, lastActive: time.Now()}
	s.m[sess.ID] = sess
	if s.reg != nil {
		s.reg.Counter("srv.sessions.opened").Inc()
	}
	return sess, nil
}

// Close removes a session.
func (s *Sessions) Close(sess *Session) {
	if sess == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, sess.ID)
}

// List snapshots live sessions ordered by id.
func (s *Sessions) List() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.m))
	for _, sess := range s.m {
		out = append(out, sess)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DrainAll marks every live session draining.
func (s *Sessions) DrainAll() {
	for _, sess := range s.List() {
		sess.setState(SessionDraining)
	}
}
