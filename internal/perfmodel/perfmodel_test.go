package perfmodel

import (
	"testing"

	"repro/internal/cluster"
)

func baseMetrics() cluster.RunMetrics {
	return cluster.RunMetrics{
		WorkRows:    1_000_000,
		PagesRead:   1000,
		PageBytes:   1000 * 16 * 1024,
		NetBytes:    50 << 20,
		NetMessages: 10_000,
		Connections: 56,
		MaxDegree:   7,
		Exchanges:   3,
		ResultRows:  100,
	}
}

func TestMoreNodesFaster(t *testing.T) {
	prof := Systems(0)["hrdbms"]
	mo := Model{Prof: prof}
	m := baseMetrics()
	t8 := mo.Estimate(m, Scale{DataFactor: 1000, Nodes: 8, MeasuredWorkers: 8})
	t64 := mo.Estimate(m, Scale{DataFactor: 1000, Nodes: 64, MeasuredWorkers: 64})
	if t64.Seconds >= t8.Seconds {
		t.Errorf("64 nodes (%f) should beat 8 nodes (%f)", t64.Seconds, t8.Seconds)
	}
}

func TestSystemOrderingAtSmallCluster(t *testing.T) {
	m := baseMetrics()
	sc := Scale{DataFactor: 1000, Nodes: 8, MeasuredWorkers: 8}
	systems := Systems(0)
	est := func(name string, mm cluster.RunMetrics) float64 {
		mo := Model{Prof: systems[name]}
		return mo.Estimate(mm, sc).Seconds
	}
	// Hive's runs carry materialization + stage startup; model that in its
	// measured metrics too.
	hiveM := m
	hiveM.SpillBytes = m.NetBytes * 2
	hiveM.Exchanges = 6
	hr := est("hrdbms", m)
	gp := est("greenplum", m)
	spark := est("sparksql", hiveM)
	hive := est("hive", hiveM)
	if !(hive > spark && spark > hr) {
		t.Errorf("ordering hive(%f) > spark(%f) > hrdbms(%f) violated", hive, spark, hr)
	}
	// Greenplum is competitive at small clusters (its per-node engine is a
	// bit faster; connection costs are still small).
	if gp > hr*2 {
		t.Errorf("greenplum (%f) should be within 2x of hrdbms (%f) at 8 nodes", gp, hr)
	}
}

func TestConnectionCostGrowsWithDegree(t *testing.T) {
	gp := Model{Prof: Systems(0)["greenplum"]}
	m := baseMetrics()
	small := m
	small.MaxDegree = 7
	big := m
	big.MaxDegree = 95
	sc := Scale{DataFactor: 1000, Nodes: 96, MeasuredWorkers: 96}
	a := gp.Estimate(small, sc)
	b := gp.Estimate(big, sc)
	if b.ConnSec <= a.ConnSec {
		t.Errorf("degree 95 conn cost (%f) should exceed degree 7 (%f)", b.ConnSec, a.ConnSec)
	}
}

func TestOOMBehaviour(t *testing.T) {
	m := baseMetrics()
	// Operator state whose scaled, discounted per-node share exceeds 24 GB:
	// 512 MB × 3000 / 8 × StateFactor = 48 GB.
	m.StateBytes = 512 << 20
	sc := Scale{DataFactor: 3000, Nodes: 8, MeasuredWorkers: 8}
	gp := Model{Prof: Systems(0)["greenplum"]}
	hr := Model{Prof: Systems(0)["hrdbms"]}
	if est := gp.Estimate(m, sc); !est.OOM {
		t.Error("greenplum should OOM at 3TB/8 nodes working set")
	}
	est := hr.Estimate(m, sc)
	if est.OOM {
		t.Error("hrdbms must not OOM — it spills")
	}
	// And spilling must cost time.
	smaller := hr.Estimate(m, Scale{DataFactor: 100, Nodes: 8, MeasuredWorkers: 8})
	if est.Seconds/30 <= smaller.Seconds/1 {
		// 30x the data should cost more than 30x the small runtime when
		// spilling kicks in (superlinear).
		t.Logf("spill penalty: %f vs %f (informational)", est.Seconds, smaller.Seconds)
	}
}

func TestGCPressurePenalty(t *testing.T) {
	spark := Model{Prof: Systems(0)["sparksql"]}
	m := baseMetrics()
	// Same data, more nodes → per-node pressure drops → less GC penalty,
	// superlinear speedup (the paper's Spark-at-8-nodes artifact).
	m.StateBytes = 256 << 20 // per-node pressure high at 8 nodes
	t8 := spark.Estimate(m, Scale{DataFactor: 2000, Nodes: 8, MeasuredWorkers: 8})
	t16 := spark.Estimate(m, Scale{DataFactor: 2000, Nodes: 16, MeasuredWorkers: 16})
	if t8.OOM || t16.OOM {
		t.Skip("OOM at this size; pressure test not applicable")
	}
	if t8.Seconds/t16.Seconds <= 2.0 {
		t.Errorf("Spark speedup 8→16 = %.2f; GC pressure should make it superlinear (>2)",
			t8.Seconds/t16.Seconds)
	}
}

func TestClusterProfileToggles(t *testing.T) {
	hr := ClusterProfile("hrdbms")
	if !hr.HierarchicalShuffle || !hr.UseSkipCache || !hr.EnforceLocality {
		t.Error("hrdbms profile should enable its novel features")
	}
	gp := ClusterProfile("greenplum")
	if gp.HierarchicalShuffle || gp.UseSkipCache {
		t.Error("greenplum profile must not use HRDBMS's novel features")
	}
	if !gp.EnforceLocality {
		t.Error("greenplum is an MPP: locality enforced")
	}
	hive := ClusterProfile("hive")
	if !hive.BlockingShuffle || !hive.MaterializeShuffle || hive.EnforceLocality {
		t.Error("hive profile: blocking materialized shuffle, no locality")
	}
	spark := ClusterProfile("sparksql")
	if spark.BlockingShuffle || !spark.MaterializeShuffle {
		t.Error("spark profile: pipelined but materialized shuffle")
	}
}

func TestAllSystemsDefined(t *testing.T) {
	systems := Systems(0)
	for _, name := range []string{"hrdbms", "greenplum", "sparksql", "hive", "hive-tez", "spark2"} {
		p, ok := systems[name]
		if !ok {
			t.Fatalf("missing system %s", name)
		}
		if p.RowsPerSec <= 0 || p.DiskBW <= 0 || p.LinkBW <= 0 {
			t.Errorf("%s has zero coefficients", name)
		}
		if p.MemBytes != 24<<30 {
			t.Errorf("%s default memory = %v", name, p.MemBytes)
		}
	}
}
