// Package perfmodel converts the real, counted quantities of an in-process
// query execution (rows processed, pages read/skipped, bytes shuffled,
// bytes materialized, connections opened, exchange boundaries) into
// simulated wall-clock seconds for a cluster of n physical nodes at an
// arbitrary scale factor.
//
// This is the substitution layer that lets one process regenerate the
// paper's 96-node figures: all behaviour that the paper attributes to
// system design — materialization volume, blocking stage count, per-node
// connection counts under the two shuffle topologies, pages avoided by
// data skipping — is executed and measured for real; only the mapping from
// quantities to seconds uses per-system coefficients, calibrated so the
// 8-node totals land near the paper's reported magnitudes.
package perfmodel

import (
	"math"

	"repro/internal/cluster"
)

// Profile holds the per-system cost coefficients.
type Profile struct {
	Name string
	// RowsPerSec is per-node operator throughput (software efficiency:
	// JVM/GC overhead for Hive/Spark, native-ish for MPP engines).
	RowsPerSec float64
	// DiskBW is per-node effective disk bandwidth (bytes/s).
	DiskBW float64
	// LinkBW is per-link network bandwidth (bytes/s).
	LinkBW float64
	// ConnCost is the per-connection setup/monitoring cost (seconds),
	// charged on the busiest node's degree — the paper's O(n) socket
	// bottleneck.
	ConnCost float64
	// StageStartup is the per-exchange-boundary latency (job/stage launch:
	// ~seconds for MapReduce, sub-second for Spark, ~0 for pipelined MPP).
	StageStartup float64
	// SpillPenalty multiplies materialized bytes (they are written AND
	// read back).
	SpillPenalty float64
	// CoordinatorRowsPerSec bounds the single coordinator's merge work.
	CoordinatorRowsPerSec float64
	// MemBytes is per-node memory; OOMFails decides whether exceeding it
	// kills the query (Greenplum, Spark) or the engine spills (HRDBMS,
	// Hive).
	MemBytes float64
	OOMFails bool
	// MemHeadroom scales the effective memory capacity: engines that
	// partially offload state (Spark's unified memory manager) tolerate
	// working sets beyond nominal memory before failing.
	MemHeadroom float64
	// GCPressure adds a superlinear penalty as the working set approaches
	// memory (Spark's JVM garbage collection at low node counts).
	GCPressure float64
}

// DegreeExponent makes per-node connection cost superlinear in the number
// of neighbors a node must talk to.
const DegreeExponent = 1.7

// ScanSpeedup is how much faster a sequential scan processes rows than
// stateful operators do.
const ScanSpeedup = 5

// StateFactor discounts raw operator-state bytes into an effective memory
// working set (engines hold needed columns, not full rows). Calibrated so
// Greenplum's OOM set at 8 nodes/24 GB matches the paper's "a couple of
// heavy queries fail" shape.
const StateFactor = 0.25

// Estimate is the simulated outcome for one query.
type Estimate struct {
	Seconds float64
	OOM     bool
	// Components, for the ablation discussion.
	CPUSec, DiskSec, NetSec, ConnSec, StartupSec float64
}

// Scale describes the extrapolation from the measured run to the modeled
// deployment.
type Scale struct {
	// DataFactor multiplies measured data-dependent quantities (target SF
	// over measured SF).
	DataFactor float64
	// Nodes is the modeled cluster size. Measured per-node quantities are
	// re-spread over this many nodes.
	Nodes int
	// MeasuredWorkers is the worker count of the metered run.
	MeasuredWorkers int
}

// Model evaluates profiles against measured metrics.
type Model struct {
	Prof Profile
}

// Estimate converts metrics into simulated seconds.
func (mo *Model) Estimate(m cluster.RunMetrics, sc Scale) Estimate {
	n := float64(sc.Nodes)
	f := sc.DataFactor
	var e Estimate

	// CPU: operator row-work plus sequential scan work (scans stream at
	// ScanSpeedup× the operator rate; pages avoided by data skipping
	// contribute nothing here).
	e.CPUSec = float64(m.WorkRows) * f / (n * mo.Prof.RowsPerSec)
	e.CPUSec += float64(m.ScanRows) * f / (n * mo.Prof.RowsPerSec * ScanSpeedup)

	// Disk: pages read plus spill traffic (write + read back).
	diskBytes := float64(m.PageBytes)*f + float64(m.SpillBytes)*f*mo.Prof.SpillPenalty
	e.DiskSec = diskBytes / (n * mo.Prof.DiskBW)

	// Network: shuffle volume over per-node links, plus connection setup
	// on the busiest node. Connection counts are topology-determined and
	// measured at the modeled worker count — rescale the busiest-node
	// degree when the metered cluster size differs.
	degree := float64(m.MaxDegree)
	if sc.MeasuredWorkers > 0 && sc.Nodes != sc.MeasuredWorkers {
		degree = degree * float64(sc.Nodes) / float64(sc.MeasuredWorkers)
		if degree < 1 && m.MaxDegree > 0 {
			degree = 1
		}
	}
	e.NetSec = float64(m.NetBytes) * f / (n * mo.Prof.LinkBW)
	// Socket setup/monitoring cost grows superlinearly with the busiest
	// node's degree (the paper's O(n)-neighbors bottleneck: resources for
	// opening and monitoring that many sockets). Bounded-degree topologies
	// keep this term flat as the cluster grows.
	e.ConnSec = math.Pow(degree, DegreeExponent) * mo.Prof.ConnCost * float64(m.Exchanges)

	// Stage startup: each exchange boundary costs a launch on blocking
	// platforms.
	e.StartupSec = float64(m.Exchanges) * mo.Prof.StageStartup

	// Coordinator bottleneck: result and control-message handling on one
	// node.
	coord := (float64(m.ResultRows)*f/10 + float64(m.NetMessages)) / mo.Prof.CoordinatorRowsPerSec
	e.CPUSec += coord

	// Memory: the per-node working set is the operator state (hash
	// tables, group tables, sort buffers) each node holds. StateFactor
	// discounts the raw counter: engines keep only the needed columns of
	// build rows and pack state tighter than our full-row accounting.
	headroom := mo.Prof.MemHeadroom
	if headroom <= 0 {
		headroom = 1
	}
	workingSet := float64(m.StateBytes) * f / n * StateFactor
	capacity := mo.Prof.MemBytes * headroom
	if mo.Prof.MemBytes > 0 && workingSet > capacity {
		if mo.Prof.OOMFails {
			e.OOM = true
		} else {
			// Spill at disk bandwidth instead.
			e.DiskSec += (workingSet - capacity) * 2 / mo.Prof.DiskBW
		}
	}
	if mo.Prof.GCPressure > 0 && mo.Prof.MemBytes > 0 {
		pressure := workingSet / mo.Prof.MemBytes
		if pressure > 0.25 {
			e.CPUSec *= 1 + mo.Prof.GCPressure*(pressure-0.25)
		}
	}
	e.Seconds = e.CPUSec + e.DiskSec + e.NetSec + e.ConnSec + e.StartupSec
	if math.IsNaN(e.Seconds) || e.Seconds < 0 {
		e.Seconds = 0
	}
	return e
}

// Systems returns the four evaluated systems' profiles plus the
// "current versions" variants (Hive-on-Tez, Spark 2.0) used by the paper's
// last experiment. Memory defaults to the paper's 24 GB per-node cap.
func Systems(memBytes float64) map[string]Profile {
	if memBytes == 0 {
		memBytes = 24 << 30
	}
	return map[string]Profile{
		"hrdbms": {
			Name: "HRDBMS", RowsPerSec: 4.0e6, DiskBW: 400e6, LinkBW: 1000e6,
			ConnCost: 0.004, StageStartup: 0, SpillPenalty: 2,
			CoordinatorRowsPerSec: 3e6, MemBytes: memBytes, OOMFails: false,
		},
		"greenplum": {
			Name: "Greenplum", RowsPerSec: 5.0e6, DiskBW: 400e6, LinkBW: 1000e6,
			ConnCost: 0.006, StageStartup: 0, SpillPenalty: 2,
			CoordinatorRowsPerSec: 1.2e6, MemBytes: memBytes, OOMFails: true,
		},
		"sparksql": {
			Name: "Spark SQL", RowsPerSec: 1.1e6, DiskBW: 350e6, LinkBW: 1000e6,
			ConnCost: 0.004, StageStartup: 0.6, SpillPenalty: 2.5,
			CoordinatorRowsPerSec: 2e6, MemBytes: memBytes, OOMFails: true,
			MemHeadroom: 2.0, GCPressure: 4,
		},
		"hive": {
			Name: "Hive", RowsPerSec: 0.35e6, DiskBW: 250e6, LinkBW: 1000e6,
			ConnCost: 0.004, StageStartup: 9, SpillPenalty: 3,
			CoordinatorRowsPerSec: 1.5e6, MemBytes: memBytes, OOMFails: false,
		},
		"hive-tez": {
			Name: "Hive on Tez", RowsPerSec: 1.0e6, DiskBW: 300e6, LinkBW: 1000e6,
			ConnCost: 0.004, StageStartup: 1.5, SpillPenalty: 2.5,
			CoordinatorRowsPerSec: 1.5e6, MemBytes: memBytes, OOMFails: false,
		},
		"spark2": {
			Name: "Spark 2.0", RowsPerSec: 0.45e6, DiskBW: 350e6, LinkBW: 1000e6,
			ConnCost: 0.004, StageStartup: 0.4, SpillPenalty: 2.2,
			CoordinatorRowsPerSec: 2.5e6, MemBytes: memBytes, OOMFails: true,
			MemHeadroom: 2.2, GCPressure: 2.5,
		},
	}
}

// ClusterProfile maps a modeled system to the execution-feature toggles
// its real runs use (the baseline substitution in DESIGN.md).
func ClusterProfile(system string) cluster.ExecProfile {
	switch system {
	case "greenplum":
		return cluster.ExecProfile{
			HierarchicalShuffle: false, // direct O(n) interconnect
			EnforceLocality:     true,
			// Greenplum 4.3 has no block skipping at all — the paper's
			// q6/q14/q15/q20 call-outs credit HRDBMS's predicate cache.
			PreAggTree:       false,
			ProbeParallelism: 2,
		}
	case "sparksql", "spark2":
		return cluster.ExecProfile{
			HierarchicalShuffle: false,
			MaterializeShuffle:  true, // shuffle writes to disk by default
			EnforceLocality:     false,
			ProbeParallelism:    2,
		}
	case "hive", "hive-tez":
		return cluster.ExecProfile{
			HierarchicalShuffle: false,
			BlockingShuffle:     true, // MapReduce sort-shuffle barrier
			MaterializeShuffle:  true,
			EnforceLocality:     false,
			ProbeParallelism:    1,
		}
	default: // hrdbms
		return cluster.HRDBMSProfile()
	}
}
