package perfmodel

import (
	"testing"

	"repro/internal/opt"
)

// The optimizer cannot import perfmodel (perfmodel → cluster → opt), so it
// restates the hrdbms profile's machine constants. This pins the mirror:
// if the profile changes, the optimizer's copy must change with it.
func TestOptCostConstantsMatch(t *testing.T) {
	p, ok := Systems(0)["hrdbms"]
	if !ok {
		t.Fatal("hrdbms profile missing")
	}
	if p.RowsPerSec != opt.CostRowsPerSec {
		t.Errorf("opt.CostRowsPerSec = %g, perfmodel hrdbms RowsPerSec = %g", opt.CostRowsPerSec, p.RowsPerSec)
	}
	if p.LinkBW != opt.CostLinkBW {
		t.Errorf("opt.CostLinkBW = %g, perfmodel hrdbms LinkBW = %g", opt.CostLinkBW, p.LinkBW)
	}
	if p.DiskBW != opt.CostDiskBW {
		t.Errorf("opt.CostDiskBW = %g, perfmodel hrdbms DiskBW = %g", opt.CostDiskBW, p.DiskBW)
	}
}
