package opt

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
)

// Group-by pushdown through joins (Section V, after Wong et al. [48]):
// when an aggregation sits on an inner equi-join and
//
//  1. every group-by expression and aggregate argument binds to the LEFT
//     join input,
//  2. the left join keys are a subset of the group-by expressions (so all
//     rows of a group share one join key), and
//  3. the RIGHT input joins on a unique key (each left row matches at most
//     one right row — verified from catalog statistics: exact NDV == row
//     count; sketch estimates cannot prove uniqueness),
//
// the aggregation can run below the join:
//
//	Agg(G,A)(L ⋈ R)  ⇒  Π_{G,A}(Agg(G,A)(L) ⋈ R)
//
// Matching groups pass through the key join unchanged; non-matching groups
// drop whole (every row of a group shares the key). The paper applies this
// transformation cost-based; we require the aggregation to shrink its
// input by at least 2×.

// pushGroupByThroughJoins walks the plan applying the rewrite bottom-up.
func pushGroupByThroughJoins(n plan.Node, est *Estimator) plan.Node {
	// Recurse first.
	switch x := n.(type) {
	case *plan.Filter:
		x.Child = pushGroupByThroughJoins(x.Child, est)
	case *plan.Project:
		x.Child = pushGroupByThroughJoins(x.Child, est)
	case *plan.Agg:
		x.Child = pushGroupByThroughJoins(x.Child, est)
	case *plan.Sort:
		x.Child = pushGroupByThroughJoins(x.Child, est)
	case *plan.Limit:
		x.Child = pushGroupByThroughJoins(x.Child, est)
	case *plan.Distinct:
		x.Child = pushGroupByThroughJoins(x.Child, est)
	case *plan.Rename:
		x.Child = pushGroupByThroughJoins(x.Child, est)
	case *plan.Join:
		x.Left = pushGroupByThroughJoins(x.Left, est)
		x.Right = pushGroupByThroughJoins(x.Right, est)
	}
	agg, ok := n.(*plan.Agg)
	if !ok || len(agg.GroupBy) == 0 {
		return n
	}
	join, ok := agg.Child.(*plan.Join)
	if !ok || join.Type != exec.JoinInner || len(join.EquiLeft) == 0 || join.Residual != nil {
		return n
	}
	leftSchema := join.Left.Schema()

	// (1) Everything the aggregation computes must bind to the left input.
	bindsLeft := func(e expr.Expr) bool {
		for _, c := range expr.Columns(e) {
			if leftSchema.Find(c) < 0 {
				return false
			}
		}
		return true
	}
	for _, g := range agg.GroupBy {
		if !bindsLeft(g) {
			return n
		}
	}
	for _, a := range agg.Aggs {
		if a.Arg != nil && !bindsLeft(a.Arg) {
			return n
		}
		if a.Distinct {
			return n // keep the conservative path for DISTINCT aggregates
		}
	}
	// (2) Left join keys ⊆ group-by expressions. Plain columns compare by
	// schema position (qualification-insensitive); other expressions by
	// text.
	canon := func(e expr.Expr) string {
		if c, isCol := e.(*expr.Col); isCol {
			if idx := leftSchema.Find(c.Name); idx >= 0 {
				return "$" + strings.ToLower(leftSchema.Cols[idx].Name)
			}
		}
		return e.String()
	}
	groupKeys := map[string]bool{}
	for _, g := range agg.GroupBy {
		groupKeys[canon(g)] = true
	}
	for _, k := range join.EquiLeft {
		if !groupKeys[canon(k)] {
			return n
		}
	}
	// (3) Right side joins on a unique key.
	if !rightSideUnique(join.Right, join.EquiRight, est.Cat) {
		return n
	}
	// Cost gate: the pushed aggregation must shrink the join input.
	inputCard := est.Estimate(join.Left)
	groupCard := est.Estimate(agg) // group count estimate
	if groupCard*2 > inputCard {
		return n
	}

	// Rewrite. The pushed aggregation's output schema is G ++ aggs; the
	// join keys re-bind to the group columns by name.
	groupNames := make([]string, len(agg.GroupBy))
	for i, g := range agg.GroupBy {
		if c, isCol := g.(*expr.Col); isCol {
			groupNames[i] = c.Name
		} else {
			groupNames[i] = g.String()
		}
	}
	pushed := plan.NewAgg(join.Left, agg.GroupBy, agg.Aggs, groupNames)
	newKeys := make([]expr.Expr, len(join.EquiLeft))
	for i, k := range join.EquiLeft {
		newKeys[i] = expr.Clone(k)
	}
	newJoin := &plan.Join{
		Left: pushed, Right: join.Right, Type: exec.JoinInner,
		EquiLeft: newKeys, EquiRight: join.EquiRight,
	}
	// Project back to the aggregation's schema (group cols then aggs, which
	// are exactly the first len(schema) columns of the pushed agg's output
	// inside the join result).
	outSchema := agg.Schema()
	exprs := make([]expr.Expr, outSchema.Len())
	names := make([]string, outSchema.Len())
	for i, col := range outSchema.Cols {
		exprs[i] = &expr.Col{Index: i, Name: pushed.Schema().Cols[i].Name}
		names[i] = col.Name
	}
	return plan.NewProject(newJoin, exprs, names)
}

// rightSideUnique reports whether the right input's join key is unique:
// a (possibly filtered/projected) base-table scan whose key column has
// NDV == row count in the statistics.
func rightSideUnique(n plan.Node, keys []expr.Expr, cat *catalog.Catalog) bool {
	if len(keys) != 1 {
		return false
	}
	col, ok := keys[0].(*expr.Col)
	if !ok {
		return false
	}
	// Unwrap filters/projections that pass the column through.
	cur := n
	for {
		switch x := cur.(type) {
		case *plan.Filter:
			cur = x.Child
			continue
		case *plan.Scan:
			stats := cat.Stats(x.Table.Name)
			bare := strings.ToLower(col.Name)
			if i := strings.LastIndexByte(bare, '.'); i >= 0 {
				bare = bare[i+1:]
			}
			cs, exists := stats.Cols[bare]
			if !exists || stats.RowCount <= 0 {
				return false
			}
			// The rewrite is only correct when the key really is unique, so
			// a sketch-estimated NDV (±2% error) can never prove it; only
			// the exact distinct count qualifies. Duplicates always drive
			// the exact count strictly below the row count, so this cannot
			// false-positive.
			return cs.NDVExact && cs.NDV == stats.RowCount
		default:
			return false
		}
	}
}
