package opt

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

func testCat(t *testing.T) (*catalog.Catalog, *plan.MemProvider) {
	t.Helper()
	cat := catalog.New()
	add := func(name string, cols []types.Column, rows int64, ndv map[string]int64) {
		def := &catalog.TableDef{
			Name:   name,
			Schema: types.Schema{Cols: cols},
			Part:   catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{cols[0].Name}},
		}
		if err := cat.CreateTable(def); err != nil {
			t.Fatal(err)
		}
		stats := &catalog.TableStats{RowCount: rows, Cols: map[string]*catalog.ColumnStats{}}
		for col, n := range ndv {
			// Hand-authored test stats are declared exact so uniqueness
			// proofs (NDV == row count) keep working.
			stats.Cols[col] = &catalog.ColumnStats{NDV: n, NDVExact: true}
		}
		cat.SetStats(name, stats)
	}
	add("big", []types.Column{
		{Name: "b_key", Kind: types.KindInt}, {Name: "b_fk", Kind: types.KindInt},
	}, 1000000, map[string]int64{"b_key": 1000000, "b_fk": 1000})
	add("mid", []types.Column{
		{Name: "m_key", Kind: types.KindInt}, {Name: "m_fk", Kind: types.KindInt},
	}, 10000, map[string]int64{"m_key": 10000, "m_fk": 100})
	add("small", []types.Column{
		{Name: "s_key", Kind: types.KindInt}, {Name: "s_val", Kind: types.KindString},
	}, 100, map[string]int64{"s_key": 100})

	prov := &plan.MemProvider{Cat: cat, Rows: map[string][]types.Row{}}
	for i := int64(0); i < 60; i++ {
		prov.Rows["big"] = append(prov.Rows["big"], types.Row{types.NewInt(i), types.NewInt(i % 10)})
	}
	for i := int64(0); i < 20; i++ {
		prov.Rows["mid"] = append(prov.Rows["mid"], types.Row{types.NewInt(i), types.NewInt(i % 5)})
	}
	for i := int64(0); i < 5; i++ {
		prov.Rows["small"] = append(prov.Rows["small"], types.Row{types.NewInt(i), types.NewString("v")})
	}
	return cat, prov
}

func TestEstimatorScan(t *testing.T) {
	cat, _ := testCat(t)
	est := &Estimator{Cat: cat}
	sel, _ := sqlparse.ParseSelect("SELECT b_key FROM big")
	node, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Walk to the scan.
	var scan plan.Node
	plan.Walk(node, func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			scan = s
		}
	})
	if got := est.Estimate(scan); got != 1000000 {
		t.Errorf("scan estimate = %v", got)
	}
	// Filter reduces the estimate.
	sel2, _ := sqlparse.ParseSelect("SELECT b_key FROM big WHERE b_key = 5")
	node2, _ := plan.Build(sel2, cat)
	var scan2 plan.Node
	plan.Walk(node2, func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			scan2 = s
		}
	})
	got := est.Estimate(scan2)
	if got > 2 { // 1e6 / NDV(1e6) = 1
		t.Errorf("eq estimate = %v, want ~1", got)
	}
}

func TestEstimatorJoinAndAgg(t *testing.T) {
	cat, _ := testCat(t)
	est := &Estimator{Cat: cat}
	sel, _ := sqlparse.ParseSelect(
		"SELECT m_fk, count(*) FROM big, mid WHERE b_fk = m_key GROUP BY m_fk")
	node, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	var agg, join plan.Node
	plan.Walk(node, func(n plan.Node) {
		switch n.(type) {
		case *plan.Agg:
			agg = n
		case *plan.Join:
			join = n
		}
	})
	jc := est.Estimate(join)
	// |big|*|mid| / max(NDV(b_fk), NDV(m_key)) = 1e6*1e4/1e4 = 1e6.
	if jc < 1e5 || jc > 1e7 {
		t.Errorf("join estimate = %v", jc)
	}
	ac := est.Estimate(agg)
	if ac > 200 { // NDV(m_fk) = 100
		t.Errorf("agg estimate = %v", ac)
	}
}

func TestOptimizePreservesResults(t *testing.T) {
	cat, prov := testCat(t)
	// A 3-way join written in the worst order (big first).
	sql := `SELECT small.s_key, count(*) AS c
		FROM big, mid, small
		WHERE big.b_fk = mid.m_key AND mid.m_fk = small.s_key
		GROUP BY small.s_key ORDER BY small.s_key`
	sel, _ := sqlparse.ParseSelect(sql)
	raw, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	rawOp, err := plan.Execute(raw, prov, exec.NewCtx(t.TempDir(), 0))
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Collect(rawOp)
	if err != nil {
		t.Fatal(err)
	}

	sel2, _ := sqlparse.ParseSelect(sql)
	built, err := plan.Build(sel2, cat)
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := Optimize(built, cat)
	if err != nil {
		t.Fatal(err)
	}
	optOp, err := plan.Execute(optimized, prov, exec.NewCtx(t.TempDir(), 0))
	if err != nil {
		t.Fatalf("%v\nplan:\n%s", err, plan.Explain(optimized))
	}
	got, err := exec.Collect(optOp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("optimized returned %d rows, want %d\nplan:\n%s", len(got), len(want), plan.Explain(optimized))
	}
	for i := range want {
		for c := range want[i] {
			if types.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestOptimizeAvoidsBigFirst(t *testing.T) {
	cat, _ := testCat(t)
	sql := `SELECT count(*) FROM big, mid, small
		WHERE big.b_fk = mid.m_key AND mid.m_fk = small.s_key`
	sel, _ := sqlparse.ParseSelect(sql)
	built, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := Optimize(built, cat)
	if err != nil {
		t.Fatal(err)
	}
	// The DP enumerator picks the cost-optimal left-deep order; whatever
	// it is, the 1M-row table must not be the deepest-left (driver) leaf.
	var deepest *plan.Scan
	var findLeft func(n plan.Node)
	findLeft = func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok {
			findLeft(j.Left)
			return
		}
		if s, ok := n.(*plan.Scan); ok {
			deepest = s
		}
		if len(n.Children()) > 0 {
			findLeft(n.Children()[0])
		}
	}
	findLeft(optimized)
	if deepest == nil || deepest.Table.Name == "big" {
		name := "<none>"
		if deepest != nil {
			name = deepest.Table.Name
		}
		t.Errorf("optimized order starts with %s, want a small relation\nplan:\n%s", name, plan.Explain(optimized))
	}
}

func TestGreedyStartsSmall(t *testing.T) {
	cat, _ := testCat(t)
	est := &Estimator{Cat: cat}
	tbl := func(name string) *catalog.TableDef {
		def, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		return def
	}
	leaves := []plan.Node{
		&plan.Scan{Table: tbl("big")},
		&plan.Scan{Table: tbl("mid")},
		&plan.Scan{Table: tbl("small")},
	}
	conds := []expr.Expr{
		&expr.Bin{Op: expr.OpEq, L: &expr.Col{Index: -1, Name: "b_fk"}, R: &expr.Col{Index: -1, Name: "m_key"}},
		&expr.Bin{Op: expr.OpEq, L: &expr.Col{Index: -1, Name: "m_fk"}, R: &expr.Col{Index: -1, Name: "s_key"}},
	}
	order := greedyOrder(leaves, conds, est)
	if s, ok := order[0].(*plan.Scan); !ok || s.Table.Name != "small" {
		t.Errorf("greedy order starts with %s, want small", order[0].Describe())
	}
}

// TestDPNeverWorseThanGreedy pins the enumerator's core invariant: dpOrder
// minimizes exactly the metric PlanCost reports, so its plan can never cost
// more than the greedy plan — or any other permutation — of the same
// leaves. This holds by construction (both run the shared costModel), and
// the test keeps it that way.
func TestDPNeverWorseThanGreedy(t *testing.T) {
	cat, _ := testCat(t)
	est := &Estimator{Cat: cat}
	o := Options{Workers: 4}
	tbl := func(name string) *catalog.TableDef {
		def, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		return def
	}
	leaves := []plan.Node{
		&plan.Scan{Table: tbl("big")},
		&plan.Scan{Table: tbl("mid")},
		&plan.Scan{Table: tbl("small")},
	}
	conds := []expr.Expr{
		&expr.Bin{Op: expr.OpEq, L: &expr.Col{Index: -1, Name: "b_fk"}, R: &expr.Col{Index: -1, Name: "m_key"}},
		&expr.Bin{Op: expr.OpEq, L: &expr.Col{Index: -1, Name: "m_fk"}, R: &expr.Col{Index: -1, Name: "s_key"}},
	}
	dp := dpOrder(leaves, conds, est, o)
	if dp == nil {
		t.Fatal("dpOrder declined a 3-relation cluster")
	}
	dpCost := PlanCost(dp, conds, est, o)
	greedy := greedyOrder(leaves, conds, est)
	if gc := PlanCost(greedy, conds, est, o); dpCost > gc*1.0000001 {
		t.Errorf("dp cost %g > greedy cost %g", dpCost, gc)
	}
	// Exhaustive: no permutation of the leaves beats the DP plan.
	var perm func(cur, rest []plan.Node)
	perm = func(cur, rest []plan.Node) {
		if len(rest) == 0 {
			if c := PlanCost(cur, conds, est, o); dpCost > c*1.0000001 {
				t.Errorf("dp cost %g > permutation cost %g (%v)", dpCost, c, cur)
			}
			return
		}
		for i := range rest {
			next := append(append([]plan.Node{}, rest[:i]...), rest[i+1:]...)
			perm(append(cur, rest[i]), next)
		}
	}
	perm(nil, leaves)
}

func TestSelectivityShapes(t *testing.T) {
	cat, _ := testCat(t)
	est := &Estimator{Cat: cat}
	mk := func(sql string) float64 {
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		node, err := plan.Build(sel, cat)
		if err != nil {
			t.Fatal(err)
		}
		var scan plan.Node
		plan.Walk(node, func(n plan.Node) {
			if s, ok := n.(*plan.Scan); ok {
				scan = s
			}
		})
		return est.Estimate(scan)
	}
	full := mk("SELECT b_key FROM big")
	eq := mk("SELECT b_key FROM big WHERE b_fk = 1")
	rng := mk("SELECT b_key FROM big WHERE b_key < 100")
	both := mk("SELECT b_key FROM big WHERE b_fk = 1 AND b_key < 100")
	if !(eq < rng && rng < full) {
		t.Errorf("selectivity ordering: eq=%v rng=%v full=%v", eq, rng, full)
	}
	if both >= eq {
		t.Errorf("conjunction should be more selective: both=%v eq=%v", both, eq)
	}
}

func TestEquivalenceClassesEnableReordering(t *testing.T) {
	cat, prov := testCat(t)
	// big.b_fk = mid.m_key AND mid.m_key = small.s_key: transitively
	// big.b_fk = small.s_key, which the greedy enumerator may exploit.
	sql := `SELECT count(*) FROM big, mid, small
		WHERE big.b_fk = mid.m_key AND mid.m_key = small.s_key`
	sel, _ := sqlparse.ParseSelect(sql)
	built, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := Optimize(built, cat)
	if err != nil {
		t.Fatal(err)
	}
	op, err := plan.Execute(optimized, prov, exec.NewCtx(t.TempDir(), 0))
	if err != nil {
		t.Fatalf("%v\nplan:\n%s", err, plan.Explain(optimized))
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	// Reference without optimization.
	sel2, _ := sqlparse.ParseSelect(sql)
	raw, _ := plan.Build(sel2, cat)
	rawOp, _ := plan.Execute(raw, prov, exec.NewCtx(t.TempDir(), 0))
	want, err := exec.Collect(rawOp)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != want[0][0].Int() {
		t.Fatalf("equivalence-augmented plan changed the answer: %v vs %v", rows[0], want[0])
	}
	// No cross join should remain: every Join must have equi keys.
	plan.Walk(optimized, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && len(j.EquiLeft) == 0 && j.Residual == nil {
			t.Errorf("cross join survived:\n%s", plan.Explain(optimized))
		}
	})
}

func TestGroupByPushdownThroughJoin(t *testing.T) {
	cat, prov := testCat(t)
	// Mark small.s_key as a unique key via stats (NDV == rows) — it already
	// is in testCat (100/100). big.b_fk has 1000 NDV over 1e6 rows: the
	// pushed aggregation shrinks 1000x, passing the cost gate.
	sql := `SELECT b_fk, sum(b_key) AS s, count(*) AS c
		FROM big, small WHERE big.b_fk = small.s_key
		GROUP BY b_fk ORDER BY b_fk`
	sel, _ := sqlparse.ParseSelect(sql)
	raw, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	rawOp, _ := plan.Execute(raw, prov, exec.NewCtx(t.TempDir(), 0))
	want, err := exec.Collect(rawOp)
	if err != nil {
		t.Fatal(err)
	}

	sel2, _ := sqlparse.ParseSelect(sql)
	built, _ := plan.Build(sel2, cat)
	optimized, err := Optimize(built, cat)
	if err != nil {
		t.Fatal(err)
	}
	// The rewrite must have moved the aggregation BELOW the join.
	pushed := false
	plan.Walk(optimized, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok {
			plan.Walk(j.Left, func(m plan.Node) {
				if _, isAgg := m.(*plan.Agg); isAgg {
					pushed = true
				}
			})
		}
	})
	if !pushed {
		t.Fatalf("group-by not pushed below join:\n%s", plan.Explain(optimized))
	}
	op, err := plan.Execute(optimized, prov, exec.NewCtx(t.TempDir(), 0))
	if err != nil {
		t.Fatalf("%v\nplan:\n%s", err, plan.Explain(optimized))
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pushed plan: %d rows, want %d\n%s", len(got), len(want), plan.Explain(optimized))
	}
	for i := range want {
		for c := range want[i] {
			if types.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestGroupByPushdownDeclined(t *testing.T) {
	cat, _ := testCat(t)
	// mid.m_fk is NOT unique (NDV 100 over 10000 rows): rule must decline.
	sql := `SELECT b_fk, count(*) FROM big, mid
		WHERE big.b_fk = mid.m_fk GROUP BY b_fk`
	sel, _ := sqlparse.ParseSelect(sql)
	built, _ := plan.Build(sel, cat)
	optimized, err := Optimize(built, cat)
	if err != nil {
		t.Fatal(err)
	}
	plan.Walk(optimized, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok {
			plan.Walk(j.Left, func(m plan.Node) {
				if _, isAgg := m.(*plan.Agg); isAgg {
					t.Errorf("group-by pushed despite non-unique right key:\n%s", plan.Explain(optimized))
				}
			})
			plan.Walk(j.Right, func(m plan.Node) {
				if _, isAgg := m.(*plan.Agg); isAgg {
					t.Errorf("group-by pushed to right side?!")
				}
			})
		}
	})
}
