// DPsize join-order enumeration over left-deep trees. Cardinalities of
// relation subsets are order-independent (independent-selectivity model
// over a spanning forest of the equality conditions), so the DP state is
// one best plan per subset bitmask: best[S] = min over last relation r of
// cost(best[S\r] ⋈ r), with the network term of each step costed from the
// tracked worker distribution. Above DPMaxRelations the enumerator falls
// back to the paper's greedy ordering. PlanCost scores any fixed order with
// the exact same model, which is what makes "DP never costs worse than
// greedy" a provable invariant rather than a hope.
package opt

import (
	"math"
	"math/bits"

	"repro/internal/expr"
	"repro/internal/plan"
)

// DPMaxRelations bounds exhaustive enumeration: 2^n subsets with an O(n^2)
// inner loop is fine to 12 relations, past that greedy takes over.
const DPMaxRelations = 12

// condInfo pre-resolves one join condition against the leaf set.
type condInfo struct {
	mask uint64  // leaves referenced (0 when not fully resolvable)
	sel  float64 // selectivity applied when the condition is subsumed
	// eqL/eqR are the two column names of a simple column equality (for
	// deriving partitioning keys and forest-based dedup); empty otherwise.
	eqL, eqR string
}

// costModel is the shared DP / PlanCost costing state for one join cluster.
type costModel struct {
	est     *Estimator
	leaves  []plan.Node
	infos   []condInfo
	card    []float64 // per-leaf estimated rows
	width   []float64 // per-leaf estimated row width (bytes)
	dist    []DistInfo
	workers int
	memo    map[uint64]float64
}

func newCostModel(leaves []plan.Node, conds []expr.Expr, est *Estimator, o Options) *costModel {
	m := &costModel{
		est:     est,
		leaves:  leaves,
		infos:   resolveConds(leaves, conds, est),
		card:    make([]float64, len(leaves)),
		width:   make([]float64, len(leaves)),
		dist:    make([]DistInfo, len(leaves)),
		workers: o.workers(),
		memo:    map[uint64]float64{},
	}
	for i, l := range leaves {
		m.card[i] = math.Max(1, est.Estimate(l))
		m.width[i] = est.RowWidth(l)
		m.dist[i] = est.leafDist(l)
	}
	return m
}

// subsetCard estimates |⨝ S| under the independent-selectivity model: the
// product of leaf cardinalities times the selectivity of a spanning forest
// of the equality conditions inside S (union-find skips redundant
// transitive equalities so they are not double-counted), times every
// non-equality condition inside S.
func (m *costModel) subsetCard(S uint64) float64 {
	if c, ok := m.memo[S]; ok {
		return c
	}
	c := 1.0
	for i := range m.leaves {
		if S&(1<<uint(i)) != 0 {
			c *= m.card[i]
		}
	}
	parent := make([]int, len(m.leaves))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, ci := range m.infos {
		if ci.mask == 0 || ci.mask&S != ci.mask {
			continue
		}
		if ci.eqL != "" && bits.OnesCount64(ci.mask) == 2 {
			a := bits.TrailingZeros64(ci.mask)
			b := bits.TrailingZeros64(ci.mask &^ (1 << uint(a)))
			ra, rb := find(a), find(b)
			if ra == rb {
				continue // transitive duplicate inside S
			}
			parent[ra] = rb
		}
		c *= ci.sel
	}
	c = math.Max(1, c)
	m.memo[S] = c
	return c
}

// joinKeys collects the equality keys connecting subset S to leaf r.
func (m *costModel) joinKeys(S uint64, r int) (lk, rk []string) {
	rbit := uint64(1) << uint(r)
	for _, ci := range m.infos {
		if ci.eqL == "" || ci.mask&rbit == 0 {
			continue
		}
		other := ci.mask &^ rbit
		if other == 0 || other&S != other {
			continue
		}
		if leafHasCol(m.leaves[r], ci.eqR) && !leafHasCol(m.leaves[r], ci.eqL) {
			lk, rk = append(lk, ci.eqL), append(rk, ci.eqR)
		} else if leafHasCol(m.leaves[r], ci.eqL) && !leafHasCol(m.leaves[r], ci.eqR) {
			lk, rk = append(lk, ci.eqR), append(rk, ci.eqL)
		}
	}
	return lk, rk
}

// connectedTo reports whether any condition joins subset S with leaf r.
func (m *costModel) connectedTo(S uint64, r int) bool {
	rbit := uint64(1) << uint(r)
	for _, ci := range m.infos {
		if ci.mask != 0 && ci.mask&rbit != 0 && ci.mask&S != 0 && ci.mask&^(S|rbit) == 0 {
			return true
		}
	}
	return false
}

// subsetWidth is the row width of the intermediate joining subset S (a
// left-deep intermediate carries every joined column).
func (m *costModel) subsetWidth(S uint64) float64 {
	var w float64
	for i := range m.leaves {
		if S&(1<<uint(i)) != 0 {
			w += m.width[i]
		}
	}
	return w
}

// step costs joining leaf r onto the subtree covering S with distribution
// d, returning the step cost and the output distribution.
func (m *costModel) step(S uint64, d DistInfo, r int) (float64, DistInfo) {
	lRows := m.subsetCard(S)
	rRows := m.card[r]
	out := m.subsetCard(S | 1<<uint(r))
	lk, rk := m.joinKeys(S, r)
	var net JoinNet
	cost := 0.0
	if m.connectedTo(S, r) {
		net = ChooseJoinNet(d, m.dist[r], lk, rk,
			lRows, m.subsetWidth(S), rRows, m.width[r], m.workers)
	} else {
		// Cross join: legal but punished so it is only chosen when the
		// join graph is genuinely disconnected.
		cost += lRows * rRows / CostRowsPerSec
	}
	cost += joinCost(lRows, rRows, out, net, m.workers)
	return cost, joinOutDist(net, d, lk)
}

// dpState is one subset's best left-deep plan.
type dpState struct {
	cost  float64
	order []int
	dist  DistInfo
}

// dpOrder returns the cost-optimal left-deep join order, or nil when the
// cluster is too big (caller falls back to greedy).
func dpOrder(leaves []plan.Node, conds []expr.Expr, est *Estimator, o Options) []plan.Node {
	n := len(leaves)
	if n < 2 || n > DPMaxRelations {
		return nil
	}
	m := newCostModel(leaves, conds, est, o)
	best := make(map[uint64]*dpState, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[1<<uint(i)] = &dpState{order: []int{i}, dist: m.dist[i]}
	}
	full := uint64(1)<<uint(n) - 1
	// A numeric sweep visits every S after all its subsets (S\r < S).
	for S := uint64(1); S <= full; S++ {
		if bits.OnesCount64(S) < 2 {
			continue
		}
		var bestS *dpState
		for r := 0; r < n; r++ {
			rbit := uint64(1) << uint(r)
			if S&rbit == 0 {
				continue
			}
			prev := best[S&^rbit]
			if prev == nil {
				continue
			}
			stepCost, outDist := m.step(S&^rbit, prev.dist, r)
			cost := prev.cost + stepCost
			if bestS == nil || cost < bestS.cost {
				order := make([]int, 0, len(prev.order)+1)
				order = append(order, prev.order...)
				order = append(order, r)
				bestS = &dpState{cost: cost, order: order, dist: outDist}
			}
		}
		if bestS != nil {
			best[S] = bestS
		}
	}
	final := best[full]
	if final == nil {
		return nil
	}
	out := make([]plan.Node, n)
	for i, li := range final.order {
		out[i] = leaves[li]
	}
	return out
}

// PlanCost scores a fixed left-deep order with the same model dpOrder
// minimizes over, so dpOrder's result never costs more than any other
// order of the same leaves (the DP-vs-greedy invariant test).
func PlanCost(order []plan.Node, conds []expr.Expr, est *Estimator, o Options) float64 {
	if len(order) == 0 {
		return 0
	}
	m := newCostModel(order, conds, est, o)
	total := 0.0
	S := uint64(1)
	d := m.dist[0]
	for i := 1; i < len(order); i++ {
		stepCost, outDist := m.step(S, d, i)
		total += stepCost
		d = outDist
		S |= 1 << uint(i)
	}
	return total
}

// resolveConds binds each condition to the set of leaves it references.
// Conditions whose columns cannot all be found get mask 0 and are ignored.
func resolveConds(leaves []plan.Node, conds []expr.Expr, est *Estimator) []condInfo {
	out := make([]condInfo, 0, len(conds))
	for _, c := range conds {
		ci := condInfo{sel: 0.5}
		ok := true
		for _, name := range expr.Columns(c) {
			found := false
			for li, l := range leaves {
				if leafHasCol(l, name) {
					ci.mask |= 1 << uint(li)
					found = true
					break
				}
			}
			if !found {
				ok = false
			}
		}
		if !ok {
			ci.mask = 0
		}
		if b, isBin := c.(*expr.Bin); isBin && b.Op == expr.OpEq {
			lc, lok := b.L.(*expr.Col)
			rc, rok := b.R.(*expr.Col)
			if lok && rok {
				ci.eqL, ci.eqR = lc.Name, rc.Name
				// Equality selectivity: 1/max(NDV of either end).
				ndv := 1.0
				for li, l := range leaves {
					if ci.mask&(1<<uint(li)) == 0 {
						continue
					}
					for _, nm := range []string{lc.Name, rc.Name} {
						if leafHasCol(l, nm) {
							ndv = math.Max(ndv, est.exprNDV(l, &expr.Col{Index: -1, Name: nm}))
						}
					}
				}
				ci.sel = 1 / ndv
			}
		} else if ci.mask != 0 {
			// Non-equality join condition: use the atom model against the
			// first referencing leaf.
			for li, l := range leaves {
				if ci.mask&(1<<uint(li)) != 0 {
					ci.sel = est.atomSelectivity(c, l)
					break
				}
			}
		}
		out = append(out, ci)
	}
	return out
}

// leafHasCol reports whether a leaf's schema resolves the column name.
func leafHasCol(n plan.Node, name string) bool {
	return n.Schema().Find(name) >= 0
}
