// Cost model for join enumeration and distribution choice. The constants
// mirror the perfmodel "hrdbms" system profile (opt cannot import perfmodel
// — perfmodel imports cluster which imports opt — so they are restated here
// and pinned by a consistency test in the perfmodel package).
package opt

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// Mirrors of perfmodel's hrdbms profile (see TestOptCostConstantsMatch in
// internal/perfmodel).
const (
	// CostRowsPerSec is per-core row processing throughput.
	CostRowsPerSec = 4.0e6
	// CostLinkBW is per-link network bandwidth, bytes/sec.
	CostLinkBW = 1000e6
	// CostDiskBW is sequential disk bandwidth, bytes/sec.
	CostDiskBW = 400e6
)

// MaxBroadcastBytes caps the estimated build-side size eligible for
// broadcast: every worker holds a full copy, so an estimation error on a
// huge build side must not blow worker memory.
const MaxBroadcastBytes = 8 << 20

// DefaultWorkers is the modeled cluster width when the caller does not say.
const DefaultWorkers = 4

// Options parameterizes optimization for a concrete cluster.
type Options struct {
	// Workers is the number of worker nodes network costs are modeled on.
	Workers int
	// Feedback, when set, lets the estimator prefer observed cardinalities
	// from earlier queries over the statistics model.
	Feedback *Feedback
}

func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return DefaultWorkers
}

// RowWidth estimates the average encoded row width in bytes of a node's
// output, using per-column AvgWidth stats where available.
func (e *Estimator) RowWidth(n plan.Node) float64 {
	var w float64
	for _, col := range n.Schema().Cols {
		w += e.colWidth(n, col.Name, col.Kind)
	}
	if w < 8 {
		w = 8
	}
	return w
}

func (e *Estimator) colWidth(n plan.Node, name string, kind types.Kind) float64 {
	if cs, _ := e.colStatsFor(n, name); cs != nil && cs.AvgWidth > 0 {
		return cs.AvgWidth
	}
	if kind == types.KindString {
		return 16
	}
	return 8
}

// DistKind mirrors the cluster layer's stream distribution classification;
// opt keeps its own copy to stay import-cycle-free.
type DistKind uint8

// Stream distributions.
const (
	DistRandom DistKind = iota
	DistPartitioned
	DistReplicated
)

// DistInfo describes how a (sub)plan's output is spread over workers:
// partitioned by the named columns, fully replicated, or neither.
type DistInfo struct {
	Kind DistKind
	Cols []string
}

// distMatchesKeys reports whether a stream partitioned on d.Cols is
// already correctly partitioned for joining on keys (same column list, by
// suffix-insensitive name match, in order).
func distMatchesKeys(d DistInfo, keys []string) bool {
	if d.Kind != DistPartitioned || len(d.Cols) != len(keys) {
		return false
	}
	for i := range keys {
		if !nameMatches(d.Cols[i], keys[i]) {
			return false
		}
	}
	return true
}

// nameMatches compares two possibly-qualified column names the way the
// cluster layer does: equal, or one is a suffix of the other past a dot.
func nameMatches(a, b string) bool {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if a == b {
		return true
	}
	return strings.HasSuffix(a, "."+b) || strings.HasSuffix(b, "."+a)
}

// JoinNet is the network plan for one join: what each side does and the
// modeled bytes moved.
type JoinNet struct {
	Broadcast bool // replicate the build (right) side to every worker
	// ShuffleLeft / ShuffleRight are set when that side must be hash-
	// repartitioned on the join keys (mutually exclusive with Broadcast
	// for the right side).
	ShuffleLeft, ShuffleRight bool
	Bytes                     float64 // total bytes crossing the network
}

// ChooseJoinNet picks the cheapest legal data movement for an equi-join
// given each side's distribution and estimated size. The left side is the
// probe side and keeps its distribution under a broadcast; broadcasting the
// build side costs bytes*(W-1) but can beat shuffling a much larger probe
// side, which is the paper's shuffle-vs-broadcast decision made from
// estimated build-side size.
func ChooseJoinNet(left, right DistInfo, leftKeys, rightKeys []string,
	leftRows, leftWidth, rightRows, rightWidth float64, workers int) JoinNet {
	w := float64(workers)
	if w < 2 {
		// Single worker: everything is local.
		return JoinNet{}
	}
	leftOK := distMatchesKeys(left, leftKeys)
	rightOK := distMatchesKeys(right, rightKeys)
	if left.Kind == DistReplicated || right.Kind == DistReplicated {
		return JoinNet{}
	}
	if leftOK && rightOK {
		return JoinNet{}
	}
	// Option 1: hash-shuffle every misplaced side. A shuffle moves the
	// (W-1)/W fraction of the side's bytes that hashes to another worker.
	shuffle := JoinNet{ShuffleLeft: !leftOK, ShuffleRight: !rightOK}
	if !leftOK {
		shuffle.Bytes += leftRows * leftWidth * (w - 1) / w
	}
	if !rightOK {
		shuffle.Bytes += rightRows * rightWidth * (w - 1) / w
	}
	// Option 2: broadcast the build side; the probe side stays put. Only
	// legal when there are join keys to begin with (the caller guarantees
	// an equi-join), and only useful when the left side would otherwise
	// move. Memory cap: every worker materializes the full build side.
	bcastBytes := rightRows * rightWidth * (w - 1)
	if !leftOK && len(leftKeys) > 0 &&
		rightRows*rightWidth <= MaxBroadcastBytes &&
		bcastBytes < shuffle.Bytes {
		return JoinNet{Broadcast: true, Bytes: bcastBytes}
	}
	return shuffle
}

// joinOutDist is the distribution of the join's output stream under a
// chosen movement plan, mirroring cluster/distribute.go's bookkeeping.
func joinOutDist(net JoinNet, left DistInfo, leftKeys []string) DistInfo {
	if net.Broadcast {
		return left // probe side untouched
	}
	if net.ShuffleLeft {
		return DistInfo{Kind: DistPartitioned, Cols: append([]string(nil), leftKeys...)}
	}
	if left.Kind == DistPartitioned {
		return left
	}
	return DistInfo{Kind: DistRandom}
}

// leafDist derives the worker distribution of a join leaf: base-table
// scans are partitioned (or replicated) per the catalog; filters preserve
// the child's layout; anything else is treated as unknown.
func (e *Estimator) leafDist(n plan.Node) DistInfo {
	switch x := n.(type) {
	case *plan.Filter:
		return e.leafDist(x.Child)
	case *plan.Scan:
		def := x.Table
		if def.Part.Kind == catalog.PartReplicated {
			return DistInfo{Kind: DistReplicated}
		}
		if def.Part.Kind == catalog.PartHash && len(def.Part.Cols) > 0 {
			alias := x.Alias
			if alias == "" {
				alias = def.Name
			}
			cols := make([]string, len(def.Part.Cols))
			for i, c := range def.Part.Cols {
				cols[i] = strings.ToLower(alias + "." + c)
			}
			return DistInfo{Kind: DistPartitioned, Cols: cols}
		}
		return DistInfo{Kind: DistRandom}
	default:
		return DistInfo{Kind: DistRandom}
	}
}

// annotateJoinDist walks the optimized plan bottom-up, derives each
// subtree's worker distribution, and stamps every equi-join with the
// modeled movement strategy so it shows up in EXPLAIN. Returns the
// subtree's output distribution.
func annotateJoinDist(n plan.Node, est *Estimator, o Options) DistInfo {
	switch x := n.(type) {
	case *plan.Scan:
		return est.leafDist(x)
	case *plan.Filter:
		return annotateJoinDist(x.Child, est, o)
	case *plan.Join:
		ld := annotateJoinDist(x.Left, est, o)
		rd := annotateJoinDist(x.Right, est, o)
		lk, rk, ok := equiKeyNames(x)
		if !ok {
			return DistInfo{Kind: DistRandom}
		}
		net := ChooseJoinNet(ld, rd, lk, rk,
			est.Estimate(x.Left), est.RowWidth(x.Left),
			est.Estimate(x.Right), est.RowWidth(x.Right), o.workers())
		switch {
		case net.Broadcast:
			x.Dist = plan.JoinDistBroadcast
		case net.ShuffleLeft || net.ShuffleRight:
			x.Dist = plan.JoinDistShuffle
		default:
			x.Dist = plan.JoinDistColocated
		}
		if rd.Kind == DistReplicated || net.Broadcast {
			return ld
		}
		out := joinOutDist(net, ld, lk)
		if x.Type != exec.JoinInner {
			// Semi/anti/outer joins emit only left columns; the left-side
			// derivation still holds.
			return out
		}
		return out
	default:
		// Projections, aggregations, sorts etc.: recurse so nested joins
		// get annotated, but report an unknown distribution (the cluster
		// layer re-derives the truth at execution time).
		for _, ch := range n.Children() {
			annotateJoinDist(ch, est, o)
		}
		return DistInfo{Kind: DistRandom}
	}
}

// equiKeyNames extracts the plain column names of a join's equi keys;
// ok is false when any key is not a simple column or there are none.
func equiKeyNames(j *plan.Join) (lk, rk []string, ok bool) {
	if len(j.EquiLeft) == 0 {
		return nil, nil, false
	}
	for i := range j.EquiLeft {
		lc, lok := j.EquiLeft[i].(*expr.Col)
		rc, rok := j.EquiRight[i].(*expr.Col)
		if !lok || !rok {
			return nil, nil, false
		}
		lk = append(lk, lc.Name)
		rk = append(rk, rc.Name)
	}
	return lk, rk, true
}

// joinCost models one left-deep join step in seconds: hash build over the
// right side, probe over the left, output materialization — spread across
// the workers — plus the network term for the chosen movement.
func joinCost(leftRows, rightRows, outRows float64, net JoinNet, workers int) float64 {
	w := float64(workers)
	if w < 1 {
		w = 1
	}
	cpu := (leftRows + rightRows + outRows) / CostRowsPerSec / w
	nw := net.Bytes / CostLinkBW / w
	return cpu + nw
}
