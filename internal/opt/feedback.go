package opt

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/expr"
	"repro/internal/plan"
)

// Feedback is the runtime cardinality store: after a traced query runs, the
// cluster records the actual output row count of every operator subtree,
// keyed by a structural signature. The estimator consults it before the
// statistics model, so the second time a (sub)plan is seen its cardinality
// is exact. Actual counts (not correction ratios) are stored deliberately:
// ratios compound when both a child and its parent get corrected.
type Feedback struct {
	mu sync.RWMutex //lint:lockorder opt.feedback leaf
	// rows maps subtree signature -> last observed actual output rows.
	rows map[string]float64
}

// NewFeedback creates an empty store.
func NewFeedback() *Feedback {
	return &Feedback{rows: map[string]float64{}}
}

// Record stores the observed cardinality for a subtree signature.
func (f *Feedback) Record(sig string, rows float64) {
	if f == nil || sig == "" {
		return
	}
	f.mu.Lock()
	f.rows[sig] = rows
	f.mu.Unlock()
}

// Lookup returns the recorded cardinality for a signature.
func (f *Feedback) Lookup(sig string) (float64, bool) {
	if f == nil {
		return 0, false
	}
	f.mu.RLock()
	r, ok := f.rows[sig]
	f.mu.RUnlock()
	return r, ok
}

// Len returns the number of recorded subtrees.
func (f *Feedback) Len() int {
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.rows)
}

// Signature returns a stable structural key for a plan subtree. Two
// subtrees share a signature exactly when they compute the same logical
// result: node type, predicates, keys, and child signatures — but not
// physical choices like the join distribution strategy, which do not
// change cardinality.
func Signature(n plan.Node) string {
	var sb strings.Builder
	writeSignature(&sb, n)
	return sb.String()
}

func writeSignature(sb *strings.Builder, n plan.Node) {
	switch x := n.(type) {
	case *plan.Scan:
		fmt.Fprintf(sb, "scan(%s|%s|%s)", strings.ToLower(x.Table.Name), strings.ToLower(x.Alias), exprSig(x.Pred))
	case *plan.Filter:
		fmt.Fprintf(sb, "filter(%s|", exprSig(x.Pred))
		writeSignature(sb, x.Child)
		sb.WriteString(")")
	case *plan.Join:
		fmt.Fprintf(sb, "join(%d|", int(x.Type))
		for i := range x.EquiLeft {
			fmt.Fprintf(sb, "%s=%s,", exprSig(x.EquiLeft[i]), exprSig(x.EquiRight[i]))
		}
		fmt.Fprintf(sb, "|%s|", exprSig(x.Residual))
		writeSignature(sb, x.Left)
		sb.WriteString("|")
		writeSignature(sb, x.Right)
		sb.WriteString(")")
	case *plan.Agg:
		sb.WriteString("agg(")
		for _, g := range x.GroupBy {
			sb.WriteString(exprSig(g))
			sb.WriteString(",")
		}
		sb.WriteString("|")
		writeSignature(sb, x.Child)
		sb.WriteString(")")
	case *plan.Distinct:
		sb.WriteString("distinct(")
		writeSignature(sb, x.Child)
		sb.WriteString(")")
	case *plan.Limit:
		fmt.Fprintf(sb, "limit(%d|", x.N)
		writeSignature(sb, x.Child)
		sb.WriteString(")")
	default:
		// Projections, sorts, renames and anything cardinality-preserving:
		// described by the node's own text plus child signatures.
		fmt.Fprintf(sb, "%T(", n)
		for _, ch := range n.Children() {
			writeSignature(sb, ch)
			sb.WriteString("|")
		}
		sb.WriteString(")")
	}
}

func exprSig(e expr.Expr) string {
	if e == nil {
		return ""
	}
	return strings.ToLower(e.String())
}
