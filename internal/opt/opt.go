// Package opt implements HRDBMS's phase-1 global optimization (Section V):
// statistics-based cardinality estimation (histograms + NDV sketches),
// DPsize join enumeration with network-aware costing, and runtime
// cardinality feedback. (Selection/projection pushdown and decorrelation
// happen during plan building; the dataflow conversion and dataflow
// optimization phases — operator distribution, shuffle insertion and
// elimination, pre-aggregation splitting — live in the cluster layer,
// which owns node placement and re-costs joins at exchange boundaries.)
package opt

import (
	"math"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// Estimator computes cardinalities from catalog statistics, preferring
// observed actuals from the Feedback store when a subtree has run before.
type Estimator struct {
	Cat *catalog.Catalog
	// FB, when set, overrides the statistics model with observed row
	// counts for subtrees whose structural signature has been recorded.
	FB *Feedback
	// sigs memoizes subtree signatures by node pointer during one
	// optimization pass (signature building is recursive and Estimate is
	// called O(2^n) times by the DP).
	sigs map[plan.Node]string
}

// signature returns Signature(n), memoized per node pointer.
func (e *Estimator) signature(n plan.Node) string {
	if s, ok := e.sigs[n]; ok {
		return s
	}
	s := Signature(n)
	if e.sigs == nil {
		e.sigs = map[plan.Node]string{}
	}
	e.sigs[n] = s
	return s
}

// Estimate returns the estimated output row count of a plan node.
func (e *Estimator) Estimate(n plan.Node) float64 {
	if e.FB != nil {
		if rows, ok := e.FB.Lookup(e.signature(n)); ok {
			return math.Max(1, rows)
		}
	}
	switch x := n.(type) {
	case *plan.Scan:
		base := float64(e.Cat.Stats(x.Table.Name).RowCount)
		if base < 1 {
			base = 1
		}
		return math.Max(1, base*e.selectivity(x.Pred, x))
	case *plan.Filter:
		return math.Max(1, e.Estimate(x.Child)*e.selectivity(x.Pred, x.Child))
	case *plan.Project, *plan.Rename:
		return e.Estimate(n.Children()[0])
	case *plan.Join:
		l := e.Estimate(x.Left)
		r := e.Estimate(x.Right)
		switch x.Type {
		case exec.JoinSemi:
			return math.Max(1, l*0.5)
		case exec.JoinAnti:
			return math.Max(1, l*0.5)
		default:
			if len(x.EquiLeft) == 0 {
				return l * r // cross or theta join
			}
			// Standard equi-join estimate: |L||R| / max(NDV).
			ndv := math.Max(e.keyNDV(x.Left, x.EquiLeft), e.keyNDV(x.Right, x.EquiRight))
			if ndv < 1 {
				ndv = math.Max(l, r)
			}
			sel := e.selectivity(x.Residual, x)
			return math.Max(1, l*r/ndv*sel)
		}
	case *plan.Agg:
		if len(x.GroupBy) == 0 {
			return 1
		}
		card := e.Estimate(x.Child)
		groups := 1.0
		for _, g := range x.GroupBy {
			groups *= e.exprNDV(x.Child, g)
		}
		return math.Max(1, math.Min(card, groups))
	case *plan.Sort:
		return e.Estimate(x.Child)
	case *plan.Limit:
		return math.Min(float64(x.N), e.Estimate(x.Child))
	case *plan.Distinct:
		return math.Max(1, e.Estimate(x.Child)/2)
	default:
		if ch := n.Children(); len(ch) == 1 {
			return e.Estimate(ch[0])
		}
		return 1000
	}
}

// keyNDV estimates the distinct count of a composite key.
func (e *Estimator) keyNDV(n plan.Node, keys []expr.Expr) float64 {
	ndv := 1.0
	for _, k := range keys {
		ndv *= e.exprNDV(n, k)
	}
	return math.Min(ndv, e.Estimate(n))
}

// exprNDV estimates the distinct values an expression takes over a node.
func (e *Estimator) exprNDV(n plan.Node, x expr.Expr) float64 {
	if c, ok := x.(*expr.Col); ok {
		if table, col, ok := e.resolveBaseColumn(n, c.Name); ok {
			if cs, exists := e.Cat.Stats(table).Cols[col]; exists && cs.NDV > 0 {
				return float64(cs.NDV)
			}
		}
	}
	// Fallback: a tenth of the input.
	return math.Max(1, e.Estimate(n)/10)
}

// resolveBaseColumn finds the base table and bare column name for a
// (possibly qualified) column reference in a subtree.
func (e *Estimator) resolveBaseColumn(n plan.Node, name string) (string, string, bool) {
	bare := strings.ToLower(name)
	if idx := strings.LastIndexByte(bare, '.'); idx >= 0 {
		bare = bare[idx+1:]
	}
	var table string
	plan.Walk(n, func(m plan.Node) {
		if sc, ok := m.(*plan.Scan); ok && table == "" {
			if sc.Table.Schema.Find(bare) >= 0 {
				table = sc.Table.Name
			}
		}
	})
	return table, bare, table != ""
}

// colStatsFor resolves a (possibly qualified) column reference against the
// base tables under scope and returns its column and table statistics.
func (e *Estimator) colStatsFor(scope plan.Node, name string) (*catalog.ColumnStats, *catalog.TableStats) {
	if scope == nil {
		return nil, nil
	}
	if table, bare, ok := e.resolveBaseColumn(scope, name); ok {
		ts := e.Cat.Stats(table)
		if cs, exists := ts.Cols[bare]; exists {
			return cs, ts
		}
	}
	return nil, nil
}

// selectivity estimates the fraction of rows a predicate keeps. The scope
// node (the predicate's input subtree) resolves column references to base-
// table statistics; nil scope disables stats-based refinement.
func (e *Estimator) selectivity(pred expr.Expr, scope plan.Node) float64 {
	if pred == nil {
		return 1
	}
	sel := 1.0
	// Range conjuncts on the same column form one interval: combining
	// their boundary fractions (upper mass − lower mass) instead of
	// multiplying them as independent predicates avoids the classic 2×
	// overestimate on date windows like `d >= a AND d < b`.
	type interval struct {
		lower, upper float64 // mass excluded below / included through
		nn           float64
	}
	ivals := map[string]*interval{}
	var cols []string
	for _, c := range expr.Conjuncts(pred) {
		key, isUpper, frac, nn, ok := e.rangeBound(c, scope)
		if !ok {
			sel *= e.atomSelectivity(c, scope)
			continue
		}
		iv := ivals[key]
		if iv == nil {
			iv = &interval{lower: 0, upper: 1, nn: nn}
			ivals[key] = iv
			cols = append(cols, key)
		}
		if isUpper {
			iv.upper = math.Min(iv.upper, frac)
		} else {
			iv.lower = math.Max(iv.lower, frac)
		}
	}
	// cols (not map order) keeps the product bit-identical across runs —
	// plan choice must be deterministic.
	for _, key := range cols {
		iv := ivals[key]
		sel *= clampSel(math.Max(0, iv.upper-iv.lower) * iv.nn)
	}
	if sel < 1e-9 {
		sel = 1e-9
	}
	return sel
}

// rangeBound decomposes a conjunct that is a histogram-estimable range
// comparison on one column into an interval boundary: upper bounds report
// the included mass below them, lower bounds the excluded mass below them.
func (e *Estimator) rangeBound(c expr.Expr, scope plan.Node) (key string, isUpper bool, frac, nn float64, ok bool) {
	x, isBin := c.(*expr.Bin)
	if !isBin {
		return "", false, 0, 0, false
	}
	switch x.Op {
	case expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
	default:
		return "", false, 0, 0, false
	}
	col, v, flipped, okc := colConst(x.L, x.R)
	if !okc || v.IsNull() {
		return "", false, 0, 0, false
	}
	cs, ts := e.colStatsFor(scope, col.Name)
	if cs == nil {
		return "", false, 0, 0, false
	}
	op := mirrorOp(x.Op, flipped)
	var f float64
	var have bool
	switch op {
	case expr.OpLt:
		f, have = cs.FracLT(v)
		isUpper = true
	case expr.OpLe:
		f, have = cs.FracLE(v)
		isUpper = true
	case expr.OpGt:
		f, have = cs.FracLE(v)
	case expr.OpGe:
		f, have = cs.FracLT(v)
	}
	if !have {
		return "", false, 0, 0, false
	}
	return strings.ToLower(col.Name), isUpper, f, notNullFrac(cs, ts), true
}

// mirrorOp flips a comparison operator when the constant was on the left.
func mirrorOp(op expr.BinOp, flipped bool) expr.BinOp {
	if !flipped {
		return op
	}
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	}
	return op
}

// colConst decomposes a binary comparison into (column, constant) when one
// side is a column reference and the other a literal; flipped reports the
// constant was on the left (so the operator must mirror).
func colConst(l, r expr.Expr) (col *expr.Col, v types.Value, flipped, ok bool) {
	if c, isCol := l.(*expr.Col); isCol {
		if k, isConst := r.(*expr.Const); isConst {
			return c, k.V, false, true
		}
	}
	if c, isCol := r.(*expr.Col); isCol {
		if k, isConst := l.(*expr.Const); isConst {
			return c, k.V, true, true
		}
	}
	return nil, types.Null, false, false
}

// notNullFrac is the fraction of rows with a non-null value in the column.
func notNullFrac(cs *catalog.ColumnStats, ts *catalog.TableStats) float64 {
	if ts == nil || ts.RowCount <= 0 || cs == nil {
		return 1
	}
	f := 1 - float64(cs.NullCount)/float64(ts.RowCount)
	if f < 0 {
		return 0
	}
	return f
}

func (e *Estimator) atomSelectivity(c expr.Expr, scope plan.Node) float64 {
	switch x := c.(type) {
	case *expr.Bin:
		switch x.Op {
		case expr.OpEq:
			// 1/NDV when the column is known.
			if col, v, _, ok := colConst(x.L, x.R); ok && !v.IsNull() {
				if cs, ts := e.colStatsFor(scope, col.Name); cs != nil && cs.NDV > 0 {
					return notNullFrac(cs, ts) / float64(cs.NDV)
				}
			}
			return 0.05
		case expr.OpNe:
			return 0.9
		case expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
			return e.rangeSelectivity(x, scope)
		case expr.OpOr:
			a := e.atomSelectivity(x.L, scope)
			b := e.atomSelectivity(x.R, scope)
			return math.Min(1, a+b-a*b)
		case expr.OpAnd:
			return e.atomSelectivity(x.L, scope) * e.atomSelectivity(x.R, scope)
		}
	case *expr.Between:
		if sel, ok := e.betweenSelectivity(x, scope); ok {
			return sel
		}
		if x.Negate {
			return 0.75
		}
		return 0.25
	case *expr.Like:
		return 0.1
	case *expr.InList:
		sel := math.Min(1, 0.05*float64(len(x.Vals)))
		if col, isCol := x.E.(*expr.Col); isCol {
			if cs, ts := e.colStatsFor(scope, col.Name); cs != nil && cs.NDV > 0 {
				sel = math.Min(1, notNullFrac(cs, ts)*float64(len(x.Vals))/float64(cs.NDV))
			}
		}
		if x.Negate {
			return 1 - sel
		}
		return sel
	case *expr.IsNull:
		frac := 0.05
		if col, isCol := x.E.(*expr.Col); isCol {
			if cs, ts := e.colStatsFor(scope, col.Name); cs != nil && ts != nil && ts.RowCount > 0 {
				frac = float64(cs.NullCount) / float64(ts.RowCount)
			}
		}
		if x.Negate {
			return 1 - frac
		}
		return frac
	case *expr.Not:
		return 1 - e.atomSelectivity(x.E, scope)
	}
	return 0.5
}

// rangeSelectivity estimates a single-column range comparison from the
// column's equi-depth histogram (min/max interpolation when no histogram
// exists), replacing the old magic 1/3 constant whenever statistics allow.
func (e *Estimator) rangeSelectivity(x *expr.Bin, scope plan.Node) float64 {
	const fallback = 1.0 / 3
	col, v, flipped, ok := colConst(x.L, x.R)
	if !ok || v.IsNull() {
		return fallback
	}
	cs, ts := e.colStatsFor(scope, col.Name)
	if cs == nil {
		return fallback
	}
	// const OP col  ≡  col OP' const with the comparison mirrored.
	op := mirrorOp(x.Op, flipped)
	var frac float64
	var have bool
	switch op {
	case expr.OpLt:
		frac, have = cs.FracLT(v)
	case expr.OpLe:
		frac, have = cs.FracLE(v)
	case expr.OpGt:
		if f, okf := cs.FracLE(v); okf {
			frac, have = 1-f, true
		}
	case expr.OpGe:
		if f, okf := cs.FracLT(v); okf {
			frac, have = 1-f, true
		}
	}
	if !have {
		return fallback
	}
	return clampSel(frac * notNullFrac(cs, ts))
}

// betweenSelectivity estimates col BETWEEN lo AND hi from the histogram.
func (e *Estimator) betweenSelectivity(x *expr.Between, scope plan.Node) (float64, bool) {
	col, isCol := x.E.(*expr.Col)
	if !isCol {
		return 0, false
	}
	loC, loOK := x.Lo.(*expr.Const)
	hiC, hiOK := x.Hi.(*expr.Const)
	if !loOK || !hiOK || loC.V.IsNull() || hiC.V.IsNull() {
		return 0, false
	}
	cs, ts := e.colStatsFor(scope, col.Name)
	if cs == nil {
		return 0, false
	}
	hi, ok1 := cs.FracLE(hiC.V)
	lo, ok2 := cs.FracLT(loC.V)
	if !ok1 || !ok2 {
		return 0, false
	}
	sel := clampSel((hi - lo) * notNullFrac(cs, ts))
	if x.Negate {
		return clampSel(1 - sel), true
	}
	return sel, true
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Optimize runs phase-1 transformations with default options: DPsize join
// reordering of inner-join clusters using the estimator, cost-based
// group-by pushdown, and join-distribution annotation.
func Optimize(root plan.Node, cat *catalog.Catalog) (plan.Node, error) {
	return OptimizeOpts(root, cat, Options{})
}

// OptimizeOpts is Optimize parameterized for a concrete cluster: the
// worker count scales the network cost terms and the feedback store
// supplies observed cardinalities from earlier queries.
func OptimizeOpts(root plan.Node, cat *catalog.Catalog, o Options) (plan.Node, error) {
	est := &Estimator{Cat: cat, FB: o.Feedback}
	out, err := rewriteJoins(root, est, o)
	if err != nil {
		return nil, err
	}
	// Cost-based group-by pushdown through joins (Section V).
	out = pushGroupByThroughJoins(out, est)
	// Reordering changes intermediate column order; re-resolve every
	// bound column reference by name.
	if err := plan.Rebind(out); err != nil {
		return nil, err
	}
	// Annotate each join with its modeled distribution strategy (shuffle
	// vs broadcast vs co-located) so the choice is visible in EXPLAIN and
	// golden plans; the cluster layer re-costs at exchange boundaries
	// with live distribution info and feedback before acting on it.
	annotateJoinDist(out, est, o)
	return out, nil
}

// rewriteJoins walks top-down; at the top of each maximal inner-join
// cluster it reorders the cluster with the DP enumerator.
func rewriteJoins(n plan.Node, est *Estimator, o Options) (plan.Node, error) {
	if j, ok := n.(*plan.Join); ok && j.Type == exec.JoinInner {
		reordered, err := reorderCluster(j, est, o)
		if err != nil {
			return nil, err
		}
		n = reordered
	}
	// Recurse into children that are not part of a handled cluster.
	switch x := n.(type) {
	case *plan.Filter:
		c, err := rewriteJoins(x.Child, est, o)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Project:
		c, err := rewriteJoins(x.Child, est, o)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Agg:
		c, err := rewriteJoins(x.Child, est, o)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Sort:
		c, err := rewriteJoins(x.Child, est, o)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Limit:
		c, err := rewriteJoins(x.Child, est, o)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Distinct:
		c, err := rewriteJoins(x.Child, est, o)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Rename:
		c, err := rewriteJoins(x.Child, est, o)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Join:
		// Semi/anti joins (or an already-reordered inner cluster root):
		// recurse into both sides independently.
		l, err := rewriteJoins(x.Left, est, o)
		if err != nil {
			return nil, err
		}
		r, err := rewriteJoins(x.Right, est, o)
		if err != nil {
			return nil, err
		}
		x.Left, x.Right = l, r
	}
	return n, nil
}

// reorderCluster flattens a maximal inner-join cluster rooted at j into
// leaves + conditions and reassembles it in greedy order.
func reorderCluster(j *plan.Join, est *Estimator, o Options) (plan.Node, error) {
	var leaves []plan.Node
	var conds []expr.Expr
	var collect func(n plan.Node) bool
	collect = func(n plan.Node) bool {
		jn, ok := n.(*plan.Join)
		if !ok || jn.Type != exec.JoinInner {
			leaves = append(leaves, n)
			return true
		}
		collect(jn.Left)
		collect(jn.Right)
		for i := range jn.EquiLeft {
			conds = append(conds, &expr.Bin{Op: expr.OpEq,
				L: expr.Clone(jn.EquiLeft[i]), R: expr.Clone(jn.EquiRight[i])})
		}
		if jn.Residual != nil {
			conds = append(conds, expr.Clone(jn.Residual))
		}
		return true
	}
	collect(j)
	if len(leaves) <= 2 {
		// Nothing to reorder; but recurse into leaves for nested clusters.
		for i, l := range leaves {
			nl, err := rewriteJoins(l, est, o)
			if err != nil {
				return nil, err
			}
			leaves[i] = nl
		}
		return plan.AssembleJoins(leaves, conds)
	}
	for i, l := range leaves {
		nl, err := rewriteJoins(l, est, o)
		if err != nil {
			return nil, err
		}
		leaves[i] = nl
	}
	conds = augmentWithEquivalences(conds)
	order := dpOrder(leaves, conds, est, o)
	if order == nil {
		order = greedyOrder(leaves, conds, est)
	}
	return plan.AssembleJoins(order, conds)
}

// augmentWithEquivalences computes attribute equivalence classes from the
// equality conditions (Section V phase 1) and adds the derived transitive
// equalities, so the greedy enumerator can join any two relations whose
// columns share a class (a=b ∧ b=c lets a⋈c directly). Redundant derived
// conditions are harmless residual filters.
func augmentWithEquivalences(conds []expr.Expr) []expr.Expr {
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	colName := func(e expr.Expr) (string, bool) {
		c, ok := e.(*expr.Col)
		if !ok || c.Name == "" {
			return "", false
		}
		return strings.ToLower(c.Name), true
	}
	type member struct {
		name string
		ref  *expr.Col
	}
	members := map[string]member{}
	for _, c := range conds {
		b, ok := c.(*expr.Bin)
		if !ok || b.Op != expr.OpEq {
			continue
		}
		ln, lok := colName(b.L)
		rn, rok := colName(b.R)
		if !lok || !rok {
			continue
		}
		union(ln, rn)
		members[ln] = member{name: ln, ref: b.L.(*expr.Col)}
		members[rn] = member{name: rn, ref: b.R.(*expr.Col)}
	}
	// Group members per class root.
	classes := map[string][]member{}
	for _, m := range members {
		root := find(m.name)
		classes[root] = append(classes[root], m)
	}
	existing := map[string]bool{}
	for _, c := range conds {
		existing[c.String()] = true
	}
	out := append([]expr.Expr(nil), conds...)
	// Iterate classes in sorted-root order: map order would emit the
	// derived conditions in a different sequence each run, and condition
	// order must be deterministic (it decides conjunct order in assembled
	// joins and breaks exact cost ties in enumeration).
	roots := make([]string, 0, len(classes))
	for root := range classes {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for _, root := range roots {
		ms := classes[root]
		sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				cand := &expr.Bin{Op: expr.OpEq,
					L: &expr.Col{Index: -1, Name: ms[i].ref.Name},
					R: &expr.Col{Index: -1, Name: ms[j].ref.Name}}
				rev := &expr.Bin{Op: expr.OpEq, L: cand.R, R: cand.L}
				if existing[cand.String()] || existing[rev.String()] {
					continue
				}
				existing[cand.String()] = true
				out = append(out, cand)
			}
		}
	}
	return out
}

// connected reports whether cond links something in the used set with rel.
func connected(cond expr.Expr, used []plan.Node, rel plan.Node) bool {
	usedSchema := used[0].Schema()
	for _, u := range used[1:] {
		usedSchema = usedSchema.Concat(u.Schema())
	}
	joined := usedSchema.Concat(rel.Schema())
	ok := true
	for _, c := range expr.Columns(cond) {
		if joined.Find(c) < 0 {
			ok = false
		}
	}
	if !ok {
		return false
	}
	// Must reference both sides.
	refUsed, refRel := false, false
	for _, c := range expr.Columns(cond) {
		if rel.Schema().Find(c) >= 0 {
			refRel = true
		}
		if usedSchema.Find(c) >= 0 {
			refUsed = true
		}
	}
	return refUsed && refRel
}

// greedyOrder implements the paper's greedy join enumeration: start from
// the smallest relation, repeatedly joining the connected relation that
// minimizes the estimated intermediate cardinality.
func greedyOrder(leaves []plan.Node, conds []expr.Expr, est *Estimator) []plan.Node {
	remaining := append([]plan.Node(nil), leaves...)
	// Seed: smallest estimated leaf.
	best := 0
	for i := 1; i < len(remaining); i++ {
		if est.Estimate(remaining[i]) < est.Estimate(remaining[best]) {
			best = i
		}
	}
	order := []plan.Node{remaining[best]}
	remaining = append(remaining[:best], remaining[best+1:]...)
	currentCard := est.Estimate(order[0])

	for len(remaining) > 0 {
		bestIdx := -1
		bestCard := math.Inf(1)
		for i, rel := range remaining {
			isConnected := false
			for _, c := range conds {
				if connected(c, order, rel) {
					isConnected = true
					break
				}
			}
			relCard := est.Estimate(rel)
			var resultCard float64
			if isConnected {
				// Join through a key: |cur|*|rel|/max(|cur|,|rel|).
				resultCard = currentCard * relCard / math.Max(currentCard, relCard)
			} else {
				resultCard = currentCard * relCard * 1e6 // punish cross joins
			}
			if resultCard < bestCard {
				bestCard = resultCard
				bestIdx = i
			}
		}
		order = append(order, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		currentCard = math.Max(1, bestCard)
		if currentCard > 1e30 {
			currentCard = 1e30
		}
	}
	return order
}
