// Package opt implements HRDBMS's phase-1 global optimization (Section V):
// statistics-based cardinality estimation and greedy join enumeration.
// (Selection/projection pushdown and decorrelation happen during plan
// building; the dataflow conversion and dataflow optimization phases —
// operator distribution, shuffle insertion and elimination, pre-aggregation
// splitting — live in the cluster layer, which owns node placement.)
package opt

import (
	"math"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
)

// Estimator computes cardinalities from catalog statistics.
type Estimator struct {
	Cat *catalog.Catalog
}

// Estimate returns the estimated output row count of a plan node.
func (e *Estimator) Estimate(n plan.Node) float64 {
	switch x := n.(type) {
	case *plan.Scan:
		base := float64(e.Cat.Stats(x.Table.Name).RowCount)
		if base < 1 {
			base = 1
		}
		return math.Max(1, base*e.selectivity(x.Pred, x.Table.Name))
	case *plan.Filter:
		return math.Max(1, e.Estimate(x.Child)*e.selectivity(x.Pred, ""))
	case *plan.Project, *plan.Rename:
		return e.Estimate(n.Children()[0])
	case *plan.Join:
		l := e.Estimate(x.Left)
		r := e.Estimate(x.Right)
		switch x.Type {
		case exec.JoinSemi:
			return math.Max(1, l*0.5)
		case exec.JoinAnti:
			return math.Max(1, l*0.5)
		default:
			if len(x.EquiLeft) == 0 {
				return l * r // cross or theta join
			}
			// Standard equi-join estimate: |L||R| / max(NDV).
			ndv := math.Max(e.keyNDV(x.Left, x.EquiLeft), e.keyNDV(x.Right, x.EquiRight))
			if ndv < 1 {
				ndv = math.Max(l, r)
			}
			sel := e.selectivity(x.Residual, "")
			return math.Max(1, l*r/ndv*sel)
		}
	case *plan.Agg:
		if len(x.GroupBy) == 0 {
			return 1
		}
		card := e.Estimate(x.Child)
		groups := 1.0
		for _, g := range x.GroupBy {
			groups *= e.exprNDV(x.Child, g)
		}
		return math.Max(1, math.Min(card, groups))
	case *plan.Sort:
		return e.Estimate(x.Child)
	case *plan.Limit:
		return math.Min(float64(x.N), e.Estimate(x.Child))
	case *plan.Distinct:
		return math.Max(1, e.Estimate(x.Child)/2)
	default:
		if ch := n.Children(); len(ch) == 1 {
			return e.Estimate(ch[0])
		}
		return 1000
	}
}

// keyNDV estimates the distinct count of a composite key.
func (e *Estimator) keyNDV(n plan.Node, keys []expr.Expr) float64 {
	ndv := 1.0
	for _, k := range keys {
		ndv *= e.exprNDV(n, k)
	}
	return math.Min(ndv, e.Estimate(n))
}

// exprNDV estimates the distinct values an expression takes over a node.
func (e *Estimator) exprNDV(n plan.Node, x expr.Expr) float64 {
	if c, ok := x.(*expr.Col); ok {
		if table, col, ok := e.resolveBaseColumn(n, c.Name); ok {
			if cs, exists := e.Cat.Stats(table).Cols[col]; exists && cs.NDV > 0 {
				return float64(cs.NDV)
			}
		}
	}
	// Fallback: a tenth of the input.
	return math.Max(1, e.Estimate(n)/10)
}

// resolveBaseColumn finds the base table and bare column name for a
// (possibly qualified) column reference in a subtree.
func (e *Estimator) resolveBaseColumn(n plan.Node, name string) (string, string, bool) {
	bare := strings.ToLower(name)
	if idx := strings.LastIndexByte(bare, '.'); idx >= 0 {
		bare = bare[idx+1:]
	}
	var table string
	plan.Walk(n, func(m plan.Node) {
		if sc, ok := m.(*plan.Scan); ok && table == "" {
			if sc.Table.Schema.Find(bare) >= 0 {
				table = sc.Table.Name
			}
		}
	})
	return table, bare, table != ""
}

// selectivity estimates the fraction of rows a predicate keeps.
func (e *Estimator) selectivity(pred expr.Expr, table string) float64 {
	if pred == nil {
		return 1
	}
	sel := 1.0
	for _, c := range expr.Conjuncts(pred) {
		sel *= e.atomSelectivity(c, table)
	}
	if sel < 1e-9 {
		sel = 1e-9
	}
	return sel
}

func (e *Estimator) atomSelectivity(c expr.Expr, table string) float64 {
	switch x := c.(type) {
	case *expr.Bin:
		switch x.Op {
		case expr.OpEq:
			// 1/NDV when the column is known.
			if col, ok := x.L.(*expr.Col); ok && table != "" {
				bare := strings.ToLower(col.Name)
				if idx := strings.LastIndexByte(bare, '.'); idx >= 0 {
					bare = bare[idx+1:]
				}
				if cs, exists := e.Cat.Stats(table).Cols[bare]; exists && cs.NDV > 0 {
					return 1 / float64(cs.NDV)
				}
			}
			return 0.05
		case expr.OpNe:
			return 0.9
		case expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
			return 1.0 / 3
		case expr.OpOr:
			a := e.atomSelectivity(x.L, table)
			b := e.atomSelectivity(x.R, table)
			return math.Min(1, a+b-a*b)
		case expr.OpAnd:
			return e.atomSelectivity(x.L, table) * e.atomSelectivity(x.R, table)
		}
	case *expr.Between:
		return 0.25
	case *expr.Like:
		return 0.1
	case *expr.InList:
		return math.Min(1, 0.05*float64(len(x.Vals)))
	case *expr.IsNull:
		if x.Negate {
			return 0.95
		}
		return 0.05
	case *expr.Not:
		return 1 - e.atomSelectivity(x.E, table)
	}
	return 0.5
}

// Optimize runs phase-1 transformations: greedy join reordering of inner-
// join clusters using the estimator.
func Optimize(root plan.Node, cat *catalog.Catalog) (plan.Node, error) {
	est := &Estimator{Cat: cat}
	out, err := rewriteJoins(root, est)
	if err != nil {
		return nil, err
	}
	// Cost-based group-by pushdown through joins (Section V).
	out = pushGroupByThroughJoins(out, est)
	// Reordering changes intermediate column order; re-resolve every
	// bound column reference by name.
	if err := plan.Rebind(out); err != nil {
		return nil, err
	}
	return out, nil
}

// rewriteJoins walks top-down; at the top of each maximal inner-join
// cluster it reorders the cluster greedily.
func rewriteJoins(n plan.Node, est *Estimator) (plan.Node, error) {
	if j, ok := n.(*plan.Join); ok && j.Type == exec.JoinInner {
		reordered, err := reorderCluster(j, est)
		if err != nil {
			return nil, err
		}
		n = reordered
	}
	// Recurse into children that are not part of a handled cluster.
	switch x := n.(type) {
	case *plan.Filter:
		c, err := rewriteJoins(x.Child, est)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Project:
		c, err := rewriteJoins(x.Child, est)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Agg:
		c, err := rewriteJoins(x.Child, est)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Sort:
		c, err := rewriteJoins(x.Child, est)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Limit:
		c, err := rewriteJoins(x.Child, est)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Distinct:
		c, err := rewriteJoins(x.Child, est)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Rename:
		c, err := rewriteJoins(x.Child, est)
		if err != nil {
			return nil, err
		}
		x.Child = c
	case *plan.Join:
		// Semi/anti joins (or an already-reordered inner cluster root):
		// recurse into both sides independently.
		l, err := rewriteJoins(x.Left, est)
		if err != nil {
			return nil, err
		}
		r, err := rewriteJoins(x.Right, est)
		if err != nil {
			return nil, err
		}
		x.Left, x.Right = l, r
	}
	return n, nil
}

// reorderCluster flattens a maximal inner-join cluster rooted at j into
// leaves + conditions and reassembles it in greedy order.
func reorderCluster(j *plan.Join, est *Estimator) (plan.Node, error) {
	var leaves []plan.Node
	var conds []expr.Expr
	var collect func(n plan.Node) bool
	collect = func(n plan.Node) bool {
		jn, ok := n.(*plan.Join)
		if !ok || jn.Type != exec.JoinInner {
			leaves = append(leaves, n)
			return true
		}
		collect(jn.Left)
		collect(jn.Right)
		for i := range jn.EquiLeft {
			conds = append(conds, &expr.Bin{Op: expr.OpEq,
				L: expr.Clone(jn.EquiLeft[i]), R: expr.Clone(jn.EquiRight[i])})
		}
		if jn.Residual != nil {
			conds = append(conds, expr.Clone(jn.Residual))
		}
		return true
	}
	collect(j)
	if len(leaves) <= 2 {
		// Nothing to reorder; but recurse into leaves for nested clusters.
		for i, l := range leaves {
			nl, err := rewriteJoins(l, est)
			if err != nil {
				return nil, err
			}
			leaves[i] = nl
		}
		return plan.AssembleJoins(leaves, conds)
	}
	for i, l := range leaves {
		nl, err := rewriteJoins(l, est)
		if err != nil {
			return nil, err
		}
		leaves[i] = nl
	}
	conds = augmentWithEquivalences(conds)
	order := greedyOrder(leaves, conds, est)
	return plan.AssembleJoins(order, conds)
}

// augmentWithEquivalences computes attribute equivalence classes from the
// equality conditions (Section V phase 1) and adds the derived transitive
// equalities, so the greedy enumerator can join any two relations whose
// columns share a class (a=b ∧ b=c lets a⋈c directly). Redundant derived
// conditions are harmless residual filters.
func augmentWithEquivalences(conds []expr.Expr) []expr.Expr {
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	colName := func(e expr.Expr) (string, bool) {
		c, ok := e.(*expr.Col)
		if !ok || c.Name == "" {
			return "", false
		}
		return strings.ToLower(c.Name), true
	}
	type member struct {
		name string
		ref  *expr.Col
	}
	members := map[string]member{}
	for _, c := range conds {
		b, ok := c.(*expr.Bin)
		if !ok || b.Op != expr.OpEq {
			continue
		}
		ln, lok := colName(b.L)
		rn, rok := colName(b.R)
		if !lok || !rok {
			continue
		}
		union(ln, rn)
		members[ln] = member{name: ln, ref: b.L.(*expr.Col)}
		members[rn] = member{name: rn, ref: b.R.(*expr.Col)}
	}
	// Group members per class root.
	classes := map[string][]member{}
	for _, m := range members {
		root := find(m.name)
		classes[root] = append(classes[root], m)
	}
	existing := map[string]bool{}
	for _, c := range conds {
		existing[c.String()] = true
	}
	out := append([]expr.Expr(nil), conds...)
	for _, ms := range classes {
		sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				cand := &expr.Bin{Op: expr.OpEq,
					L: &expr.Col{Index: -1, Name: ms[i].ref.Name},
					R: &expr.Col{Index: -1, Name: ms[j].ref.Name}}
				rev := &expr.Bin{Op: expr.OpEq, L: cand.R, R: cand.L}
				if existing[cand.String()] || existing[rev.String()] {
					continue
				}
				existing[cand.String()] = true
				out = append(out, cand)
			}
		}
	}
	return out
}

// connected reports whether cond links something in the used set with rel.
func connected(cond expr.Expr, used []plan.Node, rel plan.Node) bool {
	usedSchema := used[0].Schema()
	for _, u := range used[1:] {
		usedSchema = usedSchema.Concat(u.Schema())
	}
	joined := usedSchema.Concat(rel.Schema())
	ok := true
	for _, c := range expr.Columns(cond) {
		if joined.Find(c) < 0 {
			ok = false
		}
	}
	if !ok {
		return false
	}
	// Must reference both sides.
	refUsed, refRel := false, false
	for _, c := range expr.Columns(cond) {
		if rel.Schema().Find(c) >= 0 {
			refRel = true
		}
		if usedSchema.Find(c) >= 0 {
			refUsed = true
		}
	}
	return refUsed && refRel
}

// greedyOrder implements the paper's greedy join enumeration: start from
// the smallest relation, repeatedly joining the connected relation that
// minimizes the estimated intermediate cardinality.
func greedyOrder(leaves []plan.Node, conds []expr.Expr, est *Estimator) []plan.Node {
	remaining := append([]plan.Node(nil), leaves...)
	// Seed: smallest estimated leaf.
	best := 0
	for i := 1; i < len(remaining); i++ {
		if est.Estimate(remaining[i]) < est.Estimate(remaining[best]) {
			best = i
		}
	}
	order := []plan.Node{remaining[best]}
	remaining = append(remaining[:best], remaining[best+1:]...)
	currentCard := est.Estimate(order[0])

	for len(remaining) > 0 {
		bestIdx := -1
		bestCard := math.Inf(1)
		for i, rel := range remaining {
			isConnected := false
			for _, c := range conds {
				if connected(c, order, rel) {
					isConnected = true
					break
				}
			}
			relCard := est.Estimate(rel)
			var resultCard float64
			if isConnected {
				// Join through a key: |cur|*|rel|/max(|cur|,|rel|).
				resultCard = currentCard * relCard / math.Max(currentCard, relCard)
			} else {
				resultCard = currentCard * relCard * 1e6 // punish cross joins
			}
			if resultCard < bestCard {
				bestCard = resultCard
				bestIdx = i
			}
		}
		order = append(order, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		currentCard = math.Max(1, bestCard)
		if currentCard > 1e30 {
			currentCard = 1e30
		}
	}
	return order
}
