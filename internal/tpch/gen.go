// Package tpch provides the TPC-H workload the paper evaluates with: table
// schemas (partitioned the way a shared-nothing deployment would), a
// deterministic dbgen-style data generator, and the 21 of 22 benchmark
// queries the paper runs (Q13's outer join is skipped, as in the paper).
//
// The generator follows dbgen's row counts and value domains (dates
// 1992-01-01..1998-12-31, quantities 1..50, discounts 0..0.10, the fixed
// vocabularies for flags, modes, priorities, segments, brands, types), so
// query selectivities and group counts track the benchmark's shape at any
// scale factor.
package tpch

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/types"
)

// Sizes returns dbgen's base-table cardinalities at a scale factor.
type Sizes struct {
	Supplier, Part, PartSupp, Customer, Orders int
}

// SizesFor computes table sizes at the scale factor.
func SizesFor(sf float64) Sizes {
	atLeast := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	return Sizes{
		Supplier: atLeast(int(10000 * sf)),
		Part:     atLeast(int(200000 * sf)),
		Customer: atLeast(int(150000 * sf)),
		Orders:   atLeast(int(1500000 * sf)),
	}
}

// Data holds generated rows per table.
type Data struct {
	SF float64
	Region, Nation, Supplier, Part, PartSupp,
	Customer, Orders, Lineitem []types.Row
}

// Vocabularies (subset of dbgen's).
var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []struct {
		name   string
		region int
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
		"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG",
		"JUMBO BOX", "JUMBO CASE", "WRAP BAG", "WRAP BOX"}
	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	nameNoun = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan",
		"green", "forest", "gainsboro", "ghost", "goldenrod", "honeydew"}
	commentWords = []string{"carefully", "quickly", "furiously", "slyly", "blithely",
		"deposits", "requests", "packages", "accounts", "instructions", "foxes",
		"theodolites", "pinto", "beans", "ideas", "dependencies", "platelets",
		"asymptotes", "somas", "dugouts", "sauternes", "warhorses"}
)

const (
	epochStart = "1992-01-01"
	epochDays  = 2556 // 1992-01-01 .. 1998-12-31
)

var startDay = types.MustDate(epochStart).I

// Generate produces a deterministic TPC-H dataset at the scale factor.
func Generate(sf float64, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	sz := SizesFor(sf)
	d := &Data{SF: sf}

	comment := func(n int) string {
		words := make([]string, n)
		for i := range words {
			words[i] = commentWords[rng.Intn(len(commentWords))]
		}
		return strings.Join(words, " ")
	}

	for i, r := range regions {
		d.Region = append(d.Region, types.Row{
			types.NewInt(int64(i)), types.NewString(r), types.NewString(comment(4)),
		})
	}
	for i, n := range nations {
		d.Nation = append(d.Nation, types.Row{
			types.NewInt(int64(i)), types.NewString(n.name),
			types.NewInt(int64(n.region)), types.NewString(comment(4)),
		})
	}
	for i := 0; i < sz.Supplier; i++ {
		cmt := comment(6)
		// dbgen plants "Customer...Complaints" in ~5 per 10k suppliers (Q16).
		if rng.Intn(2000) == 0 {
			cmt += " Customer Complaints " + comment(2)
		}
		d.Supplier = append(d.Supplier, types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("Supplier#%09d", i+1)),
			types.NewString(comment(2)),
			types.NewInt(int64(rng.Intn(len(nations)))),
			types.NewString(phone(rng)),
			types.NewFloat(float64(rng.Intn(1999900))/100 - 999.99),
			types.NewString(cmt),
		})
	}
	for i := 0; i < sz.Part; i++ {
		name := nameNoun[rng.Intn(len(nameNoun))] + " " + nameNoun[rng.Intn(len(nameNoun))] + " " +
			nameNoun[rng.Intn(len(nameNoun))]
		brand := fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1)
		ptype := typeSyl1[rng.Intn(len(typeSyl1))] + " " + typeSyl2[rng.Intn(len(typeSyl2))] + " " +
			typeSyl3[rng.Intn(len(typeSyl3))]
		d.Part = append(d.Part, types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(name),
			types.NewString(fmt.Sprintf("Manufacturer#%d", rng.Intn(5)+1)),
			types.NewString(brand),
			types.NewString(ptype),
			types.NewInt(int64(rng.Intn(50) + 1)),
			types.NewString(containers[rng.Intn(len(containers))]),
			types.NewFloat(900 + float64((i+1)%1000)/10),
			types.NewString(comment(3)),
		})
		// 4 partsupp rows per part.
		for s := 0; s < 4; s++ {
			supp := (i+s*(sz.Supplier/4+1))%sz.Supplier + 1
			d.PartSupp = append(d.PartSupp, types.Row{
				types.NewInt(int64(i + 1)),
				types.NewInt(int64(supp)),
				types.NewInt(int64(rng.Intn(9999) + 1)),
				types.NewFloat(float64(rng.Intn(99900)+100) / 100),
				types.NewString(comment(8)),
			})
		}
	}
	for i := 0; i < sz.Customer; i++ {
		cmt := comment(7)
		if rng.Intn(40) == 0 {
			cmt += " special requests " + comment(2)
		}
		d.Customer = append(d.Customer, types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("Customer#%09d", i+1)),
			types.NewString(comment(2)),
			types.NewInt(int64(rng.Intn(len(nations)))),
			types.NewString(phone(rng)),
			types.NewFloat(float64(rng.Intn(1999900))/100 - 999.99),
			types.NewString(segments[rng.Intn(len(segments))]),
			types.NewString(cmt),
		})
	}
	lineNum := 0
	for i := 0; i < sz.Orders; i++ {
		okey := int64(i + 1)
		cust := int64(rng.Intn(sz.Customer) + 1)
		oDate := startDay + int64(rng.Intn(epochDays-151))
		nLines := rng.Intn(6) + 1
		var total float64
		status := "O"
		finished := 0
		var lines []types.Row
		for l := 0; l < nLines; l++ {
			partKey := int64(rng.Intn(sz.Part) + 1)
			suppKey := int64(rng.Intn(sz.Supplier) + 1)
			qty := float64(rng.Intn(50) + 1)
			price := (900 + float64(partKey%1000)/10) * qty / 10
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			shipDate := oDate + int64(rng.Intn(121)+1)
			commitDate := oDate + int64(rng.Intn(91)+30)
			receiptDate := shipDate + int64(rng.Intn(30)+1)
			retFlag := "N"
			lineStatus := "O"
			if receiptDate <= startDay+int64(epochDays)-170 {
				lineStatus = "F"
				finished++
				if rng.Intn(2) == 0 {
					retFlag = []string{"R", "A"}[rng.Intn(2)]
				}
			}
			total += price * (1 + tax) * (1 - disc)
			lineNum++
			lines = append(lines, types.Row{
				types.NewInt(okey),
				types.NewInt(partKey),
				types.NewInt(suppKey),
				types.NewInt(int64(l + 1)),
				types.NewFloat(qty),
				types.NewFloat(price),
				types.NewFloat(disc),
				types.NewFloat(tax),
				types.NewString(retFlag),
				types.NewString(lineStatus),
				types.NewDate(shipDate),
				types.NewDate(commitDate),
				types.NewDate(receiptDate),
				types.NewString(instructs[rng.Intn(len(instructs))]),
				types.NewString(shipModes[rng.Intn(len(shipModes))]),
				types.NewString(comment(4)),
			})
		}
		if finished == nLines {
			status = "F"
		} else if finished > 0 {
			status = "P"
		}
		d.Orders = append(d.Orders, types.Row{
			types.NewInt(okey),
			types.NewInt(cust),
			types.NewString(status),
			types.NewFloat(total),
			types.NewDate(oDate),
			types.NewString(priorities[rng.Intn(len(priorities))]),
			types.NewString(fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1)),
			types.NewInt(0),
			types.NewString(comment(5)),
		})
		d.Lineitem = append(d.Lineitem, lines...)
	}
	return d
}

func phone(rng *rand.Rand) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", rng.Intn(25)+10, rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
}

// Tables returns the generated rows keyed by table name.
func (d *Data) Tables() map[string][]types.Row {
	return map[string][]types.Row{
		"region":   d.Region,
		"nation":   d.Nation,
		"supplier": d.Supplier,
		"part":     d.Part,
		"partsupp": d.PartSupp,
		"customer": d.Customer,
		"orders":   d.Orders,
		"lineitem": d.Lineitem,
	}
}

// TotalRows counts all generated rows.
func (d *Data) TotalRows() int {
	n := 0
	for _, rows := range d.Tables() {
		n += len(rows)
	}
	return n
}

// TotalBytes estimates the dataset's encoded size.
func (d *Data) TotalBytes() int64 {
	var n int64
	for _, rows := range d.Tables() {
		for _, r := range rows {
			n += int64(types.RowEncodedSize(r))
		}
	}
	return n
}
