package tpch

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/plan"
	"repro/internal/sqlparse"
)

var updatePlans = flag.Bool("update", false, "rewrite testdata/plans golden files with current optimizer output")

// TestGoldenPlans pins the optimized plan of every TPC-H query at SF0.01,
// seed 20260706, 4 workers. The golden files capture everything the
// cost-based optimizer decides — join order from DP enumeration, the
// shuffle-vs-broadcast dist= annotation per join, predicate pushdown, and
// group-by placement — so any change to statistics, costing, or enumeration
// shows up as a reviewable plan diff instead of a silent regression.
// Regenerate intentionally with:
//
//	go test ./internal/tpch -run TestGoldenPlans -update
func TestGoldenPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H stats build skipped in -short mode")
	}
	c, _ := loadedCluster(t, 4, 0.01)
	if *updatePlans {
		if err := os.MkdirAll(filepath.Join("testdata", "plans"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	queries := Queries()
	for _, qid := range QueryIDs() {
		sql := queries[qid]
		t.Run(qid, func(t *testing.T) {
			sel, err := sqlparse.ParseSelect(sql)
			if err != nil {
				t.Fatal(err)
			}
			node, err := c.Plan(sel)
			if err != nil {
				t.Fatal(err)
			}
			got := plan.Explain(node)
			path := filepath.Join("testdata", "plans", qid+".txt")
			if *updatePlans {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden plan (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan drift for %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
					qid, got, string(want))
			}
		})
	}
}
