package tpch

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

func TestGeneratorDeterministicAndSized(t *testing.T) {
	d1 := Generate(0.001, 42)
	d2 := Generate(0.001, 42)
	if d1.TotalRows() != d2.TotalRows() {
		t.Fatal("generator not deterministic in row count")
	}
	for tbl, rows := range d1.Tables() {
		other := d2.Tables()[tbl]
		for i := range rows {
			if rows[i].String() != other[i].String() {
				t.Fatalf("%s row %d differs between runs", tbl, i)
			}
		}
	}
	sz := SizesFor(0.001)
	if len(d1.Orders) != sz.Orders || len(d1.Customer) != sz.Customer {
		t.Errorf("sizes: orders=%d customer=%d", len(d1.Orders), len(d1.Customer))
	}
	if len(d1.Region) != 5 || len(d1.Nation) != 25 {
		t.Errorf("fixed tables: %d regions, %d nations", len(d1.Region), len(d1.Nation))
	}
	if len(d1.PartSupp) != 4*len(d1.Part) {
		t.Errorf("partsupp = %d, want 4 per part", len(d1.PartSupp))
	}
	// Lineitems reference valid orders.
	if len(d1.Lineitem) < len(d1.Orders) {
		t.Errorf("lineitem = %d < orders = %d", len(d1.Lineitem), len(d1.Orders))
	}
}

func TestGeneratorDomains(t *testing.T) {
	d := Generate(0.001, 7)
	lo, hi := types.MustDate("1992-01-01"), types.MustDate("1999-01-01")
	for _, r := range d.Lineitem {
		qty := r[4].Float()
		if qty < 1 || qty > 50 {
			t.Fatalf("quantity %v out of range", qty)
		}
		disc := r[6].Float()
		if disc < 0 || disc > 0.10 {
			t.Fatalf("discount %v out of range", disc)
		}
		ship := r[10]
		if types.Compare(ship, lo) < 0 || types.Compare(ship, hi) > 0 {
			t.Fatalf("shipdate %v out of range", ship)
		}
		flag := r[8].Str()
		if flag != "N" && flag != "R" && flag != "A" {
			t.Fatalf("returnflag %q", flag)
		}
	}
}

// loadedCluster builds a cluster with TPC-H loaded at the scale factor.
func loadedCluster(t *testing.T, workers int, sf float64) (*cluster.Cluster, *Data) {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		NumWorkers: workers,
		BaseDir:    t.TempDir(),
		PageSize:   32 * 1024,
		Nmax:       3,
		Profile:    cluster.HRDBMSProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for _, ddl := range DDL() {
		if _, err := c.ExecSQL(ddl); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}
	d := Generate(sf, 20260706)
	for tbl, rows := range d.Tables() {
		if _, err := c.Load(tbl, rows); err != nil {
			t.Fatalf("load %s: %v", tbl, err)
		}
	}
	return c, d
}

func rowKey(r types.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		if v.K == types.KindFloat {
			parts[i] = strconv.FormatFloat(v.F, 'g', 9, 64)
		} else {
			parts[i] = v.String()
		}
	}
	return strings.Join(parts, "\t")
}

// TestAllQueriesDistributedMatchReference is the correctness anchor of the
// whole reproduction: every one of the paper's 21 TPC-H queries must
// produce identical results distributed (shuffles, co-location, tree
// aggregation, 4 workers) and single-node.
func TestAllQueriesDistributedMatchReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-H suite skipped in -short mode")
	}
	c, d := loadedCluster(t, 4, 0.002)
	prov := &plan.MemProvider{Cat: c.Catalog(), Rows: d.Tables()}
	nonEmpty := 0
	for _, qid := range QueryIDs() {
		sql := Queries()[qid]
		res, err := c.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s distributed: %v", qid, err)
		}
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatalf("%s parse: %v", qid, err)
		}
		node, err := plan.Build(sel, c.Catalog())
		if err != nil {
			t.Fatalf("%s build: %v", qid, err)
		}
		op, err := plan.Execute(node, prov, exec.NewCtx(t.TempDir(), 0))
		if err != nil {
			t.Fatalf("%s reference: %v", qid, err)
		}
		want, err := exec.Collect(op)
		if err != nil {
			t.Fatalf("%s reference run: %v", qid, err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("%s: distributed %d rows, reference %d", qid, len(res.Rows), len(want))
		}
		got := make([]string, len(res.Rows))
		ref := make([]string, len(want))
		for i := range want {
			got[i] = rowKey(res.Rows[i])
			ref[i] = rowKey(want[i])
		}
		// Sorted queries must match in order... but ties in ORDER BY keys
		// may legally permute, so compare as multisets (the ordered checks
		// live in cluster tests).
		sort.Strings(got)
		sort.Strings(ref)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s row %d:\n got %s\nwant %s", qid, i, got[i], ref[i])
			}
		}
		if len(res.Rows) > 0 {
			nonEmpty++
		}
		t.Logf("%s: %d rows", qid, len(res.Rows))
	}
	if nonEmpty < 14 {
		t.Errorf("only %d of 21 queries returned rows — generator domains too sparse", nonEmpty)
	}
}

func TestQ1Shape(t *testing.T) {
	c, _ := loadedCluster(t, 2, 0.001)
	res, err := c.ExecSQL(Queries()["q1"])
	if err != nil {
		t.Fatal(err)
	}
	// Q1 groups by (returnflag, linestatus): at most 4 combinations exist
	// in dbgen data (A/F, N/F, N/O, R/F).
	if len(res.Rows) == 0 || len(res.Rows) > 4 {
		t.Fatalf("q1 groups = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[2].Float() <= 0 || r[9].Int() <= 0 {
			t.Errorf("q1 row with non-positive aggregates: %v", r)
		}
		// avg_qty must equal sum_qty / count.
		wantAvg := r[2].Float() / float64(r[9].Int())
		if diff := r[6].Float() - wantAvg; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("q1 avg inconsistent: %v vs %v", r[6].Float(), wantAvg)
		}
	}
}

func TestQ6SelectivityShape(t *testing.T) {
	c, d := loadedCluster(t, 2, 0.001)
	res, err := c.ExecSQL(Queries()["q6"])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("q6 rows = %d", len(res.Rows))
	}
	// Q6 filters a year + narrow discount band + quantity: must be a small
	// fraction of total lineitem revenue.
	var total float64
	for _, l := range d.Lineitem {
		total += l[5].Float() * l[6].Float()
	}
	if !res.Rows[0][0].IsNull() && res.Rows[0][0].Float() > total*0.2 {
		t.Errorf("q6 revenue %v suspiciously large vs %v", res.Rows[0][0].Float(), total)
	}
}

// TestColumnarTPCH runs scan-heavy queries against a COLUMNAR lineitem —
// the storage the paper used for both systems in the Q1 discussion.
func TestColumnarTPCH(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		NumWorkers: 3, BaseDir: t.TempDir(), PageSize: 16 * 1024,
		Nmax: 3, Profile: cluster.HRDBMSProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The schema DDL already makes the two scan-heavy tables COLUMNAR.
	for _, ddl := range DDL() {
		if !strings.Contains(ddl, "COLUMNAR") &&
			(strings.Contains(ddl, "CREATE TABLE lineitem") || strings.Contains(ddl, "CREATE TABLE orders")) {
			t.Fatal("lineitem/orders DDL lost the COLUMNAR storage clause")
		}
		if _, err := c.ExecSQL(ddl); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}
	d := Generate(0.001, 20260706)
	for tbl, rows := range d.Tables() {
		if _, err := c.Load(tbl, rows); err != nil {
			t.Fatalf("load %s: %v", tbl, err)
		}
	}
	prov := &plan.MemProvider{Cat: c.Catalog(), Rows: d.Tables()}
	for _, qid := range []string{"q1", "q3", "q6", "q12", "q18"} {
		sql := Queries()[qid]
		res, err := c.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s columnar: %v", qid, err)
		}
		sel, _ := sqlparse.ParseSelect(sql)
		node, err := plan.Build(sel, c.Catalog())
		if err != nil {
			t.Fatal(err)
		}
		op, err := plan.Execute(node, prov, exec.NewCtx(t.TempDir(), 0))
		if err != nil {
			t.Fatal(err)
		}
		want, err := exec.Collect(op)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("%s columnar: %d rows, reference %d", qid, len(res.Rows), len(want))
		}
		got := make([]string, len(res.Rows))
		ref := make([]string, len(want))
		for i := range want {
			got[i] = rowKey(res.Rows[i])
			ref[i] = rowKey(want[i])
		}
		sort.Strings(got)
		sort.Strings(ref)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s columnar row %d:\n got %s\nwant %s", qid, i, got[i], ref[i])
			}
		}
	}
}
