package tpch

// DDL returns the CREATE TABLE statements for the TPC-H schema with the
// partitioning the paper's running example uses: small dimension tables
// replicated, customer/orders co-partitioned on the customer key, and
// lineitem partitioned on the order key. The two scan-heavy fact tables
// are COLUMNAR (PAX page sets), matching the storage the paper used in
// its Q1 discussion, so benchmarks exercise the typed vector scan path.
func DDL() []string {
	return []string{
		`CREATE TABLE region (
			r_regionkey INT, r_name VARCHAR(25), r_comment VARCHAR(152)
		) PARTITION BY REPLICATED`,
		`CREATE TABLE nation (
			n_nationkey INT, n_name VARCHAR(25), n_regionkey INT, n_comment VARCHAR(152)
		) PARTITION BY REPLICATED`,
		`CREATE TABLE supplier (
			s_suppkey INT, s_name VARCHAR(25), s_address VARCHAR(40), s_nationkey INT,
			s_phone VARCHAR(15), s_acctbal DECIMAL(15,2), s_comment VARCHAR(101)
		) PARTITION BY HASH(s_suppkey)`,
		`CREATE TABLE part (
			p_partkey INT, p_name VARCHAR(55), p_mfgr VARCHAR(25), p_brand VARCHAR(10),
			p_type VARCHAR(25), p_size INT, p_container VARCHAR(10),
			p_retailprice DECIMAL(15,2), p_comment VARCHAR(23)
		) PARTITION BY HASH(p_partkey)`,
		`CREATE TABLE partsupp (
			ps_partkey INT, ps_suppkey INT, ps_availqty INT,
			ps_supplycost DECIMAL(15,2), ps_comment VARCHAR(199)
		) PARTITION BY HASH(ps_partkey)`,
		`CREATE TABLE customer (
			c_custkey INT, c_name VARCHAR(25), c_address VARCHAR(40), c_nationkey INT,
			c_phone VARCHAR(15), c_acctbal DECIMAL(15,2), c_mktsegment VARCHAR(10),
			c_comment VARCHAR(117)
		) PARTITION BY HASH(c_custkey)`,
		`CREATE TABLE orders (
			o_orderkey INT, o_custkey INT, o_orderstatus VARCHAR(1),
			o_totalprice DECIMAL(15,2), o_orderdate DATE, o_orderpriority VARCHAR(15),
			o_clerk VARCHAR(15), o_shippriority INT, o_comment VARCHAR(79)
		) COLUMNAR PARTITION BY HASH(o_custkey)`,
		`CREATE TABLE lineitem (
			l_orderkey INT, l_partkey INT, l_suppkey INT, l_linenumber INT,
			l_quantity DECIMAL(15,2), l_extendedprice DECIMAL(15,2),
			l_discount DECIMAL(15,2), l_tax DECIMAL(15,2),
			l_returnflag VARCHAR(1), l_linestatus VARCHAR(1),
			l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE,
			l_shipinstruct VARCHAR(25), l_shipmode VARCHAR(10), l_comment VARCHAR(44)
		) COLUMNAR PARTITION BY HASH(l_orderkey) CLUSTER BY (l_shipdate)`,
	}
}
