package tpch

import (
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/sqlparse"
)

// qError is the standard cardinality-estimation metric: max(est/act, act/est).
func qError(est, act float64) float64 {
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	return math.Max(est/act, act/est)
}

// TestQErrorGolden pins the statistics model's estimation quality on TPC-H
// SF0.01: full scans (row counts), range filters (the histogram path), and
// 2–4 way joins (NDV-based equality selectivity). The bounds are golden —
// loose enough for sketch/sample noise, tight enough that a regression to
// magic-constant selectivities (1/3 per range predicate, fixed join
// fanouts) fails immediately. Feedback is deliberately absent: this tests
// the model, not the adaptive loop.
func TestQErrorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H stats build skipped in -short mode")
	}
	c, d := loadedCluster(t, 4, 0.01)
	prov := &plan.MemProvider{Cat: c.Catalog(), Rows: d.Tables()}
	est := &opt.Estimator{Cat: c.Catalog()}

	cases := []struct {
		name string
		sql  string
		// pick chooses the plan node whose estimate is scored; nil means
		// score the root.
		pick func(plan.Node) plan.Node
		maxQ float64
	}{
		{
			name: "scan-lineitem",
			sql:  "SELECT l_orderkey FROM lineitem",
			pick: firstScan, maxQ: 1.05,
		},
		{
			name: "scan-orders",
			sql:  "SELECT o_orderkey FROM orders",
			pick: firstScan, maxQ: 1.05,
		},
		{
			name: "range-shipdate-year",
			sql: `SELECT l_orderkey FROM lineitem
			      WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'`,
			pick: firstScan, maxQ: 1.3,
		},
		{
			name: "range-quantity",
			sql:  "SELECT l_orderkey FROM lineitem WHERE l_quantity < 24",
			pick: firstScan, maxQ: 1.3,
		},
		{
			name: "range-discount-between",
			sql:  "SELECT l_orderkey FROM lineitem WHERE l_discount BETWEEN 0.05 AND 0.07",
			pick: firstScan, maxQ: 1.6,
		},
		{
			name: "join-2way-orders-customer",
			sql: `SELECT o_orderkey FROM orders, customer
			      WHERE o_custkey = c_custkey`,
			pick: firstJoin, maxQ: 1.5,
		},
		{
			name: "join-3way-lineitem-orders-customer",
			sql: `SELECT l_orderkey FROM lineitem, orders, customer
			      WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey`,
			pick: firstJoin, maxQ: 2.0,
		},
		{
			name: "join-4way-with-nation",
			sql: `SELECT l_orderkey FROM lineitem, orders, customer, nation
			      WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey
			        AND c_nationkey = n_nationkey`,
			pick: firstJoin, maxQ: 2.5,
		},
		{
			name: "join-filtered-orders-lineitem",
			sql: `SELECT l_orderkey FROM lineitem, orders
			      WHERE l_orderkey = o_orderkey AND o_orderdate < DATE '1995-03-15'`,
			pick: firstJoin, maxQ: 2.0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sel, err := sqlparse.ParseSelect(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			node, err := plan.Build(sel, c.Catalog())
			if err != nil {
				t.Fatal(err)
			}
			node, err = opt.OptimizeOpts(node, c.Catalog(), opt.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			target := node
			if tc.pick != nil {
				if target = tc.pick(node); target == nil {
					t.Fatalf("no target node in plan:\n%s", plan.Explain(node))
				}
			}
			op, err := plan.Execute(target, prov, exec.NewCtx(t.TempDir(), 0))
			if err != nil {
				t.Fatal(err)
			}
			rows, err := exec.Collect(op)
			if err != nil {
				t.Fatal(err)
			}
			act := float64(len(rows))
			e := est.Estimate(target)
			if q := qError(e, act); q > tc.maxQ {
				t.Errorf("q-error %.2f > %.2f (est %.0f, actual %.0f)\n%s",
					q, tc.maxQ, e, act, plan.Explain(target))
			}
		})
	}
}

// firstScan returns the first Scan (with its pushed predicate) in the plan.
func firstScan(n plan.Node) plan.Node {
	var out plan.Node
	plan.Walk(n, func(m plan.Node) {
		if out == nil {
			if _, ok := m.(*plan.Scan); ok {
				out = m
			}
		}
	})
	return out
}

// firstJoin returns the topmost Join in the plan (Walk is pre-order).
func firstJoin(n plan.Node) plan.Node {
	var out plan.Node
	plan.Walk(n, func(m plan.Node) {
		if out == nil {
			if _, ok := m.(*plan.Join); ok {
				out = m
			}
		}
	})
	return out
}
