package external

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
)

func writeShards(t *testing.T, dir string, shards []string) {
	t.Helper()
	for i, content := range shards {
		path := filepath.Join(dir, "part-"+string(rune('0'+i))+".csv")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func testSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "amount", Kind: types.KindFloat},
		types.Column{Name: "d", Kind: types.KindDate},
	)
}

func TestCSVTableScan(t *testing.T) {
	dir := t.TempDir()
	writeShards(t, dir, []string{
		"1|alice|10.5|2019-01-01\n2|bob|20.25|2019-02-01\n",
		"3|carol|30.0|2019-03-01\n",
	})
	tbl, err := NewCSVTable("ext", testSchema(), dir, "part-*.csv", '|')
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Partitions() != 2 {
		t.Fatalf("partitions = %d", tbl.Partitions())
	}
	var all []types.Row
	for p := 0; p < tbl.Partitions(); p++ {
		if err := tbl.ScanPartition(p, func(r types.Row) bool {
			all = append(all, r)
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(all) != 3 {
		t.Fatalf("rows = %d", len(all))
	}
	if all[0][0].Int() != 1 || all[0][1].Str() != "alice" || all[0][2].Float() != 10.5 {
		t.Errorf("row 0 = %v", all[0])
	}
	if all[2][3].String() != "2019-03-01" {
		t.Errorf("date = %v", all[2][3])
	}
}

func TestCSVTrailingDelimiter(t *testing.T) {
	dir := t.TempDir()
	writeShards(t, dir, []string{"7|x|1.0|2020-01-01|\n"})
	tbl, err := NewCSVTable("ext", testSchema(), dir, "part-*.csv", '|')
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tbl.ScanPartition(0, func(r types.Row) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("rows = %d", count)
	}
}

func TestCSVBadRows(t *testing.T) {
	dir := t.TempDir()
	writeShards(t, dir, []string{"1|only-two-fields\n"})
	tbl, _ := NewCSVTable("ext", testSchema(), dir, "part-*.csv", '|')
	if err := tbl.ScanPartition(0, func(types.Row) bool { return true }); err == nil {
		t.Error("wrong arity should fail")
	}
	dir2 := t.TempDir()
	writeShards(t, dir2, []string{"notanint|x|1.0|2020-01-01\n"})
	tbl2, _ := NewCSVTable("ext", testSchema(), dir2, "part-*.csv", '|')
	if err := tbl2.ScanPartition(0, func(types.Row) bool { return true }); err == nil {
		t.Error("bad int should fail")
	}
}

func TestCSVEarlyStopAndRangeErrors(t *testing.T) {
	dir := t.TempDir()
	writeShards(t, dir, []string{"1|a|1|2020-01-01\n2|b|2|2020-01-02\n3|c|3|2020-01-03\n"})
	tbl, _ := NewCSVTable("ext", testSchema(), dir, "part-*.csv", '|')
	count := 0
	tbl.ScanPartition(0, func(types.Row) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop = %d", count)
	}
	if err := tbl.ScanPartition(9, func(types.Row) bool { return true }); err == nil {
		t.Error("partition out of range should fail")
	}
}

func TestNoMatchingFiles(t *testing.T) {
	if _, err := NewCSVTable("x", testSchema(), t.TempDir(), "*.csv", '|'); err == nil {
		t.Error("empty dir should fail")
	}
}

func TestRegistry(t *testing.T) {
	dir := t.TempDir()
	writeShards(t, dir, []string{"1|a|1|2020-01-01\n"})
	tbl, _ := NewCSVTable("hdfs_sales", testSchema(), dir, "part-*.csv", '|')
	reg := NewRegistry()
	if err := reg.Register(tbl); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(tbl); err == nil {
		t.Error("duplicate register should fail")
	}
	got, ok := reg.Lookup("HDFS_SALES")
	if !ok || got.Name() != "hdfs_sales" {
		t.Errorf("lookup = %v %v", got, ok)
	}
	if _, ok := reg.Lookup("missing"); ok {
		t.Error("missing lookup should fail")
	}
}

func TestAssignPartitions(t *testing.T) {
	assign := AssignPartitions(7, 3)
	if len(assign) != 3 {
		t.Fatalf("workers = %d", len(assign))
	}
	total := 0
	seen := map[int]bool{}
	for _, ps := range assign {
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("partition %d assigned twice", p)
			}
			seen[p] = true
			total++
		}
	}
	if total != 7 {
		t.Errorf("assigned %d of 7", total)
	}
	// Balance within 1.
	if len(assign[0])-len(assign[2]) > 1 {
		t.Errorf("unbalanced: %v", assign)
	}
}
