// Package external implements HRDBMS's extensible external table framework
// (Section III): a user-defined external table type (UET) exposes a schema
// and a horizontal partitioning of an external data source, and the system
// distributes scans of those partitions across worker nodes without
// ingesting the data.
//
// The CSV table type is the proof-of-concept the paper ships (theirs reads
// CSV from HDFS; ours reads sharded CSV files from a directory, which
// exercises the same code path: partition discovery, per-partition scans,
// and distribution of partitions to workers).
package external

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/types"
)

// Table is the user-defined external table (UET) interface.
type Table interface {
	// Name returns the table's name as registered in the catalog.
	Name() string
	// Schema returns the rows' schema.
	Schema() types.Schema
	// Partitions returns the number of horizontal partitions the source
	// exposes; the system assigns partitions to worker nodes.
	Partitions() int
	// ScanPartition iterates the rows of one partition. fn returning false
	// stops the scan.
	ScanPartition(i int, fn func(types.Row) bool) error
}

// Registry maps external table names to implementations.
type Registry struct {
	tables map[string]Table
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{tables: map[string]Table{}} }

// Register adds an external table.
func (r *Registry) Register(t Table) error {
	key := strings.ToLower(t.Name())
	if _, dup := r.tables[key]; dup {
		return fmt.Errorf("external: table %s already registered", t.Name())
	}
	r.tables[key] = t
	return nil
}

// Lookup finds an external table by name.
func (r *Registry) Lookup(name string) (Table, bool) {
	t, ok := r.tables[strings.ToLower(name)]
	return t, ok
}

// CSVTable reads delimiter-separated files from a directory; every file
// matching the glob is one partition.
type CSVTable struct {
	name   string
	schema types.Schema
	files  []string
	delim  byte
}

// NewCSVTable discovers partitions under dir matching pattern (e.g.
// "part-*.csv") and serves them as an external table.
func NewCSVTable(name string, schema types.Schema, dir, pattern string, delim byte) (*CSVTable, error) {
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return nil, fmt.Errorf("external: glob: %w", err)
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("external: no files match %s in %s", pattern, dir)
	}
	sort.Strings(matches)
	if delim == 0 {
		delim = '|'
	}
	return &CSVTable{name: name, schema: schema, files: matches, delim: delim}, nil
}

// Name implements Table.
func (t *CSVTable) Name() string { return t.name }

// Schema implements Table.
func (t *CSVTable) Schema() types.Schema { return t.schema }

// Partitions implements Table.
func (t *CSVTable) Partitions() int { return len(t.files) }

// ScanPartition implements Table, parsing each line into typed values.
func (t *CSVTable) ScanPartition(i int, fn func(types.Row) bool) error {
	if i < 0 || i >= len(t.files) {
		return fmt.Errorf("external: partition %d out of range (%d)", i, len(t.files))
	}
	f, err := os.Open(t.files[i])
	if err != nil {
		return fmt.Errorf("external: open partition %d: %w", i, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, string(t.delim))
		// Tolerate a trailing delimiter (TPC-H dbgen style).
		if len(fields) == t.schema.Len()+1 && fields[len(fields)-1] == "" {
			fields = fields[:len(fields)-1]
		}
		if len(fields) != t.schema.Len() {
			return fmt.Errorf("external: %s line %d: %d fields, want %d",
				t.files[i], lineNo, len(fields), t.schema.Len())
		}
		row := make(types.Row, len(fields))
		for ci, field := range fields {
			v, err := types.ParseValue(t.schema.Cols[ci].Kind, field)
			if err != nil {
				return fmt.Errorf("external: %s line %d col %s: %w",
					t.files[i], lineNo, t.schema.Cols[ci].Name, err)
			}
			row[ci] = v
		}
		if !fn(row) {
			return nil
		}
	}
	return sc.Err()
}

// AssignPartitions distributes partition indexes across numWorkers workers
// round-robin — how the coordinator spreads external scans (Section III).
func AssignPartitions(numPartitions, numWorkers int) [][]int {
	out := make([][]int, numWorkers)
	for p := 0; p < numPartitions; p++ {
		w := p % numWorkers
		out[w] = append(out[w], p)
	}
	return out
}
