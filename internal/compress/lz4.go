// Package compress provides the two codecs the storage engine uses: an LZ4
// block-format compressor for pages (chosen in the paper for its fast
// decompression) and a canonical Huffman coder used to pack string columns
// in PAX page sets.
//
// Both are implemented from scratch against the published formats; the LZ4
// encoder is a greedy single-pass hash-chain matcher, which trades a little
// ratio for speed exactly as the reference fast compressor does.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch     = 4  // LZ4 minimum match length
	lastLiterals = 5  // last 5 bytes of a block must be literals
	mfLimit      = 12 // a match must not start within 12 bytes of the end
	hashLog      = 16
	hashShift    = (minMatch * 8) - hashLog
)

// ErrCorrupt is returned when an LZ4 block cannot be decoded.
var ErrCorrupt = errors.New("compress: corrupt lz4 block")

func lz4Hash(u uint32) uint32 {
	return (u * 2654435761) >> hashShift
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// CompressLZ4 compresses src into LZ4 block format. The returned slice is
// freshly allocated. Incompressible input grows by at most
// len(src)/255 + 16 bytes.
func CompressLZ4(src []byte) []byte {
	dst := make([]byte, 0, len(src)+len(src)/255+16)
	if len(src) < mfLimit+lastLiterals {
		// Too small to find matches: emit a single literal run.
		return appendLiteralRun(dst, src)
	}

	var table [1 << hashLog]int32 // position+1 of last occurrence of each hash
	anchor := 0                   // start of pending literals
	pos := 0
	limit := len(src) - mfLimit

	for pos <= limit {
		h := lz4Hash(load32(src, pos))
		cand := int(table[h]) - 1
		table[h] = int32(pos + 1)
		if cand < 0 || pos-cand > 65535 || load32(src, cand) != load32(src, pos) {
			pos++
			continue
		}
		// Extend the match forward.
		matchLen := minMatch
		maxLen := len(src) - lastLiterals - pos
		for matchLen < maxLen && src[cand+matchLen] == src[pos+matchLen] {
			matchLen++
		}
		// Extend backward into pending literals.
		for pos > anchor && cand > 0 && src[cand-1] == src[pos-1] {
			pos--
			cand--
			matchLen++
		}
		dst = appendSequence(dst, src[anchor:pos], pos-cand, matchLen)
		pos += matchLen
		anchor = pos
		if pos <= limit {
			table[lz4Hash(load32(src, pos-2))] = int32(pos - 1)
		}
	}
	return appendLiteralRun(dst, src[anchor:])
}

// appendSequence emits one LZ4 sequence: token, literal length extension,
// literals, offset, match length extension.
func appendSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	ml := matchLen - minMatch
	token := byte(0)
	if litLen >= 15 {
		token = 0xF0
	} else {
		token = byte(litLen) << 4
	}
	if ml >= 15 {
		token |= 0x0F
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = appendLenExt(dst, ml-15)
	}
	return dst
}

// appendLiteralRun emits a final literals-only sequence (no match part).
func appendLiteralRun(dst, literals []byte) []byte {
	litLen := len(literals)
	if litLen == 0 {
		return dst
	}
	if litLen >= 15 {
		dst = append(dst, 0xF0)
		dst = appendLenExt(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, literals...)
}

func appendLenExt(dst []byte, rem int) []byte {
	for rem >= 255 {
		dst = append(dst, 255)
		rem -= 255
	}
	return append(dst, byte(rem))
}

// DecompressLZ4 decodes an LZ4 block into a buffer of exactly dstSize bytes.
func DecompressLZ4(src []byte, dstSize int) ([]byte, error) {
	dst := make([]byte, 0, dstSize)
	pos := 0
	for pos < len(src) {
		token := src[pos]
		pos++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, pos, err = readLenExt(src, pos, litLen)
			if err != nil {
				return nil, err
			}
		}
		if pos+litLen > len(src) {
			return nil, fmt.Errorf("%w: literal run past end", ErrCorrupt)
		}
		dst = append(dst, src[pos:pos+litLen]...)
		pos += litLen
		if pos == len(src) {
			break // final literals-only sequence
		}
		// Match.
		if pos+2 > len(src) {
			return nil, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(src[pos]) | int(src[pos+1])<<8
		pos += 2
		if offset == 0 || offset > len(dst) {
			return nil, fmt.Errorf("%w: bad offset %d (have %d)", ErrCorrupt, offset, len(dst))
		}
		matchLen := int(token & 0x0F)
		if matchLen == 15 {
			var err error
			matchLen, pos, err = readLenExt(src, pos, matchLen)
			if err != nil {
				return nil, err
			}
		}
		matchLen += minMatch
		// Byte-at-a-time copy handles overlapping matches (offset < len).
		start := len(dst) - offset
		for i := 0; i < matchLen; i++ {
			dst = append(dst, dst[start+i])
		}
	}
	if len(dst) != dstSize {
		return nil, fmt.Errorf("%w: decoded %d bytes, want %d", ErrCorrupt, len(dst), dstSize)
	}
	return dst, nil
}

func readLenExt(src []byte, pos, base int) (int, int, error) {
	for {
		if pos >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated length", ErrCorrupt)
		}
		b := src[pos]
		pos++
		base += int(b)
		if b != 255 {
			return base, pos, nil
		}
	}
}
