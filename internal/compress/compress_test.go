package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripLZ4(t *testing.T, src []byte) {
	t.Helper()
	c := CompressLZ4(src)
	got, err := DecompressLZ4(c, len(src))
	if err != nil {
		t.Fatalf("DecompressLZ4(len=%d): %v", len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("LZ4 round trip mismatch for len=%d", len(src))
	}
}

func TestLZ4Empty(t *testing.T)     { roundTripLZ4(t, nil) }
func TestLZ4Tiny(t *testing.T)      { roundTripLZ4(t, []byte("ab")) }
func TestLZ4Short(t *testing.T)     { roundTripLZ4(t, []byte("hello")) }
func TestLZ4AllZero(t *testing.T)   { roundTripLZ4(t, make([]byte, 100000)) }
func TestLZ4Alphabet(t *testing.T)  { roundTripLZ4(t, []byte("abcdefghijklmnopqrstuvwxyz0123456789")) }
func TestLZ4Repeating(t *testing.T) { roundTripLZ4(t, bytes.Repeat([]byte("abcdefg"), 5000)) }

func TestLZ4TextLike(t *testing.T) {
	var sb strings.Builder
	words := []string{"shipment", "pending", "delivered", "urgent", "customer", "order"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	src := []byte(sb.String())
	c := CompressLZ4(src)
	if len(c) > len(src)/2 {
		t.Errorf("LZ4 on redundant text: got ratio %d/%d, expected < 0.5", len(c), len(src))
	}
	roundTripLZ4(t, src)
}

func TestLZ4Random(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 13, 64, 1000, 70000} {
		src := make([]byte, n)
		rng.Read(src)
		roundTripLZ4(t, src)
	}
}

func TestLZ4RandomLowEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Intn(4)) // many matches
		}
		roundTripLZ4(t, src)
	}
}

func TestLZ4QuickProperty(t *testing.T) {
	f := func(data []byte) bool {
		c := CompressLZ4(data)
		got, err := DecompressLZ4(c, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLZ4CorruptInput(t *testing.T) {
	// Bad offset: token says match, offset 0.
	if _, err := DecompressLZ4([]byte{0x10, 'a', 0, 0}, 10); err == nil {
		t.Error("offset 0 should fail")
	}
	// Truncated literal run.
	if _, err := DecompressLZ4([]byte{0x50, 'a'}, 5); err == nil {
		t.Error("truncated literals should fail")
	}
	// Size mismatch.
	c := CompressLZ4([]byte("hello world, hello world"))
	if _, err := DecompressLZ4(c, 3); err == nil {
		t.Error("wrong dstSize should fail")
	}
}

func TestLZ4IncompressibleBound(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	src := make([]byte, 10000)
	rng.Read(src)
	c := CompressLZ4(src)
	if len(c) > len(src)+len(src)/255+16 {
		t.Errorf("compressed size %d exceeds worst-case bound for %d input", len(c), len(src))
	}
}

func roundTripHuffman(t *testing.T, src []byte) {
	t.Helper()
	c := CompressHuffman(src)
	got, err := DecompressHuffman(c)
	if err != nil {
		t.Fatalf("DecompressHuffman(len=%d): %v", len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("Huffman round trip mismatch for len=%d", len(src))
	}
}

func TestHuffmanEmpty(t *testing.T)      { roundTripHuffman(t, nil) }
func TestHuffmanSingleByte(t *testing.T) { roundTripHuffman(t, []byte{7}) }
func TestHuffmanOneSymbol(t *testing.T)  { roundTripHuffman(t, bytes.Repeat([]byte{'x'}, 1000)) }
func TestHuffmanText(t *testing.T) {
	roundTripHuffman(t, []byte("the quick brown fox jumps over the lazy dog"))
}

func TestHuffmanAllSymbols(t *testing.T) {
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	roundTripHuffman(t, src)
}

func TestHuffmanSkewed(t *testing.T) {
	var src []byte
	src = append(src, bytes.Repeat([]byte{'a'}, 10000)...)
	src = append(src, bytes.Repeat([]byte{'b'}, 100)...)
	src = append(src, []byte("cdefg")...)
	c := CompressHuffman(src)
	// ~10105 symbols dominated by 1-bit codes: should compress well below
	// the input size even with the 256-byte header.
	if len(c) > len(src)/2 {
		t.Errorf("skewed input: compressed %d of %d", len(c), len(src))
	}
	roundTripHuffman(t, src)
}

func TestHuffmanQuickProperty(t *testing.T) {
	f := func(data []byte) bool {
		c := CompressHuffman(data)
		got, err := DecompressHuffman(c)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanCorrupt(t *testing.T) {
	if _, err := DecompressHuffman([]byte{1, 2, 3}); err == nil {
		t.Error("short header should fail")
	}
	c := CompressHuffman([]byte("hello hello hello"))
	if _, err := DecompressHuffman(c[:len(c)-1]); err == nil {
		t.Error("truncated stream should fail")
	}
	// No symbols declared but nonzero size.
	bad := make([]byte, 256)
	bad = append(bad, 5) // size=5
	if _, err := DecompressHuffman(bad); err == nil {
		t.Error("empty code table with nonzero size should fail")
	}
}

func BenchmarkLZ4Compress(b *testing.B) {
	src := bytes.Repeat([]byte("lineitem|1992-04-01|PENDING|4921.22|"), 2000)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompressLZ4(src)
	}
}

func BenchmarkLZ4Decompress(b *testing.B) {
	src := bytes.Repeat([]byte("lineitem|1992-04-01|PENDING|4921.22|"), 2000)
	c := CompressLZ4(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressLZ4(c, len(src)); err != nil {
			b.Fatal(err)
		}
	}
}
