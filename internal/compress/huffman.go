package compress

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
)

// Canonical Huffman coding over bytes. The paper uses Huffman encoding of
// strings inside columnar page sets so that wide string columns do not force
// page-set underutilization; we use it for the same purpose.
//
// The encoded stream is self-describing: a 256-byte code-length table
// (lengths 0..32), a uvarint original size, then the packed bit stream.

const maxCodeLen = 32

// huffNode is a tree node used only during code construction.
type huffNode struct {
	freq        uint64
	sym         int // symbol for leaves, -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int            { return len(h) }
func (h huffHeap) Less(i, j int) bool  { return h[i].freq < h[j].freq }
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildCodeLengths computes Huffman code lengths for each byte symbol.
func buildCodeLengths(freq *[256]uint64) [256]uint8 {
	var lengths [256]uint8
	h := huffHeap{}
	for s, f := range freq {
		if f > 0 {
			h = append(h, &huffNode{freq: f, sym: s})
		}
	}
	switch len(h) {
	case 0:
		return lengths
	case 1:
		lengths[h[0].sym] = 1
		return lengths
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
	}
	root := h[0]
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalCodes assigns canonical codes given code lengths: symbols sorted
// by (length, symbol) get consecutive codes.
func canonicalCodes(lengths *[256]uint8) (codes [256]uint32) {
	type sl struct {
		sym int
		len uint8
	}
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].len != syms[j].len {
			return syms[i].len < syms[j].len
		}
		return syms[i].sym < syms[j].sym
	})
	code := uint32(0)
	prevLen := uint8(0)
	for _, s := range syms {
		code <<= (s.len - prevLen)
		codes[s.sym] = code
		code++
		prevLen = s.len
	}
	return codes
}

// CompressHuffman encodes src with a canonical Huffman code built from its
// byte frequencies. Returns a self-describing buffer decodable by
// DecompressHuffman.
func CompressHuffman(src []byte) []byte {
	var freq [256]uint64
	for _, b := range src {
		freq[b]++
	}
	lengths := buildCodeLengths(&freq)
	// Pathologically skewed frequency distributions can produce code depths
	// beyond our 32-bit decode budget; fall back to flat 8-bit codes.
	for _, l := range lengths {
		if l > maxCodeLen {
			for i := range lengths {
				lengths[i] = 8
			}
			break
		}
	}
	codes := canonicalCodes(&lengths)

	out := make([]byte, 0, len(src)/2+300)
	out = append(out, lengths[:]...)
	out = binary.AppendUvarint(out, uint64(len(src)))

	var acc uint64
	var nbits uint
	for _, b := range src {
		l := uint(lengths[b])
		acc = (acc << l) | uint64(codes[b])
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			out = append(out, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<(8-nbits)))
	}
	return out
}

// DecompressHuffman decodes a buffer produced by CompressHuffman.
func DecompressHuffman(src []byte) ([]byte, error) {
	if len(src) < 256 {
		return nil, fmt.Errorf("compress: huffman header too short (%d bytes)", len(src))
	}
	var lengths [256]uint8
	copy(lengths[:], src[:256])
	for _, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("compress: huffman code length %d too large", l)
		}
	}
	n, consumed := binary.Uvarint(src[256:])
	if consumed <= 0 {
		return nil, fmt.Errorf("compress: bad huffman size header")
	}
	data := src[256+consumed:]
	if n == 0 {
		return []byte{}, nil
	}
	// A symbol consumes at least one bit, so a corrupted size header cannot
	// legitimately exceed 8 symbols per stream byte — reject instead of
	// allocating attacker-controlled amounts.
	if n > uint64(len(data))*8 {
		return nil, fmt.Errorf("compress: huffman size %d exceeds stream capacity (%d bytes)", n, len(data))
	}

	// Build canonical decode tables: firstCode[len], firstIndex[len], and
	// symbols sorted by (len, sym).
	type sl struct {
		sym int
		len uint8
	}
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	if len(syms) == 0 {
		return nil, fmt.Errorf("compress: huffman stream with no symbols but size %d", n)
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].len != syms[j].len {
			return syms[i].len < syms[j].len
		}
		return syms[i].sym < syms[j].sym
	})
	var firstCode [maxCodeLen + 2]uint32
	var firstIndex [maxCodeLen + 2]int
	var countAt [maxCodeLen + 1]int
	for _, s := range syms {
		countAt[s.len]++
	}
	code := uint32(0)
	idx := 0
	for l := 1; l <= maxCodeLen; l++ {
		firstCode[l] = code
		firstIndex[l] = idx
		code = (code + uint32(countAt[l])) << 1
		idx += countAt[l]
	}

	out := make([]byte, 0, n)
	var acc uint64
	var accLen uint8
	pos := 0
	for uint64(len(out)) < n {
		// Accumulate bits and try to decode one symbol.
		var matched bool
		for l := uint8(1); l <= maxCodeLen; l++ {
			for accLen < l {
				if pos >= len(data) {
					return nil, fmt.Errorf("compress: huffman stream truncated at %d/%d symbols", len(out), n)
				}
				acc = (acc << 8) | uint64(data[pos])
				accLen += 8
				pos++
			}
			if countAt[l] == 0 {
				continue
			}
			c := uint32((acc >> (accLen - l)) & ((uint64(1) << l) - 1))
			if c >= firstCode[l] && c < firstCode[l]+uint32(countAt[l]) {
				sym := syms[firstIndex[l]+int(c-firstCode[l])].sym
				out = append(out, byte(sym))
				accLen -= l
				acc &= (uint64(1) << accLen) - 1
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("compress: invalid huffman code in stream")
		}
	}
	return out, nil
}
