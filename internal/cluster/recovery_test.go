package cluster

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/page"
	"repro/internal/storage"
	"repro/internal/twopc"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wal"
)

// TestWorkerCrashRecoveryWithCoordinator exercises the paper's worker
// restart protocol end to end (Section VI): a worker crashes after
// PREPARE, restarts, runs ARIES recovery, finds the transaction in-doubt,
// asks the coordinator named in its PREPARE record, and applies the global
// outcome.
func TestWorkerCrashRecoveryWithCoordinator(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{NumWorkers: 2, BaseDir: dir, PageSize: 4096, Nmax: 3, Profile: HRDBMSProfile()}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ExecSQL(`CREATE TABLE acct (id INT, bal FLOAT) PARTITION BY HASH(id)`); err != nil {
		t.Fatal(err)
	}
	// A committed baseline row on each worker.
	if _, err := c.ExecSQL(`INSERT INTO acct VALUES (1, 10.0), (2, 20.0), (3, 30.0), (4, 40.0)`); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash scenario on worker 0's stack: a transaction that
	// prepared (coordinator = node 0) but never heard the outcome.
	w := c.Workers[0]
	const txid = 7777
	tx := w.Txn.BeginWithID(txid)
	def, _ := c.Catalog().Table("acct")
	fr := w.frags["acct"]
	if _, err := fr.Insert(tx, types.Row{types.NewInt(100), types.NewFloat(99)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Txn.Prepare(tx, int32(c.Coords[0].ID)); err != nil {
		t.Fatal(err)
	}
	// Record the global outcome on the coordinator as COMMIT (as phase 2
	// would have, before the worker processed it).
	committed, err := c.Coords[0].XA.CommitGlobal(txid, nil)
	if err != nil || !committed {
		t.Fatalf("coordinator decision: %v %v", committed, err)
	}
	// CRASH worker 0: flush pages (steal), drop its in-memory state.
	if err := w.Store.Buf.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.Log.Close(); err != nil {
		t.Fatal(err)
	}

	// RESTART: fresh storage stack over the same directories.
	logPath := filepath.Join(dir, "worker1.wal") // worker 0 has node ID 1
	log2, err := wal.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	ns2, err := storage.NewNodeStore(storage.NodeConfig{
		NodeID: w.ID, BaseDir: dir, NumDisks: 2,
		PageSize: cfg.PageSize, FlushHook: log2.FlushUpTo,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	// Reopen the table's fragment files FIRST so the WAL's file IDs
	// resolve (registration order is deterministic per table).
	fr2, err := storage.OpenFragment(ns2, def)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wal.Recover(log2, ns2.Buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0].TxID != txid {
		t.Fatalf("in-doubt after restart = %+v", res.InDoubt)
	}
	if res.InDoubt[0].Coordinator != int32(c.Coords[0].ID) {
		t.Fatalf("PREPARE record lost the coordinator: %d", res.InDoubt[0].Coordinator)
	}
	// Ask the coordinator over the fabric and apply the outcome.
	mgr2 := txn.NewManager(log2, txn.NewLockManager(time.Second), ns2.Buf)
	mgr2.SetNextTxID(res.MaxTxID + 1)
	part2 := twopc.NewParticipant(w.Ep, mgr2)
	if err := part2.ResolveInDoubt(res.InDoubt[0].TxID, int(res.InDoubt[0].Coordinator)); err != nil {
		t.Fatal(err)
	}
	// The prepared row must exist after resolution (outcome was commit).
	found := false
	if _, err := fr2.Scan(storage.ScanOptions{}, func(rid page.RID, r types.Row) bool {
		if r[0].Int() == 100 {
			found = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("committed-in-doubt row missing after recovery + coordinator resolution")
	}
}
