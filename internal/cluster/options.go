package cluster

import (
	"time"

	"repro/internal/exec"
)

// QueryOptions carries the serving layer's per-query controls into
// execution. The zero value (or a nil pointer) means "no controls": no kill
// switch, cluster-default batch sizing, the configured profile's
// parallelism, and no admission annotation.
type QueryOptions struct {
	// Cancel, when set, is the query's kill switch: firing it aborts scan
	// feeds and exchanges at the next batch boundary and surfaces the
	// cause from the coordinator's pull loop.
	Cancel *exec.Cancel
	// BatchRows overrides the slab/wire batch size for this query (a
	// per-session setting). 0 keeps the cluster default.
	BatchRows int
	// MaxParallel clamps every per-operator parallelism degree of the
	// execution profile (a per-session parallelism cap against the shared
	// worker budget). 0 keeps the profile's degrees.
	MaxParallel int
	// QueueWait is how long admission queued the query before it ran;
	// traced queries annotate it as an Admission span.
	QueueWait time.Duration
}

// clampParallelism caps every per-operator parallelism degree at max.
func (p ExecProfile) clampParallelism(max int) ExecProfile {
	clamp := func(v int) int {
		if v > max {
			return max
		}
		return v
	}
	p.ScanParallelism = clamp(p.ScanParallelism)
	p.AggParallelism = clamp(p.AggParallelism)
	p.SortParallelism = clamp(p.SortParallelism)
	p.ProbeParallelism = clamp(p.ProbeParallelism)
	return p
}
