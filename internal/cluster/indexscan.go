package cluster

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/page"
	"repro/internal/plan"
	"repro/internal/skipcache"
	"repro/internal/storage"
	"repro/internal/types"
)

// Index-backed scans: the paper's phase-1 optimizer chooses between table
// and index scans. We apply the rule at distribution time: when a scan's
// predicate contains an equality on the leading column of a worker-local
// B+-tree (or skip-list) index and the equality is estimated highly
// selective, each worker probes its index instead of scanning pages.

// indexMatch describes a usable index access path for a scan.
type indexMatch struct {
	def *catalog.IndexDef
	key types.Value // equality constant on the leading index column
}

// findIndexPath looks for an equality conjunct col = const where col is
// the leading column of an index on the table.
func (q *queryExec) findIndexPath(x *plan.Scan) *indexMatch {
	if x.Pred == nil {
		return nil
	}
	conj, _ := expr.ToSkipConj(x.Pred)
	indexes := q.c.Catalog().IndexesOn(x.Table.Name)
	for _, p := range conj {
		if p.Op != skipcache.OpEq {
			continue
		}
		bare := strings.ToLower(p.Col)
		if i := strings.LastIndexByte(bare, '.'); i >= 0 {
			bare = bare[i+1:]
		}
		for _, idx := range indexes {
			if len(idx.Cols) >= 1 && strings.EqualFold(idx.Cols[0], bare) {
				return &indexMatch{def: idx, key: p.Val}
			}
		}
	}
	return nil
}

// indexScanOp probes one worker's index and re-fetches rows by RID,
// applying the scan's full residual predicate.
type indexScanOp struct {
	w    *Worker
	fr   *storage.Fragment
	def  *catalog.IndexDef
	key  types.Value
	pred expr.Expr
	sch  types.Schema

	rows []types.Row
	pos  int
}

// Schema implements exec.Operator.
func (s *indexScanOp) Schema() types.Schema { return s.sch }

// Open implements exec.Operator: the probe happens here.
func (s *indexScanOp) Open() error {
	s.rows, s.pos = nil, 0
	var rids []page.RID
	var err error
	if bt := s.w.btreeIdx[s.def.Name]; bt != nil {
		rids, err = bt.Search(types.Row{s.key})
	} else if sl := s.w.skipIdx[s.def.Name]; sl != nil {
		rids, err = sl.Search(types.Row{s.key})
	} else {
		return nil // index not built on this worker: no rows here
	}
	if err != nil {
		return err
	}
	for _, rid := range rids {
		r, ok, err := s.fr.Get(rid)
		if err != nil {
			return err
		}
		if !ok {
			continue // tombstoned since indexing (logical delete)
		}
		if s.pred != nil {
			keep, err := expr.EvalBool(s.pred, r)
			if err != nil {
				return err
			}
			if !keep {
				continue
			}
		}
		s.rows = append(s.rows, r)
	}
	return nil
}

// Next implements exec.Operator.
func (s *indexScanOp) Next() (types.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements exec.Operator.
func (s *indexScanOp) Close() error { return nil }

// maintainIndexes applies an insert or delete to every index on a table
// for one worker. Index updates piggyback on the data transaction's page
// writes; after a crash, indexes are rebuilt from the fragments (the
// standard recovery simplification — see DESIGN.md).
func (w *Worker) maintainIndexes(c *catalog.Catalog, tbl *catalog.TableDef, r types.Row, rid page.RID, insert bool) error {
	for _, idx := range c.IndexesOn(tbl.Name) {
		offs, err := tbl.ColOffsets(idx.Cols)
		if err != nil {
			return err
		}
		key := r.Project(offs)
		if bt := w.btreeIdx[idx.Name]; bt != nil {
			if insert {
				if err := bt.Insert(key, rid); err != nil {
					return err
				}
			} else if _, err := bt.Delete(key, rid); err != nil {
				return err
			}
		} else if sl := w.skipIdx[idx.Name]; sl != nil {
			if insert {
				if err := sl.Insert(key, rid); err != nil {
					return err
				}
			} else if _, err := sl.Delete(key, rid); err != nil {
				return err
			}
		}
	}
	return nil
}

// indexScan builds the per-worker index-backed stream for a scan node.
func (q *queryExec) indexScan(x *plan.Scan, m *indexMatch) (*dstream, error) {
	ds := &dstream{sch: x.Schema()}
	name := lower(x.Table.Name)
	for _, w := range q.c.Workers {
		fr := w.frags[name]
		op := q.wrap("IndexScan "+m.def.Name, w.ID, &indexScanOp{
			w: w, fr: fr, def: m.def, key: m.key, pred: x.Pred, sch: x.Schema(),
		})
		ds.ops = append(ds.ops, op)
	}
	switch {
	case x.Table.Part.Kind == catalog.PartReplicated:
		ds.dist = distInfo{kind: distReplicated}
	case x.Table.Part.Kind == catalog.PartHash && q.prof.EnforceLocality:
		cols := make([]string, len(x.Table.Part.Cols))
		for i, col := range x.Table.Part.Cols {
			cols[i] = x.Alias + "." + strings.ToLower(col)
		}
		ds.dist = distInfo{kind: distPartitioned, cols: cols}
	default:
		ds.dist = distInfo{kind: distRandom}
	}
	return ds, nil
}

var _ exec.Operator = (*indexScanOp)(nil)
