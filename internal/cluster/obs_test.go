package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/testutil"
	"repro/internal/types"
)

// planFor builds and optimizes a SELECT for direct RunTraced/RunMetered use.
func planFor(t *testing.T, c *Cluster, sql string) plan.Node {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	node, err := c.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	return node
}

// TestTraceSpanSumsMatchRunMetrics runs a distributed join with tracing and
// checks the acceptance invariant: the per-operator span counters sum to the
// query's RunMetrics totals. ScanRows and net bytes/messages must match
// exactly (scans write their own stats into spans; every exchange send goes
// through a counting endpoint and the meter scope sees the same channels).
// PagesRead differs by construction — spans count pages scans touched,
// RunMetrics counts all buffer accesses including headers and index pages —
// so it is checked as a lower bound.
func TestTraceSpanSumsMatchRunMetrics(t *testing.T) {
	c, _ := newCluster(t, 3, HRDBMSProfile())
	sql := `SELECT c.c_name, SUM(o.o_totalprice)
		FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 50
		GROUP BY c.c_name`
	node := planFor(t, c, sql)
	rows, m, tr, err := c.RunTraced(node, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || m.ResultRows != len(rows) {
		t.Fatalf("rows=%d ResultRows=%d", len(rows), m.ResultRows)
	}
	var scanRows, pages, netBytes, netMsgs int64
	nodes := map[int]bool{}
	for _, s := range tr.Spans() {
		scanRows += s.ScanRows
		pages += s.PagesRead
		netBytes += s.NetBytes
		netMsgs += s.NetMsgs
		nodes[s.Node] = true
	}
	if scanRows != m.ScanRows {
		t.Errorf("span scan rows = %d, metrics = %d", scanRows, m.ScanRows)
	}
	if m.ScanRows == 0 {
		t.Error("join read no rows?")
	}
	if netBytes != m.NetBytes {
		t.Errorf("span net bytes = %d, metrics = %d", netBytes, m.NetBytes)
	}
	if netMsgs != m.NetMessages {
		t.Errorf("span net msgs = %d, metrics = %d", netMsgs, m.NetMessages)
	}
	if m.NetBytes == 0 {
		t.Error("distributed join moved no bytes?")
	}
	if pages == 0 || pages > m.PagesRead {
		t.Errorf("span pages = %d, metrics pages = %d (want 0 < span ≤ metrics)", pages, m.PagesRead)
	}
	// The trace must stitch across the exchange boundary: coordinator
	// (gather/final agg) plus every worker that scanned.
	if len(nodes) < 1+3 {
		t.Errorf("trace covers nodes %v, want coordinator + 3 workers", nodes)
	}
	if tr.Wall() <= 0 {
		t.Error("trace wall time not recorded")
	}
	// Untraced execution of the same plan returns the same row count and
	// also meters the network exactly (scope-based, not reset-based).
	node2 := planFor(t, c, sql)
	rows2, m2, err := c.RunMetered(node2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != len(rows) {
		t.Errorf("untraced rows = %d, traced = %d", len(rows2), len(rows))
	}
	if m2.NetBytes != m.NetBytes {
		t.Errorf("untraced net bytes = %d, traced = %d (tracing must not change traffic)", m2.NetBytes, m.NetBytes)
	}
}

// TestRunMeteredConcurrentNetIsolation is the regression test for the old
// Meter().Reset() scheme, where two overlapping RunMetered calls wiped each
// other's counters. With per-query scopes, each concurrent run must report
// exactly the bytes a solo run reports.
func TestRunMeteredConcurrentNetIsolation(t *testing.T) {
	c, _ := newCluster(t, 3, HRDBMSProfile())
	sql := `SELECT c.c_nationkey, SUM(o.o_totalprice)
		FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey
		GROUP BY c.c_nationkey`
	_, solo, err := c.RunMetered(planFor(t, c, sql))
	if err != nil {
		t.Fatal(err)
	}
	if solo.NetBytes == 0 {
		t.Fatal("solo run moved no bytes; test needs a distributed plan")
	}
	const runs = 4
	ms := make([]RunMetrics, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		node := planFor(t, c, sql)
		wg.Add(1)
		go func(i int, node plan.Node) {
			defer wg.Done()
			_, ms[i], errs[i] = c.RunMetered(node)
		}(i, node)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if ms[i].NetBytes != solo.NetBytes || ms[i].NetMessages != solo.NetMessages {
			t.Errorf("concurrent run %d: net=%dB/%d msgs, solo=%dB/%d msgs",
				i, ms[i].NetBytes, ms[i].NetMessages, solo.NetBytes, solo.NetMessages)
		}
	}
}

// TestExplainAnalyzeSQL drives EXPLAIN ANALYZE end-to-end through ExecSQL
// and checks the rendered tree is multi-node and carries counters.
func TestExplainAnalyzeSQL(t *testing.T) {
	c, _ := newCluster(t, 3, HRDBMSProfile())
	res, err := c.ExecSQL(`EXPLAIN ANALYZE SELECT c.c_name, o.o_totalprice
		FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Len() != 1 || res.Schema.Cols[0].Name != "plan" {
		t.Fatalf("schema = %v", res.Schema)
	}
	var text strings.Builder
	for _, r := range res.Rows {
		text.WriteString(r[0].S)
		text.WriteByte('\n')
	}
	out := text.String()
	for _, want := range []string{"Gather", "Scan", "[node 0]", "[node 1]", "[node 2]", "[node 3]", "rows=", "est=", "net=", "Totals:"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
	// Plain EXPLAIN still renders the logical plan, not a trace.
	res, err = c.ExecSQL(`EXPLAIN SELECT c_name FROM customer`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || strings.Contains(res.Rows[0][0].S, "[node") {
		t.Errorf("plain EXPLAIN looks traced: %v", res.Rows)
	}
}

// TestCardinalityFeedbackLoop closes the adaptive loop: a traced run
// harvests each subtree's actual output cardinality keyed by plan
// signature, and a later estimate of the same shape returns the observed
// value instead of the model's guess.
func TestCardinalityFeedbackLoop(t *testing.T) {
	c, _ := newCluster(t, 3, HRDBMSProfile())
	sql := `SELECT c.c_name, o.o_totalprice
		FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 100`
	node := planFor(t, c, sql)
	rows, _, tr, err := c.RunTraced(node, sql)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || c.Feedback.Len() == 0 {
		t.Fatalf("no feedback recorded (entries=%d)", c.Feedback.Len())
	}
	// Estimating the executed plan's root again must return the observed
	// row count exactly.
	fbEst := &opt.Estimator{Cat: c.Catalog(), FB: c.Feedback}
	if got := fbEst.Estimate(node); int(got+0.5) != len(rows) {
		t.Errorf("feedback-aware estimate %v, observed %d rows", got, len(rows))
	}
	// A structurally identical but freshly built plan hits the same
	// signatures (feedback must not depend on node pointer identity).
	node2 := planFor(t, c, sql)
	if got := fbEst.Estimate(node2); int(got+0.5) != len(rows) {
		t.Errorf("fresh plan estimate %v, observed %d rows", got, len(rows))
	}
	// A Limit-bearing plan must not poison the store with drained counts.
	before := c.Feedback.Len()
	limSQL := `SELECT o.o_orderkey FROM orders o LIMIT 3`
	if _, _, _, err := c.RunTraced(planFor(t, c, limSQL), limSQL); err != nil {
		t.Fatal(err)
	}
	if c.Feedback.Len() != before {
		t.Errorf("Limit plan recorded feedback: %d -> %d entries", before, c.Feedback.Len())
	}
}

// TestTraceRecordsParallelWorkers pins the worker budget (so the granted
// degree does not depend on the host CPU count) and checks that morsel
// parallelism is observable: scan and worker-side aggregate spans carry the
// granted worker count, rendered as workers= in EXPLAIN ANALYZE output.
func TestTraceRecordsParallelWorkers(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	c, err := New(Config{
		NumWorkers: 2,
		BaseDir:    t.TempDir(),
		PageSize:   4096,
		Nmax:       3,
		MemRows:    1 << 20,
		Profile:    HRDBMSProfile(),
		// Enough tokens that a scan (4) and an aggregate (4) can both be
		// granted their full requested degree on each worker.
		ParallelBudget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.ExecSQL(`CREATE TABLE t (k INT, v VARCHAR(10), amt FLOAT) PARTITION BY HASH(k)`); err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, 0, 3000)
	for i := int64(0); i < 3000; i++ {
		rows = append(rows, types.Row{
			types.NewInt(i),
			types.NewString([]string{"a", "b", "c"}[i%3]),
			types.NewFloat(float64(i % 97)),
		})
	}
	if _, err := c.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT v, COUNT(*) FROM t GROUP BY v`
	node := planFor(t, c, sql)
	out, _, tr, err := c.RunTraced(node, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d groups, want 3", len(out))
	}
	var maxWorkers int64
	for _, s := range tr.Spans() {
		if s.Workers > maxWorkers {
			maxWorkers = s.Workers
		}
	}
	if maxWorkers < 2 {
		t.Errorf("no span recorded a parallel grant (max workers = %d):\n%s", maxWorkers, tr.Render())
	}
	if !strings.Contains(tr.Render(), "workers=") {
		t.Errorf("rendered trace missing workers=:\n%s", tr.Render())
	}
}

// TestTraceQueriesConfig checks that the TraceQueries switch records every
// session query into the trace store for /debug/queries.
func TestTraceQueriesConfig(t *testing.T) {
	c, _ := newCluster(t, 2, HRDBMSProfile())
	c.Cfg.TraceQueries = true
	if _, err := c.ExecSQL(`SELECT COUNT(*) FROM lineitem`); err != nil {
		t.Fatal(err)
	}
	// The store's flusher is asynchronous; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ts := c.Traces.Recent(); len(ts) > 0 {
			snap := ts[len(ts)-1].Snapshot()
			if !strings.Contains(snap.SQL, "lineitem") {
				t.Fatalf("stored trace sql = %q", snap.SQL)
			}
			if len(snap.Spans) == 0 {
				t.Fatal("stored trace has no spans")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trace never reached the store")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The registry observed the query latency histogram.
	if n := c.Reg.Histogram("query.seconds", querySecondsBounds).Total(); n == 0 {
		t.Error("query.seconds histogram not observed")
	}
	// And cluster gauges are live.
	found := map[string]bool{}
	for _, m := range c.Reg.Snapshot() {
		found[m.Name] = true
	}
	for _, name := range []string{"buffer.hits", "network.bytes_total", "wal.appends_total", "twopc.commits_total", "txn.active", "storage.rows_scanned_total"} {
		if !found[name] {
			t.Errorf("registry missing %s", name)
		}
	}
}

// BenchmarkDistributedQuery compares the untraced path (nil tracer — the
// default for every query) against full tracing on a distributed join.
// The untraced arm is the overhead-vs-seed check: with tr == nil no span is
// allocated, no operator is wrapped, and the only added work per query is
// one meter-scope registration.
func BenchmarkDistributedQuery(b *testing.B) {
	c, err := New(Config{NumWorkers: 3, BaseDir: b.TempDir(), PageSize: 8192, Nmax: 3, Profile: HRDBMSProfile()})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ddl := []string{
		`CREATE TABLE bk (k INT, grp INT, v FLOAT) PARTITION BY HASH(k)`,
		`CREATE TABLE bd (k INT, w FLOAT) PARTITION BY HASH(k)`,
	}
	for _, stmt := range ddl {
		if _, err := c.ExecSQL(stmt); err != nil {
			b.Fatal(err)
		}
	}
	var bkRows, bdRows []types.Row
	for i := int64(0); i < 2000; i++ {
		bkRows = append(bkRows, types.Row{types.NewInt(i), types.NewInt(i % 16), types.NewFloat(float64(i % 97))})
		bdRows = append(bdRows, types.Row{types.NewInt(i), types.NewFloat(float64(i % 13))})
	}
	if _, err := c.Load("bk", bkRows); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Load("bd", bdRows); err != nil {
		b.Fatal(err)
	}
	sql := `SELECT bk.grp, SUM(bd.w) FROM bk, bd WHERE bk.k = bd.k GROUP BY bk.grp`
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, traced bool) {
		for i := 0; i < b.N; i++ {
			node, err := c.Plan(sel)
			if err != nil {
				b.Fatal(err)
			}
			if traced {
				_, _, _, err = c.RunTraced(node, sql)
			} else {
				_, _, err = c.RunMetered(node)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}
