package cluster

import (
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/obs"
)

// This file wires the obs tracing layer into query distribution. A traced
// queryExec carries a QueryTrace and wraps every operator it places — on
// workers and on the coordinator — in an exec.Traced charging a span; the
// spans link parent→child along the operator tree, including across the
// exchange boundaries (gather Send spans, shuffle CountingEndpoints), so a
// distributed query yields one stitched per-node trace. An untraced
// queryExec (tr == nil) takes none of these paths: operators are returned
// unwrapped and execution is byte-identical to the pre-obs engine.

// startSpan opens a span on the query's trace (nil when untraced).
func (q *queryExec) startSpan(op string, node int) *obs.Span {
	return q.tr.StartSpan(op, node)
}

// attach wraps op so its rows and time are charged to sp, links the spans
// of child operators beneath it, and records the mapping so operators
// placed later can adopt this one as a child. Returns op unchanged when sp
// is nil.
func (q *queryExec) attach(op exec.Operator, sp *obs.Span, children ...exec.Operator) exec.Operator {
	if sp == nil {
		return op
	}
	// Operators with intra-operator (morsel) parallelism report the worker
	// count they were actually granted on their own span.
	switch o := op.(type) {
	case *exec.HashAggregate:
		o.Trace = sp
	case *exec.Sort:
		o.Trace = sp
	case *exec.HashJoin:
		o.Trace = sp
	}
	for _, ch := range children {
		q.spanOf(ch).SetParent(sp)
	}
	w := exec.NewTraced(op, sp)
	q.spans[w] = sp
	return w
}

// wrap is attach with span creation — the common case for operators whose
// span needs no other wiring (scan spans are created first so the scan
// thread can write into them; exchange spans feed CountingEndpoints).
func (q *queryExec) wrap(name string, node int, op exec.Operator, children ...exec.Operator) exec.Operator {
	if q.tr == nil {
		return op
	}
	return q.attach(op, q.startSpan(name, node), children...)
}

// spanOf returns the span a wrapped operator charges into (nil when
// untraced or unwrapped).
func (q *queryExec) spanOf(op exec.Operator) *obs.Span {
	if q.tr == nil {
		return nil
	}
	return q.spans[op]
}

// adopt maps derived to src's span: pass-through wrappers (Rename's schema
// override) add no work of their own, so parents link straight through.
func (q *queryExec) adopt(derived, src exec.Operator) {
	if q.tr == nil {
		return
	}
	if sp := q.spans[src]; sp != nil {
		q.spans[derived] = sp
	}
}

// registerClusterMetrics publishes the cluster's live counters into the
// registry as gauge functions: the subsystems keep their own atomics and
// the registry reads them at snapshot time, so registration costs nothing
// on the hot path.
func registerClusterMetrics(c *Cluster) {
	r := c.Reg
	r.RegisterGaugeFunc("buffer.hits", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.Store.Buf.Stats().Hits
		}
		return n
	})
	r.RegisterGaugeFunc("buffer.misses", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.Store.Buf.Stats().Misses
		}
		return n
	})
	r.RegisterGaugeFunc("buffer.evictions", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.Store.Buf.Stats().Evictions
		}
		return n
	})
	r.RegisterGaugeFunc("buffer.disk_writes", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.Store.Buf.Stats().Writes
		}
		return n
	})
	r.RegisterGaugeFunc("skipcache.skipped_total", c.totalSkipped)
	// Estimator health: how often the planner had to fall back to the
	// default row-count guess because a table had no collected statistics.
	r.RegisterGaugeFunc("opt.stats_default_fallback", func() int64 {
		var n int64
		seen := map[*catalog.Catalog]bool{}
		for _, cn := range c.Coords {
			if seen[cn.Cat] {
				continue
			}
			seen[cn.Cat] = true
			n += cn.Cat.DefaultStatsFallbacks()
		}
		return n
	})
	r.RegisterGaugeFunc("opt.feedback_entries", func() int64 {
		return int64(c.Feedback.Len())
	})
	r.RegisterGaugeFunc("storage.rows_scanned_total", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.Store.RowsScanned.Load()
		}
		return n
	})
	r.RegisterGaugeFunc("exec.rows_processed_total", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.execCtx.RowsProcessed.Load()
		}
		return n
	})
	r.RegisterGaugeFunc("exec.decode_typed_pages_total", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.execCtx.DecodeTypedPages.Load()
		}
		return n
	})
	r.RegisterGaugeFunc("exec.decode_boxed_pages_total", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.execCtx.DecodeBoxedPages.Load()
		}
		return n
	})
	r.RegisterGaugeFunc("exec.spill_bytes_total", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.execCtx.SpillBytes.Load()
		}
		return n
	})
	r.RegisterGaugeFunc("exec.state_bytes_total", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.execCtx.StateBytes.Load()
		}
		return n
	})
	r.RegisterGaugeFunc("network.bytes_total", func() int64 { return c.Fabric.Meter().TotalBytes() })
	r.RegisterGaugeFunc("network.messages_total", func() int64 { return c.Fabric.Meter().TotalMessages() })
	r.RegisterGaugeFunc("network.connections", func() int64 { return int64(c.Fabric.Meter().Connections()) })
	r.RegisterGaugeFunc("network.max_degree", func() int64 { return int64(c.Fabric.Meter().MaxNodeDegree()) })
	r.RegisterGaugeFunc("wal.appends_total", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.Log.Appends()
		}
		for _, cn := range c.Coords {
			n += cn.XA.XALog.Appends()
		}
		return n
	})
	r.RegisterGaugeFunc("wal.flushes_total", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += w.Log.Flushes()
		}
		for _, cn := range c.Coords {
			n += cn.XA.XALog.Flushes()
		}
		return n
	})
	r.RegisterGaugeFunc("twopc.commits_total", func() int64 {
		var n int64
		for _, cn := range c.Coords {
			n += cn.XA.Commits()
		}
		return n
	})
	r.RegisterGaugeFunc("twopc.aborts_total", func() int64 {
		var n int64
		for _, cn := range c.Coords {
			n += cn.XA.Aborts()
		}
		return n
	})
	r.RegisterGaugeFunc("txn.active", func() int64 {
		var n int64
		for _, w := range c.Workers {
			n += int64(w.Txn.ActiveCount())
		}
		return n
	})
}
