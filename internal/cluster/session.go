package cluster

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/opt"
	"repro/internal/page"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/types"
)

// Result is the outcome of one SQL statement.
type Result struct {
	Schema  types.Schema
	Rows    []types.Row
	Message string
}

// ExecSQL parses and executes one SQL statement against the cluster. Reads
// are planned by the coordinator's optimizer and executed across the
// workers; DML runs under a distributed transaction committed with
// hierarchical 2PC; DDL synchronizes coordinator metadata replicas.
func (c *Cluster) ExecSQL(sql string) (*Result, error) {
	return c.ExecSQLOpts(sql, nil)
}

// ExecSQLOpts executes one SQL statement with the serving layer's
// per-query controls (kill switch, batch sizing, parallelism clamp,
// admission annotation) threaded through read execution. A nil opts is
// exactly ExecSQL.
func (c *Cluster) ExecSQLOpts(sql string, opts *QueryOptions) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return c.execStmt(stmt, sql, opts)
}

// Prepared is a parsed statement a session holds for repeated execution:
// parse once, execute many times, each run with fresh per-query controls.
type Prepared struct {
	stmt sqlparse.Stmt
	sql  string
}

// SQL returns the statement text the prepared statement was parsed from.
func (p *Prepared) SQL() string { return p.sql }

// Prepare parses a statement for later execution via ExecPrepared.
func (c *Cluster) Prepare(sql string) (*Prepared, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Prepared{stmt: stmt, sql: sql}, nil
}

// ExecPrepared executes a previously prepared statement, skipping the parse.
func (c *Cluster) ExecPrepared(p *Prepared, opts *QueryOptions) (*Result, error) {
	return c.execStmt(p.stmt, p.sql, opts)
}

// execStmt dispatches one parsed statement. Reads honor opts; DML/DDL run
// to completion once started (killing them mid-2PC would trade a clean
// rollback path for torn global transactions), so opts only gates their
// start.
func (c *Cluster) execStmt(stmt sqlparse.Stmt, sql string, opts *QueryOptions) (*Result, error) {
	if opts != nil && opts.Cancel != nil {
		if err := opts.Cancel.Err(); err != nil {
			return nil, err
		}
	}
	switch x := stmt.(type) {
	case *sqlparse.Select:
		return c.runSelect(x, sql, opts)
	case *sqlparse.Explain:
		if x.Analyze {
			return c.explainAnalyze(x.Query, sql)
		}
		return c.explain(x.Query)
	case *sqlparse.CreateTable:
		return c.createTableStmt(x)
	case *sqlparse.DropTable:
		for _, cn := range c.Coords {
			if err := cn.Cat.DropTable(x.Name); err != nil {
				return nil, err
			}
		}
		for _, w := range c.Workers {
			delete(w.frags, lower(x.Name))
			delete(w.colFrags, lower(x.Name))
		}
		return &Result{Message: fmt.Sprintf("table %s dropped", x.Name)}, nil
	case *sqlparse.CreateIndex:
		return c.createIndexStmt(x)
	case *sqlparse.Insert:
		return c.insertStmt(x)
	case *sqlparse.Delete:
		return c.deleteStmt(x)
	case *sqlparse.Update:
		return c.updateStmt(x)
	case *sqlparse.Analyze:
		return c.analyzeStmt(x)
	case *sqlparse.Reorganize:
		return c.reorganizeStmt(x)
	default:
		return nil, fmt.Errorf("cluster: unsupported statement %T", stmt)
	}
}

// Plan builds and optimizes the logical plan for a SELECT.
func (c *Cluster) Plan(sel *sqlparse.Select) (plan.Node, error) {
	node, err := plan.Build(sel, c.Catalog())
	if err != nil {
		return nil, err
	}
	return opt.OptimizeOpts(node, c.Catalog(), c.optOptions())
}

// optOptions parameterizes the optimizer for this concrete cluster: the
// real worker count drives the network cost model, and the feedback store
// lets repeated queries estimate from observed cardinalities.
func (c *Cluster) optOptions() opt.Options {
	return opt.Options{Workers: len(c.Workers), Feedback: c.Feedback}
}

// querySecondsBounds buckets per-query latency for the query.seconds
// histogram (seconds, log-ish spacing).
var querySecondsBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

func (c *Cluster) runSelect(sel *sqlparse.Select, sql string, opts *QueryOptions) (*Result, error) {
	// Spread read queries over the coordinators (Section I: multiple
	// coordinators process requests in parallel; results route through the
	// coordinator that planned the query).
	coord := c.Coords[int(c.coordSeq.Add(1))%len(c.Coords)]
	node, err := plan.Build(sel, coord.Cat)
	if err != nil {
		return nil, err
	}
	node, err = opt.OptimizeOpts(node, coord.Cat, c.optOptions())
	if err != nil {
		return nil, err
	}
	// Both traced and untraced reads go through runMetered: it is the path
	// that threads per-query controls into distribution and frees the
	// query's fabric mailboxes afterwards — required for a server running
	// an unbounded stream of queries.
	rows, m, tr, err := c.runMetered(coord, node, c.Cfg.TraceQueries, sql, opts)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		c.Traces.Add(tr)
	}
	c.Reg.Histogram("query.seconds", querySecondsBounds).Observe(m.Wall.Seconds())
	return &Result{Schema: node.Schema(), Rows: rows}, nil
}

func (c *Cluster) explain(sel *sqlparse.Select) (*Result, error) {
	node, err := c.Plan(sel)
	if err != nil {
		return nil, err
	}
	var rows []types.Row
	for _, line := range strings.Split(strings.TrimRight(plan.Explain(node), "\n"), "\n") {
		rows = append(rows, types.Row{types.NewString(line)})
	}
	return &Result{
		Schema: types.NewSchema(types.Column{Name: "plan", Kind: types.KindString}),
		Rows:   rows,
	}, nil
}

// explainAnalyze executes the query with per-operator tracing and returns
// the stitched span tree — one line per operator, grouped by node along the
// exchange boundaries — plus a totals footer from the run metrics.
func (c *Cluster) explainAnalyze(sel *sqlparse.Select, sql string) (*Result, error) {
	node, err := c.Plan(sel)
	if err != nil {
		return nil, err
	}
	rows, m, tr, err := c.RunTraced(node, sql)
	if err != nil {
		return nil, err
	}
	c.Traces.Add(tr)
	c.Reg.Histogram("query.seconds", querySecondsBounds).Observe(m.Wall.Seconds())
	var out []types.Row
	for _, line := range strings.Split(strings.TrimRight(tr.Render(), "\n"), "\n") {
		out = append(out, types.Row{types.NewString(line)})
	}
	totals := fmt.Sprintf(
		"Totals: rows=%d scanned=%d pages=%d skipped=%d net=%dB msgs=%d spill=%dB state=%dB wall=%.3fms",
		len(rows), m.ScanRows, m.PagesRead, m.PagesSkipped, m.NetBytes,
		m.NetMessages, m.SpillBytes, m.StateBytes, float64(m.Wall.Nanoseconds())/1e6)
	out = append(out, types.Row{types.NewString(totals)})
	return &Result{
		Schema: types.NewSchema(types.Column{Name: "plan", Kind: types.KindString}),
		Rows:   out,
	}, nil
}

func (c *Cluster) createTableStmt(x *sqlparse.CreateTable) (*Result, error) {
	def := &catalog.TableDef{
		Name:        strings.ToLower(x.Name),
		Schema:      types.Schema{Cols: x.Cols},
		Columnar:    x.Columnar,
		ClusterCols: x.ClusterCols,
	}
	switch x.PartKind {
	case "HASH":
		def.Part = catalog.Partitioning{Kind: catalog.PartHash, Cols: x.PartCols}
	case "RANGE":
		def.Part = catalog.Partitioning{Kind: catalog.PartRange, Cols: x.PartCols, Bounds: x.RangeBounds}
	case "REPLICATED":
		def.Part = catalog.Partitioning{Kind: catalog.PartReplicated}
	default:
		return nil, fmt.Errorf("cluster: unknown partitioning %q", x.PartKind)
	}
	if err := c.CreateTable(def); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("table %s created", def.Name)}, nil
}

func (c *Cluster) createIndexStmt(x *sqlparse.CreateIndex) (*Result, error) {
	kind := catalog.IndexBTree
	if x.Using == "SKIPLIST" {
		kind = catalog.IndexSkipList
	}
	def := &catalog.IndexDef{Name: strings.ToLower(x.Name), Table: strings.ToLower(x.Table), Cols: x.Cols, Kind: kind}
	for _, cn := range c.Coords {
		if err := cn.Cat.CreateIndex(def); err != nil {
			return nil, err
		}
	}
	// Build the index on every worker's fragment.
	tbl, err := c.Catalog().Table(x.Table)
	if err != nil {
		return nil, err
	}
	if tbl.Columnar {
		return nil, fmt.Errorf("cluster: secondary indexes require row tables")
	}
	offs, err := tbl.ColOffsets(x.Cols)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, w := range c.Workers {
		n, err := w.buildIndex(def, tbl, offs, c.Cfg.PageSize)
		if err != nil {
			return nil, err
		}
		total += n
	}
	return &Result{Message: fmt.Sprintf("index %s created (%d entries)", def.Name, total)}, nil
}

// buildIndex scans the worker's fragment into a fresh disk index.
func (w *Worker) buildIndex(def *catalog.IndexDef, tbl *catalog.TableDef, offs []int, pageSize int) (int, error) {
	if pageSize == 0 {
		pageSize = w.Store.PageSize()
	}
	fileID, err := w.Store.OpenFile(0, def.Name+".idx", true)
	if err != nil {
		return 0, err
	}
	space := index.NewBufferSpace(w.Store.Buf, fileID, w.Store.PageSize(), 0)
	insert := func(fn func(key types.Row, rid page.RID) error) (int, error) {
		count := 0
		fr := w.frags[lower(tbl.Name)]
		_, err := fr.Scan(storage.ScanOptions{}, func(rid page.RID, r types.Row) bool {
			if err := fn(r.Project(offs), rid); err != nil {
				return false
			}
			count++
			return true
		})
		return count, err
	}
	if def.Kind == catalog.IndexSkipList {
		sl, err := index.CreateSkipList(space)
		if err != nil {
			return 0, err
		}
		w.skipIdx[def.Name] = sl
		return insert(sl.Insert)
	}
	bt, err := index.CreateBTree(space)
	if err != nil {
		return 0, err
	}
	w.btreeIdx[def.Name] = bt
	return insert(bt.Insert)
}

// IndexLookup searches a named index on every worker, returning matching
// rows (the disk-resident index path; the optimizer's table-vs-index scan
// choice uses this for selective point queries).
func (c *Cluster) IndexLookup(indexName string, key types.Row) ([]types.Row, error) {
	var idxDef *catalog.IndexDef
	for _, tblName := range c.Catalog().Tables() {
		for _, d := range c.Catalog().IndexesOn(tblName) {
			if strings.EqualFold(d.Name, indexName) {
				idxDef = d
			}
		}
	}
	if idxDef == nil {
		return nil, fmt.Errorf("cluster: index %s not found", indexName)
	}
	tbl, err := c.Catalog().Table(idxDef.Table)
	if err != nil {
		return nil, err
	}
	var out []types.Row
	for _, w := range c.Workers {
		var rids []page.RID
		if bt := w.btreeIdx[idxDef.Name]; bt != nil {
			rids, err = bt.Search(key)
		} else if sl := w.skipIdx[idxDef.Name]; sl != nil {
			rids, err = sl.Search(key)
		} else {
			continue
		}
		if err != nil {
			return nil, err
		}
		fr := w.frags[lower(tbl.Name)]
		for _, rid := range rids {
			r, ok, err := fr.Get(rid)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// evalLiteralRow evaluates an INSERT VALUES row and coerces to the schema.
func evalLiteralRow(exprs []expr.Expr, sch types.Schema) (types.Row, error) {
	if len(exprs) != sch.Len() {
		return nil, fmt.Errorf("cluster: INSERT arity %d != %d columns", len(exprs), sch.Len())
	}
	row := make(types.Row, len(exprs))
	for i, e := range exprs {
		v, err := e.Eval(nil)
		if err != nil {
			return nil, err
		}
		// Coerce ints into float columns and int days into dates.
		if v.K == types.KindInt {
			switch sch.Cols[i].Kind {
			case types.KindFloat:
				v = types.NewFloat(float64(v.I))
			case types.KindDate:
				v = types.NewDate(v.I)
			}
		}
		row[i] = v
	}
	return row, nil
}

// insertStmt routes rows to workers by partitioning and commits via 2PC.
func (c *Cluster) insertStmt(x *sqlparse.Insert) (*Result, error) {
	def, err := c.Catalog().Table(x.Table)
	if err != nil {
		return nil, err
	}
	if def.Columnar {
		// Columnar fragments are bulk-load only; route through Load.
		var rows []types.Row
		for _, re := range x.Rows {
			r, err := evalLiteralRow(re, def.Schema)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
		n, err := c.Load(x.Table, rows)
		if err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("%d rows loaded", n)}, nil
	}
	txid := c.txSeq.Add(1)
	involved := map[int]bool{}
	count := 0
	abort := func(e error) (*Result, error) {
		for wid := range involved {
			w := c.Workers[c.workerIndex(wid)]
			if tx, ok := w.Txn.Lookup(txid); ok {
				if rerr := w.Txn.Rollback(tx); rerr != nil {
					e = errors.Join(e, fmt.Errorf("cluster: rollback tx %d on worker %d: %w", txid, wid, rerr))
				}
			}
		}
		return nil, e
	}
	for _, re := range x.Rows {
		r, err := evalLiteralRow(re, def.Schema)
		if err != nil {
			return abort(err)
		}
		nodes, err := def.NodeFor(r, len(c.Workers))
		if err != nil {
			return abort(err)
		}
		for _, n := range nodes {
			w := c.Workers[n]
			tx, ok := w.Txn.Lookup(txid)
			if !ok {
				tx = w.Txn.BeginWithID(txid)
				involved[w.ID] = true
			}
			rid, err := w.frags[lower(def.Name)].Insert(tx, r)
			if err != nil {
				return abort(err)
			}
			if err := w.maintainIndexes(c.Catalog(), def, r, rid, true); err != nil {
				return abort(err)
			}
		}
		count++
	}
	var ids []int
	for wid := range involved {
		ids = append(ids, wid)
	}
	committed, err := c.Coords[0].XA.CommitGlobal(txid, ids)
	if err != nil {
		return nil, err
	}
	if !committed {
		return nil, fmt.Errorf("cluster: transaction %d rolled back", txid)
	}
	return &Result{Message: fmt.Sprintf("%d rows inserted", count)}, nil
}

// deleteStmt deletes matching rows on every worker under one global txn.
func (c *Cluster) deleteStmt(x *sqlparse.Delete) (*Result, error) {
	def, err := c.Catalog().Table(x.Table)
	if err != nil {
		return nil, err
	}
	if def.Columnar {
		return nil, fmt.Errorf("cluster: DELETE requires a row table (reorganize/reload columnar tables)")
	}
	var pred expr.Expr
	if x.Where != nil {
		pred = expr.Clone(x.Where)
		if err := expr.Bind(pred, def.Schema); err != nil {
			return nil, err
		}
	}
	txid := c.txSeq.Add(1)
	var ids []int
	total := 0
	for _, w := range c.Workers {
		fr := w.frags[lower(def.Name)]
		tx := w.Txn.BeginWithID(txid)
		ids = append(ids, w.ID)
		// Scan under exclusive page locks (write intent) so concurrent
		// writers serialize, then delete.
		var rids []page.RID
		scanErr := error(nil)
		_, err := fr.Scan(storage.ScanOptions{Tx: tx, LockExclusive: true},
			func(rid page.RID, r types.Row) bool {
				if pred != nil {
					ok, err := expr.EvalBool(pred, r)
					if err != nil {
						scanErr = err
						return false
					}
					if !ok {
						return true
					}
				}
				rids = append(rids, rid)
				return true
			})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return nil, errors.Join(err, c.abortGlobal(txid, ids))
		}
		for _, rid := range rids {
			old, hadOld, err := fr.Get(rid)
			if err != nil {
				return nil, errors.Join(err, c.abortGlobal(txid, ids))
			}
			deleted, err := fr.Delete(tx, rid)
			if err != nil {
				return nil, errors.Join(err, c.abortGlobal(txid, ids))
			}
			if !deleted {
				continue // lost the race to another committed delete
			}
			if hadOld {
				if err := w.maintainIndexes(c.Catalog(), def, old, rid, false); err != nil {
					return nil, errors.Join(err, c.abortGlobal(txid, ids))
				}
			}
			total++
		}
	}
	if len(ids) > 0 {
		committed, err := c.Coords[0].XA.CommitGlobal(txid, ids)
		if err != nil {
			return nil, err
		}
		if !committed {
			return nil, fmt.Errorf("cluster: transaction %d rolled back", txid)
		}
	}
	return &Result{Message: fmt.Sprintf("%d rows deleted", total)}, nil
}

// updateStmt implements out-of-place update: delete + reinsert (possibly
// on another worker if the partition key changed), in one global txn.
func (c *Cluster) updateStmt(x *sqlparse.Update) (*Result, error) {
	def, err := c.Catalog().Table(x.Table)
	if err != nil {
		return nil, err
	}
	if def.Columnar {
		return nil, fmt.Errorf("cluster: UPDATE requires a row table")
	}
	var pred expr.Expr
	if x.Where != nil {
		pred = expr.Clone(x.Where)
		if err := expr.Bind(pred, def.Schema); err != nil {
			return nil, err
		}
	}
	setExprs := map[int]expr.Expr{}
	for col, e := range x.Set {
		idx := def.Schema.Find(col)
		if idx < 0 {
			return nil, fmt.Errorf("cluster: UPDATE column %s not in %s", col, x.Table)
		}
		ec := expr.Clone(e)
		if err := expr.Bind(ec, def.Schema); err != nil {
			return nil, err
		}
		setExprs[idx] = ec
	}
	txid := c.txSeq.Add(1)
	involved := map[int]bool{}
	total := 0
	getTx := func(w *Worker) interface {
		TxID() uint64
		LockPage(page.Key, bool) error
		LogInsert(page.Key, uint16, []byte) uint64
		LogDelete(page.Key, uint16, []byte) uint64
	} {
		if tx, ok := w.Txn.Lookup(txid); ok {
			return tx
		}
		involved[w.ID] = true
		return w.Txn.BeginWithID(txid)
	}
	fail := func(err error) (*Result, error) {
		var ids []int
		for wid := range involved {
			ids = append(ids, wid)
		}
		return nil, errors.Join(err, c.abortGlobal(txid, ids))
	}
	for _, w := range c.Workers {
		fr := w.frags[lower(def.Name)]
		type change struct {
			rid    page.RID
			newRow types.Row
		}
		var changes []change
		tx := getTx(w)
		var scanErr error
		// Exclusive page locks during the scan: concurrent UPDATE
		// statements serialize instead of double-applying.
		_, err := fr.Scan(storage.ScanOptions{Tx: tx, LockExclusive: true},
			func(rid page.RID, r types.Row) bool {
				if pred != nil {
					ok, err := expr.EvalBool(pred, r)
					if err != nil {
						scanErr = err
						return false
					}
					if !ok {
						return true
					}
				}
				newRow := r.Clone()
				for idx, e := range setExprs {
					v, err := e.Eval(r)
					if err != nil {
						scanErr = err
						return false
					}
					if v.K == types.KindInt && def.Schema.Cols[idx].Kind == types.KindFloat {
						v = types.NewFloat(float64(v.I))
					}
					newRow[idx] = v
				}
				changes = append(changes, change{rid, newRow})
				return true
			})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return fail(err)
		}
		for _, ch := range changes {
			old, hadOld, err := fr.Get(ch.rid)
			if err != nil {
				return fail(err)
			}
			deleted, err := fr.Delete(tx, ch.rid)
			if err != nil {
				return fail(err)
			}
			if !deleted {
				continue // row vanished under a concurrent committed delete
			}
			if hadOld {
				if err := w.maintainIndexes(c.Catalog(), def, old, ch.rid, false); err != nil {
					return fail(err)
				}
			}
			nodes, err := def.NodeFor(ch.newRow, len(c.Workers))
			if err != nil {
				return fail(err)
			}
			for _, n := range nodes {
				dst := c.Workers[n]
				dtx := getTx(dst)
				rid, err := dst.frags[lower(def.Name)].Insert(dtx, ch.newRow)
				if err != nil {
					return fail(err)
				}
				if err := dst.maintainIndexes(c.Catalog(), def, ch.newRow, rid, true); err != nil {
					return fail(err)
				}
			}
			total++
		}
	}
	if len(involved) > 0 {
		var ids []int
		for wid := range involved {
			ids = append(ids, wid)
		}
		committed, err := c.Coords[0].XA.CommitGlobal(txid, ids)
		if err != nil {
			return nil, err
		}
		if !committed {
			return nil, fmt.Errorf("cluster: transaction %d rolled back", txid)
		}
	}
	return &Result{Message: fmt.Sprintf("%d rows updated", total)}, nil
}

// reorganizeStmt rewrites every fragment of a table: tombstones compact,
// clustering order is restored, and skipping caches reset (Section III).
func (c *Cluster) reorganizeStmt(x *sqlparse.Reorganize) (*Result, error) {
	def, err := c.Catalog().Table(x.Table)
	if err != nil {
		return nil, err
	}
	if def.Columnar {
		return nil, fmt.Errorf("cluster: REORGANIZE supports row tables (reload columnar tables)")
	}
	for _, w := range c.Workers {
		if err := w.frags[lower(def.Name)].Reorganize(); err != nil {
			return nil, err
		}
	}
	return &Result{Message: fmt.Sprintf("table %s reorganized", def.Name)}, nil
}

// abortGlobal rolls back a distributed statement's local transactions,
// reporting any rollback that itself failed (a worker whose undo failed
// may hold locks and divergent data until recovery).
func (c *Cluster) abortGlobal(txid uint64, ids []int) error {
	var firstErr error
	for _, wid := range ids {
		w := c.Workers[c.workerIndex(wid)]
		if tx, ok := w.Txn.Lookup(txid); ok {
			if err := w.Txn.Rollback(tx); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cluster: rollback tx %d on worker %d: %w", txid, wid, err)
			}
		}
	}
	return firstErr
}

// analyzeStmt recomputes table statistics from a full scan, streaming rows
// through the statistics builder so the table is never materialized at the
// coordinator: histograms come from a bounded reservoir sample, NDV from a
// fixed-size sketch, so ANALYZE memory is constant in table size.
func (c *Cluster) analyzeStmt(x *sqlparse.Analyze) (*Result, error) {
	def, err := c.Catalog().Table(x.Table)
	if err != nil {
		return nil, err
	}
	sel := &sqlparse.Select{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  []sqlparse.TableRef{{Table: def.Name}},
		Limit: -1,
	}
	node, err := plan.Build(sel, c.Catalog())
	if err != nil {
		return nil, err
	}
	op, err := c.CompileDistributed(node)
	if err != nil {
		return nil, err
	}
	sb := catalog.NewStatsBuilder(def.Schema)
	if err := op.Open(); err != nil {
		return nil, err
	}
	for {
		r, ok, err := op.Next()
		if err != nil {
			_ = op.Close()
			return nil, err
		}
		if !ok {
			break
		}
		sb.Add(r)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	stats := sb.Finish()
	// The fresh full-scan builder supersedes the accumulated load-time one
	// (which drifts under deletes/updates); later loads extend it.
	c.statsMu.Lock()
	c.loadStats[lower(def.Name)] = sb
	c.statsMu.Unlock()
	for _, cn := range c.Coords {
		cn.Cat.SetStats(def.Name, stats)
	}
	return &Result{Message: fmt.Sprintf("analyzed %s: %d rows", def.Name, stats.RowCount)}, nil
}
