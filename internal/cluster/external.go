package cluster

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/external"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

// QueryExternal scans a registered external table, distributing its
// horizontal partitions across the workers (Section III's external table
// framework: the UET exposes partitioning, the system spreads the scan).
// where is an optional SQL boolean expression over the table's columns.
func (c *Cluster) QueryExternal(name, where string) ([]types.Row, error) {
	tbl, ok := c.External.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("cluster: external table %s not registered", name)
	}
	var pred expr.Expr
	if where != "" {
		sel, err := sqlparse.ParseSelect("SELECT 1 FROM dual WHERE " + where)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad WHERE: %w", err)
		}
		pred = sel.Where
		if err := expr.Bind(pred, tbl.Schema()); err != nil {
			return nil, err
		}
	}
	assign := external.AssignPartitions(tbl.Partitions(), len(c.Workers))
	q := &queryExec{c: c, coord: c.Coords[0], qid: c.querySeq.Add(1), prof: c.Cfg.Profile}
	ds := &dstream{sch: tbl.Schema(), dist: distInfo{kind: distRandom}}
	for wi := range c.Workers {
		ds.ops = append(ds.ops, exec.NewExternalScan(tbl, assign[wi], "", pred))
	}
	return exec.Collect(q.gatherPlain(ds))
}
