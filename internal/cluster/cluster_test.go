package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/page"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/types"
)

// newCluster spins up an in-process cluster with TPC-H-ish tables loaded.
func newCluster(t *testing.T, workers int, prof ExecProfile) (*Cluster, map[string][]types.Row) {
	t.Helper()
	// Registered before the Close cleanup below so LIFO ordering shuts the
	// cluster down first and the leak check sees the settled state.
	testutil.AssertNoGoroutineLeak(t)
	c, err := New(Config{
		NumWorkers: workers,
		BaseDir:    t.TempDir(),
		PageSize:   8192,
		Nmax:       3,
		MemRows:    1 << 20,
		Profile:    prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	ddl := []string{
		`CREATE TABLE nation (n_nationkey INT, n_name VARCHAR(25)) PARTITION BY REPLICATED`,
		`CREATE TABLE customer (c_custkey INT, c_name VARCHAR(25), c_nationkey INT, c_acctbal FLOAT)
			PARTITION BY HASH(c_custkey)`,
		`CREATE TABLE orders (o_orderkey INT, o_custkey INT, o_totalprice FLOAT, o_orderdate DATE)
			PARTITION BY HASH(o_custkey)`,
		`CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_quantity FLOAT,
			l_extendedprice FLOAT, l_discount FLOAT, l_shipdate DATE)
			PARTITION BY HASH(l_orderkey)`,
	}
	for _, stmt := range ddl {
		if _, err := c.ExecSQL(stmt); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}

	data := map[string][]types.Row{}
	data["nation"] = []types.Row{
		{types.NewInt(1), types.NewString("CANADA")},
		{types.NewInt(2), types.NewString("FRANCE")},
		{types.NewInt(3), types.NewString("KENYA")},
	}
	for i := int64(0); i < 60; i++ {
		data["customer"] = append(data["customer"], types.Row{
			types.NewInt(i), types.NewString(fmt.Sprintf("cust%03d", i)),
			types.NewInt(i%3 + 1), types.NewFloat(float64(i*13%500) - 100),
		})
	}
	for i := int64(0); i < 240; i++ {
		data["orders"] = append(data["orders"], types.Row{
			types.NewInt(1000 + i), types.NewInt(i % 60),
			types.NewFloat(float64(i*7%300) + 1),
			types.NewDate(types.MustDate("1995-01-01").I + i%700),
		})
	}
	for i := int64(0); i < 900; i++ {
		data["lineitem"] = append(data["lineitem"], types.Row{
			types.NewInt(1000 + i%240), types.NewInt(i % 40),
			types.NewFloat(float64(i%50) + 1),
			types.NewFloat(float64(i*11%1000) + 10),
			types.NewFloat(float64(i%10) / 100),
			types.NewDate(types.MustDate("1995-01-05").I + i%700),
		})
	}
	for tbl, rows := range data {
		if _, err := c.Load(tbl, rows); err != nil {
			t.Fatalf("load %s: %v", tbl, err)
		}
	}
	return c, data
}

// reference executes the same SQL single-node over the in-memory rows.
func reference(t *testing.T, c *Cluster, data map[string][]types.Row, sql string) []types.Row {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(sel, c.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	prov := &plan.MemProvider{Cat: c.Catalog(), Rows: data}
	op, err := plan.Execute(node, prov, exec.NewCtx(t.TempDir(), 0))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// rowKey renders a row with floats rounded to 9 significant digits, so
// distribution-order differences in float summation do not fail equality.
func rowKey(r types.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		if v.K == types.KindFloat {
			parts[i] = strconv.FormatFloat(v.F, 'g', 9, 64)
		} else {
			parts[i] = v.String()
		}
	}
	return strings.Join(parts, "\t")
}

// normalize renders rows as sorted strings for order-insensitive compare.
func normalize(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = rowKey(r)
	}
	sort.Strings(out)
	return out
}

// checkAgainstReference runs sql distributed and single-node and compares.
func checkAgainstReference(t *testing.T, c *Cluster, data map[string][]types.Row, sql string, ordered bool) {
	t.Helper()
	res, err := c.ExecSQL(sql)
	if err != nil {
		t.Fatalf("distributed %q: %v", sql, err)
	}
	want := reference(t, c, data, sql)
	if len(res.Rows) != len(want) {
		t.Fatalf("%q: got %d rows, want %d", sql, len(res.Rows), len(want))
	}
	if ordered {
		for i := range want {
			if rowKey(res.Rows[i]) != rowKey(want[i]) {
				t.Fatalf("%q row %d:\n got %v\nwant %v", sql, i, res.Rows[i], want[i])
			}
		}
		return
	}
	g, w := normalize(res.Rows), normalize(want)
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("%q (unordered) row %d:\n got %v\nwant %v", sql, i, g[i], w[i])
		}
	}
}

func TestDistributedScanFilter(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		"SELECT c_name, c_acctbal FROM customer WHERE c_acctbal > 100", false)
}

func TestDistributedColocatedJoin(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	// customer and orders both hash-partitioned on custkey: co-located.
	checkAgainstReference(t, c, data,
		`SELECT c_name, o_totalprice FROM customer, orders
		 WHERE c_custkey = o_custkey AND o_totalprice > 250`, false)
}

func TestDistributedShuffleJoin(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	// orders partitioned on o_custkey but joined on o_orderkey: shuffle.
	checkAgainstReference(t, c, data,
		`SELECT o_orderkey, l_quantity FROM orders, lineitem
		 WHERE o_orderkey = l_orderkey AND l_quantity > 45`, false)
}

func TestDistributedReplicatedJoin(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT n_name, count(*) AS cnt FROM nation, customer
		 WHERE n_nationkey = c_nationkey GROUP BY n_name ORDER BY n_name`, true)
}

func TestDistributedFourWayJoinAgg(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	// The paper's running example: how much have CANADA customers spent.
	checkAgainstReference(t, c, data,
		`SELECT sum(l_extendedprice) FROM lineitem, orders, customer, nation
		 WHERE o_orderkey = l_orderkey AND o_custkey = c_custkey
		   AND c_nationkey = n_nationkey AND n_name = 'CANADA'`, true)
}

func TestDistributedGroupByShuffle(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT l_partkey, sum(l_quantity) AS q, count(*) AS c, avg(l_extendedprice) AS a
		 FROM lineitem GROUP BY l_partkey ORDER BY l_partkey`, true)
}

func TestDistributedScalarAggTree(t *testing.T) {
	c, data := newCluster(t, 5, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT sum(l_quantity), count(*), min(l_shipdate), max(l_shipdate), avg(l_discount) FROM lineitem`, true)
}

func TestDistributedSortMerge(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT c_custkey, c_acctbal FROM customer ORDER BY c_acctbal DESC, c_custkey`, true)
}

func TestDistributedTopK(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC, o_orderkey LIMIT 7`, true)
}

func TestDistributedDistinct(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT DISTINCT c_nationkey FROM customer ORDER BY c_nationkey`, true)
}

func TestDistributedHaving(t *testing.T) {
	c, data := newCluster(t, 3, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT o_custkey, count(*) AS cnt FROM orders GROUP BY o_custkey
		 HAVING count(*) > 3 ORDER BY o_custkey`, true)
}

func TestDistributedExistsSubquery(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT c_name FROM customer c
		 WHERE EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_totalprice > 290)
		 ORDER BY c_name`, true)
	checkAgainstReference(t, c, data,
		`SELECT count(*) FROM customer c
		 WHERE NOT EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)`, true)
}

func TestDistributedScalarSubquery(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT count(*) FROM customer WHERE c_acctbal > (SELECT avg(c_acctbal) FROM customer)`, true)
}

func TestDistributedCorrelatedScalar(t *testing.T) {
	c, data := newCluster(t, 3, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT count(*) FROM lineitem l1
		 WHERE l1.l_quantity < (SELECT avg(l2.l_quantity) FROM lineitem l2 WHERE l2.l_partkey = l1.l_partkey)`, true)
}

func TestDistributedDerivedTable(t *testing.T) {
	c, data := newCluster(t, 4, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT d.o_custkey, d.total FROM
		   (SELECT o_custkey, sum(o_totalprice) AS total FROM orders GROUP BY o_custkey) AS d
		 WHERE d.total > 500 ORDER BY d.total DESC, d.o_custkey`, true)
}

func TestBaselineProfilesAgree(t *testing.T) {
	// Every execution profile must return the same answers — the profiles
	// differ in HOW, not WHAT.
	sql := `SELECT l_partkey, sum(l_extendedprice * (1 - l_discount)) AS rev
		FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_totalprice > 50
		GROUP BY l_partkey ORDER BY l_partkey`
	profiles := map[string]ExecProfile{
		"hrdbms": HRDBMSProfile(),
		"hive-like": {
			BlockingShuffle: true, MaterializeShuffle: true, ProbeParallelism: 1,
		},
		"spark-like": {
			MaterializeShuffle: true, ProbeParallelism: 2,
		},
		"greenplum-like": {
			EnforceLocality: true, UseMinMax: true, ProbeParallelism: 2,
		},
	}
	var want []string
	for name, prof := range profiles {
		c, _ := newCluster(t, 3, prof)
		res, err := c.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			got[i] = rowKey(r)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s row %d: %q != %q", name, i, got[i], want[i])
			}
		}
	}
}

func TestExplainStatement(t *testing.T) {
	c, _ := newCluster(t, 2, HRDBMSProfile())
	res, err := c.ExecSQL("EXPLAIN SELECT count(*) FROM customer WHERE c_acctbal > 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("explain rows = %v", res.Rows)
	}
}

func TestInsertDeleteUpdate2PC(t *testing.T) {
	c, _ := newCluster(t, 3, HRDBMSProfile())
	if _, err := c.ExecSQL(`CREATE TABLE t (k INT, v VARCHAR(10), amt FLOAT) PARTITION BY HASH(k)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecSQL(`INSERT INTO t VALUES (1, 'a', 10.5), (2, 'b', 20.0), (3, 'c', 30.0), (4, 'd', 40.0)`); err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecSQL(`SELECT k, v, amt FROM t ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[0][1].Str() != "a" {
		t.Fatalf("after insert: %v", res.Rows)
	}
	if _, err := c.ExecSQL(`DELETE FROM t WHERE k = 2`); err != nil {
		t.Fatal(err)
	}
	res, _ = c.ExecSQL(`SELECT count(*) FROM t`)
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("after delete: %v", res.Rows)
	}
	if _, err := c.ExecSQL(`UPDATE t SET amt = amt + 1 WHERE k >= 3`); err != nil {
		t.Fatal(err)
	}
	res, _ = c.ExecSQL(`SELECT amt FROM t WHERE k = 3`)
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 31 {
		t.Fatalf("after update: %v", res.Rows)
	}
	// Repartitioning update: change the partition key.
	if _, err := c.ExecSQL(`UPDATE t SET k = 100 WHERE k = 1`); err != nil {
		t.Fatal(err)
	}
	res, _ = c.ExecSQL(`SELECT k FROM t ORDER BY k`)
	if len(res.Rows) != 3 || res.Rows[2][0].Int() != 100 {
		t.Fatalf("after key update: %v", res.Rows)
	}
}

func TestCreateIndexAndLookup(t *testing.T) {
	c, _ := newCluster(t, 3, HRDBMSProfile())
	if _, err := c.ExecSQL(`CREATE INDEX idx_cust_nation ON customer(c_nationkey)`); err != nil {
		t.Fatal(err)
	}
	rows, err := c.IndexLookup("idx_cust_nation", types.Row{types.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // 60 customers, nation keys 1..3 uniform
		t.Fatalf("index lookup rows = %d, want 20", len(rows))
	}
	// Skip list variant.
	if _, err := c.ExecSQL(`CREATE INDEX sl_cust ON customer(c_custkey) USING SKIPLIST`); err != nil {
		t.Fatal(err)
	}
	rows, err = c.IndexLookup("sl_cust", types.Row{types.NewInt(17)})
	if err != nil || len(rows) != 1 {
		t.Fatalf("skiplist lookup = %v err=%v", rows, err)
	}
}

func TestAnalyzeUpdatesStats(t *testing.T) {
	c, _ := newCluster(t, 2, HRDBMSProfile())
	if _, err := c.ExecSQL("ANALYZE lineitem"); err != nil {
		t.Fatal(err)
	}
	stats := c.Catalog().Stats("lineitem")
	if stats.RowCount != 900 {
		t.Fatalf("analyzed rowcount = %d", stats.RowCount)
	}
	if stats.Cols["l_partkey"].NDV != 40 {
		t.Fatalf("l_partkey NDV = %d", stats.Cols["l_partkey"].NDV)
	}
}

func TestMultipleCoordinatorsMetadataSync(t *testing.T) {
	c, err := New(Config{
		NumWorkers: 2, NumCoordinators: 2, BaseDir: t.TempDir(),
		PageSize: 4096, Profile: HRDBMSProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ExecSQL(`CREATE TABLE syncme (a INT, b INT) PARTITION BY HASH(a)`); err != nil {
		t.Fatal(err)
	}
	// Both coordinator replicas must know the table.
	for i, cn := range c.Coords {
		if _, err := cn.Cat.Table("syncme"); err != nil {
			t.Errorf("coordinator %d missing table: %v", i, err)
		}
	}
}

func TestSingleWorkerCluster(t *testing.T) {
	c, data := newCluster(t, 1, HRDBMSProfile())
	checkAgainstReference(t, c, data,
		`SELECT count(*), sum(o_totalprice) FROM orders`, true)
}

func TestSkippingAcrossQueries(t *testing.T) {
	// Small pages so fragments span many full pages (the predicate cache
	// records absence facts only for full pages). Min-max skipping is
	// disabled so the predicate cache is what does the skipping here.
	prof := HRDBMSProfile()
	prof.UseMinMax = false
	c, err := New(Config{
		NumWorkers: 2, BaseDir: t.TempDir(), PageSize: 1024,
		Nmax: 3, Profile: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ExecSQL(`CREATE TABLE lineitem (l_orderkey INT, l_quantity FLOAT)
		PARTITION BY HASH(l_orderkey)`); err != nil {
		t.Fatal(err)
	}
	var rows []types.Row
	for i := int64(0); i < 2000; i++ {
		rows = append(rows, types.Row{types.NewInt(i), types.NewFloat(float64(i % 50))})
	}
	if _, err := c.Load("lineitem", rows); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT count(*) FROM lineitem WHERE l_quantity > 200`
	r1, err := c.ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0].Int() != 0 {
		t.Fatalf("selective count = %v", r1.Rows)
	}
	// Second identical query: predicate cache should skip pages.
	before := pagesSkipped(c)
	if _, err := c.ExecSQL(sql); err != nil {
		t.Fatal(err)
	}
	after := pagesSkipped(c)
	if after <= before {
		t.Errorf("no pages skipped on repeat query (before=%d after=%d)", before, after)
	}
}

// pagesSkipped sums the predicate-cache hits over all lineitem fragments.
func pagesSkipped(c *Cluster) int64 {
	var total int64
	for _, w := range c.Workers {
		if fr := w.frags["lineitem"]; fr != nil {
			h, _ := fr.PredCache.Stats()
			total += h
		}
	}
	return total
}

func TestCatalogPartitioningHonored(t *testing.T) {
	c, _ := newCluster(t, 4, HRDBMSProfile())
	// Each customer row must live on exactly the worker its hash says.
	def, _ := c.Catalog().Table("customer")
	for wi, w := range c.Workers {
		fr := w.frags["customer"]
		n, err := fr.RowCount()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Errorf("worker %d has no customer rows — bad balance", wi)
		}
		_, err = fr.Scan(storage.ScanOptions{}, func(rid page.RID, r types.Row) bool {
			nodes, nerr := def.NodeFor(r, len(c.Workers))
			if nerr != nil || len(nodes) != 1 || nodes[0] != wi {
				t.Errorf("row %v on worker %d, want %v", r, wi, nodes)
				return false
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRestartReloadsDataAndPredCache(t *testing.T) {
	dir := t.TempDir()
	prof := HRDBMSProfile()
	prof.UseMinMax = false // isolate the predicate cache
	cfg := Config{NumWorkers: 2, BaseDir: dir, PageSize: 1024, Nmax: 3, Profile: prof}
	ddl := `CREATE TABLE li (k INT, qty FLOAT) PARTITION BY HASH(k)`
	sql := `SELECT count(*) FROM li WHERE qty > 500`

	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.ExecSQL(ddl); err != nil {
		t.Fatal(err)
	}
	var rows []types.Row
	for i := int64(0); i < 1500; i++ {
		rows = append(rows, types.Row{types.NewInt(i), types.NewFloat(float64(i % 100))})
	}
	if _, err := c1.Load("li", rows); err != nil {
		t.Fatal(err)
	}
	// Populate the predicate cache, then shut down (persists caches).
	if _, err := c1.ExecSQL(sql); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directories: data and caches must survive.
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.ExecSQL(ddl); err != nil {
		t.Fatal(err)
	}
	res, err := c2.ExecSQL(`SELECT count(*) FROM li`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1500 {
		t.Fatalf("rows after restart = %v", res.Rows)
	}
	// The reloaded predicate cache should skip pages on the FIRST run
	// after restart.
	sel, _ := sqlparse.ParseSelect(sql)
	node, err := c2.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := c2.RunMetered(node)
	if err != nil {
		t.Fatal(err)
	}
	if m.PagesSkipped == 0 {
		t.Errorf("restarted cluster skipped no pages (read %d)", m.PagesRead)
	}
}

func TestReorganizeStatement(t *testing.T) {
	c, _ := newCluster(t, 2, HRDBMSProfile())
	if _, err := c.ExecSQL(`DELETE FROM lineitem WHERE l_partkey < 20`); err != nil {
		t.Fatal(err)
	}
	before, _ := c.ExecSQL(`SELECT count(*) FROM lineitem`)
	res, err := c.ExecSQL(`REORGANIZE lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Message == "" {
		t.Error("reorganize should report")
	}
	after, _ := c.ExecSQL(`SELECT count(*) FROM lineitem`)
	if before.Rows[0][0].Int() != after.Rows[0][0].Int() {
		t.Fatalf("reorganize changed row count: %v -> %v", before.Rows[0], after.Rows[0])
	}
}

func TestIndexBackedScan(t *testing.T) {
	c, data := newCluster(t, 3, HRDBMSProfile())
	if _, err := c.ExecSQL(`CREATE INDEX idx_li_part ON lineitem(l_partkey)`); err != nil {
		t.Fatal(err)
	}
	// The equality on the indexed leading column selects the index path;
	// results must match the reference exactly.
	checkAgainstReference(t, c, data,
		`SELECT l_orderkey, l_quantity FROM lineitem WHERE l_partkey = 7 AND l_quantity > 10`, false)
	// Metered run confirms the page scan was avoided.
	sel, _ := sqlparse.ParseSelect(`SELECT count(*) FROM lineitem WHERE l_partkey = 7`)
	node, err := c.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	rows, m, err := c.RunMetered(node)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() == 0 {
		t.Fatal("index scan found nothing")
	}
	full, _ := c.ExecSQL(`SELECT count(*) FROM lineitem`)
	if m.WorkRows >= full.Rows[0][0].Int() {
		t.Errorf("index path processed %d rows of %d total", m.WorkRows, full.Rows[0][0].Int())
	}
}

func TestIndexMaintainedByDML(t *testing.T) {
	c, _ := newCluster(t, 3, HRDBMSProfile())
	if _, err := c.ExecSQL(`CREATE TABLE items (id INT, cat INT, label VARCHAR(10)) PARTITION BY HASH(id)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecSQL(`INSERT INTO items VALUES (1, 5, 'a'), (2, 5, 'b'), (3, 9, 'c')`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecSQL(`CREATE INDEX idx_cat ON items(cat)`); err != nil {
		t.Fatal(err)
	}
	// Insert after index creation: the new row must be index-visible.
	if _, err := c.ExecSQL(`INSERT INTO items VALUES (4, 5, 'd')`); err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecSQL(`SELECT count(*) FROM items WHERE cat = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("indexed count after insert = %v, want 3", res.Rows[0])
	}
	// Delete: the removed row must disappear from index results.
	if _, err := c.ExecSQL(`DELETE FROM items WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	res, _ = c.ExecSQL(`SELECT count(*) FROM items WHERE cat = 5`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("indexed count after delete = %v, want 2", res.Rows[0])
	}
}

func TestParallelQueriesAcrossCoordinators(t *testing.T) {
	c, err := New(Config{
		NumWorkers: 3, NumCoordinators: 2, BaseDir: t.TempDir(),
		PageSize: 8192, Nmax: 3, Profile: HRDBMSProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ExecSQL(`CREATE TABLE t (a INT, b FLOAT) PARTITION BY HASH(a)`); err != nil {
		t.Fatal(err)
	}
	var rows []types.Row
	for i := int64(0); i < 300; i++ {
		rows = append(rows, types.Row{types.NewInt(i), types.NewFloat(float64(i))})
	}
	if _, err := c.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	// Fire queries concurrently; they spread over both coordinators and
	// must all agree.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.ExecSQL(`SELECT count(*), sum(b) FROM t WHERE a >= 100`)
			if err != nil {
				errs <- err
				return
			}
			if res.Rows[0][0].Int() != 200 {
				errs <- fmt.Errorf("count = %v", res.Rows[0])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Both coordinators must have received result traffic.
	links := c.Fabric.Meter().PerLink()
	toCoord := map[int]bool{}
	for _, l := range links {
		if l.To < c.Cfg.NumCoordinators {
			toCoord[l.To] = true
		}
	}
	if !toCoord[0] || !toCoord[1] {
		t.Errorf("queries did not spread over coordinators: %v", toCoord)
	}
}

// TestConcurrentDMLInvariant hammers the cluster with concurrent UPDATEs
// moving value between rows; SS2PL + 2PC must keep the total invariant.
func TestConcurrentDMLInvariant(t *testing.T) {
	c, err := New(Config{
		NumWorkers: 3, BaseDir: t.TempDir(), PageSize: 4096,
		Nmax: 3, Profile: HRDBMSProfile(), LockTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ExecSQL(`CREATE TABLE bal (id INT, amt FLOAT) PARTITION BY HASH(id)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecSQL(`INSERT INTO bal VALUES (1, 100), (2, 100), (3, 100), (4, 100)`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				src := g%4 + 1
				dst := (g+1)%4 + 1
				// Each statement is one atomic distributed transaction.
				if _, err := c.ExecSQL(fmt.Sprintf(
					`UPDATE bal SET amt = amt - 1 WHERE id = %d`, src)); err != nil {
					t.Errorf("debit: %v", err)
					return
				}
				if _, err := c.ExecSQL(fmt.Sprintf(
					`UPDATE bal SET amt = amt + 1 WHERE id = %d`, dst)); err != nil {
					t.Errorf("credit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	res, err := c.ExecSQL(`SELECT sum(amt), count(*) FROM bal`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Float() != 400 || res.Rows[0][1].Int() != 4 {
		t.Fatalf("invariant broken: %v", res.Rows[0])
	}
}

// TestTreeReduceShuffleBackpressure reproduces the Q7-class deadlock: a
// tree-reduced scalar aggregate over a shuffle join, with the fabric
// mailbox shrunk so the shuffle traffic cannot buffer fully. If an
// intermediate tree node drained child partials before its local branch
// (the branch that consumes its own shuffle input), the undelivered
// shuffle traffic would fill its mailbox, the last shuffle sender would
// block, and the leaves feeding Recv could never produce their partials.
func TestTreeReduceShuffleBackpressure(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	c, err := New(Config{
		NumWorkers: 4,
		BaseDir:    t.TempDir(),
		PageSize:   8192,
		Nmax:       2, // deep tree: intermediate nodes below the root
		MemRows:    1 << 20,
		BatchRows:  1, // one row per wire message: maximal mailbox pressure
		MailboxCap: 4,
		Profile:    HRDBMSProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ddl := []string{
		`CREATE TABLE orders (o_orderkey INT, o_custkey INT, o_totalprice FLOAT)
			PARTITION BY HASH(o_custkey)`,
		`CREATE TABLE lineitem (l_orderkey INT, l_quantity FLOAT)
			PARTITION BY HASH(l_orderkey)`,
	}
	for _, stmt := range ddl {
		if _, err := c.ExecSQL(stmt); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}
	var orders, lineitem []types.Row
	for i := int64(0); i < 240; i++ {
		orders = append(orders, types.Row{
			types.NewInt(1000 + i), types.NewInt(i % 60), types.NewFloat(float64(i) + 1),
		})
	}
	for i := int64(0); i < 900; i++ {
		lineitem = append(lineitem, types.Row{
			types.NewInt(1000 + i%240), types.NewFloat(float64(i%50) + 1),
		})
	}
	if _, err := c.Load("orders", orders); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("lineitem", lineitem); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	var res *Result
	go func() {
		r, err := c.ExecSQL(
			`SELECT sum(l_quantity), count(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey`)
		res = r
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("tree-reduce deadlocked under shuffle backpressure")
	}
	// Every lineitem row matches exactly one order; 18 full 1..50 cycles.
	if got := res.Rows[0][0].Float(); got != 22950 {
		t.Fatalf("sum(l_quantity) = %v, want 22950", got)
	}
	if got := res.Rows[0][1].Int(); got != 900 {
		t.Fatalf("count(*) = %d, want 900", got)
	}
}
