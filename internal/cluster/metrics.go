package cluster

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/types"
)

// RunMetrics captures what one query execution did across the cluster —
// the real, counted quantities the performance model converts into
// simulated cluster-scale time.
//
// Network counters are exact for the query: every exchange channel carries
// the query id in its name and the fabric meter attributes traffic through
// a per-query scope, so concurrent queries cannot cross-talk. The worker
// counters (WorkRows, ScanRows, PagesRead, SpillBytes, StateBytes) are
// cluster-wide deltas over the query's execution window — under concurrent
// load they include work done by overlapping queries.
type RunMetrics struct {
	// CPU work: rows flowing through operators.
	WorkRows int64
	// ScanRows is rows produced by table scans (cheaper per row than
	// operator work; zero for pages avoided by data skipping).
	ScanRows int64
	// Disk: pages touched by scans, and pages skipped by data skipping.
	PagesRead    int64
	PagesSkipped int64
	PageBytes    int64 // PagesRead × page size
	// Page decode outcomes on the vector scan path: pages decoded by the
	// typed batch decoders vs pages that fell back to boxed DecodeInto.
	DecodeTypedPages int64
	DecodeBoxedPages int64
	// Spill/materialization volume (blocking shuffles, Grace joins,
	// external sorts).
	SpillBytes int64
	// Peak-ish operator state (hash tables, group tables, sort buffers):
	// the per-query memory working set, summed across workers.
	StateBytes int64
	// Network.
	NetBytes    int64
	NetMessages int64
	Connections int
	MaxDegree   int
	// Plan shape.
	Exchanges  int // number of exchange (shuffle/gather) boundaries
	ResultRows int
	// Wall is the end-to-end execution time at the coordinator.
	Wall time.Duration
}

// RunMetered executes a plan and reports metrics for it.
func (c *Cluster) RunMetered(root plan.Node) ([]types.Row, RunMetrics, error) {
	rows, m, _, err := c.runMetered(c.Coords[0], root, false, "", nil)
	return rows, m, err
}

// RunTraced executes a plan with per-operator tracing and returns the
// stitched query trace alongside the metrics. sql labels the trace.
func (c *Cluster) RunTraced(root plan.Node, sql string) ([]types.Row, RunMetrics, *obs.QueryTrace, error) {
	return c.runMetered(c.Coords[0], root, true, sql, nil)
}

// runMetered is the shared execution path: it allocates the query id,
// opens a meter scope on the query's channel prefix (subqueries add their
// own prefixes), optionally wires a tracer through distribution, runs the
// dataflow, and assembles the metrics. opts, when non-nil, threads the
// serving layer's per-query controls (kill switch, batch sizing,
// parallelism clamp) through distribution; a traced query that waited in
// the admission queue gets that wait recorded as an Admission span.
func (c *Cluster) runMetered(coord *CoordinatorNode, root plan.Node, traced bool, sql string, opts *QueryOptions) ([]types.Row, RunMetrics, *obs.QueryTrace, error) {
	q := c.newQueryExec(coord, opts)
	scope := c.Fabric.Meter().Scope(fmt.Sprintf("q%d.", q.qid))
	defer scope.Close()
	q.scope = scope
	// Mailboxes for the query's channel namespaces are freed once every
	// exchange loop has exited, whether the query completes or is killed
	// mid-stream.
	defer q.releaseWhenQuiet()
	var tr *obs.QueryTrace
	if traced {
		tr = obs.NewQueryTrace(q.qid, sql)
		q.tr = tr
		q.spans = map[exec.Operator]*obs.Span{}
		if opts != nil && opts.QueueWait > 0 {
			asp := tr.StartSpan("Admission", coord.ID)
			asp.AddWall(opts.QueueWait)
			asp.Finish()
		}
	}

	type snap struct {
		rows, spill, state, scanned, pagesRead int64
		decodeTyped, decodeBoxed               int64
	}
	before := make([]snap, len(c.Workers))
	for i, w := range c.Workers {
		bs := w.Store.Buf.Stats()
		before[i] = snap{
			rows:        w.execCtx.RowsProcessed.Load(),
			spill:       w.execCtx.SpillBytes.Load(),
			state:       w.execCtx.StateBytes.Load(),
			scanned:     w.Store.RowsScanned.Load(),
			pagesRead:   bs.Hits + bs.Misses, // logical page accesses
			decodeTyped: w.execCtx.DecodeTypedPages.Load(),
			decodeBoxed: w.execCtx.DecodeBoxedPages.Load(),
		}
	}
	skippedBefore := c.totalSkipped()

	var m RunMetrics
	start := time.Now()
	if err := q.materializeScalars(root); err != nil {
		return nil, m, tr, err
	}
	ds, coordOp, err := q.distribute(root)
	if err != nil {
		return nil, m, tr, err
	}
	if coordOp == nil {
		coordOp = q.gatherPlain(ds)
	}
	// Guard re-checks the kill switch on every coordinator pull, so KILL
	// surfaces within one batch boundary even while the plan is waiting on
	// a network message.
	rows, err := collectRows(exec.Guard(q.cancel(), coordOp))
	if err != nil {
		return nil, m, tr, err
	}
	q.harvestFeedback(root)
	m.Wall = time.Since(start)
	tr.SetWall(m.Wall)

	m.NetBytes = scope.TotalBytes()
	m.NetMessages = scope.TotalMessages()
	m.Connections = scope.Connections()
	m.MaxDegree = scope.MaxNodeDegree()
	m.Exchanges = q.xseq
	m.ResultRows = len(rows)
	for i, w := range c.Workers {
		m.WorkRows += w.execCtx.RowsProcessed.Load() - before[i].rows
		m.SpillBytes += w.execCtx.SpillBytes.Load() - before[i].spill
		m.StateBytes += w.execCtx.StateBytes.Load() - before[i].state
		m.ScanRows += w.Store.RowsScanned.Load() - before[i].scanned
		bs := w.Store.Buf.Stats()
		m.PagesRead += (bs.Hits + bs.Misses) - before[i].pagesRead
		m.DecodeTypedPages += w.execCtx.DecodeTypedPages.Load() - before[i].decodeTyped
		m.DecodeBoxedPages += w.execCtx.DecodeBoxedPages.Load() - before[i].decodeBoxed
	}
	m.PagesSkipped = c.totalSkipped() - skippedBefore
	m.PageBytes = m.PagesRead * int64(c.Cfg.PageSize)
	// Spill and operator state are tracked in per-worker exec contexts
	// shared by all operators, so they cannot be attributed to a single
	// span; charge the query-level delta to the trace's root operator.
	if sp := q.spanOf(coordOp); sp != nil {
		sp.AddSpill(m.SpillBytes)
		sp.AddState(m.StateBytes)
	}
	return rows, m, tr, nil
}

// harvestFeedback records each traced subtree's actual output cardinality
// against its plan signature so later queries estimate from observation
// instead of the statistics model. Plans containing a Limit are skipped
// wholesale: the limit abandons upstream operators mid-stream, so their
// row counts reflect the drain point, not the true cardinality.
func (q *queryExec) harvestFeedback(root plan.Node) {
	if q.c.Feedback == nil || len(q.fb) == 0 {
		return
	}
	limited := false
	plan.Walk(root, func(n plan.Node) {
		if _, ok := n.(*plan.Limit); ok {
			limited = true
		}
	})
	if limited {
		return
	}
	for _, t := range q.fb {
		var rows float64
		for _, sp := range t.spans {
			rows += float64(sp.RowsOut.Load())
		}
		if t.replicated && len(t.spans) > 1 {
			rows /= float64(len(t.spans))
		}
		q.c.Feedback.Record(t.sig, rows)
	}
}

// totalSkipped sums predicate-cache skip decisions across fragments.
func (c *Cluster) totalSkipped() int64 {
	var total int64
	for _, w := range c.Workers {
		for _, fr := range w.frags {
			h, _ := fr.PredCache.Stats()
			total += h + fr.MinMax.Hits()
		}
		for _, fr := range w.colFrags {
			h, _ := fr.PredCache.Stats()
			total += h + fr.MinMax.Hits()
		}
	}
	return total
}

func collectRows(op interface {
	Open() error
	Next() (types.Row, bool, error)
	Close() error
}) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Row
	for {
		r, ok, err := op.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}
