package cluster

import (
	"repro/internal/plan"
	"repro/internal/types"
)

// RunMetrics captures what one query execution did across the cluster —
// the real, counted quantities the performance model converts into
// simulated cluster-scale time.
type RunMetrics struct {
	// CPU work: rows flowing through operators.
	WorkRows int64
	// ScanRows is rows produced by table scans (cheaper per row than
	// operator work; zero for pages avoided by data skipping).
	ScanRows int64
	// Disk: pages touched by scans, and pages skipped by data skipping.
	PagesRead    int64
	PagesSkipped int64
	PageBytes    int64 // PagesRead × page size
	// Spill/materialization volume (blocking shuffles, Grace joins,
	// external sorts).
	SpillBytes int64
	// Peak-ish operator state (hash tables, group tables, sort buffers):
	// the per-query memory working set, summed across workers.
	StateBytes int64
	// Network.
	NetBytes    int64
	NetMessages int64
	Connections int
	MaxDegree   int
	// Plan shape.
	Exchanges  int // number of exchange (shuffle/gather) boundaries
	ResultRows int
}

// RunMetered executes a plan and reports metrics. Counters are deltas over
// this query only (the fabric meter is reset; worker counters are diffed).
func (c *Cluster) RunMetered(root plan.Node) ([]types.Row, RunMetrics, error) {
	c.Fabric.Meter().Reset()
	type snap struct {
		rows, spill, state, scanned, pagesRead int64
	}
	before := make([]snap, len(c.Workers))
	var skippedBefore int64
	for i, w := range c.Workers {
		bs := w.Store.Buf.Stats()
		before[i] = snap{
			rows:      w.execCtx.RowsProcessed.Load(),
			spill:     w.execCtx.SpillBytes.Load(),
			state:     w.execCtx.StateBytes.Load(),
			scanned:   w.Store.RowsScanned.Load(),
			pagesRead: bs.Hits + bs.Misses, // logical page accesses
		}
	}
	skippedBefore = c.totalSkipped()

	q := &queryExec{c: c, coord: c.Coords[0], qid: c.querySeq.Add(1), prof: c.Cfg.Profile}
	var m RunMetrics
	if err := q.materializeScalars(root); err != nil {
		return nil, m, err
	}
	ds, coordOp, err := q.distribute(root)
	if err != nil {
		return nil, m, err
	}
	if coordOp == nil {
		coordOp = q.gatherPlain(ds)
	}
	rows, err := collectRows(coordOp)
	if err != nil {
		return nil, m, err
	}

	meter := c.Fabric.Meter()
	m.NetBytes = meter.TotalBytes()
	m.NetMessages = meter.TotalMessages()
	m.Connections = meter.Connections()
	m.MaxDegree = meter.MaxNodeDegree()
	m.Exchanges = q.xseq
	m.ResultRows = len(rows)
	for i, w := range c.Workers {
		m.WorkRows += w.execCtx.RowsProcessed.Load() - before[i].rows
		m.SpillBytes += w.execCtx.SpillBytes.Load() - before[i].spill
		m.StateBytes += w.execCtx.StateBytes.Load() - before[i].state
		m.ScanRows += w.Store.RowsScanned.Load() - before[i].scanned
		bs := w.Store.Buf.Stats()
		m.PagesRead += (bs.Hits + bs.Misses) - before[i].pagesRead
	}
	m.PagesSkipped = c.totalSkipped() - skippedBefore
	m.PageBytes = m.PagesRead * int64(c.Cfg.PageSize)
	return rows, m, nil
}

// totalSkipped sums predicate-cache skip decisions across fragments.
func (c *Cluster) totalSkipped() int64 {
	var total int64
	for _, w := range c.Workers {
		for _, fr := range w.frags {
			h, _ := fr.PredCache.Stats()
			total += h + fr.MinMax.Hits()
		}
		for _, fr := range w.colFrags {
			h, _ := fr.PredCache.Stats()
			total += h + fr.MinMax.Hits()
		}
	}
	return total
}

func collectRows(op interface {
	Open() error
	Next() (types.Row, bool, error)
	Close() error
}) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Row
	for {
		r, ok, err := op.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}
