// Package cluster wires HRDBMS's pieces into a running database: a set of
// coordinator nodes (metadata, query planning, XA management) and worker
// nodes (storage, execution, locking, logging), connected by the network
// fabric. Queries are planned on a coordinator, converted into per-worker
// dataflows (the paper's phases 2 and 3: fragment-local scans, operator
// push-down to workers, shuffle insertion and elimination, pre-aggregation
// splitting, topology enforcement), executed across the workers, and the
// results routed back through the coordinator.
//
// The cluster runs in one process — each node is a set of goroutines behind
// a network.Endpoint — which is the substitution this reproduction makes
// for the paper's 96-node deployment; all communication is metered so the
// performance model can reconstruct cluster-scale timing.
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/external"
	"repro/internal/index"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/storage"
	"repro/internal/twopc"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wal"
)

// ExecProfile toggles the execution strategies that distinguish HRDBMS
// from the paper's comparison systems; the baseline package instantiates
// Hive/Spark/Greenplum-like profiles from these switches.
type ExecProfile struct {
	// HierarchicalShuffle routes shuffles over the binomial-graph ring
	// (bounded per-node connections); off = direct O(n) connections.
	HierarchicalShuffle bool
	// BlockingShuffle materializes (and sorts) each node's shuffle input
	// before any row is sent — the MapReduce shuffle model.
	BlockingShuffle bool
	// MaterializeShuffle spills received shuffle data to disk before the
	// consumer reads it (Hive always; Spark by default).
	MaterializeShuffle bool
	// UseSkipCache enables predicate-based data skipping.
	UseSkipCache bool
	// UseMinMax enables min-max (SMA) skipping.
	UseMinMax bool
	// EnforceLocality lets the planner use partitioning for co-located
	// joins and aggregations; off = always shuffle (no locality control).
	EnforceLocality bool
	// PreAggTree allows splitting aggregations into worker-side partials
	// merged over the tree topology.
	PreAggTree bool
	// ProbeParallelism is the intra-operator parallelism of join probes.
	ProbeParallelism int
	// ScanParallelism is the morsel parallelism of worker fragment scans:
	// the worker count requested per scan, granted from the node's shared
	// budget (exec.Ctx.AcquireWorkers). 0/1 = serial.
	ScanParallelism int
	// AggParallelism is the worker count requested for hash-aggregate
	// builds on worker nodes (partitioned parallel aggregation). 0/1 = serial.
	AggParallelism int
	// SortParallelism is the worker count requested for parallel sort-run
	// generation on worker nodes. 0/1 = serial.
	SortParallelism int
	// VectorizedScan runs columnar fragment scans through the typed vector
	// path (exec.VecColumnarScan): column slabs decode straight into
	// vec.Batch columns with no per-value boxing. The vector scan decodes
	// serially, so ScanParallelism does not apply to it.
	VectorizedScan bool
}

// HRDBMSProfile is the paper's system: everything on.
func HRDBMSProfile() ExecProfile {
	return ExecProfile{
		HierarchicalShuffle: true,
		UseSkipCache:        true,
		UseMinMax:           true,
		EnforceLocality:     true,
		PreAggTree:          true,
		ProbeParallelism:    2,
		ScanParallelism:     4,
		AggParallelism:      4,
		SortParallelism:     4,
		VectorizedScan:      true,
	}
}

// Config sizes a cluster.
type Config struct {
	NumWorkers      int
	NumCoordinators int
	DisksPerWorker  int
	PageSize        int
	BaseDir         string
	Nmax            int // neighbor limit for tree and ring topologies
	MemRows         int // per-operator memory budget (rows)
	BatchRows       int // rows per slab on the vectorized path (0 = defaults)
	MailboxCap      int // per-channel fabric mailbox bound (0 = 1024 messages)
	// ParallelBudget is the per-worker pool of extra operator threads that
	// exec.Ctx.AcquireWorkers grants from. 0 derives it from the host CPU
	// count; a negative value pins the budget to zero (all operators serial
	// beyond their free first degree). Explicit values let benchmarks and
	// sweeps fix the degree independent of the machine they run on.
	ParallelBudget int
	LockTimeout    time.Duration
	Profile        ExecProfile
	// TraceQueries records a per-operator trace for every query run through
	// a Session (retained in Traces for /debug/queries). EXPLAIN ANALYZE
	// traces its own query regardless of this setting.
	TraceQueries bool
}

// Worker is one worker node.
type Worker struct {
	ID    int
	Store *storage.NodeStore
	Log   *wal.Log
	Txn   *txn.Manager
	Part  *twopc.Participant
	Ep    network.Endpoint

	frags    map[string]*storage.Fragment
	colFrags map[string]*storage.ColumnarFragment
	btreeIdx map[string]*index.BTree
	skipIdx  map[string]*index.SkipList
	execCtx  *exec.Ctx
}

// CoordinatorNode is one coordinator.
type CoordinatorNode struct {
	ID  int
	Ep  network.Endpoint
	Cat *catalog.Catalog
	XA  *twopc.Coordinator
	Log *wal.Log
}

// Cluster is a running HRDBMS deployment.
type Cluster struct {
	Cfg      Config
	Fabric   *network.Fabric
	Workers  []*Worker
	Coords   []*CoordinatorNode
	External *external.Registry
	// Reg is the cluster's metrics registry: every subsystem's counters are
	// published into it at New time and read live at snapshot time.
	Reg *obs.Registry
	// Traces retains recent query traces for /debug/queries.
	Traces *obs.TraceStore
	// Feedback accumulates observed subtree cardinalities from traced
	// queries; the optimizer prefers them over the statistics model.
	Feedback *opt.Feedback

	// loadStats holds one streaming statistics builder per table so
	// successive Load batches accumulate into one distribution instead of
	// each batch replacing the last. ANALYZE swaps in a fresh builder.
	statsMu   sync.Mutex
	loadStats map[string]*catalog.StatsBuilder

	querySeq atomic.Uint64
	coordSeq atomic.Uint64
	txSeq    atomic.Uint64
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.NumWorkers < 1 {
		return nil, fmt.Errorf("cluster: need at least one worker")
	}
	if cfg.NumCoordinators < 1 {
		cfg.NumCoordinators = 1
	}
	if cfg.DisksPerWorker < 1 {
		cfg.DisksPerWorker = 2
	}
	if cfg.Nmax < 2 {
		cfg.Nmax = 4
	}
	if cfg.MemRows == 0 {
		cfg.MemRows = 1 << 20
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = 2 * time.Second
	}
	// Node IDs: coordinators 0..C-1, workers C..C+W-1.
	var ids []int
	for i := 0; i < cfg.NumCoordinators+cfg.NumWorkers; i++ {
		ids = append(ids, i)
	}
	c := &Cluster{
		Cfg:      cfg,
		Fabric:   network.NewFabric(ids, cfg.MailboxCap),
		External: external.NewRegistry(),
		Reg:      obs.NewRegistry(),
		Traces:    obs.NewTraceStore(64),
		Feedback:  opt.NewFeedback(),
		loadStats: map[string]*catalog.StatsBuilder{},
	}
	c.txSeq.Store(1)

	sharedCat := catalog.New()
	for i := 0; i < cfg.NumCoordinators; i++ {
		ep, err := c.Fabric.Endpoint(i)
		if err != nil {
			return nil, err
		}
		xalog, err := wal.Open(filepath.Join(cfg.BaseDir, fmt.Sprintf("coord%d.xa.log", i)))
		if err != nil {
			return nil, err
		}
		cat := sharedCat
		if i > 0 {
			// Each coordinator holds its own replica of the metadata; DDL
			// synchronizes them (Section VI).
			cat = sharedCat.Snapshot()
		}
		xa, err := twopc.NewCoordinator(ep, xalog, cfg.Nmax)
		if err != nil {
			return nil, fmt.Errorf("cluster: coordinator %d XA log replay: %w", i, err)
		}
		cn := &CoordinatorNode{
			ID:  i,
			Ep:  ep,
			Cat: cat,
			XA:  xa,
		}
		cn.XA.Serve()
		c.Coords = append(c.Coords, cn)
	}
	for i := 0; i < cfg.NumWorkers; i++ {
		nodeID := cfg.NumCoordinators + i
		ep, err := c.Fabric.Endpoint(nodeID)
		if err != nil {
			return nil, err
		}
		log, err := wal.Open(filepath.Join(cfg.BaseDir, fmt.Sprintf("worker%d.wal", nodeID)))
		if err != nil {
			return nil, err
		}
		ns, err := storage.NewNodeStore(storage.NodeConfig{
			NodeID:    nodeID,
			BaseDir:   cfg.BaseDir,
			NumDisks:  cfg.DisksPerWorker,
			PageSize:  cfg.PageSize,
			BufFrames: 512,
			FlushHook: log.FlushUpTo,
		})
		if err != nil {
			return nil, err
		}
		mgr := txn.NewManager(log, txn.NewLockManager(cfg.LockTimeout), ns.Buf)
		part := twopc.NewParticipant(ep, mgr)
		part.Serve()
		w := &Worker{
			ID: nodeID, Store: ns, Log: log, Txn: mgr, Part: part, Ep: ep,
			frags:    map[string]*storage.Fragment{},
			colFrags: map[string]*storage.ColumnarFragment{},
			btreeIdx: map[string]*index.BTree{},
			skipIdx:  map[string]*index.SkipList{},
			execCtx:  exec.NewCtx(filepath.Join(cfg.BaseDir, fmt.Sprintf("tmp%d", nodeID)), cfg.MemRows),
		}
		w.execCtx.BatchRows = cfg.BatchRows
		// Worker-local resource management: a node-wide cap on extra
		// operator threads; concurrent queries share it and operators
		// degrade to fewer threads under load (Section I).
		budget := cfg.ParallelBudget
		if budget == 0 {
			budget = 2 * runtime.NumCPU() / cfg.NumWorkers
		}
		w.execCtx.SetParallelBudget(budget) // negative clamps to zero
		if err := ensureDir(w.execCtx.TempDir); err != nil {
			return nil, err
		}
		c.Workers = append(c.Workers, w)
	}
	registerClusterMetrics(c)
	return c, nil
}

func ensureDir(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

// Catalog returns the primary coordinator's catalog.
func (c *Cluster) Catalog() *catalog.Catalog { return c.Coords[0].Cat }

// WorkerIDs returns all worker node IDs.
func (c *Cluster) WorkerIDs() []int {
	out := make([]int, len(c.Workers))
	for i, w := range c.Workers {
		out[i] = w.ID
	}
	return out
}

// workerIndex maps a worker node ID to its slice index.
func (c *Cluster) workerIndex(nodeID int) int { return nodeID - c.Cfg.NumCoordinators }

// CreateTable registers a table on every coordinator replica and opens its
// fragments on every worker. Metadata changes apply to all coordinators
// (the paper's coordinator metadata synchronization).
func (c *Cluster) CreateTable(def *catalog.TableDef) error {
	if def.PageSize == 0 {
		def.PageSize = c.Cfg.PageSize
	}
	for _, cn := range c.Coords {
		if err := cn.Cat.CreateTable(def); err != nil {
			return err
		}
	}
	for _, w := range c.Workers {
		if def.Columnar {
			fr, err := storage.OpenColumnarFragment(w.Store, def)
			if err != nil {
				return err
			}
			w.colFrags[lower(def.Name)] = fr
		} else {
			fr, err := storage.OpenFragment(w.Store, def)
			if err != nil {
				return err
			}
			w.frags[lower(def.Name)] = fr
		}
	}
	return nil
}

// Load bulk-loads rows into a table, partitioning them across workers per
// the table's strategy (hash, range, or replicated).
func (c *Cluster) Load(table string, rows []types.Row) (int, error) {
	def, err := c.Catalog().Table(table)
	if err != nil {
		return 0, err
	}
	perWorker := make([][]types.Row, len(c.Workers))
	for _, r := range rows {
		nodes, err := def.NodeFor(r, len(c.Workers))
		if err != nil {
			return 0, err
		}
		for _, n := range nodes {
			perWorker[n] = append(perWorker[n], r)
		}
	}
	total := 0
	for wi, wRows := range perWorker {
		w := c.Workers[wi]
		if def.Columnar {
			n, err := w.colFrags[lower(def.Name)].Load(wRows)
			if err != nil {
				return total, err
			}
			total += n
		} else {
			n, err := w.frags[lower(def.Name)].Load(wRows)
			if err != nil {
				return total, err
			}
			total += n
		}
	}
	// Refresh statistics incrementally: each batch streams into the
	// table's persistent builder, so multi-batch loads see the whole
	// distribution (histogram from a reservoir, NDV from a sketch) without
	// the catalog ever holding the loaded rows.
	c.statsMu.Lock()
	sb := c.loadStats[lower(def.Name)]
	if sb == nil {
		sb = catalog.NewStatsBuilder(def.Schema)
		c.loadStats[lower(def.Name)] = sb
	}
	for _, r := range rows {
		sb.Add(r)
	}
	stats := sb.Finish()
	c.statsMu.Unlock()
	for _, cn := range c.Coords {
		cn.Cat.SetStats(def.Name, stats)
	}
	if def.Part.Kind == catalog.PartReplicated {
		return total / len(c.Workers), nil
	}
	return total, nil
}

// Close shuts the cluster down, persisting predicate caches for reload at
// the next start.
func (c *Cluster) Close() error {
	c.Traces.Close()
	c.Fabric.CloseAll()
	var firstErr error
	for _, w := range c.Workers {
		for _, fr := range w.frags {
			if err := fr.PersistPredCache(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := w.Store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := w.Log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := w.Txn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, cn := range c.Coords {
		if cn.XA.XALog != nil {
			if err := cn.XA.XALog.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func lower(s string) string {
	b := []byte(s)
	for i, ch := range b {
		if ch >= 'A' && ch <= 'Z' {
			b[i] = ch + 32
		}
	}
	return string(b)
}
