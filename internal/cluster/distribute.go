package cluster

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/types"
)

// This file implements the paper's dataflow phases (Section V):
//
//	Phase 2 (dataflow conversion): each table scan becomes one scan per
//	fragment, placed on the worker storing the fragment, so data locality
//	is enforced for scans.
//
//	Phase 3 (dataflow optimization): relational operators are pushed from
//	the coordinator to the workers; joins and aggregations run co-located
//	when partitioning allows it, shuffles are inserted only where needed
//	(and eliminated when an existing partitioning subsumes the required
//	one); aggregations are split into worker-side pre-aggregation merged
//	over the tree topology when that is cheaper; sorts merge upward; top-k
//	runs as per-worker heaps merged at the coordinator.

// distKind classifies where a distributed stream's rows live.
type distKind uint8

const (
	distPartitioned distKind = iota + 1 // hash-partitioned across workers on cols
	distReplicated                      // full copy on every worker
	distRandom                          // spread across workers, no known key
)

type distInfo struct {
	kind distKind
	cols []string // partitioning columns (qualified, lower-case)
}

// dstream is a worker-resident distributed stream: one operator per worker.
type dstream struct {
	ops  []exec.Operator
	sch  types.Schema
	dist distInfo
}

// queryExec tracks per-query state during distribution. coord is the
// coordinator planning and gathering this query — the paper allows
// multiple coordinators to process requests in parallel, so queries are
// spread across them.
type queryExec struct {
	c     *Cluster
	coord *CoordinatorNode
	qid   uint64
	xseq  int
	prof  ExecProfile

	// Serving-layer state (nil/zero outside the served path). opts carries
	// the per-query controls; ctxs are per-worker child contexts deriving
	// from the workers' shared contexts (same counters and parallel budget,
	// private cancellation and batch sizing); qids lists this query's ID
	// plus those of its materialized subqueries (the channel namespaces to
	// release); live counts the query's background loops so release waits
	// for quiescence.
	opts *QueryOptions
	ctxs []*exec.Ctx
	qids *[]uint64
	live *sync.WaitGroup

	// Tracing state (nil for untraced queries — the zero-overhead path).
	// tr collects spans; spans maps each wrapped operator to its span so
	// parents link children across distribute calls; scope attributes the
	// fabric traffic of this query's channel prefixes.
	tr    *obs.QueryTrace
	spans map[exec.Operator]*obs.Span
	scope *network.MeterScope

	// Cardinality state (traced queries only): est estimates each subtree
	// once for span stamping and runtime re-costing; fb lists the traced
	// subtrees whose actual row counts feed back into the estimator after a
	// successful run.
	est *opt.Estimator
	fb  []fbTarget
}

// fbTarget ties one plan subtree's signature to the spans that will hold
// its actual output cardinality after execution.
type fbTarget struct {
	sig        string
	spans      []*obs.Span
	replicated bool // every span carries a full copy; average, don't sum
}

// estimator returns the query's cardinality estimator, feedback-aware when
// the cluster keeps a feedback store.
func (q *queryExec) estimator() *opt.Estimator {
	if q.est == nil {
		q.est = &opt.Estimator{Cat: q.c.Catalog(), FB: q.c.Feedback}
	}
	return q.est
}

// newQueryExec allocates a query id and builds per-query execution state.
// opts, when non-nil, threads the serving layer's controls in: the kill
// switch and per-session batch sizing become per-worker child contexts and
// MaxParallel clamps the profile's parallelism degrees.
func (c *Cluster) newQueryExec(coord *CoordinatorNode, opts *QueryOptions) *queryExec {
	q := &queryExec{c: c, coord: coord, qid: c.querySeq.Add(1), prof: c.Cfg.Profile}
	ids := []uint64{q.qid}
	q.qids = &ids
	q.live = &sync.WaitGroup{}
	if opts == nil {
		return q
	}
	q.opts = opts
	if opts.MaxParallel > 0 {
		q.prof = q.prof.clampParallelism(opts.MaxParallel)
	}
	if opts.Cancel != nil || opts.BatchRows > 0 {
		q.ctxs = make([]*exec.Ctx, len(c.Workers))
		for i, w := range c.Workers {
			child := w.execCtx.Child(opts.Cancel)
			if opts.BatchRows > 0 {
				child.BatchRows = opts.BatchRows
			}
			q.ctxs[i] = child
		}
	}
	return q
}

// wctx returns the execution context for worker index wi: the per-query
// child when the serving layer supplied options, the worker's shared
// context otherwise.
func (q *queryExec) wctx(wi int) *exec.Ctx {
	if q.ctxs != nil {
		return q.ctxs[wi]
	}
	return q.c.Workers[wi].execCtx
}

// cancel returns the query's kill switch (nil when unkillable).
func (q *queryExec) cancel() *exec.Cancel {
	if q.opts == nil {
		return nil
	}
	return q.opts.Cancel
}

// releaseWhenQuiet frees the query's fabric mailboxes (one channel
// namespace per query ID) once every background loop reading them has
// exited. Mailboxes are created lazily and would otherwise accumulate for
// the fabric's lifetime — fatal for a server running thousands of queries.
func (q *queryExec) releaseWhenQuiet() {
	if q.live == nil || q.qids == nil {
		return
	}
	ids := append([]uint64(nil), (*q.qids)...)
	live, f := q.live, q.c.Fabric
	go func() {
		live.Wait()
		for _, id := range ids {
			f.ReleasePrefix(fmt.Sprintf("q%d.", id))
		}
	}()
}

func (q *queryExec) channel(tag string) string {
	q.xseq++
	return fmt.Sprintf("q%d.%s%d", q.qid, tag, q.xseq)
}

// Run plans nothing — it takes an already-built logical plan, distributes
// it, executes it, and returns all result rows at the coordinator.
func (c *Cluster) Run(root plan.Node) ([]types.Row, error) {
	op, err := c.CompileDistributed(root)
	if err != nil {
		return nil, err
	}
	return exec.Collect(op)
}

// CompileDistributed converts a logical plan into a coordinator-side
// operator whose Open launches the distributed dataflow.
func (c *Cluster) CompileDistributed(root plan.Node) (exec.Operator, error) {
	return c.CompileDistributedOn(c.Coords[0], root)
}

// CompileDistributedOn compiles against a specific coordinator (results
// route through it; Section I: query results are always routed to the
// client through the coordinator that planned the query).
func (c *Cluster) CompileDistributedOn(coord *CoordinatorNode, root plan.Node) (exec.Operator, error) {
	q := c.newQueryExec(coord, nil)
	if err := q.materializeScalars(root); err != nil {
		return nil, err
	}
	ds, coordOp, err := q.distribute(root)
	if err != nil {
		return nil, err
	}
	if coordOp != nil {
		return coordOp, nil
	}
	return q.gatherPlain(ds), nil
}

// materializeScalars executes uncorrelated scalar subqueries first, with
// full distribution, and freezes their values into the plan.
func (q *queryExec) materializeScalars(root plan.Node) error {
	var scalars []*plan.ScalarSubquery
	collect := func(e expr.Expr) {
		expr.Walk(e, func(x expr.Expr) {
			if s, ok := x.(*plan.ScalarSubquery); ok && s.Resolved == nil {
				scalars = append(scalars, s)
			}
		})
	}
	plan.Walk(root, func(m plan.Node) {
		switch x := m.(type) {
		case *plan.Filter:
			collect(x.Pred)
		case *plan.Scan:
			if x.Pred != nil {
				collect(x.Pred)
			}
		case *plan.Project:
			for _, e := range x.Exprs {
				collect(e)
			}
		case *plan.Join:
			if x.Residual != nil {
				collect(x.Residual)
			}
		}
	})
	for _, s := range scalars {
		rows, err := q.runSubquery(s.Plan)
		if err != nil {
			return err
		}
		v := types.Null
		switch {
		case len(rows) == 0:
		case len(rows) == 1 && len(rows[0]) >= 1:
			v = rows[0][0]
		default:
			return fmt.Errorf("cluster: scalar subquery returned %d rows", len(rows))
		}
		s.Resolved = &v
	}
	return nil
}

// runSubquery executes a materialized subquery under its own query ID but
// sharing the parent query's trace and meter scope, so a traced or metered
// parent attributes subquery spans and traffic to itself.
func (q *queryExec) runSubquery(root plan.Node) ([]types.Row, error) {
	sub := &queryExec{
		c: q.c, coord: q.coord, qid: q.c.querySeq.Add(1), prof: q.prof,
		opts: q.opts, ctxs: q.ctxs, qids: q.qids, live: q.live,
		tr: q.tr, spans: q.spans, scope: q.scope,
	}
	if q.qids != nil {
		*q.qids = append(*q.qids, sub.qid)
	}
	q.scope.AddPrefix(fmt.Sprintf("q%d.", sub.qid))
	if err := sub.materializeScalars(root); err != nil {
		return nil, err
	}
	ds, coordOp, err := sub.distribute(root)
	if err != nil {
		return nil, err
	}
	if coordOp == nil {
		coordOp = sub.gatherPlain(ds)
	}
	return exec.Collect(coordOp)
}

// distribute returns either a worker-resident stream or a coordinator
// operator (exactly one non-nil). On traced queries it additionally stamps
// every placed operator's span with the optimizer's row estimate (the
// `est=` column of EXPLAIN ANALYZE) and registers the subtree for post-run
// cardinality feedback; untraced queries go straight to distributeNode.
func (q *queryExec) distribute(n plan.Node) (*dstream, exec.Operator, error) {
	ds, coordOp, err := q.distributeNode(n)
	if err != nil || q.tr == nil {
		return ds, coordOp, err
	}
	est := q.estimator().Estimate(n)
	t := fbTarget{sig: opt.Signature(n)}
	switch {
	case coordOp != nil:
		if sp := q.spanOf(coordOp); sp != nil {
			sp.SetEst(int64(est + 0.5))
			t.spans = append(t.spans, sp)
		}
	case ds != nil && len(ds.ops) > 0:
		// Per-worker estimate: an even share of the total, or the full count
		// when every worker holds a replica.
		t.replicated = ds.dist.kind == distReplicated
		per := est
		if !t.replicated {
			per = est / float64(len(ds.ops))
		}
		for _, op := range ds.ops {
			if sp := q.spanOf(op); sp != nil {
				sp.SetEst(int64(per + 0.5))
				t.spans = append(t.spans, sp)
			}
		}
	}
	if len(t.spans) > 0 && q.c.Feedback != nil {
		q.fb = append(q.fb, t)
	}
	return ds, coordOp, nil
}

// distributeNode dispatches one plan node to its distribution strategy.
func (q *queryExec) distributeNode(n plan.Node) (*dstream, exec.Operator, error) {
	switch x := n.(type) {
	case *plan.Scan:
		return q.distributeScan(x)
	case *plan.Rename:
		ds, coordOp, err := q.distribute(x.Child)
		if err != nil {
			return nil, nil, err
		}
		if coordOp != nil {
			r := renameSchema(coordOp, x.Schema())
			q.adopt(r, coordOp)
			return nil, r, nil
		}
		// Rename columns positionally; partition columns follow.
		newDist := ds.dist
		newDist.cols = mapColsByPosition(ds.dist.cols, ds.sch, x.Schema())
		out := &dstream{sch: x.Schema(), dist: newDist}
		for _, op := range ds.ops {
			r := renameSchema(op, x.Schema())
			q.adopt(r, op)
			out.ops = append(out.ops, r)
		}
		return out, nil, nil
	case *plan.Filter:
		ds, coordOp, err := q.distribute(x.Child)
		if err != nil {
			return nil, nil, err
		}
		if coordOp != nil {
			return nil, q.wrap("Filter", q.coord.ID, exec.NewFilter(nil, coordOp, x.Pred), coordOp), nil
		}
		out := &dstream{sch: ds.sch, dist: ds.dist}
		for wi, op := range ds.ops {
			w := q.c.Workers[wi]
			out.ops = append(out.ops, q.wrap("Filter", w.ID, exec.NewFilter(q.wctx(wi), op, x.Pred), op))
		}
		return out, nil, nil
	case *plan.Project:
		ds, coordOp, err := q.distribute(x.Child)
		if err != nil {
			return nil, nil, err
		}
		if coordOp != nil {
			return nil, q.wrap("Project", q.coord.ID, exec.NewProject(nil, coordOp, x.Exprs, x.Names), coordOp), nil
		}
		newDist := projectDist(ds.dist, x)
		out := &dstream{sch: x.Schema(), dist: newDist}
		for wi, op := range ds.ops {
			w := q.c.Workers[wi]
			out.ops = append(out.ops, q.wrap("Project", w.ID, exec.NewProject(q.wctx(wi), op, x.Exprs, x.Names), op))
		}
		return out, nil, nil
	case *plan.Join:
		return q.distributeJoin(x)
	case *plan.Agg:
		return q.distributeAgg(x)
	case *plan.Sort:
		ds, coordOp, err := q.distribute(x.Child)
		if err != nil {
			return nil, nil, err
		}
		keys := planSortKeys(x.Keys)
		if coordOp != nil {
			return nil, q.wrap("Sort", q.coord.ID, exec.NewSort(nil, coordOp, keys), coordOp), nil
		}
		// Distributed merge sort: local sorts (parallel run generation per
		// the profile), ordered merge upward.
		sorted := make([]exec.Operator, len(ds.ops))
		for wi, op := range ds.ops {
			w := q.c.Workers[wi]
			srt := exec.NewSort(q.wctx(wi), op, keys)
			srt.Parallel = q.prof.SortParallelism
			sorted[wi] = q.wrap("Sort", w.ID, srt, op)
		}
		return nil, q.gatherOrdered(&dstream{ops: sorted, sch: ds.sch}, keys), nil
	case *plan.Limit:
		return q.distributeLimit(x)
	case *plan.Distinct:
		ds, coordOp, err := q.distribute(x.Child)
		if err != nil {
			return nil, nil, err
		}
		if coordOp != nil {
			return nil, q.wrap("Distinct", q.coord.ID, exec.NewDistinct(coordOp), coordOp), nil
		}
		if ds.dist.kind == distReplicated {
			// One replica suffices.
			one := q.pickOne(ds)
			return nil, q.wrap("Distinct", q.coord.ID, exec.NewDistinct(one), one), nil
		}
		// Shuffle on all columns, then local distinct.
		allKeys := exec.ColRefs(allIdx(ds.sch.Len())...)
		shuffled, err := q.shuffle(ds, allKeys, colNames(ds.sch))
		if err != nil {
			return nil, nil, err
		}
		out := &dstream{sch: ds.sch, dist: shuffled.dist}
		for wi, op := range shuffled.ops {
			out.ops = append(out.ops, q.wrap("Distinct", q.c.Workers[wi].ID, exec.NewDistinct(op), op))
		}
		return out, nil, nil
	default:
		return nil, nil, fmt.Errorf("cluster: cannot distribute %T", n)
	}
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func colNames(s types.Schema) []string {
	out := make([]string, s.Len())
	for i, c := range s.Cols {
		out[i] = strings.ToLower(c.Name)
	}
	return out
}

// planSortKeys converts plan sort items.
func planSortKeys(keys []plan.SortItem) []exec.SortKey {
	out := make([]exec.SortKey, len(keys))
	for i, k := range keys {
		out[i] = exec.SortKey{Col: k.Col, Desc: k.Desc}
	}
	return out
}

// distributeScan is phase 2: one scan per fragment on the worker holding it.
// When an index matches a highly selective equality, the optimizer chooses
// the index path instead (phase 1's table-vs-index-scan decision).
func (q *queryExec) distributeScan(x *plan.Scan) (*dstream, exec.Operator, error) {
	if !x.Table.Columnar {
		if m := q.findIndexPath(x); m != nil {
			ds, err := q.indexScan(x, m)
			if err != nil {
				return nil, nil, err
			}
			return ds, nil, nil
		}
	}
	cfg := exec.ScanConfig{
		Pred:         x.Pred,
		UseSkipCache: q.prof.UseSkipCache,
		UseMinMax:    q.prof.UseMinMax,
		Predeclare:   true,
	}
	ds := &dstream{sch: x.Schema()}
	name := lower(x.Table.Name)
	for wi, w := range q.c.Workers {
		// The scan span is created before the operator so the scan thread
		// can deposit its page/row stats directly.
		sp := q.startSpan("Scan "+name, w.ID)
		wctx := q.wctx(wi)
		wcfg := cfg
		wcfg.Trace = sp
		wcfg.BatchRows = wctx.BatchRows
		// Morsel parallelism: the scan asks for the profile's degree and the
		// worker's shared budget decides what it actually gets.
		wcfg.Parallel = q.prof.ScanParallelism
		wcfg.Ctx = wctx
		var op exec.Operator
		if x.Table.Columnar {
			fr := w.colFrags[name]
			if fr == nil {
				return nil, nil, fmt.Errorf("cluster: worker %d has no fragment of %s", w.ID, name)
			}
			if q.prof.VectorizedScan {
				op = exec.FromVec(exec.NewVecColumnarScan(fr, x.Alias, wcfg))
			} else {
				op = exec.NewColumnarScan(fr, x.Alias, wcfg)
			}
		} else {
			fr := w.frags[name]
			if fr == nil {
				return nil, nil, fmt.Errorf("cluster: worker %d has no fragment of %s", w.ID, name)
			}
			op = exec.NewRowScan(fr, x.Alias, wcfg)
		}
		ds.ops = append(ds.ops, q.attach(op, sp))
	}
	switch {
	case x.Table.Part.Kind == catalog.PartReplicated:
		ds.dist = distInfo{kind: distReplicated}
	case x.Table.Part.Kind == catalog.PartHash && q.prof.EnforceLocality:
		cols := make([]string, len(x.Table.Part.Cols))
		for i, c := range x.Table.Part.Cols {
			cols[i] = x.Alias + "." + strings.ToLower(c)
		}
		ds.dist = distInfo{kind: distPartitioned, cols: cols}
	default:
		ds.dist = distInfo{kind: distRandom}
	}
	return ds, nil, nil
}

// keyNames extracts qualified column names from plain-column key exprs;
// ok=false when any key is a computed expression.
func keyNames(keys []expr.Expr) ([]string, bool) {
	out := make([]string, len(keys))
	for i, k := range keys {
		c, isCol := k.(*expr.Col)
		if !isCol || c.Name == "" {
			return nil, false
		}
		out[i] = strings.ToLower(c.Name)
	}
	return out, true
}

// distMatches reports whether a stream partitioned on dist.cols satisfies
// a requirement to be partitioned on req (the paper's shuffle elimination:
// equality on the existing partition columns implies co-location; we use
// exact sequence match of the hash key).
func distMatches(d distInfo, req []string, sch types.Schema) bool {
	if d.kind != distPartitioned || len(d.cols) != len(req) {
		return false
	}
	for i := range req {
		if !sameColumn(d.cols[i], req[i], sch) {
			return false
		}
	}
	return true
}

// sameColumn matches possibly differently-qualified names resolving to the
// same schema position.
func sameColumn(a, b string, sch types.Schema) bool {
	if strings.EqualFold(a, b) {
		return true
	}
	ia, ib := sch.Find(a), sch.Find(b)
	return ia >= 0 && ia == ib
}

func (q *queryExec) distributeJoin(x *plan.Join) (*dstream, exec.Operator, error) {
	left, leftCoord, err := q.distribute(x.Left)
	if err != nil {
		return nil, nil, err
	}
	right, rightCoord, err := q.distribute(x.Right)
	if err != nil {
		return nil, nil, err
	}
	par := q.prof.ProbeParallelism
	// Any side already on the coordinator → finish there.
	if leftCoord != nil || rightCoord != nil {
		if leftCoord == nil {
			leftCoord = q.gatherPlain(left)
		}
		if rightCoord == nil {
			rightCoord = q.gatherPlain(right)
		}
		jop := q.makeJoin(nil, leftCoord, rightCoord, x, par)
		return nil, q.wrap(joinLabel(x), q.coord.ID, jop, leftCoord, rightCoord), nil
	}
	// No equality keys: non-equi join on the coordinator.
	if len(x.EquiLeft) == 0 {
		l, r := q.gatherPlain(left), q.gatherPlain(right)
		jop := exec.NewNestedLoopJoin(nil, l, r, x.Residual, x.Type)
		return nil, q.wrap("NestedLoopJoin", q.coord.ID, jop, l, r), nil
	}

	leftNames, leftPlain := keyNames(x.EquiLeft)
	rightNames, rightPlain := keyNames(x.EquiRight)

	join := func(l, r *dstream, d distInfo) *dstream {
		out := &dstream{sch: x.Schema(), dist: d}
		for wi := range q.c.Workers {
			w := q.c.Workers[wi]
			jop := q.makeJoin(q.wctx(wi), l.ops[wi], r.ops[wi], x, par)
			out.ops = append(out.ops, q.wrap(joinLabel(x), w.ID, jop, l.ops[wi], r.ops[wi]))
		}
		return out
	}

	switch {
	case right.dist.kind == distReplicated:
		// Build side replicated: co-located join everywhere; output keeps
		// the probe side's distribution.
		return join(left, right, left.dist), nil, nil
	case left.dist.kind == distReplicated && x.Type == exec.JoinInner:
		// Probe side replicated: each worker probes its replica against
		// its partition of the build side; build rows partition, so no
		// duplicates arise.
		return join(left, right, right.dist), nil, nil
	case left.dist.kind == distReplicated:
		// Semi/anti with replicated probe would duplicate output rows;
		// run on the coordinator (rare).
		l, r := q.gatherPlain(left), q.gatherPlain(right)
		return nil, q.wrap(joinLabel(x), q.coord.ID, q.makeJoin(nil, l, r, x, par), l, r), nil
	}

	// Both partitioned/random: exploit or create co-location.
	leftOK := q.prof.EnforceLocality && leftPlain && distMatches(left.dist, leftNames, x.Left.Schema())
	rightOK := q.prof.EnforceLocality && rightPlain && distMatches(right.dist, rightNames, x.Right.Schema())
	// Re-cost the movement at this exchange boundary: with runtime
	// distributions known and feedback-corrected estimates, replicating a
	// small build side can beat repartitioning a large probe side. The
	// planner's Dist annotation is advisory; this decision is authoritative.
	if !leftOK && q.wantBroadcast(x, leftNames, rightNames, rightOK) {
		b, err := q.broadcast(right)
		if err != nil {
			return nil, nil, err
		}
		return join(left, b, left.dist), nil, nil
	}
	if !leftOK {
		left, err = q.shuffle(left, x.EquiLeft, leftNames)
		if err != nil {
			return nil, nil, err
		}
	}
	if !rightOK {
		right, err = q.shuffle(right, x.EquiRight, rightNames)
		if err != nil {
			return nil, nil, err
		}
	}
	outDist := distInfo{kind: distRandom}
	if leftPlain {
		outDist = distInfo{kind: distPartitioned, cols: leftNames}
	}
	return join(left, right, outDist), nil, nil
}

// wantBroadcast decides shuffle-vs-broadcast for an equi-join whose probe
// side is mispartitioned, using the shared cost model on the estimated
// build-side size. Inner/semi/anti joins stay correct under a replicated
// build side because each probe row lives on exactly one worker and sees
// the complete build set there.
func (q *queryExec) wantBroadcast(x *plan.Join, leftNames, rightNames []string, rightOK bool) bool {
	switch x.Type {
	case exec.JoinInner, exec.JoinSemi, exec.JoinAnti:
	default:
		return false
	}
	if len(leftNames) == 0 {
		return false
	}
	est := q.estimator()
	ld := opt.DistInfo{Kind: opt.DistRandom} // caller established !leftOK
	rd := opt.DistInfo{Kind: opt.DistRandom}
	if rightOK {
		rd = opt.DistInfo{Kind: opt.DistPartitioned, Cols: rightNames}
	}
	net := opt.ChooseJoinNet(ld, rd, leftNames, rightNames,
		est.Estimate(x.Left), est.RowWidth(x.Left),
		est.Estimate(x.Right), est.RowWidth(x.Right), len(q.c.Workers))
	return net.Broadcast
}

// broadcast replicates a worker stream to every worker (the build side of
// a broadcast join), reusing the shuffle fabric machinery with its
// Broadcast flag so EOF accounting, hub forwarding and quiescence tracking
// are shared. The output is distReplicated.
func (q *queryExec) broadcast(ds *dstream) (*dstream, error) {
	ch := q.channel("b")
	spec := exec.ShuffleSpec{
		Channel:      ch,
		Nodes:        q.c.WorkerIDs(),
		Nmax:         q.c.Cfg.Nmax,
		Hierarchical: q.prof.HierarchicalShuffle,
		Broadcast:    true,
	}
	out := &dstream{sch: ds.sch, dist: distInfo{kind: distReplicated}}
	for wi, op := range ds.ops {
		w := q.c.Workers[wi]
		sp := q.startSpan("Broadcast", w.ID)
		sh, err := exec.NewShuffle(q.wctx(wi), exec.NewCountingEndpoint(w.Ep, sp), spec, op, nil, ds.sch)
		if err != nil {
			return nil, err
		}
		sh.OnLoops = q.live
		out.ops = append(out.ops, q.attach(sh, sp, op))
	}
	return out, nil
}

func (q *queryExec) makeJoin(ctx *exec.Ctx, l, r exec.Operator, x *plan.Join, par int) exec.Operator {
	if len(x.EquiLeft) == 0 {
		return exec.NewNestedLoopJoin(ctx, l, r, x.Residual, x.Type)
	}
	return exec.NewHashJoin(ctx, l, r, x.EquiLeft, x.EquiRight, x.Type, x.Residual, par)
}

func joinLabel(x *plan.Join) string {
	if len(x.EquiLeft) == 0 {
		return "NestedLoopJoin"
	}
	return "HashJoin"
}

// shuffle repartitions a stream on key expressions; the result is
// partitioned on the given column names (nil if keys are computed).
func (q *queryExec) shuffle(ds *dstream, keys []expr.Expr, names []string) (*dstream, error) {
	ch := q.channel("x")
	spec := exec.ShuffleSpec{
		Channel:      ch,
		Nodes:        q.c.WorkerIDs(),
		Nmax:         q.c.Cfg.Nmax,
		Hierarchical: q.prof.HierarchicalShuffle,
	}
	out := &dstream{sch: ds.sch, dist: distInfo{kind: distRandom}}
	if names != nil {
		out.dist = distInfo{kind: distPartitioned, cols: names}
	}
	for wi, op := range ds.ops {
		w := q.c.Workers[wi]
		wctx := q.wctx(wi)
		in := op
		if q.prof.BlockingShuffle {
			// MapReduce-style: materialize (and implicitly sort boundary)
			// before sending.
			in = q.wrap("Materialize", w.ID, exec.NewMaterialize(wctx, in, true), in)
		}
		// The shuffle's sends (including hub forwards) count against its
		// span, matching the fabric meter's per-link accounting.
		sp := q.startSpan("Shuffle", w.ID)
		sh, err := exec.NewShuffle(wctx, exec.NewCountingEndpoint(w.Ep, sp), spec, in, keys, ds.sch)
		if err != nil {
			return nil, err
		}
		sh.OnLoops = q.live
		recv := q.attach(sh, sp, in)
		if q.prof.MaterializeShuffle {
			recv = q.wrap("Materialize", w.ID, exec.NewMaterialize(wctx, recv, true), recv)
		}
		out.ops = append(out.ops, recv)
	}
	return out, nil
}

func (q *queryExec) distributeAgg(x *plan.Agg) (*dstream, exec.Operator, error) {
	ds, coordOp, err := q.distribute(x.Child)
	if err != nil {
		return nil, nil, err
	}
	specs := make([]exec.AggSpec, len(x.Aggs))
	hasDistinct := false
	for i, a := range x.Aggs {
		specs[i] = exec.AggSpec{Kind: a.Kind, Arg: a.Arg, Distinct: a.Distinct, Name: a.Name}
		if a.Distinct {
			hasDistinct = true
		}
	}
	if coordOp != nil {
		agg := exec.NewHashAggregate(nil, coordOp, x.GroupBy, specs, exec.AggComplete)
		return nil, q.wrap("HashAgg", q.coord.ID, agg, coordOp), nil
	}
	groupNames, groupPlain := keyNames(x.GroupBy)

	// Replicated input: aggregate one replica locally.
	if ds.dist.kind == distReplicated {
		one := q.pickOne(ds)
		agg := exec.NewHashAggregate(nil, one, x.GroupBy, specs, exec.AggComplete)
		return nil, q.wrap("HashAgg", q.coord.ID, agg, one), nil
	}

	// Co-located: input partitioned on a prefix/subset of the group key →
	// groups never span workers; aggregate locally (shuffle eliminated).
	if q.prof.EnforceLocality && groupPlain && len(x.GroupBy) > 0 &&
		coveredBy(ds.dist, groupNames, x.Child.Schema()) {
		out := &dstream{sch: x.Schema(), dist: distInfo{kind: distPartitioned, cols: aggOutCols(x, groupNames)}}
		for wi, op := range ds.ops {
			w := q.c.Workers[wi]
			agg := exec.NewHashAggregate(q.wctx(wi), op, x.GroupBy, specs, exec.AggComplete)
			agg.Parallel = q.prof.AggParallelism
			out.ops = append(out.ops, q.wrap("HashAgg", w.ID, agg, op))
		}
		return out, nil, nil
	}

	// DISTINCT aggregates cannot pre-aggregate; shuffle by group key.
	if hasDistinct && len(x.GroupBy) > 0 {
		shuffled, err := q.shuffle(ds, x.GroupBy, groupNames)
		if err != nil {
			return nil, nil, err
		}
		out := &dstream{sch: x.Schema(), dist: distInfo{kind: distPartitioned, cols: aggOutCols(x, groupNames)}}
		for wi, op := range shuffled.ops {
			w := q.c.Workers[wi]
			agg := exec.NewHashAggregate(q.wctx(wi), op, x.GroupBy, specs, exec.AggComplete)
			agg.Parallel = q.prof.AggParallelism
			out.ops = append(out.ops, q.wrap("HashAgg", w.ID, agg, op))
		}
		return out, nil, nil
	}
	if hasDistinct {
		// Scalar DISTINCT aggregate: gather raw rows.
		gathered := q.gatherPlain(ds)
		agg := exec.NewHashAggregate(nil, gathered, x.GroupBy, specs, exec.AggComplete)
		return nil, q.wrap("HashAgg", q.coord.ID, agg, gathered), nil
	}

	// Scalar aggregates (no GROUP BY) always pre-aggregate per worker and
	// finalize at the coordinator — merged over the tree topology when the
	// profile allows, direct otherwise.
	if len(x.GroupBy) == 0 {
		if q.prof.PreAggTree {
			return nil, q.treeAggregate(ds, x, specs), nil
		}
		partials := make([]exec.Operator, len(ds.ops))
		for wi, op := range ds.ops {
			w := q.c.Workers[wi]
			agg := exec.NewHashAggregate(q.wctx(wi), op, nil, specs, exec.AggPartial)
			agg.Parallel = q.prof.AggParallelism
			partials[wi] = q.wrap("HashAgg partial", w.ID, agg, op)
		}
		gathered := q.gatherPlain(&dstream{ops: partials, sch: partials[0].Schema()})
		final := exec.NewHashAggregate(nil, gathered, nil, specs, exec.AggFinal)
		return nil, q.wrap("HashAgg final", q.coord.ID, final, gathered), nil
	}

	// Cost-based choice (phase 3): pre-aggregation + tree merge when the
	// estimated number of groups is small (Section IV/V); shuffle-based
	// grouping when groups are many (the Q18 case: 1.5B groups).
	groups := q.estimator().Estimate(x)
	preAggLimit := 64.0 * 1024
	if q.prof.PreAggTree && groups <= preAggLimit {
		return nil, q.treeAggregate(ds, x, specs), nil
	}
	// Shuffle group-by.
	shuffled, err := q.shuffle(ds, x.GroupBy, groupNames)
	if err != nil {
		return nil, nil, err
	}
	out := &dstream{sch: x.Schema(), dist: distInfo{kind: distRandom}}
	if groupPlain {
		out.dist = distInfo{kind: distPartitioned, cols: aggOutCols(x, groupNames)}
	}
	for wi, op := range shuffled.ops {
		w := q.c.Workers[wi]
		agg := exec.NewHashAggregate(q.wctx(wi), op, x.GroupBy, specs, exec.AggComplete)
		out.ops = append(out.ops, q.wrap("HashAgg", w.ID, agg, op))
	}
	return out, nil, nil
}

// aggOutCols maps group input names to the aggregate's output column names.
func aggOutCols(x *plan.Agg, groupNames []string) []string {
	out := make([]string, len(groupNames))
	for i := range groupNames {
		out[i] = strings.ToLower(x.Schema().Cols[i].Name)
	}
	return out
}

// coveredBy reports whether dist's columns all appear among the group
// columns (then each group lives on exactly one worker).
func coveredBy(d distInfo, groupNames []string, sch types.Schema) bool {
	if d.kind != distPartitioned || len(d.cols) == 0 {
		return false
	}
	for _, dc := range d.cols {
		found := false
		for _, g := range groupNames {
			if sameColumn(dc, g, sch) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// treeAggregate splits the aggregation into worker partials merged up the
// tree topology to the coordinator, which finalizes.
func (q *queryExec) treeAggregate(ds *dstream, x *plan.Agg, specs []exec.AggSpec) exec.Operator {
	partials := make([]exec.Operator, len(ds.ops))
	for wi, op := range ds.ops {
		w := q.c.Workers[wi]
		agg := exec.NewHashAggregate(q.wctx(wi), op, x.GroupBy, specs, exec.AggPartial)
		agg.Parallel = q.prof.AggParallelism
		partials[wi] = q.wrap("HashAgg partial", w.ID, agg, op)
	}
	// Group columns are positional in the partial output.
	groupRefs := exec.ColRefs(allIdx(len(x.GroupBy))...)
	combine := func(ins []exec.Operator) exec.Operator {
		return exec.NewHashAggregate(nil, exec.NewUnion(ins...), groupRefs, specs, exec.AggMerge)
	}
	tree := q.gatherTree(&dstream{ops: partials, sch: partials[0].Schema()}, combine)
	final := exec.NewHashAggregate(nil, tree, groupRefs, specs, exec.AggFinal)
	return q.wrap("HashAgg final", q.coord.ID, final, tree)
}

func (q *queryExec) distributeLimit(x *plan.Limit) (*dstream, exec.Operator, error) {
	// Sort directly below: the paper's heap-based distributed top-k.
	if s, ok := x.Child.(*plan.Sort); ok && x.Offset == 0 {
		ds, coordOp, err := q.distribute(s.Child)
		if err != nil {
			return nil, nil, err
		}
		keys := planSortKeys(s.Keys)
		if coordOp != nil {
			return nil, q.wrap("TopK", q.coord.ID, exec.NewTopK(nil, coordOp, keys, int(x.N)), coordOp), nil
		}
		local := make([]exec.Operator, len(ds.ops))
		for wi, op := range ds.ops {
			w := q.c.Workers[wi]
			local[wi] = q.wrap("TopK", w.ID, exec.NewTopK(q.wctx(wi), op, keys, int(x.N)), op)
		}
		merged := q.gatherOrdered(&dstream{ops: local, sch: ds.sch}, keys)
		return nil, q.wrap("Limit", q.coord.ID, exec.NewLimit(merged, x.N, 0), merged), nil
	}
	ds, coordOp, err := q.distribute(x.Child)
	if err != nil {
		return nil, nil, err
	}
	if coordOp != nil {
		return nil, q.wrap("Limit", q.coord.ID, exec.NewLimit(coordOp, x.N, x.Offset), coordOp), nil
	}
	// Any N+offset rows per worker suffice; trim on the coordinator.
	local := make([]exec.Operator, len(ds.ops))
	for wi, op := range ds.ops {
		local[wi] = q.wrap("Limit", q.c.Workers[wi].ID, exec.NewLimit(op, x.N+x.Offset, 0), op)
	}
	gathered := q.gatherPlain(&dstream{ops: local, sch: ds.sch})
	return nil, q.wrap("Limit", q.coord.ID, exec.NewLimit(gathered, x.N, x.Offset), gathered), nil
}

// pickOne selects worker 0's replica of a replicated stream and drops the
// rest (the paper assigns replicated-table scans to one worker).
func (q *queryExec) pickOne(ds *dstream) exec.Operator {
	ch := q.channel("one")
	w := q.c.Workers[0]
	gsp := q.startSpan("Gather", q.coord.ID)
	ssp := q.startSpan("Send", w.ID)
	ssp.SetParent(gsp)
	q.spanOf(ds.ops[0]).SetParent(ssp)
	ep := exec.NewCountingEndpoint(w.Ep, ssp)
	d := &workerDriver{
		live:      q.live,
		coordSide: func() exec.Operator { return exec.NewRecv(q.coord.Ep, ch, 1, ds.sch) },
		launch: func() []func() error {
			return []func() error{func() error {
				defer ssp.Finish()
				return exec.SendAll(q.wctx(0), ep, q.coord.ID, ch, ds.ops[0])
			}}
		},
	}
	return q.attach(d, gsp)
}

// gatherPlain brings a worker stream to the coordinator, unordered. A
// replicated stream is gathered from a single worker — pulling every
// replica would duplicate rows (visible as W× result inflation on cross
// joins against replicated tables).
func (q *queryExec) gatherPlain(ds *dstream) exec.Operator {
	if ds.dist.kind == distReplicated {
		return q.pickOne(ds)
	}
	ch := q.channel("g")
	coordEp := q.coord.Ep
	coordID := q.coord.ID
	gsp := q.startSpan("Gather", coordID)
	// Per-worker Send spans chain the gather to each worker's subtree and
	// count the bytes that worker puts on the wire.
	eps := make([]network.Endpoint, len(ds.ops))
	ssps := make([]*obs.Span, len(ds.ops))
	for wi := range ds.ops {
		w := q.c.Workers[wi]
		ssp := q.startSpan("Send", w.ID)
		ssp.SetParent(gsp)
		q.spanOf(ds.ops[wi]).SetParent(ssp)
		eps[wi] = exec.NewCountingEndpoint(w.Ep, ssp)
		ssps[wi] = ssp
	}
	d := &workerDriver{
		live: q.live,
		coordSide: func() exec.Operator {
			return exec.NewRecv(coordEp, ch, len(ds.ops), ds.sch)
		},
		launch: func() []func() error {
			var fns []func() error
			for wi := range ds.ops {
				op := ds.ops[wi]
				ep := eps[wi]
				sp := ssps[wi]
				ectx := q.wctx(wi)
				fns = append(fns, func() error {
					defer sp.Finish()
					return exec.SendAll(ectx, ep, coordID, ch, op)
				})
			}
			return fns
		},
	}
	return q.attach(d, gsp)
}

// gatherOrdered preserves per-worker order with an ordered merge at the
// coordinator (distributed merge sort's final phase).
func (q *queryExec) gatherOrdered(ds *dstream, keys []exec.SortKey) exec.Operator {
	base := q.channel("m")
	coordEp := q.coord.Ep
	coordID := q.coord.ID
	gsp := q.startSpan("GatherMerge", coordID)
	eps := make([]network.Endpoint, len(ds.ops))
	ssps := make([]*obs.Span, len(ds.ops))
	for wi := range ds.ops {
		w := q.c.Workers[wi]
		ssp := q.startSpan("Send", w.ID)
		ssp.SetParent(gsp)
		q.spanOf(ds.ops[wi]).SetParent(ssp)
		eps[wi] = exec.NewCountingEndpoint(w.Ep, ssp)
		ssps[wi] = ssp
	}
	d := &workerDriver{
		live: q.live,
		coordSide: func() exec.Operator {
			ins := make([]exec.Operator, len(ds.ops))
			for wi := range ds.ops {
				ins[wi] = exec.NewRecv(coordEp, fmt.Sprintf("%s.%d", base, wi), 1, ds.sch)
			}
			return exec.NewMergeOperators(ins, keys)
		},
		launch: func() []func() error {
			var fns []func() error
			for wi := range ds.ops {
				op := ds.ops[wi]
				ep := eps[wi]
				sp := ssps[wi]
				ch := fmt.Sprintf("%s.%d", base, wi)
				ectx := q.wctx(wi)
				fns = append(fns, func() error {
					defer sp.Finish()
					return exec.SendAll(ectx, ep, coordID, ch, op)
				})
			}
			return fns
		},
	}
	return q.attach(d, gsp)
}

// gatherTree runs a tree-topology reduction with the coordinator as root
// (hierarchical aggregation; Section IV).
func (q *queryExec) gatherTree(ds *dstream, combine func([]exec.Operator) exec.Operator) exec.Operator {
	ch := q.channel("t")
	spec := exec.TreeReduceSpec{
		Channel: ch,
		Nodes:   append([]int{q.coord.ID}, q.c.WorkerIDs()...),
		Nmax:    q.c.Cfg.Nmax,
	}
	coordEp := q.coord.Ep
	gsp := q.startSpan("TreeReduce", q.coord.ID)
	eps := make([]network.Endpoint, len(ds.ops))
	ssps := make([]*obs.Span, len(ds.ops))
	for wi := range ds.ops {
		w := q.c.Workers[wi]
		ssp := q.startSpan("TreeSend", w.ID)
		ssp.SetParent(gsp)
		q.spanOf(ds.ops[wi]).SetParent(ssp)
		eps[wi] = exec.NewCountingEndpoint(w.Ep, ssp)
		ssps[wi] = ssp
	}
	d := &workerDriver{
		live: q.live,
		coordSide: func() exec.Operator {
			op, err := exec.RunTreeReduce(nil, coordEp, spec, exec.NewSource(ds.sch, nil), combine)
			if err != nil || op == nil {
				return exec.NewSource(ds.sch, nil)
			}
			return op
		},
		launch: func() []func() error {
			var fns []func() error
			for wi := range ds.ops {
				op := ds.ops[wi]
				ep := eps[wi]
				sp := ssps[wi]
				ectx := q.wctx(wi)
				fns = append(fns, func() error {
					defer sp.Finish()
					_, err := exec.RunTreeReduce(ectx, ep, spec, op, combine)
					return err
				})
			}
			return fns
		},
	}
	return q.attach(d, gsp)
}

// workerDriver is a coordinator-side operator that launches the worker
// goroutines of a gather when opened and surfaces their errors. It is also
// batch-native: the coordinator side of a gather is a Recv (or a merge of
// Recvs), and serving its wire batches through keeps the batch pipeline
// intact end-to-end.
type workerDriver struct {
	coordSide func() exec.Operator
	launch    func() []func() error
	// live, when set, counts this gather's in-flight machinery (worker send
	// goroutines plus the coordinator receive side) toward the query's
	// quiescence group so mailbox release waits for it.
	live *sync.WaitGroup

	op      exec.Operator
	bop     exec.BatchOperator
	errs    chan error
	pending int
	mu      sync.Mutex
	firstE  error
	tracked bool
}

// Schema implements exec.Operator.
func (d *workerDriver) Schema() types.Schema {
	if d.op == nil {
		d.op = d.coordSide()
	}
	return d.op.Schema()
}

// Open implements exec.Operator.
func (d *workerDriver) Open() error {
	d.op = d.coordSide()
	d.bop = nil
	if err := d.op.Open(); err != nil {
		return err
	}
	fns := d.launch()
	// The goroutines close over a local so an abandoning Close (which nils
	// d.errs) never races their send.
	errs := make(chan error, len(fns))
	d.errs = errs
	d.pending = len(fns)
	for _, fn := range fns {
		// errs is buffered to len(fns) above, so the single send never blocks
		// (sendstop's bounded-buffer proof).
		go func(fn func() error) { errs <- fn() }(fn)
	}
	if d.live != nil && !d.tracked {
		d.live.Add(1)
		d.tracked = true
	}
	return nil
}

// Next implements exec.Operator.
func (d *workerDriver) Next() (types.Row, bool, error) {
	r, ok, err := d.op.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		return r, true, nil
	}
	return nil, false, d.finish()
}

// NextBatch implements exec.BatchOperator, delegating to the coordinator
// operator's batch path (or an adapter over it).
func (d *workerDriver) NextBatch() ([]types.Row, bool, error) {
	if d.bop == nil {
		d.bop = exec.ToBatch(d.op, 0)
	}
	b, ok, err := d.bop.NextBatch()
	if err != nil {
		return nil, false, err
	}
	if ok {
		return b, true, nil
	}
	return nil, false, d.finish()
}

// finish collects worker outcomes once the coordinator stream is
// exhausted.
func (d *workerDriver) finish() error {
	for d.pending > 0 {
		if e := <-d.errs; e != nil && d.firstE == nil {
			d.firstE = e
		}
		d.pending--
	}
	return d.firstE
}

// Close implements exec.Operator. A driver closed with workers still
// pending was abandoned mid-stream (KILL, drain, or an upstream limit): its
// worker send goroutines may be blocked on full mailboxes that the
// coordinator will never pull again. Closing the receive side there would
// leak those goroutines forever, so Close hands the stream to a background
// drainer that pulls it to exhaustion — killed senders finish their EOF
// protocol quickly — then collects the worker errors and releases the
// query's quiescence token.
func (d *workerDriver) Close() error {
	done := func() {
		if d.tracked {
			d.tracked = false
			if d.live != nil {
				d.live.Done()
			}
		}
	}
	if d.op == nil {
		done()
		return nil
	}
	if d.pending > 0 {
		op, errs, pending := d.op, d.errs, d.pending
		live, tracked := d.live, d.tracked
		d.op, d.bop, d.errs, d.pending, d.tracked = nil, nil, nil, 0, false
		go func() {
			for {
				if _, ok, err := op.Next(); err != nil || !ok {
					break
				}
			}
			for i := 0; i < pending; i++ {
				<-errs
			}
			_ = op.Close()
			if tracked && live != nil {
				live.Done()
			}
		}()
		return nil
	}
	err := d.op.Close()
	d.op, d.bop = nil, nil
	done()
	return err
}

// renameSchema overrides an operator's reported schema, preserving the
// operator's batch path when it has one (plain interface embedding would
// hide NextBatch).
func renameSchema(op exec.Operator, sch types.Schema) exec.Operator {
	so := &schemaOverride{Operator: op, sch: sch}
	if bin, ok := op.(exec.BatchOperator); ok {
		return &batchSchemaOverride{schemaOverride: so, bin: bin}
	}
	return so
}

type schemaOverride struct {
	exec.Operator
	sch types.Schema
}

func (s *schemaOverride) Schema() types.Schema { return s.sch }

type batchSchemaOverride struct {
	*schemaOverride
	bin exec.BatchOperator
}

func (s *batchSchemaOverride) NextBatch() ([]types.Row, bool, error) { return s.bin.NextBatch() }

// mapColsByPosition renames dist columns positionally between two schemas.
func mapColsByPosition(cols []string, from, to types.Schema) []string {
	out := make([]string, 0, len(cols))
	for _, c := range cols {
		idx := from.Find(c)
		if idx < 0 || idx >= to.Len() {
			return nil
		}
		out = append(out, strings.ToLower(to.Cols[idx].Name))
	}
	return out
}

// projectDist tracks partitioning columns through a projection: each dist
// column must appear as a plain passthrough column.
func projectDist(d distInfo, p *plan.Project) distInfo {
	if d.kind != distPartitioned {
		return d
	}
	childSch := p.Child.Schema()
	out := distInfo{kind: distPartitioned}
	for _, dc := range d.cols {
		idx := childSch.Find(dc)
		mapped := ""
		for i, e := range p.Exprs {
			if c, ok := e.(*expr.Col); ok && c.Index == idx {
				mapped = strings.ToLower(p.Schema().Cols[i].Name)
				break
			}
		}
		if mapped == "" {
			return distInfo{kind: distRandom}
		}
		out.cols = append(out.cols, mapped)
	}
	return out
}
