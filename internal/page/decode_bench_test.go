package page

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/types"
	"repro/internal/vec"
)

// BenchmarkTypedVsBoxedDecode compares the typed batch decoders against
// the boxed DecodeInto path (each cell boxed into a types.Value and
// re-packed by Col.Append) on realistic column pages — the exact pair of
// paths VecColumnarScan chooses between per page.
func BenchmarkTypedVsBoxedDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	const pageSize = 32 * 1024

	mkInt := func() (ColumnPage, int) {
		p := InitColumnPage(make([]byte, pageSize))
		n := 0
		for p.Append(types.NewInt(rng.Int63n(1_000_000))) {
			n++
		}
		return p, n
	}
	mkFloat := func() (ColumnPage, int) {
		p := InitColumnPage(make([]byte, pageSize))
		n := 0
		for p.Append(types.NewFloat(rng.Float64() * 1e5)) {
			n++
		}
		return p, n
	}
	mkStr := func() (ColumnPage, int) {
		p := InitColumnPage(make([]byte, pageSize))
		n := 0
		for p.Append(types.NewString(fmt.Sprintf("STATUS-%02d", n%25))) {
			n++
		}
		p.Seal() // dictionary pages ship Huffman-packed
		return p, n
	}

	intPage, intN := mkInt()
	floatPage, floatN := mkFloat()
	strPage, strN := mkStr()

	rows := func(b *testing.B, n int) {
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	}

	b.Run("int64/typed", func(b *testing.B) {
		dst := make([]int64, 0, intN)
		var bm vec.Bitmap
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = dst[:0]
			bm.Truncate(0)
			var err error
			dst, err = intPage.DecodeInt64s(types.KindInt, dst, &bm)
			if err != nil {
				b.Fatal(err)
			}
		}
		rows(b, intN)
	})
	b.Run("int64/boxed", func(b *testing.B) {
		col := vec.Col{Kind: types.KindInt, Form: vec.FormInt, I: make([]int64, 0, intN)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col.I = col.I[:0]
			if err := intPage.DecodeInto(func(v types.Value) bool {
				col.Append(v)
				return true
			}); err != nil {
				b.Fatal(err)
			}
		}
		rows(b, intN)
	})
	b.Run("float64/typed", func(b *testing.B) {
		dst := make([]float64, 0, floatN)
		var bm vec.Bitmap
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = dst[:0]
			bm.Truncate(0)
			var err error
			dst, err = floatPage.DecodeFloat64s(dst, &bm)
			if err != nil {
				b.Fatal(err)
			}
		}
		rows(b, floatN)
	})
	b.Run("float64/boxed", func(b *testing.B) {
		col := vec.Col{Kind: types.KindFloat, Form: vec.FormFloat, F: make([]float64, 0, floatN)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col.F = col.F[:0]
			if err := floatPage.DecodeInto(func(v types.Value) bool {
				col.Append(v)
				return true
			}); err != nil {
				b.Fatal(err)
			}
		}
		rows(b, floatN)
	})
	b.Run("dict-string/typed", func(b *testing.B) {
		dict := vec.NewDict()
		dst := make([]int32, 0, strN)
		var bm vec.Bitmap
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = dst[:0]
			bm.Truncate(0)
			var err error
			dst, err = strPage.DecodeStrings(dict, dst, &bm)
			if err != nil {
				b.Fatal(err)
			}
		}
		rows(b, strN)
	})
	b.Run("dict-string/boxed", func(b *testing.B) {
		col := vec.Col{Kind: types.KindString, Form: vec.FormStr, Dict: vec.NewDict(), Codes: make([]int32, 0, strN)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col.Codes = col.Codes[:0]
			if err := strPage.DecodeInto(func(v types.Value) bool {
				col.Append(v)
				return true
			}); err != nil {
				b.Fatal(err)
			}
		}
		rows(b, strN)
	})
}
