package page

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/types"
	"repro/internal/vec"
)

// buildColPage appends vals into a fresh column page, failing the test if
// they don't fit. seal attempts Huffman packing (applied only when it
// shrinks the payload).
func buildColPage(t *testing.T, size int, vals []types.Value, seal bool) ColumnPage {
	t.Helper()
	p := InitColumnPage(make([]byte, size))
	for i, v := range vals {
		if !p.Append(v) {
			t.Fatalf("value %d of %d does not fit a %d-byte page", i, len(vals), size)
		}
	}
	if seal {
		p.Seal()
	}
	return p
}

// boxedDecode is the golden reference: the boxed DecodeInto path.
func boxedDecode(t *testing.T, p ColumnPage) []types.Value {
	t.Helper()
	var out []types.Value
	if err := p.DecodeInto(func(v types.Value) bool {
		out = append(out, v)
		return true
	}); err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	return out
}

// intPageValues builds kind-homogeneous int-family values with NULL runs.
func intPageValues(kind types.Kind, n int, rng *rand.Rand) []types.Value {
	vals := make([]types.Value, n)
	for i := range vals {
		switch {
		case i%7 == 3, i%11 == 10: // NULL runs and stragglers
			vals[i] = types.Null
		case kind == types.KindBool:
			vals[i] = types.NewBool(rng.Intn(2) == 0)
		case kind == types.KindDate:
			vals[i] = types.NewDate(rng.Int63n(40000) - 10000)
		default:
			vals[i] = types.NewInt(rng.Int63() - rng.Int63()) // negatives too
		}
	}
	return vals
}

func TestDecodeInt64sParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []types.Kind{types.KindInt, types.KindDate, types.KindBool} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			vals := intPageValues(kind, 300, rng)
			p := buildColPage(t, 8192, vals, false)
			want := boxedDecode(t, p)
			var bm vec.Bitmap
			got, err := p.DecodeInt64s(kind, nil, &bm)
			if err != nil {
				t.Fatalf("DecodeInt64s: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("decoded %d values, want %d", len(got), len(want))
			}
			for i, w := range want {
				if w.K == types.KindNull {
					if !bm.Get(i) {
						t.Fatalf("value %d: want NULL bit", i)
					}
					continue
				}
				if bm.Get(i) {
					t.Fatalf("value %d: unexpected NULL bit", i)
				}
				if got[i] != w.I {
					t.Fatalf("value %d: got %d want %d", i, got[i], w.I)
				}
			}
		})
	}
}

func TestDecodeFloat64sParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]types.Value, 300)
	for i := range vals {
		if i%9 == 4 {
			vals[i] = types.Null
		} else {
			vals[i] = types.NewFloat(rng.NormFloat64() * 1e6)
		}
	}
	p := buildColPage(t, 8192, vals, false)
	want := boxedDecode(t, p)
	var bm vec.Bitmap
	got, err := p.DecodeFloat64s(nil, &bm)
	if err != nil {
		t.Fatalf("DecodeFloat64s: %v", err)
	}
	for i, w := range want {
		if w.K == types.KindNull {
			if !bm.Get(i) {
				t.Fatalf("value %d: want NULL bit", i)
			}
			continue
		}
		if bm.Get(i) || got[i] != w.F {
			t.Fatalf("value %d: got %v null=%v want %v", i, got[i], bm.Get(i), w.F)
		}
	}
}

func TestDecodeStringsParity(t *testing.T) {
	for _, sealed := range []bool{false, true} {
		t.Run(fmt.Sprintf("sealed=%v", sealed), func(t *testing.T) {
			vals := make([]types.Value, 400)
			for i := range vals {
				switch {
				case i%13 == 5:
					vals[i] = types.Null
				default:
					// Low-cardinality, repetitive: Huffman packing shrinks it.
					vals[i] = types.NewString(fmt.Sprintf("STATUS-%d", i%4))
				}
			}
			p := buildColPage(t, 16384, vals, sealed)
			if sealed && !p.packed() {
				t.Fatal("test page did not Huffman-pack; pick more repetitive data")
			}
			want := boxedDecode(t, p)
			dict := vec.NewDict()
			var bm vec.Bitmap
			got, err := p.DecodeStrings(dict, nil, &bm)
			if err != nil {
				t.Fatalf("DecodeStrings: %v", err)
			}
			for i, w := range want {
				if w.K == types.KindNull {
					if !bm.Get(i) {
						t.Fatalf("value %d: want NULL bit", i)
					}
					continue
				}
				if bm.Get(i) || dict.Str(got[i]) != w.S {
					t.Fatalf("value %d: got %q want %q", i, dict.Str(got[i]), w.S)
				}
			}
			if dict.Len() != 4 {
				t.Fatalf("dictionary has %d entries, want 4", dict.Len())
			}
		})
	}
}

func TestDecodeEmptyPage(t *testing.T) {
	p := InitColumnPage(make([]byte, 4096))
	var bm vec.Bitmap
	ints, err := p.DecodeInt64s(types.KindInt, nil, &bm)
	if err != nil || len(ints) != 0 {
		t.Fatalf("empty int decode: %v, %d values", err, len(ints))
	}
	floats, err := p.DecodeFloat64s(nil, &bm)
	if err != nil || len(floats) != 0 {
		t.Fatalf("empty float decode: %v, %d values", err, len(floats))
	}
	codes, err := p.DecodeStrings(vec.NewDict(), nil, &bm)
	if err != nil || len(codes) != 0 {
		t.Fatalf("empty string decode: %v, %d values", err, len(codes))
	}
}

// TestDecodeKindMismatchRollback: a mixed-kind page must return
// ErrKindMismatch with the destination slab and null bitmap rolled back to
// their input state, so the caller's boxed fallback starts clean.
func TestDecodeKindMismatchRollback(t *testing.T) {
	p := InitColumnPage(make([]byte, 4096))
	for _, v := range []types.Value{
		types.NewInt(1), types.Null, types.NewInt(2), types.NewString("oops"), types.NewInt(3),
	} {
		if !p.Append(v) {
			t.Fatal("append failed")
		}
	}
	dst := []int64{77, 88}
	var bm vec.Bitmap
	bm.Set(1) // pre-existing NULL mark under the caller's base
	got, err := p.DecodeInt64s(types.KindInt, dst, &bm)
	if !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("err = %v, want ErrKindMismatch", err)
	}
	if len(got) != 2 || got[0] != 77 || got[1] != 88 {
		t.Fatalf("dst not rolled back: %v", got)
	}
	if !bm.Get(1) {
		t.Fatal("pre-existing null bit lost in rollback")
	}
	for i := 2; i < 10; i++ {
		if bm.Get(i) {
			t.Fatalf("null bit %d survived rollback", i)
		}
	}
	// A DATE tag is int64-shaped but a different kind: still a mismatch,
	// because Col.Append would demote on it.
	if _, err := p.DecodeInt64s(types.KindDate, nil, &bm); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("date-vs-int err = %v, want ErrKindMismatch", err)
	}
}

// randomSel returns a random ascending subset of [0, n).
func randomSel(n int, rng *rand.Rand) []int32 {
	var sel []int32
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

func TestDecodeSelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	t.Run("int64", func(t *testing.T) {
		vals := intPageValues(types.KindInt, 250, rng)
		p := buildColPage(t, 8192, vals, false)
		sel := randomSel(len(vals), rng)
		var bm vec.Bitmap
		got, err := p.DecodeInt64sSel(types.KindInt, nil, &bm, sel)
		if err != nil {
			t.Fatalf("DecodeInt64sSel: %v", err)
		}
		if len(got) != len(sel) {
			t.Fatalf("decoded %d, want %d", len(got), len(sel))
		}
		for k, i := range sel {
			if vals[i].K == types.KindNull {
				if !bm.Get(k) {
					t.Fatalf("sel %d (pos %d): want NULL", k, i)
				}
				continue
			}
			if bm.Get(k) || got[k] != vals[i].I {
				t.Fatalf("sel %d (pos %d): got %d want %d", k, i, got[k], vals[i].I)
			}
		}
	})
	t.Run("float64", func(t *testing.T) {
		vals := make([]types.Value, 250)
		for i := range vals {
			if i%8 == 6 {
				vals[i] = types.Null
			} else {
				vals[i] = types.NewFloat(rng.Float64())
			}
		}
		p := buildColPage(t, 8192, vals, false)
		sel := randomSel(len(vals), rng)
		var bm vec.Bitmap
		got, err := p.DecodeFloat64sSel(nil, &bm, sel)
		if err != nil {
			t.Fatalf("DecodeFloat64sSel: %v", err)
		}
		for k, i := range sel {
			if vals[i].K == types.KindNull {
				if !bm.Get(k) {
					t.Fatalf("sel %d: want NULL", k)
				}
			} else if bm.Get(k) || got[k] != vals[i].F {
				t.Fatalf("sel %d: got %v want %v", k, got[k], vals[i].F)
			}
		}
	})
	t.Run("strings-sealed", func(t *testing.T) {
		vals := make([]types.Value, 300)
		for i := range vals {
			if i%10 == 7 {
				vals[i] = types.Null
			} else {
				vals[i] = types.NewString(fmt.Sprintf("FLAG-%d", i%3))
			}
		}
		p := buildColPage(t, 16384, vals, true)
		sel := randomSel(len(vals), rng)
		dict := vec.NewDict()
		var bm vec.Bitmap
		got, err := p.DecodeStringsSel(dict, nil, &bm, sel)
		if err != nil {
			t.Fatalf("DecodeStringsSel: %v", err)
		}
		for k, i := range sel {
			if vals[i].K == types.KindNull {
				if !bm.Get(k) {
					t.Fatalf("sel %d: want NULL", k)
				}
			} else if bm.Get(k) || dict.Str(got[k]) != vals[i].S {
				t.Fatalf("sel %d: got %q want %q", k, dict.Str(got[k]), vals[i].S)
			}
		}
		// Unselected values must not be interned: with sel hitting all 3
		// distinct strings the dict still has at most 3 entries.
		if dict.Len() > 3 {
			t.Fatalf("dictionary has %d entries, want <= 3", dict.Len())
		}
	})
	t.Run("empty-sel", func(t *testing.T) {
		p := buildColPage(t, 4096, intPageValues(types.KindInt, 50, rng), false)
		var bm vec.Bitmap
		got, err := p.DecodeInt64sSel(types.KindInt, nil, &bm, nil)
		if err != nil || len(got) != 0 {
			t.Fatalf("empty sel: %v, %d values", err, len(got))
		}
	})
	t.Run("sel-beyond-page", func(t *testing.T) {
		p := buildColPage(t, 4096, intPageValues(types.KindInt, 20, rng), false)
		var bm vec.Bitmap
		if _, err := p.DecodeInt64sSel(types.KindInt, nil, &bm, []int32{5, 25}); err == nil {
			t.Fatal("selection beyond page count must error")
		}
	})
}

func TestBitmapTruncate(t *testing.T) {
	var bm vec.Bitmap
	for _, i := range []int{0, 5, 63, 64, 70, 128, 200} {
		bm.Set(i)
	}
	bm.Truncate(64)
	for _, i := range []int{0, 5, 63} {
		if !bm.Get(i) {
			t.Fatalf("bit %d lost below truncation point", i)
		}
	}
	for _, i := range []int{64, 70, 128, 200} {
		if bm.Get(i) {
			t.Fatalf("bit %d survived Truncate(64)", i)
		}
	}
	if !bm.Any() {
		t.Fatal("Any lost remaining bits")
	}
	bm.Truncate(0)
	if bm.Any() {
		t.Fatal("Truncate(0) left bits set")
	}
}

// FuzzTypedDecode feeds arbitrary bytes to every typed decoder: they must
// error on corruption — never panic, over-read, or disagree with the boxed
// DecodeInto path when they do succeed.
func FuzzTypedDecode(f *testing.F) {
	// Seed with well-formed pages of each kind, sealed and unsealed.
	seed := func(vals []types.Value, seal bool) {
		p := InitColumnPage(make([]byte, 2048))
		for _, v := range vals {
			p.Append(v)
		}
		if seal {
			p.Seal()
		}
		f.Add(p.Buf)
	}
	seed([]types.Value{types.NewInt(42), types.Null, types.NewInt(-7)}, false)
	seed([]types.Value{types.NewFloat(3.14), types.Null}, false)
	seed([]types.Value{types.NewBool(true), types.NewBool(false)}, false)
	seed([]types.Value{types.NewDate(19000), types.Null}, false)
	strs := make([]types.Value, 64)
	for i := range strs {
		strs[i] = types.NewString(fmt.Sprintf("AA-%d", i%2))
	}
	seed(strs, true)

	f.Fuzz(func(t *testing.T, buf []byte) {
		p := ColumnPage{Buf: buf}
		var boxed []types.Value
		boxedErr := p.DecodeInto(func(v types.Value) bool {
			boxed = append(boxed, v)
			return true
		})
		check := func(name string, n int, err error) {
			if err != nil {
				return // corruption detected: fine
			}
			if boxedErr != nil {
				t.Fatalf("%s succeeded but DecodeInto failed: %v", name, boxedErr)
			}
			if n != len(boxed) {
				t.Fatalf("%s decoded %d values, DecodeInto %d", name, n, len(boxed))
			}
		}
		for _, kind := range []types.Kind{types.KindInt, types.KindDate, types.KindBool} {
			var bm vec.Bitmap
			out, err := p.DecodeInt64s(kind, nil, &bm)
			check("DecodeInt64s", len(out), err)
			sel := []int32{0, 2}
			var bm2 vec.Bitmap
			if _, err := p.DecodeInt64sSel(kind, nil, &bm2, sel); err != nil {
				continue
			}
		}
		var bm vec.Bitmap
		out, err := p.DecodeFloat64s(nil, &bm)
		check("DecodeFloat64s", len(out), err)
		var bm3 vec.Bitmap
		codes, err := p.DecodeStrings(vec.NewDict(), nil, &bm3)
		check("DecodeStrings", len(codes), err)
		var bm4 vec.Bitmap
		_, _ = p.DecodeStringsSel(vec.NewDict(), nil, &bm4, []int32{1, 3})
		var bm5 vec.Bitmap
		_, _ = p.DecodeFloat64sSel(nil, &bm5, []int32{0})
	})
}
