package page

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func testRow(i int) types.Row {
	return types.Row{
		types.NewInt(int64(i)),
		types.NewString(fmt.Sprintf("customer-%04d", i)),
		types.NewFloat(float64(i) * 1.5),
	}
}

func TestRowPageInsertGet(t *testing.T) {
	buf := make([]byte, 4096)
	p := InitRowPage(buf)
	if p.NumSlots() != 0 {
		t.Fatalf("fresh page has %d slots", p.NumSlots())
	}
	var slots []int
	for i := 0; i < 10; i++ {
		s, ok := p.Insert(testRow(i))
		if !ok {
			t.Fatalf("insert %d failed with %d free", i, p.FreeSpace())
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		r, ok, err := p.Get(s)
		if err != nil || !ok {
			t.Fatalf("get slot %d: ok=%v err=%v", s, ok, err)
		}
		if r[0].Int() != int64(i) {
			t.Errorf("slot %d row = %v", s, r)
		}
	}
}

func TestRowPageFull(t *testing.T) {
	buf := make([]byte, 256)
	p := InitRowPage(buf)
	n := 0
	for {
		if _, ok := p.Insert(testRow(n)); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("page fit zero rows")
	}
	// All inserted rows still readable after fill.
	live := 0
	if err := p.Scan(func(slot int, r types.Row) bool { live++; return true }); err != nil {
		t.Fatal(err)
	}
	if live != n {
		t.Errorf("scan found %d rows, inserted %d", live, n)
	}
}

func TestRowPageDelete(t *testing.T) {
	buf := make([]byte, 4096)
	p := InitRowPage(buf)
	for i := 0; i < 5; i++ {
		p.Insert(testRow(i))
	}
	if !p.Delete(2) {
		t.Fatal("delete live slot failed")
	}
	if p.Delete(2) {
		t.Fatal("double delete should report false")
	}
	if p.Delete(99) {
		t.Fatal("delete out of range should report false")
	}
	if _, ok, _ := p.Get(2); ok {
		t.Fatal("tombstoned slot should not return a row")
	}
	if p.LiveRows() != 4 {
		t.Errorf("LiveRows = %d, want 4", p.LiveRows())
	}
	seen := map[int64]bool{}
	p.Scan(func(slot int, r types.Row) bool { seen[r[0].Int()] = true; return true })
	if seen[2] || len(seen) != 4 {
		t.Errorf("scan after delete saw %v", seen)
	}
}

func TestRowPageRoundTripAfterReload(t *testing.T) {
	buf := make([]byte, 4096)
	p := InitRowPage(buf)
	p.Insert(testRow(1))
	p.Insert(testRow(2))
	p2, err := AsRowPage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumSlots() != 2 {
		t.Errorf("reloaded page slots = %d", p2.NumSlots())
	}
	if _, err := AsColumnPage(buf); err == nil {
		t.Error("row page should not open as column page")
	}
}

func TestRowPageLSN(t *testing.T) {
	buf := make([]byte, 1024)
	InitRowPage(buf)
	SetLSN(buf, 12345)
	if LSN(buf) != 12345 {
		t.Errorf("LSN = %d", LSN(buf))
	}
}

func TestColumnPageAppendValues(t *testing.T) {
	buf := make([]byte, 2048)
	p := InitColumnPage(buf)
	want := []types.Value{
		types.NewInt(5), types.NewString("hello"), types.Null, types.NewFloat(2.5),
	}
	for _, v := range want {
		if !p.Append(v) {
			t.Fatalf("append %v failed", v)
		}
	}
	got, err := p.Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d values", len(got))
	}
	for i := range want {
		if types.Compare(got[i], want[i]) != 0 {
			t.Errorf("value %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestColumnPageSeal(t *testing.T) {
	buf := make([]byte, 1<<16)
	p := InitColumnPage(buf)
	n := 0
	for p.Append(types.NewString("REGIONAL SHIPPING PRIORITY HIGH")) {
		n++
		if n >= 1000 {
			break
		}
	}
	if n < 100 {
		t.Fatalf("only %d strings fit", n)
	}
	if !p.Seal() {
		t.Fatal("seal on redundant strings should pack")
	}
	if p.Append(types.NewInt(1)) {
		t.Error("sealed page must refuse appends")
	}
	vals, err := p.Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != n {
		t.Fatalf("after seal: %d values, want %d", len(vals), n)
	}
	for _, v := range vals {
		if v.Str() != "REGIONAL SHIPPING PRIORITY HIGH" {
			t.Fatalf("bad value after seal: %v", v)
		}
	}
}

func TestPageSet(t *testing.T) {
	bufs := [][]byte{make([]byte, 1024), make([]byte, 1024), make([]byte, 1024)}
	ps := NewPageSet(bufs)
	var want []types.Row
	for i := 0; ; i++ {
		r := testRow(i)
		if !ps.AppendRow(r) {
			break
		}
		want = append(want, r)
	}
	if len(want) == 0 {
		t.Fatal("page set fit zero rows")
	}
	if ps.NumRows() != len(want) {
		t.Fatalf("NumRows = %d, want %d", ps.NumRows(), len(want))
	}
	// All pages hold the same count — the invariant simplifying row
	// reconstruction.
	for i, p := range ps.Pages {
		if p.NumValues() != len(want) {
			t.Errorf("page %d has %d values, want %d", i, p.NumValues(), len(want))
		}
	}
	rows, err := ps.Rows()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for c := range want[i] {
			if types.Compare(rows[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, c, rows[i][c], want[i][c])
			}
		}
	}
	ps.Seal()
	rows2, err := ps.Rows()
	if err != nil || len(rows2) != len(want) {
		t.Fatalf("rows after seal: %d, err=%v", len(rows2), err)
	}
}

func TestPageSetArityMismatch(t *testing.T) {
	ps := NewPageSet([][]byte{make([]byte, 256)})
	if ps.AppendRow(types.Row{types.NewInt(1), types.NewInt(2)}) {
		t.Error("arity mismatch must fail")
	}
}

func TestPageFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pf, err := OpenFile(filepath.Join(dir, "t.dat"), 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	var pages []uint32
	for i := 0; i < 5; i++ {
		buf := make([]byte, 4096)
		p := InitRowPage(buf)
		for j := 0; j < 20; j++ {
			p.Insert(testRow(i*100 + j))
		}
		n := pf.Allocate()
		if err := pf.WritePage(n, buf); err != nil {
			t.Fatal(err)
		}
		pages = append(pages, n)
	}
	for i, n := range pages {
		buf, err := pf.ReadPage(n)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := AsRowPage(buf)
		if err != nil {
			t.Fatal(err)
		}
		r, ok, err := rp.Get(0)
		if err != nil || !ok || r[0].Int() != int64(i*100) {
			t.Fatalf("page %d first row = %v ok=%v err=%v", n, r, ok, err)
		}
	}
}

func TestPageFileReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.dat")
	pf, err := OpenFile(path, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	p := InitRowPage(buf)
	p.Insert(testRow(7))
	n := pf.Allocate()
	pf.WritePage(n, buf)
	pf.Sync()
	pf.Close()

	pf2, err := OpenFile(path, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	if pf2.NumPages() != 1 {
		t.Fatalf("reopened NumPages = %d", pf2.NumPages())
	}
	got, err := pf2.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	rp, _ := AsRowPage(got)
	r, ok, _ := rp.Get(0)
	if !ok || r[0].Int() != 7 {
		t.Fatalf("reopened row = %v", r)
	}
}

func TestPageFileUnwrittenPage(t *testing.T) {
	dir := t.TempDir()
	pf, err := OpenFile(filepath.Join(dir, "t.dat"), 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	a := pf.Allocate()
	b := pf.Allocate()
	// Write only the second page; the first stays a hole.
	buf := make([]byte, 1024)
	InitRowPage(buf)
	if err := pf.WritePage(b, buf); err != nil {
		t.Fatal(err)
	}
	got, err := pf.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, by := range got {
		if by != 0 {
			t.Fatal("hole page should read as zeros")
		}
	}
	if _, err := pf.ReadPage(99); err == nil {
		t.Error("read past end should fail")
	}
}

func TestPageFileBadSizes(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "x"), 4, false); err == nil {
		t.Error("tiny page size should fail")
	}
	pf, err := OpenFile(filepath.Join(dir, "y"), 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if err := pf.WritePage(0, make([]byte, 100)); err == nil {
		t.Error("wrong buffer size should fail")
	}
}

func TestRowPageQuickProperty(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		buf := make([]byte, 8192)
		p := InitRowPage(buf)
		var inserted []types.Row
		for i := 0; i < len(ints) && i < len(strs); i++ {
			r := types.Row{types.NewInt(ints[i]), types.NewString(strs[i])}
			if _, ok := p.Insert(r); !ok {
				break
			}
			inserted = append(inserted, r)
		}
		for s, want := range inserted {
			got, ok, err := p.Get(s)
			if err != nil || !ok {
				return false
			}
			if types.Compare(got[0], want[0]) != 0 || types.Compare(got[1], want[1]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPageFileCompressedSparseness(t *testing.T) {
	// Highly compressible pages should make the file much smaller than
	// numPages*pageSize of logical data when compression is on.
	dir := t.TempDir()
	pf, err := OpenFile(filepath.Join(dir, "c.dat"), 65536, true)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	buf := make([]byte, 65536)
	p := InitRowPage(buf)
	for {
		if _, ok := p.Insert(types.Row{types.NewString("AAAAAAAAAAAAAAAAAAAA")}); !ok {
			break
		}
	}
	rng := rand.New(rand.NewSource(1))
	_ = rng
	for i := 0; i < 8; i++ {
		n := pf.Allocate()
		if err := pf.WritePage(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 8; i++ {
		got, err := pf.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := AsRowPage(got)
		if err != nil || rp.NumSlots() == 0 {
			t.Fatalf("page %d: slots=%d err=%v", i, rp.NumSlots(), err)
		}
	}
}
