package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/types"
	"repro/internal/vec"
)

// Typed batch decode: these decoders walk a column page's binary payload
// once and append straight into vec slabs — no types.Value boxing, no
// per-cell closure. They are strict about kinds: a cell whose tag is not
// the expected kind (or NULL) returns ErrKindMismatch with the destination
// rolled back, and the caller reruns the page through the boxed DecodeInto
// path, which preserves the mixed-kind demotion semantics of Col.Append.
//
// All decoders validate the payload length against the page buffer and
// every cell against the payload before reading, so a corrupted page
// yields an error — never a panic or an over-read (fuzzed in
// decode_test.go).

// ErrKindMismatch reports that a typed decoder met a cell whose kind has
// no place in the requested slab. The destination slab and null bitmap are
// rolled back to their input state, so the caller can fall back to the
// boxed DecodeInto path.
var ErrKindMismatch = errors.New("page: value kind does not match typed decoder")

// payload returns the page's value payload with the declared byte length
// validated against the buffer, Huffman-unpacked when the page is sealed
// packed.
func (p ColumnPage) payload() ([]byte, error) {
	if len(p.Buf) < colHeaderSize {
		return nil, fmt.Errorf("page: column page shorter than header (%d bytes)", len(p.Buf))
	}
	n := p.payloadLen()
	if n < 0 || n > len(p.Buf)-colHeaderSize {
		return nil, fmt.Errorf("page: column payload length %d exceeds page size %d", n, len(p.Buf))
	}
	pay := p.Buf[colHeaderSize : colHeaderSize+n]
	if p.packed() {
		raw, err := compress.DecompressHuffman(pay)
		if err != nil {
			return nil, fmt.Errorf("page: unpack column page: %w", err)
		}
		pay = raw
	}
	return pay, nil
}

// DecodeInt64s appends every value of a fixed-width integer column page
// (kind Int, Date, or Bool — whichever the column's schema declares) to
// dst, marking NULL positions (which hold 0) in nulls at their absolute
// slab offsets. Returns the grown slab. On any error, dst and nulls are
// rolled back to their input state.
func (p ColumnPage) DecodeInt64s(kind types.Kind, dst []int64, nulls *vec.Bitmap) ([]int64, error) {
	pay, err := p.payload()
	if err != nil {
		return dst, err
	}
	base := len(dst)
	n := p.NumValues()
	pos := 0
	for i := 0; i < n; i++ {
		if pos >= len(pay) {
			nulls.Truncate(base)
			return dst[:base], fmt.Errorf("page: column value %d: payload truncated", i)
		}
		tag := types.Kind(pay[pos])
		pos++
		switch {
		case tag == types.KindNull:
			nulls.Set(len(dst))
			dst = append(dst, 0)
		case tag != kind:
			nulls.Truncate(base)
			return dst[:base], ErrKindMismatch
		case kind == types.KindBool:
			if pos >= len(pay) {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: short bool", i)
			}
			dst = append(dst, int64(pay[pos]))
			pos++
		default: // KindInt, KindDate
			v, m := binary.Varint(pay[pos:])
			if m <= 0 {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: bad varint", i)
			}
			dst = append(dst, v)
			pos += m
		}
	}
	return dst, nil
}

// DecodeFloat64s appends every value of a FLOAT column page to dst,
// marking NULLs (which hold 0) in nulls. On any error, dst and nulls are
// rolled back to their input state.
func (p ColumnPage) DecodeFloat64s(dst []float64, nulls *vec.Bitmap) ([]float64, error) {
	pay, err := p.payload()
	if err != nil {
		return dst, err
	}
	base := len(dst)
	n := p.NumValues()
	pos := 0
	for i := 0; i < n; i++ {
		if pos >= len(pay) {
			nulls.Truncate(base)
			return dst[:base], fmt.Errorf("page: column value %d: payload truncated", i)
		}
		tag := types.Kind(pay[pos])
		pos++
		switch tag {
		case types.KindNull:
			nulls.Set(len(dst))
			dst = append(dst, 0)
		case types.KindFloat:
			if len(pay)-pos < 8 {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: short float", i)
			}
			dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(pay[pos:])))
			pos += 8
		default:
			nulls.Truncate(base)
			return dst[:base], ErrKindMismatch
		}
	}
	return dst, nil
}

// DecodeStrings appends every value of a STRING column page to dst as
// codes interned into dict (Huffman-packed payloads are unpacked first),
// marking NULLs (which hold code 0) in nulls. On any error, dst and nulls
// are rolled back; strings interned before the error stay in dict, which
// is harmless (dictionaries are append-only).
func (p ColumnPage) DecodeStrings(dict *vec.Dict, dst []int32, nulls *vec.Bitmap) ([]int32, error) {
	pay, err := p.payload()
	if err != nil {
		return dst, err
	}
	base := len(dst)
	n := p.NumValues()
	pos := 0
	for i := 0; i < n; i++ {
		if pos >= len(pay) {
			nulls.Truncate(base)
			return dst[:base], fmt.Errorf("page: column value %d: payload truncated", i)
		}
		tag := types.Kind(pay[pos])
		pos++
		switch tag {
		case types.KindNull:
			nulls.Set(len(dst))
			dst = append(dst, 0)
		case types.KindString:
			l, m := binary.Uvarint(pay[pos:])
			if m <= 0 {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: bad string length", i)
			}
			pos += m
			if uint64(len(pay)-pos) < l {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: short string (%d < %d)", i, len(pay)-pos, l)
			}
			dst = append(dst, dict.CodeBytes(pay[pos:pos+int(l)]))
			pos += int(l)
		default:
			nulls.Truncate(base)
			return dst[:base], ErrKindMismatch
		}
	}
	return dst, nil
}

// DecodeInt64sSel is DecodeInt64s restricted to the ascending page-relative
// positions in sel: only selected cells append to dst, and decoding stops
// as soon as sel is exhausted (late materialization — the tail of the page
// is never touched). sel positions beyond the page's value count are an
// error.
func (p ColumnPage) DecodeInt64sSel(kind types.Kind, dst []int64, nulls *vec.Bitmap, sel []int32) ([]int64, error) {
	if len(sel) == 0 {
		return dst, nil
	}
	pay, err := p.payload()
	if err != nil {
		return dst, err
	}
	base := len(dst)
	n := p.NumValues()
	pos, si := 0, 0
	for i := 0; i < n && si < len(sel); i++ {
		if pos >= len(pay) {
			nulls.Truncate(base)
			return dst[:base], fmt.Errorf("page: column value %d: payload truncated", i)
		}
		want := int(sel[si]) == i
		tag := types.Kind(pay[pos])
		pos++
		switch {
		case tag == types.KindNull:
			if want {
				nulls.Set(len(dst))
				dst = append(dst, 0)
			}
		case tag != kind:
			nulls.Truncate(base)
			return dst[:base], ErrKindMismatch
		case kind == types.KindBool:
			if pos >= len(pay) {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: short bool", i)
			}
			if want {
				dst = append(dst, int64(pay[pos]))
			}
			pos++
		default: // KindInt, KindDate
			v, m := binary.Varint(pay[pos:])
			if m <= 0 {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: bad varint", i)
			}
			if want {
				dst = append(dst, v)
			}
			pos += m
		}
		if want {
			si++
		}
	}
	if si < len(sel) {
		nulls.Truncate(base)
		return dst[:base], fmt.Errorf("page: selection position %d beyond page (%d values)", sel[si], n)
	}
	return dst, nil
}

// DecodeFloat64sSel is DecodeFloat64s restricted to the ascending
// page-relative positions in sel.
func (p ColumnPage) DecodeFloat64sSel(dst []float64, nulls *vec.Bitmap, sel []int32) ([]float64, error) {
	if len(sel) == 0 {
		return dst, nil
	}
	pay, err := p.payload()
	if err != nil {
		return dst, err
	}
	base := len(dst)
	n := p.NumValues()
	pos, si := 0, 0
	for i := 0; i < n && si < len(sel); i++ {
		if pos >= len(pay) {
			nulls.Truncate(base)
			return dst[:base], fmt.Errorf("page: column value %d: payload truncated", i)
		}
		want := int(sel[si]) == i
		tag := types.Kind(pay[pos])
		pos++
		switch tag {
		case types.KindNull:
			if want {
				nulls.Set(len(dst))
				dst = append(dst, 0)
			}
		case types.KindFloat:
			if len(pay)-pos < 8 {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: short float", i)
			}
			if want {
				dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(pay[pos:])))
			}
			pos += 8
		default:
			nulls.Truncate(base)
			return dst[:base], ErrKindMismatch
		}
		if want {
			si++
		}
	}
	if si < len(sel) {
		nulls.Truncate(base)
		return dst[:base], fmt.Errorf("page: selection position %d beyond page (%d values)", sel[si], n)
	}
	return dst, nil
}

// DecodeStringsSel is DecodeStrings restricted to the ascending
// page-relative positions in sel. Unselected strings are skipped without
// interning — with a selective predicate this is where late
// materialization pays: the dictionary probe per dropped cell disappears.
func (p ColumnPage) DecodeStringsSel(dict *vec.Dict, dst []int32, nulls *vec.Bitmap, sel []int32) ([]int32, error) {
	if len(sel) == 0 {
		return dst, nil
	}
	pay, err := p.payload()
	if err != nil {
		return dst, err
	}
	base := len(dst)
	n := p.NumValues()
	pos, si := 0, 0
	for i := 0; i < n && si < len(sel); i++ {
		if pos >= len(pay) {
			nulls.Truncate(base)
			return dst[:base], fmt.Errorf("page: column value %d: payload truncated", i)
		}
		want := int(sel[si]) == i
		tag := types.Kind(pay[pos])
		pos++
		switch tag {
		case types.KindNull:
			if want {
				nulls.Set(len(dst))
				dst = append(dst, 0)
			}
		case types.KindString:
			l, m := binary.Uvarint(pay[pos:])
			if m <= 0 {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: bad string length", i)
			}
			pos += m
			if uint64(len(pay)-pos) < l {
				nulls.Truncate(base)
				return dst[:base], fmt.Errorf("page: column value %d: short string (%d < %d)", i, len(pay)-pos, l)
			}
			if want {
				dst = append(dst, dict.CodeBytes(pay[pos:pos+int(l)]))
			}
			pos += int(l)
		default:
			nulls.Truncate(base)
			return dst[:base], ErrKindMismatch
		}
		if want {
			si++
		}
	}
	if si < len(sel) {
		nulls.Truncate(base)
		return dst[:base], fmt.Errorf("page: selection position %d beyond page (%d values)", sel[si], n)
	}
	return dst, nil
}
