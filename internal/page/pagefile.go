package page

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"repro/internal/compress"
)

// File is an on-disk page file. Every page occupies a fixed-size slot at
// offset pageNum*slotSize, but is stored LZ4-compressed inside the slot; the
// unused tail of each slot is never written, so on filesystems with sparse
// file support it occupies (almost) no space — the trick the paper uses to
// keep compressed pages addressable without an offset table.
//
// Slot layout: 8-byte header (compressed length uint32, flags uint32) then
// the compressed page bytes. Flag bit0 = stored raw (incompressible page).
type File struct {
	mu       sync.RWMutex //lint:lockorder page.file
	f        *os.File
	pageSize int
	numPages uint32
	compress bool
}

const slotHeader = 8

// OpenFile opens (creating if necessary) a page file with the given page
// size. compressPages enables per-page LZ4.
func OpenFile(path string, pageSize int, compressPages bool) (*File, error) {
	if pageSize <= headerSize || pageSize > MaxPageSize {
		return nil, fmt.Errorf("page: invalid page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("page: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	slot := int64(pageSize + slotHeader)
	n := uint32((st.Size() + slot - 1) / slot)
	return &File{f: f, pageSize: pageSize, numPages: n, compress: compressPages}, nil
}

// PageSize returns the configured page size.
func (pf *File) PageSize() int { return pf.pageSize }

// NumPages returns the number of allocated pages.
func (pf *File) NumPages() uint32 {
	pf.mu.RLock()
	defer pf.mu.RUnlock()
	return pf.numPages
}

func (pf *File) slotOffset(pageNum uint32) int64 {
	return int64(pageNum) * int64(pf.pageSize+slotHeader)
}

// Allocate reserves a new page number (the page is materialized on first
// write).
func (pf *File) Allocate() uint32 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	n := pf.numPages
	pf.numPages++
	return n
}

// WritePage stores the page buffer (which must be exactly PageSize bytes)
// at the given page number, compressing it if enabled and profitable.
func (pf *File) WritePage(pageNum uint32, buf []byte) error {
	if len(buf) != pf.pageSize {
		return fmt.Errorf("page: write: buffer is %d bytes, page size %d", len(buf), pf.pageSize)
	}
	payload := buf
	flags := uint32(1) // raw
	if pf.compress {
		c := compress.CompressLZ4(buf)
		if len(c) < pf.pageSize {
			payload = c
			flags = 0
		}
	}
	var hdr [slotHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], flags)

	pf.mu.Lock()
	defer pf.mu.Unlock()
	off := pf.slotOffset(pageNum)
	if _, err := pf.f.WriteAt(hdr[:], off); err != nil {
		return fmt.Errorf("page: write header p%d: %w", pageNum, err)
	}
	if _, err := pf.f.WriteAt(payload, off+slotHeader); err != nil {
		return fmt.Errorf("page: write payload p%d: %w", pageNum, err)
	}
	if pageNum >= pf.numPages {
		pf.numPages = pageNum + 1
	}
	return nil
}

// ReadPage loads the page into a fresh PageSize buffer. Reading a page that
// was allocated but never written returns a zeroed buffer.
func (pf *File) ReadPage(pageNum uint32) ([]byte, error) {
	pf.mu.RLock()
	if pageNum >= pf.numPages {
		pf.mu.RUnlock()
		return nil, fmt.Errorf("page: read p%d beyond end (%d pages)", pageNum, pf.numPages)
	}
	var hdr [slotHeader]byte
	off := pf.slotOffset(pageNum)
	n, err := pf.f.ReadAt(hdr[:], off)
	pf.mu.RUnlock()
	if err != nil && n == 0 {
		// Slot inside a file hole: page never written.
		return make([]byte, pf.pageSize), nil
	}
	if n < slotHeader {
		return make([]byte, pf.pageSize), nil
	}
	compLen := binary.LittleEndian.Uint32(hdr[0:])
	flags := binary.LittleEndian.Uint32(hdr[4:])
	if compLen == 0 {
		return make([]byte, pf.pageSize), nil
	}
	if int(compLen) > pf.pageSize {
		return nil, fmt.Errorf("page: p%d corrupt compressed length %d", pageNum, compLen)
	}
	payload := make([]byte, compLen)
	if _, err := pf.f.ReadAt(payload, off+slotHeader); err != nil {
		return nil, fmt.Errorf("page: read p%d payload: %w", pageNum, err)
	}
	if flags&1 != 0 {
		if int(compLen) != pf.pageSize {
			return nil, fmt.Errorf("page: p%d raw page wrong length %d", pageNum, compLen)
		}
		return payload, nil
	}
	raw, err := compress.DecompressLZ4(payload, pf.pageSize)
	if err != nil {
		return nil, fmt.Errorf("page: p%d: %w", pageNum, err)
	}
	return raw, nil
}

// Sync flushes the file to stable storage.
func (pf *File) Sync() error { return pf.f.Sync() }

// Close closes the underlying file.
func (pf *File) Close() error { return pf.f.Close() }

// Path returns the file path.
func (pf *File) Path() string { return pf.f.Name() }
