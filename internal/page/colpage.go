package page

import (
	"encoding/binary"
	"fmt"

	"repro/internal/compress"
	"repro/internal/types"
)

// ColumnPage stores the values of one column for a run of rows, PAX-style.
// A page set for a table with n columns is n consecutive column pages, each
// holding the same number of values, so row k of the set is reconstructed by
// reading value k from each page (Section III, "Row and Column Storage").
//
// Values are appended as their standard binary encoding. String pages can be
// packed with Huffman coding when sealed; the flag byte after the header
// records whether the payload is Huffman-packed.
type ColumnPage struct {
	Buf []byte
}

const (
	colOffFlags   = headerSize     // 1 byte: bit0 = huffman packed
	colOffPayLen  = headerSize + 1 // uint32 payload byte length
	colHeaderSize = headerSize + 5
)

// InitColumnPage formats buf as an empty column page.
func InitColumnPage(buf []byte) ColumnPage {
	for i := range buf[:colHeaderSize] {
		buf[i] = 0
	}
	setType(buf, TypeColumn)
	setCount(buf, 0)
	return ColumnPage{Buf: buf}
}

// AsColumnPage wraps an existing formatted buffer.
func AsColumnPage(buf []byte) (ColumnPage, error) {
	if TypeOf(buf) != TypeColumn {
		return ColumnPage{}, fmt.Errorf("page: not a column page (type %d)", TypeOf(buf))
	}
	return ColumnPage{Buf: buf}, nil
}

// NumValues returns the number of values stored.
func (p ColumnPage) NumValues() int { return int(countOf(p.Buf)) }

func (p ColumnPage) payloadLen() int {
	return int(binary.LittleEndian.Uint32(p.Buf[colOffPayLen:]))
}

func (p ColumnPage) setPayloadLen(n int) {
	binary.LittleEndian.PutUint32(p.Buf[colOffPayLen:], uint32(n))
}

func (p ColumnPage) packed() bool { return p.Buf[colOffFlags]&1 != 0 }

// FreeSpace returns the bytes available for appending values.
func (p ColumnPage) FreeSpace() int {
	return len(p.Buf) - colHeaderSize - p.payloadLen()
}

// Append adds a value. Returns false if the page is full or sealed.
func (p ColumnPage) Append(v types.Value) bool {
	if p.packed() {
		return false
	}
	sz := types.EncodedSize(v)
	if sz > p.FreeSpace() {
		return false
	}
	off := colHeaderSize + p.payloadLen()
	types.AppendValue(p.Buf[off:off], v)
	p.setPayloadLen(p.payloadLen() + sz)
	setCount(p.Buf, countOf(p.Buf)+1)
	return true
}

// Values decodes every value on the page.
func (p ColumnPage) Values() ([]types.Value, error) {
	payload, err := p.payload()
	if err != nil {
		return nil, err
	}
	n := p.NumValues()
	vals := make([]types.Value, 0, n)
	pos := 0
	for i := 0; i < n; i++ {
		v, m, err := types.DecodeValue(payload[pos:])
		if err != nil {
			return nil, fmt.Errorf("page: column value %d: %w", i, err)
		}
		vals = append(vals, v)
		pos += m
	}
	return vals, nil
}

// DecodeInto streams every value on the page through fn without building
// an intermediate slice — the vectorized scan path appends payloads
// straight into typed column slabs. Decoding stops early when fn returns
// false.
func (p ColumnPage) DecodeInto(fn func(types.Value) bool) error {
	payload, err := p.payload()
	if err != nil {
		return err
	}
	n := p.NumValues()
	pos := 0
	for i := 0; i < n; i++ {
		v, m, err := types.DecodeValue(payload[pos:])
		if err != nil {
			return fmt.Errorf("page: column value %d: %w", i, err)
		}
		if !fn(v) {
			return nil
		}
		pos += m
	}
	return nil
}

// Seal Huffman-packs the payload in place if that shrinks it. Sealed pages
// are read-only. Reports whether packing was applied.
func (p ColumnPage) Seal() bool {
	if p.packed() || p.NumValues() == 0 {
		return false
	}
	payload := p.Buf[colHeaderSize : colHeaderSize+p.payloadLen()]
	packedPayload := compress.CompressHuffman(payload)
	if len(packedPayload) >= len(payload) {
		return false
	}
	copy(p.Buf[colHeaderSize:], packedPayload)
	p.setPayloadLen(len(packedPayload))
	p.Buf[colOffFlags] |= 1
	return true
}

// PageSet groups n in-memory column pages that are filled together so every
// page keeps the same value count.
type PageSet struct {
	Pages []ColumnPage
}

// NewPageSet formats a page set over the provided buffers, one per column.
func NewPageSet(bufs [][]byte) PageSet {
	ps := PageSet{Pages: make([]ColumnPage, len(bufs))}
	for i, b := range bufs {
		ps.Pages[i] = InitColumnPage(b)
	}
	return ps
}

// AppendRow adds one row across the set; all columns succeed or none do.
func (ps PageSet) AppendRow(r types.Row) bool {
	if len(r) != len(ps.Pages) {
		return false
	}
	for i, v := range r {
		if types.EncodedSize(v) > ps.Pages[i].FreeSpace() {
			return false
		}
	}
	for i, v := range r {
		if !ps.Pages[i].Append(v) {
			// Cannot happen given the space check above; guard anyway.
			panic("page: page set append lost space between check and write")
		}
	}
	return true
}

// NumRows returns the common value count.
func (ps PageSet) NumRows() int {
	if len(ps.Pages) == 0 {
		return 0
	}
	return ps.Pages[0].NumValues()
}

// Rows materializes all rows in the set.
func (ps PageSet) Rows() ([]types.Row, error) {
	cols := make([][]types.Value, len(ps.Pages))
	for i, p := range ps.Pages {
		vals, err := p.Values()
		if err != nil {
			return nil, err
		}
		cols[i] = vals
	}
	n := ps.NumRows()
	rows := make([]types.Row, n)
	for r := 0; r < n; r++ {
		row := make(types.Row, len(cols))
		for c := range cols {
			row[c] = cols[c][r]
		}
		rows[r] = row
	}
	return rows, nil
}

// Seal seals every page in the set.
func (ps PageSet) Seal() {
	for _, p := range ps.Pages {
		p.Seal()
	}
}
