// Package page implements HRDBMS's page-oriented block storage: slotted row
// pages, PAX-style column pages grouped into page sets, and the on-disk page
// file format with per-page LZ4 compression over a sparse file so pages stay
// addressable at fixed offsets (Section III of the paper).
package page

import (
	"encoding/binary"
	"fmt"
)

// DefaultPageSize is the page size used unless a table overrides it. The
// paper supports pages up to 64 MB; tests use smaller pages to exercise page
// boundaries.
const DefaultPageSize = 32 * 1024

// MaxPageSize is the largest configurable page size (64 MB, as in the paper).
const MaxPageSize = 64 * 1024 * 1024

// FileID identifies a page file registered with a buffer manager.
type FileID uint32

// Key identifies one page within the cluster-local storage of a node: a
// registered page file plus a page number within it.
type Key struct {
	File FileID
	Page uint32
}

// String renders the key for diagnostics.
func (k Key) String() string { return fmt.Sprintf("file%d:page%d", k.File, k.Page) }

// RID is a physical row identifier: node, disk, page, and slot, exactly the
// four components the paper describes.
type RID struct {
	Node uint16
	Disk uint16
	Page uint32
	Slot uint16
}

// String renders the RID.
func (r RID) String() string {
	return fmt.Sprintf("rid(%d,%d,%d,%d)", r.Node, r.Disk, r.Page, r.Slot)
}

// Page header layout (common to row and column pages):
//
//	bytes 0..7   pageLSN (uint64) — for ARIES recovery
//	byte  8      page type
//	bytes 9..12  slot/value count (uint32)
//	bytes 13..16 free-space pointer (uint32) — row pages only
const (
	offLSN     = 0
	offType    = 8
	offCount   = 9
	offFreePtr = 13
	headerSize = 17
)

// Page types.
const (
	TypeFree   byte = 0
	TypeRow    byte = 1
	TypeColumn byte = 2
	TypeIndex  byte = 3
	TypeMeta   byte = 4
)

// LSN reads the page LSN used by recovery.
func LSN(buf []byte) uint64 { return binary.LittleEndian.Uint64(buf[offLSN:]) }

// SetLSN stamps the page LSN.
func SetLSN(buf []byte, lsn uint64) { binary.LittleEndian.PutUint64(buf[offLSN:], lsn) }

// TypeOf returns the page type byte.
func TypeOf(buf []byte) byte { return buf[offType] }

// setType stamps the page type byte.
func setType(buf []byte, t byte) { buf[offType] = t }

// countOf returns the slot/value count.
func countOf(buf []byte) uint32 { return binary.LittleEndian.Uint32(buf[offCount:]) }

func setCount(buf []byte, n uint32) { binary.LittleEndian.PutUint32(buf[offCount:], n) }

func freePtr(buf []byte) uint32 { return binary.LittleEndian.Uint32(buf[offFreePtr:]) }

func setFreePtr(buf []byte, p uint32) { binary.LittleEndian.PutUint32(buf[offFreePtr:], p) }
