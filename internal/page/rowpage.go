package page

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// RowPage is a slotted page holding encoded rows. Rows grow forward from the
// header; the slot directory (4 bytes per slot: offset uint16<<16 | length
// uint16 is too small for big pages, so we use two uint32s packed in 8
// bytes) grows backward from the end of the page.
//
// Deletes are logical: a slot with length 0 is a tombstone. Inserts are
// append-only within the page, matching the paper's append-only insert and
// out-of-place update design, which is what keeps predicate-cache entries
// valid for full pages.
type RowPage struct {
	Buf []byte
}

const slotSize = 8 // offset uint32 + length uint32

// InitRowPage formats buf as an empty row page.
func InitRowPage(buf []byte) RowPage {
	for i := range buf[:headerSize] {
		buf[i] = 0
	}
	setType(buf, TypeRow)
	setCount(buf, 0)
	setFreePtr(buf, headerSize)
	return RowPage{Buf: buf}
}

// AsRowPage wraps an existing formatted buffer.
func AsRowPage(buf []byte) (RowPage, error) {
	if TypeOf(buf) != TypeRow {
		return RowPage{}, fmt.Errorf("page: not a row page (type %d)", TypeOf(buf))
	}
	return RowPage{Buf: buf}, nil
}

// NumSlots returns the number of slots (including tombstones).
func (p RowPage) NumSlots() int { return int(countOf(p.Buf)) }

// FreeSpace returns the bytes available for one more row (accounting for its
// slot directory entry).
func (p RowPage) FreeSpace() int {
	used := int(freePtr(p.Buf))
	dirStart := len(p.Buf) - p.NumSlots()*slotSize
	free := dirStart - used - slotSize
	if free < 0 {
		return 0
	}
	return free
}

func (p RowPage) slotAt(i int) (offset, length uint32) {
	base := len(p.Buf) - (i+1)*slotSize
	return binary.LittleEndian.Uint32(p.Buf[base:]), binary.LittleEndian.Uint32(p.Buf[base+4:])
}

func (p RowPage) setSlotAt(i int, offset, length uint32) {
	base := len(p.Buf) - (i+1)*slotSize
	binary.LittleEndian.PutUint32(p.Buf[base:], offset)
	binary.LittleEndian.PutUint32(p.Buf[base+4:], length)
}

// Insert appends a row, returning its slot number. Returns false if the page
// is full.
func (p RowPage) Insert(r types.Row) (slot int, ok bool) {
	enc := types.AppendRow(nil, r)
	return p.InsertEncoded(enc)
}

// InsertEncoded appends an already-encoded row.
func (p RowPage) InsertEncoded(enc []byte) (slot int, ok bool) {
	if len(enc) > p.FreeSpace() {
		return 0, false
	}
	off := freePtr(p.Buf)
	copy(p.Buf[off:], enc)
	slot = p.NumSlots()
	p.setSlotAt(slot, off, uint32(len(enc)))
	setFreePtr(p.Buf, off+uint32(len(enc)))
	setCount(p.Buf, uint32(slot+1))
	return slot, true
}

// Get decodes the row in the given slot. Returns ok=false for tombstones or
// out-of-range slots.
func (p RowPage) Get(slot int) (types.Row, bool, error) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, false, nil
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return nil, false, nil // tombstone
	}
	row, _, err := types.DecodeRow(p.Buf[off : off+length])
	if err != nil {
		return nil, false, fmt.Errorf("page: slot %d: %w", slot, err)
	}
	return row, true, nil
}

// GetEncoded returns the raw encoded bytes of a slot (nil for tombstones).
func (p RowPage) GetEncoded(slot int) []byte {
	if slot < 0 || slot >= p.NumSlots() {
		return nil
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return nil
	}
	return p.Buf[off : off+length]
}

// Delete tombstones a slot. Space is not reclaimed until the table is
// reorganized, as in the paper. Reports whether the slot held a live row.
func (p RowPage) Delete(slot int) bool {
	if slot < 0 || slot >= p.NumSlots() {
		return false
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return false
	}
	p.setSlotAt(slot, off, 0)
	return true
}

// RestoreSlot undoes a Delete: it rewrites the row bytes at the slot's
// original offset and resets the slot length. Used by ARIES undo/redo-of-CLR,
// which is safe because inserts are append-only so the space is untouched.
func (p RowPage) RestoreSlot(slot int, enc []byte) error {
	if slot < 0 || slot >= p.NumSlots() {
		return fmt.Errorf("page: restore slot %d of %d", slot, p.NumSlots())
	}
	off, _ := p.slotAt(slot)
	copy(p.Buf[off:], enc)
	p.setSlotAt(slot, off, uint32(len(enc)))
	return nil
}

// Scan calls fn for every live row on the page, stopping early if fn
// returns false.
func (p RowPage) Scan(fn func(slot int, r types.Row) bool) error {
	n := p.NumSlots()
	for i := 0; i < n; i++ {
		row, ok, err := p.Get(i)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(i, row) {
			return nil
		}
	}
	return nil
}

// LiveRows returns the number of non-tombstone slots.
func (p RowPage) LiveRows() int {
	n := 0
	for i := 0; i < p.NumSlots(); i++ {
		if _, length := p.slotAt(i); length != 0 {
			n++
		}
	}
	return n
}
