package index

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/page"
	"repro/internal/types"
)

// BTree is a disk-resident B+-tree. Page 0 of its file is the meta page
// (root page number + allocation high-water mark); other pages are nodes.
//
// Node page layout, after the common page header:
//
//	[0]    isLeaf
//	[1:5]  entry count
//	[5:9]  right sibling (leaf) / leftmost child (internal)
//	then entries: encoded key row, followed by a RID (leaf) or child page
//	number (internal). Internal entry i routes keys in [key[i], key[i+1]).
//
// Deletion removes entries from leaves without rebalancing (underflowing
// nodes are tolerated); the table-reorganize path rebuilds indexes.
type BTree struct {
	space Space
	root  uint32
}

const (
	btMetaPage   = uint32(0)
	nodeHdrStart = 17 // page common header size
	nodeHdrLen   = 9
)

// CreateBTree initializes an empty tree in a fresh file.
func CreateBTree(space Space) (*BTree, error) {
	meta, err := space.Allocate()
	if err != nil {
		return nil, err
	}
	if meta != btMetaPage {
		return nil, fmt.Errorf("index: btree meta page allocated as %d", meta)
	}
	rootNum, err := space.Allocate()
	if err != nil {
		return nil, err
	}
	t := &BTree{space: space, root: rootNum}
	f, err := space.Fetch(rootNum)
	if err != nil {
		return nil, err
	}
	initNode(f.Buf, true)
	space.Unpin(f, true)
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenBTree opens an existing tree, reading the root from the meta page.
// It returns the tree and the allocation high-water mark for the Space.
func OpenBTree(space Space) (*BTree, uint32, error) {
	f, err := space.Fetch(btMetaPage)
	if err != nil {
		return nil, 0, err
	}
	defer space.Unpin(f, false)
	if page.TypeOf(f.Buf) != page.TypeMeta {
		return nil, 0, fmt.Errorf("index: page 0 is not a btree meta page")
	}
	root := binary.LittleEndian.Uint32(f.Buf[nodeHdrStart:])
	next := binary.LittleEndian.Uint32(f.Buf[nodeHdrStart+4:])
	return &BTree{space: space, root: root}, next, nil
}

func (t *BTree) writeMeta() error {
	f, err := t.space.Fetch(btMetaPage)
	if err != nil {
		return err
	}
	for i := range f.Buf[:nodeHdrStart] {
		f.Buf[i] = 0
	}
	f.Buf[8] = page.TypeMeta
	binary.LittleEndian.PutUint32(f.Buf[nodeHdrStart:], t.root)
	var next uint32
	if bs, ok := t.space.(*BufferSpace); ok {
		next = bs.NextPage()
	}
	binary.LittleEndian.PutUint32(f.Buf[nodeHdrStart+4:], next)
	t.space.Unpin(f, true)
	return nil
}

// node is the decoded in-memory form of one tree page.
type node struct {
	pageNum  uint32
	isLeaf   bool
	keys     []types.Row
	rids     []page.RID // leaves
	children []uint32   // internal: len(keys)+1, children[0] = leftmost
	right    uint32     // leaf sibling
}

func initNode(buf []byte, leaf bool) {
	for i := range buf[:nodeHdrStart+nodeHdrLen] {
		buf[i] = 0
	}
	buf[8] = page.TypeIndex
	if leaf {
		buf[nodeHdrStart] = 1
	}
}

func decodeNode(pageNum uint32, buf []byte) (*node, error) {
	if page.TypeOf(buf) != page.TypeIndex {
		return nil, fmt.Errorf("index: page %d is not an index page", pageNum)
	}
	n := &node{pageNum: pageNum, isLeaf: buf[nodeHdrStart] == 1}
	count := int(binary.LittleEndian.Uint32(buf[nodeHdrStart+1:]))
	extra := binary.LittleEndian.Uint32(buf[nodeHdrStart+5:])
	pos := nodeHdrStart + nodeHdrLen
	if n.isLeaf {
		n.right = extra
	} else {
		n.children = append(n.children, extra)
	}
	for i := 0; i < count; i++ {
		key, m, err := types.DecodeRow(buf[pos:])
		if err != nil {
			return nil, fmt.Errorf("index: node %d key %d: %w", pageNum, i, err)
		}
		pos += m
		n.keys = append(n.keys, key)
		if n.isLeaf {
			rid, err := decodeRID(buf[pos:])
			if err != nil {
				return nil, err
			}
			pos += 10
			n.rids = append(n.rids, rid)
		} else {
			n.children = append(n.children, binary.LittleEndian.Uint32(buf[pos:]))
			pos += 4
		}
	}
	return n, nil
}

// encodedSize returns the byte size of the node payload.
func (n *node) encodedSize() int {
	sz := nodeHdrLen
	for i, k := range n.keys {
		sz += types.RowEncodedSize(k)
		if n.isLeaf {
			sz += 10
		} else {
			sz += 4
		}
		_ = i
	}
	return sz
}

func (n *node) encode(buf []byte) {
	initNode(buf, n.isLeaf)
	binary.LittleEndian.PutUint32(buf[nodeHdrStart+1:], uint32(len(n.keys)))
	if n.isLeaf {
		binary.LittleEndian.PutUint32(buf[nodeHdrStart+5:], n.right)
	} else {
		binary.LittleEndian.PutUint32(buf[nodeHdrStart+5:], n.children[0])
	}
	pos := nodeHdrStart + nodeHdrLen
	scratch := buf[pos:pos]
	for i, k := range n.keys {
		scratch = types.AppendRow(scratch, k)
		if n.isLeaf {
			scratch = appendRID(scratch, n.rids[i])
		} else {
			var cb [4]byte
			binary.LittleEndian.PutUint32(cb[:], n.children[i+1])
			scratch = append(scratch, cb[:]...)
		}
	}
}

// compareKeys orders rows lexicographically.
func compareKeys(a, b types.Row) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

func (t *BTree) readNode(pageNum uint32) (*node, error) {
	f, err := t.space.Fetch(pageNum)
	if err != nil {
		return nil, err
	}
	defer t.space.Unpin(f, false)
	return decodeNode(pageNum, f.Buf)
}

func (t *BTree) writeNode(n *node) error {
	f, err := t.space.Fetch(n.pageNum)
	if err != nil {
		return err
	}
	n.encode(f.Buf)
	t.space.Unpin(f, true)
	return nil
}

// maxPayload is the node payload budget within a page.
func (t *BTree) maxPayload() int { return t.space.PageSize() - nodeHdrStart }

// Insert adds a (key, rid) entry. Duplicate keys are allowed.
func (t *BTree) Insert(key types.Row, rid page.RID) error {
	promoKey, promoChild, err := t.insertAt(t.root, key, rid)
	if err != nil {
		return err
	}
	if promoChild == 0 {
		return nil
	}
	// Root split: build a new root.
	newRootNum, err := t.space.Allocate()
	if err != nil {
		return err
	}
	newRoot := &node{
		pageNum:  newRootNum,
		isLeaf:   false,
		keys:     []types.Row{promoKey},
		children: []uint32{t.root, promoChild},
	}
	if err := t.writeNode(newRoot); err != nil {
		return err
	}
	t.root = newRootNum
	return t.writeMeta()
}

// insertAt descends into pageNum; on child split it returns the promoted
// separator key and new right-sibling page (0 when no split).
func (t *BTree) insertAt(pageNum uint32, key types.Row, rid page.RID) (types.Row, uint32, error) {
	n, err := t.readNode(pageNum)
	if err != nil {
		return nil, 0, err
	}
	if n.isLeaf {
		// Insert in key order (stable after equal keys).
		idx := len(n.keys)
		for i, k := range n.keys {
			if compareKeys(key, k) < 0 {
				idx = i
				break
			}
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[idx+1:], n.keys[idx:])
		n.keys[idx] = key
		n.rids = append(n.rids, page.RID{})
		copy(n.rids[idx+1:], n.rids[idx:])
		n.rids[idx] = rid
		return t.finishInsert(n)
	}
	// Route to child: last child whose separator ≤ key.
	ci := 0
	for i, k := range n.keys {
		if compareKeys(key, k) >= 0 {
			ci = i + 1
		} else {
			break
		}
	}
	promoKey, promoChild, err := t.insertAt(n.children[ci], key, rid)
	if err != nil {
		return nil, 0, err
	}
	if promoChild == 0 {
		return nil, 0, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = promoKey
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = promoChild
	return t.finishInsert(n)
}

// finishInsert writes n back, splitting first if it no longer fits.
func (t *BTree) finishInsert(n *node) (types.Row, uint32, error) {
	if n.encodedSize() <= t.maxPayload() && len(n.keys) > 0 {
		return nil, 0, t.writeNode(n)
	}
	if len(n.keys) < 2 {
		return nil, 0, fmt.Errorf("index: key too large for page size %d", t.space.PageSize())
	}
	mid := len(n.keys) / 2
	rightNum, err := t.space.Allocate()
	if err != nil {
		return nil, 0, err
	}
	right := &node{pageNum: rightNum, isLeaf: n.isLeaf}
	var sep types.Row
	if n.isLeaf {
		sep = n.keys[mid]
		right.keys = append(right.keys, n.keys[mid:]...)
		right.rids = append(right.rids, n.rids[mid:]...)
		right.right = n.right
		n.keys = n.keys[:mid]
		n.rids = n.rids[:mid]
		n.right = rightNum
	} else {
		sep = n.keys[mid]
		right.keys = append(right.keys, n.keys[mid+1:]...)
		right.children = append(right.children, n.children[mid+1:]...)
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	if err := t.writeNode(n); err != nil {
		return nil, 0, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, 0, err
	}
	return sep, rightNum, nil
}

// findLeaf descends to the leftmost leaf that can hold key. Descent is
// left-biased on equality: duplicates of a separator key may remain in the
// left sibling of the leaf the separator points at, and the subsequent
// right-sibling walk picks up the rest.
func (t *BTree) findLeaf(key types.Row) (*node, error) {
	pageNum := t.root
	for {
		n, err := t.readNode(pageNum)
		if err != nil {
			return nil, err
		}
		if n.isLeaf {
			return n, nil
		}
		ci := 0
		for i, k := range n.keys {
			if compareKeys(key, k) > 0 {
				ci = i + 1
			} else {
				break
			}
		}
		pageNum = n.children[ci]
	}
}

// Search returns the RIDs of all entries exactly matching key.
func (t *BTree) Search(key types.Row) ([]page.RID, error) {
	var out []page.RID
	err := t.Range(key, key, func(k types.Row, rid page.RID) bool {
		out = append(out, rid)
		return true
	})
	return out, err
}

// Range iterates entries with lo ≤ key ≤ hi in key order. A nil lo starts
// at the smallest key; a nil hi runs to the end. fn returning false stops.
func (t *BTree) Range(lo, hi types.Row, fn func(key types.Row, rid page.RID) bool) error {
	var n *node
	var err error
	if lo == nil {
		// Walk to the leftmost leaf.
		pageNum := t.root
		for {
			n, err = t.readNode(pageNum)
			if err != nil {
				return err
			}
			if n.isLeaf {
				break
			}
			pageNum = n.children[0]
		}
	} else {
		n, err = t.findLeaf(lo)
		if err != nil {
			return err
		}
	}
	for {
		for i, k := range n.keys {
			if lo != nil && compareKeys(k, lo) < 0 {
				continue
			}
			if hi != nil && compareKeys(k, hi) > 0 {
				return nil
			}
			if !fn(k, n.rids[i]) {
				return nil
			}
		}
		if n.right == 0 {
			return nil
		}
		n, err = t.readNode(n.right)
		if err != nil {
			return err
		}
	}
}

// Delete removes the first entry matching (key, rid). Reports whether an
// entry was removed. No rebalancing is performed.
func (t *BTree) Delete(key types.Row, rid page.RID) (bool, error) {
	n, err := t.findLeaf(key)
	if err != nil {
		return false, err
	}
	for {
		for i, k := range n.keys {
			c := compareKeys(k, key)
			if c > 0 {
				return false, nil
			}
			if c == 0 && n.rids[i] == rid {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.rids = append(n.rids[:i], n.rids[i+1:]...)
				return true, t.writeNode(n)
			}
		}
		if n.right == 0 {
			return false, nil
		}
		n, err = t.readNode(n.right)
		if err != nil {
			return false, err
		}
	}
}

// Height returns the tree height (1 = just a leaf). For tests and stats.
func (t *BTree) Height() (int, error) {
	h := 1
	pageNum := t.root
	for {
		n, err := t.readNode(pageNum)
		if err != nil {
			return 0, err
		}
		if n.isLeaf {
			return h, nil
		}
		h++
		pageNum = n.children[0]
	}
}

// Validate checks structural invariants (key ordering within and across
// leaves). Used by property tests.
func (t *BTree) Validate() error {
	var prev types.Row
	seen := 0
	err := t.Range(nil, nil, func(k types.Row, rid page.RID) bool {
		if prev != nil && compareKeys(prev, k) > 0 {
			prev = nil
			seen = -1
			return false
		}
		prev = k
		seen++
		return true
	})
	if err != nil {
		return err
	}
	if seen < 0 {
		return fmt.Errorf("index: btree keys out of order")
	}
	return nil
}

// KeyBytes renders a key for debugging.
func KeyBytes(k types.Row) string {
	var b bytes.Buffer
	for i, v := range k {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.String())
	}
	return b.String()
}
