package index

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/types"
)

// memStore backs the buffer manager for index tests.
type memStore struct {
	mu       sync.Mutex
	pages    map[page.Key][]byte
	pageSize int
}

func newMemStore(size int) *memStore {
	return &memStore{pages: map[page.Key][]byte{}, pageSize: size}
}

func (s *memStore) ReadPage(f page.FileID, n uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.pages[page.Key{File: f, Page: n}]; ok {
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	}
	return make([]byte, s.pageSize), nil
}

func (s *memStore) WritePage(f page.FileID, n uint32, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := make([]byte, len(buf))
	copy(b, buf)
	s.pages[page.Key{File: f, Page: n}] = b
	return nil
}

func (s *memStore) PageSize() int { return s.pageSize }

func newSpace(t *testing.T, pageSize, frames int) (*BufferSpace, *buffer.Manager, *memStore) {
	t.Helper()
	st := newMemStore(pageSize)
	m := buffer.New(st, frames, 2)
	return NewBufferSpace(m, 1, pageSize, 0), m, st
}

func intKey(i int64) types.Row { return types.Row{types.NewInt(i)} }

func ridFor(i int64) page.RID { return page.RID{Node: 1, Page: uint32(i), Slot: uint16(i % 100)} }

func TestBTreeInsertSearch(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 64)
	bt, err := CreateBTree(space)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := bt.Insert(intKey(int64(i)), ridFor(int64(i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := int64(0); i < n; i++ {
		rids, err := bt.Search(intKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != 1 || rids[0] != ridFor(i) {
			t.Fatalf("search %d = %v", i, rids)
		}
	}
	if rids, _ := bt.Search(intKey(99999)); len(rids) != 0 {
		t.Error("missing key should return nothing")
	}
	h, err := bt.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("tree of %d entries on 1KB pages should have split (height %d)", n, h)
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeRange(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 64)
	bt, _ := CreateBTree(space)
	for i := int64(0); i < 200; i++ {
		bt.Insert(intKey(i*2), ridFor(i)) // even keys 0..398
	}
	var got []int64
	err := bt.Range(intKey(50), intKey(60), func(k types.Row, r page.RID) bool {
		got = append(got, k[0].Int())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{50, 52, 54, 56, 58, 60}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Open-ended ranges.
	count := 0
	bt.Range(nil, nil, func(k types.Row, r page.RID) bool { count++; return true })
	if count != 200 {
		t.Errorf("full scan = %d entries", count)
	}
	count = 0
	bt.Range(intKey(390), nil, func(k types.Row, r page.RID) bool { count++; return true })
	if count != 5 {
		t.Errorf("tail scan = %d entries, want 5", count)
	}
	// Early stop.
	count = 0
	bt.Range(nil, nil, func(k types.Row, r page.RID) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop = %d", count)
	}
}

func TestBTreeDuplicates(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 64)
	bt, _ := CreateBTree(space)
	// Many duplicates of a few keys, interleaved, forcing splits through
	// runs of equal keys.
	for i := int64(0); i < 300; i++ {
		bt.Insert(intKey(i%3), page.RID{Page: uint32(i)})
	}
	for k := int64(0); k < 3; k++ {
		rids, err := bt.Search(intKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != 100 {
			t.Fatalf("key %d: %d rids, want 100", k, len(rids))
		}
	}
}

func TestBTreeDelete(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 64)
	bt, _ := CreateBTree(space)
	for i := int64(0); i < 100; i++ {
		bt.Insert(intKey(i), ridFor(i))
	}
	ok, err := bt.Delete(intKey(42), ridFor(42))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if rids, _ := bt.Search(intKey(42)); len(rids) != 0 {
		t.Error("deleted key still found")
	}
	ok, _ = bt.Delete(intKey(42), ridFor(42))
	if ok {
		t.Error("double delete should report false")
	}
	ok, _ = bt.Delete(intKey(41), ridFor(99))
	if ok {
		t.Error("delete with wrong rid should report false")
	}
	count := 0
	bt.Range(nil, nil, func(k types.Row, r page.RID) bool { count++; return true })
	if count != 99 {
		t.Errorf("entries after delete = %d", count)
	}
}

func TestBTreeStringAndCompositeKeys(t *testing.T) {
	space, _, _ := newSpace(t, 2048, 64)
	bt, _ := CreateBTree(space)
	names := []string{"almond", "blush", "chartreuse", "cornflower", "khaki", "salmon"}
	for i, n1 := range names {
		for j, n2 := range names {
			key := types.Row{types.NewString(n1), types.NewString(n2)}
			bt.Insert(key, page.RID{Page: uint32(i*10 + j)})
		}
	}
	rids, err := bt.Search(types.Row{types.NewString("khaki"), types.NewString("blush")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 || rids[0].Page != 41 {
		t.Fatalf("composite search = %v", rids)
	}
	// Prefix range over first component.
	count := 0
	lo := types.Row{types.NewString("khaki"), types.NewString("")}
	hi := types.Row{types.NewString("khaki"), types.NewString("zzzz")}
	bt.Range(lo, hi, func(k types.Row, r page.RID) bool { count++; return true })
	if count != len(names) {
		t.Errorf("prefix range = %d, want %d", count, len(names))
	}
}

func TestBTreeReopen(t *testing.T) {
	st := newMemStore(1024)
	m := buffer.New(st, 64, 2)
	space := NewBufferSpace(m, 1, 1024, 0)
	bt, err := CreateBTree(space)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 150; i++ {
		bt.Insert(intKey(i), ridFor(i))
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Reopen through a fresh buffer manager over the same store.
	m2 := buffer.New(st, 64, 2)
	next0 := uint32(0)
	space2 := NewBufferSpace(m2, 1, 1024, next0)
	bt2, next, err := OpenBTree(space2)
	if err != nil {
		t.Fatal(err)
	}
	if next == 0 {
		t.Fatal("allocation high-water mark not persisted")
	}
	// Fix the space's allocator to resume after the persisted mark.
	space3 := NewBufferSpace(m2, 1, 1024, next)
	bt3 := &BTree{space: space3, root: bt2.root}
	for i := int64(0); i < 150; i++ {
		rids, err := bt3.Search(intKey(i))
		if err != nil || len(rids) != 1 {
			t.Fatalf("reopened search %d: %v %v", i, rids, err)
		}
	}
	// Inserts after reopen must not collide with existing pages.
	for i := int64(150); i < 300; i++ {
		if err := bt3.Insert(intKey(i), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt3.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeLargeRandomValidated(t *testing.T) {
	space, _, _ := newSpace(t, 512, 512)
	bt, _ := CreateBTree(space)
	rng := rand.New(rand.NewSource(99))
	inserted := map[int64]int{}
	for i := 0; i < 2000; i++ {
		k := int64(rng.Intn(500))
		bt.Insert(intKey(k), page.RID{Page: uint32(i)})
		inserted[k]++
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	for k, want := range inserted {
		rids, err := bt.Search(intKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != want {
			t.Fatalf("key %d: %d rids, want %d", k, len(rids), want)
		}
	}
}

func TestSkipListInsertSearch(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 128)
	sl, err := CreateSkipList(space)
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(5)).Perm(300)
	for _, i := range perm {
		if err := sl.Insert(intKey(int64(i)), ridFor(int64(i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := int64(0); i < 300; i++ {
		rids, err := sl.Search(intKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != 1 || rids[0] != ridFor(i) {
			t.Fatalf("search %d = %v", i, rids)
		}
	}
	if rids, _ := sl.Search(intKey(-5)); len(rids) != 0 {
		t.Error("missing key found")
	}
}

func TestSkipListOrderedScan(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 128)
	sl, _ := CreateSkipList(space)
	perm := rand.New(rand.NewSource(6)).Perm(200)
	for _, i := range perm {
		sl.Insert(intKey(int64(i)), ridFor(int64(i)))
	}
	prev := int64(-1)
	count := 0
	err := sl.Range(nil, nil, func(k types.Row, r page.RID) bool {
		if k[0].Int() <= prev {
			t.Fatalf("out of order: %d after %d", k[0].Int(), prev)
		}
		prev = k[0].Int()
		count++
		return true
	})
	if err != nil || count != 200 {
		t.Fatalf("scan count = %d err=%v", count, err)
	}
	// Bounded range.
	var got []int64
	sl.Range(intKey(10), intKey(15), func(k types.Row, r page.RID) bool {
		got = append(got, k[0].Int())
		return true
	})
	if len(got) != 6 || got[0] != 10 || got[5] != 15 {
		t.Errorf("bounded range = %v", got)
	}
}

func TestSkipListLogicalDelete(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 128)
	sl, _ := CreateSkipList(space)
	for i := int64(0); i < 50; i++ {
		sl.Insert(intKey(i), ridFor(i))
	}
	ok, err := sl.Delete(intKey(25), ridFor(25))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if rids, _ := sl.Search(intKey(25)); len(rids) != 0 {
		t.Error("tombstoned entry still visible")
	}
	if ok, _ := sl.Delete(intKey(25), ridFor(25)); ok {
		t.Error("double delete should report false")
	}
	count := 0
	sl.Range(nil, nil, func(k types.Row, r page.RID) bool { count++; return true })
	if count != 49 {
		t.Errorf("live entries = %d, want 49", count)
	}
}

func TestSkipListDuplicates(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 128)
	sl, _ := CreateSkipList(space)
	for i := int64(0); i < 60; i++ {
		sl.Insert(intKey(7), page.RID{Page: uint32(i)})
	}
	rids, err := sl.Search(intKey(7))
	if err != nil || len(rids) != 60 {
		t.Fatalf("duplicates: %d rids err=%v", len(rids), err)
	}
}

func TestSkipListReopen(t *testing.T) {
	st := newMemStore(1024)
	m := buffer.New(st, 128, 2)
	space := NewBufferSpace(m, 1, 1024, 0)
	sl, err := CreateSkipList(space)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		sl.Insert(intKey(i), ridFor(i))
	}
	m.FlushAll()

	m2 := buffer.New(st, 128, 2)
	space2 := NewBufferSpace(m2, 1, 1024, 0)
	sl2, next, err := OpenSkipList(space2)
	if err != nil {
		t.Fatal(err)
	}
	if next == 0 {
		t.Fatal("skiplist high-water mark not persisted")
	}
	sl2.space = NewBufferSpace(m2, 1, 1024, next)
	for i := int64(0); i < 100; i++ {
		rids, err := sl2.Search(intKey(i))
		if err != nil || len(rids) != 1 {
			t.Fatalf("reopened search %d: %v %v", i, rids, err)
		}
	}
	// Batch insert after reopen (the paper's expected usage pattern).
	for i := int64(100); i < 150; i++ {
		if err := sl2.Insert(intKey(i), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	sl2.Range(nil, nil, func(k types.Row, r page.RID) bool { count++; return true })
	if count != 150 {
		t.Errorf("after reopen+insert: %d entries", count)
	}
}

func TestSkipListSpansPages(t *testing.T) {
	// Small pages force the append-only file to grow across many pages.
	space, _, _ := newSpace(t, 512, 512)
	sl, _ := CreateSkipList(space)
	for i := int64(0); i < 400; i++ {
		if err := sl.Insert(types.Row{types.NewString("key-with-some-width"), types.NewInt(i)}, ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if sl.current <= 1 {
		t.Errorf("expected growth past page 1, current = %d", sl.current)
	}
	count := 0
	sl.Range(nil, nil, func(k types.Row, r page.RID) bool { count++; return true })
	if count != 400 {
		t.Errorf("entries = %d", count)
	}
}

// TestBTreeMatchesModel drives random operations against the B+-tree and a
// map-based model; every search must agree.
func TestBTreeMatchesModel(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 512)
	bt, err := CreateBTree(space)
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]map[page.RID]bool{}
	rng := rand.New(rand.NewSource(2026))
	for step := 0; step < 3000; step++ {
		k := int64(rng.Intn(200))
		rid := page.RID{Page: uint32(rng.Intn(50)), Slot: uint16(rng.Intn(10))}
		switch rng.Intn(3) {
		case 0, 1: // insert (biased)
			if model[k] == nil {
				model[k] = map[page.RID]bool{}
			}
			if !model[k][rid] { // model is a set; the tree allows dups, keep them aligned
				model[k][rid] = true
				if err := bt.Insert(intKey(k), rid); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // delete one entry if present
			if len(model[k]) > 0 {
				var victim page.RID
				for r := range model[k] {
					victim = r
					break
				}
				delete(model[k], victim)
				ok, err := bt.Delete(intKey(k), victim)
				if err != nil || !ok {
					t.Fatalf("delete of known entry failed: %v %v", ok, err)
				}
			}
		}
		if step%500 == 0 {
			if err := bt.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k, rids := range model {
		got, err := bt.Search(intKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rids) {
			t.Fatalf("key %d: tree has %d, model %d", k, len(got), len(rids))
		}
		for _, r := range got {
			if !rids[r] {
				t.Fatalf("key %d: unexpected rid %v", k, r)
			}
		}
	}
}

// TestSkipListMatchesModel mirrors the B+-tree model test.
func TestSkipListMatchesModel(t *testing.T) {
	space, _, _ := newSpace(t, 1024, 512)
	sl, err := CreateSkipList(space)
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]map[page.RID]bool{}
	rng := rand.New(rand.NewSource(77))
	for step := 0; step < 1500; step++ {
		k := int64(rng.Intn(100))
		rid := page.RID{Page: uint32(rng.Intn(50)), Slot: uint16(rng.Intn(10))}
		if rng.Intn(3) < 2 {
			if model[k] == nil {
				model[k] = map[page.RID]bool{}
			}
			if !model[k][rid] {
				model[k][rid] = true
				if err := sl.Insert(intKey(k), rid); err != nil {
					t.Fatal(err)
				}
			}
		} else if len(model[k]) > 0 {
			var victim page.RID
			for r := range model[k] {
				victim = r
				break
			}
			delete(model[k], victim)
			ok, err := sl.Delete(intKey(k), victim)
			if err != nil || !ok {
				t.Fatalf("skiplist delete failed: %v %v", ok, err)
			}
		}
	}
	for k, rids := range model {
		got, err := sl.Search(intKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rids) {
			t.Fatalf("key %d: list has %d, model %d", k, len(got), len(rids))
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	st := newMemStore(8192)
	m := buffer.New(st, 4096, 8)
	space := NewBufferSpace(m, 1, 8192, 0)
	bt, err := CreateBTree(space)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.Insert(intKey(int64(i)), ridFor(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearch(b *testing.B) {
	st := newMemStore(8192)
	m := buffer.New(st, 4096, 8)
	space := NewBufferSpace(m, 1, 8192, 0)
	bt, _ := CreateBTree(space)
	for i := 0; i < 50000; i++ {
		bt.Insert(intKey(int64(i)), ridFor(int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Search(intKey(int64(i % 50000))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkipListInsert(b *testing.B) {
	st := newMemStore(8192)
	m := buffer.New(st, 4096, 8)
	space := NewBufferSpace(m, 1, 8192, 0)
	sl, err := CreateSkipList(space)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sl.Insert(intKey(int64(i)), ridFor(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
