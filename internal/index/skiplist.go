package index

import (
	"encoding/binary"
	"fmt"

	"repro/internal/page"
	"repro/internal/types"
)

// SkipList is HRDBMS's disk-resident skip list: nodes are appended to the
// current page of an append-only page file and deletes are logical (a
// tombstone flag), which the paper notes gives reasonable I/O behaviour
// when data arrives in batches.
//
// Node records live in slotted row pages. A record is:
//
//	[0]      deleted flag
//	[1]      level (number of forward pointers)
//	[2:12]   RID
//	[12:12+8*level] forward pointers (page uint32 << 16 | slot uint16; 0 = nil)
//	rest     encoded key row
//
// Forward pointers are fixed-size so they can be updated in place without
// changing the record length. Page 0 is the meta page holding the sentinel
// head pointer and the allocation high-water mark.
type SkipList struct {
	space    Space
	head     uint64 // pointer to the sentinel node
	current  uint32 // page receiving appends
	maxLevel int
	rngState uint64
	metaLag  int // inserts since the last meta write
}

const (
	slMaxLevel = 12
	slMetaPage = uint32(0)
)

func ptr(pageNum uint32, slot int) uint64 { return uint64(pageNum)<<16 | uint64(uint16(slot)) }

func ptrPage(p uint64) uint32 { return uint32(p >> 16) }
func ptrSlot(p uint64) int    { return int(uint16(p)) }

// CreateSkipList initializes an empty list in a fresh file.
func CreateSkipList(space Space) (*SkipList, error) {
	meta, err := space.Allocate()
	if err != nil {
		return nil, err
	}
	if meta != slMetaPage {
		return nil, fmt.Errorf("index: skiplist meta allocated as page %d", meta)
	}
	first, err := space.Allocate()
	if err != nil {
		return nil, err
	}
	sl := &SkipList{space: space, current: first, maxLevel: slMaxLevel, rngState: 0x9E3779B97F4A7C15}
	// Sentinel node: level slMaxLevel, nil key.
	f, err := space.Fetch(first)
	if err != nil {
		return nil, err
	}
	page.InitRowPage(f.Buf)
	rp, _ := page.AsRowPage(f.Buf)
	rec := encodeSLNode(false, slMaxLevel, page.RID{}, make([]uint64, slMaxLevel), nil)
	slot, ok := rp.InsertEncoded(rec)
	if !ok {
		space.Unpin(f, false)
		return nil, fmt.Errorf("index: page too small for skiplist sentinel")
	}
	space.Unpin(f, true)
	sl.head = ptr(first, slot)
	return sl, sl.writeMeta()
}

// OpenSkipList opens an existing list; returns the list and the allocation
// high-water mark.
func OpenSkipList(space Space) (*SkipList, uint32, error) {
	f, err := space.Fetch(slMetaPage)
	if err != nil {
		return nil, 0, err
	}
	defer space.Unpin(f, false)
	if page.TypeOf(f.Buf) != page.TypeMeta {
		return nil, 0, fmt.Errorf("index: page 0 is not a skiplist meta page")
	}
	sl := &SkipList{
		space:    space,
		head:     binary.LittleEndian.Uint64(f.Buf[nodeHdrStart:]),
		current:  binary.LittleEndian.Uint32(f.Buf[nodeHdrStart+8:]),
		maxLevel: slMaxLevel,
		rngState: binary.LittleEndian.Uint64(f.Buf[nodeHdrStart+16:]),
	}
	next := binary.LittleEndian.Uint32(f.Buf[nodeHdrStart+12:])
	return sl, next, nil
}

func (sl *SkipList) writeMeta() error {
	f, err := sl.space.Fetch(slMetaPage)
	if err != nil {
		return err
	}
	for i := range f.Buf[:nodeHdrStart+24] {
		f.Buf[i] = 0
	}
	f.Buf[8] = page.TypeMeta
	binary.LittleEndian.PutUint64(f.Buf[nodeHdrStart:], sl.head)
	binary.LittleEndian.PutUint32(f.Buf[nodeHdrStart+8:], sl.current)
	var next uint32
	if bs, ok := sl.space.(*BufferSpace); ok {
		next = bs.NextPage()
	}
	binary.LittleEndian.PutUint32(f.Buf[nodeHdrStart+12:], next)
	binary.LittleEndian.PutUint64(f.Buf[nodeHdrStart+16:], sl.rngState)
	sl.space.Unpin(f, true)
	return nil
}

func encodeSLNode(deleted bool, level int, rid page.RID, fwd []uint64, key types.Row) []byte {
	rec := make([]byte, 0, 12+8*level+32)
	if deleted {
		rec = append(rec, 1)
	} else {
		rec = append(rec, 0)
	}
	rec = append(rec, byte(level))
	rec = appendRID(rec, rid)
	for i := 0; i < level; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], fwd[i])
		rec = append(rec, b[:]...)
	}
	if key != nil {
		rec = types.AppendRow(rec, key)
	}
	return rec
}

// slNode is a decoded node; raw aliases the page buffer so pointer updates
// write through.
type slNode struct {
	ptr     uint64
	deleted bool
	level   int
	rid     page.RID
	key     types.Row // nil for the sentinel
	raw     []byte
}

func (n *slNode) forward(i int) uint64 {
	return binary.LittleEndian.Uint64(n.raw[12+8*i:])
}

// readNode fetches and decodes the node at p. The returned node holds no
// pin (raw is copied); use updateForward to mutate pointers.
func (sl *SkipList) readNode(p uint64) (*slNode, error) {
	f, err := sl.space.Fetch(ptrPage(p))
	if err != nil {
		return nil, err
	}
	defer sl.space.Unpin(f, false)
	rp, err := page.AsRowPage(f.Buf)
	if err != nil {
		return nil, err
	}
	rec := rp.GetEncoded(ptrSlot(p))
	if rec == nil {
		return nil, fmt.Errorf("index: skiplist dangling pointer %d:%d", ptrPage(p), ptrSlot(p))
	}
	n := &slNode{ptr: p, deleted: rec[0] == 1, level: int(rec[1])}
	n.rid, err = decodeRID(rec[2:])
	if err != nil {
		return nil, err
	}
	n.raw = append([]byte(nil), rec...)
	keyOff := 12 + 8*n.level
	if keyOff < len(rec) {
		key, _, err := types.DecodeRow(rec[keyOff:])
		if err != nil {
			return nil, fmt.Errorf("index: skiplist node key: %w", err)
		}
		n.key = key
	}
	return n, nil
}

// updateForward rewrites forward pointer i of the node at p, in place.
func (sl *SkipList) updateForward(p uint64, i int, target uint64) error {
	f, err := sl.space.Fetch(ptrPage(p))
	if err != nil {
		return err
	}
	rp, err := page.AsRowPage(f.Buf)
	if err != nil {
		sl.space.Unpin(f, false)
		return err
	}
	rec := rp.GetEncoded(ptrSlot(p))
	if rec == nil {
		sl.space.Unpin(f, false)
		return fmt.Errorf("index: skiplist update on dangling pointer")
	}
	binary.LittleEndian.PutUint64(rec[12+8*i:], target)
	sl.space.Unpin(f, true)
	return nil
}

// setDeleted flips the tombstone flag in place.
func (sl *SkipList) setDeleted(p uint64) error {
	f, err := sl.space.Fetch(ptrPage(p))
	if err != nil {
		return err
	}
	rp, err := page.AsRowPage(f.Buf)
	if err != nil {
		sl.space.Unpin(f, false)
		return err
	}
	rec := rp.GetEncoded(ptrSlot(p))
	if rec == nil {
		sl.space.Unpin(f, false)
		return fmt.Errorf("index: skiplist delete on dangling pointer")
	}
	rec[0] = 1
	sl.space.Unpin(f, true)
	return nil
}

// randomLevel draws a geometric(1/4) level via xorshift, deterministic per
// list instance so tests are stable.
func (sl *SkipList) randomLevel() int {
	x := sl.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	sl.rngState = x
	level := 1
	for level < sl.maxLevel && x&3 == 0 {
		level++
		x >>= 2
	}
	return level
}

// appendNode stores a node record on the current page, allocating a new
// page when full. Returns the node's pointer.
func (sl *SkipList) appendNode(rec []byte) (uint64, error) {
	f, err := sl.space.Fetch(sl.current)
	if err != nil {
		return 0, err
	}
	rp, err := page.AsRowPage(f.Buf)
	if err != nil {
		sl.space.Unpin(f, false)
		return 0, err
	}
	if slot, ok := rp.InsertEncoded(rec); ok {
		sl.space.Unpin(f, true)
		return ptr(sl.current, slot), nil
	}
	sl.space.Unpin(f, false)
	// Current page full: allocate the next one (append-only growth).
	newPage, err := sl.space.Allocate()
	if err != nil {
		return 0, err
	}
	f2, err := sl.space.Fetch(newPage)
	if err != nil {
		return 0, err
	}
	page.InitRowPage(f2.Buf)
	rp2, _ := page.AsRowPage(f2.Buf)
	slot, ok := rp2.InsertEncoded(rec)
	if !ok {
		sl.space.Unpin(f2, false)
		return 0, fmt.Errorf("index: skiplist record larger than page")
	}
	sl.space.Unpin(f2, true)
	sl.current = newPage
	return ptr(newPage, slot), nil
}

// Insert adds a (key, rid) entry.
func (sl *SkipList) Insert(key types.Row, rid page.RID) error {
	update := make([]uint64, sl.maxLevel)
	x, err := sl.readNode(sl.head)
	if err != nil {
		return err
	}
	for i := sl.maxLevel - 1; i >= 0; i-- {
		for {
			nextP := x.forward(i)
			if nextP == 0 {
				break
			}
			next, err := sl.readNode(nextP)
			if err != nil {
				return err
			}
			if compareKeys(next.key, key) < 0 {
				x = next
				continue
			}
			break
		}
		update[i] = x.ptr
	}
	level := sl.randomLevel()
	fwd := make([]uint64, level)
	for i := 0; i < level; i++ {
		pred, err := sl.readNode(update[i])
		if err != nil {
			return err
		}
		fwd[i] = pred.forward(i)
	}
	before := sl.current
	nodePtr, err := sl.appendNode(encodeSLNode(false, level, rid, fwd, key))
	if err != nil {
		return err
	}
	for i := 0; i < level; i++ {
		if err := sl.updateForward(update[i], i, nodePtr); err != nil {
			return err
		}
	}
	// Persist the meta page only when the append-only file grew (or every
	// 64 inserts for the RNG state); the sentinel pointer never moves.
	sl.metaLag++
	if sl.current != before || sl.metaLag >= 64 {
		sl.metaLag = 0
		return sl.writeMeta()
	}
	return nil
}

// Search returns RIDs of live entries exactly matching key.
func (sl *SkipList) Search(key types.Row) ([]page.RID, error) {
	var out []page.RID
	err := sl.Range(key, key, func(k types.Row, rid page.RID) bool {
		out = append(out, rid)
		return true
	})
	return out, err
}

// Range iterates live entries with lo ≤ key ≤ hi in order; nil bounds are
// open. fn returning false stops early.
func (sl *SkipList) Range(lo, hi types.Row, fn func(key types.Row, rid page.RID) bool) error {
	x, err := sl.readNode(sl.head)
	if err != nil {
		return err
	}
	if lo != nil {
		for i := sl.maxLevel - 1; i >= 0; i-- {
			for {
				nextP := x.forward(i)
				if nextP == 0 {
					break
				}
				next, err := sl.readNode(nextP)
				if err != nil {
					return err
				}
				if compareKeys(next.key, lo) < 0 {
					x = next
					continue
				}
				break
			}
		}
	}
	// x is the last node < lo (or the sentinel); walk level 0.
	p := x.forward(0)
	for p != 0 {
		n, err := sl.readNode(p)
		if err != nil {
			return err
		}
		if hi != nil && compareKeys(n.key, hi) > 0 {
			return nil
		}
		if !n.deleted && (lo == nil || compareKeys(n.key, lo) >= 0) {
			if !fn(n.key, n.rid) {
				return nil
			}
		}
		p = n.forward(0)
	}
	return nil
}

// Delete tombstones the first live entry matching (key, rid).
func (sl *SkipList) Delete(key types.Row, rid page.RID) (bool, error) {
	found := false
	var target uint64
	err := sl.rangePtr(key, func(p uint64, n *slNode) bool {
		if n.rid == rid {
			found = true
			target = p
			return false
		}
		return true
	})
	if err != nil || !found {
		return false, err
	}
	return true, sl.setDeleted(target)
}

// rangePtr walks live entries equal to key, exposing node pointers.
func (sl *SkipList) rangePtr(key types.Row, fn func(p uint64, n *slNode) bool) error {
	x, err := sl.readNode(sl.head)
	if err != nil {
		return err
	}
	for i := sl.maxLevel - 1; i >= 0; i-- {
		for {
			nextP := x.forward(i)
			if nextP == 0 {
				break
			}
			next, err := sl.readNode(nextP)
			if err != nil {
				return err
			}
			if compareKeys(next.key, key) < 0 {
				x = next
				continue
			}
			break
		}
	}
	p := x.forward(0)
	for p != 0 {
		n, err := sl.readNode(p)
		if err != nil {
			return err
		}
		c := compareKeys(n.key, key)
		if c > 0 {
			return nil
		}
		if c == 0 && !n.deleted {
			if !fn(p, n) {
				return nil
			}
		}
		p = n.forward(0)
	}
	return nil
}
