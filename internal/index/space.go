// Package index implements HRDBMS's two disk-resident index structures
// (Section III): a B+-tree and an append-only skip list with logical
// deletes. Both live in page files accessed through the buffer manager.
//
// Index keys are rows (possibly single-column) compared lexicographically,
// and entries map keys to physical RIDs.
package index

import (
	"encoding/binary"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/page"
)

// Space gives an index access to the pages of its file: fetching existing
// pages and allocating fresh ones.
type Space interface {
	Fetch(pageNum uint32) (*buffer.Frame, error)
	Unpin(f *buffer.Frame, dirty bool)
	Allocate() (uint32, error)
	PageSize() int
}

// BufferSpace adapts a buffer manager plus file ID into a Space. Allocation
// state (the page high-water mark) is kept on the caller-owned meta page of
// each index, so BufferSpace itself is stateless besides the counter, which
// the index persists.
type BufferSpace struct {
	Mgr      *buffer.Manager
	File     page.FileID
	Size     int
	nextPage *uint32
}

// NewBufferSpace creates a Space over a buffer-managed file. next is the
// first unallocated page number (restored from the index meta page when
// reopening).
func NewBufferSpace(mgr *buffer.Manager, file page.FileID, pageSize int, next uint32) *BufferSpace {
	n := next
	return &BufferSpace{Mgr: mgr, File: file, Size: pageSize, nextPage: &n}
}

// Fetch pins the page.
func (s *BufferSpace) Fetch(pageNum uint32) (*buffer.Frame, error) {
	return s.Mgr.Fetch(page.Key{File: s.File, Page: pageNum})
}

// Unpin releases the pin.
func (s *BufferSpace) Unpin(f *buffer.Frame, dirty bool) { s.Mgr.Unpin(f, dirty) }

// Allocate reserves the next page number and returns it.
func (s *BufferSpace) Allocate() (uint32, error) {
	n := *s.nextPage
	*s.nextPage = n + 1
	return n, nil
}

// NextPage returns the allocation high-water mark (persisted by the index).
func (s *BufferSpace) NextPage() uint32 { return *s.nextPage }

// PageSize returns the page size.
func (s *BufferSpace) PageSize() int { return s.Size }

// RID packing helpers shared by both index types.

func appendRID(dst []byte, r page.RID) []byte {
	var buf [10]byte
	binary.LittleEndian.PutUint16(buf[0:], r.Node)
	binary.LittleEndian.PutUint16(buf[2:], r.Disk)
	binary.LittleEndian.PutUint32(buf[4:], r.Page)
	binary.LittleEndian.PutUint16(buf[8:], r.Slot)
	return append(dst, buf[:]...)
}

func decodeRID(b []byte) (page.RID, error) {
	if len(b) < 10 {
		return page.RID{}, fmt.Errorf("index: short RID")
	}
	return page.RID{
		Node: binary.LittleEndian.Uint16(b[0:]),
		Disk: binary.LittleEndian.Uint16(b[2:]),
		Page: binary.LittleEndian.Uint32(b[4:]),
		Slot: binary.LittleEndian.Uint16(b[8:]),
	}, nil
}
