package obs

import (
	"testing"
	"time"
)

// BenchmarkSpanDisabled measures the nil-span fast path — the per-row cost
// tracing adds to exec hot loops when disabled. CI runs this as a smoke
// check; it must stay at a branch-and-return (sub-ns, zero allocs).
func BenchmarkSpanDisabled(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.AddRowsOut(1)
		sp.AddWall(time.Nanosecond)
	}
}

// BenchmarkSpanEnabled is the enabled counterpart: two atomic adds.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewQueryTrace(1, "")
	sp := tr.StartSpan("op", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.AddRowsOut(1)
		sp.AddWall(time.Nanosecond)
	}
}

func BenchmarkRegistryCounterHot(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
