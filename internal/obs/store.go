package obs

import "sync"

// TraceStore keeps the most recent query traces for /debug/queries.
// Completed traces are handed to a background flusher through a buffered
// channel so the query path never contends on the ring lock; the flusher
// owns the ring and exits when Close is called (done channel), dropping
// nothing that was accepted before Close.
type TraceStore struct {
	cap     int
	in      chan *QueryTrace
	done    chan struct{}
	flushed chan struct{}

	mu   sync.Mutex //lint:lockorder obs.store leaf
	ring []*QueryTrace
	next int
}

// NewTraceStore starts a store holding the last capacity traces.
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 1 {
		capacity = 64
	}
	s := &TraceStore{
		cap:     capacity,
		in:      make(chan *QueryTrace, 64),
		done:    make(chan struct{}),
		flushed: make(chan struct{}),
	}
	go s.flusher()
	return s
}

// flusher drains completed traces into the ring until the done channel
// closes, then drains whatever was already queued and exits.
func (s *TraceStore) flusher() {
	defer close(s.flushed)
	for {
		select {
		case t := <-s.in:
			s.insert(t)
		case <-s.done:
			for {
				select {
				case t := <-s.in:
					s.insert(t)
				default:
					return
				}
			}
		}
	}
}

func (s *TraceStore) insert(t *QueryTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, t)
		return
	}
	s.ring[s.next] = t
	s.next = (s.next + 1) % s.cap
}

// Add records a completed trace. Non-blocking: if the flusher is behind and
// its queue full, the trace is dropped (observability must not backpressure
// queries). Nil traces and adds after Close are ignored.
func (s *TraceStore) Add(t *QueryTrace) {
	if s == nil || t == nil {
		return
	}
	select {
	case s.in <- t:
	case <-s.done:
	default:
	}
}

// Recent returns the stored traces, oldest first.
func (s *TraceStore) Recent() []*QueryTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*QueryTrace, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// Close stops the flusher goroutine and waits for it to drain.
func (s *TraceStore) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
		close(s.done)
	}
	s.mu.Unlock()
	<-s.flushed
}
