package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe metrics registry. Subsystems (buffer,
// skipcache, wal, txn, twopc, network) either create live instruments
// (Counter, Gauge, Histogram) or register view functions over counters they
// already maintain as atomics; /metrics renders both identically.
//
// Names are dotted lowercase paths, subsystem first: "buffer.hits",
// "network.bytes_total", "query.seconds". Counters end in "_total" when
// they are monotonic sums over the process lifetime.
type Registry struct {
	mu         sync.RWMutex //lint:lockorder obs.registry leaf
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() int64{},
		hists:      map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing metric. All methods are nil-safe so
// components can hold an optional counter without branching.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (e.g. active-transaction up/down).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets (upper bounds,
// ascending) plus a sum, for latency/size distributions.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	sum    atomic.Int64   // sum in micro-units to stay integral
	total  atomic.Int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(int64(v * 1e6))
	h.total.Add(1)
}

// Total returns the observation count.
func (h *Histogram) Total() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load()) / 1e6
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the given
// bucket upper bounds. Bounds are fixed by the first registration.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// RegisterGaugeFunc publishes a live view over an existing counter: fn is
// called at snapshot time. Registering the same name again replaces the
// function (a restarted component re-registers).
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Metric is one snapshot entry.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // counter | gauge | histogram
	Value float64 `json:"value"`
}

// Snapshot returns every metric's current value, sorted by name.
// Histograms report their observation count as Value (the full
// distribution is rendered only by WriteText).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: float64(g.Value())})
	}
	for name, fn := range r.gaugeFuncs {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: float64(fn())})
	}
	for name, h := range r.hists {
		out = append(out, Metric{Name: name, Kind: "histogram", Value: float64(h.Total())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders the registry in an expfmt-like plain-text form:
// one "name value" line per metric; histograms additionally expose
// cumulative "name_bucket{le=...}" lines plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	for _, m := range r.Snapshot() {
		if m.Kind == "histogram" {
			continue // rendered below with buckets
		}
		fmt.Fprintf(w, "%s %g\n", m.Name, m.Value)
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Total())
	}
	r.mu.RUnlock()
}
