package obs

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves the registry as plain text (GET /metrics).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}

// QueriesHandler serves recent query traces as JSON (GET /debug/queries),
// newest last. Each trace is the full stitched span tree.
func QueriesHandler(s *TraceStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		traces := s.Recent()
		out := make([]TraceSnapshot, len(traces))
		for i, t := range traces {
			out[i] = t.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}

// Handler mounts both endpoints on a fresh mux: /metrics and
// /debug/queries. cmd/hrdbms-server serves this on its -http address.
func Handler(r *Registry, s *TraceStore) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/debug/queries", QueriesHandler(s))
	return mux
}
