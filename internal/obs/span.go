// Package obs is HRDBMS's observability layer: a per-query span tracer
// that attributes rows, bytes, pages, and wall time to individual plan
// operators across the nodes of a distributed query, and a concurrency-safe
// metrics registry the storage, transaction, and network subsystems publish
// into.
//
// Every figure in the paper is an argument about where time and bytes go —
// shuffle topology degree, materialization volume, pages skipped — and this
// package is the instrumentation that lets the reproduction make the same
// arguments about itself: EXPLAIN ANALYZE renders the span tree, the
// /metrics and /debug/queries endpoints expose the registry and recent
// traces, and hrdbms-bench dumps machine-readable per-query stats.
//
// Tracing is strictly pay-for-what-you-use: a nil *QueryTrace produces nil
// *Span values, and every Span method is a nil-receiver no-op, so the
// disabled path costs one predictable branch and zero allocations.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span records one operator's execution on one node. Counters are updated
// concurrently by operator goroutines and read after (or during) the query,
// so all of them are atomics. Spans link parent→child by ID; the tree is
// reconstructed at render time.
type Span struct {
	ID     int64
	Op     string // operator label, e.g. "Scan lineitem", "Shuffle"
	Node   int    // node the operator ran on
	parent atomic.Int64

	RowsOut      atomic.Int64 // rows this operator produced
	EstRows      atomic.Int64 // optimizer-estimated rows (0 = not stamped)
	ScanRows     atomic.Int64 // rows read by a scan before predicates
	PagesRead    atomic.Int64
	PagesSkipped atomic.Int64
	NetBytes     atomic.Int64 // bytes this operator put on the wire
	NetMsgs      atomic.Int64
	Batches      atomic.Int64 // row slabs this operator shipped (vectorized path)
	VecBatches   atomic.Int64 // typed columnar batches this operator shipped (vector path)
	DecodeTyped  atomic.Int64 // column pages decoded by the typed batch decoders
	DecodeBoxed  atomic.Int64 // column pages that fell back to boxed DecodeInto
	SpillBytes   atomic.Int64
	StateBytes   atomic.Int64
	Workers      atomic.Int64 // intra-operator worker threads granted (morsel parallelism)
	WallNS       atomic.Int64 // cumulative time inside Open/Next/Close (includes children)

	finished atomic.Bool // set once by Finish; spans left unfinished indicate a tracing bug
}

// Finish marks the span complete. Idempotent and nil-safe: finishing twice
// is harmless, and the disabled (nil) span path stays a single branch. Every
// StartSpan must be paired with a Finish on all paths (the spanpair lint rule
// enforces this) so a trace can distinguish "operator done" from "operator
// abandoned".
func (s *Span) Finish() {
	if s != nil {
		s.finished.Store(true)
	}
}

// Finished reports whether Finish was called. Nil-safe (a nil span is
// trivially finished: it never started).
func (s *Span) Finished() bool {
	if s == nil {
		return true
	}
	return s.finished.Load()
}

// SetParent links this span under a parent span. Nil-safe.
func (s *Span) SetParent(p *Span) {
	if s == nil || p == nil {
		return
	}
	s.parent.Store(p.ID)
}

// Parent returns the parent span ID (0 = root).
func (s *Span) Parent() int64 {
	if s == nil {
		return 0
	}
	return s.parent.Load()
}

// SetEst stamps the optimizer's row estimate so EXPLAIN ANALYZE can show
// est= next to the actual count. Nil-safe.
func (s *Span) SetEst(n int64) {
	if s != nil {
		s.EstRows.Store(n)
	}
}

// AddRowsOut counts produced rows. Nil-safe.
func (s *Span) AddRowsOut(n int64) {
	if s != nil {
		s.RowsOut.Add(n)
	}
}

// AddWall accumulates operator wall time. Nil-safe.
func (s *Span) AddWall(d time.Duration) {
	if s != nil {
		s.WallNS.Add(int64(d))
	}
}

// AddScan records scan-side counters. Nil-safe.
func (s *Span) AddScan(rows, pagesRead, pagesSkipped int64) {
	if s != nil {
		s.ScanRows.Add(rows)
		s.PagesRead.Add(pagesRead)
		s.PagesSkipped.Add(pagesSkipped)
	}
}

// AddNet records bytes/messages sent by an exchange operator. Nil-safe.
func (s *Span) AddNet(bytes int64, msgs int64) {
	if s != nil {
		s.NetBytes.Add(bytes)
		s.NetMsgs.Add(msgs)
	}
}

// AddBatches counts row slabs moved by the vectorized path. Nil-safe.
func (s *Span) AddBatches(n int64) {
	if s != nil {
		s.Batches.Add(n)
	}
}

// AddVecBatches counts typed columnar batches moved by the vector path.
// Nil-safe.
func (s *Span) AddVecBatches(n int64) {
	if s != nil {
		s.VecBatches.Add(n)
	}
}

// AddSpill records spill volume. Nil-safe.
func (s *Span) AddSpill(n int64) {
	if s != nil {
		s.SpillBytes.Add(n)
	}
}

// AddState records operator state bytes. Nil-safe.
func (s *Span) AddState(n int64) {
	if s != nil {
		s.StateBytes.Add(n)
	}
}

// AddDecode records how a scan's column pages decoded: typed batch
// decoders vs the boxed DecodeInto fallback. Nil-safe.
func (s *Span) AddDecode(typed, boxed int64) {
	if s != nil {
		s.DecodeTyped.Add(typed)
		s.DecodeBoxed.Add(boxed)
	}
}

// AddWorkers records the parallel worker threads an operator was granted
// from the node budget. Nil-safe.
func (s *Span) AddWorkers(n int64) {
	if s != nil {
		s.Workers.Add(n)
	}
}

// SpanSnapshot is the JSON-friendly view of a span.
type SpanSnapshot struct {
	ID           int64  `json:"id"`
	Parent       int64  `json:"parent,omitempty"`
	Op           string `json:"op"`
	Node         int    `json:"node"`
	RowsOut      int64  `json:"rows_out"`
	EstRows      int64  `json:"est_rows,omitempty"`
	ScanRows     int64  `json:"scan_rows,omitempty"`
	PagesRead    int64  `json:"pages_read,omitempty"`
	PagesSkipped int64  `json:"pages_skipped,omitempty"`
	NetBytes     int64  `json:"net_bytes,omitempty"`
	NetMsgs      int64  `json:"net_msgs,omitempty"`
	Batches      int64  `json:"batches,omitempty"`
	VecBatches   int64  `json:"vec_batches,omitempty"`
	DecodeTyped  int64  `json:"decode_typed,omitempty"`
	DecodeBoxed  int64  `json:"decode_boxed,omitempty"`
	SpillBytes   int64  `json:"spill_bytes,omitempty"`
	StateBytes   int64  `json:"state_bytes,omitempty"`
	Workers      int64  `json:"workers,omitempty"`
	WallNS       int64  `json:"wall_ns"`
}

func (s *Span) snapshot() SpanSnapshot {
	return SpanSnapshot{
		ID:           s.ID,
		Parent:       s.parent.Load(),
		Op:           s.Op,
		Node:         s.Node,
		RowsOut:      s.RowsOut.Load(),
		EstRows:      s.EstRows.Load(),
		ScanRows:     s.ScanRows.Load(),
		PagesRead:    s.PagesRead.Load(),
		PagesSkipped: s.PagesSkipped.Load(),
		NetBytes:     s.NetBytes.Load(),
		NetMsgs:      s.NetMsgs.Load(),
		Batches:      s.Batches.Load(),
		VecBatches:   s.VecBatches.Load(),
		DecodeTyped:  s.DecodeTyped.Load(),
		DecodeBoxed:  s.DecodeBoxed.Load(),
		SpillBytes:   s.SpillBytes.Load(),
		StateBytes:   s.StateBytes.Load(),
		Workers:      s.Workers.Load(),
		WallNS:       s.WallNS.Load(),
	}
}

// QueryTrace collects the spans of one query execution across all nodes.
// The zero value is not usable; a nil *QueryTrace is the disabled tracer.
type QueryTrace struct {
	QID   uint64
	SQL   string
	wall  atomic.Int64
	seq   atomic.Int64
	mu    sync.Mutex //lint:lockorder obs.trace leaf
	spans []*Span
}

// NewQueryTrace starts a trace for one query.
func NewQueryTrace(qid uint64, sql string) *QueryTrace {
	return &QueryTrace{QID: qid, SQL: sql}
}

// StartSpan creates a span for an operator on a node. Returns nil on a nil
// trace, so disabled tracing propagates as nil spans.
func (t *QueryTrace) StartSpan(op string, node int) *Span {
	if t == nil {
		return nil
	}
	s := &Span{ID: t.seq.Add(1), Op: op, Node: node}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// SetWall records the query's end-to-end wall time. Nil-safe.
func (t *QueryTrace) SetWall(d time.Duration) {
	if t != nil {
		t.wall.Store(int64(d))
	}
}

// Wall returns the recorded end-to-end wall time.
func (t *QueryTrace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.wall.Load())
}

// Spans returns a snapshot of all spans recorded so far.
func (t *QueryTrace) Spans() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		out[i] = s.snapshot()
	}
	return out
}

// TraceSnapshot is the JSON-friendly view of a whole query trace.
type TraceSnapshot struct {
	QID    uint64         `json:"qid"`
	SQL    string         `json:"sql,omitempty"`
	WallNS int64          `json:"wall_ns"`
	Spans  []SpanSnapshot `json:"spans"`
}

// Snapshot captures the trace for serialization.
func (t *QueryTrace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	return TraceSnapshot{QID: t.QID, SQL: t.SQL, WallNS: t.wall.Load(), Spans: t.Spans()}
}

// Render returns the stitched span tree as indented text: one line per
// operator span, children ordered by node then span ID, each annotated with
// its non-zero counters. This is the body of EXPLAIN ANALYZE.
func (t *QueryTrace) Render() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()
	children := map[int64][]SpanSnapshot{}
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Node != cs[j].Node {
				return cs[i].Node < cs[j].Node
			}
			return cs[i].ID < cs[j].ID
		})
	}
	var sb strings.Builder
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, s := range children[parent] {
			sb.WriteString(strings.Repeat("  ", depth))
			sb.WriteString(s.line())
			sb.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	return sb.String()
}

// line renders one span as a single EXPLAIN ANALYZE line.
func (s SpanSnapshot) line() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [node %d] (rows=%d time=%.3fms", s.Op, s.Node, s.RowsOut,
		float64(s.WallNS)/1e6)
	if s.EstRows > 0 {
		fmt.Fprintf(&sb, " est=%d", s.EstRows)
	}
	if s.ScanRows > 0 {
		fmt.Fprintf(&sb, " scanned=%d", s.ScanRows)
	}
	if s.PagesRead > 0 || s.PagesSkipped > 0 {
		fmt.Fprintf(&sb, " pages=%d skipped=%d", s.PagesRead, s.PagesSkipped)
	}
	if s.NetBytes > 0 || s.NetMsgs > 0 {
		fmt.Fprintf(&sb, " net=%dB msgs=%d", s.NetBytes, s.NetMsgs)
	}
	if s.Batches > 0 {
		fmt.Fprintf(&sb, " batches=%d", s.Batches)
	}
	if s.VecBatches > 0 {
		fmt.Fprintf(&sb, " vec_batches=%d", s.VecBatches)
	}
	if s.DecodeTyped > 0 || s.DecodeBoxed > 0 {
		fmt.Fprintf(&sb, " decode=%dT/%dB", s.DecodeTyped, s.DecodeBoxed)
	}
	if s.SpillBytes > 0 {
		fmt.Fprintf(&sb, " spill=%dB", s.SpillBytes)
	}
	if s.StateBytes > 0 {
		fmt.Fprintf(&sb, " state=%dB", s.StateBytes)
	}
	if s.Workers > 0 {
		fmt.Fprintf(&sb, " workers=%d", s.Workers)
	}
	sb.WriteByte(')')
	return sb.String()
}
