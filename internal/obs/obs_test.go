package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeRender(t *testing.T) {
	tr := NewQueryTrace(7, "SELECT 1")
	root := tr.StartSpan("Gather", 0)
	scan1 := tr.StartSpan("Scan t", 1)
	scan2 := tr.StartSpan("Scan t", 2)
	scan1.SetParent(root)
	scan2.SetParent(root)
	scan1.AddRowsOut(10)
	scan1.AddScan(12, 3, 1)
	scan2.AddRowsOut(5)
	scan2.AddNet(2048, 4)
	root.AddRowsOut(15)
	root.AddWall(2 * time.Millisecond)

	out := tr.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Gather [node 0] (rows=15") {
		t.Errorf("root line = %q", lines[0])
	}
	// Children indented, ordered by node.
	if !strings.HasPrefix(lines[1], "  Scan t [node 1]") || !strings.Contains(lines[1], "scanned=12 pages=3 skipped=1") {
		t.Errorf("child line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "net=2048B msgs=4") {
		t.Errorf("child line = %q", lines[2])
	}
}

func TestNilTraceAndSpanAreNoops(t *testing.T) {
	var tr *QueryTrace
	sp := tr.StartSpan("x", 0)
	if sp != nil {
		t.Fatal("nil trace must hand out nil spans")
	}
	// All of these must be safe no-ops.
	sp.AddRowsOut(1)
	sp.AddWall(time.Second)
	sp.AddScan(1, 1, 1)
	sp.AddNet(1, 1)
	sp.AddSpill(1)
	sp.AddState(1)
	sp.SetParent(sp)
	sp.Finish()
	if !sp.Finished() {
		t.Fatal("a nil span is trivially finished")
	}
	tr.SetWall(time.Second)
	if tr.Render() != "" || tr.Spans() != nil {
		t.Fatal("nil trace must render empty")
	}
}

func TestDisabledSpanZeroAlloc(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		sp.AddRowsOut(1)
		sp.AddWall(1)
		sp.AddNet(1, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled span allocated %v per op", allocs)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewQueryTrace(1, "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.StartSpan("op", n)
				sp.AddRowsOut(1)
			}
		}(i)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("spans = %d, want 800", got)
	}
}

func TestTraceStoreRingAndClose(t *testing.T) {
	s := NewTraceStore(4)
	for i := uint64(1); i <= 6; i++ {
		s.Add(NewQueryTrace(i, ""))
	}
	s.Close() // waits for the flusher to drain
	got := s.Recent()
	if len(got) != 4 {
		t.Fatalf("recent = %d traces, want 4", len(got))
	}
	// Oldest first: 3,4,5,6 survive.
	for i, want := range []uint64{3, 4, 5, 6} {
		if got[i].QID != want {
			t.Fatalf("recent[%d].QID = %d, want %d", i, got[i].QID, want)
		}
	}
	s.Add(NewQueryTrace(99, "")) // after Close: ignored, no panic
	s.Close()                    // idempotent
}

func TestTraceStoreConcurrentAdd(t *testing.T) {
	s := NewTraceStore(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Add(NewQueryTrace(uint64(n*100+j), ""))
				s.Recent()
			}
		}(i)
	}
	wg.Wait()
	s.Close()
	if len(s.Recent()) == 0 {
		t.Fatal("no traces stored")
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wal.appends_total")
	c.Add(3)
	c.Inc()
	if r.Counter("wal.appends_total").Value() != 4 {
		t.Fatal("counter get-or-create must return the same instrument")
	}
	g := r.Gauge("txn.active")
	g.Add(2)
	g.Add(-1)
	if g.Value() != 1 {
		t.Fatalf("gauge = %d", g.Value())
	}
	r.RegisterGaugeFunc("buffer.hits", func() int64 { return 42 })
	h := r.Histogram("query.seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	h.Observe(5)

	snap := r.Snapshot()
	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if byName["buffer.hits"].Value != 42 || byName["buffer.hits"].Kind != "gauge" {
		t.Fatalf("gauge func metric = %+v", byName["buffer.hits"])
	}
	if byName["query.seconds"].Value != 2 {
		t.Fatalf("histogram count = %v", byName["query.seconds"].Value)
	}

	var sb strings.Builder
	r.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		"wal.appends_total 4\n",
		"txn.active 1\n",
		"buffer.hits 42\n",
		`query.seconds_bucket{le="0.1"} 1`,
		`query.seconds_bucket{le="+Inf"} 2`,
		"query.seconds_count 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, text)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(j))
				r.Histogram("h", []float64{1, 2}).Observe(float64(j % 3))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 1600 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	r.RegisterGaugeFunc("f", func() int64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var sb strings.Builder
	r.WriteText(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil registry must write nothing")
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("network.bytes_total").Add(123)
	s := NewTraceStore(8)
	tr := NewQueryTrace(5, "SELECT x FROM t")
	sp := tr.StartSpan("Scan t", 1)
	sp.AddRowsOut(9)
	s.Add(tr)
	s.Close()

	h := Handler(r, s)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "network.bytes_total 123") {
		t.Errorf("/metrics = %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	body := rec.Body.String()
	for _, want := range []string{`"qid": 5`, `"sql": "SELECT x FROM t"`, `"op": "Scan t"`, `"rows_out": 9`} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/queries missing %q in:\n%s", want, body)
		}
	}
}
