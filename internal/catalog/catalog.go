// Package catalog holds HRDBMS's metadata: table definitions, partitioning
// strategies, index definitions, and table/column statistics used by the
// cost-based optimizer. In a running cluster the catalog lives on every
// coordinator and is kept in sync via 2PC (Section VI); the struct is
// self-contained and snapshot-able to support that replication.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// PartitionKind selects how a table's rows map to worker nodes.
type PartitionKind uint8

// Partitioning strategies (Section III: hash, range, or duplicated).
const (
	PartHash PartitionKind = iota + 1
	PartRange
	PartReplicated
)

// String names the strategy.
func (k PartitionKind) String() string {
	switch k {
	case PartHash:
		return "HASH"
	case PartRange:
		return "RANGE"
	case PartReplicated:
		return "REPLICATED"
	default:
		return fmt.Sprintf("PartitionKind(%d)", uint8(k))
	}
}

// Partitioning describes a table's node-level distribution. Within each
// node, rows are further spread across the node's disks by hash.
type Partitioning struct {
	Kind   PartitionKind
	Cols   []string
	Bounds []types.Value // PartRange: ascending upper bounds; fragment i takes keys < Bounds[i]
}

// TableDef is one table's definition.
type TableDef struct {
	Name        string
	Schema      types.Schema
	Part        Partitioning
	Columnar    bool
	ClusterCols []string // loading sorts on these (Section III clustering)
	PageSize    int
}

// ColOffsets resolves the partitioning columns to schema offsets.
func (t *TableDef) ColOffsets(cols []string) ([]int, error) {
	out := make([]int, len(cols))
	for i, c := range cols {
		idx := t.Schema.Find(c)
		if idx < 0 {
			return nil, fmt.Errorf("catalog: table %s has no column %s", t.Name, c)
		}
		out[i] = idx
	}
	return out, nil
}

// NodeFor returns the worker node(s) a row belongs to, given numWorkers.
// Replicated tables return all nodes.
func (t *TableDef) NodeFor(r types.Row, numWorkers int) ([]int, error) {
	switch t.Part.Kind {
	case PartReplicated:
		all := make([]int, numWorkers)
		for i := range all {
			all[i] = i
		}
		return all, nil
	case PartHash:
		offs, err := t.ColOffsets(t.Part.Cols)
		if err != nil {
			return nil, err
		}
		h := types.HashRow(r, offs)
		return []int{int(h % uint64(numWorkers))}, nil
	case PartRange:
		offs, err := t.ColOffsets(t.Part.Cols[:1])
		if err != nil {
			return nil, err
		}
		v := r[offs[0]]
		for i, b := range t.Part.Bounds {
			if types.Compare(v, b) < 0 {
				return []int{i % numWorkers}, nil
			}
		}
		return []int{len(t.Part.Bounds) % numWorkers}, nil
	default:
		return nil, fmt.Errorf("catalog: table %s has no partitioning", t.Name)
	}
}

// RangeFragmentsFor returns the fragment indexes a range predicate can
// touch, enabling the optimizer's fragment pruning for range-partitioned
// tables. op is one of "=", "<", "<=", ">", ">=". A nil return means all
// fragments.
func (t *TableDef) RangeFragmentsFor(col string, op string, v types.Value, numWorkers int) []int {
	if t.Part.Kind != PartRange || len(t.Part.Cols) == 0 || !strings.EqualFold(t.Part.Cols[0], col) {
		return nil
	}
	numFrags := len(t.Part.Bounds) + 1
	if numFrags > numWorkers {
		numFrags = numWorkers
	}
	// fragOf returns the fragment holding value x.
	fragOf := func(x types.Value) int {
		for i, b := range t.Part.Bounds {
			if types.Compare(x, b) < 0 {
				return i % numWorkers
			}
		}
		return len(t.Part.Bounds) % numWorkers
	}
	var frags []int
	switch op {
	case "=":
		frags = []int{fragOf(v)}
	case "<", "<=":
		last := fragOf(v)
		for i := 0; i <= last; i++ {
			frags = append(frags, i)
		}
	case ">", ">=":
		first := fragOf(v)
		for i := first; i < numFrags; i++ {
			frags = append(frags, i)
		}
	default:
		return nil
	}
	return frags
}

// IndexDef describes a secondary index.
type IndexDef struct {
	Name  string
	Table string
	Cols  []string
	Kind  IndexKind
}

// IndexKind selects the index structure.
type IndexKind uint8

// Index structure kinds (Section III).
const (
	IndexBTree IndexKind = iota + 1
	IndexSkipList
)

// ColumnStats holds per-column statistics for cost estimation.
type ColumnStats struct {
	NDV       int64 // number of distinct values (exact iff NDVExact)
	Min, Max  types.Value
	NullCount int64
	// NDVExact is set when NDV was counted exactly (small column domain);
	// otherwise NDV is the Sketch's HyperLogLog estimate. The group-by
	// pushdown's uniqueness test only trusts exact counts.
	NDVExact bool
	// AvgWidth is the average encoded value width in bytes (string
	// lengths; 8 for fixed-width kinds), used for network costing.
	AvgWidth float64
	// Hist is an equi-depth histogram over non-null values (ascending
	// Upper bounds); empty when the column was never analyzed.
	Hist []HistBucket
	// Sketch is the streaming NDV sketch, kept so stats can be merged
	// across fragments and refreshed incrementally.
	Sketch *NDVSketch
}

// TableStats holds per-table statistics.
type TableStats struct {
	RowCount int64
	Pages    int64
	Cols     map[string]*ColumnStats
}

// Catalog is the metadata store.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*TableDef
	indexes map[string]*IndexDef
	stats   map[string]*TableStats
	version uint64
	// defaultStatsFallbacks counts Stats() calls that returned the
	// conservative default because the table was never analyzed; exported
	// as the opt.stats_default_fallback metric so missing statistics are
	// visible instead of quietly poisoning plans.
	defaultStatsFallbacks atomic.Int64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  map[string]*TableDef{},
		indexes: map[string]*IndexDef{},
		stats:   map[string]*TableStats{},
	}
}

// CreateTable registers a table definition.
func (c *Catalog) CreateTable(def *TableDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, exists := c.tables[key]; exists {
		return fmt.Errorf("catalog: table %s already exists", def.Name)
	}
	if def.Schema.Len() == 0 {
		return fmt.Errorf("catalog: table %s has no columns", def.Name)
	}
	if def.Part.Kind == PartHash || def.Part.Kind == PartRange {
		if len(def.Part.Cols) == 0 {
			return fmt.Errorf("catalog: table %s: %s partitioning needs columns", def.Name, def.Part.Kind)
		}
		for _, col := range def.Part.Cols {
			if def.Schema.Find(col) < 0 {
				return fmt.Errorf("catalog: table %s: partition column %s not in schema", def.Name, col)
			}
		}
	}
	c.tables[key] = def
	c.version++
	return nil
}

// DropTable removes a table and its indexes and stats.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; !exists {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.tables, key)
	delete(c.stats, key)
	for iname, idx := range c.indexes {
		if strings.EqualFold(idx.Table, name) {
			delete(c.indexes, iname)
		}
	}
	c.version++
	return nil
}

// Table looks up a table definition.
func (c *Catalog) Table(name string) (*TableDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %s does not exist", name)
	}
	return t, nil
}

// Tables returns all table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// CreateIndex registers an index over an existing table.
func (c *Catalog) CreateIndex(def *IndexDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, exists := c.indexes[key]; exists {
		return fmt.Errorf("catalog: index %s already exists", def.Name)
	}
	tbl, ok := c.tables[strings.ToLower(def.Table)]
	if !ok {
		return fmt.Errorf("catalog: index %s references missing table %s", def.Name, def.Table)
	}
	for _, col := range def.Cols {
		if tbl.Schema.Find(col) < 0 {
			return fmt.Errorf("catalog: index %s: column %s not in %s", def.Name, col, def.Table)
		}
	}
	c.indexes[key] = def
	c.version++
	return nil
}

// IndexesOn returns the indexes defined on a table.
func (c *Catalog) IndexesOn(table string) []*IndexDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*IndexDef
	for _, idx := range c.indexes {
		if strings.EqualFold(idx.Table, table) {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetStats installs statistics for a table.
func (c *Catalog) SetStats(table string, s *TableStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats[strings.ToLower(table)] = s
	c.version++
}

// Stats returns a table's statistics, or a conservative default when the
// table has never been analyzed.
func (c *Catalog) Stats(table string) *TableStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if s, ok := c.stats[strings.ToLower(table)]; ok {
		return s
	}
	c.defaultStatsFallbacks.Add(1)
	return &TableStats{RowCount: 1000, Pages: 10, Cols: map[string]*ColumnStats{}}
}

// DefaultStatsFallbacks returns how many times Stats served the
// never-analyzed default instead of real statistics.
func (c *Catalog) DefaultStatsFallbacks() int64 {
	return c.defaultStatsFallbacks.Load()
}

// Version returns the catalog's monotonically increasing change counter,
// used by coordinator metadata synchronization.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Snapshot copies the catalog for replication to another coordinator.
func (c *Catalog) Snapshot() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := New()
	for k, v := range c.tables {
		def := *v
		out.tables[k] = &def
	}
	for k, v := range c.indexes {
		def := *v
		out.indexes[k] = &def
	}
	for k, v := range c.stats {
		s := &TableStats{RowCount: v.RowCount, Pages: v.Pages, Cols: map[string]*ColumnStats{}}
		for ck, cv := range v.Cols {
			cs := *cv
			cs.Hist = append([]HistBucket(nil), cv.Hist...)
			cs.Sketch = cv.Sketch.Clone()
			s.Cols[ck] = &cs
		}
		out.stats[k] = s
	}
	out.version = c.version
	return out
}

// ComputeStats derives statistics from a full set of rows (ANALYZE). It is
// a convenience wrapper over the streaming StatsBuilder, which callers with
// row iterators should use directly: memory stays bounded regardless of
// table size (bounded reservoir + sketch per column, no distinct-value map).
func ComputeStats(schema types.Schema, rows []types.Row) *TableStats {
	b := NewStatsBuilder(schema)
	for _, r := range rows {
		b.Add(r)
	}
	return b.Finish()
}
