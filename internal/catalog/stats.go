// Streaming statistics collection: a HyperLogLog-style NDV sketch, a
// reservoir-sampled equi-depth histogram, and the StatsBuilder that feeds
// both one row at a time. ANALYZE and load-time stats go through the
// builder so no full distinct-value map (and no materialized table) is ever
// needed; the optimizer consumes the results through ColumnStats.FracLE /
// FracLT for range-predicate selectivity.
package catalog

import (
	"math"
	"sort"
	"strings"

	"repro/internal/types"
)

const (
	// sketchBits is the HLL precision: 2^sketchBits registers. p=10 gives
	// a ~3.2% standard error, plenty for join-cardinality estimation.
	sketchBits      = 10
	sketchRegisters = 1 << sketchBits

	// exactNDVCap bounds the exact distinct-hash set kept alongside the
	// sketch. Below the cap NDV is exact (and NDVExact is set), which the
	// group-by pushdown's uniqueness test depends on; above it the
	// builder drops the set and reports the sketch estimate.
	exactNDVCap = 8192

	// histSampleCap bounds the per-column reservoir used to build the
	// equi-depth histogram.
	histSampleCap = 4096
	// histBuckets is the number of equi-depth buckets built from the
	// reservoir (fewer if the sample is small).
	histBuckets = 64
)

// NDVSketch is a fixed-size HyperLogLog register array fed with
// types.Hash values. It is a plain value type: Clone for snapshots,
// Merge to combine per-fragment sketches.
type NDVSketch struct {
	Regs []uint8
}

// NewNDVSketch allocates an empty sketch.
func NewNDVSketch() *NDVSketch {
	return &NDVSketch{Regs: make([]uint8, sketchRegisters)}
}

// mix is a 64-bit finalizer (splitmix64) applied over types.Hash output;
// FNV alone does not disperse its low bits well enough for register
// selection on sequential keys.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add observes one hashed value.
func (s *NDVSketch) Add(h uint64) {
	h = mix(h)
	idx := h >> (64 - sketchBits)
	rest := h<<sketchBits | 1<<(sketchBits-1) // avoid rank 0 on zero remainder
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > s.Regs[idx] {
		s.Regs[idx] = rank
	}
}

// Merge folds another sketch into s (register-wise max).
func (s *NDVSketch) Merge(o *NDVSketch) {
	if o == nil {
		return
	}
	for i, r := range o.Regs {
		if r > s.Regs[i] {
			s.Regs[i] = r
		}
	}
}

// Clone deep-copies the sketch.
func (s *NDVSketch) Clone() *NDVSketch {
	if s == nil {
		return nil
	}
	out := &NDVSketch{Regs: make([]uint8, len(s.Regs))}
	copy(out.Regs, s.Regs)
	return out
}

// Estimate returns the HyperLogLog cardinality estimate with the standard
// linear-counting correction for small ranges.
func (s *NDVSketch) Estimate() int64 {
	m := float64(len(s.Regs))
	if m == 0 {
		return 0
	}
	var sum float64
	zeros := 0
	for _, r := range s.Regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return int64(e + 0.5)
}

// HistBucket is one equi-depth histogram bucket: the estimated number of
// non-null rows with value in (previous bucket's Upper, Upper]. The first
// bucket's lower bound is the column minimum. UpperRows is the estimated
// number of rows exactly equal to Upper — bucket cuts extend through
// duplicate runs, so a heavy hitter becomes its own bucket boundary and its
// mass is carried here, which is what lets FracLT(v) exclude it instead of
// interpolating the whole bucket.
type HistBucket struct {
	Upper     types.Value
	Rows      int64
	UpperRows int64
}

// FracLE estimates the fraction of non-null values <= v. The bool is
// false when the column has no usable distribution info (no histogram and
// no numeric min/max).
func (cs *ColumnStats) FracLE(v types.Value) (float64, bool) {
	return cs.fracBelow(v, true)
}

// FracLT estimates the fraction of non-null values < v.
func (cs *ColumnStats) FracLT(v types.Value) (float64, bool) {
	return cs.fracBelow(v, false)
}

func (cs *ColumnStats) fracBelow(v types.Value, inclusive bool) (float64, bool) {
	if cs == nil || v.IsNull() {
		return 0, false
	}
	if len(cs.Hist) == 0 {
		// No histogram: linear interpolation between min and max for
		// numeric kinds, otherwise give up.
		lo, lok := numeric(cs.Min)
		hi, hok := numeric(cs.Max)
		x, xok := numeric(v)
		if !lok || !hok || !xok {
			return 0, false
		}
		if x < lo {
			return 0, true
		}
		if x >= hi {
			return 1, true
		}
		if hi == lo {
			return 0.5, true
		}
		return (x - lo) / (hi - lo), true
	}
	var total, below int64
	for _, b := range cs.Hist {
		total += b.Rows
	}
	if total == 0 {
		return 0, false
	}
	lower := cs.Min
	for _, b := range cs.Hist {
		c := types.Compare(v, b.Upper)
		if c > 0 || (c == 0 && inclusive) {
			below += b.Rows
			lower = b.Upper
			continue
		}
		if c == 0 {
			// Exclusive comparison against the bucket's upper bound: the
			// whole bucket except the rows equal to it.
			below += b.Rows - b.UpperRows
			break
		}
		// v falls strictly inside this bucket: interpolate numerically over
		// the sub-upper mass when possible, otherwise assume the midpoint.
		frac := 0.5
		lo, lok := numeric(lower)
		hi, hok := numeric(b.Upper)
		x, xok := numeric(v)
		if lok && hok && xok && hi > lo {
			frac = (x - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
		}
		below += int64(frac * float64(b.Rows-b.UpperRows))
		break
	}
	f := float64(below) / float64(total)
	if f > 1 {
		f = 1
	}
	return f, true
}

// numeric maps a value onto the real line for interpolation.
func numeric(v types.Value) (float64, bool) {
	switch v.K {
	case types.KindInt, types.KindDate:
		return float64(v.I), true
	case types.KindFloat:
		return v.F, true
	case types.KindBool:
		if v.I != 0 {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// StatsBuilder accumulates table statistics one row at a time in bounded
// memory: per column a min/max, null count, NDV sketch (plus an exact
// distinct-hash set up to exactNDVCap), average width, and a reservoir
// sample that Finish turns into an equi-depth histogram.
type StatsBuilder struct {
	sch  types.Schema
	rows int64
	cols []*colBuilder
}

type colBuilder struct {
	nulls    int64
	min, max types.Value
	sketch   *NDVSketch
	exact    map[uint64]struct{} // nil once exactNDVCap is exceeded
	widthSum int64
	seen     int64 // non-null values observed (reservoir stream length)
	sample   []types.Value
	rng      uint64
}

// NewStatsBuilder starts a builder for the given schema.
func NewStatsBuilder(sch types.Schema) *StatsBuilder {
	b := &StatsBuilder{sch: sch, cols: make([]*colBuilder, len(sch.Cols))}
	for i := range b.cols {
		b.cols[i] = &colBuilder{
			sketch: NewNDVSketch(),
			exact:  map[uint64]struct{}{},
			// Deterministic per-column seed: stats (and therefore plans)
			// must be reproducible across runs.
			rng: 0x9e3779b97f4a7c15 ^ uint64(i+1)*0xbf58476d1ce4e5b9,
		}
	}
	return b
}

// next is a xorshift64* step for reservoir sampling.
func (c *colBuilder) next() uint64 {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return x * 0x2545f4914f6cdd1d
}

// Add observes one row.
func (b *StatsBuilder) Add(r types.Row) {
	b.rows++
	for i, c := range b.cols {
		if i >= len(r) {
			break
		}
		v := r[i]
		if v.IsNull() {
			c.nulls++
			continue
		}
		h := types.Hash(v)
		c.sketch.Add(h)
		if c.exact != nil {
			c.exact[h] = struct{}{}
			if len(c.exact) > exactNDVCap {
				c.exact = nil
			}
		}
		if c.min.IsNull() || types.Compare(v, c.min) < 0 {
			c.min = v
		}
		if c.max.IsNull() || types.Compare(v, c.max) > 0 {
			c.max = v
		}
		if v.K == types.KindString {
			c.widthSum += int64(len(v.S))
		} else {
			c.widthSum += 8
		}
		// Reservoir sampling (algorithm R) for the histogram.
		c.seen++
		if len(c.sample) < histSampleCap {
			c.sample = append(c.sample, v)
		} else if j := c.next() % uint64(c.seen); j < histSampleCap {
			c.sample[j] = v
		}
	}
}

// Rows returns the number of rows observed so far.
func (b *StatsBuilder) Rows() int64 { return b.rows }

// Finish produces the table statistics from everything observed so far.
// The builder stays usable: more rows may be added and Finish called again
// (incremental load-time statistics), since sorting the reservoir for the
// histogram only permutes it and replacement stays uniform.
func (b *StatsBuilder) Finish() *TableStats {
	s := &TableStats{RowCount: b.rows, Cols: map[string]*ColumnStats{}}
	for i, col := range b.sch.Cols {
		c := b.cols[i]
		cs := &ColumnStats{
			Min:       c.min,
			Max:       c.max,
			NullCount: c.nulls,
			Sketch:    c.sketch,
		}
		if c.exact != nil {
			cs.NDV = int64(len(c.exact))
			cs.NDVExact = true
		} else {
			cs.NDV = c.sketch.Estimate()
		}
		if c.seen > 0 {
			cs.AvgWidth = float64(c.widthSum) / float64(c.seen)
		}
		cs.Hist = equiDepth(c.sample, c.seen)
		s.Cols[strings.ToLower(col.Name)] = cs
	}
	return s
}

// equiDepth sorts the reservoir and cuts it into histBuckets buckets whose
// Rows counts are scaled from the sample up to the full non-null count.
func equiDepth(sample []types.Value, total int64) []HistBucket {
	n := len(sample)
	if n < 2 {
		return nil
	}
	sort.Slice(sample, func(i, j int) bool { return types.Compare(sample[i], sample[j]) < 0 })
	nb := histBuckets
	if n < nb {
		nb = n
	}
	out := make([]HistBucket, 0, nb)
	scale := float64(total) / float64(n)
	prevEnd := 0
	for b := 1; b <= nb; b++ {
		end := n * b / nb
		if end <= prevEnd {
			continue
		}
		// Extend the bucket through duplicates of its upper bound so
		// bucket boundaries are distinct values.
		upper := sample[end-1]
		for end < n && types.Compare(sample[end], upper) == 0 {
			end++
		}
		// Count the duplicate run of the upper bound inside the bucket
		// (sorted, so it is the bucket's tail).
		firstEq := end - 1
		for firstEq > prevEnd && types.Compare(sample[firstEq-1], upper) == 0 {
			firstEq--
		}
		out = append(out, HistBucket{
			Upper:     upper,
			Rows:      int64(float64(end-prevEnd)*scale + 0.5),
			UpperRows: int64(float64(end-firstEq)*scale + 0.5),
		})
		prevEnd = end
		if end >= n {
			break
		}
	}
	return out
}
