package catalog

import (
	"testing"

	"repro/internal/types"
)

func custDef() *TableDef {
	return &TableDef{
		Name: "customer",
		Schema: types.NewSchema(
			types.Column{Name: "c_custkey", Kind: types.KindInt},
			types.Column{Name: "c_name", Kind: types.KindString},
			types.Column{Name: "c_nationkey", Kind: types.KindInt},
		),
		Part: Partitioning{Kind: PartHash, Cols: []string{"c_custkey"}},
	}
}

func TestCreateLookupDrop(t *testing.T) {
	c := New()
	if err := c.CreateTable(custDef()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(custDef()); err == nil {
		t.Error("duplicate create should fail")
	}
	tbl, err := c.Table("CUSTOMER") // case-insensitive
	if err != nil || tbl.Name != "customer" {
		t.Fatalf("lookup: %v %v", tbl, err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("missing table should fail")
	}
	if err := c.DropTable("customer"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("customer"); err == nil {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("customer"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCreateTableValidation(t *testing.T) {
	c := New()
	bad := custDef()
	bad.Part.Cols = []string{"missing_col"}
	if err := c.CreateTable(bad); err == nil {
		t.Error("partition column not in schema should fail")
	}
	bad2 := custDef()
	bad2.Schema = types.Schema{}
	if err := c.CreateTable(bad2); err == nil {
		t.Error("empty schema should fail")
	}
	bad3 := custDef()
	bad3.Part.Cols = nil
	if err := c.CreateTable(bad3); err == nil {
		t.Error("hash partitioning without columns should fail")
	}
}

func TestHashPartitionPlacement(t *testing.T) {
	def := custDef()
	const workers = 4
	counts := make([]int, workers)
	for i := int64(0); i < 1000; i++ {
		r := types.Row{types.NewInt(i), types.NewString("x"), types.NewInt(i % 25)}
		nodes, err := def.NodeFor(r, workers)
		if err != nil || len(nodes) != 1 {
			t.Fatalf("NodeFor: %v %v", nodes, err)
		}
		counts[nodes[0]]++
		// Placement must be deterministic.
		again, _ := def.NodeFor(r, workers)
		if again[0] != nodes[0] {
			t.Fatal("placement not deterministic")
		}
	}
	for w, n := range counts {
		if n < 150 || n > 350 {
			t.Errorf("worker %d holds %d of 1000 rows — poor balance", w, n)
		}
	}
}

func TestRangePartitionPlacement(t *testing.T) {
	def := custDef()
	def.Part = Partitioning{
		Kind:   PartRange,
		Cols:   []string{"c_custkey"},
		Bounds: []types.Value{types.NewInt(100), types.NewInt(200)},
	}
	cases := map[int64]int{50: 0, 99: 0, 100: 1, 150: 1, 200: 2, 999: 2}
	for key, want := range cases {
		r := types.Row{types.NewInt(key), types.NewString("x"), types.NewInt(0)}
		nodes, err := def.NodeFor(r, 3)
		if err != nil || len(nodes) != 1 || nodes[0] != want {
			t.Errorf("key %d → %v (err %v), want node %d", key, nodes, err, want)
		}
	}
}

func TestReplicatedPlacement(t *testing.T) {
	def := custDef()
	def.Part = Partitioning{Kind: PartReplicated}
	nodes, err := def.NodeFor(types.Row{types.NewInt(1), types.NewString("x"), types.NewInt(0)}, 3)
	if err != nil || len(nodes) != 3 {
		t.Fatalf("replicated NodeFor = %v, %v", nodes, err)
	}
}

func TestRangeFragmentPruning(t *testing.T) {
	def := custDef()
	def.Part = Partitioning{
		Kind:   PartRange,
		Cols:   []string{"c_custkey"},
		Bounds: []types.Value{types.NewInt(100), types.NewInt(200)},
	}
	if got := def.RangeFragmentsFor("c_custkey", "=", types.NewInt(150), 3); len(got) != 1 || got[0] != 1 {
		t.Errorf("eq prune = %v", got)
	}
	if got := def.RangeFragmentsFor("c_custkey", "<", types.NewInt(50), 3); len(got) != 1 || got[0] != 0 {
		t.Errorf("lt prune = %v", got)
	}
	if got := def.RangeFragmentsFor("c_custkey", ">", types.NewInt(150), 3); len(got) != 2 {
		t.Errorf("gt prune = %v", got)
	}
	// Wrong column or hash partitioning: no pruning.
	if got := def.RangeFragmentsFor("c_name", "=", types.NewString("a"), 3); got != nil {
		t.Errorf("wrong column should not prune: %v", got)
	}
	h := custDef()
	if got := h.RangeFragmentsFor("c_custkey", "=", types.NewInt(5), 3); got != nil {
		t.Errorf("hash partitioning should not prune: %v", got)
	}
}

func TestIndexes(t *testing.T) {
	c := New()
	c.CreateTable(custDef())
	idx := &IndexDef{Name: "idx_nation", Table: "customer", Cols: []string{"c_nationkey"}, Kind: IndexBTree}
	if err := c.CreateIndex(idx); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(idx); err == nil {
		t.Error("duplicate index should fail")
	}
	if err := c.CreateIndex(&IndexDef{Name: "x", Table: "missing", Cols: []string{"a"}}); err == nil {
		t.Error("index on missing table should fail")
	}
	if err := c.CreateIndex(&IndexDef{Name: "y", Table: "customer", Cols: []string{"nope"}}); err == nil {
		t.Error("index on missing column should fail")
	}
	got := c.IndexesOn("CUSTOMER")
	if len(got) != 1 || got[0].Name != "idx_nation" {
		t.Errorf("IndexesOn = %v", got)
	}
	// Dropping the table drops its indexes.
	c.DropTable("customer")
	if len(c.IndexesOn("customer")) != 0 {
		t.Error("indexes survived table drop")
	}
}

func TestStatsAndCompute(t *testing.T) {
	c := New()
	c.CreateTable(custDef())
	// Default stats for unanalyzed tables.
	def := c.Stats("customer")
	if def.RowCount <= 0 {
		t.Error("default stats should be conservative, not zero")
	}
	rows := []types.Row{
		{types.NewInt(1), types.NewString("alice"), types.NewInt(10)},
		{types.NewInt(2), types.NewString("bob"), types.NewInt(10)},
		{types.NewInt(3), types.NewString("carol"), types.NewInt(20)},
		{types.NewInt(4), types.Null, types.NewInt(20)},
	}
	s := ComputeStats(custDef().Schema, rows)
	if s.RowCount != 4 {
		t.Errorf("rows = %d", s.RowCount)
	}
	ck := s.Cols["c_custkey"]
	if ck.NDV != 4 || ck.Min.Int() != 1 || ck.Max.Int() != 4 {
		t.Errorf("c_custkey stats = %+v", ck)
	}
	nk := s.Cols["c_nationkey"]
	if nk.NDV != 2 {
		t.Errorf("c_nationkey NDV = %d", nk.NDV)
	}
	cn := s.Cols["c_name"]
	if cn.NullCount != 1 || cn.NDV != 3 {
		t.Errorf("c_name stats = %+v", cn)
	}
	c.SetStats("customer", s)
	if got := c.Stats("Customer"); got.RowCount != 4 {
		t.Error("stored stats not returned")
	}
}

func TestSnapshotIndependent(t *testing.T) {
	c := New()
	c.CreateTable(custDef())
	c.SetStats("customer", &TableStats{RowCount: 7, Cols: map[string]*ColumnStats{}})
	v := c.Version()
	snap := c.Snapshot()
	if snap.Version() != v {
		t.Error("snapshot version mismatch")
	}
	// Mutating the snapshot must not affect the original.
	snap.DropTable("customer")
	if _, err := c.Table("customer"); err != nil {
		t.Error("snapshot mutation leaked into original")
	}
	if snap.Stats("customer").RowCount == 7 {
		// Dropped table falls back to defaults in the snapshot.
		t.Error("snapshot stats should be dropped with the table")
	}
}

func TestVersionIncrements(t *testing.T) {
	c := New()
	v0 := c.Version()
	c.CreateTable(custDef())
	if c.Version() <= v0 {
		t.Error("create did not bump version")
	}
	v1 := c.Version()
	c.SetStats("customer", &TableStats{Cols: map[string]*ColumnStats{}})
	if c.Version() <= v1 {
		t.Error("stats update did not bump version")
	}
}
