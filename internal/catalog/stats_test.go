package catalog

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/types"
)

func TestNDVSketchAccuracy(t *testing.T) {
	for _, n := range []int64{100, 10_000, 1_000_000} {
		s := NewNDVSketch()
		for i := int64(0); i < n; i++ {
			s.Add(types.Hash(types.NewInt(i)))
		}
		got := s.Estimate()
		relErr := math.Abs(float64(got-n)) / float64(n)
		// p=10 HLL has ~3.2% standard error; allow 3 sigma.
		if relErr > 0.10 {
			t.Errorf("n=%d: estimate %d, rel err %.1f%%", n, got, 100*relErr)
		}
	}
}

func TestNDVSketchDuplicatesAndMerge(t *testing.T) {
	a, b := NewNDVSketch(), NewNDVSketch()
	for rep := 0; rep < 5; rep++ {
		for i := 0; i < 500; i++ {
			a.Add(types.Hash(types.NewInt(int64(i))))
			b.Add(types.Hash(types.NewInt(int64(i + 250))))
		}
	}
	// Duplicates must not inflate the estimate.
	if got := a.Estimate(); got > 600 {
		t.Errorf("500 distinct with dups estimated as %d", got)
	}
	a.Merge(b)
	got := a.Estimate()
	if got < 600 || got > 850 {
		t.Errorf("merged sketch of 750 distinct estimated as %d", got)
	}
}

func statsSchema() types.Schema {
	return types.Schema{Cols: []types.Column{
		{Name: "k", Kind: types.KindInt},
		{Name: "s", Kind: types.KindString},
	}}
}

func TestStatsBuilderExactSmall(t *testing.T) {
	b := NewStatsBuilder(statsSchema())
	for i := 0; i < 1000; i++ {
		b.Add(types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("v%d", i%10))})
	}
	b.Add(types.Row{types.Null, types.Null})
	ts := b.Finish()
	if ts.RowCount != 1001 {
		t.Fatalf("RowCount = %d", ts.RowCount)
	}
	k := ts.Cols["k"]
	if !k.NDVExact || k.NDV != 1000 {
		t.Errorf("k: NDV=%d exact=%v, want 1000 exact", k.NDV, k.NDVExact)
	}
	if k.NullCount != 1 || k.Min.I != 0 || k.Max.I != 999 {
		t.Errorf("k: nulls=%d min=%v max=%v", k.NullCount, k.Min, k.Max)
	}
	s := ts.Cols["s"]
	if !s.NDVExact || s.NDV != 10 {
		t.Errorf("s: NDV=%d exact=%v, want 10 exact", s.NDV, s.NDVExact)
	}
	if s.AvgWidth < 2 || s.AvgWidth > 3 {
		t.Errorf("s: AvgWidth=%g, want ~2", s.AvgWidth)
	}
}

func TestStatsBuilderSketchBeyondCap(t *testing.T) {
	sch := types.Schema{Cols: []types.Column{{Name: "k", Kind: types.KindInt}}}
	b := NewStatsBuilder(sch)
	n := int64(50_000)
	for i := int64(0); i < n; i++ {
		b.Add(types.Row{types.NewInt(i)})
	}
	cs := b.Finish().Cols["k"]
	if cs.NDVExact {
		t.Fatalf("NDVExact set above the exact cap")
	}
	relErr := math.Abs(float64(cs.NDV-n)) / float64(n)
	if relErr > 0.10 {
		t.Errorf("sketch NDV %d for %d distinct (rel err %.1f%%)", cs.NDV, n, 100*relErr)
	}
	if cs.Sketch == nil {
		t.Error("sketch not retained for merging")
	}
}

func TestHistogramFracLE(t *testing.T) {
	sch := types.Schema{Cols: []types.Column{{Name: "k", Kind: types.KindInt}}}
	b := NewStatsBuilder(sch)
	// Uniform 0..9999: FracLE(v) should be close to (v+1)/10000.
	for i := 0; i < 10_000; i++ {
		b.Add(types.Row{types.NewInt(int64(i))})
	}
	cs := b.Finish().Cols["k"]
	if len(cs.Hist) == 0 {
		t.Fatal("no histogram built")
	}
	for _, v := range []int64{0, 1000, 2500, 5000, 9000, 9999} {
		got, ok := cs.FracLE(types.NewInt(v))
		if !ok {
			t.Fatalf("FracLE(%d) unusable", v)
		}
		want := float64(v+1) / 10_000
		if math.Abs(got-want) > 0.05 {
			t.Errorf("FracLE(%d) = %.3f, want ~%.3f", v, got, want)
		}
	}
	if f, ok := cs.FracLT(types.NewInt(0)); !ok || f > 0.01 {
		t.Errorf("FracLT(min) = %.3f, want ~0", f)
	}
	if f, ok := cs.FracLE(types.NewInt(99_999)); !ok || f < 0.99 {
		t.Errorf("FracLE(beyond max) = %.3f, want 1", f)
	}
}

func TestHistogramSkewedDuplicates(t *testing.T) {
	sch := types.Schema{Cols: []types.Column{{Name: "k", Kind: types.KindInt}}}
	b := NewStatsBuilder(sch)
	// 90% of rows are the value 5, the rest uniform 0..99.
	for i := 0; i < 10_000; i++ {
		if i%10 != 0 {
			b.Add(types.Row{types.NewInt(5)})
		} else {
			b.Add(types.Row{types.NewInt(int64(i % 100))})
		}
	}
	cs := b.Finish().Cols["k"]
	le5, _ := cs.FracLE(types.NewInt(5))
	lt5, _ := cs.FracLT(types.NewInt(5))
	// The heavy value's mass must land between FracLT(5) and FracLE(5).
	if le5-lt5 < 0.5 {
		t.Errorf("FracLE(5)-FracLT(5) = %.3f, want most of the mass", le5-lt5)
	}
}

func TestComputeStatsMatchesBuilder(t *testing.T) {
	sch := statsSchema()
	var rows []types.Row
	for i := 0; i < 500; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i % 37)), types.NewString(fmt.Sprintf("x%d", i))})
	}
	got := ComputeStats(sch, rows)
	b := NewStatsBuilder(sch)
	for _, r := range rows {
		b.Add(r)
	}
	want := b.Finish()
	if got.RowCount != want.RowCount {
		t.Fatalf("RowCount %d vs %d", got.RowCount, want.RowCount)
	}
	for name, wc := range want.Cols {
		gc := got.Cols[name]
		if gc == nil {
			t.Fatalf("missing column %s", name)
		}
		if gc.NDV != wc.NDV || gc.NDVExact != wc.NDVExact || gc.NullCount != wc.NullCount {
			t.Errorf("%s: ComputeStats and StatsBuilder disagree: %+v vs %+v", name, gc, wc)
		}
	}
}
