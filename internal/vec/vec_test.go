package vec

import (
	"testing"

	"repro/internal/types"
)

func testSchema() types.Schema {
	return types.Schema{Cols: []types.Column{
		{Name: "i", Kind: types.KindInt},
		{Name: "f", Kind: types.KindFloat},
		{Name: "s", Kind: types.KindString},
		{Name: "d", Kind: types.KindDate},
	}}
}

func testRows(n int) []types.Row {
	words := []string{"alpha", "beta", "gamma"}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		r := types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(float64(i) / 4),
			types.NewString(words[i%len(words)]),
			types.NewDate(int64(10000 + i)),
		}
		switch i % 5 {
		case 1:
			r[0] = types.Null
		case 2:
			r[2] = types.Null
		case 3:
			r[1] = types.Null
		}
		rows[i] = r
	}
	return rows
}

// TestFromRowsMaterializeRoundTrip checks that boxing a row set into typed
// slabs and flattening it back is lossless, including NULLs and the
// dictionary-coded string column.
func TestFromRowsMaterializeRoundTrip(t *testing.T) {
	rows := testRows(137)
	b := FromRows(testSchema(), rows, nil)
	if b.N != len(rows) || b.Rows() != len(rows) {
		t.Fatalf("batch rows = %d/%d, want %d", b.N, b.Rows(), len(rows))
	}
	for c, form := range []Form{FormInt, FormFloat, FormStr, FormInt} {
		if b.Cols[c].Form != form {
			t.Fatalf("col %d form = %d, want %d (typed columns must not demote)", c, b.Cols[c].Form, form)
		}
	}
	if b.Cols[2].Dict.Len() != 3 {
		t.Fatalf("dict size = %d, want 3", b.Cols[2].Dict.Len())
	}
	out := b.Materialize(nil)
	if len(out) != len(rows) {
		t.Fatalf("materialized %d rows, want %d", len(out), len(rows))
	}
	for i := range rows {
		if out[i].String() != rows[i].String() {
			t.Fatalf("row %d: got %v, want %v", i, out[i], rows[i])
		}
	}
}

// TestSelectionSemantics: with Sel set, Rows/Index/ReadRow/Materialize see
// only the selected rows, in selection order.
func TestSelectionSemantics(t *testing.T) {
	rows := testRows(20)
	b := FromRows(testSchema(), rows, nil)
	b.Sel = []int32{3, 3, 17, 0}
	if b.Rows() != 4 {
		t.Fatalf("selected rows = %d, want 4", b.Rows())
	}
	out := b.Materialize(nil)
	for k, want := range []int{3, 3, 17, 0} {
		if out[k].String() != rows[want].String() {
			t.Fatalf("selected row %d: got %v, want %v", k, out[k], rows[want])
		}
	}
}

// TestAppendDemotes: appending a kind-mismatched value demotes the column
// to boxed form without losing the already-appended typed values.
func TestAppendDemotes(t *testing.T) {
	var c Col
	c.Kind = types.KindInt
	c.Form = FormInt
	c.Append(types.NewInt(7))
	c.Append(types.Null)
	c.Append(types.NewString("oops"))
	if c.Form != FormBoxed {
		t.Fatalf("form = %d, want FormBoxed after kind mismatch", c.Form)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	want := []types.Value{types.NewInt(7), types.Null, types.NewString("oops")}
	for i, w := range want {
		if got := c.Value(i); got.String() != w.String() {
			t.Fatalf("value %d = %v, want %v", i, got, w)
		}
	}
}

// TestResetKeepsDict: Reset clears rows but keeps the dictionary, so a
// producer reusing a batch does not re-intern its vocabulary.
func TestResetKeepsDict(t *testing.T) {
	b := FromRows(testSchema(), testRows(10), nil)
	d := b.Cols[2].Dict
	n := d.Len()
	b.Reset()
	if b.N != 0 || b.Rows() != 0 {
		t.Fatalf("reset batch has %d rows", b.Rows())
	}
	if b.Cols[2].Dict != d || d.Len() != n {
		t.Fatal("Reset must keep the producer dictionary")
	}
}

// TestDictHashMatchesTypes: the dictionary's cached hash must agree with
// types.Hash so code-level and boxed hash paths partition identically.
func TestDictHashMatchesTypes(t *testing.T) {
	d := NewDict()
	for _, s := range []string{"", "x", "shipped back"} {
		c := d.Code(s)
		if got, want := d.Hash(c), types.Hash(types.NewString(s)); got != want {
			t.Fatalf("dict hash(%q) = %d, want %d", s, got, want)
		}
	}
}

// TestWireRoundTrip: EncodeRows→DecodeRows and EncodeBatch→DecodeRows are
// lossless, including NULL bitmaps, dictionary strings, and selections.
func TestWireRoundTrip(t *testing.T) {
	rows := testRows(67)
	t.Run("rows", func(t *testing.T) {
		got, err := DecodeRows(EncodeRows(nil, rows))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rows) {
			t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
		}
		for i := range rows {
			if got[i].String() != rows[i].String() {
				t.Fatalf("row %d: got %v, want %v", i, got[i], rows[i])
			}
		}
	})
	t.Run("batch-window", func(t *testing.T) {
		b := FromRows(testSchema(), rows, nil)
		got, err := DecodeRows(EncodeBatch(nil, b, 10, 30))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 20 {
			t.Fatalf("decoded %d rows, want 20", len(got))
		}
		for i := range got {
			if got[i].String() != rows[10+i].String() {
				t.Fatalf("row %d: got %v, want %v", i, got[i], rows[10+i])
			}
		}
	})
	t.Run("batch-selection", func(t *testing.T) {
		b := FromRows(testSchema(), rows, nil)
		b.Sel = []int32{5, 1, 66, 5}
		got, err := DecodeRows(EncodeBatch(nil, b, 1, 3))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("decoded %d rows, want 2", len(got))
		}
		for k, want := range []int{1, 66} {
			if got[k].String() != rows[want].String() {
				t.Fatalf("selected row %d: got %v, want %v", k, got[k], rows[want])
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		got, err := DecodeRows(EncodeRows(nil, nil))
		if err != nil || got != nil {
			t.Fatalf("empty roundtrip = %v, %v", got, err)
		}
	})
}

// TestWireColumnarSmaller: the columnar encoding of a repetitive string
// column must beat the row codec's per-value strings — the dictionary is
// the point of sending columns.
func TestWireColumnarSmaller(t *testing.T) {
	var rows []types.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewString([]string{"DELIVER IN PERSON", "COLLECT COD", "TAKE BACK RETURN"}[i%3]),
		})
	}
	colBytes := len(EncodeRows(nil, rows))
	rowBytes := 0
	for _, r := range rows {
		rowBytes += len(types.AppendRow(nil, r))
	}
	if colBytes >= rowBytes/2 {
		t.Fatalf("columnar wire = %d bytes, row wire = %d: expected <1/2", colBytes, rowBytes)
	}
}

// TestDecodeRejectsCorrupt: truncated or garbage payloads must error, not
// panic or fabricate rows.
func TestDecodeRejectsCorrupt(t *testing.T) {
	good := EncodeRows(nil, testRows(10))
	for cut := 1; cut < len(good); cut += 7 {
		if _, err := DecodeRows(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := DecodeRows([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x01}); err == nil {
		t.Fatal("garbage header decoded without error")
	}
}
