package vec

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
)

// Wire format: batches travel column-wise. Compared with the row encoding
// (types.AppendRow: one kind tag byte per value), the columnar layout drops
// the per-value tag, stores floats as raw 8-byte words instead of
// tag+word, packs nulls into a bitmap, and dictionary-codes strings so each
// distinct string is sent once per message. The blob is self-describing —
// the decoder needs no schema:
//
//	uvarint nrows, uvarint ncols
//	per column:
//	  1 byte form, 1 byte kind, 1 byte hasNulls
//	  if hasNulls: ceil(nrows/8) bytes bitmap (bit i of byte i/8 = row i NULL)
//	  payload:
//	    FormInt   nrows × varint (0 at nulls)
//	    FormFloat nrows × 8-byte LE float64 (0 at nulls)
//	    FormStr   uvarint ndict, ndict × (uvarint len + bytes), nrows × uvarint code
//	    FormBoxed nrows × types.AppendValue
//
// LZ4 framing in the network layer composes on top: same-typed adjacent
// bytes compress better than interleaved tagged rows.

// EncodeRows appends the columnar encoding of a row slab to dst. The
// per-column layout is inferred by scanning the slab: a column whose
// non-null values all share one typed-representable kind travels typed,
// anything mixed travels boxed. Every row must have the same width.
func EncodeRows(dst []byte, rows []types.Row) []byte {
	nrows := len(rows)
	ncols := 0
	if nrows > 0 {
		ncols = len(rows[0])
	}
	dst = binary.AppendUvarint(dst, uint64(nrows))
	dst = binary.AppendUvarint(dst, uint64(ncols))
	for j := 0; j < ncols; j++ {
		kind := types.KindNull
		mixed := false
		hasNulls := false
		for _, r := range rows {
			v := r[j]
			if v.K == types.KindNull {
				hasNulls = true
				continue
			}
			if kind == types.KindNull {
				kind = v.K
			} else if v.K != kind {
				mixed = true
				break
			}
		}
		form := FormFor(kind)
		if mixed {
			form = FormBoxed
		}
		if form == FormBoxed {
			dst = append(dst, byte(FormBoxed), byte(kind), 0)
			for _, r := range rows {
				dst = types.AppendValue(dst, r[j])
			}
			continue
		}
		dst = append(dst, byte(form), byte(kind))
		if hasNulls {
			dst = append(dst, 1)
			dst = appendRowNullBitmap(dst, rows, j)
		} else {
			dst = append(dst, 0)
		}
		switch form {
		case FormInt:
			for _, r := range rows {
				dst = binary.AppendVarint(dst, r[j].I)
			}
		case FormFloat:
			for _, r := range rows {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r[j].F))
			}
		case FormStr:
			// Per-message dictionary: codes are local to this blob.
			codes := make([]uint64, nrows)
			index := map[string]uint64{}
			var strs []string
			for i, r := range rows {
				if r[j].K == types.KindNull {
					continue
				}
				c, ok := index[r[j].S]
				if !ok {
					c = uint64(len(strs))
					strs = append(strs, r[j].S)
					index[r[j].S] = c
				}
				codes[i] = c
			}
			dst = binary.AppendUvarint(dst, uint64(len(strs)))
			for _, s := range strs {
				dst = binary.AppendUvarint(dst, uint64(len(s)))
				dst = append(dst, s...)
			}
			for _, c := range codes {
				dst = binary.AppendUvarint(dst, c)
			}
		}
	}
	return dst
}

func appendRowNullBitmap(dst []byte, rows []types.Row, j int) []byte {
	nb := (len(rows) + 7) / 8
	at := len(dst)
	for i := 0; i < nb; i++ {
		dst = append(dst, 0)
	}
	for i, r := range rows {
		if r[j].K == types.KindNull {
			dst[at+i/8] |= 1 << (uint(i) & 7)
		}
	}
	return dst
}

// EncodeBatch appends the columnar encoding of the batch's active rows
// [from, to) (selection-aware positions) to dst, producing the same format
// as EncodeRows. Typed columns are encoded without boxing.
func EncodeBatch(dst []byte, b *Batch, from, to int) []byte {
	nrows := to - from
	ncols := len(b.Cols)
	dst = binary.AppendUvarint(dst, uint64(nrows))
	dst = binary.AppendUvarint(dst, uint64(ncols))
	for j := 0; j < ncols; j++ {
		c := &b.Cols[j]
		if c.Form == FormBoxed {
			dst = append(dst, byte(FormBoxed), byte(c.Kind), 0)
			for x := from; x < to; x++ {
				dst = types.AppendValue(dst, c.Vals[b.Index(x)])
			}
			continue
		}
		dst = append(dst, byte(c.Form), byte(c.Kind))
		hasNulls := false
		for x := from; x < to; x++ {
			if GetBit(c.Nulls, b.Index(x)) {
				hasNulls = true
				break
			}
		}
		if hasNulls {
			dst = append(dst, 1)
			nb := (nrows + 7) / 8
			at := len(dst)
			for i := 0; i < nb; i++ {
				dst = append(dst, 0)
			}
			for x := from; x < to; x++ {
				if GetBit(c.Nulls, b.Index(x)) {
					i := x - from
					dst[at+i/8] |= 1 << (uint(i) & 7)
				}
			}
		} else {
			dst = append(dst, 0)
		}
		switch c.Form {
		case FormInt:
			for x := from; x < to; x++ {
				dst = binary.AppendVarint(dst, c.I[b.Index(x)])
			}
		case FormFloat:
			for x := from; x < to; x++ {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.F[b.Index(x)]))
			}
		case FormStr:
			// Remap the producer dictionary (which spans the whole stream)
			// to a message-local dictionary covering only the rows sent.
			local := map[int32]uint64{}
			var strs []string
			codes := make([]uint64, 0, nrows)
			for x := from; x < to; x++ {
				i := b.Index(x)
				if GetBit(c.Nulls, i) {
					codes = append(codes, 0)
					continue
				}
				lc, ok := local[c.Codes[i]]
				if !ok {
					lc = uint64(len(strs))
					strs = append(strs, c.Dict.Str(c.Codes[i]))
					local[c.Codes[i]] = lc
				}
				codes = append(codes, lc)
			}
			dst = binary.AppendUvarint(dst, uint64(len(strs)))
			for _, s := range strs {
				dst = binary.AppendUvarint(dst, uint64(len(s)))
				dst = append(dst, s...)
			}
			for _, cc := range codes {
				dst = binary.AppendUvarint(dst, cc)
			}
		}
	}
	return dst
}

// DecodeRows decodes one columnar blob back into boxed rows. Row values are
// allocated in one flat array, so the rows satisfy the retainable-value
// half of the slab contract.
func DecodeRows(data []byte) ([]types.Row, error) {
	pos := 0
	nrows64, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("vec: truncated batch header")
	}
	pos += n
	ncols64, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("vec: truncated batch header")
	}
	pos += n
	nrows, ncols := int(nrows64), int(ncols64)
	if nrows == 0 {
		return nil, nil
	}
	vals := make([]types.Value, nrows*ncols)
	rows := make([]types.Row, nrows)
	for i := range rows {
		rows[i] = vals[i*ncols : (i+1)*ncols : (i+1)*ncols]
	}
	for j := 0; j < ncols; j++ {
		if pos+3 > len(data) {
			return nil, fmt.Errorf("vec: truncated column header")
		}
		form, kind, hasNulls := Form(data[pos]), types.Kind(data[pos+1]), data[pos+2] != 0
		pos += 3
		var nulls []byte
		if hasNulls {
			nb := (nrows + 7) / 8
			if pos+nb > len(data) {
				return nil, fmt.Errorf("vec: truncated null bitmap")
			}
			nulls = data[pos : pos+nb]
			pos += nb
		}
		isNull := func(i int) bool {
			return nulls != nil && nulls[i/8]&(1<<(uint(i)&7)) != 0
		}
		switch form {
		case FormInt:
			for i := 0; i < nrows; i++ {
				x, n := binary.Varint(data[pos:])
				if n <= 0 {
					return nil, fmt.Errorf("vec: truncated int column")
				}
				pos += n
				if !isNull(i) {
					rows[i][j] = types.Value{K: kind, I: x}
				}
			}
		case FormFloat:
			for i := 0; i < nrows; i++ {
				if pos+8 > len(data) {
					return nil, fmt.Errorf("vec: truncated float column")
				}
				if !isNull(i) {
					rows[i][j] = types.Value{K: types.KindFloat, F: math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))}
				}
				pos += 8
			}
		case FormStr:
			ndict64, n := binary.Uvarint(data[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("vec: truncated dictionary")
			}
			pos += n
			strs := make([]string, int(ndict64))
			for d := range strs {
				slen, n := binary.Uvarint(data[pos:])
				if n <= 0 || pos+n+int(slen) > len(data) {
					return nil, fmt.Errorf("vec: truncated dictionary entry")
				}
				pos += n
				strs[d] = string(data[pos : pos+int(slen)])
				pos += int(slen)
			}
			for i := 0; i < nrows; i++ {
				c, n := binary.Uvarint(data[pos:])
				if n <= 0 {
					return nil, fmt.Errorf("vec: truncated code column")
				}
				pos += n
				if !isNull(i) {
					if c >= uint64(len(strs)) {
						return nil, fmt.Errorf("vec: dictionary code %d out of range", c)
					}
					rows[i][j] = types.Value{K: types.KindString, S: strs[c]}
				}
			}
		case FormBoxed:
			for i := 0; i < nrows; i++ {
				v, n, err := types.DecodeValue(data[pos:])
				if err != nil {
					return nil, fmt.Errorf("vec: boxed column: %w", err)
				}
				pos += n
				rows[i][j] = v
			}
		default:
			return nil, fmt.Errorf("vec: unknown column form %d", form)
		}
	}
	return rows, nil
}
