// Package vec defines the typed columnar batch format of the vectorized
// execution path: per-column unboxed slabs ([]int64, []float64, dictionary
// codes for strings), a null bitmap, and a selection vector. Batches are
// produced straight from PAX column pages without materializing boxed
// types.Value structs, so kernels (filter, project, aggregate, join) run
// tight loops over flat arrays.
//
// # Ownership contract
//
// A *Batch returned by a producer's NextVec — including every column slab,
// the null bitmaps, and the selection vector — is owned by the caller only
// until the producer's next NextVec or Close call; producers reuse the
// backing arrays. Callers may rewrite Sel in place (that is how filters
// work) but must treat column slabs as read-only. Boxed values copied out
// via Col.Value are immutable and may be retained; the slabs and Sel may
// not. The vecown lint rule enforces the non-retention half of this.
package vec

import "repro/internal/types"

// Form identifies the physical layout of one column.
type Form uint8

// Column layouts.
const (
	// FormBoxed stores boxed types.Value — the fallback for columns whose
	// schema kind is unknown (KindNull) or whose values turn out mixed-kind
	// at runtime (e.g. the $min/$max partial-aggregate columns).
	FormBoxed Form = iota
	// FormInt stores the int64 payload of INT, DATE, and BOOLEAN values.
	FormInt
	// FormFloat stores float64 payloads.
	FormFloat
	// FormStr stores int32 codes into a per-column dictionary.
	FormStr
)

// FormFor returns the natural layout for a schema kind.
func FormFor(k types.Kind) Form {
	switch k {
	case types.KindInt, types.KindDate, types.KindBool:
		return FormInt
	case types.KindFloat:
		return FormFloat
	case types.KindString:
		return FormStr
	default:
		return FormBoxed
	}
}

// Dict is an append-only string dictionary. A producer owns one Dict per
// string column and keeps it for the whole stream, so codes are stable
// across batches and consumers may compare by code whenever two columns
// share the same *Dict.
type Dict struct {
	strs   []string
	index  map[string]int32
	hashes []uint64 // lazily filled; hashes[c] == types.Hash of strs[c]
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{index: make(map[string]int32)} }

// Code interns s, returning its stable code.
func (d *Dict) Code(s string) int32 {
	if c, ok := d.index[s]; ok {
		return c
	}
	c := int32(len(d.strs))
	d.strs = append(d.strs, s)
	d.index[s] = c
	return c
}

// CodeBytes interns the bytes as a string, returning its stable code. The
// lookup of an already-interned entry does not allocate (the compiler
// elides the []byte→string conversion in a map index expression); only a
// first-seen entry copies the bytes. This is the typed page decoders' hot
// path: one map probe per cell, no boxing.
func (d *Dict) CodeBytes(b []byte) int32 {
	if c, ok := d.index[string(b)]; ok {
		return c
	}
	s := string(b)
	c := int32(len(d.strs))
	d.strs = append(d.strs, s)
	d.index[s] = c
	return c
}

// Lookup returns the code of s without interning it.
func (d *Dict) Lookup(s string) (int32, bool) {
	c, ok := d.index[s]
	return c, ok
}

// Str returns the string for a code.
func (d *Dict) Str(c int32) string { return d.strs[c] }

// Len returns the number of distinct entries.
func (d *Dict) Len() int { return len(d.strs) }

// Hash returns types.Hash of the entry, cached per code so hash joins and
// aggregations hash each distinct string once per stream.
func (d *Dict) Hash(c int32) uint64 {
	for len(d.hashes) < len(d.strs) {
		d.hashes = append(d.hashes, types.Hash(types.NewString(d.strs[len(d.hashes)])))
	}
	return d.hashes[c]
}

// Col is one column of a batch. Exactly one payload slice is active,
// selected by Form; null positions hold the zero element there and are
// marked in the Nulls bitmap (nil bitmap = no nulls). FormBoxed columns
// carry NULL inside Vals and ignore the bitmap.
type Col struct {
	Kind  types.Kind
	Form  Form
	I     []int64
	F     []float64
	Codes []int32
	Dict  *Dict
	Vals  []types.Value
	Nulls []uint64
}

// SetBit sets bit i, growing the word slice as needed.
func SetBit(bm []uint64, i int) []uint64 {
	w := i >> 6
	for len(bm) <= w {
		bm = append(bm, 0)
	}
	bm[w] |= 1 << (uint(i) & 63)
	return bm
}

// GetBit reports bit i (false beyond the slice, matching "no nulls").
func GetBit(bm []uint64, i int) bool {
	w := i >> 6
	return w < len(bm) && bm[w]&(1<<(uint(i)&63)) != 0
}

// Len returns the number of values appended to the column.
func (c *Col) Len() int {
	switch c.Form {
	case FormInt:
		return len(c.I)
	case FormFloat:
		return len(c.F)
	case FormStr:
		return len(c.Codes)
	default:
		return len(c.Vals)
	}
}

// IsNull reports whether position i is SQL NULL.
func (c *Col) IsNull(i int) bool {
	if c.Form == FormBoxed {
		return c.Vals[i].K == types.KindNull
	}
	return GetBit(c.Nulls, i)
}

// HasNulls reports whether any appended position is NULL.
func (c *Col) HasNulls() bool {
	if c.Form == FormBoxed {
		for _, v := range c.Vals {
			if v.K == types.KindNull {
				return true
			}
		}
		return false
	}
	for _, w := range c.Nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

// Value boxes position i. The result is immutable and safe to retain.
func (c *Col) Value(i int) types.Value {
	if c.Form != FormBoxed && GetBit(c.Nulls, i) {
		return types.Null
	}
	switch c.Form {
	case FormInt:
		return types.Value{K: c.Kind, I: c.I[i]}
	case FormFloat:
		return types.Value{K: types.KindFloat, F: c.F[i]}
	case FormStr:
		return types.Value{K: types.KindString, S: c.Dict.Str(c.Codes[i])}
	default:
		return c.Vals[i]
	}
}

// Append appends one value. A value whose kind does not match the column's
// typed layout demotes the whole column to FormBoxed (the safety net that
// keeps adapters total: mixed-kind streams stay correct, just slower).
func (c *Col) Append(v types.Value) {
	i := c.Len()
	if v.K == types.KindNull {
		switch c.Form {
		case FormInt:
			c.Nulls = SetBit(c.Nulls, i)
			c.I = append(c.I, 0)
		case FormFloat:
			c.Nulls = SetBit(c.Nulls, i)
			c.F = append(c.F, 0)
		case FormStr:
			c.Nulls = SetBit(c.Nulls, i)
			c.Codes = append(c.Codes, 0)
		default:
			c.Vals = append(c.Vals, types.Null)
		}
		return
	}
	switch c.Form {
	case FormInt:
		if v.K == c.Kind {
			c.I = append(c.I, v.I)
			return
		}
	case FormFloat:
		if v.K == types.KindFloat {
			c.F = append(c.F, v.F)
			return
		}
	case FormStr:
		if v.K == types.KindString {
			c.Codes = append(c.Codes, c.Dict.Code(v.S))
			return
		}
	default:
		c.Vals = append(c.Vals, v)
		return
	}
	c.demote(i)
	c.Vals = append(c.Vals, v)
}

// AppendInt appends a non-null fixed-width payload (Int/Date/Bool) without
// boxing. Callers must only use it on FormInt columns of the matching kind.
func (c *Col) AppendInt(x int64) { c.I = append(c.I, x) }

// AppendFloat appends a non-null float payload without boxing.
func (c *Col) AppendFloat(x float64) { c.F = append(c.F, x) }

// AppendCode appends a dictionary code minted from this column's Dict.
func (c *Col) AppendCode(code int32) { c.Codes = append(c.Codes, code) }

// AppendNull appends a NULL.
func (c *Col) AppendNull() { c.Append(types.Null) }

// demote rewrites the first n typed entries as boxed values.
func (c *Col) demote(n int) {
	vals := make([]types.Value, n)
	for i := 0; i < n; i++ {
		vals[i] = c.Value(i)
	}
	c.Form = FormBoxed
	c.Vals = vals
	c.I, c.F, c.Codes, c.Dict, c.Nulls = nil, nil, nil, nil, nil
}

// reset truncates the column for reuse, keeping backing arrays and the
// dictionary (codes stay stable across the producer's stream).
func (c *Col) reset() {
	c.I = c.I[:0]
	c.F = c.F[:0]
	c.Codes = c.Codes[:0]
	c.Vals = c.Vals[:0]
	c.Nulls = c.Nulls[:0]
}

// Batch is one vectorized batch: N appended rows across Cols, with an
// optional selection vector. Sel == nil means all N rows are active;
// otherwise Sel lists the active row indices in order. Filters narrow a
// batch by rewriting Sel only — the column slabs are never compacted.
type Batch struct {
	Sch  types.Schema
	Cols []Col
	N    int
	Sel  []int32
}

// New returns an empty batch laid out for the schema. String columns get a
// fresh dictionary owned by this batch's producer.
func New(sch types.Schema) *Batch {
	b := &Batch{Sch: sch, Cols: make([]Col, sch.Len())}
	for i, sc := range sch.Cols {
		b.Cols[i].Kind = sc.Kind
		b.Cols[i].Form = FormFor(sc.Kind)
		if b.Cols[i].Form == FormStr {
			b.Cols[i].Dict = NewDict()
		}
	}
	return b
}

// Rows returns the number of active rows (selection-aware).
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Index maps the k-th active row to its physical row index.
func (b *Batch) Index(k int) int {
	if b.Sel != nil {
		return int(b.Sel[k])
	}
	return k
}

// Reset truncates the batch for reuse: columns empty, no selection,
// dictionaries retained.
func (b *Batch) Reset() {
	for i := range b.Cols {
		b.Cols[i].reset()
	}
	b.N = 0
	b.Sel = nil
}

// AppendRow appends one boxed row.
func (b *Batch) AppendRow(r types.Row) {
	for i := range b.Cols {
		b.Cols[i].Append(r[i])
	}
	b.N++
}

// FromRows appends rows into dst, allocating a batch when dst is nil.
// The returned batch has no selection.
func FromRows(sch types.Schema, rows []types.Row, dst *Batch) *Batch {
	if dst == nil {
		dst = New(sch)
	} else {
		dst.Reset()
	}
	for _, r := range rows {
		dst.AppendRow(r)
	}
	return dst
}

// ReadRow boxes the physical row i into scratch (len == number of columns)
// and returns it. The scratch row must not outlive the batch unless its
// values are copied out (values themselves are immutable).
func (b *Batch) ReadRow(i int, scratch types.Row) types.Row {
	for c := range b.Cols {
		scratch[c] = b.Cols[c].Value(i)
	}
	return scratch
}

// Materialize boxes the active rows into slab (reusing its backing array),
// allocating one flat value array so rows stay retainable by callers under
// the row-slab contract.
func (b *Batch) Materialize(slab []types.Row) []types.Row {
	n := b.Rows()
	k := len(b.Cols)
	slab = slab[:0]
	if n == 0 {
		return slab
	}
	vals := make([]types.Value, n*k)
	for x := 0; x < n; x++ {
		i := b.Index(x)
		row := vals[x*k : (x+1)*k : (x+1)*k]
		for c := range b.Cols {
			row[c] = b.Cols[c].Value(i)
		}
		slab = append(slab, row)
	}
	return slab
}
