package vec

// Bitmap is a growable bit set over the same word layout Col.Nulls uses
// (see SetBit/GetBit). The typed page decoders take one so they can mark
// NULL slab positions while appending, and roll the marks back when a page
// turns out to need the boxed fallback; Col code keeps using the raw
// []uint64 field directly.
type Bitmap struct {
	Words []uint64
}

// Set sets bit i, growing the word slice as needed.
func (b *Bitmap) Set(i int) { b.Words = SetBit(b.Words, i) }

// Get reports bit i (false beyond the slice).
func (b *Bitmap) Get(i int) bool { return GetBit(b.Words, i) }

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.Words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Truncate clears every bit at position >= n, so a decoder that appended
// past n can roll its null marks back to a snapshot length.
func (b *Bitmap) Truncate(n int) {
	full := n >> 6
	for i := full + 1; i < len(b.Words); i++ {
		b.Words[i] = 0
	}
	if full < len(b.Words) {
		if r := uint(n & 63); r != 0 {
			b.Words[full] &= (1 << r) - 1
		} else {
			b.Words[full] = 0
		}
	}
}
