package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/types"
)

// Parser is a recursive-descent SQL parser over the lexer's tokens.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses one SQL statement.
func Parse(sql string) (Stmt, error) {
	toks, err := Lex(sql)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return stmt, nil
}

// ParseSelect parses a SELECT statement specifically.
func ParseSelect(sql string) (*Select, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("sql: not a SELECT statement")
	}
	return sel, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *Parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		return t, p.errf("expected %q, found %q", text, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: pos %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(TokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(TokKeyword, "EXPLAIN"):
		p.pos++
		analyze := false
		if p.at(TokKeyword, "ANALYZE") {
			p.pos++
			analyze = true
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Query: sel, Analyze: analyze}, nil
	case p.at(TokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(TokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(TokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(TokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(TokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(TokKeyword, "ANALYZE"):
		p.pos++
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &Analyze{Table: name}, nil
	case p.at(TokKeyword, "REORGANIZE"):
		p.pos++
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &Reorganize{Table: name}, nil
	default:
		return nil, p.errf("unexpected token %q at statement start", p.cur().Text)
	}
}

func (p *Parser) parseIdent() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, found %q", t.Text)
	}
	p.pos++
	return t.Text, nil
}

// parseSelect parses a full SELECT.
func (p *Parser) parseSelect() (*Select, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.accept(TokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			item := OrderItem{}
			if p.cur().Kind == TokNumber && (p.peek().Kind != TokOp || isOrderTerminator(p.peek().Text)) {
				n, _ := strconv.Atoi(p.cur().Text)
				item.Position = n
				p.pos++
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Expr = e
			}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t := p.cur()
		if t.Kind != TokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.Text)
		}
		sel.Limit = n
		p.pos++
		if p.accept(TokKeyword, "OFFSET") {
			t := p.cur()
			if t.Kind != TokNumber {
				return nil, p.errf("expected number after OFFSET")
			}
			o, err := strconv.ParseInt(t.Text, 10, 64)
			if err != nil {
				return nil, p.errf("bad OFFSET %q", t.Text)
			}
			sel.Offset = o
			p.pos++
		}
	}
	return sel, nil
}

func isOrderTerminator(op string) bool {
	return op == "," || op == ")" || op == ";"
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: ident.*
	if p.cur().Kind == TokIdent && p.peek().Kind == TokOp && p.peek().Text == "." {
		save := p.pos
		qual := p.cur().Text
		p.pos += 2
		if p.accept(TokOp, "*") {
			return SelectItem{Star: true, Qualifier: qual}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		a, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().Kind == TokIdent {
		item.Alias = p.cur().Text
		p.pos++
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	if p.accept(TokOp, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Subquery: sub}
		p.accept(TokKeyword, "AS")
		if p.cur().Kind == TokIdent {
			ref.Alias = p.cur().Text
			p.pos++
		}
		return ref, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	p.accept(TokKeyword, "AS")
	if p.cur().Kind == TokIdent {
		ref.Alias = p.cur().Text
		p.pos++
	}
	return ref, nil
}

// Expression grammar: OR > AND > NOT > predicate > additive >
// multiplicative > unary > primary.

func (p *Parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &expr.Bin{Op: expr.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &expr.Bin{Op: expr.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (expr.Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: e}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	negate := p.accept(TokKeyword, "NOT")
	switch {
	case p.accept(TokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Between{E: left, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.accept(TokKeyword, "LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Like{E: left, Pattern: pat, Negate: negate}, nil
	case p.accept(TokKeyword, "IN"):
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		if p.at(TokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &InSubqueryExpr{E: left, Query: sub, Negate: negate}, nil
		}
		var vals []expr.Expr
		for {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &expr.InList{E: left, Vals: vals, Negate: negate}, nil
	case negate:
		return nil, p.errf("expected BETWEEN, LIKE, or IN after NOT")
	case p.accept(TokKeyword, "IS"):
		neg := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{E: left, Negate: neg}, nil
	}
	// Plain comparison.
	opTok := p.cur()
	if opTok.Kind == TokOp {
		var op expr.BinOp
		switch opTok.Text {
		case "=":
			op = expr.OpEq
		case "<>", "!=":
			op = expr.OpNe
		case "<":
			op = expr.OpLt
		case "<=":
			op = expr.OpLe
		case ">":
			op = expr.OpGt
		case ">=":
			op = expr.OpGe
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Bin{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *Parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		if p.at(TokOp, "+") {
			op = expr.OpAdd
		} else if p.at(TokOp, "-") {
			op = expr.OpSub
		} else {
			return left, nil
		}
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		folded, err := foldIntervalArith(op, left, right)
		if err != nil {
			return nil, err
		}
		left = folded
	}
}

func (p *Parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch {
		case p.at(TokOp, "*"):
			op = expr.OpMul
		case p.at(TokOp, "/"):
			op = expr.OpDiv
		case p.at(TokOp, "%"):
			op = expr.OpMod
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &expr.Bin{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (expr.Expr, error) {
	if p.accept(TokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if c, ok := e.(*expr.Const); ok {
			switch c.V.K {
			case types.KindInt:
				return &expr.Const{V: types.NewInt(-c.V.I)}, nil
			case types.KindFloat:
				return &expr.Const{V: types.NewFloat(-c.V.F)}, nil
			}
		}
		return &expr.Neg{E: e}, nil
	}
	p.accept(TokOp, "+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (expr.Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &expr.Const{V: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &expr.Const{V: types.NewInt(i)}, nil
	case t.Kind == TokString:
		p.pos++
		return &expr.Const{V: types.NewString(t.Text)}, nil
	case p.accept(TokKeyword, "NULL"):
		return &expr.Const{V: types.Null}, nil
	case p.accept(TokKeyword, "TRUE"):
		return &expr.Const{V: types.NewBool(true)}, nil
	case p.accept(TokKeyword, "FALSE"):
		return &expr.Const{V: types.NewBool(false)}, nil
	case p.accept(TokKeyword, "DATE"):
		s := p.cur()
		if s.Kind != TokString {
			return nil, p.errf("expected date string after DATE")
		}
		p.pos++
		v, err := types.DateFromString(s.Text)
		if err != nil {
			return nil, err
		}
		return &expr.Const{V: v}, nil
	case p.accept(TokKeyword, "INTERVAL"):
		s := p.cur()
		if s.Kind != TokString {
			return nil, p.errf("expected quantity string after INTERVAL")
		}
		p.pos++
		n, err := strconv.ParseInt(strings.TrimSpace(s.Text), 10, 64)
		if err != nil {
			return nil, p.errf("bad interval quantity %q", s.Text)
		}
		unit := p.cur()
		if unit.Kind != TokKeyword || (unit.Text != "DAY" && unit.Text != "MONTH" && unit.Text != "YEAR") {
			return nil, p.errf("expected DAY, MONTH, or YEAR")
		}
		p.pos++
		return &intervalExpr{n: n, unit: unit.Text}, nil
	case p.accept(TokKeyword, "CASE"):
		return p.parseCase()
	case p.accept(TokKeyword, "EXISTS"):
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Query: sub}, nil
	case p.accept(TokKeyword, "EXTRACT"):
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		field := p.cur()
		if field.Kind != TokKeyword || (field.Text != "YEAR" && field.Text != "MONTH") {
			return nil, p.errf("EXTRACT supports YEAR and MONTH")
		}
		p.pos++
		if _, err := p.expect(TokKeyword, "FROM"); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &expr.Func{Name: "EXTRACT_" + field.Text, Args: []expr.Expr{arg}}, nil
	case p.accept(TokKeyword, "SUBSTRING"):
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var from, length expr.Expr
		if p.accept(TokKeyword, "FROM") {
			if from, err = p.parseExpr(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "FOR"); err != nil {
				return nil, err
			}
			if length, err = p.parseExpr(); err != nil {
				return nil, err
			}
		} else {
			if _, err := p.expect(TokOp, ","); err != nil {
				return nil, err
			}
			if from, err = p.parseExpr(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ","); err != nil {
				return nil, err
			}
			if length, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &expr.Func{Name: "SUBSTRING", Args: []expr.Expr{arg, from, length}}, nil
	case p.accept(TokOp, "("):
		if p.at(TokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Query: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		return p.parseIdentExpr()
	default:
		return nil, p.errf("unexpected token %q in expression", t.Text)
	}
}

// parseIdentExpr handles column references and function calls.
func (p *Parser) parseIdentExpr() (expr.Expr, error) {
	name, _ := p.parseIdent()
	// Function call.
	if p.at(TokOp, "(") {
		p.pos++
		upper := strings.ToUpper(name)
		if upper == "COUNT" && p.accept(TokOp, "*") {
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &expr.Func{Name: "COUNT_STAR"}, nil
		}
		distinct := p.accept(TokKeyword, "DISTINCT")
		var args []expr.Expr
		if !p.at(TokOp, ")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(TokOp, ",") {
					break
				}
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		if distinct {
			upper += "_DISTINCT"
		}
		return &expr.Func{Name: upper, Args: args}, nil
	}
	// Qualified column.
	if p.at(TokOp, ".") {
		p.pos++
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &expr.Col{Index: -1, Name: name + "." + col}, nil
	}
	return &expr.Col{Index: -1, Name: name}, nil
}

func (p *Parser) parseCase() (expr.Expr, error) {
	c := &expr.Case{}
	for p.accept(TokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, expr.When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.accept(TokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

// intervalExpr is a parse-time-only node for INTERVAL literals; it must be
// folded into date arithmetic before evaluation.
type intervalExpr struct {
	n    int64
	unit string
}

// Eval panics: intervals must be folded at parse time.
func (i *intervalExpr) Eval(types.Row) (types.Value, error) {
	panic("sqlparse: unfolded interval evaluated")
}

// String renders the interval.
func (i *intervalExpr) String() string {
	return fmt.Sprintf("INTERVAL '%d' %s", i.n, i.unit)
}

// foldIntervalArith resolves date ± interval at parse time, using calendar
// arithmetic when the date side is a literal.
func foldIntervalArith(op expr.BinOp, left, right expr.Expr) (expr.Expr, error) {
	iv, rightIsInterval := right.(*intervalExpr)
	if !rightIsInterval {
		if _, leftIsInterval := left.(*intervalExpr); leftIsInterval {
			return nil, fmt.Errorf("sql: interval must appear on the right of +/-")
		}
		return &expr.Bin{Op: op, L: left, R: right}, nil
	}
	if op != expr.OpAdd && op != expr.OpSub {
		return nil, fmt.Errorf("sql: intervals support only + and -")
	}
	sign := int64(1)
	if op == expr.OpSub {
		sign = -1
	}
	if c, ok := left.(*expr.Const); ok && c.V.K == types.KindDate {
		t := c.V.Time()
		switch iv.unit {
		case "DAY":
			t = t.AddDate(0, 0, int(sign*iv.n))
		case "MONTH":
			t = t.AddDate(0, int(sign*iv.n), 0)
		case "YEAR":
			t = t.AddDate(int(sign*iv.n), 0, 0)
		}
		return &expr.Const{V: types.NewDate(t.Unix() / 86400)}, nil
	}
	// Non-literal date: only DAY intervals convert exactly.
	if iv.unit != "DAY" {
		return nil, fmt.Errorf("sql: %s intervals require a literal date", iv.unit)
	}
	return &expr.Bin{Op: op, L: left, R: &expr.Const{V: types.NewInt(iv.n)}}, nil
}

func (p *Parser) parseCreate() (Stmt, error) {
	p.pos++ // CREATE
	switch {
	case p.accept(TokKeyword, "TABLE"):
		return p.parseCreateTable()
	case p.accept(TokKeyword, "INDEX"):
		return p.parseCreateIndex()
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *Parser) parseCreateTable() (Stmt, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name, PartKind: "HASH"}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	for {
		colName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		typeTok := p.cur()
		if typeTok.Kind != TokIdent && typeTok.Kind != TokKeyword {
			return nil, p.errf("expected type for column %s", colName)
		}
		p.pos++
		// Swallow (n) and (p, s) type parameters.
		if p.accept(TokOp, "(") {
			for !p.accept(TokOp, ")") {
				p.pos++
				if p.at(TokEOF, "") {
					return nil, p.errf("unterminated type parameters")
				}
			}
		}
		kind, err := types.ParseKind(typeTok.Text)
		if err != nil {
			return nil, err
		}
		ct.Cols = append(ct.Cols, types.Column{Name: strings.ToLower(colName), Kind: kind})
		if p.accept(TokOp, ",") {
			continue
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		break
	}
	for {
		switch {
		case p.accept(TokKeyword, "PARTITION"):
			if _, err := p.expect(TokKeyword, "BY"); err != nil {
				return nil, err
			}
			switch {
			case p.accept(TokKeyword, "HASH"):
				ct.PartKind = "HASH"
				cols, err := p.parseParenIdentList()
				if err != nil {
					return nil, err
				}
				ct.PartCols = cols
			case p.accept(TokKeyword, "RANGE"):
				ct.PartKind = "RANGE"
				cols, err := p.parseParenIdentList()
				if err != nil {
					return nil, err
				}
				ct.PartCols = cols
				if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
					return nil, err
				}
				if _, err := p.expect(TokOp, "("); err != nil {
					return nil, err
				}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					c, ok := e.(*expr.Const)
					if !ok {
						return nil, p.errf("range bounds must be literals")
					}
					ct.RangeBounds = append(ct.RangeBounds, c.V)
					if !p.accept(TokOp, ",") {
						break
					}
				}
				if _, err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
			case p.accept(TokKeyword, "REPLICATED"):
				ct.PartKind = "REPLICATED"
			default:
				return nil, p.errf("expected HASH, RANGE, or REPLICATED")
			}
		case p.accept(TokKeyword, "COLUMNAR"):
			ct.Columnar = true
		case p.accept(TokKeyword, "CLUSTER"):
			if _, err := p.expect(TokKeyword, "BY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			ct.ClusterCols = cols
		default:
			if len(ct.PartCols) == 0 && ct.PartKind == "HASH" {
				// Default: hash on the first column.
				ct.PartCols = []string{ct.Cols[0].Name}
			}
			return ct, nil
		}
	}
}

func (p *Parser) parseParenIdentList() ([]string, error) {
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, strings.ToLower(c))
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *Parser) parseCreateIndex() (Stmt, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseParenIdentList()
	if err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: table, Cols: cols, Using: "BTREE"}
	if p.accept(TokKeyword, "USING") {
		switch {
		case p.accept(TokKeyword, "BTREE"):
			ci.Using = "BTREE"
		case p.accept(TokKeyword, "SKIPLIST"):
			ci.Using = "SKIPLIST"
		default:
			return nil, p.errf("expected BTREE or SKIPLIST")
		}
	}
	return ci, nil
}

func (p *Parser) parseDrop() (Stmt, error) {
	p.pos++ // DROP
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *Parser) parseInsert() (Stmt, error) {
	p.pos++ // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	for {
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Stmt, error) {
	p.pos++ // UPDATE
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table, Set: map[string]expr.Expr{}}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set[strings.ToLower(col)] = e
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *Parser) parseDelete() (Stmt, error) {
	p.pos++ // DELETE
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}
