package sqlparse

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

func parseSel(t *testing.T, sql string) *Select {
	t.Helper()
	sel, err := ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s' FROM t -- comment\nWHERE x >= 1.5;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if texts[0] != "SELECT" || kinds[0] != TokKeyword {
		t.Errorf("tok0 = %v %q", kinds[0], texts[0])
	}
	if texts[3] != "it's" || kinds[3] != TokString {
		t.Errorf("string tok = %q", texts[3])
	}
	found := false
	for _, tx := range texts {
		if tx == ">=" {
			found = true
		}
	}
	if !found {
		t.Error(">= not lexed as one token")
	}
	if _, err := Lex("select @"); err == nil {
		t.Error("bad char should fail")
	}
	if _, err := Lex("select 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	sel := parseSel(t, "SELECT a, b AS bee FROM t WHERE a > 5 ORDER BY b DESC LIMIT 10 OFFSET 2")
	if len(sel.Items) != 2 || sel.Items[1].Alias != "bee" {
		t.Errorf("items = %+v", sel.Items)
	}
	if len(sel.From) != 1 || sel.From[0].Table != "t" {
		t.Errorf("from = %+v", sel.From)
	}
	if sel.Where == nil || sel.Limit != 10 || sel.Offset != 2 {
		t.Errorf("where/limit/offset = %v %d %d", sel.Where, sel.Limit, sel.Offset)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
}

func TestParseStar(t *testing.T) {
	sel := parseSel(t, "SELECT * FROM t")
	if !sel.Items[0].Star {
		t.Error("star not parsed")
	}
	sel = parseSel(t, "SELECT t.* FROM t")
	if !sel.Items[0].Star || sel.Items[0].Qualifier != "t" {
		t.Errorf("qualified star = %+v", sel.Items[0])
	}
}

func TestParseJoinsAndAliases(t *testing.T) {
	sel := parseSel(t, "SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
	if len(sel.From) != 2 || sel.From[0].Alias != "c" || sel.From[1].Alias != "o" {
		t.Errorf("from = %+v", sel.From)
	}
	b, ok := sel.Where.(*expr.Bin)
	if !ok || b.Op != expr.OpEq {
		t.Fatalf("where = %v", sel.Where)
	}
	if b.L.(*expr.Col).Name != "c.c_custkey" {
		t.Errorf("qualified col = %v", b.L)
	}
}

func TestParseGroupByHaving(t *testing.T) {
	sel := parseSel(t, `SELECT l_returnflag, sum(l_quantity) AS sum_qty, count(*) AS cnt
		FROM lineitem GROUP BY l_returnflag HAVING sum(l_quantity) > 100`)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatalf("groupby/having = %v %v", sel.GroupBy, sel.Having)
	}
	f, ok := sel.Items[1].Expr.(*expr.Func)
	if !ok || f.Name != "SUM" {
		t.Errorf("agg func = %v", sel.Items[1].Expr)
	}
	star, ok := sel.Items[2].Expr.(*expr.Func)
	if !ok || star.Name != "COUNT_STAR" {
		t.Errorf("count(*) = %v", sel.Items[2].Expr)
	}
}

func TestParseCountDistinct(t *testing.T) {
	sel := parseSel(t, "SELECT count(DISTINCT x) FROM t")
	f := sel.Items[0].Expr.(*expr.Func)
	if f.Name != "COUNT_DISTINCT" || len(f.Args) != 1 {
		t.Errorf("count distinct = %v", f)
	}
}

func TestParseDateInterval(t *testing.T) {
	sel := parseSel(t, "SELECT 1 FROM t WHERE d < DATE '1995-01-01' + INTERVAL '3' MONTH")
	b := sel.Where.(*expr.Bin)
	c, ok := b.R.(*expr.Const)
	if !ok || c.V.String() != "1995-04-01" {
		t.Fatalf("folded date = %v", b.R)
	}
	// Year and day intervals.
	sel = parseSel(t, "SELECT 1 FROM t WHERE d >= DATE '1994-02-28' + INTERVAL '1' YEAR")
	if sel.Where.(*expr.Bin).R.(*expr.Const).V.String() != "1995-02-28" {
		t.Error("year interval fold wrong")
	}
	sel = parseSel(t, "SELECT 1 FROM t WHERE d >= DATE '1994-12-30' + INTERVAL '5' DAY")
	if sel.Where.(*expr.Bin).R.(*expr.Const).V.String() != "1995-01-04" {
		t.Error("day interval fold wrong")
	}
	// Non-literal date with DAY interval converts to +days.
	sel = parseSel(t, "SELECT 1 FROM t WHERE l_receiptdate > l_shipdate + INTERVAL '30' DAY")
	rb := sel.Where.(*expr.Bin).R.(*expr.Bin)
	if rb.Op != expr.OpAdd || rb.R.(*expr.Const).V.Int() != 30 {
		t.Errorf("day arith = %v", rb)
	}
	// MONTH on a non-literal should fail.
	if _, err := ParseSelect("SELECT 1 FROM t WHERE x > y + INTERVAL '1' MONTH"); err == nil {
		t.Error("month interval on column should fail")
	}
}

func TestParsePredicates(t *testing.T) {
	sel := parseSel(t, `SELECT 1 FROM t WHERE a BETWEEN 1 AND 5 AND b NOT LIKE '%x%'
		AND c IN ('A', 'B') AND d IS NOT NULL AND NOT (e = 1 OR f = 2)`)
	conjs := expr.Conjuncts(sel.Where)
	if len(conjs) != 5 {
		t.Fatalf("conjuncts = %d", len(conjs))
	}
	if _, ok := conjs[0].(*expr.Between); !ok {
		t.Errorf("conj0 = %T", conjs[0])
	}
	if l, ok := conjs[1].(*expr.Like); !ok || !l.Negate {
		t.Errorf("conj1 = %v", conjs[1])
	}
	if in, ok := conjs[2].(*expr.InList); !ok || len(in.Vals) != 2 {
		t.Errorf("conj2 = %v", conjs[2])
	}
	if n, ok := conjs[3].(*expr.IsNull); !ok || !n.Negate {
		t.Errorf("conj3 = %v", conjs[3])
	}
	if _, ok := conjs[4].(*expr.Not); !ok {
		t.Errorf("conj4 = %T", conjs[4])
	}
}

func TestParseCase(t *testing.T) {
	sel := parseSel(t, `SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END FROM t`)
	c, ok := sel.Items[0].Expr.(*expr.Case)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case = %v", sel.Items[0].Expr)
	}
}

func TestParseSubqueries(t *testing.T) {
	// Scalar subquery.
	sel := parseSel(t, "SELECT 1 FROM t WHERE a > (SELECT avg(x) FROM u)")
	b := sel.Where.(*expr.Bin)
	if _, ok := b.R.(*SubqueryExpr); !ok {
		t.Fatalf("scalar sub = %T", b.R)
	}
	// EXISTS and NOT EXISTS.
	sel = parseSel(t, "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a)")
	if _, ok := sel.Where.(*ExistsExpr); !ok {
		t.Fatalf("exists = %T", sel.Where)
	}
	sel = parseSel(t, "SELECT 1 FROM t WHERE NOT EXISTS (SELECT 1 FROM u)")
	n, ok := sel.Where.(*expr.Not)
	if !ok {
		t.Fatalf("not exists = %T", sel.Where)
	}
	if _, ok := n.E.(*ExistsExpr); !ok {
		t.Fatalf("not exists inner = %T", n.E)
	}
	// IN subquery.
	sel = parseSel(t, "SELECT 1 FROM t WHERE a IN (SELECT x FROM u)")
	if _, ok := sel.Where.(*InSubqueryExpr); !ok {
		t.Fatalf("in sub = %T", sel.Where)
	}
	sel = parseSel(t, "SELECT 1 FROM t WHERE a NOT IN (SELECT x FROM u)")
	ins := sel.Where.(*InSubqueryExpr)
	if !ins.Negate {
		t.Error("NOT IN negate lost")
	}
	// Derived table.
	sel = parseSel(t, "SELECT s FROM (SELECT sum(x) AS s FROM u GROUP BY g) AS d WHERE s > 5")
	if sel.From[0].Subquery == nil || sel.From[0].Alias != "d" {
		t.Fatalf("derived = %+v", sel.From[0])
	}
}

func TestParseExtractSubstring(t *testing.T) {
	sel := parseSel(t, "SELECT EXTRACT(YEAR FROM o_orderdate), SUBSTRING(c_phone FROM 1 FOR 2) FROM t")
	f1 := sel.Items[0].Expr.(*expr.Func)
	if f1.Name != "EXTRACT_YEAR" {
		t.Errorf("extract = %v", f1)
	}
	f2 := sel.Items[1].Expr.(*expr.Func)
	if f2.Name != "SUBSTRING" || len(f2.Args) != 3 {
		t.Errorf("substring = %v", f2)
	}
	// Comma form.
	sel = parseSel(t, "SELECT SUBSTRING(c_phone, 1, 2) FROM t")
	if sel.Items[0].Expr.(*expr.Func).Name != "SUBSTRING" {
		t.Error("comma substring failed")
	}
}

func TestParseOrderByPosition(t *testing.T) {
	sel := parseSel(t, "SELECT a, b FROM t ORDER BY 2 DESC, 1")
	if sel.OrderBy[0].Position != 2 || !sel.OrderBy[0].Desc {
		t.Errorf("order0 = %+v", sel.OrderBy[0])
	}
	if sel.OrderBy[1].Position != 1 || sel.OrderBy[1].Desc {
		t.Errorf("order1 = %+v", sel.OrderBy[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseSel(t, "SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := sel.Where.(*expr.Bin)
	if !ok || or.Op != expr.OpOr {
		t.Fatalf("top = %v", sel.Where)
	}
	and := or.R.(*expr.Bin)
	if and.Op != expr.OpAnd {
		t.Fatalf("rhs = %v", or.R)
	}
	// Arithmetic precedence.
	sel = parseSel(t, "SELECT a + b * c FROM t")
	addE := sel.Items[0].Expr.(*expr.Bin)
	if addE.Op != expr.OpAdd {
		t.Fatalf("arith top = %v", addE)
	}
	if addE.R.(*expr.Bin).Op != expr.OpMul {
		t.Fatal("mul should bind tighter")
	}
	// TPC-H style: l_extendedprice * (1 - l_discount).
	sel = parseSel(t, "SELECT sum(l_extendedprice * (1 - l_discount)) FROM lineitem")
	f := sel.Items[0].Expr.(*expr.Func)
	mul := f.Args[0].(*expr.Bin)
	if mul.Op != expr.OpMul {
		t.Fatalf("tpch expr = %v", f)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE lineitem (
		l_orderkey BIGINT, l_quantity DECIMAL(15,2), l_shipdate DATE,
		l_comment VARCHAR(44)
	) PARTITION BY HASH(l_orderkey) COLUMNAR CLUSTER BY (l_shipdate)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	if ct.Name != "lineitem" || len(ct.Cols) != 4 {
		t.Fatalf("ct = %+v", ct)
	}
	if ct.Cols[1].Kind != types.KindFloat || ct.Cols[2].Kind != types.KindDate {
		t.Errorf("col kinds = %+v", ct.Cols)
	}
	if ct.PartKind != "HASH" || ct.PartCols[0] != "l_orderkey" {
		t.Errorf("part = %+v", ct)
	}
	if !ct.Columnar || len(ct.ClusterCols) != 1 {
		t.Errorf("columnar/cluster = %+v", ct)
	}
}

func TestParseCreateTableRangeAndReplicated(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE r (k INT, v INT) PARTITION BY RANGE(k) VALUES (100, 200)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	if ct.PartKind != "RANGE" || len(ct.RangeBounds) != 2 || ct.RangeBounds[1].Int() != 200 {
		t.Fatalf("range ct = %+v", ct)
	}
	stmt, err = Parse(`CREATE TABLE nation (n_nationkey INT, n_name CHAR(25)) PARTITION BY REPLICATED`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*CreateTable).PartKind != "REPLICATED" {
		t.Error("replicated not parsed")
	}
	// Default partitioning: hash on first column.
	stmt, _ = Parse(`CREATE TABLE d (a INT, b INT)`)
	ct = stmt.(*CreateTable)
	if ct.PartKind != "HASH" || ct.PartCols[0] != "a" {
		t.Errorf("default part = %+v", ct)
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt, err := Parse("CREATE INDEX idx1 ON t(a, b) USING SKIPLIST")
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndex)
	if ci.Name != "idx1" || ci.Table != "t" || len(ci.Cols) != 2 || ci.Using != "SKIPLIST" {
		t.Fatalf("ci = %+v", ci)
	}
}

func TestParseDML(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, 'a', DATE '2020-01-01'), (2, 'b', NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	stmt, err = Parse("UPDATE t SET a = a + 1, b = 'x' WHERE c = 5")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	stmt, err = Parse("DELETE FROM t WHERE a < 0")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*Delete).Where == nil {
		t.Error("delete where lost")
	}
	stmt, err = Parse("DROP TABLE t")
	if err != nil || stmt.(*DropTable).Name != "t" {
		t.Fatalf("drop = %v %v", stmt, err)
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT 1 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if ex := stmt.(*Explain); ex.Query == nil || ex.Analyze {
		t.Error("plain EXPLAIN lost query or gained ANALYZE")
	}
	stmt, err = Parse("EXPLAIN ANALYZE SELECT 1 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if ex := stmt.(*Explain); ex.Query == nil || !ex.Analyze {
		t.Error("EXPLAIN ANALYZE lost query or analyze flag")
	}
	stmt, err = Parse("ANALYZE t")
	if err != nil || stmt.(*Analyze).Table != "t" {
		t.Fatalf("analyze = %v %v", stmt, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, sql := range []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"CREATE VIEW v",
		"INSERT t VALUES (1)",
		"SELECT a FROM t trailing garbage tokens (",
		"SELECT CASE END FROM t",
		"SELECT a NOT 5 FROM t",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	sel := parseSel(t, "SELECT -5, -2.5, -(a) FROM t")
	if sel.Items[0].Expr.(*expr.Const).V.Int() != -5 {
		t.Error("negative int fold")
	}
	if sel.Items[1].Expr.(*expr.Const).V.Float() != -2.5 {
		t.Error("negative float fold")
	}
	if _, ok := sel.Items[2].Expr.(*expr.Neg); !ok {
		t.Error("negation of expression")
	}
}

func TestParseTPCHQ1Shape(t *testing.T) {
	// The full TPC-H Q1 text must parse.
	q1 := `SELECT l_returnflag, l_linestatus,
		sum(l_quantity) AS sum_qty,
		sum(l_extendedprice) AS sum_base_price,
		sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
		sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
		avg(l_quantity) AS avg_qty, avg(l_extendedprice) AS avg_price,
		avg(l_discount) AS avg_disc, count(*) AS count_order
	FROM lineitem
	WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
	GROUP BY l_returnflag, l_linestatus
	ORDER BY l_returnflag, l_linestatus`
	sel := parseSel(t, q1)
	if len(sel.Items) != 10 || len(sel.GroupBy) != 2 || len(sel.OrderBy) != 2 {
		t.Fatalf("q1 shape: items=%d groupby=%d orderby=%d", len(sel.Items), len(sel.GroupBy), len(sel.OrderBy))
	}
}
