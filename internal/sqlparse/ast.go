package sqlparse

import (
	"repro/internal/expr"
	"repro/internal/types"
)

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 = none
	Offset   int64
}

func (*Select) stmt() {}

// SelectItem is one projection (expression + optional alias). A nil Expr
// with Star=true is `*`; a qualified star sets Qualifier.
type SelectItem struct {
	Expr      expr.Expr
	Alias     string
	Star      bool
	Qualifier string
}

// TableRef is a FROM item: a base table, or a derived table (subquery).
type TableRef struct {
	Table    string
	Alias    string
	Subquery *Select // non-nil for derived tables
}

// OrderItem is one ORDER BY term. Either an expression or a 1-based
// output-column position.
type OrderItem struct {
	Expr     expr.Expr
	Position int // 0 = use Expr
	Desc     bool
}

// Subquery expressions embed a Select inside an expr.Expr. The planner
// rewrites these (decorrelation); the evaluator never sees them.

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Query *Select
}

// Eval panics: subqueries must be planned away.
func (s *SubqueryExpr) Eval(types.Row) (types.Value, error) {
	panic("sqlparse: unplanned scalar subquery evaluated")
}

// String renders the node.
func (s *SubqueryExpr) String() string { return "(<subquery>)" }

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Query  *Select
	Negate bool
}

// Eval panics: subqueries must be planned away.
func (e *ExistsExpr) Eval(types.Row) (types.Value, error) {
	panic("sqlparse: unplanned EXISTS evaluated")
}

// String renders the node.
func (e *ExistsExpr) String() string {
	if e.Negate {
		return "NOT EXISTS(<subquery>)"
	}
	return "EXISTS(<subquery>)"
}

// InSubqueryExpr is expr [NOT] IN (subquery).
type InSubqueryExpr struct {
	E      expr.Expr
	Query  *Select
	Negate bool
}

// Eval panics: subqueries must be planned away.
func (e *InSubqueryExpr) Eval(types.Row) (types.Value, error) {
	panic("sqlparse: unplanned IN subquery evaluated")
}

// String renders the node.
func (e *InSubqueryExpr) String() string {
	if e.Negate {
		return e.E.String() + " NOT IN (<subquery>)"
	}
	return e.E.String() + " IN (<subquery>)"
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Name        string
	Cols        []types.Column
	PartKind    string // "HASH", "RANGE", "REPLICATED"
	PartCols    []string
	RangeBounds []types.Value
	Columnar    bool
	ClusterCols []string
}

func (*CreateTable) stmt() {}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	Name string
}

func (*DropTable) stmt() {}

// CreateIndex is a CREATE INDEX statement.
type CreateIndex struct {
	Name  string
	Table string
	Cols  []string
	Using string // "BTREE" (default) or "SKIPLIST"
}

func (*CreateIndex) stmt() {}

// Insert is an INSERT ... VALUES statement.
type Insert struct {
	Table string
	Rows  [][]expr.Expr
}

func (*Insert) stmt() {}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   map[string]expr.Expr
	Where expr.Expr
}

func (*Update) stmt() {}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where expr.Expr
}

func (*Delete) stmt() {}

// Explain wraps a SELECT for plan display. With Analyze set (EXPLAIN
// ANALYZE) the query is executed and the per-operator trace is rendered
// instead of the logical plan.
type Explain struct {
	Query   *Select
	Analyze bool
}

func (*Explain) stmt() {}

// Analyze recomputes statistics for a table.
type Analyze struct {
	Table string
}

func (*Analyze) stmt() {}

// Reorganize compacts a table's fragments, restoring clustering order and
// invalidating skipping state.
type Reorganize struct {
	Table string
}

func (*Reorganize) stmt() {}
