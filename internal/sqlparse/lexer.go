// Package sqlparse implements HRDBMS's SQL front-end: a lexer and
// recursive-descent parser covering the OLAP dialect the paper's TPC-H
// workload needs (SELECT with joins, grouping, HAVING, ORDER BY/LIMIT,
// scalar/IN/EXISTS subqueries, CASE, BETWEEN, LIKE, date and interval
// literals) plus DDL with partitioning clauses and DML.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // punctuation and operators
	TokParam // ? placeholders (reserved)
)

// Token is one lexed token.
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int
}

var keywords = map[string]bool{}

func init() {
	for _, k := range []string{
		"SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
		"LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "IN", "EXISTS", "BETWEEN",
		"LIKE", "IS", "NULL", "CASE", "WHEN", "THEN", "ELSE", "END", "ASC",
		"DESC", "JOIN", "INNER", "ON", "CREATE", "TABLE", "DROP", "INDEX",
		"INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "EXPLAIN",
		"DATE", "INTERVAL", "DAY", "MONTH", "YEAR", "PARTITION", "HASH",
		"RANGE", "REPLICATED", "COLUMNAR", "CLUSTER", "USING", "BTREE",
		"SKIPLIST", "TRUE", "FALSE", "ANALYZE", "ALL", "ANY", "SOME", "UNION",
		"EXTRACT", "SUBSTRING", "FOR", "COMMIT", "ROLLBACK", "BEGIN", "ROWS", "REORGANIZE",
	} {
		keywords[k] = true
	}
}

// Lex tokenizes SQL text.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c == '?':
			toks = append(toks, Token{Kind: TokParam, Text: "?", Pos: i})
			i++
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				toks = append(toks, Token{Kind: TokOp, Text: two, Pos: start})
				i += 2
			default:
				switch c {
				case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
					toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: start})
					i++
				default:
					return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
				}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
