//go:build invariants

package txn

import (
	"strings"
	"testing"
)

func TestClosePanicsOnActiveTxn(t *testing.T) {
	if !invariantsEnabled {
		t.Fatal("test requires -tags invariants")
	}
	m, _ := newManager(t)
	tx := m.Begin()
	_ = tx
	// Deliberately neither committed nor rolled back.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Close did not panic with an active transaction")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "still active") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = m.Close() //lint:ignore walerr the call panics before returning
}

func TestCloseCleanAfterCommit(t *testing.T) {
	m, _ := newManager(t)
	tx := m.Begin()
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
