// Package txn implements HRDBMS's node-local concurrency control (Section
// VI): a page-level lock manager with shared/exclusive modes under strict
// strong two-phase locking (SS2PL — locks held until commit), local
// deadlock detection via a wait-for graph, lock wait timeouts for
// cross-node deadlocks, and the per-node transaction manager that ties
// locking to the WAL.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/page"
)

// LockMode is shared or exclusive.
type LockMode uint8

// Lock modes.
const (
	LockShared LockMode = iota + 1
	LockExclusive
)

// Errors surfaced to the XA manager, which reacts with a cluster-wide
// rollback (Section VI).
var (
	ErrDeadlock    = errors.New("txn: deadlock detected")
	ErrLockTimeout = errors.New("txn: lock wait timeout")
)

// lockState tracks one page's lock.
type lockState struct {
	holders map[uint64]LockMode
	// waiters wake via broadcast on release.
}

// LockManager grants page locks for one node.
//
// SS2PL writes the commit record while page locks are held, so the lock
// manager sits above the WAL in the lock order.
//
//lint:lockorder-before txn.lockmgr wal.log
type LockManager struct {
	mu      sync.Mutex //lint:lockorder txn.lockmgr
	cond    *sync.Cond
	locks   map[page.Key]*lockState
	waits   map[uint64]map[uint64]bool // waiter → holders blocking it
	held    map[uint64]map[page.Key]bool
	Timeout time.Duration
}

// NewLockManager creates a lock manager with the given wait timeout
// (default 2s if zero).
func NewLockManager(timeout time.Duration) *LockManager {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	lm := &LockManager{
		locks:   map[page.Key]*lockState{},
		waits:   map[uint64]map[uint64]bool{},
		held:    map[uint64]map[page.Key]bool{},
		Timeout: timeout,
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// compatible reports whether tx can acquire mode on ls right now.
func compatible(ls *lockState, tx uint64, mode LockMode) bool {
	for holder, hm := range ls.holders {
		if holder == tx {
			continue
		}
		if mode == LockExclusive || hm == LockExclusive {
			return false
		}
	}
	return true
}

// Lock blocks until tx holds the page in the requested mode (upgrades are
// allowed when tx is the sole holder). Returns ErrDeadlock when the
// wait-for graph closes a cycle through tx, or ErrLockTimeout.
func (lm *LockManager) Lock(tx uint64, k page.Key, mode LockMode) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	deadline := time.Now().Add(lm.Timeout)

	for {
		ls := lm.locks[k]
		if ls == nil {
			ls = &lockState{holders: map[uint64]LockMode{}}
			lm.locks[k] = ls
		}
		if cur, mine := ls.holders[tx]; mine && (cur == LockExclusive || cur == mode) {
			return nil // already held strongly enough
		}
		if compatible(ls, tx, mode) {
			ls.holders[tx] = mode
			if lm.held[tx] == nil {
				lm.held[tx] = map[page.Key]bool{}
			}
			lm.held[tx][k] = true
			delete(lm.waits, tx)
			return nil
		}
		// Blocked: record wait-for edges and check for a cycle.
		blockers := map[uint64]bool{}
		for holder := range ls.holders {
			if holder != tx {
				blockers[holder] = true
			}
		}
		lm.waits[tx] = blockers
		if lm.cycleFrom(tx) {
			delete(lm.waits, tx)
			return fmt.Errorf("%w: tx %d on %v", ErrDeadlock, tx, k)
		}
		if !lm.waitUntil(deadline) {
			delete(lm.waits, tx)
			return fmt.Errorf("%w: tx %d on %v", ErrLockTimeout, tx, k)
		}
	}
}

// waitUntil waits for a release broadcast, returning false on timeout.
// Called with lm.mu held.
func (lm *LockManager) waitUntil(deadline time.Time) bool {
	if time.Now().After(deadline) {
		return false
	}
	// Wake the condition variable when the deadline passes.
	timer := time.AfterFunc(time.Until(deadline), func() {
		lm.mu.Lock()
		lm.cond.Broadcast()
		lm.mu.Unlock()
	})
	lm.cond.Wait()
	timer.Stop()
	return !time.Now().After(deadline)
}

// cycleFrom reports whether the wait-for graph has a cycle reachable from
// tx. Called with lm.mu held.
func (lm *LockManager) cycleFrom(tx uint64) bool {
	visited := map[uint64]bool{}
	var dfs func(cur uint64) bool
	dfs = func(cur uint64) bool {
		if cur == tx && len(visited) > 0 {
			return true
		}
		if visited[cur] {
			return false
		}
		visited[cur] = true
		for next := range lm.waits[cur] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for next := range lm.waits[tx] {
		visited[tx] = true
		if dfs(next) {
			return true
		}
	}
	return false
}

// ReleaseAll frees every lock tx holds (commit or rollback under SS2PL).
func (lm *LockManager) ReleaseAll(tx uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for k := range lm.held[tx] {
		if ls := lm.locks[k]; ls != nil {
			delete(ls.holders, tx)
			if len(ls.holders) == 0 {
				delete(lm.locks, k)
			}
		}
	}
	delete(lm.held, tx)
	delete(lm.waits, tx)
	lm.cond.Broadcast()
}

// Holding reports the number of locks tx holds (for tests).
func (lm *LockManager) Holding(tx uint64) int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return len(lm.held[tx])
}
