//go:build invariants

package txn

import "fmt"

const invariantsEnabled = true

// assertQuiescent panics if any transaction is still active (including
// prepared-but-undecided ones). Closing a manager with live transactions
// means locks are still held and WAL outcomes are unresolved.
func (m *Manager) assertQuiescent(context string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.active) > 0 {
		ids := make([]uint64, 0, len(m.active))
		for id := range m.active {
			ids = append(ids, id)
		}
		panic(fmt.Sprintf("txn: invariant violated at %s: %d transaction(s) still active: %v", context, len(ids), ids))
	}
}
