package txn

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/types"
	"repro/internal/wal"
)

type memStore struct {
	mu       sync.Mutex
	pages    map[page.Key][]byte
	pageSize int
}

func newMemStore(size int) *memStore {
	return &memStore{pages: map[page.Key][]byte{}, pageSize: size}
}

func (s *memStore) ReadPage(f page.FileID, n uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.pages[page.Key{File: f, Page: n}]; ok {
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	}
	return make([]byte, s.pageSize), nil
}

func (s *memStore) WritePage(f page.FileID, n uint32, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := make([]byte, len(buf))
	copy(b, buf)
	s.pages[page.Key{File: f, Page: n}] = b
	return nil
}

func (s *memStore) PageSize() int { return s.pageSize }

func newManager(t *testing.T) (*Manager, *buffer.Manager) {
	t.Helper()
	log, err := wal.Open(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	buf := buffer.New(newMemStore(4096), 32, 2, buffer.WithFlushHook(log.FlushUpTo))
	return NewManager(log, NewLockManager(200*time.Millisecond), buf), buf
}

func TestLockSharedCompatible(t *testing.T) {
	lm := NewLockManager(100 * time.Millisecond)
	k := page.Key{File: 1, Page: 1}
	if err := lm.Lock(1, k, LockShared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Lock(2, k, LockShared); err != nil {
		t.Fatal(err)
	}
	// Exclusive must wait and time out.
	if err := lm.Lock(3, k, LockExclusive); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("exclusive over shared = %v", err)
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
	if err := lm.Lock(3, k, LockExclusive); err != nil {
		t.Fatalf("exclusive after release: %v", err)
	}
}

func TestLockExclusiveBlocks(t *testing.T) {
	lm := NewLockManager(100 * time.Millisecond)
	k := page.Key{File: 1, Page: 1}
	lm.Lock(1, k, LockExclusive)
	if err := lm.Lock(2, k, LockShared); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("shared over exclusive = %v", err)
	}
	// Release unblocks a waiter.
	done := make(chan error, 1)
	go func() { done <- lm.Lock(3, k, LockShared) }()
	time.Sleep(20 * time.Millisecond)
	lm.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatalf("waiter not granted: %v", err)
	}
}

func TestLockUpgradeAndReentry(t *testing.T) {
	lm := NewLockManager(100 * time.Millisecond)
	k := page.Key{File: 1, Page: 1}
	if err := lm.Lock(1, k, LockShared); err != nil {
		t.Fatal(err)
	}
	// Sole holder can upgrade.
	if err := lm.Lock(1, k, LockExclusive); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	// Re-acquiring weaker lock is a no-op.
	if err := lm.Lock(1, k, LockShared); err != nil {
		t.Fatalf("reentry: %v", err)
	}
	if lm.Holding(1) != 1 {
		t.Errorf("holding = %d", lm.Holding(1))
	}
}

func TestDeadlockDetection(t *testing.T) {
	lm := NewLockManager(5 * time.Second) // long timeout: detection must fire first
	a := page.Key{File: 1, Page: 1}
	b := page.Key{File: 1, Page: 2}
	lm.Lock(1, a, LockExclusive)
	lm.Lock(2, b, LockExclusive)

	errCh := make(chan error, 2)
	go func() { errCh <- lm.Lock(1, b, LockExclusive) }()
	time.Sleep(30 * time.Millisecond)
	go func() { errCh <- lm.Lock(2, a, LockExclusive) }()

	// One of the two must get ErrDeadlock quickly.
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("expected deadlock, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadlock not detected")
	}
	// Releasing the deadlocked tx's locks lets the other proceed.
	lm.ReleaseAll(2)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("survivor failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor never granted")
	}
}

// insertViaTx writes a row through the TxHook protocol the way storage does.
func insertViaTx(t *testing.T, m *Manager, buf *buffer.Manager, tx *Tx, k page.Key, val int64) {
	t.Helper()
	if err := tx.LockPage(k, true); err != nil {
		t.Fatal(err)
	}
	f, err := buf.Fetch(k)
	if err != nil {
		t.Fatal(err)
	}
	if page.TypeOf(f.Buf) == page.TypeFree {
		page.InitRowPage(f.Buf)
	}
	rp, _ := page.AsRowPage(f.Buf)
	enc := types.AppendRow(nil, types.Row{types.NewInt(val)})
	slot, ok := rp.InsertEncoded(enc)
	if !ok {
		t.Fatal("page full")
	}
	lsn := tx.LogInsert(k, uint16(slot), enc)
	page.SetLSN(f.Buf, lsn)
	buf.Unpin(f, true)
}

func liveRows(t *testing.T, buf *buffer.Manager, k page.Key) int {
	t.Helper()
	f, err := buf.Fetch(k)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Unpin(f, false)
	if page.TypeOf(f.Buf) == page.TypeFree {
		return 0
	}
	rp, _ := page.AsRowPage(f.Buf)
	return rp.LiveRows()
}

func TestCommitReleasesLocks(t *testing.T) {
	m, buf := newManager(t)
	k := page.Key{File: 1, Page: 0}
	tx := m.Begin()
	insertViaTx(t, m, buf, tx, k, 42)
	if m.Locks.Holding(tx.TxID()) == 0 {
		t.Fatal("no locks held before commit")
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if m.Locks.Holding(tx.TxID()) != 0 {
		t.Error("locks survived commit")
	}
	if m.ActiveCount() != 0 {
		t.Error("transaction still active")
	}
	if liveRows(t, buf, k) != 1 {
		t.Error("committed row missing")
	}
}

func TestRollbackUndoesWrites(t *testing.T) {
	m, buf := newManager(t)
	k := page.Key{File: 1, Page: 0}
	tx1 := m.Begin()
	insertViaTx(t, m, buf, tx1, k, 1)
	m.Commit(tx1)

	tx2 := m.Begin()
	insertViaTx(t, m, buf, tx2, k, 2)
	insertViaTx(t, m, buf, tx2, k, 3)
	if liveRows(t, buf, k) != 3 {
		t.Fatal("uncommitted rows not visible to self")
	}
	if err := m.Rollback(tx2); err != nil {
		t.Fatal(err)
	}
	if got := liveRows(t, buf, k); got != 1 {
		t.Errorf("rows after rollback = %d, want 1", got)
	}
	if m.Locks.Holding(tx2.TxID()) != 0 {
		t.Error("locks survived rollback")
	}
}

func TestPrepareThenCommitPrepared(t *testing.T) {
	m, buf := newManager(t)
	k := page.Key{File: 1, Page: 0}
	tx := m.Begin()
	insertViaTx(t, m, buf, tx, k, 7)
	if err := m.Prepare(tx, 3); err != nil {
		t.Fatal(err)
	}
	// Locks still held after prepare (SS2PL until global decision).
	if m.Locks.Holding(tx.TxID()) == 0 {
		t.Fatal("prepare must keep locks")
	}
	if err := m.CommitPrepared(tx.TxID()); err != nil {
		t.Fatal(err)
	}
	if liveRows(t, buf, k) != 1 {
		t.Error("prepared+committed row missing")
	}
}

func TestPrepareThenRollbackPrepared(t *testing.T) {
	m, buf := newManager(t)
	k := page.Key{File: 1, Page: 0}
	tx := m.Begin()
	insertViaTx(t, m, buf, tx, k, 7)
	if err := m.Prepare(tx, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.RollbackPrepared(tx.TxID()); err != nil {
		t.Fatal(err)
	}
	if got := liveRows(t, buf, k); got != 0 {
		t.Errorf("rows after prepared rollback = %d", got)
	}
}

func TestResolveInDoubtAfterRestart(t *testing.T) {
	dir := t.TempDir()
	store := newMemStore(4096)
	logPath := filepath.Join(dir, "wal.log")
	log, err := wal.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	buf := buffer.New(store, 32, 2, buffer.WithFlushHook(log.FlushUpTo))
	m := NewManager(log, NewLockManager(time.Second), buf)
	k := page.Key{File: 1, Page: 0}
	tx := m.Begin()
	insertViaTx(t, m, buf, tx, k, 9)
	if err := m.Prepare(tx, 5); err != nil {
		t.Fatal(err)
	}
	buf.FlushAll()
	log.Close() // crash

	// Restart: recovery reports the in-doubt transaction.
	log2, err := wal.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	buf2 := buffer.New(store, 32, 2, buffer.WithFlushHook(log2.FlushUpTo))
	res, err := wal.Recover(log2, buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0].Coordinator != 5 {
		t.Fatalf("in-doubt = %+v", res.InDoubt)
	}
	m2 := NewManager(log2, NewLockManager(time.Second), buf2)
	m2.SetNextTxID(res.MaxTxID + 1)
	// Coordinator says commit.
	if err := m2.ResolveInDoubt(res.InDoubt[0].TxID, true); err != nil {
		t.Fatal(err)
	}
	f, _ := buf2.Fetch(k)
	rp, _ := page.AsRowPage(f.Buf)
	if rp.LiveRows() != 1 {
		t.Error("resolved-commit row missing")
	}
	buf2.Unpin(f, false)
}

func TestConcurrentTransactionsDisjointPages(t *testing.T) {
	m, buf := newManager(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := m.Begin()
			k := page.Key{File: 1, Page: uint32(i)}
			insertViaTx(t, m, buf, tx, k, int64(i))
			if err := m.Commit(tx); err != nil {
				t.Errorf("tx %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if liveRows(t, buf, page.Key{File: 1, Page: uint32(i)}) != 1 {
			t.Errorf("page %d missing row", i)
		}
	}
}
