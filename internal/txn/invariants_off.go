//go:build !invariants

package txn

const invariantsEnabled = false

// assertQuiescent is a no-op in normal builds; build with -tags invariants
// to arm the live-transaction check at Close.
func (m *Manager) assertQuiescent(string) {}
