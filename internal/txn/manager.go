package txn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/page"
	"repro/internal/wal"
)

// Manager is a node's transaction manager: it hands out transactions,
// chains their WAL records, enforces SS2PL through the lock manager, and
// executes the participant side of 2PC (prepare / commit-prepared /
// rollback-prepared).
type Manager struct {
	Log   *wal.Log
	Locks *LockManager
	Pages wal.PageAccess

	nextTx atomic.Uint64
	mu     sync.Mutex //lint:lockorder txn.manager
	active map[uint64]*Tx
}

// NewManager wires a transaction manager to the node's WAL, lock manager,
// and buffer manager.
func NewManager(log *wal.Log, locks *LockManager, pages wal.PageAccess) *Manager {
	m := &Manager{Log: log, Locks: locks, Pages: pages, active: map[uint64]*Tx{}}
	m.nextTx.Store(1)
	return m
}

// SetNextTxID moves the transaction ID sequence past recovered IDs.
func (m *Manager) SetNextTxID(next uint64) { m.nextTx.Store(next) }

// Tx is one transaction's node-local state. It implements storage.TxHook.
// Tx.mu guards the lastLSN chain and is deliberately held across WAL
// appends: the record's PrevLSN and the updated lastLSN must be assigned
// atomically or concurrent LogInsert/LogDelete calls would fork the chain.
//
//lint:lockorder-before txn.tx wal.log
type Tx struct {
	id      uint64
	lastLSN uint64
	mgr     *Manager
	mu      sync.Mutex //lint:lockorder txn.tx
}

// Begin starts a transaction with a locally assigned ID.
func (m *Manager) Begin() *Tx {
	id := m.nextTx.Add(1)
	return m.BeginWithID(id)
}

// BeginWithID starts a transaction under a globally assigned ID (the
// coordinator assigns IDs for distributed transactions).
func (m *Manager) BeginWithID(id uint64) *Tx {
	tx := &Tx{id: id, mgr: m}
	tx.lastLSN = m.Log.Append(&wal.Record{Type: wal.RecBegin, TxID: id})
	m.mu.Lock()
	m.active[id] = tx
	m.mu.Unlock()
	return tx
}

// Lookup finds an active transaction.
func (m *Manager) Lookup(id uint64) (*Tx, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx, ok := m.active[id]
	return tx, ok
}

// TxID implements storage.TxHook.
func (t *Tx) TxID() uint64 { return t.id }

// LockPage implements storage.TxHook.
func (t *Tx) LockPage(k page.Key, exclusive bool) error {
	mode := LockShared
	if exclusive {
		mode = LockExclusive
	}
	return t.mgr.Locks.Lock(t.id, k, mode)
}

// LogInsert implements storage.TxHook.
func (t *Tx) LogInsert(k page.Key, slot uint16, encRow []byte) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	lsn := t.mgr.Log.Append(&wal.Record{
		Type: wal.RecInsert, TxID: t.id, PrevLSN: t.lastLSN,
		Page: k, Slot: slot, Row: encRow,
	})
	t.lastLSN = lsn
	return lsn
}

// LogDelete implements storage.TxHook.
func (t *Tx) LogDelete(k page.Key, slot uint16, encRow []byte) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	lsn := t.mgr.Log.Append(&wal.Record{
		Type: wal.RecDelete, TxID: t.id, PrevLSN: t.lastLSN,
		Page: k, Slot: slot, Row: encRow,
	})
	t.lastLSN = lsn
	return lsn
}

// Commit commits a purely local transaction: durable commit record, then
// release locks (SS2PL order).
func (m *Manager) Commit(tx *Tx) error {
	m.Log.Append(&wal.Record{Type: wal.RecCommit, TxID: tx.id, PrevLSN: tx.lastLSN})
	if err := m.Log.Flush(); err != nil {
		return err
	}
	m.finish(tx.id)
	return nil
}

// Rollback undoes a local transaction via the WAL and releases locks.
func (m *Manager) Rollback(tx *Tx) error {
	_, err := wal.UndoTransaction(m.Log, m.Pages, tx.id, tx.lastLSN)
	if err != nil {
		return fmt.Errorf("txn: rollback tx %d: %w", tx.id, err)
	}
	if err := m.Log.Flush(); err != nil {
		return err
	}
	m.finish(tx.id)
	return nil
}

// Prepare runs the participant side of 2PC phase 1: a durable PREPARE
// record naming the coordinator. Locks stay held.
func (m *Manager) Prepare(tx *Tx, coordinator int32) error {
	tx.mu.Lock()
	tx.lastLSN = m.Log.Append(&wal.Record{
		Type: wal.RecPrepare, TxID: tx.id, PrevLSN: tx.lastLSN, Coordinator: coordinator,
	})
	tx.mu.Unlock()
	return m.Log.Flush()
}

// CommitPrepared finishes phase 2 for a prepared transaction.
func (m *Manager) CommitPrepared(txID uint64) error {
	var prev uint64
	if tx, ok := m.Lookup(txID); ok {
		prev = tx.lastLSN
	}
	m.Log.Append(&wal.Record{Type: wal.RecCommit, TxID: txID, PrevLSN: prev})
	if err := m.Log.Flush(); err != nil {
		return err
	}
	m.finish(txID)
	return nil
}

// RollbackPrepared aborts a prepared transaction (global decision was no).
func (m *Manager) RollbackPrepared(txID uint64) error {
	var last uint64
	if tx, ok := m.Lookup(txID); ok {
		last = tx.lastLSN
	} else if info, err := m.findLastLSN(txID); err == nil {
		last = info
	}
	if _, err := wal.UndoTransaction(m.Log, m.Pages, txID, last); err != nil {
		return err
	}
	if err := m.Log.Flush(); err != nil {
		return err
	}
	m.finish(txID)
	return nil
}

// findLastLSN scans the log for a transaction's final record (used when
// resolving in-doubt transactions after a restart, where no in-memory Tx
// exists).
func (m *Manager) findLastLSN(txID uint64) (uint64, error) {
	var last uint64
	err := m.Log.Scan(0, func(r *wal.Record) bool {
		if r.TxID == txID {
			last = r.LSN
		}
		return true
	})
	return last, err
}

// ResolveInDoubt applies the coordinator's answer for a transaction that
// was prepared before a crash.
func (m *Manager) ResolveInDoubt(txID uint64, commit bool) error {
	if commit {
		return m.CommitPrepared(txID)
	}
	return m.RollbackPrepared(txID)
}

func (m *Manager) finish(txID uint64) {
	m.Locks.ReleaseAll(txID)
	m.mu.Lock()
	delete(m.active, txID)
	m.mu.Unlock()
}

// ActiveCount returns the number of in-flight transactions (tests).
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Close retires the manager at clean shutdown. Under the invariants build it
// panics if any transaction is still active — every Begin must have reached
// Commit, Rollback, or a 2PC decision by now.
func (m *Manager) Close() error {
	m.assertQuiescent("Close")
	return nil
}
