package skipcache

import (
	"sync"

	"repro/internal/page"
	"repro/internal/types"
)

// MinMax implements small materialized aggregates [Moerkotte 1998]: for
// each page and column it tracks the minimum and maximum value, and a scan
// can skip a page when the predicate cannot be satisfied by any value in
// [min, max]. The paper positions predicate-based data skipping as a
// generalization of this scheme; we keep both so the ablation benchmarks
// can compare them.
type MinMax struct {
	mu   sync.RWMutex
	m    map[page.Key]map[string][2]types.Value // col → {min, max}
	hits int64
}

// NewMinMax creates an empty SMA store.
func NewMinMax() *MinMax {
	return &MinMax{m: map[page.Key]map[string][2]types.Value{}}
}

// Record updates the stored min/max of a column on a page from an observed
// value (typically called for every row during load or scan).
func (s *MinMax) Record(p page.Key, col string, v types.Value) {
	if v.IsNull() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cols := s.m[p]
	if cols == nil {
		cols = map[string][2]types.Value{}
		s.m[p] = cols
	}
	mm, ok := cols[col]
	if !ok {
		cols[col] = [2]types.Value{v, v}
		return
	}
	if types.Compare(v, mm[0]) < 0 {
		mm[0] = v
	}
	if types.Compare(v, mm[1]) > 0 {
		mm[1] = v
	}
	cols[col] = mm
}

// CanSkip reports whether the page cannot contain rows matching theta based
// on min-max ranges: some atomic predicate excludes the page's full range.
func (s *MinMax) CanSkip(p page.Key, theta Conj) bool {
	s.mu.RLock()
	cols := s.m[p]
	s.mu.RUnlock()
	if cols == nil {
		return false
	}
	for _, pred := range theta {
		mm, ok := cols[pred.Col]
		if !ok {
			continue
		}
		if rangeExcludes(mm[0], mm[1], pred) {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return true
		}
	}
	return false
}

// Hits returns the number of successful skip decisions.
func (s *MinMax) Hits() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits
}

// rangeExcludes reports whether no value in [lo, hi] can satisfy pred.
func rangeExcludes(lo, hi types.Value, pred Pred) bool {
	switch pred.Op {
	case OpEq:
		return types.Compare(pred.Val, lo) < 0 || types.Compare(pred.Val, hi) > 0
	case OpNe:
		// Only excludable when the page holds a single value equal to the
		// constant.
		return types.Compare(lo, hi) == 0 && types.Compare(lo, pred.Val) == 0
	case OpLt:
		return types.Compare(lo, pred.Val) >= 0
	case OpLe:
		return types.Compare(lo, pred.Val) > 0
	case OpGt:
		return types.Compare(hi, pred.Val) <= 0
	case OpGe:
		return types.Compare(hi, pred.Val) < 0
	}
	return false
}

// Invalidate drops entries for the given pages.
func (s *MinMax) Invalidate(pages []page.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range pages {
		delete(s.m, p)
	}
}

// Pages returns the number of pages tracked.
func (s *MinMax) Pages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
