// Package skipcache implements HRDBMS's predicate-based data skipping
// (Section III), the paper's second novel contribution: during a table
// scan the system records which pages contained no rows matching the scan's
// predicate, and later scans skip a page if their predicate is identical to
// — or logically implies — a cached predicate for that page. The package
// also provides classic min-max small-materialized-aggregate (SMA) skipping
// as the baseline the paper generalizes.
//
// Cached entries stay valid because inserts are append-only into fresh
// pages and updates are out-of-place; only a table reorganize invalidates
// the cache (Invalidate).
package skipcache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/page"
	"repro/internal/types"
)

// CmpOp is a comparison operator in an atomic predicate.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Pred is an atomic predicate: column op constant.
type Pred struct {
	Col string
	Op  CmpOp
	Val types.Value
}

// Matches evaluates the predicate against a value (NULL never matches).
func (p Pred) Matches(v types.Value) bool {
	if v.IsNull() || p.Val.IsNull() {
		return false
	}
	c := types.Compare(v, p.Val)
	switch p.Op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// String renders the predicate canonically.
func (p Pred) String() string {
	return fmt.Sprintf("%s%s%s", strings.ToLower(p.Col), p.Op, p.Val)
}

// Implies reports whether p ⇒ q: every value satisfying p also satisfies
// q. Predicates on different columns never imply each other.
func (p Pred) Implies(q Pred) bool {
	if !strings.EqualFold(p.Col, q.Col) {
		return false
	}
	cmp := types.Compare(p.Val, q.Val)
	switch q.Op {
	case OpEq:
		return p.Op == OpEq && cmp == 0
	case OpNe:
		switch p.Op {
		case OpEq:
			return cmp != 0
		case OpNe:
			return cmp == 0
		case OpLt:
			return cmp <= 0 // x < a, a ≤ b ⇒ x ≠ b
		case OpLe:
			return cmp < 0
		case OpGt:
			return cmp >= 0
		case OpGe:
			return cmp > 0
		}
	case OpLt:
		switch p.Op {
		case OpEq:
			return cmp < 0
		case OpLt:
			return cmp <= 0 // x < a, a ≤ b ⇒ x < b
		case OpLe:
			return cmp < 0 // x ≤ a, a < b ⇒ x < b
		}
	case OpLe:
		switch p.Op {
		case OpEq:
			return cmp <= 0
		case OpLt:
			return cmp <= 0 // x < a, a ≤ b ⇒ x < b ⇒ x ≤ b
		case OpLe:
			return cmp <= 0
		}
	case OpGt:
		switch p.Op {
		case OpEq:
			return cmp > 0
		case OpGt:
			return cmp >= 0
		case OpGe:
			return cmp > 0
		}
	case OpGe:
		switch p.Op {
		case OpEq:
			return cmp >= 0
		case OpGt:
			return cmp >= 0
		case OpGe:
			return cmp >= 0
		}
	}
	return false
}

// Conj is a conjunction of atomic predicates.
type Conj []Pred

// Canonical returns a normalized string key for the conjunction (sorted
// atomic predicates), used for exact-match lookups and persistence.
func (c Conj) Canonical() string {
	parts := make([]string, len(c))
	for i, p := range c {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " AND ")
}

// Implies reports whether c ⇒ d using the sufficient condition: every
// atomic predicate of d is implied by some atomic predicate of c.
func (c Conj) Implies(d Conj) bool {
	if len(d) == 0 {
		return false
	}
	for _, q := range d {
		found := false
		for _, p := range c {
			if p.Implies(q) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// MatchesRow evaluates the conjunction against a row given a resolver from
// column name to offset.
func (c Conj) MatchesRow(r types.Row, colIndex func(string) int) bool {
	for _, p := range c {
		idx := colIndex(p.Col)
		if idx < 0 || !p.Matches(r[idx]) {
			return false
		}
	}
	return true
}

// cacheEntry stores a predicate with its precomputed canonical key so
// duplicate detection stays O(1) per comparison.
type cacheEntry struct {
	conj Conj
	key  string
}

// Cache is the per-node predicate cache: page → predicates known to match
// no row on that page.
type Cache struct {
	mu         sync.RWMutex
	m          map[page.Key][]cacheEntry
	maxPerPage int
	hits       int64
	misses     int64
}

// NewCache creates a cache keeping at most maxPerPage predicates per page
// (oldest evicted first). maxPerPage ≤ 0 means unlimited.
func NewCache(maxPerPage int) *Cache {
	return &Cache{m: map[page.Key][]cacheEntry{}, maxPerPage: maxPerPage}
}

// Record notes that a completed scan found no rows matching theta on page p.
func (c *Cache) Record(p page.Key, theta Conj) {
	if len(theta) == 0 {
		return
	}
	key := theta.Canonical()
	c.mu.Lock()
	defer c.mu.Unlock()
	existing := c.m[p]
	for _, e := range existing {
		if e.key == key {
			return
		}
	}
	existing = append(existing, cacheEntry{conj: theta, key: key})
	if c.maxPerPage > 0 && len(existing) > c.maxPerPage {
		existing = existing[len(existing)-c.maxPerPage:]
	}
	c.m[p] = existing
}

// CanSkip reports whether page p can be skipped for a scan with predicate
// theta: theta equals or implies some cached predicate for p.
func (c *Cache) CanSkip(p page.Key, theta Conj) bool {
	if len(theta) == 0 {
		return false
	}
	c.mu.RLock()
	cached := c.m[p]
	c.mu.RUnlock()
	for _, e := range cached {
		if theta.Implies(e.conj) {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return false
}

// Invalidate drops all cached predicates for the given pages (table
// reorganize or page rewrite).
func (c *Cache) Invalidate(pages []page.Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range pages {
		delete(c.m, p)
	}
}

// InvalidateFile drops every entry for a file (table reorganize).
func (c *Cache) InvalidateFile(f page.FileID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.m {
		if k.File == f {
			delete(c.m, k)
		}
	}
}

// Stats returns (hits, misses) of CanSkip decisions.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// Entries returns the number of (page, predicate) pairs cached.
func (c *Cache) Entries() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, v := range c.m {
		n += len(v)
	}
	return n
}

// SizeBytes estimates the in-memory footprint of the cache, used to
// reproduce the paper's 250 MB/node footprint estimate.
func (c *Cache) SizeBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total int64
	for _, preds := range c.m {
		total += 12 // page key
		for _, e := range preds {
			total += 16 // slice header
			for _, p := range e.conj {
				total += int64(len(p.Col)) + 1 + int64(types.EncodedSize(p.Val)) + 16
			}
		}
	}
	return total
}

// Persist writes the cache to disk; Load restores it. The paper persists
// predicate caches periodically and reloads them at database restart.
func (c *Cache) Persist(path string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("skipcache: persist: %w", err)
	}
	w := bufio.NewWriter(f)
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(c.m)))
	for k, preds := range c.m {
		buf = binary.AppendUvarint(buf, uint64(k.File))
		buf = binary.AppendUvarint(buf, uint64(k.Page))
		buf = binary.AppendUvarint(buf, uint64(len(preds)))
		for _, e := range preds {
			buf = binary.AppendUvarint(buf, uint64(len(e.conj)))
			for _, p := range e.conj {
				buf = binary.AppendUvarint(buf, uint64(len(p.Col)))
				buf = append(buf, p.Col...)
				buf = append(buf, byte(p.Op))
				buf = types.AppendValue(buf, p.Val)
			}
		}
	}
	if _, err := w.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load restores a cache persisted with Persist.
func Load(path string, maxPerPage int) (*Cache, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("skipcache: load: %w", err)
	}
	c := NewCache(maxPerPage)
	pos := 0
	readU := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("skipcache: corrupt cache file")
		}
		pos += n
		return v, nil
	}
	nPages, err := readU()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nPages; i++ {
		file, err := readU()
		if err != nil {
			return nil, err
		}
		pg, err := readU()
		if err != nil {
			return nil, err
		}
		nPreds, err := readU()
		if err != nil {
			return nil, err
		}
		key := page.Key{File: page.FileID(file), Page: uint32(pg)}
		for j := uint64(0); j < nPreds; j++ {
			nAtoms, err := readU()
			if err != nil {
				return nil, err
			}
			conj := make(Conj, 0, nAtoms)
			for a := uint64(0); a < nAtoms; a++ {
				colLen, err := readU()
				if err != nil {
					return nil, err
				}
				if pos+int(colLen) > len(b) {
					return nil, fmt.Errorf("skipcache: corrupt column name")
				}
				col := string(b[pos : pos+int(colLen)])
				pos += int(colLen)
				if pos >= len(b) {
					return nil, fmt.Errorf("skipcache: corrupt operator")
				}
				op := CmpOp(b[pos])
				pos++
				v, n, err := types.DecodeValue(b[pos:])
				if err != nil {
					return nil, err
				}
				pos += n
				conj = append(conj, Pred{Col: col, Op: op, Val: v})
			}
			c.m[key] = append(c.m[key], cacheEntry{conj: conj, key: conj.Canonical()})
		}
	}
	return c, nil
}
