package skipcache

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/page"
	"repro/internal/types"
)

func pi(col string, op CmpOp, v int64) Pred { return Pred{Col: col, Op: op, Val: types.NewInt(v)} }

func TestPredMatches(t *testing.T) {
	for _, tc := range []struct {
		p    Pred
		v    types.Value
		want bool
	}{
		{pi("a", OpEq, 5), types.NewInt(5), true},
		{pi("a", OpEq, 5), types.NewInt(6), false},
		{pi("a", OpNe, 5), types.NewInt(6), true},
		{pi("a", OpLt, 5), types.NewInt(4), true},
		{pi("a", OpLt, 5), types.NewInt(5), false},
		{pi("a", OpLe, 5), types.NewInt(5), true},
		{pi("a", OpGt, 5), types.NewInt(6), true},
		{pi("a", OpGe, 5), types.NewInt(5), true},
		{pi("a", OpEq, 5), types.Null, false},
	} {
		if got := tc.p.Matches(tc.v); got != tc.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", tc.p, tc.v, got, tc.want)
		}
	}
}

func TestPredImplies(t *testing.T) {
	for _, tc := range []struct {
		p, q Pred
		want bool
	}{
		{pi("a", OpEq, 3), pi("a", OpLt, 10), true},
		{pi("a", OpEq, 3), pi("a", OpLe, 3), true},
		{pi("a", OpEq, 3), pi("a", OpGe, 3), true},
		{pi("a", OpEq, 3), pi("a", OpGt, 3), false},
		{pi("a", OpEq, 3), pi("a", OpNe, 4), true},
		{pi("a", OpEq, 3), pi("a", OpNe, 3), false},
		{pi("a", OpLt, 5), pi("a", OpLt, 10), true},
		{pi("a", OpLt, 5), pi("a", OpLt, 5), true},
		{pi("a", OpLt, 5), pi("a", OpLt, 3), false},
		{pi("a", OpLt, 5), pi("a", OpLe, 5), true},
		{pi("a", OpLe, 5), pi("a", OpLt, 5), false},
		{pi("a", OpLe, 5), pi("a", OpLt, 6), true},
		{pi("a", OpGt, 5), pi("a", OpGt, 3), true},
		{pi("a", OpGt, 5), pi("a", OpGe, 5), true},
		{pi("a", OpGe, 5), pi("a", OpGt, 5), false},
		{pi("a", OpGe, 6), pi("a", OpGt, 5), true},
		{pi("a", OpLt, 5), pi("a", OpNe, 7), true},
		{pi("a", OpLt, 5), pi("a", OpNe, 2), false},
		// Different columns never imply.
		{pi("a", OpEq, 3), pi("b", OpLt, 10), false},
		// Case-insensitive column match.
		{pi("A", OpEq, 3), pi("a", OpLe, 3), true},
	} {
		if got := tc.p.Implies(tc.q); got != tc.want {
			t.Errorf("%v ⇒ %v = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

// TestImpliesSoundness: whenever p ⇒ q is reported, every matching value of
// p must also match q. Property-checked over random int predicates.
func TestImpliesSoundness(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	f := func(opA, opB uint8, va, vb int8, probe int8) bool {
		p := pi("x", ops[int(opA)%len(ops)], int64(va))
		q := pi("x", ops[int(opB)%len(ops)], int64(vb))
		if !p.Implies(q) {
			return true // nothing claimed
		}
		v := types.NewInt(int64(probe))
		if p.Matches(v) && !q.Matches(v) {
			t.Logf("counterexample: %v ⇒ %v but %v matches p not q", p, q, v)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestConjImplies(t *testing.T) {
	// a>10 AND a<20 ⇒ a>5
	c := Conj{pi("a", OpGt, 10), pi("a", OpLt, 20)}
	if !c.Implies(Conj{pi("a", OpGt, 5)}) {
		t.Error("conj should imply weaker atom")
	}
	// a>10 ⇒ a>10 AND b<3 must fail
	if (Conj{pi("a", OpGt, 10)}).Implies(Conj{pi("a", OpGt, 10), pi("b", OpLt, 3)}) {
		t.Error("missing conjunct must block implication")
	}
	if (Conj{}).Implies(Conj{}) {
		t.Error("empty conjunctions should not imply (nothing to skip on)")
	}
}

func TestCacheRecordSkip(t *testing.T) {
	c := NewCache(0)
	p1 := page.Key{File: 1, Page: 1}
	p2 := page.Key{File: 1, Page: 2}
	theta := Conj{pi("l_qty", OpLt, 24)}
	c.Record(p1, theta)

	if !c.CanSkip(p1, theta) {
		t.Error("identical predicate should skip")
	}
	if c.CanSkip(p2, theta) {
		t.Error("other page must not skip")
	}
	// Stronger predicate implies cached one → skip.
	if !c.CanSkip(p1, Conj{pi("l_qty", OpLt, 10)}) {
		t.Error("stronger predicate should skip")
	}
	// Weaker predicate must not skip.
	if c.CanSkip(p1, Conj{pi("l_qty", OpLt, 100)}) {
		t.Error("weaker predicate must not skip")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestCacheDuplicateRecord(t *testing.T) {
	c := NewCache(0)
	p := page.Key{File: 1, Page: 1}
	theta := Conj{pi("a", OpEq, 1)}
	c.Record(p, theta)
	c.Record(p, theta)
	if c.Entries() != 1 {
		t.Errorf("duplicate record stored twice: %d entries", c.Entries())
	}
	c.Record(p, Conj{})
	if c.Entries() != 1 {
		t.Error("empty predicate should not be recorded")
	}
}

func TestCacheMaxPerPage(t *testing.T) {
	c := NewCache(2)
	p := page.Key{File: 1, Page: 1}
	c.Record(p, Conj{pi("a", OpEq, 1)})
	c.Record(p, Conj{pi("a", OpEq, 2)})
	c.Record(p, Conj{pi("a", OpEq, 3)})
	if c.Entries() != 2 {
		t.Errorf("entries = %d, want 2", c.Entries())
	}
	if c.CanSkip(p, Conj{pi("a", OpEq, 1)}) {
		t.Error("evicted predicate should no longer skip")
	}
	if !c.CanSkip(p, Conj{pi("a", OpEq, 3)}) {
		t.Error("recent predicate should skip")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(0)
	p := page.Key{File: 3, Page: 7}
	c.Record(p, Conj{pi("a", OpEq, 1)})
	c.Invalidate([]page.Key{p})
	if c.CanSkip(p, Conj{pi("a", OpEq, 1)}) {
		t.Error("invalidated page should not skip")
	}
	c.Record(p, Conj{pi("a", OpEq, 1)})
	c.Record(page.Key{File: 4, Page: 1}, Conj{pi("a", OpEq, 1)})
	c.InvalidateFile(3)
	if c.CanSkip(p, Conj{pi("a", OpEq, 1)}) {
		t.Error("file invalidation missed page")
	}
	if !c.CanSkip(page.Key{File: 4, Page: 1}, Conj{pi("a", OpEq, 1)}) {
		t.Error("file invalidation dropped other file")
	}
}

func TestCachePersistLoad(t *testing.T) {
	c := NewCache(0)
	p1 := page.Key{File: 1, Page: 1}
	p2 := page.Key{File: 2, Page: 9}
	c.Record(p1, Conj{pi("l_shipdate", OpLt, 9000), pi("l_qty", OpGe, 30)})
	c.Record(p2, Conj{{Col: "n_name", Op: OpEq, Val: types.NewString("CANADA")}})

	path := filepath.Join(t.TempDir(), "pred.cache")
	if err := c.Persist(path); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Entries() != 2 {
		t.Fatalf("loaded entries = %d", c2.Entries())
	}
	if !c2.CanSkip(p1, Conj{pi("l_shipdate", OpLt, 9000), pi("l_qty", OpGe, 30)}) {
		t.Error("loaded cache lost predicate 1")
	}
	if !c2.CanSkip(p2, Conj{{Col: "n_name", Op: OpEq, Val: types.NewString("CANADA")}}) {
		t.Error("loaded cache lost predicate 2")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestCacheSizeBytes(t *testing.T) {
	c := NewCache(0)
	if c.SizeBytes() != 0 {
		t.Error("empty cache should have zero size")
	}
	c.Record(page.Key{File: 1, Page: 1}, Conj{pi("a", OpEq, 1)})
	if c.SizeBytes() <= 0 {
		t.Error("non-empty cache should have positive size")
	}
}

func TestMinMaxSkip(t *testing.T) {
	s := NewMinMax()
	p := page.Key{File: 1, Page: 1}
	for _, v := range []int64{10, 20, 30} {
		s.Record(p, "a", types.NewInt(v))
	}
	for _, tc := range []struct {
		pred Pred
		want bool
	}{
		{pi("a", OpLt, 10), true},
		{pi("a", OpLt, 11), false},
		{pi("a", OpLe, 9), true},
		{pi("a", OpGt, 30), true},
		{pi("a", OpGt, 29), false},
		{pi("a", OpGe, 31), true},
		{pi("a", OpEq, 5), true},
		{pi("a", OpEq, 15), false}, // inside range: cannot prove absence
		{pi("a", OpEq, 35), true},
		{pi("b", OpEq, 5), false}, // untracked column
	} {
		if got := s.CanSkip(p, Conj{tc.pred}); got != tc.want {
			t.Errorf("minmax CanSkip(%v) = %v, want %v", tc.pred, got, tc.want)
		}
	}
	// NULLs must not poison the range.
	s.Record(p, "a", types.Null)
	if !s.CanSkip(p, Conj{pi("a", OpLt, 10)}) {
		t.Error("null record changed the range")
	}
}

func TestMinMaxNeSingleValue(t *testing.T) {
	s := NewMinMax()
	p := page.Key{File: 1, Page: 2}
	s.Record(p, "a", types.NewInt(7))
	if !s.CanSkip(p, Conj{pi("a", OpNe, 7)}) {
		t.Error("page of all 7s can skip a<>7")
	}
	if s.CanSkip(p, Conj{pi("a", OpNe, 8)}) {
		t.Error("a<>8 matches everything on the page")
	}
}

func TestMinMaxInvalidate(t *testing.T) {
	s := NewMinMax()
	p := page.Key{File: 1, Page: 1}
	s.Record(p, "a", types.NewInt(1))
	s.Invalidate([]page.Key{p})
	if s.CanSkip(p, Conj{pi("a", OpGt, 100)}) {
		t.Error("invalidated page should not skip")
	}
	if s.Pages() != 0 {
		t.Error("page count after invalidate")
	}
}

// TestGeneralization: the paper claims predicate caching generalizes
// min-max. A page whose values straddle the constant cannot be skipped by
// min-max for an inner-range equality, but a previous scan proves absence.
func TestGeneralization(t *testing.T) {
	s := NewMinMax()
	c := NewCache(0)
	p := page.Key{File: 1, Page: 1}
	// Page holds {10, 30}; query a=20 matched nothing on a previous scan.
	s.Record(p, "a", types.NewInt(10))
	s.Record(p, "a", types.NewInt(30))
	theta := Conj{pi("a", OpEq, 20)}
	if s.CanSkip(p, theta) {
		t.Fatal("min-max cannot prove absence of an inner value")
	}
	c.Record(p, theta)
	if !c.CanSkip(p, theta) {
		t.Fatal("predicate cache should skip on repeat query")
	}
}
