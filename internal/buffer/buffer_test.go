package buffer

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/page"
)

// memStore is an in-memory Store for tests.
type memStore struct {
	mu       sync.Mutex
	pages    map[page.Key][]byte
	pageSize int
	reads    int
	writes   int
	failKey  *page.Key
}

func newMemStore(pageSize int) *memStore {
	return &memStore{pages: map[page.Key][]byte{}, pageSize: pageSize}
}

func (s *memStore) ReadPage(f page.FileID, n uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	k := page.Key{File: f, Page: n}
	if s.failKey != nil && *s.failKey == k {
		return nil, fmt.Errorf("injected read failure")
	}
	if b, ok := s.pages[k]; ok {
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	}
	return make([]byte, s.pageSize), nil
}

func (s *memStore) WritePage(f page.FileID, n uint32, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	b := make([]byte, len(buf))
	copy(b, buf)
	s.pages[page.Key{File: f, Page: n}] = b
	return nil
}

func (s *memStore) PageSize() int { return s.pageSize }

func TestFetchHitMiss(t *testing.T) {
	st := newMemStore(1024)
	m := New(st, 8, 2)
	k := page.Key{File: 1, Page: 0}
	f, err := m.Fetch(k)
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f, false)
	f2, err := m.Fetch(k)
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f2, false)
	stats := m.Stats()
	if stats.Misses != 1 || stats.Hits != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", stats.Hits, stats.Misses)
	}
	if f != f2 {
		t.Error("second fetch should return the same frame")
	}
}

func TestDirtyWriteBackOnEvict(t *testing.T) {
	st := newMemStore(1024)
	m := New(st, 2, 1)
	k := page.Key{File: 1, Page: 7}
	f, _ := m.NewPage(k)
	copy(f.Buf[100:], []byte("hello"))
	m.Unpin(f, true)

	// Fill past capacity to force eviction of the dirty page.
	for i := uint32(100); i < 110; i++ {
		g, err := m.Fetch(page.Key{File: 2, Page: i})
		if err != nil {
			t.Fatal(err)
		}
		m.Unpin(g, false)
	}
	st.mu.Lock()
	b, ok := st.pages[k]
	st.mu.Unlock()
	if !ok || string(b[100:105]) != "hello" {
		t.Fatal("dirty page was not written back on eviction")
	}
	// Re-fetch should see the written data.
	f2, err := m.Fetch(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Buf[100:105]) != "hello" {
		t.Error("refetched page lost data")
	}
	m.Unpin(f2, false)
}

func TestPinnedNeverEvicted(t *testing.T) {
	st := newMemStore(512)
	m := New(st, 2, 1)
	k := page.Key{File: 1, Page: 1}
	f, _ := m.Fetch(k) // stays pinned
	for i := uint32(0); i < 20; i++ {
		g, err := m.Fetch(page.Key{File: 3, Page: i})
		if err != nil {
			t.Fatal(err)
		}
		m.Unpin(g, false)
	}
	if !m.Resident(k) {
		t.Fatal("pinned page was evicted")
	}
	m.Unpin(f, false)
}

func TestAllPinnedFails(t *testing.T) {
	st := newMemStore(512)
	m := New(st, 2, 1)
	var frames []*Frame
	for i := uint32(0); i < 2; i++ {
		f, err := m.Fetch(page.Key{File: 1, Page: i})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := m.Fetch(page.Key{File: 1, Page: 99}); err == nil {
		t.Fatal("fetch with all frames pinned should fail")
	}
	for _, f := range frames {
		m.Unpin(f, false)
	}
	if _, err := m.Fetch(page.Key{File: 1, Page: 99}); err != nil {
		t.Fatalf("fetch after unpin should succeed: %v", err)
	}
}

func TestPredeclarePrioritized(t *testing.T) {
	st := newMemStore(512)
	m := New(st, 4, 1)
	// Load 4 pages; pre-declare page 0.
	var keys []page.Key
	for i := uint32(0); i < 4; i++ {
		k := page.Key{File: 1, Page: i}
		f, _ := m.Fetch(k)
		m.Unpin(f, false)
		keys = append(keys, k)
	}
	m.Predeclare(keys[:1])
	// Insert two new pages; the pre-declared one should survive the first
	// eviction round.
	f, _ := m.Fetch(page.Key{File: 2, Page: 0})
	m.Unpin(f, false)
	if !m.Resident(keys[0]) {
		t.Error("pre-declared page evicted before non-declared peers")
	}
}

func TestFlushHookCalledBeforeEvict(t *testing.T) {
	st := newMemStore(512)
	var flushed []uint64
	m := New(st, 1, 1, WithFlushHook(func(lsn uint64) error {
		flushed = append(flushed, lsn)
		return nil
	}))
	k := page.Key{File: 1, Page: 0}
	f, _ := m.NewPage(k)
	page.SetLSN(f.Buf, 42)
	m.Unpin(f, true)
	g, err := m.Fetch(page.Key{File: 1, Page: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(g, false)
	if len(flushed) != 1 || flushed[0] != 42 {
		t.Errorf("flush hook calls = %v, want [42]", flushed)
	}
}

func TestFlushAll(t *testing.T) {
	st := newMemStore(512)
	m := New(st, 8, 2)
	for i := uint32(0); i < 4; i++ {
		f, _ := m.NewPage(page.Key{File: 1, Page: i})
		f.Buf[20] = byte(i + 1)
		m.Unpin(f, true)
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.pages) != 4 {
		t.Fatalf("flushed %d pages, want 4", len(st.pages))
	}
	for i := uint32(0); i < 4; i++ {
		if st.pages[page.Key{File: 1, Page: i}][20] != byte(i+1) {
			t.Errorf("page %d content wrong", i)
		}
	}
}

func TestSetCapacityShrink(t *testing.T) {
	st := newMemStore(512)
	m := New(st, 16, 1)
	for i := uint32(0); i < 16; i++ {
		f, _ := m.Fetch(page.Key{File: 1, Page: i})
		m.Unpin(f, false)
	}
	m.SetCapacity(4)
	resident := 0
	for i := uint32(0); i < 16; i++ {
		if m.Resident(page.Key{File: 1, Page: i}) {
			resident++
		}
	}
	if resident > 4 {
		t.Errorf("after shrink to 4, %d pages resident", resident)
	}
}

func TestReadFailurePropagates(t *testing.T) {
	st := newMemStore(512)
	bad := page.Key{File: 9, Page: 9}
	st.failKey = &bad
	m := New(st, 4, 1)
	if _, err := m.Fetch(bad); err == nil {
		t.Fatal("store read failure must propagate")
	}
}

func TestConcurrentFetchers(t *testing.T) {
	st := newMemStore(1024)
	m := New(st, 64, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := page.Key{File: page.FileID(seed % 4), Page: uint32(i % 40)}
				f, err := m.Fetch(k)
				if err != nil {
					errs <- err
					return
				}
				if i%7 == 0 {
					f.Buf[16] = byte(i)
					m.Unpin(f, true)
				} else {
					m.Unpin(f, false)
				}
			}
		}(uint32(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFetchHit(b *testing.B) {
	st := newMemStore(8192)
	m := New(st, 256, 8)
	k := page.Key{File: 1, Page: 3}
	f, _ := m.Fetch(k)
	m.Unpin(f, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := m.Fetch(k)
		if err != nil {
			b.Fatal(err)
		}
		m.Unpin(f, false)
	}
}

func BenchmarkFetchParallelStripes(b *testing.B) {
	st := newMemStore(8192)
	m := New(st, 1024, 16)
	for i := uint32(0); i < 512; i++ {
		f, _ := m.Fetch(page.Key{File: 1, Page: i})
		m.Unpin(f, false)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint32(0)
		for pb.Next() {
			f, err := m.Fetch(page.Key{File: 1, Page: i % 512})
			if err != nil {
				b.Fatal(err)
			}
			m.Unpin(f, false)
			i++
		}
	})
}
