//go:build !invariants

package buffer

const invariantsEnabled = false

// assertUnpinned is a no-op in normal builds; build with -tags invariants to
// arm the pin-balance check at FlushAll.
func (m *Manager) assertUnpinned(string) {}
