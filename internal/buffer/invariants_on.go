//go:build invariants

package buffer

import "fmt"

// invariantsEnabled reports whether the build carries the invariants tag
// (used by tests to assert the hooks are actually armed).
const invariantsEnabled = true

// assertUnpinned panics if any frame still holds a pin. A leaked pin wedges
// the striped clock — the frame can never be evicted — so FlushAll at a
// checkpoint or clean shutdown is exactly where the imbalance must be zero.
func (m *Manager) assertUnpinned(context string) {
	for _, s := range m.stripes {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.pins > 0 {
				key, pins := f.Key, f.pins
				s.mu.Unlock()
				panic(fmt.Sprintf("buffer: invariant violated at %s: frame %+v still pinned (%d pins)", context, key, pins))
			}
		}
		s.mu.Unlock()
	}
}
