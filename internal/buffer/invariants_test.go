//go:build invariants

package buffer

import (
	"strings"
	"testing"

	"repro/internal/page"
)

func TestFlushAllPanicsOnLeakedPin(t *testing.T) {
	if !invariantsEnabled {
		t.Fatal("test requires -tags invariants")
	}
	st := newMemStore(1024)
	m := New(st, 8, 2)
	if _, err := m.NewPage(page.Key{File: 1, Page: 3}); err != nil {
		t.Fatal(err)
	}
	// Deliberately no Unpin: FlushAll must trip the pin-balance assertion.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("FlushAll did not panic with a leaked pin")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "still pinned") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = m.FlushAll() //lint:ignore walerr the call panics before returning
}

func TestFlushAllCleanAfterUnpin(t *testing.T) {
	st := newMemStore(1024)
	m := New(st, 8, 2)
	f, err := m.NewPage(page.Key{File: 1, Page: 3})
	if err != nil {
		t.Fatal(err)
	}
	f.Buf[0] = 0xAB
	m.Unpin(f, true)
	if n := m.PinnedFrames(); n != 0 {
		t.Fatalf("PinnedFrames = %d after Unpin, want 0", n)
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
}
