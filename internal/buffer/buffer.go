// Package buffer implements HRDBMS's parallel buffer manager (Section III).
//
// The buffer pool of a node is partitioned into stripes, each with its own
// lock, page table, and clock hand; a page's stripe is determined by a hash
// of its key, and the striping is hidden behind the Manager wrapper exactly
// as the paper hides its stripe-manager threads behind a lightweight
// forwarding wrapper. Eviction is a clock variant in which table scans
// pre-declare the pages they will request in the near future and those
// pages are prioritized (skipped twice) by the clock hand.
package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/page"
)

// Store abstracts the node's page files so the manager can fault pages in
// and write dirty pages back.
type Store interface {
	ReadPage(file page.FileID, pageNum uint32) ([]byte, error)
	WritePage(file page.FileID, pageNum uint32, buf []byte) error
	PageSize() int
}

// Frame is a pinned in-memory page. Callers mutate Buf only while holding a
// pin and must Unpin with dirty=true after mutating.
type Frame struct {
	Key page.Key
	Buf []byte

	pins        int32
	dirty       bool
	ref         int32 // clock reference counter (0..3)
	predeclared bool
}

// Stats holds cumulative buffer pool counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Writes    int64
}

// The stripe latch is the outermost lock on the page path: eviction runs the
// WAL flush-before-evict hook and the store write-back while holding it.
//
//lint:lockorder-before buffer.stripe page.file
//lint:lockorder-before buffer.stripe wal.log
type stripe struct {
	mu     sync.Mutex //lint:lockorder buffer.stripe
	frames map[page.Key]*Frame
	clock  []*Frame
	hand   int
	cap    int
}

// Manager is the node-level buffer manager.
type Manager struct {
	store      Store
	stripes    []*stripe
	flushUpTo  func(lsn uint64) error // WAL hook: called before evicting a dirty page
	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	diskWrites atomic.Int64
}

// Option configures a Manager.
type Option func(*Manager)

// WithFlushHook installs the WAL flush-before-evict callback required for
// the write-ahead rule.
func WithFlushHook(fn func(lsn uint64) error) Option {
	return func(m *Manager) { m.flushUpTo = fn }
}

// New creates a buffer manager with the given total frame capacity spread
// over numStripes stripes.
func New(store Store, capacity, numStripes int, opts ...Option) *Manager {
	if numStripes < 1 {
		numStripes = 1
	}
	if capacity < numStripes {
		capacity = numStripes
	}
	m := &Manager{store: store, stripes: make([]*stripe, numStripes)}
	per := capacity / numStripes
	if per < 1 {
		per = 1
	}
	for i := range m.stripes {
		m.stripes[i] = &stripe{frames: make(map[page.Key]*Frame), cap: per}
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

func (m *Manager) stripeFor(k page.Key) *stripe {
	h := uint64(k.File)*1099511628211 ^ uint64(k.Page)*14695981039346656037
	return m.stripes[h%uint64(len(m.stripes))]
}

// Fetch pins the page, faulting it in from the store if absent.
func (m *Manager) Fetch(k page.Key) (*Frame, error) {
	s := m.stripeFor(k)
	s.mu.Lock()
	if f, ok := s.frames[k]; ok {
		f.pins++
		if f.ref < 3 {
			f.ref++
		}
		s.mu.Unlock()
		m.hits.Add(1)
		return f, nil
	}
	s.mu.Unlock()
	m.misses.Add(1)
	buf, err := m.store.ReadPage(k.File, k.Page)
	if err != nil {
		return nil, err
	}
	return m.install(s, k, buf)
}

// NewPage pins a fresh zeroed frame for the key without reading the store;
// the frame starts dirty so it will be written back.
func (m *Manager) NewPage(k page.Key) (*Frame, error) {
	s := m.stripeFor(k)
	f, err := m.install(s, k, make([]byte, m.store.PageSize()))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	f.dirty = true
	s.mu.Unlock()
	return f, nil
}

// install adds a loaded buffer to the stripe, evicting if needed. Returns
// the (pinned) frame; if another goroutine installed the page concurrently,
// its frame wins and our buffer is dropped.
func (m *Manager) install(s *stripe, k page.Key, buf []byte) (*Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.frames[k]; ok {
		f.pins++
		return f, nil
	}
	if len(s.clock) >= s.cap {
		if err := m.evictLocked(s); err != nil {
			return nil, err
		}
	}
	f := &Frame{Key: k, Buf: buf, pins: 1, ref: 1}
	s.frames[k] = f
	s.clock = append(s.clock, f)
	return f, nil
}

// evictLocked runs the clock over the stripe until it frees one frame.
// Pre-declared pages get an extra pass of protection; pinned pages are
// skipped. Called with s.mu held.
func (m *Manager) evictLocked(s *stripe) error {
	if len(s.clock) == 0 {
		return fmt.Errorf("buffer: empty stripe cannot evict")
	}
	for sweep := 0; sweep < 4*len(s.clock)+4; sweep++ {
		f := s.clock[s.hand%len(s.clock)]
		idx := s.hand % len(s.clock)
		s.hand++
		if f.pins > 0 {
			continue
		}
		if f.predeclared {
			// One free pass, then the page competes normally.
			f.predeclared = false
			continue
		}
		if f.ref > 0 {
			f.ref--
			continue
		}
		if f.dirty {
			if m.flushUpTo != nil {
				if err := m.flushUpTo(page.LSN(f.Buf)); err != nil {
					return fmt.Errorf("buffer: WAL flush before evict: %w", err)
				}
			}
			if err := m.store.WritePage(f.Key.File, f.Key.Page, f.Buf); err != nil {
				return fmt.Errorf("buffer: write back %v: %w", f.Key, err)
			}
			m.diskWrites.Add(1)
		}
		delete(s.frames, f.Key)
		s.clock = append(s.clock[:idx], s.clock[idx+1:]...)
		if s.hand > 0 {
			s.hand--
		}
		m.evictions.Add(1)
		return nil
	}
	return fmt.Errorf("buffer: all %d frames pinned, cannot evict", len(s.clock))
}

// Unpin releases a pin; dirty marks the frame as modified.
func (m *Manager) Unpin(f *Frame, dirty bool) {
	s := m.stripeFor(f.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned frame %v", f.Key))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// Predeclare marks pages an upcoming table scan will request so the clock
// prioritizes keeping them (the paper's scan pre-declaration). Pages not
// resident are ignored; the scan will fault them in.
func (m *Manager) Predeclare(keys []page.Key) {
	for _, k := range keys {
		s := m.stripeFor(k)
		s.mu.Lock()
		if f, ok := s.frames[k]; ok {
			f.predeclared = true
			if f.ref < 3 {
				f.ref++
			}
		}
		s.mu.Unlock()
	}
}

// FlushAll writes every dirty frame back to the store (used at checkpoints
// and clean shutdown).
func (m *Manager) FlushAll() error {
	m.assertUnpinned("FlushAll")
	for _, s := range m.stripes {
		s.mu.Lock()
		for _, f := range s.clock {
			if !f.dirty {
				continue
			}
			if m.flushUpTo != nil {
				if err := m.flushUpTo(page.LSN(f.Buf)); err != nil {
					s.mu.Unlock()
					return err
				}
			}
			if err := m.store.WritePage(f.Key.File, f.Key.Page, f.Buf); err != nil {
				s.mu.Unlock()
				return err
			}
			m.diskWrites.Add(1)
			f.dirty = false
		}
		s.mu.Unlock()
	}
	return nil
}

// PinnedFrames counts frames with a nonzero pin count. A steady-state value
// above zero outside an operation means a Fetch/NewPage leaked its Unpin.
func (m *Manager) PinnedFrames() int {
	n := 0
	for _, s := range m.stripes {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.pins > 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Resident reports whether the page is currently cached (for tests and the
// skipping experiments).
func (m *Manager) Resident(k page.Key) bool {
	s := m.stripeFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.frames[k]
	return ok
}

// SetCapacity grows or shrinks the pool (the paper's dynamic resize).
// Shrinking takes effect lazily as stripes evict down to the new size.
func (m *Manager) SetCapacity(capacity int) {
	per := capacity / len(m.stripes)
	if per < 1 {
		per = 1
	}
	for _, s := range m.stripes {
		s.mu.Lock()
		s.cap = per
		for len(s.clock) > s.cap {
			if err := m.evictLocked(s); err != nil {
				break // everything pinned; give up until pins drop
			}
		}
		s.mu.Unlock()
	}
}

// Stats returns cumulative counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Evictions: m.evictions.Load(),
		Writes:    m.diskWrites.Load(),
	}
}
