// Package topology implements the two communication topologies HRDBMS uses
// to enforce a constant limit Nmax on the number of neighbors a node
// communicates with (Section IV):
//
//   - Tree: hierarchical operations (aggregation, merge sort, 2PC broadcast)
//     run over a tree with fan-out Nmax-1, so each node talks only to its
//     parent and children.
//   - Ring: n-to-m operations (shuffle) run over a variant of the binomial
//     graph: nodes sit on a ring and node i links forward to nodes at
//     distances b^0, b^1, b^2, … where the base b = n^(1/Nmax), giving at
//     most Nmax out-links per node and logarithmic routing diameter. Nodes
//     on a route act as intermediate communication hubs forwarding data
//     from senders to receivers.
package topology

import (
	"fmt"
	"math"
)

// Tree is a k-ary tree over node IDs 0..N-1 with node 0 as root and
// fan-out Nmax-1.
type Tree struct {
	N      int
	Fanout int
}

// NewTree builds a tree topology for n nodes with neighbor limit nmax
// (fan-out nmax-1; a node's neighbor set is its parent plus children).
func NewTree(n, nmax int) (Tree, error) {
	if n < 1 {
		return Tree{}, fmt.Errorf("topology: tree needs at least 1 node, got %d", n)
	}
	if nmax < 2 {
		return Tree{}, fmt.Errorf("topology: tree needs nmax >= 2, got %d", nmax)
	}
	return Tree{N: n, Fanout: nmax - 1}, nil
}

// Parent returns the parent of node i, or -1 for the root.
func (t Tree) Parent(i int) int {
	if i == 0 {
		return -1
	}
	return (i - 1) / t.Fanout
}

// Children returns the children of node i in ascending order.
func (t Tree) Children(i int) []int {
	var out []int
	for c := i*t.Fanout + 1; c <= i*t.Fanout+t.Fanout && c < t.N; c++ {
		out = append(out, c)
	}
	return out
}

// Leaves returns all leaf nodes.
func (t Tree) Leaves() []int {
	var out []int
	for i := 0; i < t.N; i++ {
		if len(t.Children(i)) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Depth returns the number of levels in the tree.
func (t Tree) Depth() int {
	d := 0
	for i := t.N - 1; ; {
		d++
		if i == 0 {
			return d
		}
		i = t.Parent(i)
	}
}

// Degree returns the number of neighbors (parent + children) of node i.
func (t Tree) Degree(i int) int {
	d := len(t.Children(i))
	if i != 0 {
		d++
	}
	return d
}

// PostOrder returns node IDs in post-order (children before parents),
// the order in which hierarchical aggregation results flow upward.
func (t Tree) PostOrder() []int {
	out := make([]int, 0, t.N)
	var walk func(i int)
	walk = func(i int) {
		for _, c := range t.Children(i) {
			walk(c)
		}
		out = append(out, i)
	}
	walk(0)
	return out
}

// Ring is the binomial-graph n-to-m topology: node i links forward to
// (i + d) mod N for each d in Dists.
type Ring struct {
	N     int
	Base  int
	Dists []int // ascending powers of Base below N
}

// NewRing builds the ring for n nodes with neighbor limit nmax. The base is
// ceil(n^(1/nmax)) (minimum 2), so the number of forward links per node is
// at most nmax.
func NewRing(n, nmax int) (Ring, error) {
	if n < 1 {
		return Ring{}, fmt.Errorf("topology: ring needs at least 1 node, got %d", n)
	}
	if nmax < 1 {
		return Ring{}, fmt.Errorf("topology: ring needs nmax >= 1, got %d", nmax)
	}
	b := int(math.Ceil(math.Pow(float64(n), 1/float64(nmax))))
	if b < 2 {
		b = 2
	}
	r := Ring{N: n, Base: b}
	for d := 1; d < n; d *= b {
		r.Dists = append(r.Dists, d)
		if d > n/b {
			break
		}
	}
	return r, nil
}

// Neighbors returns the forward link targets of node i.
func (r Ring) Neighbors(i int) []int {
	out := make([]int, 0, len(r.Dists))
	for _, d := range r.Dists {
		out = append(out, (i+d)%r.N)
	}
	return out
}

// Degree returns the out-degree of every node (uniform).
func (r Ring) Degree() int { return len(r.Dists) }

// NextHop returns the next node on the greedy route from 'from' to 'to':
// take the largest link distance not exceeding the remaining ring distance.
func (r Ring) NextHop(from, to int) int {
	if from == to {
		return to
	}
	rem := (to - from + r.N) % r.N
	best := 1
	for _, d := range r.Dists {
		if d <= rem {
			best = d
		} else {
			break
		}
	}
	return (from + best) % r.N
}

// Route returns the full hop path from 'from' to 'to', excluding 'from'
// and including 'to'.
func (r Ring) Route(from, to int) []int {
	var path []int
	cur := from
	for cur != to {
		cur = r.NextHop(cur, to)
		path = append(path, cur)
	}
	return path
}

// Diameter returns the maximum greedy route length over all pairs.
func (r Ring) Diameter() int {
	max := 0
	for s := 0; s < r.N; s++ {
		for t := 0; t < r.N; t++ {
			if h := len(r.Route(s, t)); h > max {
				max = h
			}
		}
	}
	return max
}
