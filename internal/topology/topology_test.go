package topology

import (
	"testing"
	"testing/quick"
)

func TestTreeStructure(t *testing.T) {
	tr, err := NewTree(10, 4) // fan-out 3
	if err != nil {
		t.Fatal(err)
	}
	if tr.Parent(0) != -1 {
		t.Error("root parent should be -1")
	}
	if got := tr.Children(0); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("children(0) = %v", got)
	}
	if got := tr.Children(3); len(got) != 0 {
		t.Errorf("children(3) = %v, want none (only 10 nodes)", got)
	}
	for i := 1; i < 10; i++ {
		p := tr.Parent(i)
		found := false
		for _, c := range tr.Children(p) {
			if c == i {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d not among children of its parent %d", i, p)
		}
	}
}

func TestTreeDegreeBound(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 96, 250} {
		for _, nmax := range []int{2, 3, 4, 8} {
			tr, err := NewTree(n, nmax)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if d := tr.Degree(i); d > nmax {
					t.Errorf("n=%d nmax=%d: node %d degree %d exceeds limit", n, nmax, i, d)
				}
			}
		}
	}
}

func TestTreeDepthLogarithmic(t *testing.T) {
	tr, _ := NewTree(96, 4)
	if d := tr.Depth(); d > 5 {
		t.Errorf("96 nodes fan-out 3: depth %d, want <= 5", d)
	}
	tr2, _ := NewTree(1, 4)
	if tr2.Depth() != 1 {
		t.Errorf("singleton depth = %d", tr2.Depth())
	}
}

func TestTreePostOrder(t *testing.T) {
	tr, _ := NewTree(7, 3)
	order := tr.PostOrder()
	if len(order) != 7 {
		t.Fatalf("post-order visits %d of 7", len(order))
	}
	pos := map[int]int{}
	for i, n := range order {
		pos[n] = i
	}
	for i := 1; i < 7; i++ {
		if pos[i] > pos[tr.Parent(i)] {
			t.Errorf("node %d visited after its parent", i)
		}
	}
	if order[len(order)-1] != 0 {
		t.Error("root must be last in post-order")
	}
}

func TestTreeLeaves(t *testing.T) {
	tr, _ := NewTree(7, 3) // fan-out 2: 0->{1,2}, 1->{3,4}, 2->{5,6}
	leaves := tr.Leaves()
	if len(leaves) != 4 {
		t.Errorf("leaves = %v", leaves)
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := NewTree(0, 4); err == nil {
		t.Error("0 nodes should fail")
	}
	if _, err := NewTree(4, 1); err == nil {
		t.Error("nmax 1 should fail")
	}
}

func TestRingDegreeBound(t *testing.T) {
	for _, n := range []int{2, 8, 16, 96, 128, 500} {
		for _, nmax := range []int{2, 3, 4, 6} {
			r, err := NewRing(n, nmax)
			if err != nil {
				t.Fatal(err)
			}
			if r.Degree() > nmax {
				t.Errorf("n=%d nmax=%d: degree %d exceeds limit (base %d, dists %v)",
					n, nmax, r.Degree(), r.Base, r.Dists)
			}
		}
	}
}

func TestRingRoutingReachesEverything(t *testing.T) {
	for _, n := range []int{1, 2, 7, 48, 96} {
		r, err := NewRing(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < n; s++ {
			for dst := 0; dst < n; dst++ {
				path := r.Route(s, dst)
				if s == dst {
					if len(path) != 0 {
						t.Fatalf("self route should be empty")
					}
					continue
				}
				if len(path) == 0 || path[len(path)-1] != dst {
					t.Fatalf("n=%d: route %d->%d = %v", n, s, dst, path)
				}
				// Every hop must follow an actual link.
				cur := s
				for _, hop := range path {
					legal := false
					for _, nb := range r.Neighbors(cur) {
						if nb == hop {
							legal = true
						}
					}
					if !legal {
						t.Fatalf("n=%d: route %d->%d uses non-link %d->%d", n, s, dst, cur, hop)
					}
					cur = hop
				}
			}
		}
	}
}

func TestRingDiameterLogarithmic(t *testing.T) {
	r, _ := NewRing(96, 4)
	// base = ceil(96^(1/4)) = 4; worst-case hops ≈ (base-1)*levels.
	if d := r.Diameter(); d > 12 {
		t.Errorf("diameter = %d, too large for 96 nodes nmax=4", d)
	}
	// Direct topology comparison: with nmax = n the ring degenerates
	// toward direct links and the diameter shrinks.
	r2, _ := NewRing(96, 96)
	if r2.Diameter() >= r.Diameter() {
		t.Errorf("larger nmax should not increase diameter: %d vs %d", r2.Diameter(), r.Diameter())
	}
}

func TestRingNextHopProgress(t *testing.T) {
	r, _ := NewRing(50, 3)
	f := func(from, to uint8) bool {
		s := int(from) % 50
		d := int(to) % 50
		if s == d {
			return r.NextHop(s, d) == d
		}
		h := r.NextHop(s, d)
		// Hop must strictly reduce ring distance.
		before := (d - s + 50) % 50
		after := (d - h + 50) % 50
		return after < before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingPaperExample(t *testing.T) {
	// For n nodes and Nmax=2 the base is sqrt(n): 16 nodes → base 4,
	// distances {1, 4}.
	r, _ := NewRing(16, 2)
	if r.Base != 4 {
		t.Errorf("base = %d, want 4", r.Base)
	}
	if len(r.Dists) != 2 || r.Dists[0] != 1 || r.Dists[1] != 4 {
		t.Errorf("dists = %v, want [1 4]", r.Dists)
	}
	nb := r.Neighbors(15)
	if nb[0] != 0 || nb[1] != 3 {
		t.Errorf("wrap-around neighbors of 15 = %v", nb)
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(0, 2); err == nil {
		t.Error("0 nodes should fail")
	}
	if _, err := NewRing(4, 0); err == nil {
		t.Error("nmax 0 should fail")
	}
}
