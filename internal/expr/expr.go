// Package expr defines the expression trees shared by the SQL parser, the
// optimizer, and the execution engine, together with an evaluator that
// implements SQL three-valued logic (NULL-aware comparisons, AND/OR over
// {true, false, unknown}).
package expr

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Expr is a scalar expression evaluated against a row.
type Expr interface {
	// Eval computes the expression over the row.
	Eval(r types.Row) (types.Value, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String renders the operator.
func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return "?"
	}
}

// IsComparison reports whether the operator yields a boolean from two
// scalars.
func (o BinOp) IsComparison() bool { return o >= OpEq && o <= OpGe }

// Col references a column by position (set during binding) and name.
type Col struct {
	Index int
	Name  string
}

// Eval returns the referenced value.
func (c *Col) Eval(r types.Row) (types.Value, error) {
	if c.Index < 0 || c.Index >= len(r) {
		return types.Null, fmt.Errorf("expr: column %q (index %d) out of range for %d-column row", c.Name, c.Index, len(r))
	}
	return r[c.Index], nil
}

// String renders the column reference.
func (c *Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Index)
}

// Const is a literal value.
type Const struct {
	V types.Value
}

// Eval returns the literal.
func (c *Const) Eval(types.Row) (types.Value, error) { return c.V, nil }

// String renders the literal.
func (c *Const) String() string {
	if c.V.K == types.KindString {
		return "'" + c.V.S + "'"
	}
	return c.V.String()
}

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Eval applies the operator with SQL NULL semantics.
func (b *Bin) Eval(r types.Row) (types.Value, error) {
	// AND/OR need three-valued logic with short-circuiting on known sides.
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogic(r)
	}
	lv, err := b.L.Eval(r)
	if err != nil {
		return types.Null, err
	}
	rv, err := b.R.Eval(r)
	if err != nil {
		return types.Null, err
	}
	if lv.IsNull() || rv.IsNull() {
		return types.Null, nil
	}
	if b.Op.IsComparison() {
		c := types.Compare(lv, rv)
		switch b.Op {
		case OpEq:
			return types.NewBool(c == 0), nil
		case OpNe:
			return types.NewBool(c != 0), nil
		case OpLt:
			return types.NewBool(c < 0), nil
		case OpLe:
			return types.NewBool(c <= 0), nil
		case OpGt:
			return types.NewBool(c > 0), nil
		case OpGe:
			return types.NewBool(c >= 0), nil
		}
	}
	return arith(b.Op, lv, rv)
}

func (b *Bin) evalLogic(r types.Row) (types.Value, error) {
	lv, err := b.L.Eval(r)
	if err != nil {
		return types.Null, err
	}
	// Short-circuit.
	if !lv.IsNull() {
		if b.Op == OpAnd && !lv.Bool() {
			return types.NewBool(false), nil
		}
		if b.Op == OpOr && lv.Bool() {
			return types.NewBool(true), nil
		}
	}
	rv, err := b.R.Eval(r)
	if err != nil {
		return types.Null, err
	}
	lt, lu := truth(lv)
	rt, ru := truth(rv)
	if b.Op == OpAnd {
		switch {
		case !lu && !lt, !ru && !rt:
			return types.NewBool(false), nil
		case lu || ru:
			return types.Null, nil
		default:
			return types.NewBool(true), nil
		}
	}
	switch {
	case (!lu && lt) || (!ru && rt):
		return types.NewBool(true), nil
	case lu || ru:
		return types.Null, nil
	default:
		return types.NewBool(false), nil
	}
}

// truth maps a value to (isTrue, isUnknown).
func truth(v types.Value) (bool, bool) {
	if v.IsNull() {
		return false, true
	}
	return v.Bool(), false
}

// arith computes an arithmetic result with numeric promotion: int op int is
// int (except /), anything involving a float is float, date ± int is date.
func arith(op BinOp, l, r types.Value) (types.Value, error) {
	// Date arithmetic in days.
	if l.K == types.KindDate && r.K == types.KindInt {
		switch op {
		case OpAdd:
			return types.NewDate(l.I + r.I), nil
		case OpSub:
			return types.NewDate(l.I - r.I), nil
		}
	}
	if l.K == types.KindDate && r.K == types.KindDate && op == OpSub {
		return types.NewInt(l.I - r.I), nil
	}
	bothInt := l.K == types.KindInt && r.K == types.KindInt
	switch op {
	case OpAdd:
		if bothInt {
			return types.NewInt(l.I + r.I), nil
		}
		return types.NewFloat(l.Float() + r.Float()), nil
	case OpSub:
		if bothInt {
			return types.NewInt(l.I - r.I), nil
		}
		return types.NewFloat(l.Float() - r.Float()), nil
	case OpMul:
		if bothInt {
			return types.NewInt(l.I * r.I), nil
		}
		return types.NewFloat(l.Float() * r.Float()), nil
	case OpDiv:
		if r.Float() == 0 {
			return types.Null, fmt.Errorf("expr: division by zero")
		}
		return types.NewFloat(l.Float() / r.Float()), nil
	case OpMod:
		if !bothInt {
			return types.Null, fmt.Errorf("expr: %% requires integers")
		}
		if r.I == 0 {
			return types.Null, fmt.Errorf("expr: modulo by zero")
		}
		return types.NewInt(l.I % r.I), nil
	default:
		return types.Null, fmt.Errorf("expr: unsupported arithmetic operator %v", op)
	}
}

// String renders the operation.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not is logical negation.
type Not struct {
	E Expr
}

// Eval negates with NULL passthrough.
func (n *Not) Eval(r types.Row) (types.Value, error) {
	v, err := n.E.Eval(r)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	return types.NewBool(!v.Bool()), nil
}

// String renders the negation.
func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// Neg is arithmetic negation.
type Neg struct {
	E Expr
}

// Eval negates the numeric value.
func (n *Neg) Eval(r types.Row) (types.Value, error) {
	v, err := n.E.Eval(r)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	if v.K == types.KindInt {
		return types.NewInt(-v.I), nil
	}
	return types.NewFloat(-v.Float()), nil
}

// String renders the negation.
func (n *Neg) String() string { return fmt.Sprintf("-%s", n.E) }

// IsNull tests for SQL NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval returns a non-null boolean.
func (i *IsNull) Eval(r types.Row) (types.Value, error) {
	v, err := i.E.Eval(r)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(v.IsNull() != i.Negate), nil
}

// String renders the test.
func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("%s IS NOT NULL", i.E)
	}
	return fmt.Sprintf("%s IS NULL", i.E)
}

// Like matches SQL LIKE patterns (% and _ wildcards).
type Like struct {
	E       Expr
	Pattern Expr
	Negate  bool
}

// Eval matches the pattern.
func (l *Like) Eval(r types.Row) (types.Value, error) {
	v, err := l.E.Eval(r)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	p, err := l.Pattern.Eval(r)
	if err != nil || p.IsNull() {
		return types.Null, err
	}
	return types.NewBool(likeMatch(v.Str(), p.Str()) != l.Negate), nil
}

// likeMatch implements LIKE with an iterative two-pointer algorithm
// (greedy % backtracking).
func likeMatch(s, pattern string) bool {
	var si, pi int
	star := -1
	matchBase := 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			matchBase = si
			pi++
		case star >= 0:
			pi = star + 1
			matchBase++
			si = matchBase
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// String renders the pattern match.
func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s %s", l.E, op, l.Pattern)
}

// Between is a range test (inclusive).
type Between struct {
	E, Lo, Hi Expr
	Negate    bool
}

// Eval tests Lo <= E <= Hi.
func (b *Between) Eval(r types.Row) (types.Value, error) {
	v, err := b.E.Eval(r)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	lo, err := b.Lo.Eval(r)
	if err != nil || lo.IsNull() {
		return types.Null, err
	}
	hi, err := b.Hi.Eval(r)
	if err != nil || hi.IsNull() {
		return types.Null, err
	}
	in := types.Compare(v, lo) >= 0 && types.Compare(v, hi) <= 0
	return types.NewBool(in != b.Negate), nil
}

// String renders the range test.
func (b *Between) String() string {
	op := "BETWEEN"
	if b.Negate {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("%s %s %s AND %s", b.E, op, b.Lo, b.Hi)
}

// InList tests membership in a literal list.
type InList struct {
	E      Expr
	Vals   []Expr
	Negate bool
}

// Eval tests membership with SQL NULL semantics (NULL in the list makes a
// non-match unknown).
func (in *InList) Eval(r types.Row) (types.Value, error) {
	v, err := in.E.Eval(r)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	sawNull := false
	for _, ve := range in.Vals {
		lv, err := ve.Eval(r)
		if err != nil {
			return types.Null, err
		}
		if lv.IsNull() {
			sawNull = true
			continue
		}
		if types.Compare(v, lv) == 0 {
			return types.NewBool(!in.Negate), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(in.Negate), nil
}

// String renders the membership test.
func (in *InList) String() string {
	parts := make([]string, len(in.Vals))
	for i, v := range in.Vals {
		parts[i] = v.String()
	}
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", in.E, op, strings.Join(parts, ", "))
}

// When is one CASE branch.
type When struct {
	Cond Expr
	Then Expr
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr // nil means ELSE NULL
}

// Eval picks the first branch whose condition is true.
func (c *Case) Eval(r types.Row) (types.Value, error) {
	for _, w := range c.Whens {
		cond, err := w.Cond.Eval(r)
		if err != nil {
			return types.Null, err
		}
		if !cond.IsNull() && cond.Bool() {
			return w.Then.Eval(r)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(r)
	}
	return types.Null, nil
}

// String renders the CASE.
func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// Func is a scalar function call (EXTRACT, SUBSTRING, UPPER, LOWER, ABS).
type Func struct {
	Name string
	Args []Expr
}

// Eval dispatches on the (upper-cased) function name.
func (f *Func) Eval(r types.Row) (types.Value, error) {
	args := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(r)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	name := strings.ToUpper(f.Name)
	switch name {
	case "EXTRACT_YEAR", "YEAR":
		if len(args) != 1 {
			return types.Null, fmt.Errorf("expr: %s takes 1 argument", name)
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt(int64(args[0].Time().Year())), nil
	case "EXTRACT_MONTH", "MONTH":
		if len(args) != 1 {
			return types.Null, fmt.Errorf("expr: %s takes 1 argument", name)
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt(int64(args[0].Time().Month())), nil
	case "SUBSTRING", "SUBSTR":
		if len(args) != 3 {
			return types.Null, fmt.Errorf("expr: SUBSTRING takes 3 arguments")
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		s := args[0].Str()
		start := int(args[1].Int()) - 1 // SQL is 1-based
		length := int(args[2].Int())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + length
		if end > len(s) {
			end = len(s)
		}
		if end < start {
			end = start
		}
		return types.NewString(s[start:end]), nil
	case "UPPER":
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToUpper(args[0].Str())), nil
	case "LOWER":
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToLower(args[0].Str())), nil
	case "ABS":
		if args[0].IsNull() {
			return types.Null, nil
		}
		if args[0].K == types.KindInt {
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return types.NewInt(v), nil
		}
		v := args[0].Float()
		if v < 0 {
			v = -v
		}
		return types.NewFloat(v), nil
	default:
		return types.Null, fmt.Errorf("expr: unknown function %s", f.Name)
	}
}

// String renders the call.
func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// EvalBool evaluates e as a filter condition: true only when the result is
// a non-null true.
func EvalBool(e Expr, r types.Row) (bool, error) {
	v, err := e.Eval(r)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}
