package expr

import (
	"fmt"
	"strings"

	"repro/internal/skipcache"
	"repro/internal/types"
)

// Bind resolves every column reference in e against the schema, returning
// an error for unknown columns. The expression is rewritten in place (Col
// nodes get their Index set).
func Bind(e Expr, s types.Schema) error {
	var bindErr error
	Walk(e, func(x Expr) {
		if c, ok := x.(*Col); ok && bindErr == nil {
			idx := s.Find(c.Name)
			if idx < 0 {
				bindErr = fmt.Errorf("expr: unknown column %q in schema %s", c.Name, s)
				return
			}
			c.Index = idx
		}
	})
	return bindErr
}

// Walk visits every node of the expression tree in preorder.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Bin:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Not:
		Walk(x.E, fn)
	case *Neg:
		Walk(x.E, fn)
	case *IsNull:
		Walk(x.E, fn)
	case *Like:
		Walk(x.E, fn)
		Walk(x.Pattern, fn)
	case *Between:
		Walk(x.E, fn)
		Walk(x.Lo, fn)
		Walk(x.Hi, fn)
	case *InList:
		Walk(x.E, fn)
		for _, v := range x.Vals {
			Walk(v, fn)
		}
	case *Case:
		for _, w := range x.Whens {
			Walk(w.Cond, fn)
			Walk(w.Then, fn)
		}
		Walk(x.Else, fn)
	case *Func:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}

// Clone deep-copies an expression tree so rebinding one copy does not
// disturb others.
func Clone(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Col:
		c := *x
		return &c
	case *Const:
		c := *x
		return &c
	case *Bin:
		return &Bin{Op: x.Op, L: Clone(x.L), R: Clone(x.R)}
	case *Not:
		return &Not{E: Clone(x.E)}
	case *Neg:
		return &Neg{E: Clone(x.E)}
	case *IsNull:
		return &IsNull{E: Clone(x.E), Negate: x.Negate}
	case *Like:
		return &Like{E: Clone(x.E), Pattern: Clone(x.Pattern), Negate: x.Negate}
	case *Between:
		return &Between{E: Clone(x.E), Lo: Clone(x.Lo), Hi: Clone(x.Hi), Negate: x.Negate}
	case *InList:
		vals := make([]Expr, len(x.Vals))
		for i, v := range x.Vals {
			vals[i] = Clone(v)
		}
		return &InList{E: Clone(x.E), Vals: vals, Negate: x.Negate}
	case *Case:
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = When{Cond: Clone(w.Cond), Then: Clone(w.Then)}
		}
		return &Case{Whens: whens, Else: Clone(x.Else)}
	case *Func:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Clone(a)
		}
		return &Func{Name: x.Name, Args: args}
	default:
		return e
	}
}

// Conjuncts splits a predicate into its top-level AND-ed parts.
func Conjuncts(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// AndAll combines conjuncts back into a single predicate (nil if empty).
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &Bin{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// Columns returns the distinct column names referenced by e.
func Columns(e Expr) []string {
	seen := map[string]bool{}
	var out []string
	Walk(e, func(x Expr) {
		if c, ok := x.(*Col); ok {
			key := strings.ToLower(c.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, c.Name)
			}
		}
	})
	return out
}

// ToSkipConj converts the skippable atomic conjuncts of a predicate into a
// skipcache conjunction: parts of the form column op constant. Returns the
// conjunction (possibly shorter than the full predicate — a subset is still
// sound for recording "no rows matched the FULL predicate" only when the
// whole predicate converted, so ok reports whether every conjunct was
// convertible).
func ToSkipConj(e Expr) (skipcache.Conj, bool) {
	conjs := Conjuncts(e)
	out := make(skipcache.Conj, 0, len(conjs))
	all := true
	for _, c := range conjs {
		// BETWEEN converts to a pair of range atoms.
		if b, isBetween := c.(*Between); isBetween && !b.Negate {
			col, cok := b.E.(*Col)
			lo, lok := b.Lo.(*Const)
			hi, hok := b.Hi.(*Const)
			if cok && lok && hok && !lo.V.IsNull() && !hi.V.IsNull() {
				name := strings.ToLower(col.Name)
				out = append(out,
					skipcache.Pred{Col: name, Op: skipcache.OpGe, Val: lo.V},
					skipcache.Pred{Col: name, Op: skipcache.OpLe, Val: hi.V},
				)
				continue
			}
			all = false
			continue
		}
		p, ok := atomToSkipPred(c)
		if !ok {
			all = false
			continue
		}
		out = append(out, p)
	}
	return out, all && len(out) > 0
}

func atomToSkipPred(e Expr) (skipcache.Pred, bool) {
	b, ok := e.(*Bin)
	if !ok || !b.Op.IsComparison() {
		return skipcache.Pred{}, false
	}
	col, cok := b.L.(*Col)
	cons, vok := b.R.(*Const)
	flip := false
	if !cok || !vok {
		col, cok = b.R.(*Col)
		cons, vok = b.L.(*Const)
		flip = true
	}
	if !cok || !vok || cons.V.IsNull() {
		return skipcache.Pred{}, false
	}
	op := b.Op
	if flip {
		switch op {
		case OpLt:
			op = OpGt
		case OpLe:
			op = OpGe
		case OpGt:
			op = OpLt
		case OpGe:
			op = OpLe
		}
	}
	var sop skipcache.CmpOp
	switch op {
	case OpEq:
		sop = skipcache.OpEq
	case OpNe:
		sop = skipcache.OpNe
	case OpLt:
		sop = skipcache.OpLt
	case OpLe:
		sop = skipcache.OpLe
	case OpGt:
		sop = skipcache.OpGt
	case OpGe:
		sop = skipcache.OpGe
	default:
		return skipcache.Pred{}, false
	}
	return skipcache.Pred{Col: strings.ToLower(col.Name), Op: sop, Val: cons.V}, true
}

// KindOf infers the result kind of an expression under a schema. Best
// effort: unknown constructs report the kind of their first operand.
func KindOf(e Expr, s types.Schema) types.Kind {
	switch x := e.(type) {
	case *Col:
		if idx := s.Find(x.Name); idx >= 0 {
			return s.Cols[idx].Kind
		}
		if x.Index >= 0 && x.Index < s.Len() {
			return s.Cols[x.Index].Kind
		}
		return types.KindNull
	case *Const:
		return x.V.K
	case *Bin:
		if x.Op.IsComparison() || x.Op == OpAnd || x.Op == OpOr {
			return types.KindBool
		}
		lk, rk := KindOf(x.L, s), KindOf(x.R, s)
		if x.Op == OpDiv {
			return types.KindFloat
		}
		if lk == types.KindDate && rk == types.KindInt {
			return types.KindDate
		}
		if lk == types.KindDate && rk == types.KindDate {
			return types.KindInt
		}
		if lk == types.KindFloat || rk == types.KindFloat {
			return types.KindFloat
		}
		return types.KindInt
	case *Not, *IsNull, *Like, *Between, *InList:
		return types.KindBool
	case *Neg:
		return KindOf(x.E, s)
	case *Case:
		for _, w := range x.Whens {
			if k := KindOf(w.Then, s); k != types.KindNull {
				return k
			}
		}
		if x.Else != nil {
			return KindOf(x.Else, s)
		}
		return types.KindNull
	case *Func:
		switch strings.ToUpper(x.Name) {
		case "EXTRACT_YEAR", "YEAR", "EXTRACT_MONTH", "MONTH":
			return types.KindInt
		case "SUBSTRING", "SUBSTR", "UPPER", "LOWER":
			return types.KindString
		case "ABS":
			return KindOf(x.Args[0], s)
		}
		return types.KindNull
	default:
		return types.KindNull
	}
}
