package expr

import (
	"testing"

	"repro/internal/skipcache"
	"repro/internal/types"
)

func col(i int, name string) *Col  { return &Col{Index: i, Name: name} }
func ci(v int64) *Const            { return &Const{V: types.NewInt(v)} }
func cs(s string) *Const           { return &Const{V: types.NewString(s)} }
func cf(f float64) *Const          { return &Const{V: types.NewFloat(f)} }
func bin(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }
func mustEval(t *testing.T, e Expr, r types.Row) types.Value {
	t.Helper()
	v, err := e.Eval(r)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	r := types.Row{types.NewInt(10), types.NewFloat(2.5)}
	for _, tc := range []struct {
		e    Expr
		want types.Value
	}{
		{bin(OpAdd, col(0, "a"), ci(5)), types.NewInt(15)},
		{bin(OpSub, col(0, "a"), ci(3)), types.NewInt(7)},
		{bin(OpMul, col(0, "a"), col(1, "b")), types.NewFloat(25)},
		{bin(OpDiv, col(0, "a"), ci(4)), types.NewFloat(2.5)},
		{bin(OpMod, col(0, "a"), ci(3)), types.NewInt(1)},
		{&Neg{E: col(0, "a")}, types.NewInt(-10)},
	} {
		got := mustEval(t, tc.e, r)
		if types.Compare(got, tc.want) != 0 {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
	if _, err := bin(OpDiv, ci(1), ci(0)).Eval(r); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := bin(OpMod, ci(1), ci(0)).Eval(r); err == nil {
		t.Error("modulo by zero should error")
	}
}

func TestDateArithmetic(t *testing.T) {
	d := types.MustDate("2019-06-01")
	r := types.Row{d}
	got := mustEval(t, bin(OpAdd, col(0, "d"), ci(30)), r)
	if got.String() != "2019-07-01" {
		t.Errorf("date + 30 = %v", got)
	}
	got = mustEval(t, bin(OpSub, col(0, "d"), ci(1)), r)
	if got.String() != "2019-05-31" {
		t.Errorf("date - 1 = %v", got)
	}
	d2 := types.MustDate("2019-06-11")
	got = mustEval(t, bin(OpSub, &Const{V: d2}, col(0, "d")), r)
	if got.Int() != 10 {
		t.Errorf("date - date = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	r := types.Row{types.NewInt(5), types.NewString("m")}
	for _, tc := range []struct {
		e    Expr
		want bool
	}{
		{bin(OpEq, col(0, "a"), ci(5)), true},
		{bin(OpNe, col(0, "a"), ci(5)), false},
		{bin(OpLt, col(0, "a"), ci(6)), true},
		{bin(OpGe, col(0, "a"), ci(5)), true},
		{bin(OpGt, col(1, "s"), cs("l")), true},
		{bin(OpLe, col(1, "s"), cs("a")), false},
	} {
		got := mustEval(t, tc.e, r)
		if got.Bool() != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	r := types.Row{types.Null, types.NewInt(1)}
	null := bin(OpEq, col(0, "n"), ci(5)) // NULL = 5 → NULL
	tr := bin(OpEq, col(1, "o"), ci(1))   // true
	fa := bin(OpEq, col(1, "o"), ci(2))   // false

	if v := mustEval(t, null, r); !v.IsNull() {
		t.Error("NULL comparison should be NULL")
	}
	// AND truth table with unknown.
	if v := mustEval(t, bin(OpAnd, null, tr), r); !v.IsNull() {
		t.Error("unknown AND true should be unknown")
	}
	if v := mustEval(t, bin(OpAnd, null, fa), r); v.IsNull() || v.Bool() {
		t.Error("unknown AND false should be false")
	}
	if v := mustEval(t, bin(OpOr, null, tr), r); v.IsNull() || !v.Bool() {
		t.Error("unknown OR true should be true")
	}
	if v := mustEval(t, bin(OpOr, null, fa), r); !v.IsNull() {
		t.Error("unknown OR false should be unknown")
	}
	if v := mustEval(t, &Not{E: null}, r); !v.IsNull() {
		t.Error("NOT unknown should be unknown")
	}
	// EvalBool treats unknown as non-match.
	ok, err := EvalBool(null, r)
	if err != nil || ok {
		t.Error("EvalBool(unknown) should be false")
	}
}

func TestIsNull(t *testing.T) {
	r := types.Row{types.Null, types.NewInt(1)}
	if !mustEval(t, &IsNull{E: col(0, "n")}, r).Bool() {
		t.Error("IS NULL on null")
	}
	if mustEval(t, &IsNull{E: col(1, "o")}, r).Bool() {
		t.Error("IS NULL on non-null")
	}
	if !mustEval(t, &IsNull{E: col(1, "o"), Negate: true}, r).Bool() {
		t.Error("IS NOT NULL on non-null")
	}
}

func TestLike(t *testing.T) {
	for _, tc := range []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"promo burnished", "promo%", true},
		{"special requests", "%special%requests%", true},
		{"abc", "%%c", true},
		{"abc", "a%b%c%d", false},
	} {
		r := types.Row{types.NewString(tc.s)}
		got := mustEval(t, &Like{E: col(0, "s"), Pattern: cs(tc.p)}, r)
		if got.Bool() != tc.want {
			t.Errorf("%q LIKE %q = %v, want %v", tc.s, tc.p, got.Bool(), tc.want)
		}
		neg := mustEval(t, &Like{E: col(0, "s"), Pattern: cs(tc.p), Negate: true}, r)
		if neg.Bool() == got.Bool() {
			t.Errorf("NOT LIKE should negate for %q %q", tc.s, tc.p)
		}
	}
	if v := mustEval(t, &Like{E: &Const{V: types.Null}, Pattern: cs("%")}, nil); !v.IsNull() {
		t.Error("NULL LIKE should be NULL")
	}
}

func TestBetween(t *testing.T) {
	r := types.Row{types.NewInt(5)}
	if !mustEval(t, &Between{E: col(0, "a"), Lo: ci(1), Hi: ci(10)}, r).Bool() {
		t.Error("5 between 1 and 10")
	}
	if !mustEval(t, &Between{E: col(0, "a"), Lo: ci(5), Hi: ci(5)}, r).Bool() {
		t.Error("between is inclusive")
	}
	if mustEval(t, &Between{E: col(0, "a"), Lo: ci(6), Hi: ci(10)}, r).Bool() {
		t.Error("5 not between 6 and 10")
	}
	if !mustEval(t, &Between{E: col(0, "a"), Lo: ci(6), Hi: ci(10), Negate: true}, r).Bool() {
		t.Error("NOT BETWEEN")
	}
}

func TestInList(t *testing.T) {
	r := types.Row{types.NewString("MAIL")}
	in := &InList{E: col(0, "m"), Vals: []Expr{cs("AIR"), cs("MAIL")}}
	if !mustEval(t, in, r).Bool() {
		t.Error("IN should match")
	}
	miss := &InList{E: col(0, "m"), Vals: []Expr{cs("SHIP")}}
	if mustEval(t, miss, r).Bool() {
		t.Error("IN should not match")
	}
	notIn := &InList{E: col(0, "m"), Vals: []Expr{cs("SHIP")}, Negate: true}
	if !mustEval(t, notIn, r).Bool() {
		t.Error("NOT IN should match")
	}
	// NULL in list makes a miss unknown.
	withNull := &InList{E: col(0, "m"), Vals: []Expr{cs("SHIP"), &Const{V: types.Null}}}
	if v := mustEval(t, withNull, r); !v.IsNull() {
		t.Error("IN with NULL and no match should be unknown")
	}
}

func TestCase(t *testing.T) {
	e := &Case{
		Whens: []When{
			{Cond: bin(OpLt, col(0, "a"), ci(10)), Then: cs("small")},
			{Cond: bin(OpLt, col(0, "a"), ci(100)), Then: cs("medium")},
		},
		Else: cs("large"),
	}
	for _, tc := range []struct {
		v    int64
		want string
	}{{5, "small"}, {50, "medium"}, {500, "large"}} {
		got := mustEval(t, e, types.Row{types.NewInt(tc.v)})
		if got.Str() != tc.want {
			t.Errorf("case(%d) = %v", tc.v, got)
		}
	}
	noElse := &Case{Whens: []When{{Cond: bin(OpLt, col(0, "a"), ci(0)), Then: ci(1)}}}
	if v := mustEval(t, noElse, types.Row{types.NewInt(5)}); !v.IsNull() {
		t.Error("CASE without ELSE should default to NULL")
	}
}

func TestFuncs(t *testing.T) {
	d := types.MustDate("1995-03-15")
	r := types.Row{d, types.NewString("Customer#0042"), types.NewInt(-7)}
	if v := mustEval(t, &Func{Name: "YEAR", Args: []Expr{col(0, "d")}}, r); v.Int() != 1995 {
		t.Errorf("YEAR = %v", v)
	}
	if v := mustEval(t, &Func{Name: "MONTH", Args: []Expr{col(0, "d")}}, r); v.Int() != 3 {
		t.Errorf("MONTH = %v", v)
	}
	sub := &Func{Name: "SUBSTRING", Args: []Expr{col(1, "s"), ci(1), ci(8)}}
	if v := mustEval(t, sub, r); v.Str() != "Customer" {
		t.Errorf("SUBSTRING = %q", v.Str())
	}
	over := &Func{Name: "SUBSTRING", Args: []Expr{col(1, "s"), ci(10), ci(100)}}
	if v := mustEval(t, over, r); v.Str() != "0042" {
		t.Errorf("SUBSTRING overflow = %q", v.Str())
	}
	if v := mustEval(t, &Func{Name: "ABS", Args: []Expr{col(2, "n")}}, r); v.Int() != 7 {
		t.Errorf("ABS = %v", v)
	}
	if v := mustEval(t, &Func{Name: "UPPER", Args: []Expr{cs("abc")}}, r); v.Str() != "ABC" {
		t.Errorf("UPPER = %v", v)
	}
	if _, err := (&Func{Name: "NOPE", Args: nil}).Eval(r); err == nil {
		t.Error("unknown function should error")
	}
}

func TestBind(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "l.l_qty", Kind: types.KindInt},
		types.Column{Name: "l.l_price", Kind: types.KindFloat},
	)
	e := bin(OpGt, &Col{Index: -1, Name: "l_qty"}, ci(10))
	if err := Bind(e, s); err != nil {
		t.Fatal(err)
	}
	if e.L.(*Col).Index != 0 {
		t.Errorf("bound index = %d", e.L.(*Col).Index)
	}
	bad := bin(OpGt, &Col{Index: -1, Name: "missing"}, ci(10))
	if err := Bind(bad, s); err == nil {
		t.Error("unknown column should fail binding")
	}
}

func TestConjunctsAndAll(t *testing.T) {
	a := bin(OpGt, col(0, "a"), ci(1))
	b := bin(OpLt, col(0, "a"), ci(9))
	c := bin(OpEq, col(1, "b"), cs("x"))
	e := bin(OpAnd, bin(OpAnd, a, b), c)
	parts := Conjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("conjuncts = %d", len(parts))
	}
	back := AndAll(parts)
	r := types.Row{types.NewInt(5), types.NewString("x")}
	ok, _ := EvalBool(back, r)
	if !ok {
		t.Error("recombined predicate lost semantics")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	// OR is not split.
	or := bin(OpOr, a, b)
	if len(Conjuncts(or)) != 1 {
		t.Error("OR must not split into conjuncts")
	}
}

func TestColumns(t *testing.T) {
	e := bin(OpAnd,
		bin(OpGt, col(0, "l_qty"), ci(1)),
		bin(OpEq, col(1, "l_flag"), col(0, "l_qty")))
	cols := Columns(e)
	if len(cols) != 2 {
		t.Errorf("columns = %v", cols)
	}
}

func TestToSkipConj(t *testing.T) {
	e := bin(OpAnd,
		bin(OpLt, col(0, "l_qty"), ci(24)),
		bin(OpGe, ci(5), col(1, "l_disc"))) // flipped: 5 >= l_disc ≡ l_disc <= 5
	conj, ok := ToSkipConj(e)
	if !ok || len(conj) != 2 {
		t.Fatalf("conj = %v ok=%v", conj, ok)
	}
	if conj[0].Col != "l_qty" || conj[0].Op != skipcache.OpLt {
		t.Errorf("conj[0] = %v", conj[0])
	}
	if conj[1].Col != "l_disc" || conj[1].Op != skipcache.OpLe || conj[1].Val.Int() != 5 {
		t.Errorf("flipped atom = %v", conj[1])
	}
	// Non-convertible atoms make ok false.
	mixed := bin(OpAnd, bin(OpLt, col(0, "a"), ci(1)), &Like{E: col(1, "s"), Pattern: cs("%x")})
	_, ok = ToSkipConj(mixed)
	if ok {
		t.Error("LIKE conjunct should make conversion partial")
	}
	or := bin(OpOr, bin(OpLt, col(0, "a"), ci(1)), bin(OpGt, col(0, "a"), ci(5)))
	if _, ok := ToSkipConj(or); ok {
		t.Error("OR should not convert")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := bin(OpGt, &Col{Index: 3, Name: "x"}, ci(1))
	c := Clone(e).(*Bin)
	c.L.(*Col).Index = 7
	if e.L.(*Col).Index != 3 {
		t.Error("clone aliases original")
	}
}

func TestKindOf(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "f", Kind: types.KindFloat},
		types.Column{Name: "d", Kind: types.KindDate},
		types.Column{Name: "s", Kind: types.KindString},
	)
	for _, tc := range []struct {
		e    Expr
		want types.Kind
	}{
		{col(-1, "a"), types.KindInt},
		{bin(OpAdd, col(-1, "a"), col(-1, "a")), types.KindInt},
		{bin(OpAdd, col(-1, "a"), col(-1, "f")), types.KindFloat},
		{bin(OpDiv, col(-1, "a"), col(-1, "a")), types.KindFloat},
		{bin(OpEq, col(-1, "a"), col(-1, "a")), types.KindBool},
		{bin(OpAdd, col(-1, "d"), ci(1)), types.KindDate},
		{bin(OpSub, col(-1, "d"), col(-1, "d")), types.KindInt},
		{&Func{Name: "YEAR", Args: []Expr{col(-1, "d")}}, types.KindInt},
		{&Func{Name: "SUBSTRING", Args: []Expr{col(-1, "s"), ci(1), ci(2)}}, types.KindString},
		{&Like{E: col(-1, "s"), Pattern: cs("%")}, types.KindBool},
		{&Case{Whens: []When{{Cond: bin(OpEq, col(-1, "a"), ci(1)), Then: cf(1)}}}, types.KindFloat},
	} {
		if got := KindOf(tc.e, s); got != tc.want {
			t.Errorf("KindOf(%s) = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := bin(OpAnd, bin(OpGt, col(0, "a"), ci(1)), &Not{E: &IsNull{E: col(0, "a")}})
	s := e.String()
	if s == "" {
		t.Error("empty render")
	}
	// CASE render includes branches.
	c := &Case{Whens: []When{{Cond: bin(OpEq, col(0, "a"), ci(1)), Then: cs("one")}}, Else: cs("other")}
	if got := c.String(); got != "CASE WHEN (a = 1) THEN 'one' ELSE 'other' END" {
		t.Errorf("case render = %q", got)
	}
}

func TestToSkipConjBetween(t *testing.T) {
	e := &Bin{Op: OpAnd,
		L: &Between{E: col(0, "l_discount"), Lo: cf(0.05), Hi: cf(0.07)},
		R: bin(OpLt, col(1, "l_qty"), ci(24)),
	}
	conj, ok := ToSkipConj(e)
	if !ok || len(conj) != 3 {
		t.Fatalf("conj = %v ok=%v", conj, ok)
	}
	if conj[0].Op != skipcache.OpGe || conj[1].Op != skipcache.OpLe {
		t.Errorf("between atoms = %v", conj[:2])
	}
	// NOT BETWEEN must not convert.
	neg := &Between{E: col(0, "a"), Lo: ci(1), Hi: ci(2), Negate: true}
	if _, ok := ToSkipConj(neg); ok {
		t.Error("NOT BETWEEN should not convert completely")
	}
}
