package exec

import (
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vec"
)

// FNV-1a constants mirroring types.Hash / types.HashRow, so typed key
// hashing produces exactly the values the boxed path would (integral floats
// collide with ints on purpose — numeric equality must imply hash equality).
const (
	fnvRowOffset  = 1469598103934665603
	fnvHashOffset = 14695981039346656037
	fnvPrime      = 1099511628211
)

// hashI64 is types.Hash of a fixed-width payload: FNV-1a over its eight
// little-endian bytes.
func hashI64(u uint64) uint64 {
	h := uint64(fnvHashOffset)
	for i := 0; i < 8; i++ {
		h ^= (u >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// hashColVal hashes position i of a column without boxing, matching
// types.Hash on the boxed value. The second result reports NULL.
func hashColVal(c *vec.Col, i int) (uint64, bool) {
	if c.Form != vec.FormBoxed && vec.GetBit(c.Nulls, i) {
		return 0, true
	}
	switch c.Form {
	case vec.FormInt:
		return hashI64(uint64(c.I[i])), false
	case vec.FormFloat:
		f := c.F[i]
		if f == float64(int64(f)) {
			return hashI64(uint64(int64(f))), false
		}
		return hashI64(uint64(int64(f * 1e6))), false
	case vec.FormStr:
		return c.Dict.Hash(c.Codes[i]), false
	default:
		v := c.Vals[i]
		if v.K == types.KindNull {
			return 0, true
		}
		return types.Hash(v), false
	}
}

// appendColRows appends the src values at physical indices idx to dst,
// preserving typed layouts: fixed-width payloads copy unboxed, dictionary
// codes are remapped into dst's dictionary (or copied when the dictionary
// is shared), and mismatched layouts fall back to boxed append.
func appendColRows(dst, src *vec.Col, idx []int32) {
	switch {
	case dst.Form == vec.FormInt && src.Form == vec.FormInt && dst.Kind == src.Kind:
		for _, i := range idx {
			if src.IsNull(int(i)) {
				dst.AppendNull()
			} else {
				dst.AppendInt(src.I[i])
			}
		}
	case dst.Form == vec.FormFloat && src.Form == vec.FormFloat:
		for _, i := range idx {
			if src.IsNull(int(i)) {
				dst.AppendNull()
			} else {
				dst.AppendFloat(src.F[i])
			}
		}
	case dst.Form == vec.FormStr && src.Form == vec.FormStr:
		if dst.Dict == src.Dict {
			for _, i := range idx {
				if src.IsNull(int(i)) {
					dst.AppendNull()
				} else {
					dst.AppendCode(src.Codes[i])
				}
			}
			return
		}
		remap := make([]int32, src.Dict.Len())
		for t := range remap {
			remap[t] = -1
		}
		for _, i := range idx {
			if src.IsNull(int(i)) {
				dst.AppendNull()
				continue
			}
			code := src.Codes[i]
			m := remap[code]
			if m < 0 {
				m = dst.Dict.Code(src.Dict.Str(code))
				remap[code] = m
			}
			dst.AppendCode(m)
		}
	default:
		for _, i := range idx {
			dst.Append(src.Value(int(i)))
		}
	}
}

// vecJoinCmp compares one probe/build key column pair, specialized per
// probe batch to the layouts actually present.
type vecJoinCmp struct {
	pc, bc *vec.Col
	mode   uint8 // 0 generic boxed, 1 int64, 2 float64, 3 shared-dict codes, 4 remapped codes
	remap  []int32
}

// equal reports key equality between probe row i and build row j under
// types.Compare semantics. Callers guarantee neither side is NULL on the
// typed modes (NULL keys never reach candidate comparison).
func (c *vecJoinCmp) equal(i, j int) bool {
	switch c.mode {
	case 1:
		return c.pc.I[i] == c.bc.I[j]
	case 2:
		return c.pc.F[i] == c.bc.F[j]
	case 3:
		return c.pc.Codes[i] == c.bc.Codes[j]
	case 4:
		code := c.pc.Codes[i]
		m := c.remap[code]
		if m == -1 {
			if bcode, ok := c.bc.Dict.Lookup(c.pc.Dict.Str(code)); ok {
				m = bcode
			} else {
				m = -2
			}
			c.remap[code] = m
		}
		return m >= 0 && m == c.bc.Codes[j]
	default:
		av, bv := c.pc.Value(i), c.bc.Value(j)
		if av.K == types.KindNull || bv.K == types.KindNull {
			return false
		}
		return types.Compare(av, bv) == 0
	}
}

// VecHashJoin is the vector-native hash join: the build side accumulates
// into dense typed columns, the hash table maps key hashes to build row
// indices (no boxed key rows), and probing compares typed payloads —
// dictionary strings by code when the dictionary is shared, through a
// per-batch code remap otherwise. Matched (probe, build) index pairs gather
// column-wise into the output batch.
//
// Semantics mirror HashJoin: NULL keys never match (Anti still outputs the
// unmatched probe row), residual predicates evaluate over the concatenated
// boxed pair, and a build side exceeding the MemRows budget falls back to
// the row HashJoin mid-stream — accumulated build rows are materialized and
// prefixed to the remaining build stream, so the Grace spill path takes
// over without re-reading the input. Probing is serial; shapes with
// non-column keys fall back to the row join at construction.
type VecHashJoin struct {
	vecRowShim
	ctx          *Ctx
	probe, build VecOperator
	probeKeys    []expr.Expr
	buildKeys    []expr.Expr
	pk, bk       []int
	jt           JoinType
	residual     expr.Expr
	parallel     int
	out          types.Schema
	np, nb       int

	bt       *vec.Batch
	table    map[uint64][]int32
	prepared bool
	done     bool
	fb       VecOperator // mid-stream overflow fallback

	cmps     []vecJoinCmp
	pis, bis []int32
	idxs     []int32
	ob       *vec.Batch
	joined   types.Row
}

// NewVecHashJoin builds a vector hash join over vector inputs. Key shapes
// the typed path cannot handle (non-column key expressions) fall back to
// the row HashJoin behind adapters, so the constructor is total.
func NewVecHashJoin(ctx *Ctx, probe, build VecOperator, probeKeys, buildKeys []expr.Expr, jt JoinType, residual expr.Expr, parallel int) VecOperator {
	pk, ok1 := colIndices(probeKeys, probe.Schema().Len())
	bk, ok2 := colIndices(buildKeys, build.Schema().Len())
	if !ok1 || !ok2 || len(pk) != len(bk) {
		return ToVec(NewHashJoin(ctx, FromVec(probe), FromVec(build), probeKeys, buildKeys, jt, residual, parallel), ctx.batchRows())
	}
	j := &VecHashJoin{
		ctx: ctx, probe: probe, build: build,
		probeKeys: probeKeys, buildKeys: buildKeys, pk: pk, bk: bk,
		jt: jt, residual: residual, parallel: parallel,
	}
	j.np = probe.Schema().Len()
	j.nb = build.Schema().Len()
	if jt == JoinInner {
		j.out = probe.Schema().Concat(build.Schema())
	} else {
		j.out = probe.Schema()
	}
	j.cmps = make([]vecJoinCmp, len(pk))
	j.vecRowShim.src = j
	return j
}

// colIndices resolves key expressions to column indices; reports false when
// any key is not a plain column reference.
func colIndices(keys []expr.Expr, n int) ([]int, bool) {
	out := make([]int, len(keys))
	for i, k := range keys {
		c, ok := k.(*expr.Col)
		if !ok || c.Index < 0 || c.Index >= n {
			return nil, false
		}
		out[i] = c.Index
	}
	return out, true
}

// Schema implements Operator.
func (j *VecHashJoin) Schema() types.Schema { return j.out }

// Open implements Operator.
func (j *VecHashJoin) Open() error {
	j.cur, j.pos = nil, 0
	j.bt, j.table, j.prepared, j.done, j.fb = nil, nil, false, false, nil
	if err := j.probe.Open(); err != nil {
		return err
	}
	return j.build.Open()
}

// Close implements Operator.
func (j *VecHashJoin) Close() error {
	if j.fb != nil {
		// The fallback adopted both input streams; closing it closes them.
		return j.fb.Close()
	}
	err1 := j.probe.Close()
	err2 := j.build.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// NextVec implements VecOperator.
func (j *VecHashJoin) NextVec() (*vec.Batch, bool, error) {
	if !j.prepared {
		if err := j.prepareBuild(); err != nil {
			return nil, false, err
		}
	}
	if j.fb != nil {
		return j.fb.NextVec()
	}
	if j.done {
		return nil, false, nil
	}
	if j.ob == nil {
		j.ob = vec.New(j.out)
	}
	j.ob.Reset()
	target := j.ctx.batchRows()
	for j.ob.N < target {
		b, ok, err := j.probe.NextVec()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.done = true
			break
		}
		if err := j.processProbe(b); err != nil {
			return nil, false, err
		}
	}
	if j.ob.N == 0 {
		return nil, false, nil
	}
	return j.ob, true, nil
}

// prepareBuild drains the build side into dense typed columns and indexes
// build rows by key hash. Build rows with a NULL key are stored (they are
// part of the accumulated columns) but never indexed — NULL keys cannot
// match.
func (j *VecHashJoin) prepareBuild() error {
	budget := 0
	if j.ctx != nil {
		budget = j.ctx.MemRows
	}
	j.bt = vec.New(j.build.Schema())
	for {
		b, ok, err := j.build.NextVec()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n := b.Rows()
		if n == 0 {
			continue
		}
		if j.ctx != nil {
			j.ctx.RowsProcessed.Add(int64(n))
			j.ctx.addState(int64(n) * int64(16*len(j.bt.Cols)))
		}
		idx := b.Sel
		if idx == nil {
			idx = j.denseIdx(b.N)
		}
		for ci := range j.bt.Cols {
			appendColRows(&j.bt.Cols[ci], &b.Cols[ci], idx)
		}
		j.bt.N += len(idx)
		if budget > 0 && j.bt.N > budget {
			return j.overflow()
		}
	}
	j.table = make(map[uint64][]int32, j.bt.N)
	for r := 0; r < j.bt.N; r++ {
		h := uint64(fnvRowOffset)
		null := false
		for _, t := range j.bk {
			hv, isNull := hashColVal(&j.bt.Cols[t], r)
			if isNull {
				null = true
				break
			}
			h = h*fnvPrime ^ hv
		}
		if !null {
			j.table[h] = append(j.table[h], int32(r))
		}
	}
	j.prepared = true
	return nil
}

// overflow hands the join to the row HashJoin mid-stream: the accumulated
// build rows are materialized and prefixed to the rest of the (already
// open) build stream, so the row join's Grace spill machinery sees every
// build row exactly once.
func (j *VecHashJoin) overflow() error {
	rows := j.bt.Materialize(nil)
	j.bt = nil
	buildOp := &prefixSource{sch: j.build.Schema(), rows: rows, tail: openedOp{FromVec(j.build)}}
	hj := NewHashJoin(j.ctx, openedOp{FromVec(j.probe)}, buildOp, j.probeKeys, j.buildKeys, j.jt, j.residual, j.parallel)
	if err := hj.Open(); err != nil {
		return err
	}
	j.fb = ToVec(hj, j.ctx.batchRows())
	j.prepared = true
	return nil
}

// denseIdx returns [0, n) as a reusable selection slice.
func (j *VecHashJoin) denseIdx(n int) []int32 {
	for len(j.idxs) < n {
		j.idxs = append(j.idxs, int32(len(j.idxs)))
	}
	return j.idxs[:n]
}

// processProbe probes one batch and gathers matches into the output batch.
func (j *VecHashJoin) processProbe(b *vec.Batch) error {
	n := b.Rows()
	if n == 0 {
		return nil
	}
	if j.ctx != nil {
		j.ctx.RowsProcessed.Add(int64(n))
	}

	// Specialize the key comparators to this batch's column layouts.
	for t := range j.cmps {
		c := &j.cmps[t]
		c.pc, c.bc = &b.Cols[j.pk[t]], &j.bt.Cols[j.bk[t]]
		switch {
		case c.pc.Form == vec.FormInt && c.bc.Form == vec.FormInt && c.pc.Kind == c.bc.Kind:
			c.mode = 1
		case c.pc.Form == vec.FormFloat && c.bc.Form == vec.FormFloat:
			c.mode = 2
		case c.pc.Form == vec.FormStr && c.bc.Form == vec.FormStr:
			if c.pc.Dict == c.bc.Dict {
				c.mode, c.remap = 3, nil
			} else {
				c.mode = 4
				dl := c.pc.Dict.Len()
				if cap(c.remap) < dl {
					c.remap = make([]int32, dl)
				} else {
					c.remap = c.remap[:dl]
				}
				for x := range c.remap {
					c.remap[x] = -1
				}
			}
		default:
			c.mode = 0
		}
	}

	if j.joined == nil {
		j.joined = make(types.Row, j.np+j.nb)
	}
	j.pis, j.bis = j.pis[:0], j.bis[:0]
	for k := 0; k < n; k++ {
		i := b.Index(k)
		h := uint64(fnvRowOffset)
		null := false
		for t := range j.cmps {
			hv, isNull := hashColVal(j.cmps[t].pc, i)
			if isNull {
				null = true
				break
			}
			h = h*fnvPrime ^ hv
		}
		matched := false
		if !null {
			probeBoxed := false
			for _, cand := range j.table[h] {
				bi := int(cand)
				eq := true
				for t := range j.cmps {
					if !j.cmps[t].equal(i, bi) {
						eq = false
						break
					}
				}
				if !eq {
					continue
				}
				if j.residual != nil {
					if !probeBoxed {
						b.ReadRow(i, j.joined[:j.np])
						probeBoxed = true
					}
					j.bt.ReadRow(bi, j.joined[j.np:])
					ok, err := expr.EvalBool(j.residual, j.joined)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
				}
				matched = true
				if j.jt == JoinInner {
					j.pis = append(j.pis, int32(i))
					j.bis = append(j.bis, cand)
				} else {
					break
				}
			}
		}
		if j.jt == JoinSemi && matched {
			j.pis = append(j.pis, int32(i))
		}
		if j.jt == JoinAnti && !matched {
			j.pis = append(j.pis, int32(i))
		}
	}
	if len(j.pis) == 0 {
		return nil
	}
	for t := 0; t < j.np; t++ {
		appendColRows(&j.ob.Cols[t], &b.Cols[t], j.pis)
	}
	if j.jt == JoinInner {
		for t := 0; t < j.nb; t++ {
			appendColRows(&j.ob.Cols[j.np+t], &j.bt.Cols[t], j.bis)
		}
	}
	j.ob.N += len(j.pis)
	return nil
}

// openedOp wraps an already-open stream so a fallback plan can adopt it:
// Open is a no-op (re-opening would restart or duplicate the stream);
// everything else passes through.
type openedOp struct{ Operator }

// Open implements Operator as a no-op.
func (openedOp) Open() error { return nil }

// prefixSource serves buffered rows, then continues with an already-open
// tail stream.
type prefixSource struct {
	sch  types.Schema
	rows []types.Row
	pos  int
	tail Operator
}

// Schema implements Operator.
func (s *prefixSource) Schema() types.Schema { return s.sch }

// Open implements Operator as a no-op: the stream was adopted mid-flight.
func (s *prefixSource) Open() error { return nil }

// Next implements Operator.
func (s *prefixSource) Next() (types.Row, bool, error) {
	if s.pos < len(s.rows) {
		r := s.rows[s.pos]
		s.pos++
		return r, true, nil
	}
	return s.tail.Next()
}

// Close implements Operator.
func (s *prefixSource) Close() error { return s.tail.Close() }
