package exec

import (
	"errors"
	"sync"

	"repro/internal/types"
)

// ErrCanceled is the cause recorded by Kill when none is supplied.
var ErrCanceled = errors.New("exec: query canceled")

// Cancel is a one-shot cancellation signal shared by every fragment of one
// query. It is deliberately smaller than context.Context: operators only
// need a select-able done channel plus a cause, and the serving layer needs
// to fire it from another goroutine (KILL, drain, client disconnect).
//
// A nil *Cancel is valid and never fires, so plans built outside the
// serving layer pay nothing.
type Cancel struct {
	done chan struct{}
	once sync.Once
	mu   sync.Mutex
	err  error
}

// NewCancel builds an unfired cancellation handle.
func NewCancel() *Cancel {
	return &Cancel{done: make(chan struct{})}
}

// Kill fires the signal with the given cause (ErrCanceled when nil).
// Subsequent calls are no-ops; the first cause wins.
func (c *Cancel) Kill(cause error) {
	if c == nil {
		return
	}
	c.once.Do(func() {
		if cause == nil {
			cause = ErrCanceled
		}
		c.mu.Lock()
		c.err = cause
		c.mu.Unlock()
		close(c.done)
	})
}

// Done returns a channel closed when the query is killed; nil (which never
// selects ready) for a nil handle.
func (c *Cancel) Done() <-chan struct{} {
	if c == nil {
		return nil
	}
	return c.done
}

// Err returns the cancellation cause, or nil while the handle is unfired.
func (c *Cancel) Err() error {
	if c == nil {
		return nil
	}
	select {
	case <-c.done:
	default:
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Guard wraps an operator so every pull re-checks a cancellation handle —
// the coordinator-side hook that makes KILL return within one batch
// boundary even when the plan is between network messages. A nil cancel
// returns the input unchanged.
func Guard(cancel *Cancel, in Operator) Operator {
	if cancel == nil {
		return in
	}
	return &guardOp{in: in, cancel: cancel}
}

type guardOp struct {
	in     Operator
	cancel *Cancel
	bin    BatchOperator
}

func (g *guardOp) Schema() types.Schema { return g.in.Schema() }

func (g *guardOp) Open() error {
	if err := g.cancel.Err(); err != nil {
		return err
	}
	g.bin = nil
	return g.in.Open()
}

func (g *guardOp) Next() (types.Row, bool, error) {
	if err := g.cancel.Err(); err != nil {
		return nil, false, err
	}
	return g.in.Next()
}

// NextBatch implements BatchOperator, checking the handle once per slab so
// the guard's overhead is one atomic-ish select per batch, not per row.
func (g *guardOp) NextBatch() ([]types.Row, bool, error) {
	if err := g.cancel.Err(); err != nil {
		return nil, false, err
	}
	if g.bin == nil {
		g.bin = ToBatch(g.in, 0)
	}
	return g.bin.NextBatch()
}

func (g *guardOp) Close() error { return g.in.Close() }
