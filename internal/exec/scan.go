package exec

import (
	"repro/internal/expr"
	"repro/internal/external"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/storage"
	"repro/internal/types"
)

// scanFeed adapts a callback-style scan into a pull operator by running the
// scan in a goroutine (the paper spawns one scan thread per table fragment;
// this goroutine is that thread). Rows cross the goroutine boundary in
// slabs — one channel select per batch instead of per row — which is where
// the scan-side win of the vectorized path comes from.
type scanFeed struct {
	sch     types.Schema
	start   func(snd *batchSender) error
	batches chan []types.Row
	errCh   chan error
	stop    chan struct{}
	cancel  *Cancel
	batch   int
	depth   int
	started bool
	closed  bool
	cur     []types.Row
	pos     int
}

func (s *scanFeed) Schema() types.Schema { return s.sch }

func (s *scanFeed) Open() error {
	if s.batch <= 0 {
		s.batch = DefaultBatchRows
	}
	if s.depth <= 0 {
		s.depth = DefaultScanFeedDepth
	}
	s.batches = make(chan []types.Row, s.depth)
	s.errCh = make(chan error, 1)
	s.stop = make(chan struct{})
	s.started = false
	s.closed = false
	s.cur, s.pos = nil, 0
	return nil
}

func (s *scanFeed) launch() {
	s.started = true
	go func() {
		snd := &batchSender{out: s.batches, stop: s.stop, cancel: s.cancel, size: s.batch}
		err := s.start(snd)
		if err != nil {
			select {
			case s.errCh <- err:
			case <-s.stop:
				// Consumer closed early; nobody will read the error.
			}
		}
		close(s.batches)
	}()
}

func (s *scanFeed) Next() (types.Row, bool, error) {
	for s.pos >= len(s.cur) {
		b, ok, err := s.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		//lint:ignore slabown row cursor: the feed owns its own slab and drains cur before the next NextBatch
		s.cur, s.pos = b, 0
	}
	r := s.cur[s.pos]
	s.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator. Each received slab was freshly
// allocated by the scan thread, so handing it to the caller (who may
// compact it in place) is safe.
func (s *scanFeed) NextBatch() ([]types.Row, bool, error) {
	if !s.started {
		s.launch()
	}
	b, ok := <-s.batches
	if ok {
		return b, true, nil
	}
	select {
	case err := <-s.errCh:
		return nil, false, err
	default:
	}
	// A killed scan stops producing mid-stream; surface the kill cause so
	// the truncated stream can never be mistaken for normal exhaustion.
	if err := s.cancel.Err(); err != nil {
		return nil, false, err
	}
	return nil, false, nil
}

func (s *scanFeed) Close() error {
	if !s.closed {
		s.closed = true
		if s.stop != nil {
			close(s.stop)
		}
		// Drain so the producer goroutine can exit. Bounded: the producer
		// observes the closed stop channel via batchSender.flush and closes
		// batches, which ends this loop.
		if s.batches != nil {
			go func(ch chan []types.Row) {
				for range ch {
				}
			}(s.batches)
		}
	}
	return nil
}

// batchSender accumulates rows into a slab and ships the slab when full,
// unless the consumer has gone away. It replaces the old per-row
// sendRow select: the channel synchronization now costs one select per
// size rows.
type batchSender struct {
	out    chan<- []types.Row
	stop   <-chan struct{}
	cancel *Cancel
	slab   []types.Row
	size   int
	sent   int64
}

// send buffers one row, flushing when the slab is full. It returns false
// when the consumer is gone and the scan should abort.
func (b *batchSender) send(r types.Row) bool {
	if b.slab == nil {
		b.slab = make([]types.Row, 0, b.size)
	}
	b.slab = append(b.slab, r)
	if len(b.slab) >= b.size {
		return b.flush()
	}
	return true
}

// flush ships the current slab (if any). The sender allocates a fresh slab
// afterwards — the consumer owns shipped slabs per the batch contract.
func (b *batchSender) flush() bool {
	if len(b.slab) == 0 {
		return true
	}
	select {
	case b.out <- b.slab:
		b.sent++
		b.slab = make([]types.Row, 0, b.size)
		return true
	case <-b.stop:
		return false
	case <-b.cancel.Done():
		// Killed query: stop producing. The consumer learns the cause from
		// scanFeed.NextBatch (or the coordinator's cancel guard).
		return false
	}
}

// ScanConfig controls predicate pushdown into a fragment scan.
type ScanConfig struct {
	// Pred is the scan predicate, bound to the fragment schema; rows not
	// matching are dropped at the scan (selection pushdown). May be nil.
	Pred expr.Expr
	// UseSkipCache / UseMinMax enable the two skipping schemes.
	UseSkipCache bool
	UseMinMax    bool
	// Predeclare enables buffer-manager scan pre-declaration.
	Predeclare bool
	// BatchRows sizes the slabs the scan thread hands downstream; zero
	// selects DefaultBatchRows.
	BatchRows int
	// Stats, when non-nil, receives the scan's page/row counters.
	Stats *storage.ScanStats
	// Trace, when non-nil, receives the same counters as span annotations
	// (written once, atomically, when the scan thread finishes).
	Trace *obs.Span
	// Parallel is the desired scan parallelism. Values above 1 make the
	// scan thread acquire extra workers from Ctx's budget and run a
	// morsel-driven parallel scan; 0/1 keep the serial scan.
	Parallel int
	// Ctx supplies the worker budget and the morsel/feed-depth knobs for
	// parallel scans. Nil grants Parallel workers unconditionally.
	Ctx *Ctx
}

func buildScanOptions(cfg ScanConfig) storage.ScanOptions {
	opts := storage.ScanOptions{
		UseCache:   cfg.UseSkipCache,
		UseMinMax:  cfg.UseMinMax,
		Predeclare: cfg.Predeclare,
	}
	if cfg.Pred != nil {
		conj, complete := expr.ToSkipConj(cfg.Pred)
		opts.SkipConj = conj
		opts.SkipComplete = complete
	}
	return opts
}

// FragmentScan is the row-table scan operator.
type FragmentScan struct {
	scanFeed
	fr  *storage.Fragment
	cfg ScanConfig
}

// NewRowScan builds a scan over a row fragment.
func NewRowScan(fr *storage.Fragment, alias string, cfg ScanConfig) *FragmentScan {
	sch := fr.Def.Schema
	if alias != "" {
		sch = sch.Qualify(alias)
	}
	fs := &FragmentScan{fr: fr, cfg: cfg}
	fs.scanFeed.sch = sch
	fs.scanFeed.start = fs.run
	fs.scanFeed.batch = cfg.BatchRows
	fs.scanFeed.depth = cfg.Ctx.scanFeedDepth()
	fs.scanFeed.cancel = cfg.Ctx.Cancel()
	return fs
}

func (fs *FragmentScan) run(snd *batchSender) error {
	opts := buildScanOptions(fs.cfg)
	degree := 1
	if fs.cfg.Parallel > 1 {
		degree = fs.cfg.Ctx.AcquireWorkers(fs.cfg.Parallel)
		defer fs.cfg.Ctx.ReleaseWorkers(degree)
	}
	if degree > 1 {
		return fs.runParallel(snd, opts, degree)
	}
	var evalErr error
	stats, err := fs.fr.Scan(opts, func(rid page.RID, r types.Row) bool {
		if fs.cfg.Pred != nil {
			keep, err := expr.EvalBool(fs.cfg.Pred, r)
			if err != nil {
				evalErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		return snd.send(r)
	})
	snd.flush()
	if fs.cfg.Stats != nil {
		*fs.cfg.Stats = stats
	}
	fs.cfg.Trace.AddScan(stats.RowsRead, stats.PagesRead, stats.PagesSkipped)
	fs.cfg.Trace.AddBatches(snd.sent)
	if evalErr != nil {
		return evalErr
	}
	return err
}

// runParallel fans the scan out to degree morsel workers. Every worker gets
// a private batchSender (private slab accumulation) over the shared slab
// channel, so slabs stay single-producer-built while the consumer sees one
// merged stream; residual slabs are flushed after the workers join.
func (fs *FragmentScan) runParallel(snd *batchSender, opts storage.ScanOptions, degree int) error {
	senders := make([]*batchSender, degree)
	for i := range senders {
		senders[i] = &batchSender{out: snd.out, stop: snd.stop, cancel: snd.cancel, size: snd.size}
	}
	evalErrs := make([]error, degree)
	stats, err := fs.fr.ParallelScan(opts, degree, fs.cfg.Ctx.morselPages(), func(w int, rid page.RID, r types.Row) bool {
		if fs.cfg.Pred != nil {
			keep, perr := expr.EvalBool(fs.cfg.Pred, r)
			if perr != nil {
				evalErrs[w] = perr
				return false
			}
			if !keep {
				return true
			}
		}
		return senders[w].send(r)
	})
	var sent int64
	for _, ws := range senders {
		ws.flush()
		sent += ws.sent
	}
	if fs.cfg.Stats != nil {
		*fs.cfg.Stats = stats
	}
	fs.cfg.Trace.AddScan(stats.RowsRead, stats.PagesRead, stats.PagesSkipped)
	fs.cfg.Trace.AddBatches(sent)
	fs.cfg.Trace.AddWorkers(int64(degree))
	for _, e := range evalErrs {
		if e != nil {
			return e
		}
	}
	return err
}

// ColumnarScan is the PAX-table scan operator.
type ColumnarScan struct {
	scanFeed
	fr  *storage.ColumnarFragment
	cfg ScanConfig
}

// NewColumnarScan builds a scan over a columnar fragment.
func NewColumnarScan(fr *storage.ColumnarFragment, alias string, cfg ScanConfig) *ColumnarScan {
	sch := fr.Def.Schema
	if alias != "" {
		sch = sch.Qualify(alias)
	}
	cs := &ColumnarScan{fr: fr, cfg: cfg}
	cs.scanFeed.sch = sch
	cs.scanFeed.start = cs.run
	cs.scanFeed.batch = cfg.BatchRows
	cs.scanFeed.depth = cfg.Ctx.scanFeedDepth()
	cs.scanFeed.cancel = cfg.Ctx.Cancel()
	return cs
}

func (cs *ColumnarScan) run(snd *batchSender) error {
	opts := buildScanOptions(cs.cfg)
	degree := 1
	if cs.cfg.Parallel > 1 {
		degree = cs.cfg.Ctx.AcquireWorkers(cs.cfg.Parallel)
		defer cs.cfg.Ctx.ReleaseWorkers(degree)
	}
	if degree > 1 {
		return cs.runParallel(snd, opts, degree)
	}
	var evalErr error
	stats, err := cs.fr.Scan(opts, func(r types.Row) bool {
		if cs.cfg.Pred != nil {
			keep, err := expr.EvalBool(cs.cfg.Pred, r)
			if err != nil {
				evalErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		return snd.send(r)
	})
	snd.flush()
	if cs.cfg.Stats != nil {
		*cs.cfg.Stats = stats
	}
	cs.cfg.Trace.AddScan(stats.RowsRead, stats.PagesRead, stats.PagesSkipped)
	cs.cfg.Trace.AddBatches(snd.sent)
	if evalErr != nil {
		return evalErr
	}
	return err
}

// runParallel fans the columnar scan out to degree page-set workers, one
// private batchSender per worker over the shared slab channel.
func (cs *ColumnarScan) runParallel(snd *batchSender, opts storage.ScanOptions, degree int) error {
	senders := make([]*batchSender, degree)
	for i := range senders {
		senders[i] = &batchSender{out: snd.out, stop: snd.stop, cancel: snd.cancel, size: snd.size}
	}
	evalErrs := make([]error, degree)
	stats, err := cs.fr.ParallelScan(opts, degree, 1, func(w int, r types.Row) bool {
		if cs.cfg.Pred != nil {
			keep, perr := expr.EvalBool(cs.cfg.Pred, r)
			if perr != nil {
				evalErrs[w] = perr
				return false
			}
			if !keep {
				return true
			}
		}
		return senders[w].send(r)
	})
	var sent int64
	for _, ws := range senders {
		ws.flush()
		sent += ws.sent
	}
	if cs.cfg.Stats != nil {
		*cs.cfg.Stats = stats
	}
	cs.cfg.Trace.AddScan(stats.RowsRead, stats.PagesRead, stats.PagesSkipped)
	cs.cfg.Trace.AddBatches(sent)
	cs.cfg.Trace.AddWorkers(int64(degree))
	for _, e := range evalErrs {
		if e != nil {
			return e
		}
	}
	return err
}

// ExternalScan reads assigned partitions of an external table.
type ExternalScan struct {
	scanFeed
	tbl   external.Table
	parts []int
	pred  expr.Expr
}

// NewExternalScan builds a scan over the given partitions of an external
// table.
func NewExternalScan(tbl external.Table, parts []int, alias string, pred expr.Expr) *ExternalScan {
	sch := tbl.Schema()
	if alias != "" {
		sch = sch.Qualify(alias)
	}
	es := &ExternalScan{tbl: tbl, parts: parts, pred: pred}
	es.scanFeed.sch = sch
	es.scanFeed.start = es.run
	return es
}

func (es *ExternalScan) run(snd *batchSender) error {
	var evalErr error
	for _, p := range es.parts {
		err := es.tbl.ScanPartition(p, func(r types.Row) bool {
			if es.pred != nil {
				keep, err := expr.EvalBool(es.pred, r)
				if err != nil {
					evalErr = err
					return false
				}
				if !keep {
					return true
				}
			}
			return snd.send(r)
		})
		if evalErr != nil {
			return evalErr
		}
		if err != nil {
			return err
		}
	}
	snd.flush()
	return nil
}
