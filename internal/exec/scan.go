package exec

import (
	"repro/internal/expr"
	"repro/internal/external"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/storage"
	"repro/internal/types"
)

// scanFeed adapts a callback-style scan into a pull operator by running the
// scan in a goroutine (the paper spawns one scan thread per table fragment;
// this goroutine is that thread).
type scanFeed struct {
	sch     types.Schema
	start   func(out chan<- types.Row, stop <-chan struct{}) error
	rows    chan types.Row
	errCh   chan error
	stop    chan struct{}
	started bool
	closed  bool
}

func (s *scanFeed) Schema() types.Schema { return s.sch }

func (s *scanFeed) Open() error {
	s.rows = make(chan types.Row, 256)
	s.errCh = make(chan error, 1)
	s.stop = make(chan struct{})
	s.started = false
	s.closed = false
	return nil
}

func (s *scanFeed) launch() {
	s.started = true
	go func() {
		err := s.start(s.rows, s.stop)
		if err != nil {
			s.errCh <- err
		}
		close(s.rows)
	}()
}

func (s *scanFeed) Next() (types.Row, bool, error) {
	if !s.started {
		s.launch()
	}
	r, ok := <-s.rows
	if ok {
		return r, true, nil
	}
	select {
	case err := <-s.errCh:
		return nil, false, err
	default:
		return nil, false, nil
	}
}

func (s *scanFeed) Close() error {
	if !s.closed {
		s.closed = true
		if s.stop != nil {
			close(s.stop)
		}
		// Drain so the producer goroutine can exit. Bounded: the producer
		// observes the closed stop channel via sendRow and closes rows,
		// which ends this loop.
		if s.rows != nil {
			//lint:ignore goleak-hint bounded drain: producer sees closed stop and closes rows
			go func(ch chan types.Row) {
				for range ch {
				}
			}(s.rows)
		}
	}
	return nil
}

// sendRow pushes a row unless the consumer has gone away.
func sendRow(out chan<- types.Row, stop <-chan struct{}, r types.Row) bool {
	select {
	case out <- r:
		return true
	case <-stop:
		return false
	}
}

// ScanConfig controls predicate pushdown into a fragment scan.
type ScanConfig struct {
	// Pred is the scan predicate, bound to the fragment schema; rows not
	// matching are dropped at the scan (selection pushdown). May be nil.
	Pred expr.Expr
	// UseSkipCache / UseMinMax enable the two skipping schemes.
	UseSkipCache bool
	UseMinMax    bool
	// Predeclare enables buffer-manager scan pre-declaration.
	Predeclare bool
	// Stats, when non-nil, receives the scan's page/row counters.
	Stats *storage.ScanStats
	// Trace, when non-nil, receives the same counters as span annotations
	// (written once, atomically, when the scan thread finishes).
	Trace *obs.Span
}

func buildScanOptions(cfg ScanConfig) storage.ScanOptions {
	opts := storage.ScanOptions{
		UseCache:   cfg.UseSkipCache,
		UseMinMax:  cfg.UseMinMax,
		Predeclare: cfg.Predeclare,
	}
	if cfg.Pred != nil {
		conj, complete := expr.ToSkipConj(cfg.Pred)
		opts.SkipConj = conj
		opts.SkipComplete = complete
	}
	return opts
}

// FragmentScan is the row-table scan operator.
type FragmentScan struct {
	scanFeed
	fr  *storage.Fragment
	cfg ScanConfig
}

// NewRowScan builds a scan over a row fragment.
func NewRowScan(fr *storage.Fragment, alias string, cfg ScanConfig) *FragmentScan {
	sch := fr.Def.Schema
	if alias != "" {
		sch = sch.Qualify(alias)
	}
	fs := &FragmentScan{fr: fr, cfg: cfg}
	fs.scanFeed.sch = sch
	fs.scanFeed.start = fs.run
	return fs
}

func (fs *FragmentScan) run(out chan<- types.Row, stop <-chan struct{}) error {
	opts := buildScanOptions(fs.cfg)
	var evalErr error
	stats, err := fs.fr.Scan(opts, func(rid page.RID, r types.Row) bool {
		if fs.cfg.Pred != nil {
			keep, err := expr.EvalBool(fs.cfg.Pred, r)
			if err != nil {
				evalErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		return sendRow(out, stop, r)
	})
	if fs.cfg.Stats != nil {
		*fs.cfg.Stats = stats
	}
	fs.cfg.Trace.AddScan(stats.RowsRead, stats.PagesRead, stats.PagesSkipped)
	if evalErr != nil {
		return evalErr
	}
	return err
}

// ColumnarScan is the PAX-table scan operator.
type ColumnarScan struct {
	scanFeed
	fr  *storage.ColumnarFragment
	cfg ScanConfig
}

// NewColumnarScan builds a scan over a columnar fragment.
func NewColumnarScan(fr *storage.ColumnarFragment, alias string, cfg ScanConfig) *ColumnarScan {
	sch := fr.Def.Schema
	if alias != "" {
		sch = sch.Qualify(alias)
	}
	cs := &ColumnarScan{fr: fr, cfg: cfg}
	cs.scanFeed.sch = sch
	cs.scanFeed.start = cs.run
	return cs
}

func (cs *ColumnarScan) run(out chan<- types.Row, stop <-chan struct{}) error {
	opts := buildScanOptions(cs.cfg)
	var evalErr error
	stats, err := cs.fr.Scan(opts, func(r types.Row) bool {
		if cs.cfg.Pred != nil {
			keep, err := expr.EvalBool(cs.cfg.Pred, r)
			if err != nil {
				evalErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		return sendRow(out, stop, r)
	})
	if cs.cfg.Stats != nil {
		*cs.cfg.Stats = stats
	}
	cs.cfg.Trace.AddScan(stats.RowsRead, stats.PagesRead, stats.PagesSkipped)
	if evalErr != nil {
		return evalErr
	}
	return err
}

// ExternalScan reads assigned partitions of an external table.
type ExternalScan struct {
	scanFeed
	tbl   external.Table
	parts []int
	pred  expr.Expr
}

// NewExternalScan builds a scan over the given partitions of an external
// table.
func NewExternalScan(tbl external.Table, parts []int, alias string, pred expr.Expr) *ExternalScan {
	sch := tbl.Schema()
	if alias != "" {
		sch = sch.Qualify(alias)
	}
	es := &ExternalScan{tbl: tbl, parts: parts, pred: pred}
	es.scanFeed.sch = sch
	es.scanFeed.start = es.run
	return es
}

func (es *ExternalScan) run(out chan<- types.Row, stop <-chan struct{}) error {
	var evalErr error
	for _, p := range es.parts {
		err := es.tbl.ScanPartition(p, func(r types.Row) bool {
			if es.pred != nil {
				keep, err := expr.EvalBool(es.pred, r)
				if err != nil {
					evalErr = err
					return false
				}
				if !keep {
					return true
				}
			}
			return sendRow(out, stop, r)
		})
		if evalErr != nil {
			return evalErr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
