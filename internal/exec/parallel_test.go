package exec

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/tpch"
	"repro/internal/types"
)

var parLineitem struct {
	once sync.Once
	rows []types.Row
	sch  types.Schema
}

// parLineitemData generates the SF0.01 lineitem table once per process
// (~60k rows), the golden input for parallel/serial parity checks.
func parLineitemData() ([]types.Row, types.Schema) {
	parLineitem.once.Do(func() {
		d := tpch.Generate(0.01, 1)
		parLineitem.rows = d.Lineitem
		cols := make([]types.Column, len(d.Lineitem[0]))
		for i, v := range d.Lineitem[0] {
			cols[i] = types.Column{Name: fmt.Sprintf("l%d", i), Kind: v.K}
		}
		parLineitem.sch = types.Schema{Cols: cols}
	})
	return parLineitem.rows, parLineitem.sch
}

func rowStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// assertSameRowSet compares two results as multisets (aggregate output
// order is unspecified).
func assertSameRowSet(t *testing.T, got, want []types.Row) {
	t.Helper()
	g, w := rowStrings(got), rowStrings(want)
	sort.Strings(g)
	sort.Strings(w)
	if len(g) != len(w) {
		t.Fatalf("got %d rows, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d: got %s, want %s", i, g[i], w[i])
		}
	}
}

// lineitemAggSpecs is a representative aggregate list whose results are
// order-independent, so parallel output is byte-identical to serial: count,
// an int sum, a whole-valued float sum (l_quantity is 1..50, exact in a
// double in any fold order), an avg of exact sums, and min/max. Fractional
// float sums are order-sensitive in the last ulp and are checked separately
// with a tolerance (TestParallelAggFloatSums).
func lineitemAggSpecs() []AggSpec {
	return []AggSpec{
		{Kind: AggCount, Name: "c"},
		{Kind: AggSum, Arg: col(1), Name: "sk"},
		{Kind: AggSum, Arg: col(4), Name: "sq"},
		{Kind: AggAvg, Arg: col(4), Name: "aq"},
		{Kind: AggMin, Arg: col(10), Name: "mn"},
		{Kind: AggMax, Arg: col(10), Name: "mx"},
	}
}

// TestParallelAggParity: the partitioned parallel aggregate must produce
// exactly the serial aggregate's groups, for few groups, many groups, and
// under a memory budget that forces partition-affine spilling.
func TestParallelAggParity(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	rows, sch := parLineitemData()
	cases := []struct {
		name    string
		groupBy []expr.Expr
		memRows int
	}{
		{"few-groups", ColRefs(8, 9), 0},
		{"many-groups", ColRefs(0), 0},
		{"many-groups-spill", ColRefs(0), 512},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sctx := NewCtx(t.TempDir(), tc.memRows)
			serial := NewHashAggregate(sctx, NewSource(sch, rows), tc.groupBy, lineitemAggSpecs(), AggComplete)
			want, err := Collect(serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, degree := range []int{2, 4} {
				pctx := NewCtx(t.TempDir(), tc.memRows)
				pctx.SetParallelBudget(degree)
				agg := NewHashAggregate(pctx, NewSource(sch, rows), tc.groupBy, lineitemAggSpecs(), AggComplete)
				agg.Parallel = degree
				got, err := Collect(agg)
				if err != nil {
					t.Fatal(err)
				}
				assertSameRowSet(t, got, want)
			}
		})
	}
}

// TestParallelAggFloatSums: fractional float sums are not associative, so
// parallel fold order may move the last ulp; the parallel aggregate must
// still agree with serial to full double precision (relative 1e-9).
func TestParallelAggFloatSums(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	rows, sch := parLineitemData()
	specs := []AggSpec{
		{Kind: AggSum, Arg: col(5), Name: "sp"},
		{Kind: AggAvg, Arg: col(6), Name: "ad"},
	}
	collect := func(parallel int) map[string][]float64 {
		ctx := NewCtx(t.TempDir(), 0)
		ctx.SetParallelBudget(parallel)
		agg := NewHashAggregate(ctx, NewSource(sch, rows), ColRefs(8), specs, AggComplete)
		agg.Parallel = parallel
		out, err := Collect(agg)
		if err != nil {
			t.Fatal(err)
		}
		m := map[string][]float64{}
		for _, r := range out {
			m[r[0].String()] = []float64{r[1].Float(), r[2].Float()}
		}
		return m
	}
	want := collect(1)
	got := collect(4)
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("group %s missing", k)
		}
		for i := range w {
			diff := g[i] - w[i]
			if diff < 0 {
				diff = -diff
			}
			scale := w[i]
			if scale < 0 {
				scale = -scale
			}
			if scale < 1 {
				scale = 1
			}
			if diff/scale > 1e-9 {
				t.Errorf("group %s agg %d: got %v, want %v", k, i, g[i], w[i])
			}
		}
	}
}

// TestParallelAggPartialMergeParity: parallel worker-side partials merged
// and finalized must equal the fully serial pipeline (the distributed
// pre-aggregation path with AggParallelism on).
func TestParallelAggPartialMergeParity(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	rows, sch := parLineitemData()
	specs := lineitemAggSpecs()
	serial := NewHashAggregate(nil, NewSource(sch, rows), ColRefs(8), specs, AggComplete)
	want, err := Collect(serial)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(t.TempDir(), 0)
	ctx.SetParallelBudget(4)
	partial := NewHashAggregate(ctx, NewSource(sch, rows), ColRefs(8), specs, AggPartial)
	partial.Parallel = 4
	final := NewHashAggregate(nil, partial, ColRefs(0), specs, AggFinal)
	got, err := Collect(final)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRowSet(t, got, want)
}

// TestParallelSortParity: parallel run generation must yield the exact
// serial output sequence when sort keys are unique ((orderkey, linenumber)
// is lineitem's primary key), in memory and spilling.
func TestParallelSortParity(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	rows, sch := parLineitemData()
	keys := []SortKey{{Col: 0}, {Col: 3, Desc: true}}
	for _, memRows := range []int{0, 1024} {
		t.Run(fmt.Sprintf("mem%d", memRows), func(t *testing.T) {
			sctx := NewCtx(t.TempDir(), memRows)
			want, err := Collect(NewSort(sctx, NewSource(sch, rows), keys))
			if err != nil {
				t.Fatal(err)
			}
			for _, degree := range []int{2, 4} {
				pctx := NewCtx(t.TempDir(), memRows)
				pctx.SetParallelBudget(degree)
				s := NewSort(pctx, NewSource(sch, rows), keys)
				s.Parallel = degree
				got, err := Collect(s)
				if err != nil {
					t.Fatal(err)
				}
				g, w := rowStrings(got), rowStrings(want)
				if len(g) != len(w) {
					t.Fatalf("got %d rows, want %d", len(g), len(w))
				}
				for i := range g {
					if g[i] != w[i] {
						t.Fatalf("degree %d: row %d: got %s, want %s", degree, i, g[i], w[i])
					}
				}
			}
		})
	}
}

// parTestFragment loads rows into a real row fragment so scan parity runs
// against actual pages, morsels, and the buffer manager.
func parTestFragment(t *testing.T, rows []types.Row, sch types.Schema) *storage.Fragment {
	t.Helper()
	ns, err := storage.NewNodeStore(storage.NodeConfig{
		NodeID: 0, BaseDir: t.TempDir(), NumDisks: 2,
		PageSize: 4096, BufFrames: 256, BufStripes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ns.Close() })
	def := &catalog.TableDef{
		Name:   "lineitem",
		Schema: sch,
		Part:   catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{"l0"}},
	}
	fr, err := storage.OpenFragment(ns, def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Load(rows); err != nil {
		t.Fatal(err)
	}
	return fr
}

// TestParallelScanAggParity: the full pipeline — parallel fragment scan
// with predicate pushdown feeding a parallel aggregate — must match the
// serial pipeline row for row.
func TestParallelScanAggParity(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	rows, sch := parLineitemData()
	fr := parTestFragment(t, rows, sch)
	pred := func() expr.Expr {
		return &expr.Bin{Op: expr.OpLt, L: col(4), R: &expr.Const{V: types.NewFloat(25)}}
	}
	build := func(ctx *Ctx, parallel int) Operator {
		cfg := ScanConfig{Pred: pred(), BatchRows: ctx.BatchRows, Parallel: parallel, Ctx: ctx}
		sc := NewRowScan(fr, "l", cfg)
		agg := NewHashAggregate(ctx, sc, ColRefs(8), lineitemAggSpecs(), AggComplete)
		agg.Parallel = parallel
		return agg
	}
	want, err := Collect(build(NewCtx(t.TempDir(), 0), 1))
	if err != nil {
		t.Fatal(err)
	}
	pctx := NewCtx(t.TempDir(), 0)
	pctx.SetParallelBudget(8)
	got, err := Collect(build(pctx, 4))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRowSet(t, got, want)
}

// TestParallelTinyBudgetRace drives every parallel operator with a tiny
// worker budget, tiny morsels, and tiny slabs — the configuration that
// maximizes cross-worker interleaving under `go test -race` — and checks
// the results still match serial execution.
func TestParallelTinyBudgetRace(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	rows, sch := parLineitemData()
	rows = rows[:5000]
	fr := parTestFragment(t, rows, sch)

	mkCtx := func(budget int) *Ctx {
		ctx := NewCtx(t.TempDir(), 256)
		ctx.SetParallelBudget(budget)
		ctx.BatchRows = 8
		ctx.MorselPages = 1
		return ctx
	}
	scanAgg := func(ctx *Ctx, parallel int) Operator {
		cfg := ScanConfig{BatchRows: ctx.BatchRows, Parallel: parallel, Ctx: ctx}
		agg := NewHashAggregate(ctx, NewRowScan(fr, "l", cfg), ColRefs(0), lineitemAggSpecs(), AggComplete)
		agg.Parallel = parallel
		return agg
	}
	want, err := Collect(scanAgg(mkCtx(0), 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 2, 7} {
		got, err := Collect(scanAgg(mkCtx(budget), 8))
		if err != nil {
			t.Fatal(err)
		}
		assertSameRowSet(t, got, want)
	}

	keys := []SortKey{{Col: 0}, {Col: 3}}
	wantSorted, err := Collect(NewSort(mkCtx(0), NewSource(sch, rows), keys))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSort(mkCtx(2), NewSource(sch, rows), keys)
	s.Parallel = 8
	gotSorted, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	g, w := rowStrings(gotSorted), rowStrings(wantSorted)
	if len(g) != len(w) {
		t.Fatalf("got %d rows, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d: got %s, want %s", i, g[i], w[i])
		}
	}
}
